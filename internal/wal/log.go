package wal

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// segName formats the on-disk name for segment seq.
func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.wal", seq) }

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment sequence numbers present in dir,
// ascending.
func listSegments(fs FS, dir string) ([]uint64, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, n := range names {
		if seq, ok := parseSegName(n); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// segLog is the append side of the segmented log: one open segment file,
// frame appends with the configured fsync policy, size-based rotation.
// Not goroutine-safe; the Manager serializes access.
type segLog struct {
	fs       FS
	dir      string
	policy   FsyncPolicy
	interval int64 // ns
	maxBytes int64
	now      func() int64

	seq      uint64
	f        File
	size     int64
	lastSync int64
	buf      []byte // frame scratch, reused across appends

	frames   uint64
	bytes    uint64
	fsyncs   uint64
	segments uint64
}

// openSegment starts a fresh segment with the given sequence number,
// closing the previous one (fully synced) first.
func (l *segLog) openSegment(seq uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			l.f = nil
			return err
		}
		if err := l.f.Close(); err != nil {
			l.f = nil
			return err
		}
		l.f = nil
	}
	f, err := l.fs.Create(join(l.dir, segName(seq)))
	if err != nil {
		return err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.seq = seq
	l.size = int64(len(segMagic))
	l.segments++
	return nil
}

// splitWriteMin is the payload size above which append issues the header
// and the payload as two writes instead of copying the payload into the
// frame scratch: past this point the memcpy costs more than a syscall.
const splitWriteMin = 16 << 10

// append writes one frame, applying the fsync policy, and rotates the
// segment once it exceeds maxBytes.
func (l *segLog) append(rec byte, payload []byte) error {
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	frame := uint64(frameHeaderLen + len(payload))
	if len(payload) >= splitWriteMin {
		var hdr [frameHeaderLen]byte
		frameHeader(&hdr, rec, payload)
		n, err := l.f.Write(hdr[:])
		l.size += int64(n)
		if err != nil {
			return err
		}
		n, err = l.f.Write(payload)
		l.size += int64(n)
		if err != nil {
			return err
		}
	} else {
		l.buf = appendFrame(l.buf[:0], rec, payload)
		n, err := l.f.Write(l.buf)
		l.size += int64(n)
		if err != nil {
			return err
		}
	}
	l.frames++
	l.bytes += frame
	switch l.policy {
	case FsyncAlways:
		if err := l.sync(); err != nil {
			return err
		}
	case FsyncInterval:
		if now := l.now(); now-l.lastSync >= l.interval {
			if err := l.sync(); err != nil {
				return err
			}
		}
	}
	if l.size >= l.maxBytes {
		return l.openSegment(l.seq + 1)
	}
	return nil
}

func (l *segLog) sync() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs++
	l.lastSync = l.now()
	return nil
}

func (l *segLog) close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if err == nil {
		l.fsyncs++
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
