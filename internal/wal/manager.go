package wal

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/streamworks/streamworks/internal/query"
)

// Manager owns a data directory: the active segment, the shadow retained
// window, the emitted-set and the snapshot cycle. All methods are safe for
// concurrent use.
//
// Emission tracking is ack-based: NoteEmitted must be called only after a
// match has actually reached its consumer (a synchronous sink returned, or
// the serving tier flushed the report to the subscriber's socket). Noted
// therefore implies delivered, so entries are checkpointable immediately
// and a checkpointed match can be suppressed on recovery without risking
// loss. Matches delivered but not yet noted/checkpointed when the process
// dies are re-derived and redelivered — the bounded, signature-dedupable
// redelivery documented in the package comment.
type Manager struct {
	mu       sync.Mutex
	opts     Options
	fs       FS
	dir      string
	log      segLog
	encBuf   bytes.Buffer // edge-batch payload scratch, reused across appends
	win      shadowWindow
	regs     []RegisterRecord
	emitted  map[string]emittedEnt
	unlogged int
	batches  int
	degraded bool
	closed   bool

	// pending is the completion channel of the one in-flight asynchronous
	// edge-batch append (AppendEdgesAsync), nil when none. While it is
	// non-nil a worker goroutine owns log, win, encBuf and batches; every
	// method that touches those fields calls joinLocked first.
	pending chan error
	// replayedBytes is how many segment-tail bytes Open replayed; together
	// with log.bytes and tailMark it measures the un-compacted tail that a
	// restart would have to replay (the Close snapshot heuristic). snapSeq
	// is the last snapshot's covering sequence, bounding how many segment
	// files accumulate across snapshot-less restarts.
	replayedBytes uint64
	tailMark      uint64
	snapSeq       uint64

	torn         uint64
	snapshots    uint64
	appendErrors uint64
}

type emittedEnt struct {
	spanStart int64
	logged    bool
}

// Recovery is what Open reconstructed from disk: the ordered operations to
// replay through an engine, plus the recovered emitted-set for backlog
// suppression.
type Recovery struct {
	// Ops are the recovered operations in replay order: the snapshot's
	// registrations, then its retained window as a single edge batch, then
	// the decoded log tail.
	Ops []Op
	// Emitted maps checkpointed match keys (MatchKey) to span starts.
	Emitted map[string]int64
	// Watermark is the recovered stream watermark.
	Watermark int64
	// TornTail reports that a torn or corrupt tail was truncated.
	TornTail bool
}

// Open recovers whatever the data directory holds and returns a Manager
// appending to a fresh segment. The returned Recovery is never nil on
// success; an empty directory yields an empty one.
func Open(opts Options) (*Manager, *Recovery, error) {
	opts = opts.withDefaults()
	m := &Manager{
		opts:    opts,
		fs:      opts.FS,
		dir:     opts.Dir,
		win:     newShadowWindow(opts.Retention, opts.Slack),
		emitted: make(map[string]emittedEnt),
	}
	m.log = segLog{
		fs:       m.fs,
		dir:      m.dir,
		policy:   opts.Fsync,
		interval: int64(opts.FsyncInterval),
		maxBytes: opts.SegmentBytes,
		now:      opts.Now,
	}
	if err := m.fs.MkdirAll(m.dir); err != nil {
		return nil, nil, fmt.Errorf("wal: creating data dir: %w", err)
	}
	// A leftover snapshot.tmp is an interrupted snapshot; the rename never
	// happened, so it is garbage.
	m.fs.Remove(join(m.dir, snapshotTmp))

	rec := &Recovery{Emitted: make(map[string]int64)}
	meta, window, haveSnap, err := readSnapshot(m.fs, m.dir)
	if err != nil {
		return nil, nil, err
	}
	startSeq := uint64(0)
	if haveSnap {
		startSeq = meta.Seq
		for i := range meta.Registrations {
			r := meta.Registrations[i]
			rec.Ops = append(rec.Ops, Op{Type: RecRegister, Register: &r})
			m.applyRegister(r)
		}
		for _, e := range meta.Emitted {
			m.emitted[e.Key] = emittedEnt{spanStart: e.SpanStart, logged: true}
			rec.Emitted[e.Key] = e.SpanStart
		}
		if len(window) > 0 {
			rec.Ops = append(rec.Ops, Op{Type: RecEdgeBatch, Edges: window})
			m.win.add(window)
		}
		m.win.advance(meta.Watermark)
	}

	seqs, err := listSegments(m.fs, m.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: listing segments: %w", err)
	}
	lastSeq := startSeq
	stopped := false
	for _, seq := range seqs {
		if seq < startSeq {
			// Covered by the snapshot; an interrupted compaction left it.
			m.fs.Remove(join(m.dir, segName(seq)))
			continue
		}
		if seq > lastSeq {
			lastSeq = seq
		}
		if stopped {
			// Segments after a truncated one cannot be trusted to follow it.
			opts.Logf("wal: dropping segment %d after truncated predecessor", seq)
			m.fs.Remove(join(m.dir, segName(seq)))
			continue
		}
		stopped = m.replaySegment(seq, rec)
	}
	rec.Watermark = m.win.watermark
	rec.TornTail = m.torn > 0
	m.snapSeq = startSeq

	if err := m.log.openSegment(lastSeq + 1); err != nil {
		return nil, nil, fmt.Errorf("wal: opening segment: %w", err)
	}
	return m, rec, nil
}

// replaySegment decodes one segment into rec and the manager's shadow
// state. It returns true when replay must stop: a torn or corrupt frame
// was found and the segment truncated at the last valid boundary.
func (m *Manager) replaySegment(seq uint64, rec *Recovery) (stop bool) {
	path := join(m.dir, segName(seq))
	rc, err := m.fs.Open(path)
	if err != nil {
		m.opts.Logf("wal: opening segment %d: %v", seq, err)
		return true
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		m.opts.Logf("wal: reading segment %d: %v", seq, err)
		return true
	}
	m.replayedBytes += uint64(len(data))
	if len(data) < len(segMagic) || !bytes.Equal(data[:len(segMagic)], segMagic) {
		m.truncateAt(path, seq, 0)
		return true
	}
	off := len(segMagic)
	for off < len(data) {
		frameRec, payload, n, err := DecodeFrame(data[off:])
		if err != nil {
			m.truncateAt(path, seq, int64(off))
			return true
		}
		op, err := decodeOp(frameRec, payload)
		if err != nil {
			// The CRC was valid but the payload does not decode; nothing
			// after an undecodable record can be applied consistently.
			m.opts.Logf("wal: segment %d offset %d: %v", seq, off, err)
			m.truncateAt(path, seq, int64(off))
			return true
		}
		m.applyRecovered(op, rec)
		rec.Ops = append(rec.Ops, op)
		off += n
	}
	return false
}

// truncateAt cuts the segment back to the last valid frame boundary,
// counting and logging the data loss boundary.
func (m *Manager) truncateAt(path string, seq uint64, off int64) {
	m.torn++
	m.opts.Logf("wal: segment %d has a torn or corrupt tail; truncating at byte %d", seq, off)
	if err := m.fs.Truncate(path, off); err != nil {
		m.opts.Logf("wal: truncating segment %d: %v", seq, err)
	}
}

// applyRecovered folds one replayed op into the manager's shadow state.
func (m *Manager) applyRecovered(op Op, rec *Recovery) {
	switch op.Type {
	case RecEdgeBatch:
		m.win.add(op.Edges)
	case RecRegister:
		m.applyRegister(*op.Register)
	case RecUnregister:
		m.regs = removeReg(m.regs, op.Name)
	case RecAdvance:
		m.win.advance(op.TS)
	case RecEmitted:
		for _, e := range op.Emitted {
			m.emitted[e.Key] = emittedEnt{spanStart: e.SpanStart, logged: true}
			rec.Emitted[e.Key] = e.SpanStart
		}
	}
}

// applyRegister records an active registration and mirrors the engine's
// retention extension for the query's time window so the shadow window
// never expires an edge the engine still retains.
func (m *Manager) applyRegister(r RegisterRecord) {
	m.regs = append(removeReg(m.regs, r.Name), r)
	if q, err := query.ParseString(r.DSL); err == nil {
		m.win.extendRetention(q.Window())
	}
}

func removeReg(regs []RegisterRecord, name string) []RegisterRecord {
	out := regs[:0]
	for _, r := range regs {
		if r.Name != name {
			out = append(out, r)
		}
	}
	return out
}

// Degraded reports whether a write failure has demoted the WAL to
// in-memory mode.
func (m *Manager) Degraded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// WasEmitted reports whether the match key was recovered or noted as
// already delivered.
func (m *Manager) WasEmitted(query, signature string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.emitted[MatchKey(query, signature)]
	return ok
}

// NoteEmitted records that a match reached its consumer. Call only after
// delivery completed (sink returned / socket flushed); see the type
// comment for why that timing is what makes suppression safe.
func (m *Manager) NoteEmitted(query, signature string, spanStart int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.degraded {
		return
	}
	key := MatchKey(query, signature)
	if _, ok := m.emitted[key]; ok {
		return
	}
	m.emitted[key] = emittedEnt{spanStart: spanStart}
	m.unlogged++
	if m.unlogged >= m.opts.EmittedEvery {
		m.checkpointEmittedLocked()
	}
}

// checkpointEmittedLocked appends a RecEmitted frame holding every noted
// entry not yet persisted.
func (m *Manager) checkpointEmittedLocked() {
	m.joinLocked()
	if m.closed || m.degraded {
		return
	}
	entries := make([]EmittedEntry, 0, m.unlogged)
	for k, st := range m.emitted {
		if !st.logged {
			entries = append(entries, EmittedEntry{Key: k, SpanStart: st.spanStart})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	if len(entries) == 0 {
		m.unlogged = 0
		return
	}
	payload, err := encodeEmitted(entries)
	if err != nil {
		m.degradeLocked(err)
		return
	}
	if err := m.log.append(RecEmitted, payload); err != nil {
		m.degradeLocked(err)
		return
	}
	for _, e := range entries {
		m.emitted[e.Key] = emittedEnt{spanStart: e.SpanStart, logged: true}
	}
	m.unlogged = 0
}

// joinLocked waits for the in-flight asynchronous append, if any, and folds
// its outcome into the manager: a write failure degrades, and a batch that
// brought the snapshot cycle due triggers the snapshot here (snapshots touch
// state the worker must not, so they run on the joining side). Every method
// that reads or writes log, win, encBuf or batches must call this first.
func (m *Manager) joinLocked() error {
	if m.pending == nil {
		return nil
	}
	err := <-m.pending
	m.pending = nil
	if err != nil {
		m.degradeLocked(err)
		return err
	}
	if m.opts.SnapshotEvery > 0 && m.batches >= m.opts.SnapshotEvery {
		if err := m.snapshotLocked(); err != nil {
			m.degradeLocked(err)
			return err
		}
	}
	return nil
}

// degradeLocked flips to in-memory mode after a write failure.
func (m *Manager) degradeLocked(err error) {
	if m.degraded {
		return
	}
	m.degraded = true
	m.appendErrors++
	m.opts.Logf("wal: write failed, degrading to in-memory mode (durability lost): %v", err)
	if m.log.f != nil {
		m.log.f.Close()
		m.log.f = nil
	}
}

// Stats returns the cumulative durability counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.joinLocked()
	return Stats{
		Frames:          m.log.frames,
		Bytes:           m.log.bytes,
		Fsyncs:          m.log.fsyncs,
		Segments:        m.log.segments,
		Snapshots:       m.snapshots,
		TornTruncations: m.torn,
		AppendErrors:    m.appendErrors,
		EmittedTracked:  uint64(len(m.emitted)),
		Degraded:        m.degraded,
	}
}
