package wal

import (
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

// shadowWindow mirrors the engine's retained sliding window from the
// manager's side of the fence: every appended batch lands here in arrival
// order and expires against the same watermark − retention − slack cutoff
// the dynamic graph uses. Snapshots serialize it directly, which keeps
// snapshot-taking out of the engine's (possibly sharded, possibly
// concurrent) internals entirely.
type shadowWindow struct {
	// edges[head:] is the live window; the dead prefix left behind by
	// expiry is reclaimed only once it dominates the slice, so per-batch
	// expiry is O(expired) instead of a memmove of everything still live.
	edges     []graph.StreamEdge
	head      int
	watermark int64
	// retention/slack in stream nanoseconds; retention 0 keeps everything.
	retention int64
	slack     int64
}

// live returns the current window contents in arrival order.
func (w *shadowWindow) live() []graph.StreamEdge { return w.edges[w.head:] }

func newShadowWindow(retention, slack time.Duration) shadowWindow {
	return shadowWindow{retention: int64(retention), slack: int64(slack)}
}

// extendRetention mirrors the engine growing its window for a registered
// query whose time window exceeds the configured retention.
func (w *shadowWindow) extendRetention(d time.Duration) {
	if w.retention != 0 && int64(d) > w.retention {
		w.retention = int64(d)
	}
}

func (w *shadowWindow) add(edges []graph.StreamEdge) {
	// Grow with 2x headroom instead of append's large-slice growth factor:
	// the window regrows from empty on every open, and the default growth
	// schedule's repeated allocate+zero+copy of a multi-megabyte slice was
	// measurable on the ingest path (appends run under the manager lock).
	// Growth also evicts the dead prefix, so headroom is computed over the
	// live region only.
	if need := len(w.edges) + len(edges); need > cap(w.edges) {
		liveLen := len(w.edges) - w.head
		grown := make([]graph.StreamEdge, liveLen, max(2*(liveLen+len(edges)), 1024))
		copy(grown, w.edges[w.head:])
		w.edges = grown
		w.head = 0
	}
	w.edges = append(w.edges, edges...)
	for i := range edges {
		if ts := int64(edges[i].Edge.Timestamp); ts > w.watermark {
			w.watermark = ts
		}
	}
	w.expireFront()
}

func (w *shadowWindow) advance(ts int64) {
	if ts > w.watermark {
		w.watermark = ts
	}
	w.expireFront()
}

func (w *shadowWindow) cutoff() (int64, bool) {
	if w.retention == 0 {
		return 0, false
	}
	return w.watermark - w.retention - w.slack, true
}

// expireFront drops expired edges from the front, stopping at the first
// live one. Arrival order is within slack of timestamp order, so anything
// an out-of-order keeper hides is bounded by slack and reclaimed by the
// full compaction each snapshot runs. Expiry just advances head; the dead
// prefix is shifted out only once it outgrows the live region, keeping the
// per-batch cost proportional to what expired, not to what remains.
func (w *shadowWindow) expireFront() {
	cut, ok := w.cutoff()
	if !ok {
		return
	}
	for w.head < len(w.edges) && int64(w.edges[w.head].Edge.Timestamp) < cut {
		w.head++
	}
	if w.head > len(w.edges)-w.head {
		n := copy(w.edges, w.edges[w.head:])
		w.edges = w.edges[:n]
		w.head = 0
	}
}

// compact removes every expired edge, not just the expired prefix. Run
// before serializing a snapshot.
func (w *shadowWindow) compact() {
	cut, ok := w.cutoff()
	if !ok {
		return
	}
	live := w.edges[:0]
	for _, e := range w.edges[w.head:] {
		if int64(e.Edge.Timestamp) >= cut {
			live = append(live, e)
		}
	}
	w.edges = live
	w.head = 0
}
