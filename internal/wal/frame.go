package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Segment layout: an 8-byte magic header followed by frames. Each frame is
//
//	uint32 length   — big-endian, covers the type byte + payload
//	uint32 crc32    — IEEE, over the type byte + payload
//	byte   type     — one of the Rec* record types
//	bytes  payload
//
// A frame is valid iff the declared length fits in the remaining bytes and
// the CRC matches; anything else is a torn or corrupt tail and recovery
// truncates the segment at the last valid frame boundary.

// segMagic identifies a StreamWorks WAL segment, version 1.
var segMagic = []byte("SWWAL001")

// Record types.
const (
	// RecEdgeBatch carries one ingested edge batch as NDJSON (the wire
	// format, loader.WriteJSONL).
	RecEdgeBatch byte = 1
	// RecRegister carries a query registration: DSL text plus options
	// (records.go, RegisterRecord JSON).
	RecRegister byte = 2
	// RecUnregister carries the raw name of an unregistered query.
	RecUnregister byte = 3
	// RecAdvance carries an explicit watermark advance as a big-endian
	// int64 stream timestamp.
	RecAdvance byte = 4
	// RecEmitted carries an emitted-set checkpoint: a sorted JSON array of
	// (match key, span start) entries (records.go, EmittedEntry).
	RecEmitted byte = 5
)

const (
	frameHeaderLen = 9 // 4 length + 4 crc + 1 type
	// maxFramePayload rejects absurd declared lengths before allocating.
	maxFramePayload = 64 << 20
)

var (
	// errFrameTorn means the remaining bytes are shorter than the frame
	// they declare — the partial write a crash leaves behind.
	errFrameTorn = errors.New("wal: torn frame")
	// errFrameCorrupt means the frame is structurally invalid: CRC
	// mismatch, oversized length or unknown record type.
	errFrameCorrupt = errors.New("wal: corrupt frame")
)

// frameHeader writes the 9-byte envelope header for (rec, payload) into
// hdr: length, CRC over the type byte + payload, type.
func frameHeader(hdr *[frameHeaderLen]byte, rec byte, payload []byte) {
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)+1))
	hdr[8] = rec
	crc := crc32.Update(crc32.Update(0, crc32.IEEETable, hdr[8:9]), crc32.IEEETable, payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
}

// appendFrame appends the framed envelope for (rec, payload) to dst.
func appendFrame(dst []byte, rec byte, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	frameHeader(&hdr, rec, payload)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame decodes the first frame in data, returning the record type,
// its payload (aliasing data) and the total encoded size. It distinguishes
// a torn tail (errFrameTorn: data simply ends early) from corruption
// (errFrameCorrupt: CRC mismatch or nonsense header); recovery treats both
// as end-of-log, the fuzz target exercises both.
func DecodeFrame(data []byte) (rec byte, payload []byte, n int, err error) {
	if len(data) < frameHeaderLen {
		return 0, nil, 0, errFrameTorn
	}
	length := binary.BigEndian.Uint32(data[0:4])
	if length == 0 || length > maxFramePayload {
		return 0, nil, 0, errFrameCorrupt
	}
	total := 8 + int(length)
	if len(data) < total {
		return 0, nil, 0, errFrameTorn
	}
	body := data[8:total]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[4:8]) {
		return 0, nil, 0, errFrameCorrupt
	}
	rec = body[0]
	if rec < RecEdgeBatch || rec > RecEmitted {
		return 0, nil, 0, fmt.Errorf("%w: unknown record type %d", errFrameCorrupt, rec)
	}
	return rec, body[1:], total, nil
}
