package wal

import (
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

func makeBatch(n int, base uint64) []graph.StreamEdge {
	out := make([]graph.StreamEdge, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, testEdge(base+uint64(i), int64(base+uint64(i))*1000))
	}
	return out
}

func BenchmarkAppendEdges512(b *testing.B) {
	for _, policy := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			dir := b.TempDir()
			m, _, err := Open(Options{Dir: dir, Fsync: policy, FsyncInterval: 50 * time.Millisecond, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			batch := makeBatch(512, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.AppendEdges(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(m.log.bytes) / int64(b.N))
		})
	}
}
