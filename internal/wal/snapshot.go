package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/loader"
)

const (
	snapshotName = "snapshot"
	snapshotTmp  = "snapshot.tmp"
)

// snapshotMeta is the first line of a snapshot file: one JSON object
// describing everything except the retained window, which follows as
// NDJSON (one edge per line, the wire format). The file is written to a
// temp name, synced, then renamed, so a snapshot is either completely
// present or absent — no CRC needed.
type snapshotMeta struct {
	// Seq is the first segment NOT covered by this snapshot: recovery
	// replays segments >= Seq and deletes older ones.
	Seq       uint64 `json:"seq"`
	Watermark int64  `json:"watermark"`
	// Registrations are the active queries in registration order.
	Registrations []RegisterRecord `json:"registrations"`
	// Emitted is the checkpointed emitted-set, sorted by key.
	Emitted []EmittedEntry `json:"emitted"`
	// Edges is the number of NDJSON window edges that follow, a cheap
	// structural sanity check.
	Edges int `json:"edges"`
}

// writeSnapshot atomically replaces the snapshot file. The window is
// streamed straight to the file — snapshots can run to megabytes, and
// materializing them in memory first showed up as GC pressure on the ingest
// path (snapshots run under the manager lock, inline with appends).
func writeSnapshot(fs FS, dir string, meta snapshotMeta, window []graph.StreamEdge) error {
	meta.Edges = len(window)
	sort.Slice(meta.Emitted, func(i, j int) bool { return meta.Emitted[i].Key < meta.Emitted[j].Key })
	f, err := fs.Create(join(dir, snapshotTmp))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := json.NewEncoder(bw).Encode(meta); err != nil {
		f.Close()
		return fmt.Errorf("wal: encoding snapshot meta: %w", err)
	}
	if err := loader.WriteJSONL(bw, window); err != nil {
		f.Close()
		return fmt.Errorf("wal: encoding snapshot window: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(join(dir, snapshotTmp), join(dir, snapshotName))
}

// readSnapshot loads the snapshot if present. ok is false when the
// directory has none.
func readSnapshot(fs FS, dir string) (meta snapshotMeta, window []graph.StreamEdge, ok bool, err error) {
	rc, err := fs.Open(join(dir, snapshotName))
	if err != nil {
		return meta, nil, false, nil
	}
	defer rc.Close()
	br := bufio.NewReaderSize(rc, 1<<20)
	line, err := br.ReadBytes('\n')
	if err != nil && !errors.Is(err, io.EOF) {
		return meta, nil, false, fmt.Errorf("wal: reading snapshot meta: %w", err)
	}
	if err := json.Unmarshal(line, &meta); err != nil {
		return meta, nil, false, fmt.Errorf("wal: decoding snapshot meta: %w", err)
	}
	window, err = loader.ReadJSONL(br)
	if err != nil {
		return meta, nil, false, fmt.Errorf("wal: decoding snapshot window: %w", err)
	}
	if len(window) != meta.Edges {
		return meta, nil, false, fmt.Errorf("wal: snapshot window has %d edges, meta declares %d", len(window), meta.Edges)
	}
	return meta, window, true, nil
}
