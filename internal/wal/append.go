package wal

import (
	"sort"

	"github.com/streamworks/streamworks/internal/graph"
)

// AppendEdges logs one ingested batch, write-ahead of processing, and
// takes the periodic snapshot when the batch counter comes due. A write
// error flips the manager into degraded (in-memory) mode and is returned
// once; once degraded, appends are silent no-ops so ingest keeps flowing.
func (m *Manager) AppendEdges(edges []graph.StreamEdge) error {
	return m.AppendEdgesAsync(edges)()
}

// AppendEdgesAsync starts logging one ingested batch on a worker goroutine
// and returns the join barrier. The caller may overlap its own work on the
// batch — the engines process edges while the frame is encoded and written —
// but must invoke the barrier before treating the batch as ingested (acking
// it upstream, flushing emission notes): the barrier returning means the
// frame reached the OS, which is what survives a process crash. The batch
// slice must not be mutated until the barrier returns. At most one append is
// in flight; every other Manager method orders itself after it.
func (m *Manager) AppendEdgesAsync(edges []graph.StreamEdge) func() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.joinLocked()
	if len(edges) == 0 || m.closed || m.degraded {
		return func() error { return nil }
	}
	done := make(chan error, 1)
	m.pending = done
	go func() {
		// The manager lock is NOT held here: joinLocked gates every other
		// toucher of log, win, encBuf and batches until done is drained.
		payload, err := encodeEdgeBatch(&m.encBuf, edges)
		if err == nil {
			err = m.log.append(RecEdgeBatch, payload)
		}
		if err == nil {
			m.win.add(edges)
			m.batches++
		}
		done <- err
	}()
	return func() error {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.joinLocked()
	}
}

// AppendRegister logs a query registration.
func (m *Manager) AppendRegister(r RegisterRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.joinLocked()
	if m.closed || m.degraded {
		return nil
	}
	payload, err := encodeRegister(r)
	if err != nil {
		m.degradeLocked(err)
		return err
	}
	if err := m.log.append(RecRegister, payload); err != nil {
		m.degradeLocked(err)
		return err
	}
	m.applyRegister(r)
	return nil
}

// AppendUnregister logs a query unregistration.
func (m *Manager) AppendUnregister(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.joinLocked()
	if m.closed || m.degraded {
		return nil
	}
	if err := m.log.append(RecUnregister, []byte(name)); err != nil {
		m.degradeLocked(err)
		return err
	}
	m.regs = removeReg(m.regs, name)
	return nil
}

// AppendAdvance logs an explicit watermark advance.
func (m *Manager) AppendAdvance(ts int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.joinLocked()
	if m.closed || m.degraded {
		return nil
	}
	if err := m.log.append(RecAdvance, encodeAdvance(ts)); err != nil {
		m.degradeLocked(err)
		return err
	}
	m.win.advance(ts)
	return nil
}

// Snapshot forces a compaction now: serialize the retained window,
// registrations and emitted-set, rotate the segment, drop the segments the
// snapshot covers.
func (m *Manager) Snapshot() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.joinLocked()
	if m.closed || m.degraded {
		return nil
	}
	if err := m.snapshotLocked(); err != nil {
		m.degradeLocked(err)
		return err
	}
	return nil
}

func (m *Manager) snapshotLocked() error {
	m.win.compact()
	m.evictEmittedLocked()
	newSeq := m.log.seq + 1
	if err := m.log.openSegment(newSeq); err != nil {
		return err
	}
	meta := snapshotMeta{
		Seq:           newSeq,
		Watermark:     m.win.watermark,
		Registrations: append([]RegisterRecord(nil), m.regs...),
		Emitted:       make([]EmittedEntry, 0, len(m.emitted)),
	}
	for k, st := range m.emitted {
		meta.Emitted = append(meta.Emitted, EmittedEntry{Key: k, SpanStart: st.spanStart})
	}
	sort.Slice(meta.Emitted, func(i, j int) bool { return meta.Emitted[i].Key < meta.Emitted[j].Key })
	if err := writeSnapshot(m.fs, m.dir, meta, m.win.live()); err != nil {
		return err
	}
	for _, e := range meta.Emitted {
		m.emitted[e.Key] = emittedEnt{spanStart: e.SpanStart, logged: true}
	}
	m.unlogged = 0
	m.batches = 0
	m.snapshots++
	m.tailMark = m.replayedBytes + m.log.bytes
	m.snapSeq = newSeq
	seqs, err := listSegments(m.fs, m.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq < newSeq {
			m.fs.Remove(join(m.dir, segName(seq)))
		}
	}
	return nil
}

// tailLocked is how many log bytes a restart would have to replay: the
// tail Open itself replayed plus everything appended since the last
// snapshot.
func (m *Manager) tailLocked() uint64 {
	return m.replayedBytes + m.log.bytes - m.tailMark
}

// evictEmittedLocked drops emitted entries whose span start has expired
// out of the retained window: the match can no longer be re-derived, so
// suppression state for it is dead weight. With zero retention nothing is
// ever evicted, mirroring the engine keeping every edge.
func (m *Manager) evictEmittedLocked() {
	cut, ok := m.win.cutoff()
	if !ok {
		return
	}
	for k, st := range m.emitted {
		if st.spanStart < cut {
			delete(m.emitted, k)
		}
	}
}

// Close checkpoints the emitted-set one final time, making a graceful
// restart strictly exactly-once: every match delivered before Close is
// suppressed on recovery. Call only after the engine has stopped emitting.
//
// A closing snapshot is compaction, not correctness, so it is taken only
// when the un-compacted tail has grown past one segment's worth (or the
// segment files themselves have piled up): below that, replaying the tail
// on the next open costs less than serializing the window now, and
// shutdown stays cheap.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.joinLocked()
	if m.closed {
		return nil
	}
	if m.degraded {
		m.closed = true
		return nil
	}
	m.checkpointEmittedLocked()
	if m.degraded {
		m.closed = true
		return nil
	}
	if m.tailLocked() > uint64(m.opts.SegmentBytes) || m.log.seq-m.snapSeq >= 64 {
		if err := m.snapshotLocked(); err != nil {
			m.degradeLocked(err)
			m.closed = true
			return err
		}
	}
	m.closed = true
	return m.log.close()
}
