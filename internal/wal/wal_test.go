package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/streamworks/streamworks/internal/graph"
)

const testDSL = "query watch\nwindow 10m0s\nvertex a : Host\nvertex b : Host\nedge a -[flow]-> b\n"

func testEdge(id uint64, ts int64) graph.StreamEdge {
	return graph.StreamEdge{
		Edge: graph.Edge{
			ID:        graph.EdgeID(id),
			Source:    graph.VertexID(id),
			Target:    graph.VertexID(id + 1),
			Type:      "flow",
			Timestamp: graph.Timestamp(ts),
			Attrs:     graph.Attributes{"bytes": graph.Int(int64(id) * 10)},
		},
		SourceType: "Host",
		TargetType: "Host",
	}
}

// openTest opens a manager with fast test defaults: no fsync, no automatic
// snapshots, everything else overridable via mod.
func openTest(t *testing.T, dir string, mod func(*Options)) (*Manager, *Recovery) {
	t.Helper()
	opts := Options{Dir: dir, Fsync: FsyncOff, SnapshotEvery: -1, Logf: t.Logf}
	if mod != nil {
		mod(&opts)
	}
	m, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return m, rec
}

// opsJSON canonicalizes recovered ops for prefix/equality comparison.
func opsJSON(t *testing.T, ops []Op) []string {
	t.Helper()
	out := make([]string, len(ops))
	for i, op := range ops {
		b, err := json.Marshal(op)
		if err != nil {
			t.Fatalf("marshaling op %d: %v", i, err)
		}
		out[i] = string(b)
	}
	return out
}

func segPath(dir string, seq uint64) string { return filepath.Join(dir, segName(seq)) }

func TestFrameRoundTrip(t *testing.T) {
	edges := []graph.StreamEdge{testEdge(1, 100), testEdge(2, 200)}
	edgePayload, err := encodeEdgeBatch(new(bytes.Buffer), edges)
	if err != nil {
		t.Fatalf("encodeEdgeBatch: %v", err)
	}
	reg := RegisterRecord{Name: "watch", DSL: testDSL, Strategy: "lazy", Adaptive: "on"}
	regPayload, err := encodeRegister(reg)
	if err != nil {
		t.Fatalf("encodeRegister: %v", err)
	}
	emitted := []EmittedEntry{{Key: MatchKey("q", "sigB"), SpanStart: 7}, {Key: MatchKey("q", "sigA"), SpanStart: 3}}
	emittedPayload, err := encodeEmitted(emitted)
	if err != nil {
		t.Fatalf("encodeEmitted: %v", err)
	}
	cases := []struct {
		rec     byte
		payload []byte
	}{
		{RecEdgeBatch, edgePayload},
		{RecRegister, regPayload},
		{RecUnregister, []byte("watch")},
		{RecAdvance, encodeAdvance(-42)},
		{RecEmitted, emittedPayload},
	}
	var buf []byte
	for _, c := range cases {
		buf = appendFrame(buf, c.rec, c.payload)
	}
	off := 0
	for i, c := range cases {
		rec, payload, n, err := DecodeFrame(buf[off:])
		if err != nil {
			t.Fatalf("frame %d: DecodeFrame: %v", i, err)
		}
		if rec != c.rec || !bytes.Equal(payload, c.payload) {
			t.Fatalf("frame %d: got (type %d, %d bytes), want (type %d, %d bytes)", i, rec, len(payload), c.rec, len(c.payload))
		}
		op, err := decodeOp(rec, payload)
		if err != nil {
			t.Fatalf("frame %d: decodeOp: %v", i, err)
		}
		switch c.rec {
		case RecEdgeBatch:
			if !reflect.DeepEqual(op.Edges, edges) {
				t.Fatalf("edge batch did not round-trip:\ngot  %+v\nwant %+v", op.Edges, edges)
			}
		case RecRegister:
			if !reflect.DeepEqual(*op.Register, reg) {
				t.Fatalf("register did not round-trip: got %+v, want %+v", *op.Register, reg)
			}
		case RecUnregister:
			if op.Name != "watch" {
				t.Fatalf("unregister name: got %q", op.Name)
			}
		case RecAdvance:
			if op.TS != -42 {
				t.Fatalf("advance ts: got %d, want -42", op.TS)
			}
		case RecEmitted:
			// encodeEmitted sorts by key, so recovery sees sorted entries.
			want := []EmittedEntry{{Key: MatchKey("q", "sigA"), SpanStart: 3}, {Key: MatchKey("q", "sigB"), SpanStart: 7}}
			if !reflect.DeepEqual(op.Emitted, want) {
				t.Fatalf("emitted did not round-trip sorted: got %+v", op.Emitted)
			}
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestEncodeEmittedDeterministic(t *testing.T) {
	a := []EmittedEntry{{Key: "b", SpanStart: 2}, {Key: "a", SpanStart: 1}, {Key: "c", SpanStart: 3}}
	b := []EmittedEntry{{Key: "c", SpanStart: 3}, {Key: "a", SpanStart: 1}, {Key: "b", SpanStart: 2}}
	pa, err := encodeEmitted(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := encodeEmitted(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa, pb) {
		t.Fatalf("same logical checkpoint encoded differently:\n%s\n%s", pa, pb)
	}
}

func TestDecodeFrameTornVsCorrupt(t *testing.T) {
	frame := appendFrame(nil, RecUnregister, []byte("some-query-name"))

	// Truncation anywhere short of the full frame is torn, never corrupt.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, _, err := DecodeFrame(frame[:cut]); !errors.Is(err, errFrameTorn) {
			t.Fatalf("truncated at %d/%d bytes: got %v, want errFrameTorn", cut, len(frame), err)
		}
	}

	// Any single flipped bit in a full frame must be rejected, and since the
	// data is long enough it must read as corruption (CRC mismatch, bad
	// length, or unknown type) or torn (length grew past the data).
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x01
		_, _, _, err := DecodeFrame(mut)
		if err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		}
		if !errors.Is(err, errFrameCorrupt) && !errors.Is(err, errFrameTorn) {
			t.Fatalf("bit flip at byte %d: unexpected error %v", i, err)
		}
	}

	// Zero or absurd declared lengths are corrupt, not torn.
	zero := append([]byte(nil), frame...)
	zero[0], zero[1], zero[2], zero[3] = 0, 0, 0, 0
	if _, _, _, err := DecodeFrame(zero); !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("zero length: got %v, want errFrameCorrupt", err)
	}
	huge := append([]byte(nil), frame...)
	huge[0] = 0xff
	if _, _, _, err := DecodeFrame(huge); !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("oversized length: got %v, want errFrameCorrupt", err)
	}

	// An unknown record type with a valid CRC is corrupt.
	unknown := appendFrame(nil, 0x7f, []byte("payload"))
	if _, _, _, err := DecodeFrame(unknown); !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("unknown type: got %v, want errFrameCorrupt", err)
	}
}

func TestAppendAndRecoverAllRecordTypes(t *testing.T) {
	dir := t.TempDir()
	m, rec := openTest(t, dir, nil)
	if len(rec.Ops) != 0 || rec.TornTail || rec.Watermark != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	if err := m.AppendRegister(RegisterRecord{Name: "watch", DSL: testDSL, Strategy: "lazy"}); err != nil {
		t.Fatalf("AppendRegister: %v", err)
	}
	batch := []graph.StreamEdge{testEdge(1, 100), testEdge(2, 150)}
	if err := m.AppendEdges(batch); err != nil {
		t.Fatalf("AppendEdges: %v", err)
	}
	if err := m.AppendAdvance(500); err != nil {
		t.Fatalf("AppendAdvance: %v", err)
	}
	if err := m.AppendUnregister("watch"); err != nil {
		t.Fatalf("AppendUnregister: %v", err)
	}

	// Crash (no Close): reopen and replay the log tail.
	m2, rec2 := openTest(t, dir, nil)
	defer m2.Close()
	types := make([]byte, len(rec2.Ops))
	for i, op := range rec2.Ops {
		types[i] = op.Type
	}
	want := []byte{RecRegister, RecEdgeBatch, RecAdvance, RecUnregister}
	if !bytes.Equal(types, want) {
		t.Fatalf("recovered op types: got %v, want %v", types, want)
	}
	if !reflect.DeepEqual(rec2.Ops[1].Edges, batch) {
		t.Fatalf("recovered batch mismatch: %+v", rec2.Ops[1].Edges)
	}
	if rec2.Watermark != 500 {
		t.Fatalf("recovered watermark: got %d, want 500", rec2.Watermark)
	}
	if rec2.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
	// The unregister replayed last, so no registration survives in shadow state.
	if n := len(m2.regs); n != 0 {
		t.Fatalf("shadow registrations after unregister: %d", n)
	}
}

func TestSegmentRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTest(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	const batches = 20
	for i := 0; i < batches; i++ {
		if err := m.AppendEdges([]graph.StreamEdge{testEdge(uint64(i), int64(i)*10)}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	seqs, err := listSegments(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", seqs)
	}
	if st := m.Stats(); st.Segments < 3 {
		t.Fatalf("stats segments: %d", st.Segments)
	}

	m2, rec := openTest(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	defer m2.Close()
	if len(rec.Ops) != batches {
		t.Fatalf("recovered %d ops across segments, want %d", len(rec.Ops), batches)
	}
	for i, op := range rec.Ops {
		if op.Type != RecEdgeBatch || len(op.Edges) != 1 || op.Edges[0].Edge.ID != graph.EdgeID(i) {
			t.Fatalf("op %d out of order: %+v", i, op)
		}
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTest(t, dir, nil)
	if err := m.AppendEdges([]graph.StreamEdge{testEdge(1, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendEdges([]graph.StreamEdge{testEdge(2, 200)}); err != nil {
		t.Fatal(err)
	}

	// A crash mid-write leaves a partial frame: append half of a valid frame.
	full := appendFrame(nil, RecUnregister, []byte("never-finished"))
	path := segPath(dir, 1)
	prevSize := appendBytes(t, path, full[:len(full)/2])

	m2, rec := openTest(t, dir, nil)
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Ops) != 2 {
		t.Fatalf("recovered %d ops, want the 2 complete batches", len(rec.Ops))
	}
	if st := m2.Stats(); st.TornTruncations != 1 {
		t.Fatalf("torn truncation counter: %d", st.TornTruncations)
	}
	// The file was physically truncated back to the last valid boundary.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != prevSize {
		t.Fatalf("segment size after truncation: got %d, want %d", st.Size(), prevSize)
	}

	// The manager stays writable: appends go to the fresh segment and a
	// third reopen sees old ops plus the new one.
	if err := m2.AppendAdvance(900); err != nil {
		t.Fatal(err)
	}
	m3, rec3 := openTest(t, dir, nil)
	defer m3.Close()
	if len(rec3.Ops) != 3 || rec3.Ops[2].Type != RecAdvance || rec3.Ops[2].TS != 900 {
		t.Fatalf("ops after post-truncation append: %+v", rec3.Ops)
	}
	if rec3.TornTail {
		t.Fatal("second reopen reported the already-truncated tail")
	}
}

// appendBytes appends raw bytes to path, returning the size before the
// append (the last valid boundary for truncation checks).
func appendBytes(t *testing.T, path string, b []byte) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestCRCMismatchTruncates(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTest(t, dir, nil)
	if err := m.AppendEdges([]graph.StreamEdge{testEdge(1, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendUnregister("ghost"); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the final frame: CRC now mismatches.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, rec := openTest(t, dir, nil)
	defer m2.Close()
	if !rec.TornTail {
		t.Fatal("corrupt tail not reported")
	}
	if len(rec.Ops) != 1 || rec.Ops[0].Type != RecEdgeBatch {
		t.Fatalf("recovered ops after corrupt frame: %+v", rec.Ops)
	}
}

func TestDropsSegmentsAfterTruncatedOne(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTest(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	for i := 0; i < 8; i++ {
		if err := m.AppendEdges([]graph.StreamEdge{testEdge(uint64(i), int64(i)*10)}); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := listSegments(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("need >=3 segments for this test, got %v", seqs)
	}
	// Corrupt the tail of a MIDDLE segment: everything after it is untrusted.
	mid := seqs[len(seqs)/2]
	appendBytes(t, segPath(dir, mid), []byte{0x01, 0x02, 0x03})

	m2, rec := openTest(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	defer m2.Close()
	if !rec.TornTail {
		t.Fatal("torn middle segment not reported")
	}
	for _, op := range rec.Ops {
		if op.Type != RecEdgeBatch {
			t.Fatalf("unexpected op type %d", op.Type)
		}
	}
	// Ops must be a strict prefix of the original sequence, ending before
	// the corrupted segment's successor could contribute.
	for i, op := range rec.Ops {
		if op.Edges[0].Edge.ID != graph.EdgeID(i) {
			t.Fatalf("op %d: edge ID %d — recovered ops are not a prefix", i, op.Edges[0].Edge.ID)
		}
	}
	if len(rec.Ops) >= 8 {
		t.Fatalf("recovered %d ops despite mid-log corruption", len(rec.Ops))
	}
	// Segments after the truncated one are deleted from disk.
	after, err := listSegments(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range after {
		if seq > mid && seq != m2.log.seq {
			t.Fatalf("segment %d survived past truncated segment %d", seq, mid)
		}
	}
}

func TestSnapshotCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTest(t, dir, nil)
	if err := m.AppendRegister(RegisterRecord{Name: "watch", DSL: testDSL}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendRegister(RegisterRecord{Name: "other", DSL: testDSL, Adaptive: "off"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendUnregister("other"); err != nil {
		t.Fatal(err)
	}
	batch := []graph.StreamEdge{testEdge(1, 100), testEdge(2, 200)}
	if err := m.AppendEdges(batch); err != nil {
		t.Fatal(err)
	}
	m.NoteEmitted("watch", "sig-1", 100)
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if st := m.Stats(); st.Snapshots != 1 {
		t.Fatalf("snapshot counter: %d", st.Snapshots)
	}
	// The snapshot covers segment 1; only the fresh segment remains.
	seqs, err := listSegments(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != m.log.seq {
		t.Fatalf("segments after snapshot: %v (active %d)", seqs, m.log.seq)
	}
	// More work after the snapshot lands in the log tail.
	if err := m.AppendAdvance(300); err != nil {
		t.Fatal(err)
	}

	m2, rec := openTest(t, dir, nil)
	defer m2.Close()
	types := make([]byte, len(rec.Ops))
	for i, op := range rec.Ops {
		types[i] = op.Type
	}
	// Snapshot registrations first (only "watch" survived the unregister),
	// then the retained window as one batch, then the tail.
	want := []byte{RecRegister, RecEdgeBatch, RecAdvance}
	if !bytes.Equal(types, want) {
		t.Fatalf("recovered op types: got %v, want %v", types, want)
	}
	if rec.Ops[0].Register.Name != "watch" {
		t.Fatalf("recovered registration: %+v", rec.Ops[0].Register)
	}
	if !reflect.DeepEqual(rec.Ops[1].Edges, batch) {
		t.Fatalf("recovered window mismatch: %+v", rec.Ops[1].Edges)
	}
	if rec.Watermark != 300 {
		t.Fatalf("watermark: got %d, want 300", rec.Watermark)
	}
	if got, ok := rec.Emitted[MatchKey("watch", "sig-1")]; !ok || got != 100 {
		t.Fatalf("emitted-set not recovered from snapshot: %v", rec.Emitted)
	}
	if !m2.WasEmitted("watch", "sig-1") {
		t.Fatal("WasEmitted lost across snapshot recovery")
	}
}

func TestEmittedCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTest(t, dir, func(o *Options) { o.EmittedEvery = 2 })
	m.NoteEmitted("q", "a", 10)
	m.NoteEmitted("q", "b", 20) // second note hits EmittedEvery: checkpoint frame
	m.NoteEmitted("q", "c", 30) // un-checkpointed; lost on crash
	// Duplicate notes never re-count toward the checkpoint threshold.
	m.NoteEmitted("q", "a", 10)

	m2, rec := openTest(t, dir, func(o *Options) { o.EmittedEvery = 2 })
	defer m2.Close()
	if len(rec.Emitted) != 2 {
		t.Fatalf("recovered emitted-set: %v", rec.Emitted)
	}
	for _, sig := range []string{"a", "b"} {
		if !m2.WasEmitted("q", sig) {
			t.Fatalf("checkpointed match %q not recovered", sig)
		}
	}
	if m2.WasEmitted("q", "c") {
		t.Fatal("un-checkpointed match survived the crash — would suppress delivery")
	}
}

func TestCloseIsStrictlyExactOnce(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTest(t, dir, func(o *Options) { o.EmittedEvery = 1000 })
	if err := m.AppendRegister(RegisterRecord{Name: "watch", DSL: testDSL}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendEdges([]graph.StreamEdge{testEdge(1, 100)}); err != nil {
		t.Fatal(err)
	}
	// Far below EmittedEvery: only Close's final checkpoint can persist it.
	m.NoteEmitted("watch", "sig-1", 100)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Append after Close is a silent no-op, not a crash.
	if err := m.AppendAdvance(999); err != nil {
		t.Fatalf("append after close: %v", err)
	}

	m2, rec := openTest(t, dir, nil)
	defer m2.Close()
	if !m2.WasEmitted("watch", "sig-1") {
		t.Fatal("graceful close lost the emitted-set: restart would redeliver")
	}
	if rec.Watermark != 100 {
		t.Fatalf("watermark: got %d, want 100", rec.Watermark)
	}
	if rec.TornTail {
		t.Fatal("graceful close left a torn tail")
	}
}

func TestEmittedEvictionAtSnapshot(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTest(t, dir, func(o *Options) {
		o.Retention = 100 // nanoseconds of stream time
		o.Slack = 10
	})
	m.NoteEmitted("q", "old", 50)
	m.NoteEmitted("q", "new", 900)
	if err := m.AppendEdges([]graph.StreamEdge{testEdge(1, 1000)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// cutoff = 1000 - 100 - 10 = 890: "old" (span 50) can no longer be
	// re-derived from the retained window, so its suppression entry goes.
	if m.WasEmitted("q", "old") {
		t.Fatal("expired emitted entry survived snapshot eviction")
	}
	if !m.WasEmitted("q", "new") {
		t.Fatal("live emitted entry was evicted")
	}
}

// TestPrefixRecovery is the property test the frame format exists for: ANY
// byte prefix of a segment — every crash point — must open without error
// and recover a frame-aligned prefix of the full operation sequence.
func TestPrefixRecovery(t *testing.T) {
	base := t.TempDir()
	full := filepath.Join(base, "full")
	m, _ := openTest(t, full, nil)
	if err := m.AppendRegister(RegisterRecord{Name: "watch", DSL: testDSL, Strategy: "eager"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendEdges([]graph.StreamEdge{testEdge(1, 100), testEdge(2, 150)}); err != nil {
		t.Fatal(err)
	}
	m.NoteEmitted("watch", "sig-1", 100)
	m.NoteEmitted("watch", "sig-2", 150) // EmittedEvery default won't fire; force it
	m.mu.Lock()
	m.checkpointEmittedLocked()
	m.mu.Unlock()
	if err := m.AppendAdvance(400); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendUnregister("watch"); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendEdges([]graph.StreamEdge{testEdge(3, 500)}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(segPath(full, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, fullRec := openTest(t, full, nil)
	fullOps := opsJSON(t, fullRec.Ops)

	for cut := 0; cut <= len(data); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("p%05d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segPath(dir, 1), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		pm, rec, err := Open(Options{Dir: dir, Fsync: FsyncOff, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("prefix %d/%d bytes: Open failed: %v", cut, len(data), err)
		}
		got := opsJSON(t, rec.Ops)
		if len(got) > len(fullOps) {
			t.Fatalf("prefix %d: recovered %d ops, more than the full log's %d", cut, len(got), len(fullOps))
		}
		for i := range got {
			if got[i] != fullOps[i] {
				t.Fatalf("prefix %d: op %d diverges from full log:\ngot  %s\nwant %s", cut, i, got[i], fullOps[i])
			}
		}
		if cut == len(data) && len(got) != len(fullOps) {
			t.Fatalf("complete copy recovered %d ops, want %d", len(got), len(fullOps))
		}
		// The recovered manager must stay writable.
		if err := pm.AppendAdvance(9999); err != nil {
			t.Fatalf("prefix %d: append after recovery: %v", cut, err)
		}
		// Close the segment file directly; a full Close would write a
		// snapshot per prefix for nothing.
		pm.mu.Lock()
		pm.log.close()
		pm.closed = true
		pm.mu.Unlock()
	}
}

func FuzzWALDecode(f *testing.F) {
	// Seed with a real segment containing every record type.
	dir := f.TempDir()
	opts := Options{Dir: dir, Fsync: FsyncOff, SnapshotEvery: -1}
	m, _, err := Open(opts)
	if err != nil {
		f.Fatal(err)
	}
	if err := m.AppendRegister(RegisterRecord{Name: "watch", DSL: testDSL}); err != nil {
		f.Fatal(err)
	}
	if err := m.AppendEdges([]graph.StreamEdge{testEdge(1, 100)}); err != nil {
		f.Fatal(err)
	}
	if err := m.AppendAdvance(200); err != nil {
		f.Fatal(err)
	}
	if err := m.AppendUnregister("watch"); err != nil {
		f.Fatal(err)
	}
	m.NoteEmitted("watch", "sig", 100)
	m.mu.Lock()
	m.checkpointEmittedLocked()
	m.log.close()
	m.closed = true
	m.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)-3])
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("SWWAL001"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		if len(data) >= len(segMagic) && bytes.Equal(data[:len(segMagic)], segMagic) {
			off = len(segMagic)
		}
		for off < len(data) {
			rec, payload, n, err := DecodeFrame(data[off:])
			if err != nil {
				if !errors.Is(err, errFrameTorn) && !errors.Is(err, errFrameCorrupt) {
					t.Fatalf("DecodeFrame: unexpected error class %v", err)
				}
				return
			}
			if n <= frameHeaderLen-1 {
				t.Fatalf("DecodeFrame returned non-advancing size %d", n)
			}
			// decodeOp must never panic, whatever the payload says.
			decodeOp(rec, payload)
			off += n
		}
	})
}
