package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam the WAL writes through. The production
// implementation is OSFS; the fault-injection harness substitutes one that
// fails on cue. Paths are always joined under the manager's data dir by the
// caller, so implementations treat them as opaque absolute paths.
type FS interface {
	MkdirAll(path string) error
	// Create truncates or creates the file for writing.
	Create(path string) (File, error)
	// OpenAppend opens the file for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	Open(path string) (io.ReadCloser, error)
	// ReadDir returns the names (not paths) of the directory's entries.
	ReadDir(path string) ([]string, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Truncate(path string, size int64) error
	// Size returns the file's length in bytes.
	Size(path string) (int64, error)
}

// File is the writable handle the WAL appends frames through.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (OSFS) Create(path string) (File, error) { return os.Create(path) }

func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

func (OSFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFS) Size(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// join is filepath.Join, aliased so wal code reads uniformly.
func join(dir, name string) string { return filepath.Join(dir, name) }
