// Package wal implements the durability layer for StreamWorks engines: a
// segmented write-ahead log on the ingest path, periodic snapshots that
// bound replay time, and the emitted-set checkpointing that makes match
// delivery exactly-once across a crash boundary.
//
// The log records the NDJSON wire format the system already speaks. Each
// record travels in a small framed envelope — length, CRC32, record type —
// so a torn tail (the partial frame a crash leaves behind) is detected and
// truncated at the last valid frame instead of poisoning recovery. Record
// types cover edge batches, query register/unregister (DSL text plus
// registration options), explicit watermark advances, and periodic
// emitted-set checkpoints.
//
// Recovery replays snapshot + log tail through the ordinary engine paths,
// reusing the same retained-window replay machinery adaptive re-planning
// uses for plan swaps: re-register the stored queries, re-apply the
// retained edges, and suppress every match whose (query, signature) key was
// already checkpointed as emitted. Matches that were emitted but not yet
// checkpointed when the process died are redelivered — the emitted-set is
// checkpointed one epoch behind live emission precisely so a match is never
// suppressed before it plausibly reached a subscriber. Crash recovery is
// therefore exactly-once under set semantics (no loss; bounded, dedupable
// redelivery by canonical signature) and strictly exactly-once across a
// graceful restart, where Close checkpoints everything.
//
// All file access goes through the FS seam so the fault-injection harness
// (internal/testutil/faultfs) can exercise short writes, fsync errors,
// torn final frames and disk-full without touching a real kernel. Any
// write error degrades the manager: it stops touching the disk, keeps
// serving from memory, and reports Degraded so the serving tier can
// surface `durability: degraded` instead of taking down ingest.
package wal

import (
	"fmt"
	"strings"
	"time"
)

// FsyncPolicy controls when appended frames are forced to stable storage.
// Every append always flushes to the file descriptor, so the OS page cache
// preserves the log across a process crash (SIGKILL) under any policy;
// fsync only widens the guarantee to power loss.
type FsyncPolicy int

const (
	// FsyncInterval syncs at most once per Options.FsyncInterval, piggybacked
	// on appends (group commit). The default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every appended frame.
	FsyncAlways
	// FsyncOff never syncs; durability rides on the OS page cache alone.
	FsyncOff
)

// ParseFsyncPolicy parses the operator-facing policy names.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "off", "none":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	default:
		return "interval"
	}
}

// Options configures a Manager.
type Options struct {
	// Dir is the data directory. Created if absent.
	Dir string
	// FS is the filesystem seam; nil uses the real OS filesystem.
	FS FS
	// Fsync is the sync policy for appended frames.
	Fsync FsyncPolicy
	// FsyncInterval is the group-commit interval for FsyncInterval.
	// Zero defaults to 50ms.
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Zero defaults to 8 MiB.
	SegmentBytes int64
	// SnapshotEvery takes a snapshot (and drops older segments) every N
	// appended edge batches. Zero defaults to 4096; negative disables
	// automatic snapshots (Close still snapshots).
	SnapshotEvery int
	// EmittedEvery writes an emitted-set checkpoint frame once that many
	// mature, un-checkpointed emissions have accumulated. Zero defaults
	// to 256.
	EmittedEvery int
	// Retention mirrors the engine's sliding-window width so the shadow
	// retained window (what snapshots serialize) expires in lockstep.
	// Zero retains every edge.
	Retention time.Duration
	// Slack mirrors the engine's out-of-order tolerance.
	Slack time.Duration
	// Now supplies wall-clock nanoseconds for the group-commit timer.
	// Nil uses time.Now. The WAL is not on the deterministic-output path,
	// so real time is fine here.
	Now func() int64
	// Logf receives recovery and degradation warnings. Nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	if o.EmittedEvery <= 0 {
		o.EmittedEvery = 256
	}
	if o.Now == nil {
		o.Now = func() int64 { return time.Now().UnixNano() }
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Stats are the manager's cumulative durability counters, exported through
// /v1/metrics and the Prometheus endpoint.
type Stats struct {
	Frames          uint64 `json:"frames_appended"`
	Bytes           uint64 `json:"bytes_appended"`
	Fsyncs          uint64 `json:"fsyncs"`
	Segments        uint64 `json:"segments_created"`
	Snapshots       uint64 `json:"snapshots_written"`
	TornTruncations uint64 `json:"torn_tail_truncations"`
	AppendErrors    uint64 `json:"append_errors"`
	EmittedTracked  uint64 `json:"emitted_tracked"`
	Degraded        bool   `json:"degraded"`
}
