package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/loader"
)

// RegisterRecord is the durable form of one query registration: the DSL
// text (query.Format round-trips name, window and pattern) plus the
// registration options a front-end needs to reconstruct identical
// semantics. Adaptive is tri-state ("", "on", "off") mirroring the public
// AdaptiveMode.
type RegisterRecord struct {
	Name     string `json:"name"`
	DSL      string `json:"dsl"`
	Strategy string `json:"strategy,omitempty"`
	Adaptive string `json:"adaptive,omitempty"`
}

// EmittedEntry is one checkpointed emission: Key is the canonical
// query+signature match identity (MatchKey) and SpanStart the match's
// stream-time span start, which bounds how long the entry must outlive the
// retained window before it can be evicted.
type EmittedEntry struct {
	Key       string `json:"k"`
	SpanStart int64  `json:"s"`
}

// MatchKey builds the canonical emitted-set key for a match. The unit
// separator cannot appear in query names or signatures, so the mapping is
// injective — the same key form internal/gen uses for cross-run match-set
// equality.
func MatchKey(query, signature string) string { return query + "\x1f" + signature }

// Op is one decoded WAL operation, in replay order. Exactly one field
// group is populated, keyed by Type (the Rec* constants).
type Op struct {
	Type     byte
	Edges    []graph.StreamEdge // RecEdgeBatch
	Register *RegisterRecord    // RecRegister
	Name     string             // RecUnregister
	TS       int64              // RecAdvance
	Emitted  []EmittedEntry     // RecEmitted
}

// encodeEdgeBatch serializes a batch into buf (reset first). The caller owns
// buf and reuses it across appends: batch payloads are ~100KB each, and
// allocating them per batch was measured to trigger GC cycles that taxed the
// engine's hot path far more than the WAL's own I/O.
func encodeEdgeBatch(buf *bytes.Buffer, edges []graph.StreamEdge) ([]byte, error) {
	buf.Reset()
	if err := loader.WriteJSONL(buf, edges); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeRegister(r RegisterRecord) ([]byte, error) { return json.Marshal(r) }

func encodeAdvance(ts int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(ts))
	return b[:]
}

// encodeEmitted serializes checkpoint entries sorted by key so the frame
// bytes are deterministic regardless of how the emitted set is stored.
func encodeEmitted(entries []EmittedEntry) ([]byte, error) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return json.Marshal(entries)
}

// decodeOp decodes one frame's payload into an Op.
func decodeOp(rec byte, payload []byte) (Op, error) {
	op := Op{Type: rec}
	switch rec {
	case RecEdgeBatch:
		edges, err := loader.ReadJSONL(bytes.NewReader(payload))
		if err != nil {
			return op, fmt.Errorf("wal: decoding edge batch: %w", err)
		}
		op.Edges = edges
	case RecRegister:
		var r RegisterRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return op, fmt.Errorf("wal: decoding register record: %w", err)
		}
		op.Register = &r
	case RecUnregister:
		op.Name = string(payload)
	case RecAdvance:
		if len(payload) != 8 {
			return op, fmt.Errorf("wal: advance payload is %d bytes, want 8", len(payload))
		}
		op.TS = int64(binary.BigEndian.Uint64(payload))
	case RecEmitted:
		if err := json.Unmarshal(payload, &op.Emitted); err != nil {
			return op, fmt.Errorf("wal: decoding emitted checkpoint: %w", err)
		}
	default:
		return op, fmt.Errorf("wal: unknown record type %d", rec)
	}
	return op, nil
}
