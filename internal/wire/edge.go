package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/streamworks/streamworks/internal/graph"
)

// Edge payload layout (all integers varint/uvarint, strings uvarint-length
// prefixed, attribute maps in sorted key order):
//
//	uvarint id, uvarint source, uvarint target
//	string  type
//	varint  timestamp (stream ns)
//	string  source_type, string target_type
//	attrs   attrs, source_attrs, target_attrs
//
// attrs = uvarint count, then per key (sorted): string key, byte kind,
// kind-specific value (string | varint | 8-byte BE float bits | bool byte).
// ArrivedWallNS is process-local observability state and never serialized.

// AppendEdge appends the binary payload for se to dst. Invalid attribute
// values (graph.KindInvalid) are skipped; everything else round-trips
// exactly and the encoding is byte-deterministic.
func AppendEdge(dst []byte, se graph.StreamEdge) []byte {
	dst = binary.AppendUvarint(dst, uint64(se.Edge.ID))
	dst = binary.AppendUvarint(dst, uint64(se.Edge.Source))
	dst = binary.AppendUvarint(dst, uint64(se.Edge.Target))
	dst = appendString(dst, se.Edge.Type)
	dst = binary.AppendVarint(dst, int64(se.Edge.Timestamp))
	dst = appendString(dst, se.SourceType)
	dst = appendString(dst, se.TargetType)
	dst = appendAttrs(dst, se.Edge.Attrs)
	dst = appendAttrs(dst, se.SourceAttrs)
	dst = appendAttrs(dst, se.TargetAttrs)
	return dst
}

// AppendEdgeFrame appends the complete framed envelope for se to dst,
// encoding the payload into scratch (reused across calls to avoid per-edge
// allocation) and returning both grown slices.
func AppendEdgeFrame(dst, scratch []byte, se graph.StreamEdge) ([]byte, []byte) {
	scratch = AppendEdge(scratch[:0], se)
	return AppendFrame(dst, FrameEdge, scratch), scratch
}

// DecodeEdge decodes an edge payload produced by AppendEdge.
func DecodeEdge(payload []byte) (graph.StreamEdge, error) {
	var se graph.StreamEdge
	d := decoder{buf: payload}
	se.Edge.ID = graph.EdgeID(d.uvarint())
	se.Edge.Source = graph.VertexID(d.uvarint())
	se.Edge.Target = graph.VertexID(d.uvarint())
	se.Edge.Type = d.string()
	se.Edge.Timestamp = graph.Timestamp(d.varint())
	se.SourceType = d.string()
	se.TargetType = d.string()
	se.Edge.Attrs = d.attrs()
	se.SourceAttrs = d.attrs()
	se.TargetAttrs = d.attrs()
	if d.err != nil {
		return graph.StreamEdge{}, d.err
	}
	if len(d.buf) != 0 {
		return graph.StreamEdge{}, fmt.Errorf("%w: %d trailing bytes after edge", ErrCorrupt, len(d.buf))
	}
	return se, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendAttrs(dst []byte, a graph.Attributes) []byte {
	n := 0
	for _, v := range a {
		if v.IsValid() {
			n++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	if n == 0 {
		return dst
	}
	keys := make([]string, 0, len(a))
	for k, v := range a {
		if v.IsValid() {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = appendString(dst, k)
		v := a[k]
		dst = append(dst, byte(v.Kind()))
		switch v.Kind() {
		case graph.KindString:
			dst = appendString(dst, v.Str())
		case graph.KindInt:
			dst = binary.AppendVarint(dst, v.Int64())
		case graph.KindFloat:
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Float64()))
		case graph.KindBool:
			b := byte(0)
			if v.BoolVal() {
				b = 1
			}
			dst = append(dst, b)
		}
	}
	return dst
}

// decoder is a cursor over a frame payload. The first malformed field
// latches err (always wrapping ErrCorrupt) and every later read is a no-op,
// so codecs read straight through and check once.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail("string length %d exceeds %d remaining", n, len(d.buf))
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail("unexpected end of payload")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) attrs() graph.Attributes {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.buf)) { // every entry takes ≥1 byte
		d.fail("attr count %d exceeds %d remaining bytes", n, len(d.buf))
		return nil
	}
	a := make(graph.Attributes, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.string()
		kind := graph.Kind(d.byte())
		switch kind {
		case graph.KindString:
			a[k] = graph.String(d.string())
		case graph.KindInt:
			a[k] = graph.Int(d.varint())
		case graph.KindFloat:
			if len(d.buf) < 8 {
				d.fail("truncated float value")
				return nil
			}
			a[k] = graph.Float(math.Float64frombits(binary.BigEndian.Uint64(d.buf)))
			d.buf = d.buf[8:]
		case graph.KindBool:
			a[k] = graph.Bool(d.byte() != 0)
		default:
			d.fail("unknown attr kind %d", kind)
			return nil
		}
	}
	if d.err != nil {
		return nil
	}
	return a
}
