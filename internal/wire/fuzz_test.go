package wire_test

import (
	"bytes"
	"errors"
	"testing"

	"github.com/streamworks/streamworks/internal/wire"
)

// FuzzFrameDecode mirrors FuzzWALDecode: whatever the bytes, the decoder
// must classify every failure as torn or corrupt (never panic, never
// mis-advance), and any payload that does decode must survive a re-encode
// round trip (decode∘encode∘decode = decode).
func FuzzFrameDecode(f *testing.F) {
	// Seed with real streams from the gen workloads: magic + edge frames
	// from netflow and news, plus a match frame.
	var scratch []byte
	seed := append([]byte(nil), wire.StreamMagic...)
	for _, se := range testNetflowWorkload().Edges[:32] {
		seed, scratch = wire.AppendEdgeFrame(seed, scratch, se)
	}
	for _, se := range testNewsWorkload().Edges[:32] {
		seed, scratch = wire.AppendEdgeFrame(seed, scratch, se)
	}
	seed, _ = wire.AppendMatchFrame(seed, scratch, testMatchReport())
	f.Add(seed)
	// Torn: truncate mid-frame.
	f.Add(seed[:len(seed)-5])
	// CRC-flipped: damage one byte in the middle.
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	// Magic alone, empty input, and a single handcrafted attr-heavy edge.
	f.Add(append([]byte(nil), wire.StreamMagic...))
	f.Add([]byte{})
	one, _ := wire.AppendEdgeFrame(nil, nil, attrHeavyEdge())
	f.Add(one)

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		if len(data) >= len(wire.StreamMagic) && bytes.Equal(data[:len(wire.StreamMagic)], wire.StreamMagic) {
			off = len(wire.StreamMagic)
		}
		for off < len(data) {
			typ, payload, n, err := wire.DecodeFrame(data[off:])
			if err != nil {
				if !errors.Is(err, wire.ErrTorn) && !errors.Is(err, wire.ErrCorrupt) {
					t.Fatalf("DecodeFrame: unexpected error class %v", err)
				}
				return
			}
			if n <= 8 {
				t.Fatalf("DecodeFrame returned non-advancing size %d", n)
			}
			switch typ {
			case wire.FrameEdge:
				se, err := wire.DecodeEdge(payload)
				if err != nil {
					if !errors.Is(err, wire.ErrCorrupt) {
						t.Fatalf("DecodeEdge: unexpected error class %v", err)
					}
					break
				}
				// Varint encodings in fuzzed input may be non-minimal, so
				// bytes can differ — but the decoded value must be stable
				// through our own canonical encoding.
				re := wire.AppendEdge(nil, se)
				se2, err := wire.DecodeEdge(re)
				if err != nil {
					t.Fatalf("re-decode of canonical encode failed: %v", err)
				}
				if !bytes.Equal(re, wire.AppendEdge(nil, se2)) {
					t.Fatalf("canonical edge encoding not a fixed point")
				}
			case wire.FrameMatch:
				rep, err := wire.DecodeMatch(payload)
				if err != nil {
					if !errors.Is(err, wire.ErrCorrupt) {
						t.Fatalf("DecodeMatch: unexpected error class %v", err)
					}
					break
				}
				re := wire.AppendMatch(nil, rep)
				rep2, err := wire.DecodeMatch(re)
				if err != nil {
					t.Fatalf("re-decode of canonical encode failed: %v", err)
				}
				if !bytes.Equal(re, wire.AppendMatch(nil, rep2)) {
					t.Fatalf("canonical match encoding not a fixed point")
				}
			}
			off += n
		}
	})
}
