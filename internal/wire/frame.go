// Package wire is the binary frame transport shared by ingest and match
// delivery. It reuses the WAL's framed-envelope style (internal/wal):
// an 8-byte stream magic followed by frames of
//
//	uint32 length   — big-endian, covers the type byte + payload
//	uint32 crc32    — IEEE, over the type byte + payload
//	byte   type     — one of the Frame* types
//	bytes  payload
//
// A frame is valid iff the declared length fits in the remaining bytes and
// the CRC matches. Payload encodings (edge.go, match.go) are
// byte-deterministic — attribute maps are emitted in sorted key order — so
// encode is a pure function of the value and match sets can be compared
// byte-for-byte across transports.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// StreamMagic identifies a StreamWorks binary wire stream, version 1. Both
// the persistent ingest stream and the binary match stream start with it.
var StreamMagic = []byte("SWIRE001")

// ContentTypeBinary is the negotiated media type for the binary frame
// transport, used as Content-Type on ingest and Accept on match delivery.
const ContentTypeBinary = "application/x-streamworks-frame"

// Frame types.
const (
	// FrameEdge carries one graph.StreamEdge (edge.go).
	FrameEdge byte = 1
	// FrameMatch carries one export.MatchReport (match.go).
	FrameMatch byte = 2
)

const (
	frameHeaderLen = 9 // 4 length + 4 crc + 1 type
	// maxFramePayload rejects absurd declared lengths before allocating.
	// Edges and match reports are small; 16 MiB is generous headroom.
	maxFramePayload = 16 << 20
)

var (
	// ErrTorn means the data ends before the frame it declares — a
	// truncated stream or a partial read.
	ErrTorn = errors.New("wire: torn frame")
	// ErrCorrupt means the frame is structurally invalid: CRC mismatch,
	// oversized length, unknown frame type or malformed payload.
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrBadMagic means the stream does not start with StreamMagic.
	ErrBadMagic = errors.New("wire: bad stream magic")
)

// AppendFrame appends the framed envelope for (typ, payload) to dst.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)+1))
	hdr[8] = typ
	crc := crc32.Update(crc32.Update(0, crc32.IEEETable, hdr[8:9]), crc32.IEEETable, payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame decodes the first frame in data, returning the frame type,
// its payload (aliasing data) and the total encoded size. It distinguishes
// a torn tail (ErrTorn: data simply ends early) from corruption
// (ErrCorrupt: CRC mismatch or nonsense header).
func DecodeFrame(data []byte) (typ byte, payload []byte, n int, err error) {
	if len(data) < frameHeaderLen {
		return 0, nil, 0, ErrTorn
	}
	length := binary.BigEndian.Uint32(data[0:4])
	if length == 0 || length > maxFramePayload {
		return 0, nil, 0, ErrCorrupt
	}
	total := 8 + int(length)
	if len(data) < total {
		return 0, nil, 0, ErrTorn
	}
	body := data[8:total]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[4:8]) {
		return 0, nil, 0, ErrCorrupt
	}
	typ = body[0]
	if typ != FrameEdge && typ != FrameMatch {
		return 0, nil, 0, fmt.Errorf("%w: unknown frame type %d", ErrCorrupt, typ)
	}
	return typ, body[1:], total, nil
}

// Reader decodes a frame stream incrementally from r: the 8-byte magic,
// then one frame per Next call. The returned payload is valid only until
// the next call — callers that retain data must copy.
type Reader struct {
	br    *bufio.Reader
	buf   []byte
	magic bool
}

// NewReader wraps r in a streaming frame decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Buffered reports how many decoded-but-unread bytes sit in the reader's
// buffer — a Next call that needs more than this will block on the
// underlying reader. Streaming consumers use it to dispatch partial work
// before blocking.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// Next reads the next frame. It returns io.EOF on a clean end-of-stream
// (between frames), ErrTorn when the stream ends mid-frame, and ErrCorrupt
// on structural damage. The magic header is consumed on the first call.
func (r *Reader) Next() (typ byte, payload []byte, err error) {
	if !r.magic {
		var m [8]byte
		if _, err := io.ReadFull(r.br, m[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return 0, nil, ErrBadMagic
			}
			return 0, nil, err
		}
		if !bytes.Equal(m[:], StreamMagic) {
			return 0, nil, ErrBadMagic
		}
		r.magic = true
	}
	var hdr [frameHeaderLen - 1]byte // length + crc; type is part of body
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, ErrTorn
		}
		return 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	if length == 0 || length > maxFramePayload {
		return 0, nil, ErrCorrupt
	}
	if cap(r.buf) < int(length) {
		r.buf = make([]byte, length)
	}
	body := r.buf[:length]
	if _, err := io.ReadFull(r.br, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, ErrTorn
		}
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(hdr[4:8]) {
		return 0, nil, ErrCorrupt
	}
	typ = body[0]
	if typ != FrameEdge && typ != FrameMatch {
		return 0, nil, fmt.Errorf("%w: unknown frame type %d", ErrCorrupt, typ)
	}
	return typ, body[1:], nil
}
