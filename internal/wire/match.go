package wire

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/streamworks/streamworks/internal/export"
)

// Match payload layout:
//
//	string  query
//	varint  detected_at, span_start, span_end
//	string  signature
//	uvarint binding count, then per binding:
//	        string variable, uvarint vertex_id, string vertex_type,
//	        uvarint attr count, per attr (sorted): string key, string value
//	uvarint edge-ID count, then uvarint per edge ID
//
// DeliveredWallNS / ArrivedWallNS are process-local and never serialized,
// matching the JSON transport (`json:"-"`).

// AppendMatch appends the binary payload for rep to dst. The encoding is
// byte-deterministic: binding attrs are emitted in sorted key order.
func AppendMatch(dst []byte, rep export.MatchReport) []byte {
	dst = appendString(dst, rep.Query)
	dst = binary.AppendVarint(dst, rep.DetectedAt)
	dst = binary.AppendVarint(dst, rep.SpanStart)
	dst = binary.AppendVarint(dst, rep.SpanEnd)
	dst = appendString(dst, rep.Signature)
	dst = binary.AppendUvarint(dst, uint64(len(rep.Bindings)))
	for _, b := range rep.Bindings {
		dst = appendString(dst, b.Variable)
		dst = binary.AppendUvarint(dst, b.VertexID)
		dst = appendString(dst, b.VertexType)
		dst = binary.AppendUvarint(dst, uint64(len(b.Attrs)))
		if len(b.Attrs) > 0 {
			keys := make([]string, 0, len(b.Attrs))
			for k := range b.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				dst = appendString(dst, k)
				dst = appendString(dst, b.Attrs[k])
			}
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(rep.EdgeIDs)))
	for _, id := range rep.EdgeIDs {
		dst = binary.AppendUvarint(dst, id)
	}
	return dst
}

// AppendMatchFrame appends the complete framed envelope for rep to dst,
// encoding the payload into scratch (reused across calls) and returning
// both grown slices.
func AppendMatchFrame(dst, scratch []byte, rep export.MatchReport) ([]byte, []byte) {
	scratch = AppendMatch(scratch[:0], rep)
	return AppendFrame(dst, FrameMatch, scratch), scratch
}

// DecodeMatch decodes a match payload produced by AppendMatch.
func DecodeMatch(payload []byte) (export.MatchReport, error) {
	var rep export.MatchReport
	d := decoder{buf: payload}
	rep.Query = d.string()
	rep.DetectedAt = d.varint()
	rep.SpanStart = d.varint()
	rep.SpanEnd = d.varint()
	rep.Signature = d.string()
	nb := d.uvarint()
	if d.err == nil && nb > uint64(len(d.buf)) { // every binding takes ≥1 byte
		d.fail("binding count %d exceeds %d remaining bytes", nb, len(d.buf))
	}
	if d.err == nil && nb > 0 {
		rep.Bindings = make([]export.Binding, 0, nb)
		for i := uint64(0); i < nb && d.err == nil; i++ {
			var b export.Binding
			b.Variable = d.string()
			b.VertexID = d.uvarint()
			b.VertexType = d.string()
			na := d.uvarint()
			if d.err == nil && na > uint64(len(d.buf)) {
				d.fail("attr count %d exceeds %d remaining bytes", na, len(d.buf))
				break
			}
			if d.err == nil && na > 0 {
				b.Attrs = make(map[string]string, na)
				for j := uint64(0); j < na && d.err == nil; j++ {
					k := d.string()
					b.Attrs[k] = d.string()
				}
			}
			rep.Bindings = append(rep.Bindings, b)
		}
	}
	ne := d.uvarint()
	if d.err == nil && ne > uint64(len(d.buf)) {
		d.fail("edge-ID count %d exceeds %d remaining bytes", ne, len(d.buf))
	}
	if d.err == nil && ne > 0 {
		rep.EdgeIDs = make([]uint64, 0, ne)
		for i := uint64(0); i < ne && d.err == nil; i++ {
			rep.EdgeIDs = append(rep.EdgeIDs, d.uvarint())
		}
	}
	if d.err != nil {
		return export.MatchReport{}, d.err
	}
	if len(d.buf) != 0 {
		return export.MatchReport{}, fmt.Errorf("%w: %d trailing bytes after match", ErrCorrupt, len(d.buf))
	}
	return rep, nil
}
