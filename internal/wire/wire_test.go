package wire_test

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/iotest"
	"time"

	"github.com/streamworks/streamworks/internal/export"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/wire"
)

func testNetflowWorkload() gen.Workload {
	cfg := gen.NetFlowConfig{
		Hosts:       80,
		Servers:     10,
		Edges:       600,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        51,
	}
	return gen.NetFlowWorkload(cfg, 90*time.Second)
}

func testNewsWorkload() gen.Workload {
	cfg := gen.DefaultNewsConfig()
	cfg.Articles = 80
	cfg.Keywords = 40
	cfg.Locations = 8
	cfg.EventClusters = 1
	return gen.NewsWorkload(cfg, 5*time.Minute, 2)
}

// attrHeavyEdge exercises every attribute kind on every attribute map.
func attrHeavyEdge() graph.StreamEdge {
	return graph.StreamEdge{
		Edge: graph.Edge{
			ID:        18446744073709551615, // max uint64
			Source:    42,
			Target:    7,
			Type:      "flow",
			Timestamp: -12345, // negative stream time must survive varint
			Attrs: graph.Attributes{
				"bytes":   graph.Int(-9e15),
				"proto":   graph.String("tcp"),
				"rate":    graph.Float(3.14159),
				"flagged": graph.Bool(true),
				"empty":   graph.String(""),
			},
		},
		SourceType:  "host",
		TargetType:  "server",
		SourceAttrs: graph.Attributes{"os": graph.String("linux"), "up": graph.Bool(false)},
		TargetAttrs: graph.Attributes{"load": graph.Float(0.5)},
	}
}

func testMatchReport() export.MatchReport {
	return export.MatchReport{
		Query:      "exfil",
		DetectedAt: 1371859200000000000,
		SpanStart:  1371859100000000000,
		SpanEnd:    1371859200000000000,
		Signature:  "0:17|1:42|2:99",
		Bindings: []export.Binding{
			{Variable: "a", VertexID: 17, VertexType: "host", Attrs: map[string]string{"os": "linux", "dc": "east"}},
			{Variable: "b", VertexID: 42, VertexType: "server"},
		},
		EdgeIDs: []uint64{17, 42, 99},
	}
}

// TestEdgeRoundTrip is the decode∘encode = id property over generated
// netflow/news edges plus a handcrafted attr-heavy edge.
func TestEdgeRoundTrip(t *testing.T) {
	edges := []graph.StreamEdge{attrHeavyEdge(), {}}
	for _, w := range []gen.Workload{testNetflowWorkload(), testNewsWorkload()} {
		edges = append(edges, w.Edges...)
	}
	var scratch []byte
	for i, se := range edges {
		se.ArrivedWallNS = 0 // process-local, never serialized
		var frame []byte
		frame, scratch = wire.AppendEdgeFrame(frame, scratch, se)
		typ, payload, n, err := wire.DecodeFrame(frame)
		if err != nil {
			t.Fatalf("edge %d: DecodeFrame: %v", i, err)
		}
		if typ != wire.FrameEdge || n != len(frame) {
			t.Fatalf("edge %d: typ=%d n=%d len=%d", i, typ, n, len(frame))
		}
		got, err := wire.DecodeEdge(payload)
		if err != nil {
			t.Fatalf("edge %d: DecodeEdge: %v", i, err)
		}
		// Byte-determinism doubles as structural equality, sidestepping
		// nil-vs-empty map noise: identical re-encode ⇒ identical value.
		re := wire.AppendEdge(nil, got)
		if !bytes.Equal(re, wire.AppendEdge(nil, se)) {
			t.Fatalf("edge %d: re-encode diverges\n got %+v\nwant %+v", i, got, se)
		}
	}
	// Full structural equality on the handcrafted edge.
	want := attrHeavyEdge()
	var frame []byte
	frame, _ = wire.AppendEdgeFrame(frame, nil, want)
	_, payload, _, err := wire.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodeEdge(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestEncodeByteDeterministic re-encodes the same logical value built with
// different map insertion orders and demands identical bytes.
func TestEncodeByteDeterministic(t *testing.T) {
	base := attrHeavyEdge()
	ref := wire.AppendEdge(nil, base)
	for i := 0; i < 32; i++ {
		// Rebuild the attribute maps from scratch; Go map iteration order
		// varies run to run, so 32 rebuilds exercise different layouts.
		rebuilt := attrHeavyEdge()
		if got := wire.AppendEdge(nil, rebuilt); !bytes.Equal(got, ref) {
			t.Fatalf("encode not deterministic on rebuild %d", i)
		}
	}
	rep := testMatchReport()
	refM := wire.AppendMatch(nil, rep)
	for i := 0; i < 32; i++ {
		if got := wire.AppendMatch(nil, testMatchReport()); !bytes.Equal(got, refM) {
			t.Fatalf("match encode not deterministic on rebuild %d", i)
		}
	}
}

func TestMatchRoundTrip(t *testing.T) {
	for i, want := range []export.MatchReport{testMatchReport(), {}} {
		var frame, scratch []byte
		frame, _ = wire.AppendMatchFrame(frame, scratch, want)
		typ, payload, n, err := wire.DecodeFrame(frame)
		if err != nil {
			t.Fatalf("match %d: DecodeFrame: %v", i, err)
		}
		if typ != wire.FrameMatch || n != len(frame) {
			t.Fatalf("match %d: typ=%d n=%d len=%d", i, typ, n, len(frame))
		}
		got, err := wire.DecodeMatch(payload)
		if err != nil {
			t.Fatalf("match %d: DecodeMatch: %v", i, err)
		}
		if !bytes.Equal(wire.AppendMatch(nil, got), wire.AppendMatch(nil, want)) {
			t.Fatalf("match %d: re-encode diverges\n got %+v\nwant %+v", i, got, want)
		}
	}
	want := testMatchReport()
	payload := wire.AppendMatch(nil, want)
	got, err := wire.DecodeMatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestReaderStream decodes a mixed stream through the incremental Reader,
// via a one-byte-at-a-time reader to exercise partial reads.
func TestReaderStream(t *testing.T) {
	edges := testNetflowWorkload().Edges[:64]
	rep := testMatchReport()
	buf := append([]byte(nil), wire.StreamMagic...)
	var scratch []byte
	for _, se := range edges {
		buf, scratch = wire.AppendEdgeFrame(buf, scratch, se)
	}
	buf, _ = wire.AppendMatchFrame(buf, scratch, rep)

	r := wire.NewReader(iotest.OneByteReader(bytes.NewReader(buf)))
	var gotEdges []graph.StreamEdge
	var gotMatches []export.MatchReport
	for {
		typ, payload, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		switch typ {
		case wire.FrameEdge:
			se, err := wire.DecodeEdge(payload)
			if err != nil {
				t.Fatalf("DecodeEdge: %v", err)
			}
			gotEdges = append(gotEdges, se)
		case wire.FrameMatch:
			m, err := wire.DecodeMatch(payload)
			if err != nil {
				t.Fatalf("DecodeMatch: %v", err)
			}
			gotMatches = append(gotMatches, m)
		}
	}
	if len(gotEdges) != len(edges) || len(gotMatches) != 1 {
		t.Fatalf("decoded %d edges, %d matches; want %d, 1", len(gotEdges), len(gotMatches), len(edges))
	}
	for i := range edges {
		want := edges[i]
		want.ArrivedWallNS = 0
		if !bytes.Equal(wire.AppendEdge(nil, gotEdges[i]), wire.AppendEdge(nil, want)) {
			t.Fatalf("edge %d diverges through Reader", i)
		}
	}
}

func TestReaderErrors(t *testing.T) {
	valid := append([]byte(nil), wire.StreamMagic...)
	valid, _ = wire.AppendEdgeFrame(valid, nil, attrHeavyEdge())

	t.Run("bad-magic", func(t *testing.T) {
		r := wire.NewReader(bytes.NewReader([]byte("NOTMAGIC")))
		if _, _, err := r.Next(); !errors.Is(err, wire.ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})
	t.Run("torn", func(t *testing.T) {
		for cut := len(wire.StreamMagic) + 1; cut < len(valid); cut++ {
			r := wire.NewReader(bytes.NewReader(valid[:cut]))
			if _, _, err := r.Next(); !errors.Is(err, wire.ErrTorn) {
				t.Fatalf("cut=%d: want ErrTorn, got %v", cut, err)
			}
		}
	})
	t.Run("crc-flip", func(t *testing.T) {
		for bit := 0; bit < 8; bit++ {
			damaged := append([]byte(nil), valid...)
			damaged[len(damaged)-1] ^= 1 << bit // flip payload tail, CRC must catch it
			r := wire.NewReader(bytes.NewReader(damaged))
			if _, _, err := r.Next(); !errors.Is(err, wire.ErrCorrupt) {
				t.Fatalf("bit=%d: want ErrCorrupt, got %v", bit, err)
			}
		}
	})
	t.Run("clean-eof", func(t *testing.T) {
		r := wire.NewReader(bytes.NewReader(valid))
		if _, _, err := r.Next(); err != nil {
			t.Fatalf("first frame: %v", err)
		}
		if _, _, err := r.Next(); err != io.EOF {
			t.Fatalf("want io.EOF between frames, got %v", err)
		}
	})
}

func TestDecodeFrameErrors(t *testing.T) {
	frame, _ := wire.AppendEdgeFrame(nil, nil, attrHeavyEdge())
	for cut := 0; cut < len(frame); cut++ {
		if _, _, _, err := wire.DecodeFrame(frame[:cut]); !errors.Is(err, wire.ErrTorn) && !errors.Is(err, wire.ErrCorrupt) {
			t.Fatalf("cut=%d: want torn/corrupt, got %v", cut, err)
		}
	}
	damaged := append([]byte(nil), frame...)
	damaged[4] ^= 0xFF // CRC byte
	if _, _, _, err := wire.DecodeFrame(damaged); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on CRC damage, got %v", err)
	}
}
