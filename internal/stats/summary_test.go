package stats

import (
	"strings"
	"sync"
	"testing"

	"github.com/streamworks/streamworks/internal/graph"
)

func flowEdge(id graph.EdgeID, src, dst graph.VertexID, typ, srcT, dstT string, ts graph.Timestamp) graph.StreamEdge {
	return graph.StreamEdge{
		Edge:       graph.Edge{ID: id, Source: src, Target: dst, Type: typ, Timestamp: ts},
		SourceType: srcT,
		TargetType: dstT,
	}
}

func TestSummaryTypeDistributions(t *testing.T) {
	s := NewSummary()
	s.Observe(flowEdge(1, 1, 2, "flow", "Host", "Host", 1), nil)
	s.Observe(flowEdge(2, 1, 3, "flow", "Host", "Server", 2), nil)
	s.Observe(flowEdge(3, 2, 3, "dns", "Host", "Server", 3), nil)

	if s.TotalEdges() != 3 {
		t.Fatalf("TotalEdges = %d", s.TotalEdges())
	}
	if s.TotalVertices() != 3 {
		t.Fatalf("TotalVertices = %d", s.TotalVertices())
	}
	if s.EdgeTypeCount("flow") != 2 || s.EdgeTypeCount("dns") != 1 {
		t.Fatalf("edge type counts wrong")
	}
	if s.VertexTypeCount("Host") != 2 || s.VertexTypeCount("Server") != 1 {
		t.Fatalf("vertex type counts wrong: Host=%d Server=%d",
			s.VertexTypeCount("Host"), s.VertexTypeCount("Server"))
	}
	dist := s.EdgeTypeDistribution()
	if len(dist) != 2 || dist[0].Type != "flow" || dist[0].Count != 2 {
		t.Fatalf("EdgeTypeDistribution = %v", dist)
	}
	vdist := s.VertexTypeDistribution()
	if len(vdist) != 2 || vdist[0].Type != "Host" {
		t.Fatalf("VertexTypeDistribution = %v", vdist)
	}
}

func TestSummaryVertexRetyping(t *testing.T) {
	s := NewSummary()
	// First sighting has no type, second supplies one.
	s.Observe(flowEdge(1, 1, 2, "flow", "", "Host", 1), nil)
	s.Observe(flowEdge(2, 1, 3, "flow", "Workstation", "Host", 2), nil)
	if s.VertexTypeCount("Workstation") != 1 {
		t.Fatalf("late-arriving vertex type not recorded")
	}
	if s.VertexTypeCount("") != 0 {
		t.Fatalf("untyped count should drop after reclassification, got %d", s.VertexTypeCount(""))
	}
}

func TestSummaryMeanDegree(t *testing.T) {
	s := NewSummary()
	if s.MeanDegree() != 0 {
		t.Fatalf("empty summary mean degree should be 0")
	}
	s.Observe(flowEdge(1, 1, 2, "flow", "Host", "Host", 1), nil)
	s.Observe(flowEdge(2, 1, 3, "flow", "Host", "Host", 2), nil)
	// degrees: v1=2, v2=1, v3=1 → mean 4/3
	if got := s.MeanDegree(); got < 1.32 || got > 1.34 {
		t.Fatalf("MeanDegree = %v", got)
	}
}

func TestSummaryDegreeHistogram(t *testing.T) {
	s := NewSummary()
	// Create a star: vertex 0 gets degree 8, the leaves degree 1.
	for i := 1; i <= 8; i++ {
		s.Observe(flowEdge(graph.EdgeID(i), 0, graph.VertexID(i), "flow", "Hub", "Leaf", graph.Timestamp(i)), nil)
	}
	snap := s.DegreeHistogramSnapshot()
	var total uint64
	for _, b := range snap {
		total += b.Count
	}
	if total != 9 {
		t.Fatalf("histogram should cover 9 vertices, got %d (%v)", total, snap)
	}
	// The hub must be in the bucket whose Low is 8.
	foundHub := false
	for _, b := range snap {
		if b.Low == 8 && b.Count == 1 {
			foundHub = true
		}
	}
	if !foundHub {
		t.Fatalf("hub not in degree-8 bucket: %v", snap)
	}
}

func TestDegreeHistogramMove(t *testing.T) {
	h := NewDegreeHistogram()
	h.Move(0, 1)
	h.Move(1, 2)
	h.Move(2, 3)
	snap := h.Snapshot()
	if len(snap) != 1 || snap[0].Low != 2 || snap[0].Count != 1 {
		t.Fatalf("Snapshot = %v", snap)
	}
	if bucketOf(1) != 0 || bucketOf(2) != 1 || bucketOf(3) != 1 || bucketOf(4) != 2 || bucketOf(1024) != 10 {
		t.Fatalf("bucketOf boundaries wrong")
	}
	if h.String() == "" {
		t.Fatalf("String() empty")
	}
}

func TestSummaryTriadCollection(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	s := NewSummary(WithTriadSampling(1))
	apply := func(se graph.StreamEdge) {
		if _, err := g.AddStreamEdge(se); err != nil {
			t.Fatal(err)
		}
		s.Observe(se, g)
	}
	// Build a wedge: a -req-> b, b -reply-> c. The second edge forms one
	// triad centred at b.
	apply(flowEdge(1, 1, 2, "req", "Host", "Host", 1))
	apply(flowEdge(2, 2, 3, "reply", "Host", "Host", 2))

	dist := s.TriadDistribution()
	if len(dist) == 0 {
		t.Fatalf("no triads recorded")
	}
	key := canonicalTriad("Host", "reply", true, "req", false)
	if s.TriadFrequency(key) == 0 {
		t.Fatalf("expected req/reply triad centred at Host, have %v", dist)
	}
}

func TestSummaryTriadSamplingDisabled(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	s := NewSummary(WithTriadSampling(0))
	for i := 0; i < 10; i++ {
		se := flowEdge(graph.EdgeID(i), 0, graph.VertexID(i+1), "flow", "Hub", "Leaf", graph.Timestamp(i))
		if _, err := g.AddStreamEdge(se); err != nil {
			t.Fatal(err)
		}
		s.Observe(se, g)
	}
	if len(s.TriadDistribution()) != 0 {
		t.Fatalf("triads recorded despite sampling disabled")
	}
}

func TestSummaryObserveGraph(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	g.AddVertex(graph.Vertex{ID: 1, Type: "A"})
	g.AddVertex(graph.Vertex{ID: 2, Type: "B"})
	g.AddVertex(graph.Vertex{ID: 3, Type: "B"})
	g.AddEdge(graph.Edge{ID: 1, Source: 1, Target: 2, Type: "x", Timestamp: 1})
	g.AddEdge(graph.Edge{ID: 2, Source: 1, Target: 3, Type: "y", Timestamp: 2})
	s := NewSummary()
	s.ObserveGraph(g)
	if s.TotalEdges() != 2 || s.TotalVertices() != 3 {
		t.Fatalf("ObserveGraph sizes wrong: %d edges %d vertices", s.TotalEdges(), s.TotalVertices())
	}
	if s.VertexTypeCount("B") != 2 {
		t.Fatalf("vertex types from graph not observed")
	}
}

func TestSummaryConcurrentObserve(t *testing.T) {
	s := NewSummary(WithTriadSampling(0))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := graph.EdgeID(w*1000 + i)
				s.Observe(flowEdge(id, graph.VertexID(w), graph.VertexID(1000+i%10), "flow", "Host", "Host", graph.Timestamp(i)), nil)
			}
		}(w)
	}
	wg.Wait()
	if s.TotalEdges() != 8000 {
		t.Fatalf("TotalEdges = %d, want 8000", s.TotalEdges())
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSummary()
	s.Observe(flowEdge(1, 1, 2, "flow", "Host", "Host", 1), nil)
	out := s.String()
	if !strings.Contains(out, "flow") || !strings.Contains(out, "Host") {
		t.Fatalf("String() missing content:\n%s", out)
	}
}

func TestTriadKeyCanonical(t *testing.T) {
	a := canonicalTriad("Host", "req", true, "reply", false)
	b := canonicalTriad("Host", "reply", false, "req", true)
	if a != b {
		t.Fatalf("canonical triad keys differ: %v vs %v", a, b)
	}
	if a.String() == "" {
		t.Fatalf("empty triad string")
	}
}

func TestTriadTableSelfLoop(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	g.AddEdge(graph.Edge{ID: 1, Source: 1, Target: 2, Type: "flow", Timestamp: 1})
	loop := &graph.Edge{ID: 2, Source: 1, Target: 1, Type: "beacon", Timestamp: 2}
	g.AddEdge(*loop)
	tt := NewTriadTable()
	tt.ObserveEdge(g, loop, func(graph.VertexID) string { return "Host" })
	// The self loop should only scan vertex 1 once.
	if tt.Total() != 1 {
		t.Fatalf("self-loop wedge counted %d times, want 1", tt.Total())
	}
}
