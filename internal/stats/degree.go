package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// DegreeHistogram is a log2-bucketed histogram of vertex degrees. Bucket i
// counts vertices whose degree d satisfies 2^i <= d < 2^(i+1); bucket 0 also
// holds degree-1 vertices and degree-0 vertices are not tracked (a vertex
// only exists in the stream once an edge touches it).
type DegreeHistogram struct {
	buckets []uint64
}

// NewDegreeHistogram returns an empty histogram.
func NewDegreeHistogram() *DegreeHistogram {
	return &DegreeHistogram{buckets: make([]uint64, 1, 40)}
}

// bucketOf returns the bucket index for degree d (d >= 1).
func bucketOf(d int) int {
	if d <= 1 {
		return 0
	}
	return bits.Len(uint(d)) - 1
}

// Move transfers a vertex from bucket(oldDegree) to bucket(newDegree).
// oldDegree of 0 means the vertex is new.
func (h *DegreeHistogram) Move(oldDegree, newDegree int) {
	if oldDegree > 0 {
		ob := bucketOf(oldDegree)
		if ob < len(h.buckets) && h.buckets[ob] > 0 {
			h.buckets[ob]--
		}
	}
	nb := bucketOf(newDegree)
	for len(h.buckets) <= nb {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[nb]++
}

// BucketCount is a (low-degree-bound, count) pair in a degree histogram
// snapshot. The bucket covers degrees in [Low, 2*Low) except for Low == 1
// which covers exactly degree 1.
type BucketCount struct {
	Low   int
	Count uint64
}

// Snapshot returns the populated buckets in ascending degree order.
func (h *DegreeHistogram) Snapshot() []BucketCount {
	out := make([]BucketCount, 0, len(h.buckets))
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		out = append(out, BucketCount{Low: 1 << i, Count: c})
	}
	return out
}

// String renders the histogram one bucket per line.
func (h *DegreeHistogram) String() string {
	var sb strings.Builder
	for _, b := range h.Snapshot() {
		fmt.Fprintf(&sb, "deg>=%-8d %d\n", b.Low, b.Count)
	}
	return sb.String()
}
