package stats_test

// Property tests for the cardinality estimator, the input every planning
// and re-planning decision rests on: estimates must be finite and
// non-negative for arbitrary query graphs over arbitrary observed streams,
// and monotone non-increasing as predicates are added (a predicate can only
// filter). Queries are randomized over the netflow corpus's vocabulary and
// the summary is seeded from a real generated stream.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/stats"
)

var (
	propVertexTypes = []string{gen.TypeHost, gen.TypeServer, ""}
	propEdgeTypes   = []string{
		gen.EdgeFlow, gen.EdgeDNS, gen.EdgeLogin, gen.EdgeICMPReq,
		gen.EdgeICMPReply, gen.EdgeScan, gen.EdgeInfect, "",
	}
	propAttrs = []string{"bytes", "port", "user", "qname"}
)

// corpusSummary observes a small drift-workload stream (it contains every
// edge type, including the scan/infect regime) into a fresh summary.
func corpusSummary(tb testing.TB) *stats.Summary {
	tb.Helper()
	w := gen.BenchDriftWorkload(4000, 200, 10*time.Second)
	s := stats.NewSummary(stats.WithTriadSampling(5))
	for _, se := range w.Edges {
		s.Observe(se, nil)
	}
	return s
}

// randPredicate builds one attribute predicate.
func randPredicate(rng *rand.Rand) query.Predicate {
	attr := propAttrs[rng.Intn(len(propAttrs))]
	switch rng.Intn(3) {
	case 0:
		return query.Eq(attr, graph.Int(int64(rng.Intn(1000))))
	case 1:
		return query.Gt(attr, graph.Int(int64(rng.Intn(1_000_000))))
	default:
		return query.Eq(attr, graph.String(fmt.Sprintf("v%d", rng.Intn(50))))
	}
}

// randQuery builds a random connected query graph of 2-6 edges: each new
// edge attaches to an existing vertex (keeping the graph connected, as the
// planner requires), with random types and a sprinkling of predicates.
// extra predicates (pre-built, so they consume none of rng's sequence and
// the structure stays identical with and without them) are attached to the
// first pattern edge.
func randQuery(rng *rand.Rand, extra []query.Predicate) *query.Graph {
	nv := 2 + rng.Intn(4)
	b := query.NewBuilder("prop")
	names := make([]string, nv)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
		var preds []query.Predicate
		if rng.Intn(4) == 0 {
			preds = append(preds, randPredicate(rng))
		}
		b.Vertex(names[i], propVertexTypes[rng.Intn(len(propVertexTypes))], preds...)
	}
	ne := 2 + rng.Intn(5)
	for i := 0; i < ne; i++ {
		// Keep the pattern connected: source among already-touched
		// vertices, target anywhere.
		src := names[rng.Intn(min(max(i, 1), nv))]
		dst := names[rng.Intn(nv)]
		if src == dst {
			dst = names[(rng.Intn(nv)+1)%nv]
			if src == dst {
				dst = names[(rng.Intn(nv)+2)%nv]
			}
		}
		var preds []query.Predicate
		if i == 0 {
			preds = append(preds, extra...)
		}
		if rng.Intn(4) == 0 {
			preds = append(preds, randPredicate(rng))
		}
		b.Edge(src, dst, propEdgeTypes[rng.Intn(len(propEdgeTypes))], preds...)
	}
	q, err := b.Build()
	if err != nil {
		return nil
	}
	return q
}

func TestEstimatorCardinalityFiniteNonNegative(t *testing.T) {
	s := corpusSummary(t)
	for _, est := range []*stats.Estimator{
		stats.NewEstimator(s),
		stats.NewEstimator(nil),
	} {
		rng := rand.New(rand.NewSource(991))
		for i := 0; i < 400; i++ {
			q := randQuery(rng, nil)
			if q == nil {
				continue
			}
			card := est.SubgraphCardinality(q, q.EdgeIDs())
			if math.IsNaN(card) || math.IsInf(card, 0) {
				t.Fatalf("iteration %d: cardinality not finite: %v\n%v", i, card, q)
			}
			if card < 0 {
				t.Fatalf("iteration %d: negative cardinality %v\n%v", i, card, q)
			}
			sel := est.Selectivity(q, q.EdgeIDs())
			if math.IsNaN(sel) || math.IsInf(sel, 0) || sel < 0 {
				t.Fatalf("iteration %d: bad selectivity %v", i, sel)
			}
			// Every subset of the edges must be estimable too (the planner
			// costs arbitrary primitives).
			ids := q.EdgeIDs()
			sub := ids[:1+rng.Intn(len(ids))]
			if c := est.SubgraphCardinality(q, sub); math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
				t.Fatalf("iteration %d: bad subset cardinality %v", i, c)
			}
		}
	}
}

// TestEstimatorMonotoneInPredicates: the same query graph with strictly
// more predicates can never have a larger estimated cardinality — a
// predicate filters candidates, it cannot create them. The pair (q0, q1)
// is the same random structure built with 0 and then k extra predicates on
// the first pattern edge.
func TestEstimatorMonotoneInPredicates(t *testing.T) {
	s := corpusSummary(t)
	est := stats.NewEstimator(s)
	const eps = 1e-9
	for seed := int64(0); seed < 300; seed++ {
		for k := 1; k <= 3; k++ {
			predRng := rand.New(rand.NewSource(seed + 100_000))
			extra := make([]query.Predicate, k)
			for i := range extra {
				extra[i] = randPredicate(predRng)
			}
			q0 := randQuery(rand.New(rand.NewSource(seed)), nil)
			qk := randQuery(rand.New(rand.NewSource(seed)), extra)
			if q0 == nil || qk == nil {
				continue
			}
			c0 := est.SubgraphCardinality(q0, q0.EdgeIDs())
			ck := est.SubgraphCardinality(qk, qk.EdgeIDs())
			if ck > c0+eps {
				t.Fatalf("seed %d: adding %d predicates increased the estimate: %v -> %v\nbefore: %v\nafter: %v",
					seed, k, c0, ck, q0, qk)
			}
		}
	}
}

// TestGraphSourceEstimatorAgreesOnShape: the window-backed estimator (the
// drift detector's source) must satisfy the same invariants over a live
// graph as the summary-backed one does over the stream.
func TestGraphSourceEstimatorAgreesOnShape(t *testing.T) {
	w := gen.BenchDriftWorkload(3000, 150, 10*time.Second)
	g := graph.New(graph.WithAutoVertices())
	for _, se := range w.Edges {
		if _, err := g.AddStreamEdge(se); err != nil {
			t.Fatal(err)
		}
	}
	est := stats.NewEstimatorFrom(stats.GraphSource{G: g})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		q := randQuery(rng, nil)
		if q == nil {
			continue
		}
		card := est.SubgraphCardinality(q, q.EdgeIDs())
		if math.IsNaN(card) || math.IsInf(card, 0) || card < 0 {
			t.Fatalf("iteration %d: bad window cardinality %v", i, card)
		}
	}
	// The adapter must report the live counts verbatim.
	if got, want := est.EdgeCardinality(&query.Edge{Type: gen.EdgeScan}), float64(g.CountEdgesOfType(gen.EdgeScan)); got != want {
		t.Fatalf("EdgeCardinality(scan) = %v, want live count %v", got, want)
	}
}
