package stats

import (
	"fmt"
	"sort"

	"github.com/streamworks/streamworks/internal/graph"
)

// TriadKey identifies a multi-relational triad (a two-edge wedge) by the
// type of its centre vertex, the two edge types involved and their
// orientation relative to the centre. It is the unit of the paper's
// "multi-relational triad distribution" (§4.3): triads capture which pairs
// of relations co-occur around a vertex, which is exactly the information
// the planner needs to estimate the selectivity of two-edge primitives.
type TriadKey struct {
	CenterType string
	// EdgeTypeA and EdgeTypeB are the two relation labels, stored in
	// lexicographic order together with their orientations so that the key
	// is canonical regardless of discovery order.
	EdgeTypeA string
	EdgeTypeB string
	// OutA / OutB report whether the respective edge points away from the
	// centre vertex.
	OutA bool
	OutB bool
}

// canonicalTriad builds a canonical TriadKey from the two (type, outgoing)
// legs of a wedge.
func canonicalTriad(centerType, typeA string, outA bool, typeB string, outB bool) TriadKey {
	if typeB < typeA || (typeB == typeA && outB && !outA) {
		typeA, typeB = typeB, typeA
		outA, outB = outB, outA
	}
	return TriadKey{CenterType: centerType, EdgeTypeA: typeA, EdgeTypeB: typeB, OutA: outA, OutB: outB}
}

// String renders the triad as "(typeA dir) center (typeB dir)".
func (k TriadKey) String() string {
	dir := func(out bool) string {
		if out {
			return "out"
		}
		return "in"
	}
	return fmt.Sprintf("%s[%s %s | %s %s]", k.CenterType, k.EdgeTypeA, dir(k.OutA), k.EdgeTypeB, dir(k.OutB))
}

// TriadCount pairs a triad signature with its observed frequency.
type TriadCount struct {
	Key   TriadKey
	Count uint64
}

// TriadTable accumulates triad frequencies. It is not safe for concurrent
// use on its own; Summary guards it with its own lock.
type TriadTable struct {
	counts map[TriadKey]uint64
	total  uint64
}

// NewTriadTable returns an empty table.
func NewTriadTable() *TriadTable {
	return &TriadTable{counts: make(map[TriadKey]uint64)}
}

// ObserveEdge records every wedge the new edge e forms with edges already
// incident to its endpoints in g. typeOf resolves vertex types for centre
// vertices (the summary knows types even for vertices whose metadata arrived
// on earlier edges).
func (t *TriadTable) ObserveEdge(g *graph.Graph, e *graph.Edge, typeOf func(graph.VertexID) string) {
	t.observeAround(g, e, e.Source, typeOf)
	if e.Target != e.Source {
		t.observeAround(g, e, e.Target, typeOf)
	}
}

func (t *TriadTable) observeAround(g *graph.Graph, e *graph.Edge, center graph.VertexID, typeOf func(graph.VertexID) string) {
	ct := typeOf(center)
	newOut := e.Source == center
	// Walk the two incidence lists directly; IncidentEdges would allocate a
	// combined slice per observed edge.
	observe := func(other *graph.Edge) {
		if other.ID == e.ID {
			return
		}
		otherOut := other.Source == center
		key := canonicalTriad(ct, e.Type, newOut, other.Type, otherOut)
		t.counts[key]++
		t.total++
	}
	for _, other := range g.OutEdges(center) {
		observe(other)
	}
	for _, other := range g.InEdges(center) {
		observe(other)
	}
}

// Count returns the frequency recorded for the triad key.
func (t *TriadTable) Count(key TriadKey) uint64 { return t.counts[key] }

// Total returns the total number of wedges recorded.
func (t *TriadTable) Total() uint64 { return t.total }

// Snapshot returns all triads sorted by descending count then key string.
func (t *TriadTable) Snapshot() []TriadCount {
	out := make([]TriadCount, 0, len(t.counts))
	for k, c := range t.counts {
		out = append(out, TriadCount{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}
