package stats

import (
	"testing"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

// newsSummary builds a summary resembling the paper's news workload: many
// "mentions" edges, few "located" edges, lots of Articles/Keywords and a
// handful of Locations.
func newsSummary() *Summary {
	s := NewSummary(WithTriadSampling(0))
	id := graph.EdgeID(0)
	next := func() graph.EdgeID { id++; return id }
	// 80 mentions edges: Article -> Keyword
	for i := 0; i < 80; i++ {
		s.Observe(graph.StreamEdge{
			Edge:       graph.Edge{ID: next(), Source: graph.VertexID(i), Target: graph.VertexID(1000 + i%20), Type: "mentions"},
			SourceType: "Article", TargetType: "Keyword",
		}, nil)
	}
	// 20 located edges: Article -> Location
	for i := 0; i < 20; i++ {
		s.Observe(graph.StreamEdge{
			Edge:       graph.Edge{ID: next(), Source: graph.VertexID(i), Target: graph.VertexID(2000 + i%3), Type: "located"},
			SourceType: "Article", TargetType: "Location",
		}, nil)
	}
	return s
}

func newsQuery() *query.Graph {
	return query.NewBuilder("news").
		Vertex("a1", "Article").
		Vertex("a2", "Article").
		Vertex("k", "Keyword").
		Vertex("l", "Location").
		Edge("a1", "k", "mentions").
		Edge("a2", "k", "mentions").
		Edge("a1", "l", "located").
		Edge("a2", "l", "located").
		MustBuild()
}

func TestEdgeCardinality(t *testing.T) {
	s := newsSummary()
	e := NewEstimator(s)
	q := newsQuery()
	mentions := e.EdgeCardinality(q.Edge(0))
	located := e.EdgeCardinality(q.Edge(2))
	if mentions != 80 {
		t.Fatalf("mentions cardinality = %v, want 80", mentions)
	}
	if located != 20 {
		t.Fatalf("located cardinality = %v, want 20", located)
	}
	if located >= mentions {
		t.Fatalf("located must be more selective than mentions")
	}
}

func TestEdgeCardinalityUntypedAndUndirected(t *testing.T) {
	s := newsSummary()
	e := NewEstimator(s)
	q := query.NewBuilder("any").
		Vertex("x", "").Vertex("y", "").
		UndirectedEdge("x", "y", "").
		MustBuild()
	// 100 edges total, doubled for the undirected pattern.
	if got := e.EdgeCardinality(q.Edge(0)); got != 200 {
		t.Fatalf("undirected untyped cardinality = %v, want 200", got)
	}
}

func TestEdgeCardinalityPredicateDiscount(t *testing.T) {
	s := newsSummary()
	e := NewEstimator(s)
	q := query.NewBuilder("pred").
		Vertex("a", "Article").Vertex("k", "Keyword").
		Edge("a", "k", "mentions", query.Eq("weight", graph.Int(3))).
		MustBuild()
	got := e.EdgeCardinality(q.Edge(0))
	want := 80 * DefaultPredicateSelectivity
	if got != want {
		t.Fatalf("predicate discount wrong: %v want %v", got, want)
	}
	e.SetPredicateSelectivity(0.5)
	if got := e.EdgeCardinality(q.Edge(0)); got != 40 {
		t.Fatalf("overridden selectivity wrong: %v", got)
	}
	// Out-of-range overrides are ignored.
	e.SetPredicateSelectivity(0)
	if got := e.EdgeCardinality(q.Edge(0)); got != 40 {
		t.Fatalf("invalid selectivity override applied: %v", got)
	}
}

func TestVertexCardinality(t *testing.T) {
	s := newsSummary()
	e := NewEstimator(s)
	q := newsQuery()
	art, _ := q.VertexByName("a1")
	loc, _ := q.VertexByName("l")
	if e.VertexCardinality(art) != 80 {
		t.Fatalf("article cardinality = %v", e.VertexCardinality(art))
	}
	if e.VertexCardinality(loc) != 3 {
		t.Fatalf("location cardinality = %v", e.VertexCardinality(loc))
	}
	untyped := &query.Vertex{Name: "x"}
	if e.VertexCardinality(untyped) != float64(s.TotalVertices()) {
		t.Fatalf("untyped vertex cardinality should be |V|")
	}
}

func TestSubgraphCardinalityRanksPrimitives(t *testing.T) {
	s := newsSummary()
	e := NewEstimator(s)
	q := newsQuery()
	// Wedge of two mentions (shared keyword) vs wedge of two located
	// (shared location): located-located must be estimated rarer because the
	// located edges are 4x less frequent.
	mentionsWedge := e.SubgraphCardinality(q, []query.EdgeID{0, 1})
	locatedWedge := e.SubgraphCardinality(q, []query.EdgeID{2, 3})
	if locatedWedge >= mentionsWedge {
		t.Fatalf("located wedge (%v) should be rarer than mentions wedge (%v)", locatedWedge, mentionsWedge)
	}
	whole := e.SubgraphCardinality(q, q.EdgeIDs())
	if whole <= 0 {
		t.Fatalf("whole-query estimate must be positive, got %v", whole)
	}
}

func TestSubgraphCardinalityEmptyAndNil(t *testing.T) {
	e := NewEstimator(nil)
	if e.SubgraphCardinality(newsQuery(), []query.EdgeID{0}) != 1 {
		t.Fatalf("nil summary should give neutral estimate")
	}
	s := newsSummary()
	e2 := NewEstimator(s)
	if e2.SubgraphCardinality(nil, nil) != 1 {
		t.Fatalf("empty inputs should give neutral estimate")
	}
}

func TestSelectivityNormalization(t *testing.T) {
	s := newsSummary()
	e := NewEstimator(s)
	q := newsQuery()
	sel := e.Selectivity(q, []query.EdgeID{2})
	if sel <= 0 || sel > 1 {
		t.Fatalf("single-edge selectivity out of range: %v", sel)
	}
	if got := e.Selectivity(q, []query.EdgeID{0}); got != 0.8 {
		t.Fatalf("mentions selectivity = %v, want 0.8", got)
	}
	empty := NewEstimator(NewSummary())
	if empty.Selectivity(q, []query.EdgeID{0}) != 1 {
		t.Fatalf("empty summary should yield selectivity 1")
	}
	if NewEstimator(nil).Selectivity(q, []query.EdgeID{0}) != 1 {
		t.Fatalf("nil summary should yield selectivity 1")
	}
}

func TestWedgeEstimateUsesTriads(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	s := NewSummary(WithTriadSampling(1))
	apply := func(id graph.EdgeID, src, dst graph.VertexID, typ string) {
		se := graph.StreamEdge{
			Edge:       graph.Edge{ID: id, Source: src, Target: dst, Type: typ, Timestamp: graph.Timestamp(id)},
			SourceType: "Host", TargetType: "Host",
		}
		if _, err := g.AddStreamEdge(se); err != nil {
			t.Fatal(err)
		}
		s.Observe(se, g)
	}
	// Build 5 request/reply wedges through distinct centres and lots of
	// unrelated request edges.
	for i := 0; i < 5; i++ {
		base := graph.VertexID(i * 10)
		apply(graph.EdgeID(i*2+1), base, base+1, "req")
		apply(graph.EdgeID(i*2+2), base+1, base+2, "reply")
	}
	for i := 0; i < 50; i++ {
		apply(graph.EdgeID(1000+i), graph.VertexID(500+i), graph.VertexID(600+i), "req")
	}
	q := query.NewBuilder("wedge").
		Vertex("a", "Host").Vertex("b", "Host").Vertex("c", "Host").
		Edge("a", "b", "req").Edge("b", "c", "reply").
		MustBuild()
	e := NewEstimator(s)
	est := e.SubgraphCardinality(q, q.EdgeIDs())
	// The triad table observed exactly 5 such wedges (sampling 1) so the
	// estimate should be 5, far below the independence estimate
	// (55 req * 5 reply / |Host vertices|).
	if est != 5 {
		t.Fatalf("wedge estimate = %v, want 5 (from triad table)", est)
	}
}

func TestWedgeFallsBackWithoutTriads(t *testing.T) {
	s := newsSummary() // triads disabled
	e := NewEstimator(s)
	q := newsQuery()
	est := e.SubgraphCardinality(q, []query.EdgeID{0, 1})
	if est <= 0 {
		t.Fatalf("fallback estimate must be positive")
	}
}

func TestSharedVertexHelper(t *testing.T) {
	q := newsQuery()
	if _, ok := sharedVertex(q.Edge(0), q.Edge(1)); !ok {
		t.Fatalf("edges 0,1 share the keyword vertex")
	}
	// Edges 1 and 2 share no vertex (a2-k vs a1-l).
	if _, ok := sharedVertex(q.Edge(1), q.Edge(2)); ok {
		t.Fatalf("edges 1,2 share no vertex")
	}
	// Two edges sharing both endpoints (parallel edges) are not a wedge.
	p := query.NewBuilder("par").
		Vertex("x", "").Vertex("y", "").
		Edge("x", "y", "a").Edge("x", "y", "b").
		MustBuild()
	if _, ok := sharedVertex(p.Edge(0), p.Edge(1)); ok {
		t.Fatalf("parallel edges must not be treated as a wedge")
	}
}
