// Package stats implements the summarization component of StreamWorks
// (paper §4.3): it continuously collects summary statistics about the data
// stream — degree distribution, vertex and edge type distributions and the
// frequency distribution of multi-relational triads — and exposes
// selectivity estimates that the query planner uses to decide the
// decomposition and join order of a query graph.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/streamworks/streamworks/internal/graph"
)

// Summary accumulates streaming statistics about the data graph. It is safe
// for concurrent use; the engine updates it from the ingest path while the
// planner reads it when queries are registered.
type Summary struct {
	mu sync.RWMutex

	totalEdges    uint64
	vertexTypes   map[string]uint64
	edgeTypes     map[string]uint64
	seenVertices  map[graph.VertexID]string
	degrees       map[graph.VertexID]int
	degreeHist    *DegreeHistogram
	triads        *TriadTable
	triadSampling int // sample 1 in triadSampling edges for triad counting; 0 disables
	observed      uint64
}

// Option configures a Summary.
type Option func(*Summary)

// WithTriadSampling sets the sampling rate for triad statistics: one in n
// arriving edges triggers a scan of its endpoints' incident edges. n = 1
// counts every edge, n = 0 disables triad collection entirely.
func WithTriadSampling(n int) Option {
	return func(s *Summary) { s.triadSampling = n }
}

// NewSummary constructs an empty summary. By default triads are sampled on
// every tenth edge, which keeps the per-edge overhead bounded on skewed
// graphs while converging to the same ranking of triad frequencies.
func NewSummary(opts ...Option) *Summary {
	s := &Summary{
		vertexTypes:   make(map[string]uint64),
		edgeTypes:     make(map[string]uint64),
		seenVertices:  make(map[graph.VertexID]string),
		degrees:       make(map[graph.VertexID]int),
		degreeHist:    NewDegreeHistogram(),
		triads:        NewTriadTable(),
		triadSampling: 10,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Observe updates the summary with one arriving stream edge. g, when
// non-nil, is the live data graph and is used (subject to sampling) to
// update the triad table with the wedges the new edge closes or extends.
func (s *Summary) Observe(se graph.StreamEdge, g *graph.Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()

	s.totalEdges++
	s.observed++
	s.edgeTypes[se.Edge.Type]++

	s.observeVertex(se.Edge.Source, se.SourceType)
	s.observeVertex(se.Edge.Target, se.TargetType)

	s.bumpDegree(se.Edge.Source)
	s.bumpDegree(se.Edge.Target)

	if g != nil && s.triadSampling > 0 && s.observed%uint64(s.triadSampling) == 0 {
		s.triads.ObserveEdge(g, &se.Edge, s.vertexTypeOf)
	}
}

// ObserveGraph ingests an entire static graph, as used by offline planning
// over a pre-loaded dataset.
func (s *Summary) ObserveGraph(g *graph.Graph) {
	g.Edges(func(e *graph.Edge) bool {
		var se graph.StreamEdge
		se.Edge = *e
		if v, ok := g.Vertex(e.Source); ok {
			se.SourceType = v.Type
		}
		if v, ok := g.Vertex(e.Target); ok {
			se.TargetType = v.Type
		}
		s.Observe(se, g)
		return true
	})
}

func (s *Summary) observeVertex(id graph.VertexID, typ string) {
	prev, seen := s.seenVertices[id]
	if !seen {
		s.seenVertices[id] = typ
		s.vertexTypes[typ]++
		return
	}
	// An empty type on a later edge never downgrades recorded metadata; a
	// non-empty type reclassifies the vertex (mirrors Graph.AddVertex).
	if typ != "" && typ != prev {
		if s.vertexTypes[prev] > 0 {
			s.vertexTypes[prev]--
		}
		s.vertexTypes[typ]++
		s.seenVertices[id] = typ
	}
}

func (s *Summary) vertexTypeOf(id graph.VertexID) string { return s.seenVertices[id] }

func (s *Summary) bumpDegree(id graph.VertexID) {
	old := s.degrees[id]
	s.degrees[id] = old + 1
	s.degreeHist.Move(old, old+1)
}

// TotalEdges returns the number of edges observed.
func (s *Summary) TotalEdges() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.totalEdges
}

// TotalVertices returns the number of distinct vertices observed.
func (s *Summary) TotalVertices() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.seenVertices))
}

// VertexTypeCount returns how many distinct vertices of the given type have
// been observed.
func (s *Summary) VertexTypeCount(typ string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.vertexTypes[typ]
}

// EdgeTypeCount returns how many edges of the given type have been observed.
func (s *Summary) EdgeTypeCount(typ string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.edgeTypes[typ]
}

// EdgeTypeDistribution returns (type, count) pairs sorted by descending
// count, then type name.
func (s *Summary) EdgeTypeDistribution() []TypeCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedCounts(s.edgeTypes)
}

// VertexTypeDistribution returns (type, count) pairs sorted by descending
// count, then type name.
func (s *Summary) VertexTypeDistribution() []TypeCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedCounts(s.vertexTypes)
}

// DegreeHistogramSnapshot returns a copy of the log-bucketed degree
// histogram.
func (s *Summary) DegreeHistogramSnapshot() []BucketCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.degreeHist.Snapshot()
}

// MeanDegree returns the average degree over all observed vertices.
func (s *Summary) MeanDegree() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.seenVertices) == 0 {
		return 0
	}
	// Every edge contributes 2 to the total degree.
	return float64(2*s.totalEdges) / float64(len(s.seenVertices))
}

// TriadDistribution returns the observed multi-relational triad counts,
// most frequent first.
func (s *Summary) TriadDistribution() []TriadCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.triads.Snapshot()
}

// TriadFrequency returns the observed count for a specific triad signature.
func (s *Summary) TriadFrequency(key TriadKey) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.triads.Count(key)
}

// TypeCount is a (label, count) pair in a type distribution.
type TypeCount struct {
	Type  string
	Count uint64
}

func sortedCounts(m map[string]uint64) []TypeCount {
	out := make([]TypeCount, 0, len(m))
	for t, c := range m {
		out = append(out, TypeCount{Type: t, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// String renders a compact multi-line report of the summary, used by the
// CLI's `stats` command.
func (s *Summary) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "edges=%d vertices=%d meanDegree=%.2f\n",
		s.totalEdges, len(s.seenVertices), func() float64 {
			if len(s.seenVertices) == 0 {
				return 0
			}
			return float64(2*s.totalEdges) / float64(len(s.seenVertices))
		}())
	sb.WriteString("edge types:\n")
	for _, tc := range sortedCounts(s.edgeTypes) {
		fmt.Fprintf(&sb, "  %-24s %d\n", tc.Type, tc.Count)
	}
	sb.WriteString("vertex types:\n")
	for _, tc := range sortedCounts(s.vertexTypes) {
		fmt.Fprintf(&sb, "  %-24s %d\n", tc.Type, tc.Count)
	}
	return sb.String()
}
