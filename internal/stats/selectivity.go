package stats

import (
	"github.com/streamworks/streamworks/internal/query"
)

// DefaultPredicateSelectivity is the fraction of candidates assumed to
// survive one attribute predicate when no finer statistics are available.
// The classic System-R style constant (1/4) works well here because the
// planner only needs a *ranking* of primitives, not absolute cardinalities.
const DefaultPredicateSelectivity = 0.25

// Estimator derives cardinality and selectivity estimates for query
// subgraphs from a statistics Source — a cumulative Summary or a windowed
// GraphSource. The query planner uses it to pick the most selective search
// primitives and to order joins so that rare substructures sit lowest in
// the SJ-Tree (paper §4.1); the adaptive re-planner scores running plans
// through a window-backed estimator to detect selectivity drift.
type Estimator struct {
	src Source
	// predSel overrides DefaultPredicateSelectivity when > 0.
	predSel float64
	// triadScale compensates for triad sampling (Summary samples 1-in-n
	// edges); it is the sampling factor n.
	triadScale float64
}

// NewEstimator builds an estimator over the given summary. A nil summary
// yields an estimator with no statistics (every estimate is 1).
func NewEstimator(s *Summary) *Estimator {
	if s == nil {
		return &Estimator{predSel: DefaultPredicateSelectivity, triadScale: 1}
	}
	return NewEstimatorFrom(s)
}

// NewEstimatorFrom builds an estimator over an arbitrary statistics source
// (e.g. GraphSource for window-local estimates). A nil source behaves like
// NewEstimator(nil).
func NewEstimatorFrom(src Source) *Estimator {
	e := &Estimator{src: src, predSel: DefaultPredicateSelectivity, triadScale: 1}
	if src != nil {
		e.triadScale = src.TriadScale()
	}
	return e
}

// SetPredicateSelectivity overrides the per-predicate selectivity constant.
func (e *Estimator) SetPredicateSelectivity(v float64) {
	if v > 0 && v <= 1 {
		e.predSel = v
	}
}

// VertexCardinality estimates how many data vertices can match the pattern
// vertex: the count of its type (or all vertices when untyped), discounted
// by predicate selectivity.
func (e *Estimator) VertexCardinality(qv *query.Vertex) float64 {
	if e.src == nil || qv == nil {
		return 1
	}
	var base float64
	if qv.Type == "" {
		base = float64(e.src.TotalVertices())
	} else {
		base = float64(e.src.VertexTypeCount(qv.Type))
	}
	if base < 1 {
		base = 1
	}
	return base * e.predicateFactor(len(qv.Preds))
}

// EdgeCardinality estimates how many data edges can match the pattern edge:
// the count of its relation type (or all edges when untyped), discounted by
// predicate selectivity. Undirected pattern edges double the candidates.
func (e *Estimator) EdgeCardinality(qe *query.Edge) float64 {
	if e.src == nil || qe == nil {
		return 1
	}
	var base float64
	if qe.Type == "" {
		base = float64(e.src.TotalEdges())
	} else {
		base = float64(e.src.EdgeTypeCount(qe.Type))
	}
	if base < 1 {
		base = 1
	}
	if qe.AnyDirection {
		base *= 2
	}
	return base * e.predicateFactor(len(qe.Preds))
}

// SubgraphCardinality estimates the number of matches of the query subgraph
// induced by the given pattern edges. The estimate is the independent-join
// formula
//
//	Π_e card(e)  /  Π_v card(v)^(deg_sub(v)-1)
//
// i.e. the product of per-edge candidate counts divided, for every pattern
// vertex shared by k > 1 of the edges, by the vertex's own candidate count
// k-1 times (each additional incidence is a join on that vertex).
//
// For two-edge wedges the estimator prefers the observed multi-relational
// triad frequency when the triad table has seen the combination, which is
// exactly the statistic §4.3 of the paper collects for this purpose.
func (e *Estimator) SubgraphCardinality(q *query.Graph, edges []query.EdgeID) float64 {
	if e.src == nil || q == nil || len(edges) == 0 {
		return 1
	}
	if len(edges) == 2 {
		if est, ok := e.wedgeFromTriads(q, edges); ok {
			return est
		}
	}
	est := 1.0
	for _, eid := range edges {
		est *= e.EdgeCardinality(q.Edge(eid))
	}
	// Count incidences of each vertex within the subset.
	incidence := make(map[query.VertexID]int)
	for _, eid := range edges {
		qe := q.Edge(eid)
		incidence[qe.Source]++
		if qe.Target != qe.Source {
			incidence[qe.Target]++
		}
	}
	for v, k := range incidence {
		if k <= 1 {
			continue
		}
		card := e.VertexCardinality(q.Vertex(v))
		if card < 1 {
			card = 1
		}
		for i := 1; i < k; i++ {
			est /= card
		}
	}
	if est < 0 {
		est = 0
	}
	return est
}

// wedgeFromTriads estimates a two-edge wedge from the triad table. It
// returns ok=false when the two edges do not share exactly one vertex or the
// triad table has no observation for the combination.
func (e *Estimator) wedgeFromTriads(q *query.Graph, edges []query.EdgeID) (float64, bool) {
	a, b := q.Edge(edges[0]), q.Edge(edges[1])
	if a == nil || b == nil {
		return 0, false
	}
	center, ok := sharedVertex(a, b)
	if !ok {
		return 0, false
	}
	cv := q.Vertex(center)
	if cv == nil || cv.Type == "" {
		return 0, false
	}
	key := canonicalTriad(cv.Type, a.Type, a.Source == center, b.Type, b.Source == center)
	count := e.src.TriadFrequency(key)
	if count == 0 {
		return 0, false
	}
	est := float64(count) * e.triadScale
	est *= e.predicateFactor(len(a.Preds) + len(b.Preds) + len(cv.Preds))
	return est, true
}

// sharedVertex returns the single pattern vertex shared by a and b.
func sharedVertex(a, b *query.Edge) (query.VertexID, bool) {
	var shared []query.VertexID
	for _, va := range []query.VertexID{a.Source, a.Target} {
		if va == b.Source || va == b.Target {
			shared = append(shared, va)
		}
	}
	if len(shared) == 1 {
		return shared[0], true
	}
	return 0, false
}

// Selectivity returns the estimated fraction of all edges that participate
// in a match of the subgraph: lower is more selective. It is the quantity
// the decomposer minimizes when choosing which primitive to anchor the
// SJ-Tree's lowest level on.
func (e *Estimator) Selectivity(q *query.Graph, edges []query.EdgeID) float64 {
	if e.src == nil {
		return 1
	}
	total := float64(e.src.TotalEdges())
	if total < 1 {
		return 1
	}
	return e.SubgraphCardinality(q, edges) / total
}

func (e *Estimator) predicateFactor(n int) float64 {
	f := 1.0
	for i := 0; i < n; i++ {
		f *= e.predSel
	}
	return f
}
