package stats

import (
	"github.com/streamworks/streamworks/internal/graph"
)

// Source is the read surface an Estimator derives cardinalities from.
// Summary implements it with cumulative whole-stream statistics (cheap,
// rich: it includes the triad table); GraphSource implements it over the
// retained window of a dynamic graph, reflecting the *current* edge-type
// distribution — the view selectivity-drift detection needs, since
// cumulative counts dampen a mid-stream mix rotation roughly linearly in
// stream length.
type Source interface {
	TotalVertices() uint64
	TotalEdges() uint64
	VertexTypeCount(typ string) uint64
	EdgeTypeCount(typ string) uint64
	// TriadFrequency returns the observed count for a canonical triad key,
	// 0 when the source collects no triads (estimates then fall back to the
	// independence formula).
	TriadFrequency(key TriadKey) uint64
	// TriadScale compensates for triad sampling: the factor observed triad
	// counts must be multiplied by (1 when unsampled or absent).
	TriadScale() float64
}

// TriadScale implements Source for Summary.
func (s *Summary) TriadScale() float64 {
	if s != nil && s.triadSampling > 1 {
		return float64(s.triadSampling)
	}
	return 1
}

// GraphSource adapts a static graph snapshot — in practice the live graph
// behind graph.Dynamic, i.e. exactly the edges still inside the retention
// window — into an estimator Source. Counts are window-local and move with
// the stream: when the traffic mix rotates, these counts rotate with it as
// old edges expire, while a cumulative Summary still remembers every edge
// that ever was.
type GraphSource struct {
	G *graph.Graph
}

// TotalVertices implements Source.
func (gs GraphSource) TotalVertices() uint64 { return uint64(gs.G.NumVertices()) }

// TotalEdges implements Source.
func (gs GraphSource) TotalEdges() uint64 { return uint64(gs.G.NumEdges()) }

// VertexTypeCount implements Source.
func (gs GraphSource) VertexTypeCount(typ string) uint64 {
	return uint64(gs.G.CountVerticesOfType(typ))
}

// EdgeTypeCount implements Source.
func (gs GraphSource) EdgeTypeCount(typ string) uint64 {
	return uint64(gs.G.CountEdgesOfType(typ))
}

// TriadFrequency implements Source; graph snapshots carry no triad table.
func (gs GraphSource) TriadFrequency(TriadKey) uint64 { return 0 }

// TriadScale implements Source.
func (gs GraphSource) TriadScale() float64 { return 1 }
