// Package graph implements the dynamic multi-relational property graph that
// StreamWorks continuously searches. Vertices and edges carry a type label
// and a set of attributes; every edge additionally carries a timestamp.
//
// The package provides a static Graph (used for query-time local search and
// offline ground-truth search) and a Dynamic graph that maintains a sliding
// time window over an edge stream, expiring edges that fall outside the
// window as required by the paper's temporal query semantics (τ(g) < tW).
package graph

import (
	"fmt"
	"time"
)

// VertexID identifies a vertex of the data graph. IDs are assigned by the
// data source (generators, loaders) and are stable for the lifetime of the
// stream.
type VertexID uint64

// EdgeID identifies an edge of the data graph. Edge IDs are unique across
// the whole stream, which makes them usable as tie-breakers and as members
// of match signatures.
type EdgeID uint64

// Timestamp is the time associated with an edge, expressed in nanoseconds
// since the Unix epoch. Synthetic workloads are free to use small integers;
// only differences and ordering matter to the engine.
type Timestamp int64

// TimestampFromTime converts a time.Time into a Timestamp.
func TimestampFromTime(t time.Time) Timestamp { return Timestamp(t.UnixNano()) }

// Time converts the timestamp back into a time.Time.
func (t Timestamp) Time() time.Time { return time.Unix(0, int64(t)) }

// Add returns the timestamp shifted by d.
func (t Timestamp) Add(d time.Duration) Timestamp { return t + Timestamp(d) }

// Sub returns the duration t-o.
func (t Timestamp) Sub(o Timestamp) time.Duration { return time.Duration(t - o) }

// Vertex is a typed, attributed node of the data graph.
type Vertex struct {
	ID    VertexID
	Type  string
	Attrs Attributes
}

// Clone returns a deep copy of the vertex.
func (v *Vertex) Clone() *Vertex {
	if v == nil {
		return nil
	}
	return &Vertex{ID: v.ID, Type: v.Type, Attrs: v.Attrs.Clone()}
}

// String renders the vertex for debugging.
func (v *Vertex) String() string {
	if v == nil {
		return "<nil vertex>"
	}
	if len(v.Attrs) == 0 {
		return fmt.Sprintf("v%d:%s", v.ID, v.Type)
	}
	return fmt.Sprintf("v%d:%s%s", v.ID, v.Type, v.Attrs)
}

// Edge is a directed, typed, timestamped, attributed edge of the data graph.
// Multiple edges may connect the same pair of vertices (multigraph), possibly
// with the same type but different timestamps; they are distinguished by ID.
type Edge struct {
	ID        EdgeID
	Source    VertexID
	Target    VertexID
	Type      string
	Timestamp Timestamp
	Attrs     Attributes
}

// Clone returns a deep copy of the edge.
func (e *Edge) Clone() *Edge {
	if e == nil {
		return nil
	}
	c := *e
	c.Attrs = e.Attrs.Clone()
	return &c
}

// Other returns the endpoint of e that is not v. If v is not an endpoint it
// returns the target.
func (e *Edge) Other(v VertexID) VertexID {
	if e.Source == v {
		return e.Target
	}
	return e.Source
}

// Touches reports whether v is one of the edge endpoints.
func (e *Edge) Touches(v VertexID) bool { return e.Source == v || e.Target == v }

// String renders the edge for debugging.
func (e *Edge) String() string {
	if e == nil {
		return "<nil edge>"
	}
	return fmt.Sprintf("e%d: v%d -[%s @%d]-> v%d", e.ID, e.Source, e.Type, e.Timestamp, e.Target)
}

// StreamEdge is the unit of arrival on a dynamic graph stream: an edge
// together with (optionally sparse) descriptions of its endpoints. Sources
// only need to populate endpoint types/attributes the first time a vertex is
// seen; subsequent arrivals may leave them empty.
type StreamEdge struct {
	Edge        Edge
	SourceType  string
	TargetType  string
	SourceAttrs Attributes
	TargetAttrs Attributes

	// ArrivedWallNS is the wall-clock nanosecond at which this edge reached
	// the serving tier, stamped by the ingest path only when observability is
	// enabled (zero otherwise). It rides the envelope so a match completed by
	// this edge can report its full arrival-to-delivery journey; it is
	// process-local plumbing, never part of the wire format or of edge
	// identity, and never influences matching.
	ArrivedWallNS int64
}

// String renders the stream edge for debugging.
func (s StreamEdge) String() string {
	return fmt.Sprintf("%s (src:%s dst:%s)", s.Edge.String(), s.SourceType, s.TargetType)
}

// Interval is a closed time interval [Start, End]. The paper defines
// τ(g) for a subgraph g as the interval between its earliest and latest
// edge; a match is reported only when τ(g) < tW.
type Interval struct {
	Start Timestamp
	End   Timestamp
}

// NewInterval returns the interval covering exactly t.
func NewInterval(t Timestamp) Interval { return Interval{Start: t, End: t} }

// Span returns the length of the interval.
func (iv Interval) Span() time.Duration { return iv.End.Sub(iv.Start) }

// Extend returns the smallest interval covering iv and t.
func (iv Interval) Extend(t Timestamp) Interval {
	out := iv
	if t < out.Start {
		out.Start = t
	}
	if t > out.End {
		out.End = t
	}
	return out
}

// Union returns the smallest interval covering both iv and o.
func (iv Interval) Union(o Interval) Interval {
	out := iv
	if o.Start < out.Start {
		out.Start = o.Start
	}
	if o.End > out.End {
		out.End = o.End
	}
	return out
}

// Within reports whether the interval's span is strictly less than w, the
// admission test the paper applies to candidate matches.
func (iv Interval) Within(w time.Duration) bool { return iv.Span() < w }

// Contains reports whether t lies inside the closed interval.
func (iv Interval) Contains(t Timestamp) bool { return t >= iv.Start && t <= iv.End }

// String renders the interval for debugging.
func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d]", iv.Start, iv.End)
}
