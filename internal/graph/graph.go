package graph

import (
	"fmt"
	"sort"
)

// Graph is an in-memory multi-relational property multigraph. It maintains
// per-vertex incidence lists split by direction, plus type indexes used by
// the query planner and the local-search primitive.
//
// Graph is not safe for concurrent mutation; the continuous engine serializes
// updates per stream partition. Read-only concurrent access after loading is
// safe.
type Graph struct {
	vertices map[VertexID]*Vertex
	edges    map[EdgeID]*Edge

	out map[VertexID][]*Edge
	in  map[VertexID][]*Edge

	verticesByType map[string]map[VertexID]struct{}
	edgesByType    map[string]int

	// autoVertex controls whether AddEdge creates missing endpoints with an
	// empty type instead of failing.
	autoVertex bool
}

// Option configures a Graph at construction time.
type Option func(*Graph)

// WithAutoVertices makes AddEdge silently create endpoints that have not
// been added explicitly. Stream ingestion uses this because vertex metadata
// often arrives embedded in the first edge that touches the vertex.
func WithAutoVertices() Option {
	return func(g *Graph) { g.autoVertex = true }
}

// New constructs an empty graph.
func New(opts ...Option) *Graph {
	g := &Graph{
		vertices:       make(map[VertexID]*Vertex),
		edges:          make(map[EdgeID]*Edge),
		out:            make(map[VertexID][]*Edge),
		in:             make(map[VertexID][]*Edge),
		verticesByType: make(map[string]map[VertexID]struct{}),
		edgesByType:    make(map[string]int),
	}
	for _, o := range opts {
		o(g)
	}
	return g
}

// NumVertices returns the number of vertices currently in the graph.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the number of edges currently in the graph.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddVertex inserts or updates a vertex. If a vertex with the same ID exists
// its type is overwritten when the new type is non-empty and its attributes
// are merged.
//
// The graph takes the attribute map by reference: callers must not mutate
// v.Attrs after insertion. Updates never mutate a stored map in place
// (Attributes.Merge is copy-on-write), so sources are free to share one
// attribute map across many inserted vertices and edges.
func (g *Graph) AddVertex(v Vertex) *Vertex {
	existing, ok := g.vertices[v.ID]
	if !ok {
		nv := &Vertex{ID: v.ID, Type: v.Type, Attrs: v.Attrs}
		g.vertices[v.ID] = nv
		g.indexVertexType(nv)
		return nv
	}
	if v.Type != "" && v.Type != existing.Type {
		g.unindexVertexType(existing)
		existing.Type = v.Type
		g.indexVertexType(existing)
	}
	// Streams repeat endpoint metadata on every edge (sharded routing
	// requires it); skip the copy-on-write merge entirely when it would
	// change nothing, which is the overwhelmingly common case.
	if len(v.Attrs) > 0 && !existing.Attrs.Covers(v.Attrs) {
		existing.Attrs = existing.Attrs.Merge(v.Attrs)
	}
	return existing
}

func (g *Graph) indexVertexType(v *Vertex) {
	set, ok := g.verticesByType[v.Type]
	if !ok {
		set = make(map[VertexID]struct{})
		g.verticesByType[v.Type] = set
	}
	set[v.ID] = struct{}{}
}

func (g *Graph) unindexVertexType(v *Vertex) {
	if set, ok := g.verticesByType[v.Type]; ok {
		delete(set, v.ID)
		if len(set) == 0 {
			delete(g.verticesByType, v.Type)
		}
	}
}

// Vertex returns the vertex with the given ID.
func (g *Graph) Vertex(id VertexID) (*Vertex, bool) {
	v, ok := g.vertices[id]
	return v, ok
}

// HasVertex reports whether the vertex exists.
func (g *Graph) HasVertex(id VertexID) bool {
	_, ok := g.vertices[id]
	return ok
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) (*Edge, bool) {
	e, ok := g.edges[id]
	return e, ok
}

// HasEdge reports whether the edge exists.
func (g *Graph) HasEdge(id EdgeID) bool {
	_, ok := g.edges[id]
	return ok
}

// AddEdge inserts a directed edge. Both endpoints must already exist unless
// the graph was built WithAutoVertices. Duplicate edge IDs are rejected.
//
// As with AddVertex, the attribute map is taken by reference and must not be
// mutated by the caller after insertion; the graph itself never modifies
// edge attributes.
func (g *Graph) AddEdge(e Edge) (*Edge, error) {
	if e.ID == ReservedEdgeID || e.Source == ReservedVertexID || e.Target == ReservedVertexID {
		return nil, &EdgeError{ID: e.ID, Err: ErrReservedID}
	}
	if _, dup := g.edges[e.ID]; dup {
		return nil, &EdgeError{ID: e.ID, Err: ErrDuplicateEdge}
	}
	if !g.HasVertex(e.Source) {
		if !g.autoVertex {
			return nil, &VertexError{ID: e.Source, Err: ErrDanglingEdge}
		}
		g.AddVertex(Vertex{ID: e.Source})
	}
	if !g.HasVertex(e.Target) {
		if !g.autoVertex {
			return nil, &VertexError{ID: e.Target, Err: ErrDanglingEdge}
		}
		g.AddVertex(Vertex{ID: e.Target})
	}
	ne := new(Edge)
	*ne = e
	g.edges[ne.ID] = ne
	g.out[ne.Source] = append(g.out[ne.Source], ne)
	g.in[ne.Target] = append(g.in[ne.Target], ne)
	g.edgesByType[ne.Type]++
	return ne, nil
}

// AddStreamEdge applies a StreamEdge: endpoint metadata is upserted and the
// edge added. It is the ingestion path used by the dynamic graph.
func (g *Graph) AddStreamEdge(se StreamEdge) (*Edge, error) {
	g.AddVertex(Vertex{ID: se.Edge.Source, Type: se.SourceType, Attrs: se.SourceAttrs})
	g.AddVertex(Vertex{ID: se.Edge.Target, Type: se.TargetType, Attrs: se.TargetAttrs})
	return g.AddEdge(se.Edge)
}

// RemoveEdge deletes an edge from the graph and its incidence lists.
// Endpoint vertices are retained even if they become isolated; callers that
// want compaction can call RemoveIsolatedVertex explicitly.
func (g *Graph) RemoveEdge(id EdgeID) error {
	e, ok := g.edges[id]
	if !ok {
		return &EdgeError{ID: id, Err: ErrEdgeNotFound}
	}
	delete(g.edges, id)
	g.out[e.Source] = removeEdgeFrom(g.out[e.Source], id)
	if len(g.out[e.Source]) == 0 {
		delete(g.out, e.Source)
	}
	g.in[e.Target] = removeEdgeFrom(g.in[e.Target], id)
	if len(g.in[e.Target]) == 0 {
		delete(g.in, e.Target)
	}
	if g.edgesByType[e.Type]--; g.edgesByType[e.Type] <= 0 {
		delete(g.edgesByType, e.Type)
	}
	return nil
}

func removeEdgeFrom(list []*Edge, id EdgeID) []*Edge {
	for i, e := range list {
		if e.ID == id {
			last := len(list) - 1
			list[i] = list[last]
			list[last] = nil
			return list[:last]
		}
	}
	return list
}

// RemoveIsolatedVertex removes v if it has no incident edges. It returns
// true when the vertex was removed.
func (g *Graph) RemoveIsolatedVertex(id VertexID) bool {
	v, ok := g.vertices[id]
	if !ok {
		return false
	}
	if len(g.out[id]) > 0 || len(g.in[id]) > 0 {
		return false
	}
	g.unindexVertexType(v)
	delete(g.vertices, id)
	delete(g.out, id)
	delete(g.in, id)
	return true
}

// OutEdges returns the edges leaving v. The returned slice is owned by the
// graph and must not be mutated.
func (g *Graph) OutEdges(v VertexID) []*Edge { return g.out[v] }

// InEdges returns the edges entering v. The returned slice is owned by the
// graph and must not be mutated.
func (g *Graph) InEdges(v VertexID) []*Edge { return g.in[v] }

// IncidentEdges returns all edges touching v, outgoing first.
func (g *Graph) IncidentEdges(v VertexID) []*Edge {
	out := g.out[v]
	in := g.in[v]
	if len(in) == 0 {
		return out
	}
	all := make([]*Edge, 0, len(out)+len(in))
	all = append(all, out...)
	all = append(all, in...)
	return all
}

// Degree returns the total degree (in + out) of v.
func (g *Graph) Degree(v VertexID) int { return len(g.out[v]) + len(g.in[v]) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int { return len(g.out[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int { return len(g.in[v]) }

// Neighbors returns the distinct vertices adjacent to v in either direction.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	seen := make(map[VertexID]struct{})
	var out []VertexID
	for _, e := range g.out[v] {
		if _, ok := seen[e.Target]; !ok {
			seen[e.Target] = struct{}{}
			out = append(out, e.Target)
		}
	}
	for _, e := range g.in[v] {
		if _, ok := seen[e.Source]; !ok {
			seen[e.Source] = struct{}{}
			out = append(out, e.Source)
		}
	}
	return out
}

// EdgesBetween returns every edge from src to dst (directed).
func (g *Graph) EdgesBetween(src, dst VertexID) []*Edge {
	var out []*Edge
	for _, e := range g.out[src] {
		if e.Target == dst {
			out = append(out, e)
		}
	}
	return out
}

// VerticesOfType returns the IDs of all vertices with the given type label,
// in ascending order (deterministic for tests and planning).
func (g *Graph) VerticesOfType(t string) []VertexID {
	set := g.verticesByType[t]
	out := make([]VertexID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountVerticesOfType returns the number of vertices with the given type.
func (g *Graph) CountVerticesOfType(t string) int { return len(g.verticesByType[t]) }

// CountEdgesOfType returns the number of edges with the given type.
func (g *Graph) CountEdgesOfType(t string) int { return g.edgesByType[t] }

// VertexTypes returns the distinct vertex type labels present in the graph.
func (g *Graph) VertexTypes() []string {
	out := make([]string, 0, len(g.verticesByType))
	for t := range g.verticesByType {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// EdgeTypes returns the distinct edge type labels present in the graph.
func (g *Graph) EdgeTypes() []string {
	out := make([]string, 0, len(g.edgesByType))
	for t := range g.edgesByType {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Vertices calls fn for every vertex until fn returns false.
func (g *Graph) Vertices(fn func(*Vertex) bool) {
	for _, v := range g.vertices {
		if !fn(v) {
			return
		}
	}
}

// Edges calls fn for every edge until fn returns false.
func (g *Graph) Edges(fn func(*Edge) bool) {
	for _, e := range g.edges {
		if !fn(e) {
			return
		}
	}
}

// EdgeIDs returns all edge IDs in ascending order.
func (g *Graph) EdgeIDs() []EdgeID {
	out := make([]EdgeID, 0, len(g.edges))
	for id := range g.edges {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VertexIDs returns all vertex IDs in ascending order.
func (g *Graph) VertexIDs() []VertexID {
	out := make([]VertexID, 0, len(g.vertices))
	for id := range g.vertices {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	c.autoVertex = g.autoVertex
	for _, v := range g.vertices {
		c.AddVertex(*v)
	}
	for _, e := range g.edges {
		if _, err := c.AddEdge(*e); err != nil {
			// Cannot happen: the source graph is consistent by construction.
			panic(fmt.Sprintf("graph: clone failed: %v", err))
		}
	}
	return c
}

// String summarizes the graph size.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(|V|=%d, |E|=%d, vertexTypes=%d, edgeTypes=%d)",
		len(g.vertices), len(g.edges), len(g.verticesByType), len(g.edgesByType))
}
