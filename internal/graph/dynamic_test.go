package graph

import (
	"errors"
	"testing"
	"time"
)

func streamEdge(id EdgeID, src, dst VertexID, typ string, ts Timestamp) StreamEdge {
	return StreamEdge{
		Edge:       Edge{ID: id, Source: src, Target: dst, Type: typ, Timestamp: ts},
		SourceType: "Host",
		TargetType: "Host",
	}
}

func TestDynamicApplyAndWindowExpiry(t *testing.T) {
	d := NewDynamic(10 * time.Nanosecond)
	for i := 0; i < 5; i++ {
		if _, err := d.Apply(streamEdge(EdgeID(i), VertexID(i), VertexID(i+1), "flow", Timestamp(i))); err != nil {
			t.Fatalf("Apply(%d): %v", i, err)
		}
	}
	if d.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", d.NumEdges())
	}
	// Advance far enough that the first three edges (ts 0,1,2) fall out of a
	// 10ns window ending at watermark 13.
	d.AdvanceTo(13)
	if d.NumEdges() != 2 {
		t.Fatalf("NumEdges after expiry = %d, want 2", d.NumEdges())
	}
	if d.ExpiredTotal() != 3 {
		t.Fatalf("ExpiredTotal = %d, want 3", d.ExpiredTotal())
	}
	if d.AddedTotal() != 5 {
		t.Fatalf("AddedTotal = %d, want 5", d.AddedTotal())
	}
}

func TestDynamicUnboundedWindowNeverExpires(t *testing.T) {
	d := NewDynamic(0)
	for i := 0; i < 100; i++ {
		if _, err := d.Apply(streamEdge(EdgeID(i), 1, 2, "flow", Timestamp(i*1000))); err != nil {
			t.Fatal(err)
		}
	}
	d.AdvanceTo(1 << 40)
	if d.NumEdges() != 100 {
		t.Fatalf("unbounded window expired edges: %d left", d.NumEdges())
	}
}

func TestDynamicExpiryCallback(t *testing.T) {
	var expired []EdgeID
	d := NewDynamic(5*time.Nanosecond, WithExpiryCallback(func(e *Edge) {
		expired = append(expired, e.ID)
	}))
	for i := 0; i < 10; i++ {
		if _, err := d.Apply(streamEdge(EdgeID(i), VertexID(i), VertexID(i+1), "flow", Timestamp(i))); err != nil {
			t.Fatal(err)
		}
	}
	// watermark is 9, cutoff 4: edges 0..3 expired.
	if len(expired) != 4 {
		t.Fatalf("expiry callback saw %d edges, want 4: %v", len(expired), expired)
	}
	for i, id := range expired {
		if id != EdgeID(i) {
			t.Fatalf("expiry order wrong: %v", expired)
		}
	}
}

func TestDynamicIsolatedVerticesRemovedOnExpiry(t *testing.T) {
	d := NewDynamic(2 * time.Nanosecond)
	if _, err := d.Apply(streamEdge(1, 100, 101, "flow", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(streamEdge(2, 200, 201, "flow", 10)); err != nil {
		t.Fatal(err)
	}
	if d.Graph().HasVertex(100) || d.Graph().HasVertex(101) {
		t.Fatalf("expired edge endpoints should be garbage collected")
	}
	if !d.Graph().HasVertex(200) {
		t.Fatalf("live endpoints must be retained")
	}
}

func TestDynamicOutOfOrderWithinSlack(t *testing.T) {
	d := NewDynamic(time.Minute, WithSlack(5*time.Nanosecond))
	if _, err := d.Apply(streamEdge(1, 1, 2, "flow", 100)); err != nil {
		t.Fatal(err)
	}
	// 97 is within the slack of 5 behind the watermark (100-5=95).
	if _, err := d.Apply(streamEdge(2, 2, 3, "flow", 97)); err != nil {
		t.Fatalf("in-slack edge rejected: %v", err)
	}
	// 80 is beyond the slack.
	_, err := d.Apply(streamEdge(3, 3, 4, "flow", 80))
	if !errors.Is(err, ErrTimestampRegression) {
		t.Fatalf("expected ErrTimestampRegression, got %v", err)
	}
}

func TestDynamicRegressionAllowedWhenUnbounded(t *testing.T) {
	d := NewDynamic(0)
	if _, err := d.Apply(streamEdge(1, 1, 2, "flow", 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(streamEdge(2, 2, 3, "flow", 1)); err != nil {
		t.Fatalf("unbounded dynamic graph should accept late edges: %v", err)
	}
}

func TestDynamicWatermarkMonotone(t *testing.T) {
	d := NewDynamic(time.Minute, WithSlack(2*time.Nanosecond))
	times := []Timestamp{10, 50, 49, 48, 60, 59}
	var last Timestamp
	for i, ts := range times {
		if _, err := d.Apply(streamEdge(EdgeID(i), 1, 2, "flow", ts)); err != nil {
			t.Fatalf("Apply(ts=%d): %v", ts, err)
		}
		if d.Watermark() < last {
			t.Fatalf("watermark regressed from %d to %d", last, d.Watermark())
		}
		last = d.Watermark()
	}
	// AdvanceTo backwards must be a no-op.
	d.AdvanceTo(1)
	if d.Watermark() != last {
		t.Fatalf("AdvanceTo moved the watermark backwards")
	}
}

func TestDynamicAdvanceToRespectsSlack(t *testing.T) {
	// Interleaving Apply and AdvanceTo must not jump the watermark ahead of
	// what edge ingestion at the same timestamp would produce: both paths
	// trail the observed stream time by the slack. Previously AdvanceTo
	// ignored the slack, so an explicit time signal at the current stream
	// time expired edges still inside the slack and rejected in-slack
	// stragglers.
	d := NewDynamic(10*time.Nanosecond, WithSlack(5*time.Nanosecond))
	if _, err := d.Apply(streamEdge(1, 1, 2, "flow", 86)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(streamEdge(2, 2, 3, "flow", 100)); err != nil {
		t.Fatal(err)
	}
	if got := d.Watermark(); got != 95 {
		t.Fatalf("watermark after Apply(100) = %d, want 95", got)
	}
	// An explicit advance to the already-observed stream time is a no-op.
	d.AdvanceTo(100)
	if got := d.Watermark(); got != 95 {
		t.Fatalf("AdvanceTo(100) moved watermark to %d, want 95 (ts-slack)", got)
	}
	// Edge 1 (ts=86) is still inside the window: cutoff is 95-10=85.
	if d.NumEdges() != 2 {
		t.Fatalf("AdvanceTo expired in-window edges: %d live, want 2", d.NumEdges())
	}
	// A straggler within the slack of the watermark is still accepted.
	if _, err := d.Apply(streamEdge(3, 3, 4, "flow", 91)); err != nil {
		t.Fatalf("in-slack edge rejected after AdvanceTo: %v", err)
	}
	// Advancing the stream clock beyond the observed maximum applies slack too.
	d.AdvanceTo(120)
	if got := d.Watermark(); got != 115 {
		t.Fatalf("AdvanceTo(120) watermark = %d, want 115", got)
	}
	// First watermark from AdvanceTo on a fresh graph also trails by slack.
	fresh := NewDynamic(time.Minute, WithSlack(5*time.Nanosecond))
	fresh.AdvanceTo(50)
	if got := fresh.Watermark(); got != 45 {
		t.Fatalf("first AdvanceTo watermark = %d, want 45", got)
	}
}

func TestDynamicDuplicateEdgeRejected(t *testing.T) {
	d := NewDynamic(time.Minute)
	if _, err := d.Apply(streamEdge(1, 1, 2, "flow", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(streamEdge(1, 1, 2, "flow", 2)); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("expected ErrDuplicateEdge, got %v", err)
	}
}

func TestDynamicSetExpiryCallbackAfterConstruction(t *testing.T) {
	d := NewDynamic(1 * time.Nanosecond)
	seen := 0
	d.SetExpiryCallback(func(*Edge) { seen++ })
	if _, err := d.Apply(streamEdge(1, 1, 2, "flow", 0)); err != nil {
		t.Fatal(err)
	}
	d.AdvanceTo(100)
	if seen != 1 {
		t.Fatalf("expiry callback installed later not invoked: %d", seen)
	}
}

func TestDynamicStringContainsCounters(t *testing.T) {
	d := NewDynamic(time.Second)
	if _, err := d.Apply(streamEdge(1, 1, 2, "flow", 1)); err != nil {
		t.Fatal(err)
	}
	s := d.String()
	if s == "" {
		t.Fatalf("String() empty")
	}
}
