package graph

import (
	"fmt"
	"time"
)

// Dynamic is the temporally evolving data graph of the paper: edges arrive
// with timestamps and the graph retains only those whose timestamp falls
// inside a sliding window of configurable width ending at the stream
// watermark (the largest timestamp observed, minus an optional out-of-order
// slack). Expired edges are removed from the underlying Graph so that local
// searches never see data that could not participate in a valid match.
type Dynamic struct {
	g *Graph

	window    time.Duration
	slack     time.Duration
	watermark Timestamp
	seenAny   bool

	// queue orders live edges by timestamp for window expiry. It is kept
	// sorted up to the allowed slack, which is sufficient because we only
	// expire edges strictly older than watermark-window.
	queue edgeQueue

	// onExpire, when set, is invoked for every edge evicted from the window.
	onExpire func(*Edge)

	expiredTotal uint64
	addedTotal   uint64
}

// DynamicOption configures a Dynamic graph.
type DynamicOption func(*Dynamic)

// WithSlack allows edges to arrive up to d out of timestamp order without
// being rejected. The watermark trails the maximum observed timestamp by d.
func WithSlack(d time.Duration) DynamicOption {
	return func(dg *Dynamic) { dg.slack = d }
}

// WithExpiryCallback registers fn to be called for every edge that leaves
// the sliding window. The continuous engine uses this to prune partial
// matches that can no longer complete.
func WithExpiryCallback(fn func(*Edge)) DynamicOption {
	return func(dg *Dynamic) { dg.onExpire = fn }
}

// NewDynamic constructs a dynamic graph with the given sliding-window width.
// A window of zero means "unbounded": edges are never expired.
func NewDynamic(window time.Duration, opts ...DynamicOption) *Dynamic {
	dg := &Dynamic{
		g:      New(WithAutoVertices()),
		window: window,
	}
	for _, o := range opts {
		o(dg)
	}
	return dg
}

// Graph exposes the underlying static graph for read-only use by matchers
// and statistics collectors.
func (d *Dynamic) Graph() *Graph { return d.g }

// Window returns the configured window width.
func (d *Dynamic) Window() time.Duration { return d.window }

// Watermark returns the current stream watermark: the latest timestamp
// observed minus the out-of-order slack.
func (d *Dynamic) Watermark() Timestamp { return d.watermark }

// NumVertices returns the number of live vertices.
func (d *Dynamic) NumVertices() int { return d.g.NumVertices() }

// NumEdges returns the number of live (non-expired) edges.
func (d *Dynamic) NumEdges() int { return d.g.NumEdges() }

// AddedTotal returns the cumulative number of edges ever admitted.
func (d *Dynamic) AddedTotal() uint64 { return d.addedTotal }

// ExpiredTotal returns the cumulative number of edges expired from the window.
func (d *Dynamic) ExpiredTotal() uint64 { return d.expiredTotal }

// SetExpiryCallback replaces the expiry callback after construction. The
// engine installs its pruning hook once queries are registered.
func (d *Dynamic) SetExpiryCallback(fn func(*Edge)) { d.onExpire = fn }

// Apply ingests a stream edge: the edge is validated against the watermark,
// endpoint metadata is upserted, the edge is added to the live graph and the
// window is advanced, expiring edges that fall out of it. It returns the
// stored edge.
func (d *Dynamic) Apply(se StreamEdge) (*Edge, error) {
	ts := se.Edge.Timestamp
	if d.seenAny && ts < d.watermark-Timestamp(d.slack) && d.window > 0 {
		return nil, &EdgeError{ID: se.Edge.ID, Err: ErrTimestampRegression}
	}
	e, err := d.g.AddStreamEdge(se)
	if err != nil {
		return nil, err
	}
	d.addedTotal++
	d.queue.pushSorted(e)
	d.advance(ts)
	return e, nil
}

// edgeQueue is a slice-backed FIFO of live edges ordered by timestamp: the
// replacement for the previous container/list expiry queue, which allocated
// one list element per edge and chased pointers on every expiry sweep. The
// backing array is reused for the lifetime of the dynamic graph; in steady
// state the queue performs zero allocations per edge.
type edgeQueue struct {
	buf  []*Edge
	head int
}

func (q *edgeQueue) len() int { return len(q.buf) - q.head }

func (q *edgeQueue) front() *Edge { return q.buf[q.head] }

// popFront removes the oldest edge. The vacated slot is cleared for the
// garbage collector, and the buffer is compacted once the dead prefix
// dominates, keeping total copying amortized O(1) per edge.
func (q *edgeQueue) popFront() {
	q.buf[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		tail := q.buf[n:len(q.buf)]
		for i := range tail {
			tail[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
}

// pushSorted appends e and rotates it back past any later-timestamped
// entries. Arrivals are near-ordered (bounded slack), so the rotation is
// O(1) amortized — in-order arrivals never enter the loop at all.
func (q *edgeQueue) pushSorted(e *Edge) {
	q.buf = append(q.buf, e)
	for i := len(q.buf) - 1; i > q.head && q.buf[i-1].Timestamp > e.Timestamp; i-- {
		q.buf[i] = q.buf[i-1]
		q.buf[i-1] = e
	}
}

// advance moves the watermark forward to ts-slack (never backwards) and
// expires edges older than watermark-window.
func (d *Dynamic) advance(ts Timestamp) {
	if !d.seenAny {
		d.seenAny = true
		d.watermark = ts - Timestamp(d.slack)
	} else if wm := ts - Timestamp(d.slack); wm > d.watermark {
		d.watermark = wm
	}
	d.expire()
}

// AdvanceTo signals that stream time has reached ts without delivering an
// edge (heartbeats, watermark broadcasts from a sharded front-end). It has
// exactly the same watermark semantics as edge ingestion: the watermark
// advances to ts-slack, never backwards, and expiry runs against the new
// watermark. Keeping the two paths identical means interleaving Apply and
// AdvanceTo can never jump the watermark ahead of what an edge at ts would
// produce, so edges still within the out-of-order slack are not prematurely
// expired or rejected.
func (d *Dynamic) AdvanceTo(ts Timestamp) {
	d.advance(ts)
}

// ForEachLiveEdge visits every edge currently retained in the sliding
// window, in timestamp order (up to the ingest slack), until fn returns
// false. Edges removed from the graph explicitly (rather than by expiry) are
// skipped. The adaptive re-planner replays the retained window through a
// freshly built SJ-Tree with this; fn must not mutate the graph.
func (d *Dynamic) ForEachLiveEdge(fn func(*Edge) bool) {
	for i := d.queue.head; i < len(d.queue.buf); i++ {
		e := d.queue.buf[i]
		if !d.g.HasEdge(e.ID) {
			continue
		}
		if !fn(e) {
			return
		}
	}
}

func (d *Dynamic) expire() {
	if d.window <= 0 {
		return
	}
	cutoff := d.watermark - Timestamp(d.window)
	for d.queue.len() > 0 {
		e := d.queue.front()
		if e.Timestamp >= cutoff {
			return
		}
		d.queue.popFront()
		// The edge may already have been removed explicitly; ignore that.
		if err := d.g.RemoveEdge(e.ID); err == nil {
			d.expiredTotal++
			d.g.RemoveIsolatedVertex(e.Source)
			d.g.RemoveIsolatedVertex(e.Target)
			if d.onExpire != nil {
				d.onExpire(e)
			}
		}
	}
}

// String summarizes the dynamic graph state.
func (d *Dynamic) String() string {
	return fmt.Sprintf("Dynamic(window=%s, watermark=%d, %s, added=%d, expired=%d)",
		d.window, d.watermark, d.g, d.addedTotal, d.expiredTotal)
}
