package graph

import (
	"container/list"
	"fmt"
	"time"
)

// Dynamic is the temporally evolving data graph of the paper: edges arrive
// with timestamps and the graph retains only those whose timestamp falls
// inside a sliding window of configurable width ending at the stream
// watermark (the largest timestamp observed, minus an optional out-of-order
// slack). Expired edges are removed from the underlying Graph so that local
// searches never see data that could not participate in a valid match.
type Dynamic struct {
	g *Graph

	window    time.Duration
	slack     time.Duration
	watermark Timestamp
	seenAny   bool

	// arrival order queue used for expiry; each element is an *Edge. The
	// queue is kept sorted by timestamp up to the allowed slack, which is
	// sufficient for window expiry because we only expire strictly older
	// edges than watermark-window.
	queue *list.List

	// onExpire, when set, is invoked for every edge evicted from the window.
	onExpire func(*Edge)

	expiredTotal uint64
	addedTotal   uint64
}

// DynamicOption configures a Dynamic graph.
type DynamicOption func(*Dynamic)

// WithSlack allows edges to arrive up to d out of timestamp order without
// being rejected. The watermark trails the maximum observed timestamp by d.
func WithSlack(d time.Duration) DynamicOption {
	return func(dg *Dynamic) { dg.slack = d }
}

// WithExpiryCallback registers fn to be called for every edge that leaves
// the sliding window. The continuous engine uses this to prune partial
// matches that can no longer complete.
func WithExpiryCallback(fn func(*Edge)) DynamicOption {
	return func(dg *Dynamic) { dg.onExpire = fn }
}

// NewDynamic constructs a dynamic graph with the given sliding-window width.
// A window of zero means "unbounded": edges are never expired.
func NewDynamic(window time.Duration, opts ...DynamicOption) *Dynamic {
	dg := &Dynamic{
		g:      New(WithAutoVertices()),
		window: window,
		queue:  list.New(),
	}
	for _, o := range opts {
		o(dg)
	}
	return dg
}

// Graph exposes the underlying static graph for read-only use by matchers
// and statistics collectors.
func (d *Dynamic) Graph() *Graph { return d.g }

// Window returns the configured window width.
func (d *Dynamic) Window() time.Duration { return d.window }

// Watermark returns the current stream watermark: the latest timestamp
// observed minus the out-of-order slack.
func (d *Dynamic) Watermark() Timestamp { return d.watermark }

// NumVertices returns the number of live vertices.
func (d *Dynamic) NumVertices() int { return d.g.NumVertices() }

// NumEdges returns the number of live (non-expired) edges.
func (d *Dynamic) NumEdges() int { return d.g.NumEdges() }

// AddedTotal returns the cumulative number of edges ever admitted.
func (d *Dynamic) AddedTotal() uint64 { return d.addedTotal }

// ExpiredTotal returns the cumulative number of edges expired from the window.
func (d *Dynamic) ExpiredTotal() uint64 { return d.expiredTotal }

// SetExpiryCallback replaces the expiry callback after construction. The
// engine installs its pruning hook once queries are registered.
func (d *Dynamic) SetExpiryCallback(fn func(*Edge)) { d.onExpire = fn }

// Apply ingests a stream edge: the edge is validated against the watermark,
// endpoint metadata is upserted, the edge is added to the live graph and the
// window is advanced, expiring edges that fall out of it. It returns the
// stored edge.
func (d *Dynamic) Apply(se StreamEdge) (*Edge, error) {
	ts := se.Edge.Timestamp
	if d.seenAny && ts < d.watermark-Timestamp(d.slack) && d.window > 0 {
		return nil, &EdgeError{ID: se.Edge.ID, Err: ErrTimestampRegression}
	}
	e, err := d.g.AddStreamEdge(se)
	if err != nil {
		return nil, err
	}
	d.addedTotal++
	d.enqueue(e)
	d.advance(ts)
	return e, nil
}

// enqueue inserts e into the expiry queue keeping it sorted by timestamp.
// Because arrivals are near-ordered (bounded slack) the insertion point is
// found by scanning backwards from the tail and is O(1) amortized.
func (d *Dynamic) enqueue(e *Edge) {
	for el := d.queue.Back(); el != nil; el = el.Prev() {
		if el.Value.(*Edge).Timestamp <= e.Timestamp {
			d.queue.InsertAfter(e, el)
			return
		}
	}
	d.queue.PushFront(e)
}

// advance moves the watermark forward to ts-slack (never backwards) and
// expires edges older than watermark-window.
func (d *Dynamic) advance(ts Timestamp) {
	if !d.seenAny {
		d.seenAny = true
		d.watermark = ts - Timestamp(d.slack)
	} else if wm := ts - Timestamp(d.slack); wm > d.watermark {
		d.watermark = wm
	}
	d.expire()
}

// AdvanceTo signals that stream time has reached ts without delivering an
// edge (heartbeats, watermark broadcasts from a sharded front-end). It has
// exactly the same watermark semantics as edge ingestion: the watermark
// advances to ts-slack, never backwards, and expiry runs against the new
// watermark. Keeping the two paths identical means interleaving Apply and
// AdvanceTo can never jump the watermark ahead of what an edge at ts would
// produce, so edges still within the out-of-order slack are not prematurely
// expired or rejected.
func (d *Dynamic) AdvanceTo(ts Timestamp) {
	d.advance(ts)
}

func (d *Dynamic) expire() {
	if d.window <= 0 {
		return
	}
	cutoff := d.watermark - Timestamp(d.window)
	for {
		front := d.queue.Front()
		if front == nil {
			return
		}
		e := front.Value.(*Edge)
		if e.Timestamp >= cutoff {
			return
		}
		d.queue.Remove(front)
		// The edge may already have been removed explicitly; ignore that.
		if err := d.g.RemoveEdge(e.ID); err == nil {
			d.expiredTotal++
			d.g.RemoveIsolatedVertex(e.Source)
			d.g.RemoveIsolatedVertex(e.Target)
			if d.onExpire != nil {
				d.onExpire(e)
			}
		}
	}
}

// String summarizes the dynamic graph state.
func (d *Dynamic) String() string {
	return fmt.Sprintf("Dynamic(window=%s, watermark=%d, %s, added=%d, expired=%d)",
		d.window, d.watermark, d.g, d.addedTotal, d.expiredTotal)
}
