package graph

import (
	"errors"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddVertex(Vertex{ID: 1, Type: "Host"})
	g.AddVertex(Vertex{ID: 2, Type: "Host"})
	g.AddVertex(Vertex{ID: 3, Type: "Server"})
	edges := []Edge{
		{ID: 10, Source: 1, Target: 2, Type: "connects", Timestamp: 100},
		{ID: 11, Source: 2, Target: 3, Type: "connects", Timestamp: 200},
		{ID: 12, Source: 3, Target: 1, Type: "serves", Timestamp: 300},
	}
	for _, e := range edges {
		if _, err := g.AddEdge(e); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

func TestGraphAddVertexAndLookup(t *testing.T) {
	g := New()
	v := g.AddVertex(Vertex{ID: 7, Type: "IP", Attrs: Attributes{"addr": String("10.0.0.1")}})
	if v.ID != 7 || v.Type != "IP" {
		t.Fatalf("unexpected vertex %v", v)
	}
	got, ok := g.Vertex(7)
	if !ok || got.Type != "IP" {
		t.Fatalf("Vertex(7) = %v, %v", got, ok)
	}
	if !g.HasVertex(7) || g.HasVertex(8) {
		t.Fatalf("HasVertex misbehaved")
	}
	if g.NumVertices() != 1 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
}

func TestGraphAddVertexMergesAttributes(t *testing.T) {
	g := New()
	g.AddVertex(Vertex{ID: 1, Type: "Host", Attrs: Attributes{"os": String("linux")}})
	g.AddVertex(Vertex{ID: 1, Attrs: Attributes{"ram": Int(64)}})
	v, _ := g.Vertex(1)
	if v.Type != "Host" {
		t.Fatalf("empty type overwrote existing type: %v", v)
	}
	if v.Attrs["os"].Str() != "linux" || v.Attrs["ram"].Int64() != 64 {
		t.Fatalf("attributes not merged: %v", v.Attrs)
	}
}

func TestGraphAddVertexRetype(t *testing.T) {
	g := New()
	g.AddVertex(Vertex{ID: 1, Type: "Host"})
	g.AddVertex(Vertex{ID: 1, Type: "Server"})
	if n := g.CountVerticesOfType("Host"); n != 0 {
		t.Fatalf("stale type index entry: %d", n)
	}
	if n := g.CountVerticesOfType("Server"); n != 1 {
		t.Fatalf("missing type index entry: %d", n)
	}
}

func TestGraphAddEdgeRequiresEndpoints(t *testing.T) {
	g := New()
	_, err := g.AddEdge(Edge{ID: 1, Source: 1, Target: 2, Type: "x"})
	if !errors.Is(err, ErrDanglingEdge) {
		t.Fatalf("expected ErrDanglingEdge, got %v", err)
	}
	auto := New(WithAutoVertices())
	if _, err := auto.AddEdge(Edge{ID: 1, Source: 1, Target: 2, Type: "x"}); err != nil {
		t.Fatalf("auto-vertex graph rejected edge: %v", err)
	}
	if auto.NumVertices() != 2 {
		t.Fatalf("endpoints not auto-created")
	}
}

func TestGraphDuplicateEdgeRejected(t *testing.T) {
	g := buildTriangle(t)
	_, err := g.AddEdge(Edge{ID: 10, Source: 1, Target: 2, Type: "connects"})
	if !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("expected ErrDuplicateEdge, got %v", err)
	}
}

func TestGraphAdjacency(t *testing.T) {
	g := buildTriangle(t)
	if d := g.Degree(1); d != 2 {
		t.Fatalf("Degree(1) = %d, want 2", d)
	}
	if d := g.OutDegree(1); d != 1 {
		t.Fatalf("OutDegree(1) = %d, want 1", d)
	}
	if d := g.InDegree(1); d != 1 {
		t.Fatalf("InDegree(1) = %d, want 1", d)
	}
	nbrs := g.Neighbors(1)
	if len(nbrs) != 2 {
		t.Fatalf("Neighbors(1) = %v", nbrs)
	}
	between := g.EdgesBetween(1, 2)
	if len(between) != 1 || between[0].ID != 10 {
		t.Fatalf("EdgesBetween(1,2) = %v", between)
	}
	if len(g.EdgesBetween(2, 1)) != 0 {
		t.Fatalf("EdgesBetween should be directed")
	}
	if n := len(g.IncidentEdges(2)); n != 2 {
		t.Fatalf("IncidentEdges(2) = %d edges", n)
	}
}

func TestGraphTypeIndexes(t *testing.T) {
	g := buildTriangle(t)
	hosts := g.VerticesOfType("Host")
	if len(hosts) != 2 || hosts[0] != 1 || hosts[1] != 2 {
		t.Fatalf("VerticesOfType(Host) = %v", hosts)
	}
	if g.CountEdgesOfType("connects") != 2 || g.CountEdgesOfType("serves") != 1 {
		t.Fatalf("edge type counts wrong")
	}
	if got := g.VertexTypes(); len(got) != 2 || got[0] != "Host" || got[1] != "Server" {
		t.Fatalf("VertexTypes = %v", got)
	}
	if got := g.EdgeTypes(); len(got) != 2 || got[0] != "connects" || got[1] != "serves" {
		t.Fatalf("EdgeTypes = %v", got)
	}
}

func TestGraphRemoveEdge(t *testing.T) {
	g := buildTriangle(t)
	if err := g.RemoveEdge(11); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d after removal", g.NumEdges())
	}
	if g.HasEdge(11) {
		t.Fatalf("edge still present after removal")
	}
	if g.OutDegree(2) != 0 {
		t.Fatalf("adjacency not updated after removal")
	}
	if g.CountEdgesOfType("connects") != 1 {
		t.Fatalf("type count not updated after removal")
	}
	if err := g.RemoveEdge(999); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("expected ErrEdgeNotFound, got %v", err)
	}
}

func TestGraphRemoveIsolatedVertex(t *testing.T) {
	g := buildTriangle(t)
	if g.RemoveIsolatedVertex(1) {
		t.Fatalf("vertex 1 has edges and must not be removed")
	}
	if err := g.RemoveEdge(10); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(12); err != nil {
		t.Fatal(err)
	}
	if !g.RemoveIsolatedVertex(1) {
		t.Fatalf("vertex 1 is isolated and should be removed")
	}
	if g.HasVertex(1) {
		t.Fatalf("vertex 1 still present")
	}
	if g.RemoveIsolatedVertex(999) {
		t.Fatalf("unknown vertex reported as removed")
	}
}

func TestGraphAddStreamEdge(t *testing.T) {
	g := New(WithAutoVertices())
	se := StreamEdge{
		Edge:        Edge{ID: 1, Source: 5, Target: 6, Type: "login", Timestamp: 50},
		SourceType:  "User",
		TargetType:  "Machine",
		SourceAttrs: Attributes{"name": String("alice")},
	}
	if _, err := g.AddStreamEdge(se); err != nil {
		t.Fatalf("AddStreamEdge: %v", err)
	}
	src, _ := g.Vertex(5)
	dst, _ := g.Vertex(6)
	if src.Type != "User" || dst.Type != "Machine" {
		t.Fatalf("endpoint types not applied: %v %v", src, dst)
	}
	if src.Attrs["name"].Str() != "alice" {
		t.Fatalf("endpoint attributes not applied")
	}
}

func TestGraphMultigraphEdges(t *testing.T) {
	g := New(WithAutoVertices())
	for i := 0; i < 5; i++ {
		if _, err := g.AddEdge(Edge{ID: EdgeID(i), Source: 1, Target: 2, Type: "flow", Timestamp: Timestamp(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(g.EdgesBetween(1, 2)) != 5 {
		t.Fatalf("multigraph edges collapsed")
	}
	if g.Degree(1) != 5 {
		t.Fatalf("Degree(1) = %d", g.Degree(1))
	}
}

func TestGraphCloneIndependence(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("clone sizes differ")
	}
	if _, err := c.AddEdge(Edge{ID: 99, Source: 1, Target: 3, Type: "new"}); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(99) {
		t.Fatalf("mutating the clone affected the original")
	}
}

func TestGraphIterationEarlyStop(t *testing.T) {
	g := buildTriangle(t)
	count := 0
	g.Vertices(func(*Vertex) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("vertex iteration did not stop early: %d", count)
	}
	count = 0
	g.Edges(func(*Edge) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("edge iteration did not stop early: %d", count)
	}
}

func TestGraphIDOrdering(t *testing.T) {
	g := buildTriangle(t)
	vids := g.VertexIDs()
	for i := 1; i < len(vids); i++ {
		if vids[i-1] >= vids[i] {
			t.Fatalf("VertexIDs not sorted: %v", vids)
		}
	}
	eids := g.EdgeIDs()
	for i := 1; i < len(eids); i++ {
		if eids[i-1] >= eids[i] {
			t.Fatalf("EdgeIDs not sorted: %v", eids)
		}
	}
}

// Property: after inserting any set of edges over an auto-vertex graph, the
// sum of all out-degrees and the sum of all in-degrees both equal the number
// of edges.
func TestGraphDegreeSumProperty(t *testing.T) {
	type pair struct{ S, T uint8 }
	f := func(pairs []pair) bool {
		g := New(WithAutoVertices())
		for i, p := range pairs {
			if _, err := g.AddEdge(Edge{ID: EdgeID(i), Source: VertexID(p.S), Target: VertexID(p.T), Type: "e"}); err != nil {
				return false
			}
		}
		var outSum, inSum int
		for _, v := range g.VertexIDs() {
			outSum += g.OutDegree(v)
			inSum += g.InDegree(v)
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := &Edge{ID: 1, Source: 10, Target: 20}
	if e.Other(10) != 20 || e.Other(20) != 10 {
		t.Fatalf("Other endpoint wrong")
	}
	if !e.Touches(10) || !e.Touches(20) || e.Touches(30) {
		t.Fatalf("Touches wrong")
	}
}

func TestIntervalOperations(t *testing.T) {
	iv := NewInterval(100)
	if iv.Span() != 0 {
		t.Fatalf("singleton interval span = %v", iv.Span())
	}
	iv = iv.Extend(50).Extend(200)
	if iv.Start != 50 || iv.End != 200 {
		t.Fatalf("Extend produced %v", iv)
	}
	u := iv.Union(Interval{Start: 10, End: 120})
	if u.Start != 10 || u.End != 200 {
		t.Fatalf("Union produced %v", u)
	}
	if !iv.Contains(100) || iv.Contains(300) {
		t.Fatalf("Contains wrong")
	}
	if !iv.Within(151) {
		t.Fatalf("interval of span 150 should be within 151")
	}
	if iv.Within(150) {
		t.Fatalf("Within must be strict (span 150 !< 150)")
	}
}

// Property: Union is commutative and Extend never shrinks an interval.
func TestIntervalUnionProperty(t *testing.T) {
	f := func(a, b, c, d int32) bool {
		i1 := NewInterval(Timestamp(a)).Extend(Timestamp(b))
		i2 := NewInterval(Timestamp(c)).Extend(Timestamp(d))
		u1, u2 := i1.Union(i2), i2.Union(i1)
		if u1 != u2 {
			return false
		}
		return u1.Span() >= i1.Span() && u1.Span() >= i2.Span()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeRejectsReservedIDs(t *testing.T) {
	cases := []Edge{
		{ID: ReservedEdgeID, Source: 1, Target: 2, Type: "x", Timestamp: 1},
		{ID: 1, Source: ReservedVertexID, Target: 2, Type: "x", Timestamp: 1},
		{ID: 1, Source: 1, Target: ReservedVertexID, Type: "x", Timestamp: 1},
	}
	for _, e := range cases {
		g := New(WithAutoVertices())
		if _, err := g.AddEdge(e); !errors.Is(err, ErrReservedID) {
			t.Fatalf("AddEdge(%+v) err = %v, want ErrReservedID", e, err)
		}
		if g.NumEdges() != 0 {
			t.Fatalf("reserved-ID edge was stored")
		}
	}
}
