package graph

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"string", String("alpha"), KindString, "alpha"},
		{"int", Int(42), KindInt, "42"},
		{"float", Float(2.5), KindFloat, "2.5"},
		{"bool", Bool(true), KindBool, "true"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.v.Kind() != tc.kind {
				t.Fatalf("kind = %v, want %v", tc.v.Kind(), tc.kind)
			}
			if !tc.v.IsValid() {
				t.Fatalf("value should be valid")
			}
			if got := tc.v.String(); got != tc.str {
				t.Fatalf("String() = %q, want %q", got, tc.str)
			}
		})
	}
	var zero Value
	if zero.IsValid() {
		t.Fatalf("zero value must be invalid")
	}
	if zero.Kind() != KindInvalid {
		t.Fatalf("zero kind = %v, want invalid", zero.Kind())
	}
}

func TestValueNumericConversions(t *testing.T) {
	if got := Int(7).Float64(); got != 7.0 {
		t.Fatalf("Int(7).Float64() = %v", got)
	}
	if got := Float(7.9).Int64(); got != 7 {
		t.Fatalf("Float(7.9).Int64() = %v", got)
	}
	if !Int(3).IsNumeric() || !Float(3).IsNumeric() {
		t.Fatalf("int and float must be numeric")
	}
	if String("3").IsNumeric() || Bool(true).IsNumeric() {
		t.Fatalf("string and bool must not be numeric")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Fatalf("Int(3) should equal Float(3)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Fatalf("Int(3) should not equal Float(3.5)")
	}
	if !String("x").Equal(String("x")) {
		t.Fatalf("identical strings should be equal")
	}
	if String("x").Equal(Int(0)) {
		t.Fatalf("string and int should not be equal")
	}
	if !Bool(false).Equal(Bool(false)) {
		t.Fatalf("identical bools should be equal")
	}
}

func TestValueCompare(t *testing.T) {
	if Int(1).Compare(Int(2)) != -1 {
		t.Fatalf("1 < 2 expected")
	}
	if Int(2).Compare(Float(1.5)) != 1 {
		t.Fatalf("2 > 1.5 expected")
	}
	if Float(2).Compare(Int(2)) != 0 {
		t.Fatalf("2.0 == 2 expected")
	}
	if String("a").Compare(String("b")) != -1 {
		t.Fatalf("a < b expected")
	}
	if Bool(false).Compare(Bool(true)) != -1 {
		t.Fatalf("false < true expected")
	}
	if Bool(true).Compare(Bool(true)) != 0 {
		t.Fatalf("true == true expected")
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"true", KindBool},
		{"False", KindBool},
		{"123", KindInt},
		{"-17", KindInt},
		{"1.25", KindFloat},
		{"1e3", KindFloat},
		{"hello", KindString},
		{"", KindString},
	}
	for _, tc := range cases {
		if got := ParseValue(tc.in).Kind(); got != tc.kind {
			t.Errorf("ParseValue(%q).Kind() = %v, want %v", tc.in, got, tc.kind)
		}
	}
}

func TestParseValueRoundTripInt(t *testing.T) {
	f := func(v int64) bool {
		parsed := ParseValue(Int(v).String())
		return parsed.Kind() == KindInt && parsed.Int64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAttributesSetGetOnNil(t *testing.T) {
	var attrs Attributes
	if _, ok := attrs.Get("missing"); ok {
		t.Fatalf("nil attributes should report missing keys")
	}
	attrs = attrs.Set("k", Int(1))
	if v, ok := attrs.Get("k"); !ok || v.Int64() != 1 {
		t.Fatalf("Set on nil map failed: %v %v", v, ok)
	}
}

func TestAttributesCloneIsDeep(t *testing.T) {
	a := Attributes{"x": Int(1), "y": String("s")}
	c := a.Clone()
	c["x"] = Int(99)
	if a["x"].Int64() != 1 {
		t.Fatalf("clone mutated the original")
	}
	var nilAttrs Attributes
	if nilAttrs.Clone() != nil {
		t.Fatalf("clone of nil should be nil")
	}
}

func TestAttributesMerge(t *testing.T) {
	a := Attributes{"x": Int(1), "y": Int(2)}
	b := Attributes{"y": Int(20), "z": Int(30)}
	m := a.Merge(b)
	if m["x"].Int64() != 1 || m["y"].Int64() != 20 || m["z"].Int64() != 30 {
		t.Fatalf("merge produced %v", m)
	}
	if a["y"].Int64() != 2 {
		t.Fatalf("merge mutated receiver")
	}
	var empty Attributes
	if got := empty.Merge(b); got["z"].Int64() != 30 {
		t.Fatalf("merge into empty produced %v", got)
	}
}

func TestAttributesStringDeterministic(t *testing.T) {
	a := Attributes{"b": Int(2), "a": Int(1)}
	want := "{a=1, b=2}"
	for i := 0; i < 10; i++ {
		if got := a.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
	var empty Attributes
	if empty.String() != "{}" {
		t.Fatalf("empty attributes should render as {}")
	}
}
