package graph

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by graph mutations and lookups. Callers should
// test with errors.Is.
var (
	// ErrVertexNotFound is returned when a lookup references an unknown vertex.
	ErrVertexNotFound = errors.New("graph: vertex not found")
	// ErrEdgeNotFound is returned when a lookup references an unknown edge.
	ErrEdgeNotFound = errors.New("graph: edge not found")
	// ErrDuplicateEdge is returned when an edge with an existing ID is added.
	ErrDuplicateEdge = errors.New("graph: duplicate edge id")
	// ErrDanglingEdge is returned when an edge references a vertex that does
	// not exist and auto-creation is disabled.
	ErrDanglingEdge = errors.New("graph: edge references unknown vertex")
	// ErrTimestampRegression is returned by the dynamic graph when an edge
	// arrives with a timestamp older than the allowed out-of-order slack.
	ErrTimestampRegression = errors.New("graph: edge timestamp regresses beyond slack")
	// ErrReservedID is returned when an edge uses the all-ones vertex or
	// edge ID, which the match representation reserves as its "unbound"
	// sentinel. Enforcing the reservation at the ingest boundary keeps
	// hostile or buggy sources from forging IDs that would corrupt match
	// identity downstream.
	ErrReservedID = errors.New("graph: all-ones id is reserved")
)

// ReservedVertexID and ReservedEdgeID are the all-ones IDs rejected by
// AddEdge; internal/match uses them as unbound-binding sentinels.
const (
	ReservedVertexID = ^VertexID(0)
	ReservedEdgeID   = ^EdgeID(0)
)

// VertexError decorates a vertex-related error with the offending ID.
type VertexError struct {
	ID  VertexID
	Err error
}

// Error implements error.
func (e *VertexError) Error() string { return fmt.Sprintf("%v (vertex %d)", e.Err, e.ID) }

// Unwrap exposes the wrapped sentinel.
func (e *VertexError) Unwrap() error { return e.Err }

// EdgeError decorates an edge-related error with the offending ID.
type EdgeError struct {
	ID  EdgeID
	Err error
}

// Error implements error.
func (e *EdgeError) Error() string { return fmt.Sprintf("%v (edge %d)", e.Err, e.ID) }

// Unwrap exposes the wrapped sentinel.
func (e *EdgeError) Unwrap() error { return e.Err }
