package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types an attribute Value can hold.
type Kind uint8

const (
	// KindInvalid is the zero Kind; a zero Value is invalid.
	KindInvalid Kind = iota
	// KindString holds UTF-8 text.
	KindString
	// KindInt holds a signed 64-bit integer.
	KindInt
	// KindFloat holds a 64-bit floating point number.
	KindFloat
	// KindBool holds a boolean.
	KindBool
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed attribute value attached to vertices and
// edges of the multi-relational graph. Values are small immutable structs
// and are passed by value throughout the library.
type Value struct {
	kind Kind
	str  string
	num  int64
	flt  float64
	b    bool
}

// String constructs a string Value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int constructs an integer Value.
func Int(v int64) Value { return Value{kind: KindInt, num: v} }

// Float constructs a floating point Value.
func Float(v float64) Value { return Value{kind: KindFloat, flt: v} }

// Bool constructs a boolean Value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds data of any kind.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// Int64 returns the integer payload, converting from float if necessary.
func (v Value) Int64() int64 {
	if v.kind == KindFloat {
		return int64(v.flt)
	}
	return v.num
}

// Float64 returns the numeric payload as a float64, converting from int
// if necessary.
func (v Value) Float64() float64 {
	if v.kind == KindInt {
		return float64(v.num)
	}
	return v.flt
}

// BoolVal returns the boolean payload.
func (v Value) BoolVal() bool { return v.b }

// IsNumeric reports whether the value holds an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports whether two values are equal. Numeric values of different
// kinds (int vs float) compare equal when they represent the same number.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindString:
			return v.str == o.str
		case KindInt:
			return v.num == o.num
		case KindFloat:
			return v.flt == o.flt
		case KindBool:
			return v.b == o.b
		default:
			return true
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		return v.Float64() == o.Float64()
	}
	return false
}

// Compare returns -1, 0 or +1 ordering v relative to o. Values of
// incomparable kinds order by kind. Numeric kinds compare numerically.
func (v Value) Compare(o Value) int {
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.Float64(), o.Float64()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.str, o.str)
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// String renders the value for display and DOT/JSON export.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// ParseValue converts a textual representation into the most specific Value
// kind: bool, int, float, then string. It is used by the CSV/JSON loaders and
// the query DSL parser.
func ParseValue(s string) Value {
	switch s {
	case "true", "TRUE", "True":
		return Bool(true)
	case "false", "FALSE", "False":
		return Bool(false)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	return String(s)
}

// Attributes is a set of named values attached to a vertex or an edge.
// A nil Attributes behaves like an empty set for reads.
type Attributes map[string]Value

// Get returns the value stored under key and whether it exists.
func (a Attributes) Get(key string) (Value, bool) {
	if a == nil {
		return Value{}, false
	}
	v, ok := a[key]
	return v, ok
}

// Set stores a value under key and returns the (possibly newly allocated)
// attribute map so callers can use it on a nil map:
//
//	attrs = attrs.Set("port", graph.Int(443))
func (a Attributes) Set(key string, v Value) Attributes {
	if a == nil {
		a = make(Attributes, 1)
	}
	a[key] = v
	return a
}

// Clone returns a deep copy of the attribute set.
func (a Attributes) Clone() Attributes {
	if a == nil {
		return nil
	}
	out := make(Attributes, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Covers reports whether every entry of b is already present in a with an
// equal value — the "merge would be a no-op" test that lets the stream
// ingestion path skip per-edge attribute copies.
func (a Attributes) Covers(b Attributes) bool {
	if len(b) > len(a) {
		return false
	}
	for k, v := range b {
		if av, ok := a[k]; !ok || av != v {
			return false
		}
	}
	return true
}

// Merge returns a new attribute set containing all entries of a overridden
// by entries of b.
func (a Attributes) Merge(b Attributes) Attributes {
	if len(a) == 0 {
		return b.Clone()
	}
	out := a.Clone()
	for k, v := range b {
		out = out.Set(k, v)
	}
	return out
}

// String renders the attributes deterministically (sorted by key).
func (a Attributes) String() string {
	if len(a) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", k, a[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// sortStrings is a tiny insertion sort used to avoid importing sort for a
// single call site in hot paths (attribute sets are tiny).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
