package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// directives indexes every //swvet: comment by file name.
	directives map[string][]Directive
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates, parses and type-checks the module packages matched by
// patterns (relative to dir), entirely offline: package structure comes from
// `go list`, and type information for imports is read from the compiler
// export data `go list -export` leaves in the build cache — the same
// mechanism x/tools' gcexportdata driver uses, minus the dependency.
// Test files are not loaded; swvet checks the shipped tree (the fixture
// suites under passes/*/testdata cover the analyzers themselves).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFixture parses and type-checks a single fixture directory (an
// analysistest testdata package, outside any go list universe). Imports are
// resolved through export data fetched for exactly the paths the fixture
// names; moduleDir anchors the `go list` invocation in this module.
func LoadFixture(moduleDir, fixtureDir string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(fixtureDir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", fixtureDir)
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	imports := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
		for _, im := range af.Imports {
			imports[strings.Trim(im.Path.Value, `"`)] = true
		}
	}

	exports := make(map[string]string)
	if len(imports) > 0 {
		args := append([]string{
			"list", "-e", "-export", "-deps",
			"-json=ImportPath,Export,Error",
		}, sortedKeys(imports)...)
		cmd := exec.Command("go", args...)
		cmd.Dir = moduleDir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list (fixture deps): %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPkg
			if err := dec.Decode(&p); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	imp := exportImporter(fset, exports)
	pkgPath := filepath.Base(fixtureDir)
	return checkParsed(fset, imp, pkgPath, fixtureDir, parsed)
}

// exportImporter returns a go/importer that reads compiler export data from
// the files go list reported. One importer instance is shared across a whole
// Load so mutually-imported packages unify.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	return checkParsed(fset, imp, pkgPath, dir, parsed)
}

func checkParsed(fset *token.FileSet, imp types.Importer, pkgPath, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	pkg := &Package{
		PkgPath:    pkgPath,
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Types:      tpkg,
		Info:       info,
		directives: make(map[string][]Directive),
	}
	for _, f := range parsed {
		pkg.parseDirectives(f)
	}
	return pkg, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Deterministic go list invocation regardless of map iteration order.
	sort.Strings(out)
	return out
}
