// Package analysis is StreamWorks' in-tree static-analysis framework: a
// self-contained reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) on top of the standard library only.
//
// The repo's correctness argument rests on invariants the Go compiler cannot
// see — the single-driver engine contract, scratch-backed ProcessEdge
// slices, stream-time discipline in hot paths, canonical ordering of
// anything that feeds match signatures or wire output, and
// subscription/sink lifecycle hygiene. The analyzers under passes/ turn
// those conventions into machine-checked rules; cmd/swvet is the
// multichecker that runs them over the tree.
//
// Why not depend on x/tools directly: the build environment for this repo
// is fully offline (module cache starts empty), so the framework loads type
// information through `go list -export` and go/importer instead of
// go/packages, and fixture tests use the in-tree analysistest package. The
// analyzer API is kept deliberately close to x/tools so analyzers could be
// ported to the real driver by swapping imports.
//
// # Directives
//
// Analyzers and the driver understand machine-readable comments of the form
//
//	//swvet:<name> [args...]
//
// (a space after // is tolerated). The framework itself implements one:
//
//	//swvet:ignore <analyzer>[,<analyzer>...] -- <justification>
//
// placed on the flagged line or the line directly above suppresses the named
// analyzers' diagnostics for that line (no analyzer list suppresses all).
// The justification after "--" is mandatory by convention and enforced in
// review, not by the tool. Individual analyzers add their own directives
// (//swvet:wallclock, //swvet:scratch, //swvet:sink, //swvet:unordered,
// //swvet:hotpath, //swvet:deterministic); see their package docs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer minus the dependency machinery
// (facts, requires) that these checks do not need.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //swvet:ignore
	// lists. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description, shown by `swvet -list`.
	Doc string
	// Run executes the check over one package, reporting findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the file set all package positions resolve through.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the package's type-checker results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// TypesPkg returns the package's type-checker package object.
func (p *Pass) TypesPkg() *types.Package { return p.Pkg.Types }

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.PkgPath }

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Reportf records a diagnostic at pos unless an //swvet:ignore directive on
// the same line (or the line above) names this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	for _, d := range p.Pkg.directivesNear(position) {
		if d.Name == "ignore" && d.ignores(p.Analyzer.Name) {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether a //swvet:<name> directive (any of names) sits on
// pos's line or the line directly above it — the per-line allowlist
// mechanism analyzers use for their specific escape hatches.
func (p *Pass) Allowed(pos token.Pos, names ...string) bool {
	position := p.Pkg.Fset.Position(pos)
	for _, d := range p.Pkg.directivesNear(position) {
		for _, n := range names {
			if d.Name == n {
				return true
			}
		}
	}
	return false
}

// FileHasDirective reports whether any comment in f carries the directive.
// Used for file-scope markers like //swvet:hotpath in analyzer fixtures.
func (p *Pass) FileHasDirective(f *ast.File, name string) bool {
	fname := p.Pkg.Fset.Position(f.Pos()).Filename
	for _, d := range p.Pkg.directives[fname] {
		if d.Name == name {
			return true
		}
	}
	return false
}

// Directive is one parsed //swvet: comment.
type Directive struct {
	Line int
	Name string
	Args string
}

// ignores reports whether an ignore directive's analyzer list covers name.
// An empty list suppresses everything.
func (d Directive) ignores(name string) bool {
	list := d.Args
	if i := strings.Index(list, "--"); i >= 0 {
		list = list[:i]
	}
	list = strings.TrimSpace(list)
	if list == "" {
		return true
	}
	for _, f := range strings.FieldsFunc(list, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if f == name {
			return true
		}
	}
	return false
}

var directiveRE = regexp.MustCompile(`^//\s?swvet:([a-z-]+)(?:[ \t]+(.*))?$`)

// HasDirective reports whether a comment group (typically a declaration's
// doc comment) carries //swvet:<name>.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if m := directiveRE.FindStringSubmatch(c.Text); m != nil && m[1] == name {
			return true
		}
	}
	return false
}

// parseDirectives indexes every //swvet: comment in f by file and line.
func (pkg *Package) parseDirectives(f *ast.File) {
	fname := pkg.Fset.Position(f.Pos()).Filename
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := directiveRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pkg.directives[fname] = append(pkg.directives[fname], Directive{
				Line: pkg.Fset.Position(c.Pos()).Line,
				Name: m[1],
				Args: strings.TrimSpace(m[2]),
			})
		}
	}
}

// directivesNear returns the directives on position's line and the line
// directly above it.
func (pkg *Package) directivesNear(position token.Position) []Directive {
	var out []Directive
	for _, d := range pkg.directives[position.Filename] {
		if d.Line == position.Line || d.Line == position.Line-1 {
			out = append(out, d)
		}
	}
	return out
}

// Run executes analyzers over pkgs and returns all diagnostics sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return lessDiag(diags[i], diags[j]) })
	return diags, nil
}

func lessDiag(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
