// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against expectations written in the fixture source, the
// same contract as golang.org/x/tools/go/analysis/analysistest:
//
//	_ = scratch() // want `retained beyond the next call`
//
// A `// want` comment names one or more double- or back-quoted regular
// expressions that must each match a diagnostic reported on that line; any
// unmatched expectation and any unexpected diagnostic fails the test.
// Lines without a want comment must produce no diagnostics, which is how
// fixtures encode their negative and allowlisted cases.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/streamworks/streamworks/internal/analysis"
)

// wantRE extracts the expectation list from a fixture comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE matches one double- or back-quoted expectation.
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the fixture package in dir (a testdata subdirectory), applies
// the analyzer, and reports every mismatch between its diagnostics and the
// fixture's // want comments as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	moduleDir, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkg, err := analysis.LoadFixture(moduleDir, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants, err := parseWants(dir)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}

	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// consume marks the first unmet expectation matching d and reports whether
// one existed.
func consume(wants []*expectation, d analysis.Diagnostic) bool {
	base := filepath.Base(d.Pos.Filename)
	for _, w := range wants {
		if !w.met && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.met = true
			return true
		}
	}
	return false
}

// parseWants scans every fixture file for // want comments.
func parseWants(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRE.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q", e.Name(), i+1, line)
			}
			for _, q := range quoted {
				var pat string
				if strings.HasPrefix(q, "`") {
					pat = strings.Trim(q, "`")
				} else {
					pat, err = strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad expectation %s: %v", e.Name(), i+1, q, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad expectation regexp %q: %v", e.Name(), i+1, pat, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re, raw: q})
			}
		}
	}
	return wants, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}
