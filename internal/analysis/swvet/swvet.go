// Package swvet assembles the repo's analyzer suite. The six
// StreamWorks-specific passes enforce invariants that ordinary vet cannot
// know about (scratch-buffer aliasing, stream-time-only hot paths,
// allocation-free trace events, deterministic output, subscription
// lifecycles, sentinel wrapping); the remaining passes are in-tree stand-ins
// for the x/tools checks the CI would otherwise pull from the network.
package swvet

import (
	"github.com/streamworks/streamworks/internal/analysis"
	"github.com/streamworks/streamworks/internal/analysis/passes/copylocks"
	"github.com/streamworks/streamworks/internal/analysis/passes/errcmp"
	"github.com/streamworks/streamworks/internal/analysis/passes/lostcancel"
	"github.com/streamworks/streamworks/internal/analysis/passes/maporder"
	"github.com/streamworks/streamworks/internal/analysis/passes/nilcmp"
	"github.com/streamworks/streamworks/internal/analysis/passes/obsescape"
	"github.com/streamworks/streamworks/internal/analysis/passes/scratchalias"
	"github.com/streamworks/streamworks/internal/analysis/passes/sinkleak"
	"github.com/streamworks/streamworks/internal/analysis/passes/walltime"
	"github.com/streamworks/streamworks/internal/analysis/passes/walorder"
)

// Analyzers returns the full suite in stable (alphabetical) order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		copylocks.Analyzer,
		errcmp.Analyzer,
		lostcancel.Analyzer,
		maporder.Analyzer,
		nilcmp.Analyzer,
		obsescape.Analyzer,
		scratchalias.Analyzer,
		sinkleak.Analyzer,
		walltime.Analyzer,
		walorder.Analyzer,
	}
}
