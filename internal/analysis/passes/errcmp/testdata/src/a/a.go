// Package a is an errcmp fixture.
package a

import (
	"errors"
	"fmt"
	"io"
)

// ErrClosed mimics a layer sentinel; layers above wrap it.
var ErrClosed = errors.New("a: closed")

// errInternal is package-level but unexported; still a sentinel.
var errInternal = errors.New("a: internal")

func wrapped() error { return fmt.Errorf("shard 3: %w", ErrClosed) }

func bad(err error) {
	if err == ErrClosed { // want `sentinel error ErrClosed compared with ==`
		return
	}
	if err != ErrClosed { // want `sentinel error ErrClosed compared with !=`
		return
	}
	if err == io.EOF { // want `sentinel error io\.EOF compared with ==`
		return
	}
	if errInternal == err { // want `sentinel error errInternal compared with ==`
		return
	}
	switch err {
	case io.EOF: // want `switch case compares sentinel error io\.EOF`
	case nil:
	}
}

func good(err error) {
	if errors.Is(err, ErrClosed) {
		return
	}
	if err == nil || err != nil { // nil comparisons are not sentinel comparisons
		return
	}
	// A deliberately allowlisted identity check (e.g. asserting a test
	// helper returned the exact sentinel, unwrapped):
	//swvet:ignore errcmp -- test asserts the unwrapped sentinel itself
	if err == ErrClosed {
		return
	}
	var localErr error
	if err == localErr { // locals are not sentinels
		return
	}
}
