package errcmp_test

import (
	"testing"

	"github.com/streamworks/streamworks/internal/analysis/analysistest"
	"github.com/streamworks/streamworks/internal/analysis/passes/errcmp"
)

func TestErrcmp(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", errcmp.Analyzer)
}
