// Package errcmp flags == / != comparisons (and switch cases) against
// sentinel error values such as core.ErrClosed, graph.ErrDuplicateEdge or
// io.EOF, where errors.Is must be used instead.
//
// StreamWorks wraps sentinels at every layer boundary — the engine returns
// fmt.Errorf("%w", ErrRetentionTooSmall), shard prefixes core errors with
// the shard index, the server maps wrapped chains onto HTTP statuses. A
// direct pointer comparison silently stops matching as soon as any layer
// adds context, so the convention is mechanical: sentinel comparisons go
// through errors.Is, always. A sentinel is recognized as a package-level
// variable or constant of error type whose name starts with "Err" or ends
// in "EOF". Comparisons against nil are not sentinel comparisons and stay
// legal. Suppress a deliberate identity check with
// //swvet:ignore errcmp -- <why>.
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/streamworks/streamworks/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc:  "sentinel errors compared with == or != (or switch cases) instead of errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if name := sentinelName(pass, n.X); name != "" && !isNil(pass, n.Y) {
					report(pass, n.Pos(), n.Op, name)
				} else if name := sentinelName(pass, n.Y); name != "" && !isNil(pass, n.X) {
					report(pass, n.Pos(), n.Op, name)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name := sentinelName(pass, e); name != "" {
							pass.Reportf(e.Pos(), "switch case compares sentinel error %s with ==; use if/else with errors.Is(err, %s) so wrapped errors still match", name, name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *analysis.Pass, pos token.Pos, op token.Token, name string) {
	verb := "errors.Is"
	if op == token.NEQ {
		verb = "!errors.Is"
	}
	pass.Reportf(pos, "sentinel error %s compared with %s; use %s(err, %s) so wrapped errors still match", name, op, verb, name)
}

// sentinelName returns the printable name of e when it denotes a sentinel
// error value, else "".
func sentinelName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return ""
	}
	if _, isVar := obj.(*types.Var); !isVar {
		if _, isConst := obj.(*types.Const); !isConst {
			return ""
		}
	}
	// Package-level only: local error variables named errFoo are flow
	// values, not sentinels.
	if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	if !implementsError(obj.Type()) {
		return ""
	}
	name := obj.Name()
	if !strings.HasPrefix(name, "Err") && !strings.HasPrefix(name, "err") && !strings.HasSuffix(name, "EOF") {
		return ""
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			return pkgID.Name + "." + name
		}
	}
	return name
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorType)
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok {
		_, isNil := pass.ObjectOf(id).(*types.Nil)
		return isNil
	}
	return false
}
