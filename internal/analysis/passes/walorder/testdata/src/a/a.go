// Package a is a walorder fixture shaped like the WAL's emitted-set
// checkpoint: map state serialized into a log record. The directive below
// puts it in scope the way internal/wal is by import path.
//
//swvet:walorder
package a

import (
	"encoding/json"
	"sort"
)

type entry struct {
	Key  string `json:"k"`
	Span int64  `json:"s"`
}

// badCheckpoint serializes the emitted-set straight out of map order: the
// same logical state encodes to different bytes on every run.
func badCheckpoint(emitted map[string]int64) []byte {
	var ents []entry
	for k, s := range emitted { // want `map iteration order can reach a WAL record`
		ents = append(ents, entry{Key: k, Span: s})
	}
	b, _ := json.Marshal(ents)
	return b
}

// badFrameConcat builds a record payload by concatenating in map order.
func badFrameConcat(regs map[string]string) string {
	payload := ""
	for name := range regs { // want `map iteration order can reach a WAL record`
		payload = payload + name + "\n"
	}
	return payload
}

// goodCheckpoint is the canonical collect-then-sort shape the real
// checkpoint encoder uses: byte-identical for identical state.
func goodCheckpoint(emitted map[string]int64) []byte {
	ents := make([]entry, 0, len(emitted))
	for k, s := range emitted {
		ents = append(ents, entry{Key: k, Span: s})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Key < ents[j].Key })
	b, _ := json.Marshal(ents)
	return b
}

// goodMarkLogged mutates the map in place: keyed writes commute, no bytes
// escape.
func goodMarkLogged(emitted map[string]int64) {
	for k, s := range emitted {
		if s < 0 {
			emitted[k] = 0
		}
	}
}

// goodEvictCount counts and deletes commutatively (the snapshot-time
// emitted-set eviction shape).
func goodEvictCount(emitted map[string]int64, cutoff int64) int {
	evicted := 0
	for k, s := range emitted {
		if s < cutoff {
			delete(emitted, k)
			evicted++
		}
	}
	return evicted
}

// goodAllowlisted is order-dependent in a provably harmless way and says so.
func goodAllowlisted(emitted map[string]int64) int64 {
	var max int64
	//swvet:unordered max fold: result independent of visit order
	for _, s := range emitted {
		if s > max {
			max = s
		}
	}
	return max
}
