package walorder_test

import (
	"testing"

	"github.com/streamworks/streamworks/internal/analysis/analysistest"
	"github.com/streamworks/streamworks/internal/analysis/passes/walorder"
)

func TestWalorder(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", walorder.Analyzer)
}
