// Package walorder enforces that WAL record encoding is byte-deterministic:
// inside internal/wal, no map iteration may feed the encoder (or any other
// escaping output) without an intervening sort.
//
// The write-ahead log is replayed to rebuild engine state and compared
// byte-for-byte in recovery tests (the prefix property test replays every
// byte prefix of a segment); a frame whose payload depends on Go's
// randomized map iteration order would make identical logical states encode
// differently across runs, breaking both the tests and any future
// log-shipping comparison. The pass reuses the maporder checker — the
// obligation is identical, only the scope and the failure story differ:
//
//   - commutative loop bodies (map→map transforms, counters) are fine;
//   - a sort.* or slices.Sort* call later in the same function counts as
//     canonicalization before encoding;
//   - //swvet:unordered <why> on the range statement or the function doc
//     allowlists provably harmless order-dependence.
//
// Fixture packages opt into scope with a file-level //swvet:walorder
// comment.
package walorder

import (
	"go/ast"
	"strings"

	"github.com/streamworks/streamworks/internal/analysis"
	"github.com/streamworks/streamworks/internal/analysis/passes/maporder"
)

// WALPackages are the import paths (and subpackages) whose map iterations
// must never reach an encoder unsorted.
var WALPackages = []string{
	"github.com/streamworks/streamworks/internal/wal",
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc: "order-dependent map iteration in the WAL package, where every " +
		"encoded record must be byte-deterministic for replay and recovery",
	Run: run,
}

func inScope(pass *analysis.Pass, f *ast.File) bool {
	for _, p := range WALPackages {
		if pass.Path() == p || strings.HasPrefix(pass.Path(), p+"/") {
			return true
		}
	}
	return pass.FileHasDirective(f, "walorder")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files() {
		if !inScope(pass, f) {
			continue
		}
		maporder.CheckFile(pass, f,
			"map iteration order can reach a WAL record (%s); WAL encoding must be byte-deterministic — sort before encoding or annotate //swvet:unordered <why>")
	}
	return nil
}
