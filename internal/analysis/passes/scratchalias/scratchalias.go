// Package scratchalias flags retention of scratch-backed slices beyond the
// call that produced them.
//
// core.Engine.ProcessEdge returns a slice aliasing an internal scratch
// buffer that is overwritten by the next call: the documented contract is
// "valid until the next ProcessEdge call; callers that retain events across
// calls must copy the slice" (the MatchEvent values themselves are safe).
// The same convention applies to any function whose doc comment carries
// //swvet:scratch. This analyzer mechanically enforces the caller side of
// that contract: a scratch result may be consumed in place — ranged over,
// passed down, copied element-wise with append(dst, s...) — but it must not
// outlive the frame or cross a concurrency boundary. Flagged:
//
//   - storing the scratch slice (or a local holding it) in a struct field,
//     slice/map element, or package-level variable;
//   - sending it on a channel, or capturing it in a go'd function literal /
//     passing it to a go'd call — the goroutine races the next call;
//   - appending the slice itself (not its elements) into another slice;
//   - placing it in a composite literal;
//   - returning it, unless the enclosing function is itself marked
//     //swvet:scratch (propagating the contract instead of breaking it).
//
// Safe and unflagged: `for _, ev := range eng.ProcessEdge(se)`,
// `append(events, eng.ProcessEdge(se)...)` (value copy), and ignoring the
// result entirely. Suppress a false positive with
// //swvet:ignore scratchalias -- <why>.
package scratchalias

import (
	"go/ast"
	"go/types"

	"github.com/streamworks/streamworks/internal/analysis"
)

// ScratchFuncs are the fully-qualified names (types.Func.FullName form) of
// functions documented to return scratch-backed slices, for call sites in
// packages that cannot see the local //swvet:scratch doc directive.
var ScratchFuncs = map[string]bool{
	"(*github.com/streamworks/streamworks/internal/core.Engine).ProcessEdge": true,
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "scratchalias",
	Doc: "scratch-backed slices (ProcessEdge results and //swvet:scratch functions) " +
		"retained beyond the next call or across a goroutine boundary",
	Run: run,
}

func run(pass *analysis.Pass) error {
	marked := localScratchFuncs(pass)
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &funcCheck{
				pass:       pass,
				marked:     marked,
				tracked:    map[types.Object]bool{},
				scratchRet: analysis.HasDirective(fd.Doc, "scratch"),
			}
			fn.collectTracked(fd.Body)
			fn.walk(fd.Body)
		}
	}
	return nil
}

// localScratchFuncs collects the *types.Func of every function in this
// package whose doc carries //swvet:scratch, so in-package call sites are
// checked without the hardcoded list.
func localScratchFuncs(pass *analysis.Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.HasDirective(fd.Doc, "scratch") {
				continue
			}
			if obj, ok := pass.ObjectOf(fd.Name).(*types.Func); ok {
				out[obj] = true
			}
		}
	}
	return out
}

type funcCheck struct {
	pass    *analysis.Pass
	marked  map[*types.Func]bool
	tracked map[types.Object]bool
	// scratchRet: the enclosing function is itself documented scratch, so
	// returning a scratch slice propagates the contract legally.
	scratchRet bool
}

// isScratchCall reports whether e is a call of a scratch-returning function.
func (fc *funcCheck) isScratchCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj, ok := fc.pass.ObjectOf(id).(*types.Func)
	if !ok {
		return false
	}
	return fc.marked[obj] || ScratchFuncs[obj.FullName()]
}

// isScratchValue: a scratch call or a local variable holding one.
func (fc *funcCheck) isScratchValue(e ast.Expr) bool {
	e = ast.Unparen(e)
	if fc.isScratchCall(e) {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		return fc.tracked[fc.pass.ObjectOf(id)]
	}
	return false
}

// collectTracked finds locals assigned from scratch calls. A reassignment
// from a non-scratch value does not untrack (flow-insensitive, deliberately
// conservative: use a fresh variable for the copy).
func (fc *funcCheck) collectTracked(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || !fc.isScratchCall(as.Rhs[0]) || len(as.Lhs) != 1 {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := fc.pass.ObjectOf(id); obj != nil {
				fc.tracked[obj] = true
			}
		}
		return true
	})
}

func (fc *funcCheck) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fc.checkAssign(n)
		case *ast.SendStmt:
			if fc.isScratchValue(n.Value) {
				fc.pass.Reportf(n.Pos(), "scratch-backed slice sent on a channel outlives the next call; copy it first (append([]core.MatchEvent(nil), s...))")
			}
		case *ast.CallExpr:
			fc.checkAppend(n)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if fc.isScratchValue(el) {
					fc.pass.Reportf(el.Pos(), "scratch-backed slice stored in a composite literal outlives the next call; copy it first")
				}
			}
		case *ast.ReturnStmt:
			if fc.scratchRet {
				return true
			}
			for _, r := range n.Results {
				if fc.isScratchValue(r) {
					fc.pass.Reportf(r.Pos(), "returning a scratch-backed slice re-exports the aliasing contract; copy it, or document this function with //swvet:scratch")
				}
			}
		case *ast.GoStmt:
			fc.checkGo(n)
		}
		return true
	})
}

func (fc *funcCheck) checkAssign(as *ast.AssignStmt) {
	// Pair LHS/RHS when counts line up; with a single RHS every LHS shares
	// it.
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		switch {
		case len(as.Rhs) == len(as.Lhs):
			rhs = as.Rhs[i]
		case len(as.Rhs) == 1:
			rhs = as.Rhs[0]
		default:
			continue
		}
		if !fc.isScratchValue(rhs) {
			continue
		}
		switch lhs := lhs.(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := fc.pass.ObjectOf(lhs)
			if obj == nil {
				continue
			}
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				fc.pass.Reportf(as.Pos(), "scratch-backed slice stored in package-level variable %s outlives the next call; copy it first", lhs.Name)
			}
		case *ast.SelectorExpr:
			fc.pass.Reportf(as.Pos(), "scratch-backed slice stored in field %s outlives the next call; copy it first", lhs.Sel.Name)
		case *ast.IndexExpr:
			fc.pass.Reportf(as.Pos(), "scratch-backed slice stored in a slice/map element outlives the next call; copy it first")
		}
	}
}

// checkAppend flags append(dst, s) where s is the scratch slice itself —
// append(dst, s...) copies the values and stays legal.
func (fc *funcCheck) checkAppend(call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := fc.pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return
	}
	for i, arg := range call.Args {
		if i == 0 {
			continue
		}
		if i == len(call.Args)-1 && call.Ellipsis.IsValid() {
			continue // append(dst, s...) copies elements
		}
		if fc.isScratchValue(arg) {
			fc.pass.Reportf(arg.Pos(), "scratch-backed slice appended into another slice outlives the next call; copy it first or spread its elements with ...")
		}
	}
}

// checkGo flags scratch values crossing into a goroutine: as arguments to
// the go'd call, or as free variables of a go'd function literal.
func (fc *funcCheck) checkGo(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if fc.isScratchValue(arg) {
			fc.pass.Reportf(arg.Pos(), "scratch-backed slice passed to a goroutine races the next call; copy it first")
		}
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if fc.tracked[fc.pass.ObjectOf(id)] {
				fc.pass.Reportf(id.Pos(), "scratch-backed slice captured by a goroutine races the next call; copy it before the go statement")
			}
			return true
		})
	}
}
