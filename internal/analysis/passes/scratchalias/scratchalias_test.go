package scratchalias_test

import (
	"testing"

	"github.com/streamworks/streamworks/internal/analysis/analysistest"
	"github.com/streamworks/streamworks/internal/analysis/passes/scratchalias"
)

func TestScratchalias(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", scratchalias.Analyzer)
}
