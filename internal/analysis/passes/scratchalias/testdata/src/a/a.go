// Package a is a scratchalias fixture: engine mimics core.Engine's
// scratch-backed ProcessEdge via the //swvet:scratch doc directive.
package a

// Event stands in for core.MatchEvent; the values are safe to retain, only
// the slice spine aliases the scratch buffer.
type Event struct{ Query string }

type engine struct {
	scratch []Event
	held    []Event
}

// processEdge returns matches in a scratch buffer reused by the next call.
//
//swvet:scratch
func (e *engine) processEdge(n int) []Event {
	e.scratch = e.scratch[:0]
	for i := 0; i < n; i++ {
		e.scratch = append(e.scratch, Event{})
	}
	return e.scratch
}

var global []Event

func badField(e *engine) {
	e.held = e.processEdge(1) // want `stored in field held`
}

func badGlobal(e *engine) {
	global = e.processEdge(1) // want `stored in package-level variable global`
}

func badTrackedField(e *engine) {
	evs := e.processEdge(1)
	e.held = evs // want `stored in field held`
}

func badChannel(e *engine, ch chan []Event) {
	evs := e.processEdge(1)
	ch <- evs // want `sent on a channel`
}

func badAppendSpine(e *engine, batches [][]Event) [][]Event {
	evs := e.processEdge(1)
	return append(batches, evs) // want `appended into another slice`
}

func badComposite(e *engine) {
	type frame struct{ evs []Event }
	f := frame{evs: e.processEdge(1)} // want `stored in a composite literal`
	_ = f
}

func badReturn(e *engine) []Event {
	return e.processEdge(1) // want `re-exports the aliasing contract`
}

func badGoroutine(e *engine) {
	evs := e.processEdge(1)
	go func() {
		_ = evs // want `captured by a goroutine`
	}()
}

func badGoArg(e *engine, sink func([]Event)) {
	go sink(e.processEdge(1)) // want `passed to a goroutine`
}

// goodConsumeInPlace ranges over the scratch result before the next call:
// the documented safe pattern.
func goodConsumeInPlace(e *engine) int {
	total := 0
	for range e.processEdge(1) {
		total++
	}
	for _, ev := range e.processEdge(2) {
		_ = ev
		total++
	}
	return total
}

// goodSpreadCopy copies the Event values out of the scratch spine.
func goodSpreadCopy(e *engine) []Event {
	var out []Event
	out = append(out, e.processEdge(1)...)
	evs := e.processEdge(2)
	out = append(out, evs...)
	return out
}

// goodExplicitCopy clones into a fresh slice before retaining.
func goodExplicitCopy(e *engine) {
	evs := e.processEdge(1)
	cp := append([]Event(nil), evs...)
	e.held = cp
}

// goodScratchWrapper propagates the contract and says so.
//
//swvet:scratch forwards processEdge's buffer; same validity window
func goodScratchWrapper(e *engine) []Event {
	return e.processEdge(3)
}

// goodDiscard ignores the result entirely (the shard worker pattern).
func goodDiscard(e *engine) {
	e.processEdge(1)
}

// goodAllowlisted documents why retaining is safe here.
func goodAllowlisted(e *engine) {
	//swvet:ignore scratchalias -- single-shot engine: no further calls ever happen
	global = e.processEdge(1)
}
