package a

// This file models the shared-plan DAG's emission path (internal/mqo +
// core's shared registration mode): the DAG fans one primitive match out to
// every attached query and the engine accumulates the resulting events in
// the same scratch buffer per-query mode uses — so the caller-side aliasing
// contract is identical in both modes and the analyzer must catch misuse of
// the shared path too.

type dagEngine struct {
	scratch []Event
	pending []Event
}

// sharedProcessEdge is the shared-DAG counterpart of processEdge: one edge,
// one evaluation, events for every query sharing the matched subpattern —
// all in a scratch buffer reused by the next call.
//
//swvet:scratch
func (d *dagEngine) sharedProcessEdge(fanout int) []Event {
	d.scratch = d.scratch[:0]
	for i := 0; i < fanout; i++ {
		d.scratch = append(d.scratch, Event{})
	}
	return d.scratch
}

func badSharedRetain(d *dagEngine) {
	d.pending = d.sharedProcessEdge(3) // want `stored in field pending`
}

func badSharedDispatch(d *dagEngine, out chan []Event) {
	evs := d.sharedProcessEdge(3)
	out <- evs // want `sent on a channel`
}

// goodSharedFanout consumes the fan-out in place — the per-attachment
// delivery loop core's dispatch path actually runs.
func goodSharedFanout(d *dagEngine) int {
	delivered := 0
	for _, ev := range d.sharedProcessEdge(3) {
		_ = ev
		delivered++
	}
	return delivered
}

// goodSharedCopy copies the spine before retaining, the documented escape
// hatch for callers that batch events across edges.
func goodSharedCopy(d *dagEngine, batch []Event) []Event {
	return append(batch, d.sharedProcessEdge(3)...)
}
