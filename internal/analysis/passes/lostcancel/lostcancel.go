// Package lostcancel is the in-tree stand-in for x/tools' lostcancel pass
// (the build environment is offline, so the real pass cannot be vendored):
// it flags context cancel functions obtained from context.WithCancel,
// WithTimeout or WithDeadline that are discarded or never used. An unused
// cancel leaks the context's timer and child goroutine until the parent
// context ends.
package lostcancel

import (
	"go/ast"
	"go/types"

	"github.com/streamworks/streamworks/internal/analysis"
)

// cancelSources are the context constructors whose second result must be
// called.
var cancelSources = map[string]bool{
	"context.WithCancel":      true,
	"context.WithTimeout":     true,
	"context.WithDeadline":    true,
	"context.WithCancelCause": true,
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "lostcancel",
	Doc:  "context cancel functions that are discarded or never called",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	type pending struct {
		obj types.Object
		pos ast.Node
		src string
	}
	var cancels []pending
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || !cancelSources[obj.FullName()] {
			return true
		}
		id, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(as.Pos(), "the cancel function returned by %s is discarded; the context's resources leak until the parent context ends", obj.FullName())
			return true
		}
		if o := pass.ObjectOf(id); o != nil {
			cancels = append(cancels, pending{obj: o, pos: as, src: obj.FullName()})
		}
		return true
	})
	for _, c := range cancels {
		if usedElsewhere(pass, fd.Body, c.obj) {
			continue
		}
		pass.Reportf(c.pos.Pos(), "the cancel function from %s is never used; call it (usually defer %s()) on every path", c.src, c.obj.Name())
	}
}

// usedElsewhere reports whether obj has any meaningful use: a call, defer,
// argument or store all count (any further use hands the obligation on),
// but declarations, assignment targets and `_ = cancel` keep-the-compiler-
// quiet lines do not.
func usedElsewhere(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	skip := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					skip[id] = true
				}
			}
			if allBlank(n.Lhs) {
				for _, rhs := range n.Rhs {
					if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
						skip[id] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				skip[id] = true
			}
		}
		return true
	})
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !skip[id] && pass.ObjectOf(id) == obj {
			used = true
		}
		return !used
	})
	return used
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
