// Package a is a lostcancel fixture.
package a

import (
	"context"
	"time"
)

func badDiscarded(ctx context.Context) context.Context {
	ctx, _ = context.WithTimeout(ctx, time.Second) // want `cancel function returned by context\.WithTimeout is discarded`
	return ctx
}

func badUnused(ctx context.Context) {
	var cancel context.CancelFunc
	ctx, cancel = context.WithCancel(ctx) // want `cancel function from context\.WithCancel is never used`
	_ = cancel                            // silences the compiler, not the analyzer
	<-ctx.Done()
}

func goodDeferred(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	<-ctx.Done()
}

func goodHandedOff(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithDeadline(ctx, time.Now().Add(time.Second))
	return ctx, cancel
}
