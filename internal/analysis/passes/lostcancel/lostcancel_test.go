package lostcancel_test

import (
	"testing"

	"github.com/streamworks/streamworks/internal/analysis/analysistest"
	"github.com/streamworks/streamworks/internal/analysis/passes/lostcancel"
)

func TestLostcancel(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", lostcancel.Analyzer)
}
