package sinkleak_test

import (
	"testing"

	"github.com/streamworks/streamworks/internal/analysis/analysistest"
	"github.com/streamworks/streamworks/internal/analysis/passes/sinkleak"
)

func TestSinkleak(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", sinkleak.Analyzer)
}
