// Package a is a sinkleak fixture mirroring the repo's subscription
// surfaces: a Subscription type with Close, an engine whose Subscribe
// returns (Subscription, error), and a core-style Subscribe returning a
// cancel func.
package a

// Subscription is a subscription handle.
//
//swvet:sink
type Subscription struct{ done chan struct{} }

// Close releases the subscription.
func (s *Subscription) Close() {}

// Done reports delivery end.
func (s *Subscription) Done() <-chan struct{} { return s.done }

type engine struct{}

func (e *engine) Subscribe(query string) (*Subscription, error) {
	return &Subscription{done: make(chan struct{})}, nil
}

// cancelEngine mimics core.Engine.Subscribe returning a cancel func.
type cancelEngine struct{}

func (e *cancelEngine) Subscribe(query string) func() { return func() {} }

func badNeverClosed(e *engine) {
	sub, err := e.Subscribe("q") // want `subscription sub from Subscribe is never closed`
	if err != nil {
		return
	}
	<-sub.Done()
}

func badDiscarded(e *engine) {
	_, _ = e.Subscribe("q") // want `discarded with _`
}

func badCancelUnused(e *cancelEngine) {
	cancel := e.Subscribe("q") // want `subscription cancel from Subscribe is never closed`
	_ = cancel == nil
}

func goodDeferClose(e *engine) error {
	sub, err := e.Subscribe("q")
	if err != nil {
		return err
	}
	defer sub.Close()
	<-sub.Done()
	return nil
}

func goodCancelCalled(e *cancelEngine) {
	cancel := e.Subscribe("q")
	defer cancel()
}

func goodCloseInGoroutine(e *engine) {
	sub, _ := e.Subscribe("q")
	go func() {
		<-sub.Done()
		sub.Close()
	}()
}

// holder keeps long-lived subscriptions; storing transfers the release
// obligation to the holder's own Close path.
type holder struct{ sub *Subscription }

func goodEscapeField(e *engine, h *holder) {
	sub, _ := e.Subscribe("q")
	h.sub = sub
}

func goodEscapeReturn(e *engine) (*Subscription, error) {
	sub, err := e.Subscribe("q")
	if err != nil {
		return nil, err
	}
	return sub, nil
}

func watch(s *Subscription) {}

func goodEscapeArg(e *engine) {
	sub, _ := e.Subscribe("q")
	watch(sub)
}

func goodAllowlisted(e *engine) {
	//swvet:ignore sinkleak -- process-lifetime subscription, closed by exit
	sub, _ := e.Subscribe("q")
	<-sub.Done()
}
