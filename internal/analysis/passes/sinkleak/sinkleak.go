// Package sinkleak flags subscription handles that are acquired but can
// never be released.
//
// Every subscription surface in StreamWorks hands back a resource the
// caller must release: core.Engine.Subscribe returns a cancel func,
// shard.ShardedEngine.Subscribe and streamworks.Engine.Subscribe return
// Subscription values with Close. A subscription that is never closed pins
// a sink in the dispatch registry for the engine's lifetime — every future
// match is delivered to it, buffers grow, and in the server the associated
// goroutine never exits (the goleak TestMains catch that dynamically; this
// analyzer catches it at review time).
//
// The rule is an existence check per function: a value obtained from a
// call to a function or method named Subscribe (or of a type whose
// declaration carries //swvet:sink, or listed in SinkTypes) must either be
// released somewhere in the same function — a call of the value itself for
// cancel funcs, or of its Close/Unsubscribe/Cancel/Stop method, including
// in defers and nested function literals — or escape the function
// (returned, stored in a field/global/container, passed to another
// function), which transfers the release obligation to the holder.
// Discarding the handle with _ is always a leak. Suppress with
// //swvet:ignore sinkleak -- <why>.
package sinkleak

import (
	"go/ast"
	"go/types"

	"github.com/streamworks/streamworks/internal/analysis"
)

// SinkTypes are fully-qualified type names whose values are subscription
// handles regardless of how they were obtained.
var SinkTypes = map[string]bool{
	"github.com/streamworks/streamworks/internal/shard.Subscription": true,
	"github.com/streamworks/streamworks.Subscription":                true,
}

// releaseMethods are the method names that count as releasing a handle.
var releaseMethods = map[string]bool{
	"Close":       true,
	"Unsubscribe": true,
	"Cancel":      true,
	"Stop":        true,
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "sinkleak",
	Doc: "subscription handles (Subscribe results, //swvet:sink types) that are " +
		"neither closed/cancelled nor handed off — sink registry and goroutine leaks",
	Run: run,
}

func run(pass *analysis.Pass) error {
	sinkDirTypes := localSinkTypes(pass)
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, sinkDirTypes, fd)
		}
	}
	return nil
}

// localSinkTypes collects named types in this package declared with a
// //swvet:sink doc directive.
func localSinkTypes(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if analysis.HasDirective(gd.Doc, "sink") || analysis.HasDirective(ts.Doc, "sink") {
					if obj := pass.ObjectOf(ts.Name); obj != nil {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}

// acquisition is one tracked subscription handle in a function.
type acquisition struct {
	obj     types.Object
	pos     ast.Node
	what    string
	blanked bool // assigned to _, an unconditional leak
}

func checkFunc(pass *analysis.Pass, sinkDirTypes map[types.Object]bool, fd *ast.FuncDecl) {
	var acqs []*acquisition

	isSinkType := func(t types.Type) bool {
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		if sinkDirTypes[obj] {
			return true
		}
		if obj.Pkg() == nil {
			return false
		}
		return SinkTypes[obj.Pkg().Path()+"."+obj.Name()]
	}

	// Pass 1: find acquisitions — results of Subscribe calls and values of
	// sink-marked types bound by assignment.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fromSubscribe := false
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Subscribe" {
			fromSubscribe = true
		} else if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "Subscribe" {
			fromSubscribe = true
		}
		// The handle is the first result by convention ((Subscription, error)
		// or a bare cancel func).
		lhs := as.Lhs[0]
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return true
		}
		handleType := pass.TypeOf(lhs)
		if !fromSubscribe && (handleType == nil || !isSinkType(handleType)) {
			return true
		}
		if id.Name == "_" {
			acqs = append(acqs, &acquisition{pos: as, what: describe(call), blanked: true})
			return true
		}
		if obj := pass.ObjectOf(id); obj != nil {
			acqs = append(acqs, &acquisition{obj: obj, pos: as, what: describe(call)})
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	// Pass 2: for each tracked object, look for a release or an escape.
	for _, acq := range acqs {
		if acq.blanked {
			pass.Reportf(acq.pos.Pos(), "subscription from %s is discarded with _: it can never be closed and leaks its sink registration", acq.what)
			continue
		}
		if releasedOrEscapes(pass, fd.Body, acq.obj) {
			continue
		}
		pass.Reportf(acq.pos.Pos(), "subscription %s from %s is never closed/cancelled and never leaves this function; every future match still fans out to it (call Close, or defer it)", acq.obj.Name(), acq.what)
	}
}

func describe(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "Subscribe"
}

// releasedOrEscapes scans the whole function body (defers and nested
// function literals included) for a release call on obj or any use that
// hands obj to other code.
func releasedOrEscapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// sub.Close() / cancel()
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					if releaseMethods[fun.Sel.Name] {
						found = true
						return false
					}
					// Other method calls on the handle (sub.Done()) are uses,
					// not escapes.
					return true
				}
			case *ast.Ident:
				if pass.ObjectOf(fun) == obj {
					found = true // cancel func invoked
					return false
				}
			}
			// Handle passed as an argument: obligation transfers.
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					found = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Stored anywhere (field, map, outer variable, …): obligation
			// transfers to the holder. Any assignment with obj on the RHS
			// counts.
			for _, r := range n.Rhs {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					found = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if id, ok := ast.Unparen(el).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
