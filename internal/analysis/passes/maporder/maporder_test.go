package maporder_test

import (
	"testing"

	"github.com/streamworks/streamworks/internal/analysis/analysistest"
	"github.com/streamworks/streamworks/internal/analysis/passes/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", maporder.Analyzer)
}
