// Package a is a maporder fixture; the deterministic directive below puts
// it in scope the way internal/match et al. are by import path.
//
//swvet:deterministic
package a

import "sort"

// badAppend collects map keys into a slice that escapes unsorted: the
// classic nondeterministic-golden bug.
func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order reaches deterministic output`
		out = append(out, k)
	}
	return out
}

// badConcat builds a signature string directly from iteration order.
func badConcat(m map[string]int) string {
	s := ""
	for k := range m { // want `map iteration order reaches deterministic output`
		s = s + k
	}
	return s
}

// badEarlyReturn lets iteration order pick the winner.
func badEarlyReturn(m map[string]int) string {
	for k := range m { // want `map iteration order reaches deterministic output`
		return k
	}
	return ""
}

// goodSortedAfter is the canonical collect-then-sort shape.
func goodSortedAfter(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// goodMapToMap transforms one map into another: keyed writes commute.
func goodMapToMap(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		if v > 0 {
			out[k] = k
		}
	}
	return out
}

// goodCounters accumulates commutatively.
func goodCounters(m map[string]int) (n, sum int) {
	for _, v := range m {
		n++
		sum += v
	}
	return n, sum
}

// goodAllowlisted is order-dependent in a provably harmless way and says so.
func goodAllowlisted(m map[string]int) int {
	max := 0
	//swvet:unordered max fold: result independent of visit order
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// goodFuncAllowlisted carries the allowlist on the declaration.
//
//swvet:unordered diagnostic dump, never compared or persisted
func goodFuncAllowlisted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
