// Package maporder flags map iteration whose per-iteration effects are
// order-dependent, inside the packages whose output must be canonical.
//
// StreamWorks' acceptance bar is exact match-set equality: signatures,
// projection keys, plan summaries, wire encodings and golden files are
// compared byte-for-byte across backends, strategies and replays. Go map
// iteration order is deliberately randomized, so a bare `for k := range m`
// that appends to a slice, writes to an encoder or returns early produces
// run-dependent bytes. In the deterministic packages (match, sjtree,
// export, query, decompose, api, loader, gen) the analyzer requires one of:
//
//   - commutative loop bodies: every statement is an order-independent
//     accumulation (map/set writes, delete, numeric += / counters, local
//     temporaries), which is how map→map transforms stay legal;
//   - a sort after the loop: a call to sort.* or slices.Sort* later in the
//     same function is taken as evidence the collected results are
//     canonicalized before they escape;
//   - an explicit allowlist: //swvet:unordered <why> on the range statement
//     or the enclosing function's doc comment, for loops whose
//     order-dependence is provably harmless (e.g. max/min folds).
//
// Fixture packages opt into scope with a file-level //swvet:deterministic
// comment.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/streamworks/streamworks/internal/analysis"
)

// DeterministicPackages are the import paths (and subpackages) whose
// results feed match signatures, plan summaries, wire encoding or golden
// files.
var DeterministicPackages = []string{
	"github.com/streamworks/streamworks/internal/match",
	"github.com/streamworks/streamworks/internal/sjtree",
	"github.com/streamworks/streamworks/internal/export",
	"github.com/streamworks/streamworks/internal/query",
	"github.com/streamworks/streamworks/internal/decompose",
	"github.com/streamworks/streamworks/internal/api",
	"github.com/streamworks/streamworks/internal/loader",
	"github.com/streamworks/streamworks/internal/gen",
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "order-dependent iteration over maps in packages that feed signatures, " +
		"wire output or golden files, without an intervening sort",
	Run: run,
}

func inScope(pass *analysis.Pass, f *ast.File) bool {
	for _, p := range DeterministicPackages {
		if pass.Path() == p || strings.HasPrefix(pass.Path(), p+"/") {
			return true
		}
	}
	return pass.FileHasDirective(f, "deterministic")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files() {
		if !inScope(pass, f) {
			continue
		}
		CheckFile(pass, f, "map iteration order reaches deterministic output (%s); sort the collected results or annotate //swvet:unordered <why>")
	}
	return nil
}

// CheckFile reports every order-dependent map iteration in one file: a range
// over a map whose body is neither commutative nor followed by a
// canonicalizing sort in the same function, and that carries no
// //swvet:unordered allowance. format is the report template; its single %s
// receives a short description of the offending statement. Shared with the
// walorder pass, which applies the same determinism obligation to the WAL
// encoder with its own scope and message.
func CheckFile(pass *analysis.Pass, f *ast.File, format string) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		funcAllowed := analysis.HasDirective(fd.Doc, "unordered")
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := pass.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
				return true
			}
			if funcAllowed || pass.Allowed(rng.Pos(), "unordered") {
				return true
			}
			if sortedAfter(pass, fd.Body, rng.End()) {
				return true
			}
			c := &checker{pass: pass, locals: map[types.Object]bool{}}
			c.noteLoopVars(rng)
			if reason := c.commutative(rng.Body); reason != "" {
				pass.Reportf(rng.Pos(), format, reason)
				return false // one report per loop; nested ranges are covered by it
			}
			return true
		})
	}
}

// sortedAfter reports whether a canonicalizing sort call appears after pos
// in the function body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(obj.Name(), "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}

// checker decides whether a loop body's effects are order-independent.
type checker struct {
	pass *analysis.Pass
	// locals are objects declared inside the loop (including the range
	// variables): assignments to them die with the iteration.
	locals map[types.Object]bool
}

func (c *checker) noteLoopVars(rng *ast.RangeStmt) {
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pass.ObjectOf(id); obj != nil {
				c.locals[obj] = true
			}
		}
	}
}

// commutative returns "" when every statement in the block is
// order-independent, else a short description of the first offending
// statement.
func (c *checker) commutative(block *ast.BlockStmt) string {
	for _, st := range block.List {
		if reason := c.stmt(st); reason != "" {
			return reason
		}
	}
	return ""
}

func (c *checker) stmt(st ast.Stmt) string {
	switch st := st.(type) {
	case *ast.AssignStmt:
		return c.assign(st)
	case *ast.IncDecStmt:
		return "" // counters commute
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						if obj := c.pass.ObjectOf(id); obj != nil {
							c.locals[obj] = true
						}
					}
				}
			}
		}
		return ""
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "delete" || id.Name == "clear") {
				return ""
			}
		}
		return "calls a function with unknown ordering effects"
	case *ast.IfStmt:
		if st.Init != nil {
			if reason := c.stmt(st.Init); reason != "" {
				return reason
			}
		}
		if reason := c.commutative(st.Body); reason != "" {
			return reason
		}
		if st.Else != nil {
			if reason := c.stmt(st.Else); reason != "" {
				return reason
			}
		}
		return ""
	case *ast.BlockStmt:
		return c.commutative(st)
	case *ast.RangeStmt:
		c.noteLoopVars(st)
		return c.commutative(st.Body)
	case *ast.ForStmt:
		if st.Init != nil {
			if reason := c.stmt(st.Init); reason != "" {
				return reason
			}
		}
		return c.commutative(st.Body)
	case *ast.SwitchStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					if reason := c.stmt(s); reason != "" {
						return reason
					}
				}
			}
		}
		return ""
	case *ast.BranchStmt:
		if st.Tok == token.CONTINUE {
			return ""
		}
		return "exits the loop early (iteration order decides which key wins)"
	case *ast.ReturnStmt:
		return "returns from inside the loop (iteration order decides which key wins)"
	default:
		// Sends, go/defer, selects, … — anything we cannot prove commutes.
		return "has per-iteration effects the analyzer cannot prove order-independent"
	}
}

// assign allows map/set writes, writes to loop-local temporaries, and
// numeric accumulation; everything else (notably append and plain writes to
// outer variables) is order-dependent.
func (c *checker) assign(st *ast.AssignStmt) string {
	if st.Tok == token.DEFINE {
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.pass.ObjectOf(id); obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return ""
	}
	for _, lhs := range st.Lhs {
		switch lhs := lhs.(type) {
		case *ast.Ident:
			if lhs.Name == "_" || c.locals[c.pass.ObjectOf(lhs)] {
				continue
			}
			if c.accumulating(st, lhs) {
				continue
			}
			return "assigns to a variable outside the loop (last iteration wins)"
		case *ast.IndexExpr:
			if _, isMap := c.pass.TypeOf(lhs.X).Underlying().(*types.Map); isMap {
				continue // keyed map write: order-independent for distinct keys
			}
			if c.accumulating(st, lhs) {
				continue
			}
			return "writes through an index whose final value depends on order"
		default:
			return "assigns outside the loop (last iteration wins)"
		}
	}
	return ""
}

// accumulating reports whether the assignment is a commutative numeric
// accumulation (+=, *=, |=, &=, ^=, -=) on an integer, float or complex
// target.
func (c *checker) accumulating(st *ast.AssignStmt, lhs ast.Expr) bool {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	t := c.pass.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsNumeric) != 0
}
