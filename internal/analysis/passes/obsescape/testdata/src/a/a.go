// Package a is an obsescape fixture: trace-event structs marked
// //swvet:traceevent may hold only scalars, strings and arrays of them.
package a

// Event is a compliant trace event: scalars, a string, a fixed-size array,
// and an embedded flat struct. Copying it is a plain memmove.
//
//swvet:traceevent
type Event struct {
	Seq      uint64
	Stage    string
	Shard    int32
	StreamTS int64
	Fill     [4]byte
	Meta     header
}

// header is flat, so embedding it in Event above is legal.
type header struct {
	Version uint8
	Flags   uint16
}

// Leaky violates the shape rule in every way at once.
//
//swvet:traceevent
type Leaky struct {
	IDs    []uint64          // want `non-scalar type \[\]uint64 \(slice\)`
	Attrs  map[string]string // want `non-scalar type map\[string\]string \(map\)`
	Next   *Leaky            // want `non-scalar type \*Leaky \(pointer\)`
	Any    any               // want `non-scalar type any \(interface\)`
	C      chan int          // want `non-scalar type chan int \(channel\)`
	Fn     func()            // want `non-scalar type func\(\) \(func\)`
	Nested payload           // want `non-scalar type payload \(struct with escaping field\)`
	Ring   [8][]byte         // want `non-scalar type \[8\]\[\]byte \(array of escaping elements\)`
}

// payload is not itself marked, but embedding it in Leaky drags its slice
// into the event, so the Nested field above is flagged.
type payload struct {
	Raw []byte
}

// NotAnEvent is unmarked: it may hold whatever it likes.
type NotAnEvent struct {
	IDs   []uint64
	Attrs map[string]string
}

// grouped declarations carry the directive on the spec, not the decl.
type (
	//swvet:traceevent
	Grouped struct {
		OK  int64
		Bad []int // want `non-scalar type \[\]int \(slice\)`
	}

	// Plain rides in the same block without the marker.
	Plain struct {
		Bad []int
	}
)

// NotAStruct cannot be a trace event at all.
//
//swvet:traceevent
type NotAStruct []int // want `on non-struct type NotAStruct`
