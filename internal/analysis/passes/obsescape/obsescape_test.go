package obsescape_test

import (
	"testing"

	"github.com/streamworks/streamworks/internal/analysis/analysistest"
	"github.com/streamworks/streamworks/internal/analysis/passes/obsescape"
)

func TestObsescape(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", obsescape.Analyzer)
}
