// Package obsescape checks that trace-event structs cannot retain heap
// references.
//
// The observability tracer records events from inside ProcessEdge, where
// every slice in sight is scratch-backed and recycled on the next call (the
// scratchalias invariant). A trace event that carried a slice, map or
// pointer would either alias that scratch memory — corrupting the dump as
// the engine keeps running — or force a defensive copy on the hot path.
// StreamWorks sidesteps both by construction: structs marked
//
//	//swvet:traceevent
//
// (on the type declaration's doc comment) may contain only scalars, strings
// and fixed-size arrays of the same, recursively through embedded structs.
// Copying such a value is a plain memmove; recording one can never allocate
// or retain engine state. This pass turns that shape requirement into a
// machine-checked rule for obs.TraceEvent and any event type added later.
package obsescape

import (
	"go/ast"
	"go/types"

	"github.com/streamworks/streamworks/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "obsescape",
	Doc: "//swvet:traceevent structs must hold only scalars, strings and arrays of them; " +
		"slices, maps, pointers, interfaces, channels and funcs could retain scratch-backed engine state",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declMarked := analysis.HasDirective(gd.Doc, "traceevent")
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !(declMarked || analysis.HasDirective(ts.Doc, "traceevent")) {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					pass.Reportf(ts.Pos(), "swvet:traceevent on non-struct type %s: only structs can be trace events", ts.Name.Name)
					continue
				}
				checkStruct(pass, ts.Name.Name, st)
			}
		}
	}
	return nil
}

func checkStruct(pass *analysis.Pass, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.TypeOf(field.Type)
		if t == nil || flat(t, nil) {
			continue
		}
		name := fieldName(field)
		pass.Reportf(field.Pos(), "trace-event %s.%s has non-scalar type %s (%s): //swvet:traceevent structs may hold only scalars, strings and arrays of them, so recording never allocates or retains engine state",
			typeName, name, types.TypeString(t, types.RelativeTo(pass.TypesPkg())), kind(t))
	}
}

// flat reports whether t is safe inside a trace event: a boolean, numeric or
// string basic type, a fixed-size array of flat elements, or a struct whose
// fields are all flat. seen breaks cycles (impossible without pointers, but
// cheap to guard).
func flat(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsBoolean|types.IsNumeric|types.IsString) != 0
	case *types.Array:
		return flat(u.Elem(), seen)
	case *types.Struct:
		if seen == nil {
			seen = make(map[types.Type]bool)
		}
		seen[t] = true
		for i := 0; i < u.NumFields(); i++ {
			if !flat(u.Field(i).Type(), seen) {
				return false
			}
		}
		return true
	}
	return false
}

// kind names the offending underlying shape for the diagnostic.
func kind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Pointer:
		return "pointer"
	case *types.Interface:
		return "interface"
	case *types.Chan:
		return "channel"
	case *types.Signature:
		return "func"
	case *types.Struct:
		return "struct with escaping field"
	case *types.Array:
		return "array of escaping elements"
	case *types.Basic:
		return "non-scalar basic type"
	default:
		return "escaping type"
	}
}

func fieldName(field *ast.Field) string {
	if len(field.Names) > 0 {
		return field.Names[0].Name
	}
	// Embedded field: name it by its type expression.
	switch e := field.Type.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.StarExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return "(embedded)"
}
