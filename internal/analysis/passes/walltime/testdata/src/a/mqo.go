//swvet:hotpath
package a

import "time"

// This file models the shared-plan DAG hot path (internal/mqo, a hot-path
// package since the MQO subsystem landed): one ProcessEdge fans a primitive
// match out to every attachment sharing the node, and nothing on that path
// may read the wall clock — windows are enforced against stream timestamps.

type dagNode struct {
	window  time.Duration
	fanout  int
	matches []Timestamp
}

// dagProcessEdge is the per-edge fan-out loop: every check below is against
// stream time, which stays legal; the wall-clock reads are violations.
func dagProcessEdge(n *dagNode, ts Timestamp) int {
	cutoff := ts - Timestamp(n.window)
	delivered := 0
	for _, m := range n.matches {
		if m < cutoff {
			continue
		}
		for i := 0; i < n.fanout; i++ {
			delivered++
		}
	}
	deadline := time.Now() // want `time\.Now in hot-path package`
	_ = deadline
	return delivered
}

// dagBackfillThrottled shows the tempting bug the ban exists for: pacing a
// mid-stream attachment's backfill by the wall clock would make match sets
// timing-dependent.
func dagBackfillThrottled(n *dagNode, edges []Timestamp) {
	for range edges {
		time.Sleep(time.Microsecond) // want `time\.Sleep in hot-path package`
	}
}

// dagStatsScrape is the legal exception shape: a stats snapshot may stamp
// itself with wall time when explicitly allowlisted.
func dagStatsScrape(n *dagNode) int64 {
	//swvet:wallclock stats snapshot timestamp, never compared to stream time
	return time.Now().UnixNano()
}
