// Obsclock exercises the obs.Clock seam rule: hot-path code measures wall
// latency only through the clock injected via obs.Config, never by reaching
// for the SystemClock singleton (which would be time.Now one import away).
//
//swvet:hotpath
package a

import "github.com/streamworks/streamworks/internal/obs"

// injectedClock is the legal pattern: whoever built the engine decided what
// this clock is, so replays and tests stay deterministic.
func injectedClock(c obs.Clock) int64 {
	if c == nil {
		return 0
	}
	return c.Now()
}

// grabSingleton bypasses the seam: flagged like a bare time.Now.
func grabSingleton() int64 {
	return obs.SystemClock.Now() // want `obs\.SystemClock in hot-path package`
}

// defaultedClock falls back to the singleton without a justification.
func defaultedClock(c obs.Clock) obs.Clock {
	if c == nil {
		c = obs.SystemClock // want `obs\.SystemClock in hot-path package`
	}
	return c
}

// allowlistedSingleton pins the singleton for a metrics-only default; the
// inline directive suppresses the diagnostic.
func allowlistedSingleton() obs.Clock {
	//swvet:wallclock scrape-side default, never compared to stream time
	return obs.SystemClock
}
