// Package a is a walltime fixture. The file-level hotpath directive below
// puts it in the analyzer's scope the way internal/core et al. are by
// import path.
//
//swvet:hotpath
package a

import "time"

// Timestamp stands in for graph.Timestamp.
type Timestamp int64

// processEdge is a hot-path function: every wall-clock read is a violation.
func processEdge(ts Timestamp) Timestamp {
	now := time.Now() // want `time\.Now in hot-path package`
	_ = now
	d := time.Since(time.Unix(0, int64(ts))) // want `time\.Since in hot-path package`
	time.Sleep(time.Millisecond)             // want `time\.Sleep in hot-path package`
	<-time.After(d)                          // want `time\.After in hot-path package`
	return ts
}

// durationArithmetic shows what stays legal: duration constants and
// stream-time arithmetic never touch the wall clock.
func durationArithmetic(ts Timestamp, window time.Duration) Timestamp {
	cutoff := ts - Timestamp(window)
	if cutoff < 0 {
		cutoff = 0
	}
	return cutoff
}

// lineAllowlisted reads the wall clock for a metrics counter; the inline
// directive suppresses the diagnostic.
func lineAllowlisted() int64 {
	//swvet:wallclock metrics-only: scrape timestamp, never compared to stream time
	return time.Now().UnixNano()
}

// funcAllowlisted is allowlisted at the declaration: its whole body may
// read the wall clock.
//
//swvet:wallclock uptime reporting for the metrics endpoint
func funcAllowlisted() time.Time {
	start := time.Now()
	return start
}
