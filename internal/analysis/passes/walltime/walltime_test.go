package walltime_test

import (
	"testing"

	"github.com/streamworks/streamworks/internal/analysis/analysistest"
	"github.com/streamworks/streamworks/internal/analysis/passes/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", walltime.Analyzer)
}
