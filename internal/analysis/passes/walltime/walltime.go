// Package walltime flags wall-clock reads inside StreamWorks' hot-path
// packages, where stream time (graph.Timestamp carried on edges and
// watermarks) is the only legal clock.
//
// The engine's correctness bar is exact match-set equality across backends
// and replays: a match is admitted by comparing edge timestamps against the
// stream watermark, never against the machine's clock. A time.Now that
// sneaks into core, sjtree, match, graph or isomorphism makes results
// depend on scheduling and replay speed — precisely the nondeterminism the
// equivalence matrix exists to rule out. Serving layers (server, client,
// cmd) legitimately measure wall latency and are out of scope.
//
// The observability layer punches a deliberate hole in this rule: hot-path
// code may measure wall latency through an injected obs.Clock, because the
// embedder (and every test) controls what that clock is. Reaching for the
// obs.SystemClock singleton instead re-creates the time.Now problem one
// import away, so the analyzer bans that identifier in hot-path packages
// exactly like the time functions.
//
// Metrics or diagnostics code inside a hot-path package may read the wall
// clock by annotating the line (or the enclosing function's doc comment)
// with //swvet:wallclock and a justification. Fixture packages opt into
// hot-path scope with a file-level //swvet:hotpath comment.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/streamworks/streamworks/internal/analysis"
)

// HotPathPackages are the import paths (and their subpackages) where wall
// clocks are banned.
var HotPathPackages = []string{
	"github.com/streamworks/streamworks/internal/core",
	"github.com/streamworks/streamworks/internal/sjtree",
	"github.com/streamworks/streamworks/internal/match",
	"github.com/streamworks/streamworks/internal/graph",
	"github.com/streamworks/streamworks/internal/isomorphism",
	"github.com/streamworks/streamworks/internal/mqo",
}

// banned are the time-package functions that read or schedule by the wall
// clock. time.Duration arithmetic and constants remain legal: retention and
// slack are durations applied to stream timestamps.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// obsPkg is the observability package whose SystemClock singleton is banned
// in hot-path code: the clock must arrive injected through obs.Config.
const obsPkg = "github.com/streamworks/streamworks/internal/obs"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "wall-clock reads (time.Now, time.Since, timers, obs.SystemClock) in hot-path packages; " +
		"stream time and the injected obs.Clock are the only legal clocks there (allowlist: //swvet:wallclock)",
	Run: run,
}

func inScope(pass *analysis.Pass, f *ast.File) bool {
	for _, p := range HotPathPackages {
		if pass.Path() == p || strings.HasPrefix(pass.Path(), p+"/") {
			return true
		}
	}
	return pass.FileHasDirective(f, "hotpath")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files() {
		if !inScope(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			funcAllowed := false
			if fd, ok := decl.(*ast.FuncDecl); ok {
				funcAllowed = analysis.HasDirective(fd.Doc, "wallclock")
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.ObjectOf(sel.Sel)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				allowed := func() bool {
					return funcAllowed || pass.Allowed(sel.Pos(), "wallclock")
				}
				switch {
				case obj.Pkg().Path() == "time" && banned[obj.Name()]:
					if _, isFunc := obj.(*types.Func); !isFunc {
						return true
					}
					if allowed() {
						return true
					}
					pass.Reportf(sel.Pos(), "time.%s in hot-path package %s: stream time (graph.Timestamp) is the only legal clock here; annotate //swvet:wallclock <why> if this is metrics-only", obj.Name(), pass.Path())
				case obj.Pkg().Path() == obsPkg && obj.Name() == "SystemClock":
					if allowed() {
						return true
					}
					pass.Reportf(sel.Pos(), "obs.SystemClock in hot-path package %s: take the clock injected through obs.Config instead of the wall-clock singleton; annotate //swvet:wallclock <why> if this is metrics-only", pass.Path())
				}
				return true
			})
		}
	}
	return nil
}
