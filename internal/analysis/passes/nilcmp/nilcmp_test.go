package nilcmp_test

import (
	"testing"

	"github.com/streamworks/streamworks/internal/analysis/analysistest"
	"github.com/streamworks/streamworks/internal/analysis/passes/nilcmp"
)

func TestNilcmp(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", nilcmp.Analyzer)
}
