// Package nilcmp is a deliberately narrow slice of x/tools' nilness pass
// (the build environment is offline, so the real pass cannot be vendored):
// it flags `x == nil` / `x != nil` comparisons where x is a local variable
// whose only assignment is a definitely non-nil expression — &T{...},
// new(T), or make(...) — and whose address is never taken. Such a
// comparison is constant: the == branch is dead and the != guard is noise,
// and in this codebase a dead nil-check usually marks a refactor that
// removed the nil-returning path without removing its guard.
package nilcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/streamworks/streamworks/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "nilcmp",
	Doc:  "nil comparisons of locals that are provably non-nil (assigned once from &T{}, new, or make)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// state tracks what we know about one local variable.
type state struct {
	nonNil  bool // its single initialising assignment cannot yield nil
	assigns int  // number of assignments seen (beyond 1 we know nothing)
	unsafe  bool // address taken or otherwise escaped: assume anything
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	body := fd.Body
	vars := map[types.Object]*state{}
	get := func(id *ast.Ident) *state {
		obj, ok := pass.ObjectOf(id).(*types.Var)
		if !ok {
			return nil
		}
		s := vars[obj]
		if s == nil {
			s = &state{}
			vars[types.Object(obj)] = s
		}
		return s
	}

	// Receivers, parameters and named results are assigned by the caller
	// (or the return machinery): their value is unknowable here, even if
	// the body later writes a non-nil default into them.
	for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params, fd.Type.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if s := get(name); s != nil {
					s.unsafe = true
				}
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				s := get(id)
				if s == nil {
					continue
				}
				s.assigns++
				if len(n.Lhs) == len(n.Rhs) {
					s.nonNil = definitelyNonNil(pass, n.Rhs[i])
				} else {
					// Multi-value unpacking: the call decides, we don't.
					s.nonNil = false
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if id.Name == "_" {
					continue
				}
				s := get(id)
				if s == nil {
					continue
				}
				s.assigns++
				if i < len(n.Values) && len(n.Values) == len(n.Names) {
					s.nonNil = definitelyNonNil(pass, n.Values[i])
				} else {
					s.nonNil = false
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if s := get(id); s != nil {
						s.assigns++
						s.nonNil = false
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if s := get(id); s != nil {
						s.unsafe = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
			return true
		}
		var id *ast.Ident
		switch {
		case isNil(pass, cmp.Y):
			id, _ = ast.Unparen(cmp.X).(*ast.Ident)
		case isNil(pass, cmp.X):
			id, _ = ast.Unparen(cmp.Y).(*ast.Ident)
		}
		if id == nil {
			return true
		}
		obj, ok := pass.ObjectOf(id).(*types.Var)
		if !ok {
			return true
		}
		s := vars[types.Object(obj)]
		if s == nil || s.assigns != 1 || s.unsafe || !s.nonNil {
			return true
		}
		verdict := "false"
		if cmp.Op == token.NEQ {
			verdict = "true"
		}
		pass.Reportf(cmp.Pos(), "comparison of %s to nil is always %s: its only assignment is non-nil; drop the dead check or restore the nil-returning path", id.Name, verdict)
		return true
	})
}

// definitelyNonNil reports whether e can be proven non-nil without data flow:
// taking an address, new, or make.
func definitelyNonNil(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		return e.Op == token.AND
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			return b.Name() == "new" || b.Name() == "make"
		}
	}
	return false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.ObjectOf(id).(*types.Nil)
	return isNilObj
}
