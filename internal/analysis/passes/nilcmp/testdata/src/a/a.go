// Package a is a nilcmp fixture.
package a

type engine struct {
	queries map[string]int
}

func lookup(name string) *engine { return nil }

func badAlwaysFalse() {
	e := &engine{}
	if e == nil { // want `comparison of e to nil is always false`
		panic("unreachable")
	}
	_ = e.queries
}

func badAlwaysTrue() int {
	m := make(map[string]int)
	if m != nil { // want `comparison of m to nil is always true`
		return len(m)
	}
	return 0
}

func badNew() {
	e := new(engine)
	if nil == e { // want `comparison of e to nil is always false`
		panic("unreachable")
	}
}

func goodReassigned(name string) *engine {
	e := &engine{}
	e = lookup(name)
	if e == nil {
		return nil
	}
	return e
}

func goodFromCall(name string) bool {
	e := lookup(name)
	return e == nil
}

func goodAddressTaken(reset func(**engine)) bool {
	e := &engine{}
	reset(&e)
	return e == nil
}

func goodParam(e *engine) bool {
	return e == nil
}

// goodDefaulted is the nil-defaulting idiom: the parameter's caller-supplied
// value is unknown, so the guard is live even though its only in-body
// assignment is non-nil.
func goodDefaulted(e *engine) *engine {
	if e == nil {
		e = &engine{}
	}
	return e
}

type wrapper struct{ e *engine }

// goodReceiverDefault does the same through a value receiver.
func (w wrapper) goodReceiverDefault() *engine {
	if w.e == nil {
		return &engine{}
	}
	return w.e
}
