package copylocks_test

import (
	"testing"

	"github.com/streamworks/streamworks/internal/analysis/analysistest"
	"github.com/streamworks/streamworks/internal/analysis/passes/copylocks"
)

func TestCopylocks(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", copylocks.Analyzer)
}
