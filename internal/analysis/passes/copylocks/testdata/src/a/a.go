// Package a is a copylocks fixture.
package a

import "sync"

// registry embeds a mutex, like shard.ShardedEngine and the server hub.
type registry struct {
	mu   sync.Mutex
	subs map[string]int
}

func badParam(r registry) { // want `parameter passes a lock by value: it contains mu\.sync\.Mutex`
	r.mu.Lock()
	defer r.mu.Unlock()
}

// badReceiver copies the registry (and its lock state) on every call.
func (r registry) badReceiver() {} // want `receiver passes a lock by value`

func badResult() registry { // want `result passes a lock by value`
	return registry{}
}

func badAssign(r *registry) {
	cp := *r // want `assignment copies a lock value`
	_ = cp
}

func badRange(rs []registry) {
	for _, r := range rs { // want `range clause copies a lock value per element`
		_ = r.subs
	}
}

func badWaitGroup(wg sync.WaitGroup) { // want `parameter passes a lock by value: it contains sync\.WaitGroup`
	wg.Wait()
}

func goodPointer(r *registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
}

// goodConstruction builds fresh values in place: no live lock is copied.
func goodConstruction() {
	r := registry{subs: map[string]int{}}
	r.mu.Lock()
	r.mu.Unlock()
}

func goodRangeIndex(rs []registry) {
	for i := range rs {
		rs[i].mu.Lock()
		rs[i].mu.Unlock()
	}
}

func goodPointerSlice(rs []*registry) {
	for _, r := range rs {
		_ = r.subs
	}
}
