// Package copylocks is the in-tree stand-in for vet/x/tools' copylocks pass
// (kept in swvet so the whole invariant suite runs from one binary, and
// extended to this module's own lock-bearing types): it flags values of
// types containing a sync lock — anything whose pointer type satisfies
// sync.Locker, plus sync.WaitGroup/Once/Map and structures embedding them —
// being copied: by-value parameters and results, value assignments, and
// two-variable range clauses over containers of lock-bearing elements. A
// copied lock forks the lock state: both copies unlock independently and
// the mutual exclusion silently vanishes (ShardedEngine and the server hub
// both embed mutexes, so an accidental by-value method or range would
// compile cleanly and corrupt the subscription registry under race).
package copylocks

import (
	"go/ast"
	"go/types"

	"github.com/streamworks/streamworks/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "copylocks",
	Doc:  "by-value copies of types containing sync primitives (mutexes, wait groups, …)",
	Run:  run,
}

// locker is the interface a lock-bearing type's pointer satisfies.
var locker = types.NewInterfaceType([]*types.Func{
	types.NewFunc(0, nil, "Lock", types.NewSignatureType(nil, nil, nil, nil, nil, false)),
	types.NewFunc(0, nil, "Unlock", types.NewSignatureType(nil, nil, nil, nil, nil, false)),
}, nil).Complete()

// lockPath returns a short description of where a lock lives inside t ("" if
// lock-free). depth caps recursion through self-referential types.
func lockPath(t types.Type, depth int) string {
	if depth > 10 || t == nil {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return "sync." + obj.Name()
			}
		}
		if types.Implements(types.NewPointer(named), locker) && !types.Implements(named, locker) {
			return obj.Name()
		}
		return lockPath(named.Underlying(), depth+1)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if p := lockPath(t.Field(i).Type(), depth+1); p != "" {
				return t.Field(i).Name() + "." + p
			}
		}
	case *types.Array:
		if p := lockPath(t.Elem(), depth+1); p != "" {
			return "[...]" + p
		}
	}
	return ""
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkSignature(pass, nil, n.Type)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkSignature(pass *analysis.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if p := lockPath(t, 0); p != "" {
				pass.Reportf(field.Pos(), "%s passes a lock by value: it contains %s; use a pointer", what, p)
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		rhs = ast.Unparen(rhs)
		switch rhs.(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			// Fresh values and function results are construction, not
			// copies of a live lock.
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			// `_ = x` is the mark-used idiom: nothing is copied anywhere.
			continue
		}
		t := pass.TypeOf(as.Lhs[i])
		if t == nil {
			t = pass.TypeOf(rhs)
		}
		if t == nil {
			continue
		}
		if p := lockPath(t, 0); p != "" {
			pass.Reportf(as.Pos(), "assignment copies a lock value: it contains %s; use a pointer", p)
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	if id, ok := rng.Value.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	t := pass.TypeOf(rng.Value)
	if t == nil {
		return
	}
	if p := lockPath(t, 0); p != "" {
		pass.Reportf(rng.Value.Pos(), "range clause copies a lock value per element: it contains %s; range over indices or pointers", p)
	}
}
