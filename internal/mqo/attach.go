package mqo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/isomorphism"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/sjtree"
)

// Attachment is one query's view of the shared DAG: the root node its plan
// resolved to, the maps translating canonical root matches into the query's
// own pattern space, and the per-query emission state (exactly-once set,
// window, callback).
type Attachment struct {
	dag    *DAG
	name   string
	q      *query.Graph
	plan   *decompose.Plan
	window time.Duration

	root     *node
	rootVMap []query.VertexID
	rootEMap []query.EdgeID
	// nodes lists the distinct DAG nodes realizing this plan (a plan with
	// two isomorphic subtrees resolves both to one node); leaves is the
	// leaf subset, for per-query search accounting.
	nodes  []*node
	leaves []*node

	emitted *sjtree.EmittedSet
	emit    func(*match.Match)

	matches       uint64
	preAttach     uint64
	replayedEdges uint64
}

// Name returns the attachment's registration name.
func (a *Attachment) Name() string { return a.name }

// Plan returns the decomposition plan the attachment realizes.
func (a *Attachment) Plan() *decompose.Plan { return a.plan }

// Matches returns the number of complete matches emitted since attach.
func (a *Attachment) Matches() uint64 { return a.matches }

// PreAttachMatches returns how many complete matches predating the
// attachment were recorded-but-suppressed during root backfill.
func (a *Attachment) PreAttachMatches() uint64 { return a.preAttach }

// ReplayedEdges returns how many retained-window edges were replayed to
// backfill leaves this attachment created.
func (a *Attachment) ReplayedEdges() uint64 { return a.replayedEdges }

// Emitted exposes the attachment's exactly-once emission set so a plan swap
// can move it onto the replacement attachment (sjtree.Tree.InheritEmitted's
// shared-plan counterpart).
func (a *Attachment) Emitted() *sjtree.EmittedSet { return a.emitted }

// LeafSearches sums the local searches of the attachment's leaf nodes. The
// counters are shared: a search seeded once for five queries counts once in
// each — the per-query number reports coverage, DAG.LocalSearches cost.
func (a *Attachment) LeafSearches() uint64 {
	var total uint64
	for _, n := range a.leaves {
		total += n.searches
	}
	return total
}

// PartialMatches sums the stored matches of the attachment's non-root
// nodes, the shared-mode analogue of Tree.PartialMatchCount (shared nodes
// count once per query viewing them).
func (a *Attachment) PartialMatches() int {
	total := 0
	for _, n := range a.nodes {
		if n != a.root {
			total += n.coll.Len()
		}
	}
	return total
}

// AttachOptions configures Attach.
type AttachOptions struct {
	// Emit receives every complete match in the query's own pattern space,
	// exactly once per distinct data-edge binding.
	Emit func(*match.Match)
	// InheritEmitted seeds the attachment's exactly-once set from a detached
	// predecessor, preserving emission identity across a plan swap.
	InheritEmitted *sjtree.EmittedSet
	// Replay marks the attachment as replacing a predecessor: complete
	// matches found during root backfill are emitted (the inherited set
	// silences the already-reported ones) instead of recorded-but-
	// suppressed, mirroring the per-query swap's replay semantics.
	Replay bool
}

// Attach folds a query's decomposition plan into the DAG. Plan subtrees
// whose canonical signature matches an existing node are shared as-is; new
// nodes are created with their state backfilled from the retained window
// (leaves by replaying live edges, joins by cross-joining their children's
// existing collections), so an attachment mid-stream starts from the same
// state it would have had if attached before the retained window began.
func (d *DAG) Attach(name string, q *query.Graph, plan *decompose.Plan, opt AttachOptions) (*Attachment, error) {
	if _, dup := d.atts[name]; dup {
		return nil, fmt.Errorf("mqo: query %q already attached", name)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("mqo: invalid plan for %q: %w", name, err)
	}
	att := &Attachment{
		dag:     d,
		name:    name,
		q:       q,
		plan:    plan,
		window:  q.Window(),
		emitted: opt.InheritEmitted,
		emit:    opt.Emit,
	}
	if att.emitted == nil {
		att.emitted = sjtree.NewEmittedSet()
	}
	root, rootFrag := d.build(att, plan.Query, plan.Root)
	att.root = root
	att.rootVMap = rootFrag.VertToQuery
	att.rootEMap = rootFrag.EdgeToQuery
	root.consumers = append(root.consumers, &consumer{att: att})

	d.atts[name] = att
	d.attOrder = append(d.attOrder, name)

	// Root backfill: complete matches already in the shared root collection
	// flow through the normal delivery path. On a fresh attach they predate
	// the query and are recorded-but-suppressed; on a replay (plan swap)
	// they are emitted and the inherited set drops the duplicates, so only
	// matches the old plan had not surfaced yet reach the callback.
	for _, m := range root.coll.Stored() {
		d.deliver(att, m, !opt.Replay)
	}
	return att, nil
}

// build resolves one plan node to a shared DAG node, creating and
// backfilling it when no structurally identical node exists. It returns the
// node together with THIS query's canonical fragment for the subpattern —
// the node's stored fragment maps into whichever query created it, so each
// attaching query carries its own maps; equal signatures guarantee the
// canonical coordinate space is the same.
func (d *DAG) build(att *Attachment, q *query.Graph, pn *decompose.Node) (*node, *decompose.Fragment) {
	frag := decompose.Canonicalize(q, pn.Edges, att.name)
	leaf := pn.Left == nil && pn.Right == nil
	var sig string
	var ln, rn *node
	var lf, rf *decompose.Fragment
	if leaf {
		sig = "L|" + frag.Sig
	} else {
		ln, lf = d.build(att, q, pn.Left)
		rn, rf = d.build(att, q, pn.Right)
		sig = joinSig(frag, ln.sig, rn.sig, lf, rf)
	}

	if n, ok := d.nodes[sig]; ok {
		d.widen(n, att.window)
		att.addNode(n, leaf)
		return n, frag
	}

	n := &node{
		sig:     sig,
		frag:    frag,
		matcher: isomorphism.New(frag.Graph),
		coll:    sjtree.NewCollection(),
		window:  att.window,
	}
	d.nodes[sig] = n
	d.order = append(d.order, sig)
	att.addNode(n, leaf)

	if leaf {
		d.addSeeds(n)
		// Backfill: replay the retained window through the new leaf so its
		// collection holds every primitive match a pre-existing leaf would.
		// Registration before ingest replays nothing.
		d.g.ForEachLiveEdge(func(de *graph.Edge) bool {
			att.replayedEdges++
			d.searchNode(n, de)
			return true
		})
		return n, frag
	}

	// Cut vertices in parent canonical space, sorted so both links project
	// onto the identical ordered list regardless of which query's plan
	// supplied the (query-space) cut.
	cuts := make([]query.VertexID, len(pn.CutVertices))
	for i, qv := range pn.CutVertices {
		cuts[i] = frag.VertFromQuery[qv]
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	mkLink := func(child *node, cf *decompose.Fragment) *childLink {
		vmap := make([]query.VertexID, len(cf.VertToQuery))
		for ci, qv := range cf.VertToQuery {
			vmap[ci] = frag.VertFromQuery[qv]
		}
		emap := make([]query.EdgeID, len(cf.EdgeToQuery))
		for ci, qe := range cf.EdgeToQuery {
			emap[ci] = frag.EdgeFromQuery[qe]
		}
		l := &childLink{child: child, vmap: vmap, emap: emap, cuts: cuts, part: sjtree.NewPartition()}
		child.parents = append(child.parents, &parentLink{parent: n, link: l})
		return l
	}
	n.left = mkLink(ln, lf)
	n.right = mkLink(rn, rf)

	// Join backfill: populate the left partition silently, then stream the
	// right child's collection through the normal add-and-probe step so
	// every (left, right) pair is joined exactly once. Joins insert into n,
	// which has no parents or consumers yet — results land in n.coll, ready
	// for the next level up.
	nv, ne := frag.Graph.NumVertices(), frag.Graph.NumEdges()
	for _, m := range ln.coll.Stored() {
		mp := m.Remap(nv, ne, n.left.vmap, n.left.emap)
		n.left.part.Add(mp.Projection(cuts), mp)
	}
	for _, m := range rn.coll.Stored() {
		mp := m.Remap(nv, ne, n.right.vmap, n.right.emap)
		key := mp.Projection(cuts)
		n.right.part.Add(key, mp)
		for _, sm := range n.left.part.Probe(key) {
			n.joinAttempts++
			joined := mp.Join(sm)
			if joined == nil {
				continue
			}
			n.joinHits++
			d.insert(n, joined)
		}
	}
	return n, frag
}

// joinSig composes an internal node's sharing key: the canonical fragment
// signature alone does not pin how the fragment splits into children, so the
// key also embeds both child signatures and the provenance map — for every
// parent canonical edge, which side it comes from and its canonical index
// there. Equal keys therefore guarantee isomorphic fragments with aligned
// children and cut partitions.
func joinSig(frag *decompose.Fragment, lsig, rsig string, lf, rf *decompose.Fragment) string {
	var prov strings.Builder
	for i, qe := range frag.EdgeToQuery {
		if i > 0 {
			prov.WriteByte(',')
		}
		if ce, ok := lf.EdgeFromQuery[qe]; ok {
			prov.WriteByte('L')
			prov.WriteString(strconv.Itoa(int(ce)))
		} else {
			prov.WriteByte('R')
			prov.WriteString(strconv.Itoa(int(rf.EdgeFromQuery[qe])))
		}
	}
	return "J|" + frag.Sig + "|{" + lsig + "}|{" + rsig + "}|" + prov.String()
}

// addNode records a node in the attachment's distinct-node lists.
func (a *Attachment) addNode(n *node, leaf bool) {
	for _, have := range a.nodes {
		if have == n {
			return
		}
	}
	a.nodes = append(a.nodes, n)
	if leaf {
		a.leaves = append(a.leaves, n)
	}
}

// addSeeds registers a new leaf's local-search seeds, one per fragment edge,
// with precomputed connected orders (hot-path work hoisted to attach time,
// exactly like core's rebuildCandidates).
func (d *DAG) addSeeds(n *node) {
	fg := n.frag.Graph
	edges := fg.EdgeIDs()
	for _, fe := range edges {
		order := n.matcher.ConnectedOrder(edges, fe)
		if order == nil {
			// Disconnected primitives are rejected by plan validation; skip
			// defensively rather than register a dead seed.
			continue
		}
		e := fg.Edge(fe)
		s := seedRef{n: n, qe: e, order: order}
		n.seeds = append(n.seeds, s)
		d.seedsByType[e.Type] = append(d.seedsByType[e.Type], s)
	}
}

// removeSeeds drops a collected leaf's seeds from the per-type index.
func (d *DAG) removeSeeds(n *node) {
	//swvet:unordered each type bucket is filtered independently; relative seed order within a bucket is preserved
	for t, seeds := range d.seedsByType {
		kept := seeds[:0]
		for _, s := range seeds {
			if s.n != n {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			delete(d.seedsByType, t)
		} else {
			d.seedsByType[t] = kept
		}
	}
}

// Detach removes a query from the DAG. Only nodes whose reference count
// drops to zero are collected — anything still referenced by another query's
// plan (or as a subtree of one) survives with its state intact.
func (d *DAG) Detach(name string) error {
	att, ok := d.atts[name]
	if !ok {
		return fmt.Errorf("mqo: query %q not attached", name)
	}
	d.detachConsumer(att)
	d.gc(att.root)
	d.recomputeWindows()
	return nil
}

// Swap replaces an attachment's plan in place: the replacement is attached
// while the old plan's nodes are still live — so subtrees common to both
// plans (and anything shared with other queries) keep their state across the
// swap — inheriting the exactly-once emission set, with root backfill in
// replay mode so matches the old plan had not yet surfaced are emitted. Only
// after the new attachment is in place are the old plan's now-unreferenced
// nodes collected. This is the shared-plan counterpart of the per-query
// engine's hot plan swap.
func (d *DAG) Swap(name string, plan *decompose.Plan, emit func(*match.Match)) (*Attachment, error) {
	old, ok := d.atts[name]
	if !ok {
		return nil, fmt.Errorf("mqo: query %q not attached", name)
	}
	d.detachConsumer(old)
	att, err := d.Attach(name, old.q, plan, AttachOptions{
		Emit:           emit,
		InheritEmitted: old.emitted,
		Replay:         true,
	})
	if err != nil {
		// Roll the old attachment back in so the DAG stays consistent.
		old.root.consumers = append(old.root.consumers, &consumer{att: old})
		d.atts[name] = old
		d.attOrder = append(d.attOrder, name)
		return nil, err
	}
	d.gc(old.root)
	d.recomputeWindows()
	return att, nil
}

// detachConsumer unhooks the attachment without collecting nodes; the caller
// runs gc (and, for a plan swap, a replacement Attach first, so shared nodes
// stay warm across the swap).
func (d *DAG) detachConsumer(att *Attachment) {
	root := att.root
	for i, c := range root.consumers {
		if c.att == att {
			root.consumers = append(root.consumers[:i], root.consumers[i+1:]...)
			break
		}
	}
	delete(d.atts, att.name)
	for i, n := range d.attOrder {
		if n == att.name {
			d.attOrder = append(d.attOrder[:i], d.attOrder[i+1:]...)
			break
		}
	}
}

// gc collects n if its reference count reached zero, cascading to children
// whose last parent link it held.
func (d *DAG) gc(n *node) {
	if n.refs() > 0 {
		return
	}
	delete(d.nodes, n.sig)
	for i, sig := range d.order {
		if sig == n.sig {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	if n.left == nil {
		d.removeSeeds(n)
		return
	}
	for _, l := range []*childLink{n.left, n.right} {
		child := l.child
		for i, pl := range child.parents {
			if pl.parent == n && pl.link == l {
				child.parents = append(child.parents[:i], child.parents[i+1:]...)
				break
			}
		}
		d.gc(child)
	}
}

// widen relaxes a node's effective window to admit an attachment with
// requirement w, cascading downward (every node below must retain at least
// what its ancestors need). Zero means unbounded and absorbs everything.
func (d *DAG) widen(n *node, w time.Duration) {
	nw := combineWindow(n.window, w)
	if nw == n.window {
		return
	}
	n.window = nw
	if n.left != nil {
		d.widen(n.left.child, nw)
		d.widen(n.right.child, nw)
	}
}

// recomputeWindows rebuilds every node's effective window from scratch —
// required after a detach, which may narrow windows (widen only relaxes).
func (d *DAG) recomputeWindows() {
	for _, sig := range d.order {
		d.nodes[sig].window = -1
	}
	for _, name := range d.attOrder {
		att := d.atts[name]
		d.widen(att.root, att.window)
	}
}

// combineWindow merges two window requirements: -1 is "none yet", 0 is
// unbounded, otherwise the wider one wins.
func combineWindow(cur, w time.Duration) time.Duration {
	if cur < 0 {
		return w
	}
	if cur == 0 || w == 0 {
		return 0
	}
	if w > cur {
		return w
	}
	return cur
}
