package mqo

import (
	"sort"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/stats"
)

func planFor(t *testing.T, q *query.Graph) *decompose.Plan {
	return planWith(t, q, decompose.StrategySelective)
}

func planWith(t *testing.T, q *query.Graph, s decompose.Strategy) *decompose.Plan {
	t.Helper()
	p, err := decompose.NewPlanner(stats.NewEstimator(nil)).Plan(q, s)
	if err != nil {
		t.Fatalf("planning %s: %v", q.Name(), err)
	}
	return p
}

func smurf(name string, window time.Duration) *query.Graph {
	return query.NewBuilder(name).
		Window(window).
		Vertex("attacker", "Host").
		Vertex("amplifier", "Host").
		Vertex("victim", "Host").
		Edge("attacker", "amplifier", "icmp_echo_req").
		Edge("amplifier", "victim", "icmp_echo_reply").
		MustBuild()
}

// probe shares the icmp_echo_req leaf with smurf but continues differently.
func probe(name string, window time.Duration) *query.Graph {
	return query.NewBuilder(name).
		Window(window).
		Vertex("scanner", "Host").
		Vertex("target", "Host").
		Vertex("resolver", "Host").
		Edge("scanner", "target", "icmp_echo_req").
		Edge("target", "resolver", "dns").
		MustBuild()
}

func hostEdge(id graph.EdgeID, src, dst graph.VertexID, typ string, ts graph.Timestamp) graph.StreamEdge {
	return graph.StreamEdge{
		Edge:       graph.Edge{ID: id, Source: src, Target: dst, Type: typ, Timestamp: ts},
		SourceType: "Host",
		TargetType: "Host",
	}
}

// collector accumulates emitted match signatures per query.
type collector struct {
	sigs map[string][]string
}

func newCollector() *collector { return &collector{sigs: map[string][]string{}} }

func (c *collector) emitFn(name string) func(*match.Match) {
	return func(m *match.Match) { c.sigs[name] = append(c.sigs[name], m.Signature()) }
}

func feed(t *testing.T, dyn *graph.Dynamic, d *DAG, edges []graph.StreamEdge) {
	t.Helper()
	for _, se := range edges {
		stored, err := dyn.Apply(se)
		if err != nil {
			t.Fatalf("apply edge %d: %v", se.Edge.ID, err)
		}
		d.ProcessEdge(stored)
	}
}

// TestDAGSharesIdenticalQueries: two structurally identical queries resolve
// to the same DAG nodes, every local search is shared, and both queries emit
// the same matches.
func TestDAGSharesIdenticalQueries(t *testing.T) {
	dyn := graph.NewDynamic(0)
	d := New(dyn)
	col := newCollector()
	q1, q2 := smurf("s1", time.Minute), smurf("s2", time.Minute)
	p1, p2 := planFor(t, q1), planFor(t, q2)
	if _, err := d.Attach("s1", q1, p1, AttachOptions{Emit: col.emitFn("s1")}); err != nil {
		t.Fatal(err)
	}
	soloNodes := d.NumNodes()
	if _, err := d.Attach("s2", q2, p2, AttachOptions{Emit: col.emitFn("s2")}); err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != soloNodes {
		t.Fatalf("identical query created nodes: %d -> %d", soloNodes, d.NumNodes())
	}
	base := graph.TimestampFromTime(time.Unix(1000, 0))
	feed(t, dyn, d, []graph.StreamEdge{
		hostEdge(1, 1, 2, "icmp_echo_req", base),
		hostEdge(2, 2, 3, "icmp_echo_reply", base.Add(time.Second)),
	})
	if got := col.sigs["s1"]; len(got) != 1 {
		t.Fatalf("s1 matches = %v", got)
	}
	if got := col.sigs["s2"]; len(got) != 1 || got[0] != col.sigs["s1"][0] {
		t.Fatalf("s2 matches = %v, want same as s1 %v", got, col.sigs["s1"])
	}
	if d.SharedHits() == 0 {
		t.Fatalf("no shared hits recorded for fully shared queries")
	}
	st := d.Stats()
	if st.SharedNodes != st.Nodes {
		t.Fatalf("expected every node shared, got %d of %d", st.SharedNodes, st.Nodes)
	}
}

// TestDAGPartialOverlapAndDetach: two queries sharing one leaf evaluate that
// leaf once; detaching one query drops only the nodes whose refcount reached
// zero, and the survivor keeps matching.
func TestDAGPartialOverlapAndDetach(t *testing.T) {
	dyn := graph.NewDynamic(0)
	d := New(dyn)
	col := newCollector()
	// Eager plans use single-edge leaves, so the two queries' common
	// icmp_echo_req edge becomes a genuinely shared leaf node (the selective
	// planner folds a 2-edge query into one leaf, leaving nothing to share).
	qs, qp := smurf("smurf", time.Minute), probe("probe", time.Minute)
	if _, err := d.Attach("smurf", qs, planWith(t, qs, decompose.StrategyEager), AttachOptions{Emit: col.emitFn("smurf")}); err != nil {
		t.Fatal(err)
	}
	smurfNodes := d.NumNodes()
	if _, err := d.Attach("probe", qp, planWith(t, qp, decompose.StrategyEager), AttachOptions{Emit: col.emitFn("probe")}); err != nil {
		t.Fatal(err)
	}
	// The echo_req leaf is shared; probe adds its dns leaf and its join.
	if got, want := d.NumNodes(), smurfNodes+2; got != want {
		t.Fatalf("nodes after overlapping attach = %d, want %d", got, want)
	}
	shared := 0
	for _, ns := range d.Stats().PerNode {
		if ns.Refs > 1 {
			shared++
		}
	}
	if shared != 1 {
		t.Fatalf("shared node count = %d, want 1 (the echo_req leaf)", shared)
	}

	base := graph.TimestampFromTime(time.Unix(2000, 0))
	feed(t, dyn, d, []graph.StreamEdge{
		hostEdge(1, 1, 2, "icmp_echo_req", base),
		hostEdge(2, 2, 3, "icmp_echo_reply", base.Add(time.Second)),
		hostEdge(3, 2, 4, "dns", base.Add(2*time.Second)),
	})
	if len(col.sigs["smurf"]) != 1 || len(col.sigs["probe"]) != 1 {
		t.Fatalf("matches: smurf=%v probe=%v", col.sigs["smurf"], col.sigs["probe"])
	}
	if d.SharedHits() == 0 {
		t.Fatalf("echo_req searches were not accounted as shared")
	}

	// Detach smurf: its reply leaf and join go, the shared echo_req leaf and
	// probe's nodes stay.
	if err := d.Detach("smurf"); err != nil {
		t.Fatal(err)
	}
	if got, want := d.NumNodes(), 3; got != want {
		t.Fatalf("nodes after detach = %d, want %d", got, want)
	}
	for _, ns := range d.Stats().PerNode {
		if ns.Refs > 1 {
			t.Fatalf("node %s still shared after detach", ns.Sig)
		}
	}
	feed(t, dyn, d, []graph.StreamEdge{
		hostEdge(4, 7, 8, "icmp_echo_req", base.Add(3*time.Second)),
		hostEdge(5, 8, 9, "dns", base.Add(4*time.Second)),
	})
	if len(col.sigs["probe"]) != 2 {
		t.Fatalf("probe stopped matching after smurf detach: %v", col.sigs["probe"])
	}
	if len(col.sigs["smurf"]) != 1 {
		t.Fatalf("detached smurf kept matching: %v", col.sigs["smurf"])
	}
	if err := d.Detach("probe"); err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 0 || d.NumAttachments() != 0 {
		t.Fatalf("DAG not empty after last detach: %d nodes, %d attachments", d.NumNodes(), d.NumAttachments())
	}
}

// TestDAGMidStreamAttachBackfill: attaching after ingest backfills the new
// query's nodes from the retained window. Complete matches that predate the
// attachment are recorded-but-suppressed; partial state is live, so a
// completion arriving after the attach is emitted.
func TestDAGMidStreamAttachBackfill(t *testing.T) {
	dyn := graph.NewDynamic(0)
	d := New(dyn)
	col := newCollector()
	base := graph.TimestampFromTime(time.Unix(3000, 0))
	// Full pre-attach match on hosts 1-2-3, dangling request on 7-8.
	for _, se := range []graph.StreamEdge{
		hostEdge(1, 1, 2, "icmp_echo_req", base),
		hostEdge(2, 2, 3, "icmp_echo_reply", base.Add(time.Second)),
		hostEdge(3, 7, 8, "icmp_echo_req", base.Add(2*time.Second)),
	} {
		if _, err := dyn.Apply(se); err != nil {
			t.Fatal(err)
		}
	}
	q := smurf("late", time.Minute)
	att, err := d.Attach("late", q, planFor(t, q), AttachOptions{Emit: col.emitFn("late")})
	if err != nil {
		t.Fatal(err)
	}
	if att.ReplayedEdges() == 0 {
		t.Fatalf("no backfill replay happened")
	}
	if att.PreAttachMatches() != 1 {
		t.Fatalf("pre-attach completions = %d, want 1", att.PreAttachMatches())
	}
	if len(col.sigs["late"]) != 0 {
		t.Fatalf("pre-attach match was emitted: %v", col.sigs["late"])
	}
	feed(t, dyn, d, []graph.StreamEdge{
		hostEdge(4, 8, 9, "icmp_echo_reply", base.Add(3*time.Second)),
	})
	if len(col.sigs["late"]) != 1 {
		t.Fatalf("completion over backfilled partial not emitted: %v", col.sigs["late"])
	}
}

// TestDAGSwapKeepsEmissionIdentity: swapping an attachment onto a new plan
// neither loses nor duplicates matches, and shared nodes survive the swap.
func TestDAGSwapKeepsEmissionIdentity(t *testing.T) {
	dyn := graph.NewDynamic(0)
	d := New(dyn)
	col := newCollector()
	q := smurf("s", time.Minute)
	p := planFor(t, q)
	if _, err := d.Attach("s", q, p, AttachOptions{Emit: col.emitFn("s")}); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(4000, 0))
	feed(t, dyn, d, []graph.StreamEdge{
		hostEdge(1, 1, 2, "icmp_echo_req", base),
		hostEdge(2, 2, 3, "icmp_echo_reply", base.Add(time.Second)),
		hostEdge(3, 5, 6, "icmp_echo_req", base.Add(2*time.Second)),
	})
	if len(col.sigs["s"]) != 1 {
		t.Fatalf("pre-swap matches: %v", col.sigs["s"])
	}
	// Swap onto an alternative plan for the same query (eager strategy may
	// produce a structurally different tree; even an identical one exercises
	// the detach-attach-gc path).
	alt, err := decompose.NewPlanner(stats.NewEstimator(nil)).Plan(q, decompose.StrategyEager)
	if err != nil {
		t.Fatal(err)
	}
	att, err := d.Swap("s", alt, col.emitFn("s"))
	if err != nil {
		t.Fatal(err)
	}
	// The already-emitted match must not be re-emitted by backfill...
	if len(col.sigs["s"]) != 1 {
		t.Fatalf("swap duplicated or dropped emissions: %v", col.sigs["s"])
	}
	// ...the dangling partial must survive (completion still fires)...
	feed(t, dyn, d, []graph.StreamEdge{
		hostEdge(4, 6, 7, "icmp_echo_reply", base.Add(3*time.Second)),
	})
	if len(col.sigs["s"]) != 2 {
		t.Fatalf("post-swap completion lost: %v", col.sigs["s"])
	}
	if att.Plan() != alt {
		t.Fatalf("attachment did not adopt the new plan")
	}
}

// TestDAGWindowNarrowsAfterDetach: a node shared by a wide- and a
// narrow-window query keeps the wide effective window only while the wide
// query is attached.
func TestDAGWindowNarrowsAfterDetach(t *testing.T) {
	dyn := graph.NewDynamic(0)
	d := New(dyn)
	col := newCollector()
	narrow, wide := smurf("narrow", time.Second), smurf("wide", time.Hour)
	if _, err := d.Attach("narrow", narrow, planFor(t, narrow), AttachOptions{Emit: col.emitFn("narrow")}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Attach("wide", wide, planFor(t, wide), AttachOptions{Emit: col.emitFn("wide")}); err != nil {
		t.Fatal(err)
	}
	windows := func() []time.Duration {
		var out []time.Duration
		for _, ns := range d.Stats().PerNode {
			out = append(out, ns.Window)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for _, w := range windows() {
		if w != time.Hour {
			t.Fatalf("shared node window %v, want 1h while wide attached", w)
		}
	}
	if err := d.Detach("wide"); err != nil {
		t.Fatal(err)
	}
	for _, w := range windows() {
		if w != time.Second {
			t.Fatalf("node window %v after wide detach, want 1s", w)
		}
	}
}
