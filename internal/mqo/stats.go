package mqo

import (
	"time"
)

// NodeStats is one DAG node's live counters. Sig is the canonical sharing
// key — stable across engines, so sharded front-ends aggregate per-node
// stats by summing counters of equal signatures.
type NodeStats struct {
	Sig    string `json:"sig"`
	Edges  int    `json:"edges"`
	IsLeaf bool   `json:"is_leaf"`
	Refs   int    `json:"refs"`
	// Consumers is how many attachments emit from this node; Refs additionally
	// counts parent links. Refs > 1 marks the node as shared.
	Consumers    int           `json:"consumers"`
	Window       time.Duration `json:"window"`
	Stored       int           `json:"stored"`
	Inserted     uint64        `json:"inserted"`
	Pruned       uint64        `json:"pruned"`
	Searches     uint64        `json:"searches"`
	Partitions   int           `json:"partitions"`
	JoinAttempts uint64        `json:"join_attempts"`
	JoinHits     uint64        `json:"join_hits"`
	WindowDrops  uint64        `json:"window_drops"`
}

// Stats is a snapshot of the DAG's structure and counters.
type Stats struct {
	Nodes       int `json:"nodes"`
	SharedNodes int `json:"shared_nodes"`
	Attachments int `json:"attachments"`
	// PartialMatches counts stored entries across all node collections and
	// link partitions — the shared-mode memory-pressure metric.
	PartialMatches int         `json:"partial_matches"`
	LocalSearches  uint64      `json:"local_searches"`
	SharedHits     uint64      `json:"shared_hits"`
	PerNode        []NodeStats `json:"per_node,omitempty"`
}

// MergeStats folds per-shard DAG snapshots into one. Replicated shards build
// structurally identical DAGs, so per-node entries are merged by canonical
// signature: counters and stored sizes sum, structural fields (Edges, IsLeaf,
// Refs, Consumers, Window) come from the first snapshot that carries the
// signature. Node order follows the first snapshot, with signatures unique to
// later snapshots appended in their order of appearance.
func MergeStats(snaps ...Stats) Stats {
	var out Stats
	idx := make(map[string]int)
	for i, s := range snaps {
		if i == 0 {
			out.Nodes = s.Nodes
			out.SharedNodes = s.SharedNodes
			out.Attachments = s.Attachments
		}
		out.PartialMatches += s.PartialMatches
		out.LocalSearches += s.LocalSearches
		out.SharedHits += s.SharedHits
		for _, ns := range s.PerNode {
			j, ok := idx[ns.Sig]
			if !ok {
				idx[ns.Sig] = len(out.PerNode)
				out.PerNode = append(out.PerNode, ns)
				if i > 0 {
					// A signature absent from the first snapshot (e.g. a
					// register raced a snapshot sweep): keep the totals
					// honest anyway.
					out.Nodes++
					if ns.Refs > 1 {
						out.SharedNodes++
					}
				}
				continue
			}
			m := &out.PerNode[j]
			m.Stored += ns.Stored
			m.Inserted += ns.Inserted
			m.Pruned += ns.Pruned
			m.Searches += ns.Searches
			m.Partitions += ns.Partitions
			m.JoinAttempts += ns.JoinAttempts
			m.JoinHits += ns.JoinHits
			m.WindowDrops += ns.WindowDrops
		}
	}
	return out
}

// Stats returns a snapshot with per-node detail in node creation order.
func (d *DAG) Stats() Stats {
	s := Stats{
		Nodes:         len(d.nodes),
		Attachments:   len(d.atts),
		LocalSearches: d.localSearches,
		SharedHits:    d.sharedHits,
	}
	for _, sig := range d.order {
		n := d.nodes[sig]
		if n.refs() > 1 {
			s.SharedNodes++
		}
		ns := NodeStats{
			Sig:          n.sig,
			Edges:        n.frag.Graph.NumEdges(),
			IsLeaf:       n.left == nil,
			Refs:         n.refs(),
			Consumers:    len(n.consumers),
			Window:       n.window,
			Stored:       n.coll.Len(),
			Inserted:     n.coll.InsertedTotal(),
			Pruned:       n.coll.PrunedTotal(),
			Searches:     n.searches,
			JoinAttempts: n.joinAttempts,
			JoinHits:     n.joinHits,
			WindowDrops:  n.windowDrops,
		}
		s.PartialMatches += n.coll.Len()
		if n.left != nil {
			ns.Partitions = n.left.part.Partitions() + n.right.part.Partitions()
			s.PartialMatches += n.left.part.Len() + n.right.part.Len()
		}
		s.PerNode = append(s.PerNode, ns)
	}
	return s
}
