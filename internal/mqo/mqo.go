// Package mqo implements multi-query optimization for the continuous
// engine: one shared evaluation DAG for all registered queries, in place of
// one private SJ-Tree per query.
//
// Every decomposition plan node of every attached query is canonicalized
// (decompose.Canonicalize) and folded into a DAG node keyed by its canonical
// signature — structurally identical subpatterns across queries (shared
// leaves, wedges, whole common subtrees) become one node. Each node owns a
// single deduplicated collection of matches of its canonical fragment, so
// per arriving edge the leaf local search runs once per distinct primitive,
// not once per query, and every partial-match join is computed once and
// fanned out to all parents. This is the shared-decomposition design of
// "Query Optimization for Dynamic Graphs" (arXiv 1407.3745) grafted onto the
// paper's SJ-Tree machinery.
//
// The correctness argument is automorphism closure: a DAG node's collection
// holds ALL embeddings of its canonical fragment (local search is seeded on
// every fragment edge for every arriving data edge, exactly like a private
// leaf), a set closed under fragment automorphisms. Remapping a closed set
// through any fixed isomorphism into a consumer's pattern space yields the
// identical set of query-space matches a private tree would have computed,
// so emissions are byte-identical to per-query mode. Per-query emission
// semantics are preserved exactly: each attachment keeps its own emitted-set
// (exactly-once per distinct data-edge binding), its own window filter at
// delivery, and its own callback.
//
// Like the core engine, a DAG is single-goroutine state: the engine's driver
// goroutine calls ProcessEdge/Attach/Detach/Prune, never concurrently.
package mqo

import (
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/isomorphism"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/sjtree"
)

// node is one shared DAG node: the match collection of one canonical
// subpattern, referenced by any number of parent nodes (whose joins consume
// it) and consumers (attachments whose plan root it is). A node is dropped
// when its reference count — parents plus consumers — reaches zero.
type node struct {
	sig  string
	frag *decompose.Fragment
	// matcher searches the canonical fragment graph; leaf nodes use it for
	// the per-edge local search.
	matcher *isomorphism.Matcher

	// left/right are the join inputs (nil for leaves). A node's children may
	// be the same shared node on both sides — two links, one child.
	left, right *childLink
	// parents are the reverse links: every (parent, link) pair whose join
	// consumes this node's matches.
	parents []*parentLink
	// consumers are the attachments whose plan root this node is.
	consumers []*consumer

	// coll is the node's deduplicated canonical match collection
	// (Property 3 of the SJ-Tree, shared across all referencing queries).
	coll *sjtree.Collection

	// seeds are the per-fragment-edge local-search seeds (leaves only); the
	// same entries are indexed in DAG.seedsByType.
	seeds []seedRef

	// window is the widest window requirement among all attachments whose
	// DAG reaches this node: 0 means some attachment is unbounded, negative
	// means not yet computed. Matches outside it can never be delivered and
	// are dropped at insertion, like a private tree's per-node window check.
	window time.Duration

	searches     uint64
	joinAttempts uint64
	joinHits     uint64
	windowDrops  uint64
}

// refs is the node's reference count: parent links plus consumers. It is
// derived, never stored, so attach/detach cannot leak or double-free by
// miscounting.
func (n *node) refs() int { return len(n.parents) + len(n.consumers) }

// childLink wires one join input of a parent node: the maps renaming the
// child's canonical space into the parent's, the parent-space cut vertices,
// and the parent-space hash partition of the child's matches (Property 4 —
// the partition lives on the link because the same child feeds different
// parents under different renamings).
type childLink struct {
	child *node
	// vmap/emap rename child canonical vertex/edge IDs to parent canonical
	// IDs (via the source query both fragments were canonicalized from).
	vmap []query.VertexID
	emap []query.EdgeID
	// cuts are the join's cut vertices in parent canonical space, in a
	// canonical (sorted) order shared by both of the parent's links so the
	// two partitions' projection keys are comparable.
	cuts []query.VertexID
	part *sjtree.Partition
}

// parentLink is the reverse edge of a childLink.
type parentLink struct {
	parent *node
	link   *childLink
}

// otherLink returns the sibling link of l within n.
func (n *node) otherLink(l *childLink) *childLink {
	if n.left == l {
		return n.right
	}
	return n.left
}

// seedRef is one (leaf node, fragment edge) local-search seed with its
// precomputed connected order, mirroring core's leafCandidate.
type seedRef struct {
	n     *node
	qe    *query.Edge
	order []query.EdgeID
}

// consumer is one attachment subscribed to a node's complete matches.
type consumer struct {
	att *Attachment
}

// DAG is the shared evaluation DAG. It is not safe for concurrent use.
type DAG struct {
	g *graph.Dynamic

	nodes map[string]*node
	// order lists node signatures in creation order for deterministic
	// iteration (stats, pruning).
	order []string

	// seedsByType indexes leaf seeds by required edge type; "" holds
	// wildcard pattern edges every arriving edge must be tested against.
	seedsByType map[string][]seedRef

	atts     map[string]*Attachment
	attOrder []string

	localSearches uint64
	sharedHits    uint64

	// prims is the per-edge scratch buffer for local-search results; only
	// the backing array is reused, the matches are owned by the DAG once
	// inserted.
	prims []*match.Match

	// Observability, resolved once like core's engineObs: wall time only
	// ever flows through the obs.Clock seam.
	obsEnabled bool
	clock      obs.Clock
	hLocal     *obs.Histogram
	hJoin      *obs.Histogram
	sharedCtr  *obs.Counter
}

// Option configures a DAG.
type Option func(*DAG)

// WithObs wires hot-path observability: the DAG reuses the engine's
// local-search and join segment histograms and exposes the fan-out saving as
// the MQOSharedHitsCounterName counter.
func WithObs(c obs.Config) Option {
	return func(d *DAG) {
		c = c.Normalized()
		if !c.Enabled {
			return
		}
		d.obsEnabled = true
		d.clock = c.Clock
		d.hLocal = c.Registry.Segment(obs.SegLocalSearch)
		d.hJoin = c.Registry.Segment(obs.SegSJTreeJoin)
		d.sharedCtr = c.Registry.Counter(obs.MQOSharedHitsCounterName, "", "")
	}
}

// New constructs an empty DAG over the given dynamic graph.
func New(g *graph.Dynamic, opts ...Option) *DAG {
	d := &DAG{
		g:           g,
		nodes:       make(map[string]*node),
		seedsByType: make(map[string][]seedRef),
		atts:        make(map[string]*Attachment),
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// SetGraph repoints the DAG at a rebuilt dynamic graph. The engine rebuilds
// its graph when a pre-ingest registration widens retention; the DAG holds no
// per-edge state of its own at that point, so repointing suffices.
func (d *DAG) SetGraph(g *graph.Dynamic) { d.g = g }

// NumNodes returns the number of live DAG nodes.
func (d *DAG) NumNodes() int { return len(d.nodes) }

// NumAttachments returns the number of attached queries.
func (d *DAG) NumAttachments() int { return len(d.atts) }

// LocalSearches returns the cumulative number of leaf local searches run.
func (d *DAG) LocalSearches() uint64 { return d.localSearches }

// SharedHits returns the cumulative fan-out saving: for every local search
// of a node referenced by k parents-or-consumers, k−1 redundant per-query
// searches were avoided.
func (d *DAG) SharedHits() uint64 { return d.sharedHits }

// ProcessEdge runs the per-edge incremental step for every attached query at
// once: one local search per distinct leaf primitive the edge can seed, with
// results inserted into the shared DAG and complete matches fanned out to
// each attachment's emit callback.
func (d *DAG) ProcessEdge(de *graph.Edge) {
	if len(d.atts) == 0 {
		return
	}
	d.processSeeds(d.seedsByType[de.Type], de)
	if de.Type != "" {
		d.processSeeds(d.seedsByType[""], de)
	}
}

func (d *DAG) processSeeds(seeds []seedRef, de *graph.Edge) {
	for i := range seeds {
		s := &seeds[i]
		if !s.qe.MatchesEdge(de) {
			continue
		}
		n := s.n
		n.searches++
		d.localSearches++
		if fan := n.refs(); fan > 1 {
			d.sharedHits += uint64(fan - 1)
			d.sharedCtr.Add(uint64(fan - 1))
		}
		if d.obsEnabled {
			t0 := d.clock.Now()
			d.prims = n.matcher.LocalSearchInto(d.prims[:0], d.g.Graph(), s.order, de)
			t1 := d.clock.Now()
			d.hLocal.Observe(t1 - t0)
			for _, pm := range d.prims {
				d.insert(n, pm)
			}
			d.hJoin.Observe(d.clock.Now() - t1)
		} else {
			d.prims = n.matcher.LocalSearchInto(d.prims[:0], d.g.Graph(), s.order, de)
			for _, pm := range d.prims {
				d.insert(n, pm)
			}
		}
	}
}

// searchNode runs the local searches of one leaf for one edge — the backfill
// path used when a freshly created leaf replays the retained window. No
// shared-hit accounting: the node is new, nothing was saved.
func (d *DAG) searchNode(n *node, de *graph.Edge) {
	for i := range n.seeds {
		s := &n.seeds[i]
		if !s.qe.MatchesEdge(de) {
			continue
		}
		n.searches++
		d.localSearches++
		d.prims = n.matcher.LocalSearchInto(d.prims[:0], d.g.Graph(), s.order, de)
		for _, pm := range d.prims {
			d.insert(n, pm)
		}
	}
}

// insert adds a canonical match of n's fragment and propagates it: dedup
// into the node's collection, remap into each parent's space, hash-join with
// the sibling partition (recursing upward), and deliver to each consumer.
// This is sjtree.Tree.Insert generalized from one parent to many.
func (d *DAG) insert(n *node, m *match.Match) {
	if !m.WithinWindow(n.window) {
		n.windowDrops++
		return
	}
	if !n.coll.Add(m) {
		return
	}
	for _, pl := range n.parents {
		p, l := pl.parent, pl.link
		pg := p.frag.Graph
		mp := m.Remap(pg.NumVertices(), pg.NumEdges(), l.vmap, l.emap)
		key := mp.Projection(l.cuts)
		l.part.Add(key, mp)
		for _, sm := range p.otherLink(l).part.Probe(key) {
			p.joinAttempts++
			joined := mp.Join(sm)
			if joined == nil {
				continue
			}
			p.joinHits++
			d.insert(p, joined)
		}
	}
	for _, c := range n.consumers {
		d.deliver(c.att, m, false)
	}
}

// deliver translates a canonical root match into one attachment's query
// space and emits it, preserving the private tree's acceptance order
// exactly: window check, completeness check, emitted-set dedup, then emit.
// A suppressed delivery (root backfill of a freshly attached query) records
// the match as emitted without invoking the callback, so state accumulated
// before the attachment never produces emissions the per-query path would
// not have produced.
func (d *DAG) deliver(att *Attachment, m *match.Match, suppress bool) {
	qm := m.Remap(att.q.NumVertices(), att.q.NumEdges(), att.rootVMap, att.rootEMap)
	if !qm.WithinWindow(att.window) {
		return
	}
	if !qm.Complete(att.q) {
		// A root fragment that does not cover the query indicates a plan
		// bug; drop rather than report a wrong result.
		return
	}
	if !att.emitted.Add(qm) {
		return
	}
	if suppress {
		att.preAttach++
		return
	}
	att.matches++
	if att.emit != nil {
		att.emit(qm)
	}
}

// Prune drops stored matches that can no longer contribute: per node, either
// matches whose span start has aged past the node's effective window (the
// widest window of any attachment reaching it), or — for nodes on unbounded
// paths — matches binding a data edge that has expired from the retention
// window. Both the node collection and every parent-link partition are
// swept with the same predicate, so the remapped views never outlive the
// canonical match. Returns the number of stored entries removed.
func (d *DAG) Prune(wm graph.Timestamp, expired map[graph.EdgeID]struct{}) int {
	removed := 0
	for _, sig := range d.order {
		n := d.nodes[sig]
		drop := dropPredicate(n.window, wm, expired)
		if drop == nil {
			continue
		}
		removed += n.coll.PruneWhere(drop)
		if n.left != nil {
			removed += n.left.part.PruneWhere(drop)
			removed += n.right.part.PruneWhere(drop)
		}
	}
	return removed
}

// dropPredicate builds the prune predicate for one node, or nil when there
// is nothing to check.
func dropPredicate(window time.Duration, wm graph.Timestamp, expired map[graph.EdgeID]struct{}) func(*match.Match) bool {
	if window > 0 {
		cutoff := wm - graph.Timestamp(window)
		return func(m *match.Match) bool {
			return m.HasSpan() && m.Span.Start < cutoff
		}
	}
	if len(expired) == 0 {
		return nil
	}
	return func(m *match.Match) bool {
		found := false
		m.ForEachEdge(func(_ query.EdgeID, de graph.EdgeID) bool {
			if _, ok := expired[de]; ok {
				found = true
				return false
			}
			return true
		})
		return found
	}
}
