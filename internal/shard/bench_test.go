package shard_test

import (
	"sync"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
)

// The scaling benchmark replays one multi-pattern netflow workload (all four
// Fig. 3 cyber queries) through engines of increasing shard counts. Edges/s
// counts unique stream edges, not per-shard deliveries, so the numbers are
// directly comparable across shard counts and to the single engine.
var (
	benchOnce sync.Once
	benchW    gen.Workload
)

func benchWorkload() gen.Workload {
	benchOnce.Do(func() {
		cfg := gen.NetFlowConfig{
			Hosts:       1000,
			Servers:     60,
			Edges:       25_000,
			Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
			MeanGap:     time.Millisecond,
			ContactSkew: 1.4,
			Seed:        41,
		}
		benchW = gen.NetFlowWorkload(cfg, 30*time.Second)
	})
	return benchW
}

func BenchmarkSingleEngine(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gen.RunSingle(w); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(w.Edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func benchmarkSharded(b *testing.B, shards int) {
	w := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gen.RunSharded(w, shards); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(w.Edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkShardedEngine_1(b *testing.B) { benchmarkSharded(b, 1) }
func BenchmarkShardedEngine_2(b *testing.B) { benchmarkSharded(b, 2) }
func BenchmarkShardedEngine_4(b *testing.B) { benchmarkSharded(b, 4) }
func BenchmarkShardedEngine_8(b *testing.B) { benchmarkSharded(b, 8) }
