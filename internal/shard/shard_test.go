package shard_test

import (
	"errors"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/shard"
	"github.com/streamworks/streamworks/internal/stream"
)

// smallNetflow is a laptop-scale netflow workload with all four Fig. 3 cyber
// queries (every one has a hub vertex, so it exercises endpoint routing).
func smallNetflow(window time.Duration, seed int64) gen.Workload {
	cfg := gen.NetFlowConfig{
		Hosts:       300,
		Servers:     30,
		Edges:       4000,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        seed,
	}
	return gen.NetFlowWorkload(cfg, window)
}

// smallNews is a laptop-scale news workload; its Fig. 2 co-mention query has
// no hub vertex, so it exercises the broadcast fallback.
func smallNews(window time.Duration) gen.Workload {
	cfg := gen.NewsConfig{
		Articles:           800,
		Keywords:           150,
		Locations:          25,
		People:             200,
		Orgs:               60,
		KeywordsPerArticle: 3,
		PeoplePerArticle:   2,
		Start:              graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		Gap:                2 * time.Second,
		KeywordSkew:        1.3,
		Seed:               5,
		EventClusters:      4,
		EventArticles:      3,
		EventSpan:          5 * time.Minute,
	}
	return gen.NewsWorkload(cfg, window, 2)
}

func requireEqualSets(t *testing.T, w gen.Workload, shards int) {
	t.Helper()
	single, _, err := gen.RunSingle(w)
	if err != nil {
		t.Fatalf("single run: %v", err)
	}
	if len(single) == 0 {
		t.Fatalf("degenerate workload %q: no matches at all", w.Name)
	}
	sharded, m, err := gen.RunSharded(w, shards)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if !single.Equal(sharded) {
		t.Fatalf("workload %q: single engine found %d matches, %d-shard engine %d",
			w.Name, len(single), shards, len(sharded))
	}
	if m.MatchesEmitted != uint64(len(sharded)) {
		t.Fatalf("aggregated MatchesEmitted = %d, want %d deduplicated", m.MatchesEmitted, len(sharded))
	}
}

func TestShardedEqualsSingleOnNetflow(t *testing.T) {
	requireEqualSets(t, smallNetflow(time.Minute, 11), 4)
}

func TestShardedEqualsSingleOnNetflowTightWindow(t *testing.T) {
	// A window shorter than the stream span forces edge expiry and pruning
	// while matching is in flight; watermark broadcasts keep idle shards
	// expiring at the same pace.
	requireEqualSets(t, smallNetflow(2*time.Second, 13), 4)
}

func TestShardedEqualsSingleOnNews(t *testing.T) {
	requireEqualSets(t, smallNews(5*time.Minute), 4)
}

func TestShardedEqualsSingleAcrossShardCounts(t *testing.T) {
	w := smallNetflow(30*time.Second, 17)
	single, _, err := gen.RunSingle(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 8} {
		sharded, _, err := gen.RunSharded(w, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !single.Equal(sharded) {
			t.Fatalf("shards=%d: %d matches vs single %d", shards, len(sharded), len(single))
		}
	}
}

func TestShardedMetricsAggregate(t *testing.T) {
	w := smallNetflow(time.Minute, 19)
	_, m, err := gen.RunSharded(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Registrations != uint64(len(w.Queries)) {
		t.Fatalf("Registrations = %d, want %d", m.Registrations, len(w.Queries))
	}
	if len(m.Queries) != len(w.Queries) {
		t.Fatalf("per-query metrics for %d queries, want %d", len(m.Queries), len(w.Queries))
	}
	// Endpoint routing delivers each edge to at most two shards, so the
	// summed EdgesProcessed is bounded by twice the stream (all netflow
	// queries have hub vertices: nothing is broadcast).
	n := uint64(len(w.Edges))
	if m.EdgesProcessed < n || m.EdgesProcessed > 2*n {
		t.Fatalf("EdgesProcessed = %d, want within [%d, %d]", m.EdgesProcessed, n, 2*n)
	}
	if m.LocalSearches == 0 {
		t.Fatalf("no local searches counted")
	}
	var matches uint64
	for _, qm := range m.Queries {
		matches += qm.Matches
	}
	if matches != m.MatchesEmitted {
		t.Fatalf("per-query matches %d do not sum to MatchesEmitted %d", matches, m.MatchesEmitted)
	}
}

func TestShardedRegisterErrorsRollBack(t *testing.T) {
	cfg := shard.DefaultConfig()
	cfg.Engine.Retention = time.Second
	s := shard.New(&cfg)
	if err := s.RegisterQuery(nil); !errors.Is(err, core.ErrNilQuery) {
		t.Fatalf("nil query: %v", err)
	}
	if err := s.RegisterQuery(gen.SmurfQuery(time.Second)); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := s.RegisterQuery(gen.SmurfQuery(time.Second)); !errors.Is(err, core.ErrDuplicateQuery) {
		t.Fatalf("duplicate: %v", err)
	}
	// After the duplicate failure the engine still runs and matches.
	w := smallNetflow(time.Second, 23)
	set := make(gen.MatchSet)
	if _, err := s.Run(w.Source(), func(ev core.MatchEvent) { set.Add(ev) }); err != nil {
		t.Fatalf("run after failed registration: %v", err)
	}
}

func TestShardedMidStreamRegistration(t *testing.T) {
	cfg := shard.DefaultConfig()
	cfg.Engine.Retention = time.Minute
	s := shard.New(&cfg)
	if err := s.RegisterQuery(gen.SmurfQuery(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	w := smallNetflow(30*time.Second, 29)
	s.Start()
	var got []core.MatchEvent
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for ev := range s.Events() {
			got = append(got, ev)
		}
	}()
	half := len(w.Edges) / 2
	for _, se := range w.Edges[:half] {
		s.Process(se)
	}
	// Mid-stream: a second query within retention registers on every shard...
	if err := s.RegisterQuery(gen.WormQuery(30 * time.Second)); err != nil {
		t.Fatalf("mid-stream registration: %v", err)
	}
	// ...while one needing more retention than is in force is rejected
	// atomically (every shard has seen edges by now).
	if err := s.RegisterQuery(gen.WormChainQuery(5 * time.Minute)); !errors.Is(err, core.ErrRetentionTooSmall) {
		t.Fatalf("wide mid-stream registration: %v", err)
	}
	// Unregistering mid-stream stops the query everywhere; the rejected
	// query must have left no partial registration behind.
	if err := s.UnregisterQuery("smurf-ddos"); err != nil {
		t.Fatalf("mid-stream unregister: %v", err)
	}
	if err := s.UnregisterQuery("worm-chain"); !errors.Is(err, core.ErrUnknownQuery) {
		t.Fatalf("rolled-back query still present somewhere: %v", err)
	}
	for _, se := range w.Edges[half:] {
		s.Process(se)
	}
	s.Close()
	<-consumerDone
	m := s.Metrics()
	if len(m.Queries) != 1 || m.Queries[0].Name != "worm-hop" {
		t.Fatalf("surviving registrations = %+v, want only worm-hop", m.Queries)
	}
	// No event for the unregistered query may postdate the second half of
	// the stream: its shard-local state was dropped before those edges.
	// (Events from the first half are fine.)
	for _, ev := range got {
		if ev.Query != "smurf-ddos" && ev.Query != "worm-hop" {
			t.Fatalf("event for unknown query: %v", ev)
		}
	}
}

func TestShardedProcessBeforeStartErrors(t *testing.T) {
	s := shard.New(nil)
	if err := s.RegisterQuery(gen.SmurfQuery(time.Minute)); err != nil {
		t.Fatal(err)
	}
	se := graph.StreamEdge{
		Edge:       graph.Edge{ID: 1, Source: 1, Target: 2, Type: gen.EdgeICMPReq, Timestamp: 100},
		SourceType: gen.TypeHost, TargetType: gen.TypeHost,
	}
	if err := s.Process(se); !errors.Is(err, shard.ErrNotRunning) {
		t.Fatalf("Process before Start: %v, want ErrNotRunning", err)
	}
}

func TestShardedHubFreeQueryRejectedMidStream(t *testing.T) {
	w := smallNews(5 * time.Minute)
	cfg := shard.DefaultConfig()
	cfg.Engine = w.Engine
	s := shard.New(&cfg)
	// Before any edges: fine (this is how NewsWorkload runs normally).
	if err := s.RegisterQuery(w.Queries[0]); err != nil {
		t.Fatalf("pre-stream hub-free registration: %v", err)
	}
	if err := s.UnregisterQuery(w.Queries[0].Name()); err != nil {
		t.Fatal(err)
	}
	s.Start()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range s.Events() {
		}
	}()
	for _, se := range w.Edges[:100] {
		s.Process(se)
	}
	// Mid-stream the query's edge types were endpoint-partitioned, not
	// broadcast: shards lack the history it needs, so it is rejected loudly
	// instead of silently missing matches.
	if err := s.RegisterQuery(w.Queries[0]); !errors.Is(err, shard.ErrBroadcastRequired) {
		t.Fatalf("mid-stream hub-free registration: %v, want ErrBroadcastRequired", err)
	}
	// Hub queries are unaffected.
	if err := s.RegisterQuery(gen.SmurfQuery(w.Engine.Retention)); err != nil {
		t.Fatalf("mid-stream hub registration: %v", err)
	}
	s.Close()
	<-done
}

func TestShardedExplicitAdvanceExpires(t *testing.T) {
	cfg := shard.DefaultConfig()
	cfg.Shards = 2
	cfg.Engine.Retention = 10 * time.Second
	s := shard.New(&cfg)
	if err := s.RegisterQuery(gen.SmurfQuery(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(1000, 0))
	s.Start()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range s.Events() {
		}
	}()
	for i := 0; i < 64; i++ {
		s.Process(graph.StreamEdge{
			Edge: graph.Edge{
				ID:        graph.EdgeID(i + 1),
				Source:    graph.VertexID(i),
				Target:    graph.VertexID(i + 1000),
				Type:      gen.EdgeFlow,
				Timestamp: base.Add(time.Duration(i) * time.Second / 4),
			},
			SourceType: gen.TypeHost,
			TargetType: gen.TypeHost,
		})
	}
	// Jump stream time far past the window on every shard: all edges expire
	// even on shards that received nothing since.
	s.Advance(base.Add(time.Hour))
	s.Close()
	<-done
	m := s.Metrics()
	if m.LiveEdges != 0 {
		t.Fatalf("explicit advance left %d live edges", m.LiveEdges)
	}
	// Each edge is delivered to one or two shards; every delivered copy must
	// have expired.
	if m.ExpiredEdges < 64 || m.ExpiredEdges != m.EdgesProcessed {
		t.Fatalf("ExpiredEdges = %d of %d processed", m.ExpiredEdges, m.EdgesProcessed)
	}
}

func TestShardedAdvanceReachesLaggingShards(t *testing.T) {
	// With edge-time broadcasts disabled, shards that stop receiving edges
	// keep stale watermarks. An explicit Advance — even to a time not beyond
	// the newest routed edge — must still reach them so they expire.
	cfg := shard.DefaultConfig()
	cfg.Engine.Retention = 10 * time.Second
	cfg.AdvanceEvery = -1
	s := shard.New(&cfg)
	if err := s.RegisterQuery(gen.SmurfQuery(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(2000, 0))
	edge := func(id int, src, dst graph.VertexID, ts graph.Timestamp) graph.StreamEdge {
		return graph.StreamEdge{
			Edge:       graph.Edge{ID: graph.EdgeID(id), Source: src, Target: dst, Type: gen.EdgeFlow, Timestamp: ts},
			SourceType: gen.TypeHost, TargetType: gen.TypeHost,
		}
	}
	s.Start()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range s.Events() {
		}
	}()
	// Phase 1: spread edges across all shards at early timestamps.
	for i := 0; i < 64; i++ {
		s.Process(edge(i+1, graph.VertexID(i), graph.VertexID(i+500), base.Add(time.Duration(i)*10*time.Millisecond)))
	}
	// Phase 2: only the two shards owning this vertex pair see new edges
	// (and hence newer watermarks); at least two shards lag behind.
	last := base
	for i := 0; i < 16; i++ {
		last = base.Add(30*time.Second + time.Duration(i)*100*time.Millisecond)
		s.Process(edge(1000+i, 7, 9, last))
	}
	m1 := s.Metrics()
	// An advance exactly to the newest routed timestamp is not a no-op: it
	// carries stream time to the shards phase 2 never touched.
	s.Advance(last)
	m2 := s.Metrics()
	if m2.ExpiredEdges <= m1.ExpiredEdges {
		t.Fatalf("Advance(maxTS) expired nothing on lagging shards: %d -> %d expired",
			m1.ExpiredEdges, m2.ExpiredEdges)
	}
	s.Close()
	<-done
}

// TestShardedRunViaFanOut drives per-shard sub-streams through the stream
// fan-out adapter and checks the pump splits the same way the router does —
// the adapter is the building block for external partitioned ingest.
func TestShardedRunViaFanOut(t *testing.T) {
	w := smallNetflow(30*time.Second, 31)
	const n = 4
	counts := make([]int, n)
	outs, wait := stream.FanOut(w.Source(), n, 64, func(se graph.StreamEdge) []int {
		return []int{int(se.Edge.ID) % n}
	})
	done := make(chan struct{}, n)
	for i, src := range outs {
		go func(i int, src stream.Source) {
			edges, _ := stream.Collect(src)
			counts[i] = len(edges)
			done <- struct{}{}
		}(i, src)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(w.Edges) {
		t.Fatalf("fan-out lost edges: %d of %d", total, len(w.Edges))
	}
}
