package shard

import (
	"sync"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
)

// dedup is the merge-side duplicate filter: replicated edges let the same
// complete match surface on several shards, and each occurrence carries the
// same canonical key — the query name plus the sorted pattern-edge →
// data-edge binding (match.Signature). Only the first occurrence passes.
//
// Seen keys are evicted by maybeSweep against the minimum shard watermark
// the merger has observed through progress marks. A shard emits a duplicate
// of match M while its watermark is at most End(M)+retention+slack (M's
// edges must still be live and admissible there), and the merge channel
// preserves each shard's send order, so once every shard's observed
// watermark has passed that bound, all possible duplicates of M have already
// been received — the key is safe to drop regardless of how far any mailbox
// lags. With unbounded retention nothing ever expires and keys are kept
// forever.
type dedup struct {
	mu        sync.Mutex
	seen      map[string]graph.Timestamp // key → span end
	perQuery  map[string]uint64          // deduplicated matches per query
	unique    uint64
	dups      uint64
	retention time.Duration // grows with registered query windows
	slack     time.Duration
	sweepAt   int
}

func newDedup(retention, slack time.Duration) *dedup {
	return &dedup{
		seen:      make(map[string]graph.Timestamp),
		perQuery:  make(map[string]uint64),
		retention: retention,
		slack:     slack,
		sweepAt:   4096,
	}
}

// noteWindow widens the eviction horizon to cover a registered query window
// (the per-shard engines widen their retention the same way).
func (d *dedup) noteWindow(w time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.retention != 0 && w > d.retention {
		d.retention = w
	}
}

// key computes the canonical match identity.
func key(ev core.MatchEvent) string {
	return ev.Query + "\x1f" + ev.Match.Signature()
}

// admit reports whether ev is the first occurrence of its match.
func (d *dedup) admit(ev core.MatchEvent) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := key(ev)
	if _, dup := d.seen[k]; dup {
		d.dups++
		return false
	}
	d.seen[k] = ev.Match.Span.End
	d.unique++
	d.perQuery[ev.Query]++
	return true
}

// maybeSweep evicts keys whose matches can no longer be rediscovered, given
// the minimum watermark the merger has observed across all shards. Cheap to
// call often: it only scans once the map has grown past a threshold.
func (d *dedup) maybeSweep(minShardWM graph.Timestamp) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.seen) < d.sweepAt {
		return
	}
	if d.retention <= 0 {
		d.sweepAt = len(d.seen) * 2
		return
	}
	horizon := minShardWM - graph.Timestamp(d.retention+d.slack)
	for k, end := range d.seen {
		if end < horizon {
			delete(d.seen, k)
		}
	}
	d.sweepAt = len(d.seen)*2 + 4096
}

// stats returns the deduplication counters: unique matches passed through,
// duplicates suppressed, and unique matches per query (a copy).
func (d *dedup) stats() (unique, dups uint64, perQuery map[string]uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	perQuery = make(map[string]uint64, len(d.perQuery))
	for q, n := range d.perQuery {
		perQuery[q] = n
	}
	return d.unique, d.dups, perQuery
}
