package shard

import (
	"sync"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/match"
)

// dedup is the merge-side duplicate filter: replicated edges let the same
// complete match surface on several shards, and each occurrence carries the
// same canonical identity — the query name plus the exact pattern-edge →
// data-edge binding. Only the first occurrence passes. The identity is a
// comparable struct (query name + the match's cached 64-bit edge-set hash)
// with equality-checked buckets, replacing the old query+"\x1f"+Signature()
// string concatenation, so admitting a match allocates no strings and a
// hash collision can never suppress a genuine match.
//
// Seen entries are evicted by maybeSweep against the minimum shard watermark
// the merger has observed through progress marks. A shard emits a duplicate
// of match M while its watermark is at most End(M)+retention+slack (M's
// edges must still be live and admissible there), and the merge channel
// preserves each shard's send order, so once every shard's observed
// watermark has passed that bound, all possible duplicates of M have already
// been received — the entry is safe to drop regardless of how far any
// mailbox lags. With unbounded retention nothing ever expires and entries
// are kept forever.
type dedup struct {
	mu        sync.Mutex
	seen      map[matchKey][]dedupEntry // bucketed by (query, edge-set hash)
	count     int                       // total entries across all buckets
	perQuery  map[string]uint64         // deduplicated matches per query
	unique    uint64
	dups      uint64
	retention time.Duration // grows with registered query windows
	slack     time.Duration
	sweepAt   int
}

// matchKey is the comparable bucket key of one match identity.
type matchKey struct {
	query string
	hash  uint64
}

// dedupEntry pins one admitted match for exact equality checks and records
// its span end for watermark-based eviction.
type dedupEntry struct {
	m   *match.Match
	end graph.Timestamp
}

func newDedup(retention, slack time.Duration) *dedup {
	return &dedup{
		seen:      make(map[matchKey][]dedupEntry),
		perQuery:  make(map[string]uint64),
		retention: retention,
		slack:     slack,
		sweepAt:   4096,
	}
}

// noteWindow widens the eviction horizon to cover a registered query window
// (the per-shard engines widen their retention the same way).
func (d *dedup) noteWindow(w time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.retention != 0 && w > d.retention {
		d.retention = w
	}
}

// admit reports whether ev is the first occurrence of its match.
func (d *dedup) admit(ev core.MatchEvent) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := matchKey{query: ev.Query, hash: ev.Match.EdgeSetHash()}
	bucket := d.seen[k]
	for _, entry := range bucket {
		if entry.m.SameEdges(ev.Match) {
			d.dups++
			return false
		}
	}
	d.seen[k] = append(bucket, dedupEntry{m: ev.Match, end: ev.Match.Span.End})
	d.count++
	d.unique++
	d.perQuery[ev.Query]++
	return true
}

// maybeSweep evicts entries whose matches can no longer be rediscovered,
// given the minimum watermark the merger has observed across all shards.
// Cheap to call often: it only scans once the map has grown past a
// threshold.
func (d *dedup) maybeSweep(minShardWM graph.Timestamp) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count < d.sweepAt {
		return
	}
	if d.retention <= 0 {
		d.sweepAt = d.count * 2
		return
	}
	horizon := minShardWM - graph.Timestamp(d.retention+d.slack)
	for k, bucket := range d.seen {
		kept := bucket[:0]
		for _, entry := range bucket {
			if entry.end >= horizon {
				kept = append(kept, entry)
			}
		}
		d.count -= len(bucket) - len(kept)
		if len(kept) == 0 {
			delete(d.seen, k)
		} else {
			d.seen[k] = kept
		}
	}
	d.sweepAt = d.count*2 + 4096
}

// stats returns the deduplication counters: unique matches passed through,
// duplicates suppressed, and unique matches per query (a copy).
func (d *dedup) stats() (unique, dups uint64, perQuery map[string]uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	perQuery = make(map[string]uint64, len(d.perQuery))
	for q, n := range d.perQuery {
		perQuery[q] = n
	}
	return d.unique, d.dups, perQuery
}
