package shard

import (
	"testing"

	"github.com/streamworks/streamworks/internal/testutil/leakcheck"
)

// TestMain gates the package on goroutine hygiene: every worker, merger and
// subscription goroutine must be gone once Close has returned, so a leak
// here means the sharded drain protocol regressed.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
