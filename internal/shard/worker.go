package shard

import (
	"context"
	"sync"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/query"
)

// msgKind discriminates mailbox messages.
type msgKind uint8

const (
	msgEdge msgKind = iota
	msgAdvance
	msgCtrl
)

// ctrlOp discriminates control requests served in-band by the worker loop so
// they serialize with edge processing.
type ctrlOp uint8

const (
	opRegister ctrlOp = iota
	opUnregister
	opMetrics
	// opFlush is a pure barrier: by the time the worker answers, every
	// message enqueued before it has been processed and every match those
	// messages produced has been sent to the merge channel.
	opFlush
)

// message is one mailbox entry: an edge, a watermark advance, or a control
// request.
type message struct {
	kind msgKind
	edge graph.StreamEdge
	ts   graph.Timestamp
	ctrl *ctrlReq
	// enqNS is the wall-clock enqueue time, stamped by the router only when
	// observability is enabled (zero otherwise); the worker subtracts it on
	// dequeue to measure mailbox wait.
	enqNS int64
}

// ctrlReq is a synchronous control request; the worker answers on reply.
type ctrlReq struct {
	op    ctrlOp
	query *query.Graph
	opts  []core.RegistrationOption
	name  string
	reply chan ctrlResp
}

type ctrlResp struct {
	err     error
	name    string // assigned registration name (register)
	metrics core.Metrics
}

// shardEvent is one entry on the shared merge channel: either a match event
// or a progress mark announcing how far the shard's watermark has advanced.
// Because a channel preserves each sender's order, a mark guarantees the
// merger has already received every event this shard emitted before reaching
// that watermark — the property the deduplicator's eviction relies on.
type shardEvent struct {
	ev   core.MatchEvent
	mark bool
	id   int             // sending shard (marks only)
	ts   graph.Timestamp // shard watermark (marks only)
	// flush, when non-nil, is a barrier sentinel injected by Flush after
	// every worker acknowledged its mailbox was drained: the merger closes
	// it, proving every event sent before the sentinel has been delivered.
	flush chan struct{}
}

// markEvery is the number of processed edges between progress marks.
const markEvery = 256

// worker owns one shard: a core.Engine, the goroutine that drives it, and
// the mailbox feeding it. The engine is only touched by the worker goroutine
// while running; when stopped, the front-end calls it directly.
type worker struct {
	id  int
	eng *core.Engine

	in   chan message
	out  chan<- shardEvent
	done sync.WaitGroup

	// sinkAttached records that the engine-level match sink forwarding to
	// the merge channel has been registered (once, on first start).
	sinkAttached bool

	// Observability handles, resolved at construction when enabled (all nil
	// otherwise): the shared clock, the worker-registry mailbox-wait
	// histogram, and the shared tracer. The histogram lives in the same
	// per-worker registry as the worker engine's segments, so one fold
	// covers both.
	obsClock   obs.Clock
	obsMailbox *obs.Histogram
	obsTracer  *obs.Tracer
}

// start spawns the worker goroutine with a fresh mailbox. Matches are pushed
// onto the merge channel by an engine-level sink at the moment of emission —
// the core MatchSink path threaded up through the merger — rather than by
// collecting ProcessEdge return slices.
func (w *worker) start(buffer int, out chan<- shardEvent) {
	w.in = make(chan message, buffer)
	w.out = out
	if !w.sinkAttached {
		w.sinkAttached = true
		w.eng.Subscribe("", core.MatchSinkFunc(func(ev core.MatchEvent) {
			w.out <- shardEvent{ev: ev}
		}))
	}
	w.done.Add(1)
	go w.loop()
}

// stop closes the mailbox; the worker drains it and exits.
func (w *worker) stop() { close(w.in) }

// wait blocks until the worker goroutine has exited.
func (w *worker) wait() { w.done.Wait() }

func (w *worker) loop() {
	defer w.done.Done()
	edges := 0
	for msg := range w.in {
		switch msg.kind {
		case msgEdge:
			if msg.enqNS != 0 && w.obsMailbox != nil {
				wait := w.obsClock.Now() - msg.enqNS
				w.obsMailbox.Observe(wait)
				if id := uint64(msg.edge.Edge.ID); w.obsTracer.SampleEdge(id) {
					w.obsTracer.Record(obs.TraceEvent{
						Stage:    obs.StageMailbox,
						Shard:    int32(w.id),
						EdgeID:   id,
						StreamTS: int64(msg.edge.Edge.Timestamp),
						DurNS:    wait,
					})
				}
			}
			// Complete matches reach the merge channel through the engine
			// sink registered in start; the scratch-backed return slice is
			// deliberately unused.
			w.eng.ProcessEdge(msg.edge)
			if edges++; edges%markEvery == 0 {
				w.sendMark()
			}
		case msgAdvance:
			w.eng.Advance(msg.ts)
			w.sendMark()
		case msgCtrl:
			msg.ctrl.reply <- w.serveCtrl(msg.ctrl)
		}
	}
	w.sendMark()
}

func (w *worker) sendMark() {
	w.out <- shardEvent{mark: true, id: w.id, ts: w.eng.Graph().Watermark()}
}

func (w *worker) serveCtrl(req *ctrlReq) ctrlResp {
	switch req.op {
	case opRegister:
		reg, err := w.eng.RegisterQuery(req.query, req.opts...)
		if err != nil {
			return ctrlResp{err: err}
		}
		return ctrlResp{name: reg.Name()}
	case opUnregister:
		return ctrlResp{err: w.eng.UnregisterQuery(req.name)}
	case opMetrics:
		return ctrlResp{metrics: w.eng.Metrics()}
	case opFlush:
		return ctrlResp{}
	}
	return ctrlResp{}
}

// flush blocks until the worker has processed every message enqueued
// before the call. Matches produced by those messages were pushed onto the
// merge channel by the worker goroutine before it answered, so they are
// ordered before anything the caller subsequently sends on that channel.
func (w *worker) flush() {
	w.roundTrip(&ctrlReq{op: opFlush})
}

// roundTrip enqueues a control request and waits for the worker's answer,
// serializing it behind the edges already in the mailbox.
func (w *worker) roundTrip(req *ctrlReq) ctrlResp {
	req.reply = make(chan ctrlResp, 1)
	w.in <- message{kind: msgCtrl, ctrl: req}
	return <-req.reply
}

// enqueueEdge delivers an edge to the shard (blocking when the mailbox is
// full — backpressure to the stream driver). A context with cancellation
// bounds the wait; context.Background() takes the uninstrumented fast path.
func (w *worker) enqueueEdge(ctx context.Context, se graph.StreamEdge) error {
	msg := message{kind: msgEdge, edge: se}
	if w.obsClock != nil {
		msg.enqNS = w.obsClock.Now()
	}
	if d := ctx.Done(); d != nil {
		select {
		case w.in <- msg:
			return nil
		case <-d:
			return ctx.Err()
		}
	}
	w.in <- msg
	return nil
}

// enqueueAdvance delivers a watermark broadcast.
func (w *worker) enqueueAdvance(ts graph.Timestamp) {
	w.in <- message{kind: msgAdvance, ts: ts}
}

// register adds a query on this shard, via the mailbox when running.
func (w *worker) register(running bool, q *query.Graph, opts []core.RegistrationOption) (string, error) {
	if running {
		resp := w.roundTrip(&ctrlReq{op: opRegister, query: q, opts: opts})
		return resp.name, resp.err
	}
	reg, err := w.eng.RegisterQuery(q, opts...)
	if err != nil {
		return "", err
	}
	return reg.Name(), nil
}

// unregister removes a query on this shard, via the mailbox when running.
func (w *worker) unregister(running bool, name string) error {
	if running {
		return w.roundTrip(&ctrlReq{op: opUnregister, name: name}).err
	}
	return w.eng.UnregisterQuery(name)
}

// metrics snapshots the shard engine's counters, via the mailbox when
// running so the read serializes with edge processing.
func (w *worker) metrics(running bool) core.Metrics {
	if running {
		return w.roundTrip(&ctrlReq{op: opMetrics}).metrics
	}
	return w.eng.Metrics()
}
