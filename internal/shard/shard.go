// Package shard parallelizes the StreamWorks continuous query engine across
// hash partitions of the vertex space, the scale-out layer the single-threaded
// core.Engine explicitly defers to ("shard streams across engines for
// parallelism").
//
// A ShardedEngine owns N independent core.Engine workers, each with its own
// goroutine and input mailbox. Incoming stream edges are hash-partitioned by
// endpoint vertex: an edge is delivered to the shard owning its source and the
// shard owning its target (one delivery when both endpoints hash to the same
// shard), so every shard holds the complete neighborhood of each vertex it
// owns. Query registrations are replicated to every shard; for a query with a
// hub vertex — a pattern vertex incident to every pattern edge — each match is
// fully contained in the neighborhood of the data vertex bound to the hub, so
// endpoint routing alone guarantees the shard owning that vertex discovers it.
// Queries without a hub vertex (e.g. the paper's Fig. 2 article/keyword/
// location pattern) are handled by broadcasting edges of the types they
// constrain to every shard, trading redundant work for correctness; since
// that only helps from registration onwards, hub-free queries must be
// registered before streaming begins (ErrBroadcastRequired otherwise).
//
// Because routing replicates edges, the same complete match can surface on
// more than one shard. All shard outputs are funneled onto one merge channel
// and deduplicated by canonical match key (query name plus the sorted
// pattern-edge → data-edge binding), so replication never double-reports.
// Deduplicated matches are pushed to per-query subscriptions (Subscribe), the
// primary consumption surface; Events remains as a single-channel adapter for
// callers that prefer pulling from a channel. Stream time is coordinated by
// broadcasting watermark advances to shards that did not receive an edge,
// keeping window expiry and SJ-tree pruning moving on idle partitions.
//
// Sources feeding a ShardedEngine must populate endpoint metadata
// (types/attributes) on every stream edge, not only on a vertex's first
// appearance: shards see disjoint subsets of the stream, so "first
// appearance" is a per-shard notion. All generators in internal/gen do this.
//
// Adaptive re-planning (core.WithAdaptive, replicated like every other
// registration option) runs independently on each shard: a shard re-plans
// against its own partition's statistics on its own worker goroutine, so no
// cross-shard coordination or stop-the-world pause is needed. The merged
// match set stays canonical through two dedup layers — each shard's engine
// deduplicates its own emissions across swap boundaries (the new tree
// inherits the emitted-set), and the merger deduplicates identical matches
// across shards exactly as it does for replicated edges. Metrics report the
// maximum plan generation and the summed replan count across shards.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/mqo"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/stream"
)

// Config controls the sharded front-end.
type Config struct {
	// Shards is the number of engine workers. Values below 1 are treated
	// as 1.
	Shards int
	// Engine is the configuration applied to every per-shard core.Engine.
	Engine core.Config
	// Buffer is the per-shard mailbox depth in messages (default 1024).
	Buffer int
	// AdvanceEvery is the granularity of watermark broadcasts: shards that
	// did not receive an edge are sent an explicit time advance whenever the
	// maximum observed timestamp has moved at least this far since the last
	// broadcast. Zero picks a default (an eighth of the retention window, or
	// one second when retention is unbounded); negative disables broadcasts.
	// Broadcast latency only delays expiry and pruning on idle shards — the
	// match set is unaffected because match admission checks the temporal
	// span directly.
	AdvanceEvery time.Duration
}

// DefaultConfig returns a four-way sharding of core.DefaultConfig engines.
func DefaultConfig() Config {
	return Config{Shards: 4, Engine: core.DefaultConfig(), Buffer: 1024}
}

// ShardedEngine drives N core.Engine shards behind the same
// register/process/metrics surface as a single engine. Control methods
// (RegisterQuery, UnregisterQuery, Process, Advance, Metrics, Start, Close)
// must be called from one goroutine — the stream driver — while Subscribe,
// Events consumption and Subscription.Close are safe from any goroutine; Run
// wires both sides together.
type ShardedEngine struct {
	cfg     Config
	workers []*worker
	router  *router
	dedup   *dedup

	running    bool
	closed     bool            // Close was called; the engine is permanently stopped
	out        chan shardEvent // workers → merger (events + progress marks)
	mergerDone chan struct{}

	// subMu guards the push-subscription registry and the lazy Events
	// channel; it is taken briefly by Subscribe/unsubscribe and by the
	// merger per delivered event.
	subMu   sync.Mutex
	subs    []*Subscription
	subSeq  int
	drained bool                 // merger has exited (or the engine closed unstarted)
	events  chan core.MatchEvent // lazy compatibility adapter, see Events

	seenTS        bool
	maxTS         graph.Timestamp
	lastBroadcast graph.Timestamp
	edgesRouted   uint64
	advanceEvery  time.Duration
	// retention is the effective per-shard retention: the configured value,
	// widened by pre-ingest registrations exactly as core.extendRetention
	// widens it on each shard. Zero means unbounded.
	retention time.Duration

	// Observability: each worker engine carries a private registry (derived
	// via obs.Config.PerWorker, written only by its goroutine); obsReg is
	// the front-end's own registry for the merger-side dispatch segment.
	// ObsSnapshot folds all of them. All nil when disabled.
	obsReg      *obs.Registry
	obsClock    obs.Clock
	obsDispatch *obs.Histogram
}

// Subscription is one per-query push subscription on a ShardedEngine. The
// registered sink receives every deduplicated match admitted for its query
// (all queries when the filter is empty), invoked on the merger goroutine:
// sinks must not block, or they stall merging and eventually ingestion.
// Done is closed when no further matches can arrive — the engine closed and
// drained, or the subscription was closed.
type Subscription struct {
	s     *ShardedEngine
	id    int
	query string
	sink  core.MatchSink
	done  chan struct{}
	once  sync.Once
}

// Done reports delivery end: closed after the final OnMatch call.
func (sub *Subscription) Done() <-chan struct{} { return sub.done }

// Close cancels the subscription. Matches already being dispatched may still
// be delivered concurrently with Close; after Done is closed none are. Safe
// to call from any goroutine, more than once.
func (sub *Subscription) Close() { sub.s.unsubscribe(sub) }

func (sub *Subscription) finish() {
	sub.once.Do(func() { close(sub.done) })
}

// Subscribe registers a push subscription for one query (queryFilter names
// it) or all queries (queryFilter ""). It may be called from any goroutine, before
// or after Start; matches emitted before Subscribe returns are not
// redelivered. Subscribing on a closed (or drained) engine returns a
// subscription whose Done is already closed.
func (s *ShardedEngine) Subscribe(queryFilter string, sink core.MatchSink) *Subscription {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	s.subSeq++
	sub := &Subscription{s: s, id: s.subSeq, query: queryFilter, sink: sink, done: make(chan struct{})}
	if s.drained {
		sub.finish()
		return sub
	}
	subs := make([]*Subscription, 0, len(s.subs)+1)
	subs = append(subs, s.subs...)
	s.subs = append(subs, sub)
	return sub
}

// unsubscribe removes sub from the registry and marks it finished.
func (s *ShardedEngine) unsubscribe(sub *Subscription) {
	s.subMu.Lock()
	for i, o := range s.subs {
		if o.id == sub.id {
			subs := make([]*Subscription, 0, len(s.subs)-1)
			subs = append(subs, s.subs[:i]...)
			s.subs = append(subs, s.subs[i+1:]...)
			break
		}
	}
	s.subMu.Unlock()
	sub.finish()
}

// finishSubscriptions marks the subscription registry drained: every live
// subscription's Done closes and the Events adapter (if materialized) is
// closed. Called by the merger on exit, and by Close on an engine that was
// never started.
func (s *ShardedEngine) finishSubscriptions() {
	s.subMu.Lock()
	s.drained = true
	subs := s.subs
	s.subs = nil
	events := s.events
	s.subMu.Unlock()
	for _, sub := range subs {
		sub.finish()
	}
	if events != nil {
		close(events)
	}
}

// New constructs a stopped ShardedEngine. cfg may be nil for DefaultConfig.
func New(cfg *Config) *ShardedEngine {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Buffer <= 0 {
		c.Buffer = 1024
	}
	adv := c.AdvanceEvery
	if adv == 0 {
		if c.Engine.Retention > 0 {
			adv = c.Engine.Retention / 8
		} else {
			adv = time.Second
		}
	}
	s := &ShardedEngine{
		cfg:          c,
		router:       newRouter(c.Shards),
		dedup:        newDedup(c.Engine.Retention, c.Engine.Slack),
		advanceEvery: adv,
		retention:    c.Engine.Retention,
	}
	// Normalize the obs config once so the clock and tracer are shared,
	// then derive a private registry per worker; the front-end keeps its
	// own registry for the merger-side dispatch segment.
	obsCfg := c.Engine.Obs.Normalized()
	if obsCfg.Enabled {
		s.obsReg = obs.NewRegistry()
		s.obsClock = obsCfg.Clock
		s.obsDispatch = s.obsReg.Segment(obs.SegDispatch)
	}
	for i := 0; i < c.Shards; i++ {
		engCfg := c.Engine
		engCfg.Obs = obsCfg.PerWorker(i)
		w := &worker{id: i, eng: core.New(&engCfg)}
		if obsCfg.Enabled {
			w.obsClock = engCfg.Obs.Clock
			w.obsMailbox = engCfg.Obs.Registry.Segment(obs.SegShardMailbox)
			w.obsTracer = engCfg.Obs.Tracer
		}
		s.workers = append(s.workers, w)
	}
	return s
}

// ObsEnabled reports whether the engine was built with observability on.
func (s *ShardedEngine) ObsEnabled() bool { return s.obsReg != nil }

// ObsSnapshot folds the front-end registry and every worker's private
// registry into one logical snapshot — the observability analogue of
// Metrics' counter aggregation. Registries are written atomically, so unlike
// the control methods this is safe from any goroutine.
func (s *ShardedEngine) ObsSnapshot() obs.Snapshot {
	if s.obsReg == nil {
		return obs.Snapshot{}
	}
	snaps := make([]obs.Snapshot, 0, len(s.workers)+1)
	snaps = append(snaps, s.obsReg.Snapshot())
	for _, w := range s.workers {
		if r := w.eng.ObsRegistry(); r != nil {
			snaps = append(snaps, r.Snapshot())
		}
	}
	return obs.Merge(snaps...)
}

// Shards returns the number of shard workers.
func (s *ShardedEngine) Shards() int { return len(s.workers) }

// Registration errors specific to the sharded front-end.
var (
	// ErrNotRunning is returned by Process when Start has not been called.
	ErrNotRunning = errors.New("shard: engine not running (call Start)")
	// ErrClosed is returned by Process, RegisterQuery and UnregisterQuery
	// after Close: the mailboxes are gone, so accepting the call would mean
	// either silently dropping work or sending on a stopped mailbox. Close
	// is permanent (and idempotent); build a new engine to stream again.
	ErrClosed = errors.New("shard: engine closed")
	// ErrBroadcastRequired is returned when a query without a hub vertex is
	// registered after edges have been routed: its edge types were
	// endpoint-partitioned rather than broadcast up to that point, so shards
	// lack the history the query needs and matches spanning pre-registration
	// edges would be silently missed. Register hub-free queries before
	// streaming.
	ErrBroadcastRequired = errors.New("shard: hub-free query must be registered before edges are streamed")
)

// RegisterQuery replicates a continuous query registration onto every shard.
// It can be called before Start or mid-stream; mid-stream the registration
// takes effect on each shard after the edges already queued in its mailbox,
// so matches completing exactly at the registration instant may differ from a
// single-engine run. Cross-shard consistency is checked up front: a
// mid-stream query needing more retention than is in force fails with
// ErrRetentionTooSmall before touching any shard (matching core.Engine
// semantics), and a mid-stream hub-free query fails with
// ErrBroadcastRequired since its edge types were not being broadcast while
// earlier edges were partitioned. Per-shard failures (duplicate name, plan
// errors) roll back the shards that had accepted. Note that a WithCallback
// option fires per shard before deduplication; use Events or the Run
// callback for deduplicated matches.
func (s *ShardedEngine) RegisterQuery(q *query.Graph, opts ...core.RegistrationOption) error {
	if q == nil {
		return core.ErrNilQuery
	}
	if s.closed {
		return ErrClosed
	}
	if s.edgesRouted > 0 && len(s.workers) > 1 && !hasHubVertex(q) {
		return fmt.Errorf("%w: %q", ErrBroadcastRequired, q.Name())
	}
	widens := q.Window() > 0 && s.retention != 0 && q.Window() > s.retention
	if widens && s.edgesRouted > 0 {
		return fmt.Errorf("shard: registering %q: %w: query window %s exceeds retention %s mid-stream",
			q.Name(), core.ErrRetentionTooSmall, q.Window(), s.retention)
	}
	done := make([]string, 0, len(s.workers))
	var regErr error
	for _, w := range s.workers {
		name, err := w.register(s.running, q, opts)
		if err != nil {
			regErr = fmt.Errorf("shard %d: %w", w.id, err)
			break
		}
		done = append(done, name)
	}
	if regErr != nil {
		for i, name := range done {
			// Roll back the shards that accepted the registration.
			_ = s.workers[i].unregister(s.running, name)
		}
		return regErr
	}
	if widens {
		s.retention = q.Window()
	}
	s.router.add(q)
	s.dedup.noteWindow(q.Window())
	return nil
}

// UnregisterQuery removes a registration from every shard. Partial matches
// held for the query are dropped with it; in-flight duplicates already queued
// on the merge channel remain deduplicated.
func (s *ShardedEngine) UnregisterQuery(name string) error {
	if s.closed {
		return ErrClosed
	}
	var firstErr error
	for _, w := range s.workers {
		if err := w.unregister(s.running, name); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", w.id, err)
		}
	}
	if firstErr == nil {
		s.router.remove(name)
	}
	return firstErr
}

// Start spawns the shard workers and the deduplicating merger. It is a no-op
// when already running or after Close.
func (s *ShardedEngine) Start() {
	if s.running || s.closed {
		return
	}
	s.out = make(chan shardEvent, 64*len(s.workers))
	s.mergerDone = make(chan struct{})
	for _, w := range s.workers {
		w.start(s.cfg.Buffer, s.out)
	}
	go s.merge()
	s.running = true
}

// merge funnels all shard outputs into the deduplicated push subscriptions
// (and the Events adapter when materialized). It exits when Close closes the
// merge channel after all workers have drained, then finishes every
// subscription. Progress marks from the shards drive dedup-key eviction: the
// minimum observed shard watermark bounds, via channel FIFO order, which
// duplicates can still be in flight.
func (s *ShardedEngine) merge() {
	defer close(s.mergerDone)
	defer s.finishSubscriptions()
	marks := make([]graph.Timestamp, len(s.workers))
	marked := make([]bool, len(s.workers))
	for se := range s.out {
		if se.flush != nil {
			close(se.flush)
			continue
		}
		if se.mark {
			if se.ts > marks[se.id] || !marked[se.id] {
				marks[se.id], marked[se.id] = se.ts, true
			}
			if min, ok := minMark(marks, marked); ok {
				s.dedup.maybeSweep(min)
			}
			continue
		}
		if s.dedup.admit(se.ev) {
			s.deliver(se.ev)
		}
	}
}

// deliver pushes one admitted match to every matching subscription and to
// the Events adapter. The registry is copy-on-write: the snapshot is taken
// under subMu, the sink calls happen outside it, so Subscribe never blocks
// behind a slow sink. A subscription closed concurrently with delivery may
// receive this final event.
func (s *ShardedEngine) deliver(ev core.MatchEvent) {
	if s.obsDispatch != nil && ev.EmittedWallNS != 0 {
		// Dispatch latency: core emission → deduplicated delivery. Covers
		// the merge channel plus fan-out, the two hops a match takes after
		// the SJ-tree surfaces it.
		s.obsDispatch.Observe(s.obsClock.Now() - ev.EmittedWallNS)
	}
	s.subMu.Lock()
	subs := s.subs
	events := s.events
	s.subMu.Unlock()
	for _, sub := range subs {
		if sub.query == "" || sub.query == ev.Query {
			sub.sink.OnMatch(ev)
		}
	}
	if events != nil {
		events <- ev
	}
}

// minMark returns the minimum shard watermark once every shard has reported
// at least one progress mark.
func minMark(marks []graph.Timestamp, marked []bool) (graph.Timestamp, bool) {
	min := graph.Timestamp(0)
	for i, ts := range marks {
		if !marked[i] {
			return 0, false
		}
		if i == 0 || ts < min {
			min = ts
		}
	}
	return min, true
}

// Events returns the deduplicated match stream as a channel — the
// compatibility adapter over the push-subscription surface. The channel is
// materialized on first call and receives matches admitted from then on
// (subscribe before processing edges to see everything); it is closed once
// the engine closes and drains. Consumers must drain it or ingestion
// eventually blocks — push subscriptions (Subscribe) do not have that
// failure mode and are the preferred surface.
func (s *ShardedEngine) Events() <-chan core.MatchEvent {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.events == nil {
		s.events = make(chan core.MatchEvent, 256)
		if s.drained {
			close(s.events)
		}
	}
	return s.events
}

// Process routes one stream edge to the shards that need it and broadcasts a
// watermark advance to the others when stream time has moved far enough.
// Edges must be supplied in non-decreasing timestamp order up to the
// configured slack, as with a single engine. It returns ErrNotRunning when
// called before Start and ErrClosed after Close.
func (s *ShardedEngine) Process(se graph.StreamEdge) error {
	return s.ProcessContext(context.Background(), se)
}

// ProcessContext is Process with a cancellation bound on the blocking
// mailbox hand-off: when the shards cannot accept the edge before ctx is
// done, it returns the context error. Cancellation can interrupt a
// multi-shard delivery part-way; the edge may then have reached a subset of
// its shards, exactly as if the stream had been cut at that point.
func (s *ShardedEngine) ProcessContext(ctx context.Context, se graph.StreamEdge) error {
	if s.closed {
		return ErrClosed
	}
	if !s.running {
		return ErrNotRunning
	}
	dests := s.router.route(se)
	for i, d := range dests {
		if err := s.workers[d].enqueueEdge(ctx, se); err != nil {
			if i > 0 {
				// At least one shard already consumed the edge under
				// endpoint-partition routing: the stream is no longer
				// pristine, so the hub-free registration guard
				// (edgesRouted > 0) must still engage.
				s.edgesRouted++
			}
			return err
		}
	}
	s.edgesRouted++
	ts := se.Edge.Timestamp
	if !s.seenTS || ts > s.maxTS {
		s.maxTS = ts
		if !s.seenTS {
			s.seenTS = true
			s.lastBroadcast = ts
		}
	}
	if len(dests) == len(s.workers) {
		// A broadcast edge carries stream time to every shard by itself.
		s.lastBroadcast = s.maxTS
	} else if s.advanceEvery >= 0 && s.maxTS.Sub(s.lastBroadcast) >= s.advanceEvery {
		for _, w := range s.workers {
			if w.id != dests[0] && (len(dests) < 2 || w.id != dests[1]) {
				w.enqueueAdvance(s.maxTS)
			}
		}
		s.lastBroadcast = s.maxTS
	}
	return nil
}

// Advance broadcasts an explicit stream-time signal to every shard, exactly
// like Dynamic.AdvanceTo on a single engine (the watermark trails ts by the
// configured slack). It always reaches every shard — even when ts does not
// exceed the maximum routed timestamp — because edge-time broadcasts are
// throttled by AdvanceEvery and individual shards may lag well behind it;
// per-shard watermarks are monotone, so a stale signal is harmless.
func (s *ShardedEngine) Advance(ts graph.Timestamp) {
	if s.closed {
		return
	}
	if !s.seenTS || ts > s.maxTS {
		s.maxTS, s.seenTS = ts, true
	}
	if ts > s.lastBroadcast {
		s.lastBroadcast = ts
	}
	for _, w := range s.workers {
		if s.running {
			w.enqueueAdvance(ts)
		} else {
			w.eng.Advance(ts)
		}
	}
}

// Flush is a full-pipeline barrier: it returns only after every edge,
// advance and control message enqueued before the call has been processed
// by its shard AND every match those messages produced has been delivered
// through the merger to subscriptions. Recovery uses it to know that
// replaying the log tail has surfaced every re-derivable match before it
// compares them against the checkpointed emitted-set. Like Process, Flush
// must not race with Close.
//
// Ordering argument: each worker's flush acknowledgment happens after its
// earlier merge-channel sends completed (same goroutine), and this
// goroutine's sentinel send happens after every acknowledgment was
// received, so channel FIFO delivers the sentinel to the merger after all
// of those events; the merger closes the sentinel only when it reaches it.
func (s *ShardedEngine) Flush() error {
	if s.closed {
		return ErrClosed
	}
	if !s.running {
		return ErrNotRunning
	}
	for _, w := range s.workers {
		w.flush()
	}
	done := make(chan struct{})
	s.out <- shardEvent{flush: done}
	<-done
	return nil
}

// Close flushes the mailboxes, stops the workers and the merger, finishes
// every subscription (Done closes after the final delivery) and closes the
// Events adapter. Close is idempotent and permanent: a closed engine cannot
// be restarted, Process returns ErrClosed, and a second Close returns
// immediately.
func (s *ShardedEngine) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if !s.running {
		// Never started: there is no merger to finish the subscriptions.
		s.finishSubscriptions()
		return
	}
	for _, w := range s.workers {
		w.stop()
	}
	for _, w := range s.workers {
		w.wait()
	}
	close(s.out)
	<-s.mergerDone
	s.running = false
}

// Run streams src through the sharded engine: it starts the workers, routes
// every edge, and invokes fn (when non-nil) for each deduplicated match
// event via a push subscription. It returns the number of deduplicated
// matches. The engine is closed when the source is exhausted.
func (s *ShardedEngine) Run(src stream.Source, fn func(core.MatchEvent)) (int, error) {
	s.Start()
	total := 0
	sub := s.Subscribe("", core.MatchSinkFunc(func(ev core.MatchEvent) {
		total++
		if fn != nil {
			fn(ev)
		}
	}))
	defer sub.Close()
	var procErr error
	_, err := stream.Replay(src, func(se graph.StreamEdge) bool {
		procErr = s.Process(se)
		return procErr == nil
	})
	s.Close()
	<-sub.Done()
	if procErr != nil {
		return total, procErr
	}
	return total, err
}

// PerShardMetrics snapshots every shard engine's counters in shard order.
// Like all control methods it must be called from the driver goroutine.
// Per-shard counters include replicated edges, and per-shard match counts are
// pre-deduplication; serving layers expose them so operators can spot skewed
// partitions.
func (s *ShardedEngine) PerShardMetrics() []core.Metrics {
	out := make([]core.Metrics, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.metrics(s.running)
	}
	return out
}

// Metrics aggregates per-shard counters into the single-engine Metrics
// shape. Work counters (EdgesProcessed, LocalSearches, live graph sizes, …)
// are sums over shards and therefore include replicated edges; MatchesEmitted
// and per-query Matches are post-deduplication counts as reported on Events.
// Registrations reflects the front-end view (each active query counted once).
func (s *ShardedEngine) Metrics() core.Metrics {
	snaps := s.PerShardMetrics()
	var m core.Metrics
	perQueryIdx := map[string]int{}
	for _, sm := range snaps {
		m.EdgesProcessed += sm.EdgesProcessed
		m.EdgesDropped += sm.EdgesDropped
		m.LocalSearches += sm.LocalSearches
		m.PartialMatches += sm.PartialMatches
		m.PartialsPruned += sm.PartialsPruned
		m.PruneRuns += sm.PruneRuns
		m.LiveEdges += sm.LiveEdges
		m.LiveVertices += sm.LiveVertices
		m.ExpiredEdges += sm.ExpiredEdges
		m.Replans += sm.Replans
		m.ReplanChecks += sm.ReplanChecks
		m.ReplanEdgesReplayed += sm.ReplanEdgesReplayed
		for _, qm := range sm.Queries {
			idx, ok := perQueryIdx[qm.Name]
			if !ok {
				idx = len(m.Queries)
				perQueryIdx[qm.Name] = idx
				m.Queries = append(m.Queries, core.QueryMetrics{Name: qm.Name, Strategy: qm.Strategy})
			}
			m.Queries[idx].PartialMatches += qm.PartialMatches
			m.Queries[idx].LocalSearches += qm.LocalSearches
			// Each shard re-plans against its own partition's statistics, so
			// plan state can legitimately differ per shard: report the
			// furthest generation (with that shard's tree shape) and the
			// total swap count. Match-set canonicality does not depend on
			// the shards agreeing — every shard deduplicates its own
			// emissions across swap boundaries and the merger deduplicates
			// across shards.
			m.Queries[idx].Adaptive = m.Queries[idx].Adaptive || qm.Adaptive
			m.Queries[idx].Replans += qm.Replans
			if qm.PlanGeneration > m.Queries[idx].PlanGeneration {
				m.Queries[idx].PlanGeneration = qm.PlanGeneration
				m.Queries[idx].PlanNodes = qm.PlanNodes
				m.Queries[idx].PlanDepth = qm.PlanDepth
				m.Queries[idx].Strategy = qm.Strategy
				// Per-node statistics and the replan audit describe one
				// concrete tree; summing across shards would mix plans, so
				// report the shard with the newest plan generation.
				m.Queries[idx].Nodes = qm.Nodes
				m.Queries[idx].LastReplanAudit = qm.LastReplanAudit
			}
		}
	}
	if len(snaps) > 0 {
		m.Registrations = snaps[0].Registrations
	}
	// Shared-plan DAG snapshots merge by canonical node signature: every
	// shard builds the same DAG structure for the same registrations, so the
	// per-node counters sum meaningfully (mqo.MergeStats).
	var dagSnaps []mqo.Stats
	for _, sm := range snaps {
		if sm.MQO != nil {
			dagSnaps = append(dagSnaps, *sm.MQO)
		}
	}
	if len(dagSnaps) > 0 {
		merged := mqo.MergeStats(dagSnaps...)
		m.MQO = &merged
	}
	unique, _, perQuery := s.dedup.stats()
	m.MatchesEmitted = unique
	for i := range m.Queries {
		m.Queries[i].Matches = perQuery[m.Queries[i].Name]
	}
	return m
}
