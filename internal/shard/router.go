package shard

import (
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

// queryRouting is the routing analysis of one registered query.
type queryRouting struct {
	// hubFree is true when no pattern vertex is incident to every pattern
	// edge. Matches of such queries are not contained in any single vertex
	// neighborhood, so endpoint partitioning alone could split them across
	// shards; their constrained edge types must be broadcast instead.
	hubFree bool
	// types are the pattern edge types of a hub-free query ("" = wildcard).
	types []string
}

// router decides which shards receive each stream edge.
//
// The base policy is endpoint hashing: an edge goes to the shards owning its
// source and target vertices, which keeps every vertex's full neighborhood on
// one shard. Matches of queries with a hub vertex (one incident to every
// pattern edge — all the paper's Fig. 3 cyber patterns qualify) always lie
// inside the neighborhood of the data vertex bound to the hub, so endpoint
// routing finds them. For hub-free queries the router falls back to
// broadcasting the edge types the query constrains (or everything, if it has
// a wildcard edge) to all shards.
type router struct {
	shards int
	// wildcard counts registered hub-free queries with an untyped pattern
	// edge; while positive, every edge is broadcast.
	wildcard int
	// broadcastTypes refcounts edge types required by hub-free queries.
	broadcastTypes map[string]int
	// byQuery remembers each registration's analysis for removal.
	byQuery map[string]queryRouting
	// all is the cached [0..shards) destination list used for broadcasts.
	all []int
	// pair is scratch space for endpoint-routed destinations, reused across
	// route calls (the router is driven by a single goroutine); callers must
	// not retain the returned slice past the next call.
	pair [2]int
}

func newRouter(shards int) *router {
	r := &router{
		shards:         shards,
		broadcastTypes: make(map[string]int),
		byQuery:        make(map[string]queryRouting),
		all:            make([]int, shards),
	}
	for i := range r.all {
		r.all[i] = i
	}
	return r
}

// hasHubVertex reports whether some pattern vertex touches every pattern
// edge of q.
func hasHubVertex(q *query.Graph) bool {
	edges := q.Edges()
	for _, v := range q.Vertices() {
		hub := true
		for i := range edges {
			if edges[i].Source != v.ID && edges[i].Target != v.ID {
				hub = false
				break
			}
		}
		if hub {
			return true
		}
	}
	return len(edges) == 0
}

// add records a registered query's routing requirements.
func (r *router) add(q *query.Graph) {
	qr := queryRouting{hubFree: !hasHubVertex(q)}
	if qr.hubFree {
		for _, qe := range q.Edges() {
			qr.types = append(qr.types, qe.Type)
			if qe.Type == "" {
				r.wildcard++
			} else {
				r.broadcastTypes[qe.Type]++
			}
		}
	}
	r.byQuery[q.Name()] = qr
}

// remove drops a query's routing requirements after unregistration.
func (r *router) remove(name string) {
	qr, ok := r.byQuery[name]
	if !ok {
		return
	}
	delete(r.byQuery, name)
	for _, t := range qr.types {
		if t == "" {
			r.wildcard--
			continue
		}
		if r.broadcastTypes[t]--; r.broadcastTypes[t] <= 0 {
			delete(r.broadcastTypes, t)
		}
	}
}

// route returns the destination shards for a stream edge. The returned
// slice is only valid until the next call.
func (r *router) route(se graph.StreamEdge) []int {
	if r.wildcard > 0 || r.broadcastTypes[se.Edge.Type] > 0 {
		return r.all
	}
	a := ownerOf(se.Edge.Source, r.shards)
	b := ownerOf(se.Edge.Target, r.shards)
	r.pair[0] = a
	if a == b {
		return r.pair[:1]
	}
	r.pair[1] = b
	return r.pair[:2]
}

// FNV-1a constants (hash/fnv), inlined so the per-edge hot path avoids the
// interface-boxed hasher allocation.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// ownerOf hashes a vertex ID onto a shard with allocation-free FNV-1a over
// the ID's little-endian bytes, decorrelating the generators' sequential
// vertex IDs so partitions stay balanced.
func ownerOf(v graph.VertexID, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnvOffset64
	x := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return int(h % uint64(shards))
}
