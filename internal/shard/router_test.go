package shard

import (
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/query"
)

func starQuery() *query.Graph {
	// "center" touches every edge: hub query, endpoint routing suffices.
	return query.NewBuilder("star").
		Window(time.Minute).
		Vertex("center", "Host").
		Vertex("a", "Host").
		Vertex("b", "Host").
		Edge("a", "center", "flow").
		Edge("center", "b", "dns").
		MustBuild()
}

func rectangleQuery() *query.Graph {
	// Two articles joined through a keyword and a location: no vertex
	// touches all four edges.
	return query.NewBuilder("rectangle").
		Window(time.Minute).
		Vertex("a1", "Article").
		Vertex("a2", "Article").
		Vertex("k", "Keyword").
		Vertex("l", "Location").
		Edge("a1", "k", "mentions").
		Edge("a2", "k", "mentions").
		Edge("a1", "l", "located_in").
		Edge("a2", "l", "located_in").
		MustBuild()
}

func TestHasHubVertex(t *testing.T) {
	if !hasHubVertex(starQuery()) {
		t.Fatalf("star query should have a hub vertex")
	}
	if hasHubVertex(rectangleQuery()) {
		t.Fatalf("rectangle query must be hub-free")
	}
}

func TestRouterEndpointRouting(t *testing.T) {
	r := newRouter(4)
	r.add(starQuery())
	se := graph.StreamEdge{Edge: graph.Edge{Source: 10, Target: 20, Type: "flow"}}
	dests := r.route(se)
	if len(dests) == 0 || len(dests) > 2 {
		t.Fatalf("endpoint routing produced %v", dests)
	}
	want := map[int]bool{ownerOf(10, 4): true, ownerOf(20, 4): true}
	for _, d := range dests {
		if !want[d] {
			t.Fatalf("edge routed to non-owner shard %d (%v)", d, dests)
		}
	}
	// Both endpoints on the same shard: exactly one delivery.
	same := graph.StreamEdge{Edge: graph.Edge{Source: 10, Target: 10, Type: "flow"}}
	if got := r.route(same); len(got) != 1 {
		t.Fatalf("same-owner edge routed to %v", got)
	}
}

func TestRouterBroadcastFallbackForHubFreeQueries(t *testing.T) {
	r := newRouter(4)
	r.add(starQuery())
	r.add(rectangleQuery())
	mention := graph.StreamEdge{Edge: graph.Edge{Source: 1, Target: 2, Type: "mentions"}}
	if got := r.route(mention); len(got) != 4 {
		t.Fatalf("hub-free query type not broadcast: %v", got)
	}
	// Types the hub-free query does not constrain still use endpoint routing.
	flow := graph.StreamEdge{Edge: graph.Edge{Source: 1, Target: 2, Type: "flow"}}
	if got := r.route(flow); len(got) > 2 {
		t.Fatalf("unrelated type broadcast: %v", got)
	}
	// Unregistering the hub-free query reverts to endpoint routing.
	r.remove("rectangle")
	if got := r.route(mention); len(got) > 2 {
		t.Fatalf("broadcast not reverted after unregister: %v", got)
	}
}

func TestRouterWildcardEdgeBroadcastsEverything(t *testing.T) {
	r := newRouter(3)
	wild := query.NewBuilder("wild").
		Vertex("a", "Host").
		Vertex("b", "Host").
		Vertex("c", "Host").
		Edge("a", "b", "flow").
		Edge("b", "c", "flow").
		Edge("c", "a", ""). // wildcard closes the triangle: hub-free
		MustBuild()
	r.add(wild)
	se := graph.StreamEdge{Edge: graph.Edge{Source: 5, Target: 9, Type: "anything"}}
	if got := r.route(se); len(got) != 3 {
		t.Fatalf("wildcard hub-free query must broadcast all types: %v", got)
	}
	r.remove("wild")
	if got := r.route(se); len(got) > 2 {
		t.Fatalf("wildcard broadcast not reverted: %v", got)
	}
}

func TestOwnerOfIsStableAndBalanced(t *testing.T) {
	counts := make([]int, 4)
	for v := graph.VertexID(0); v < 4000; v++ {
		o := ownerOf(v, 4)
		if o != ownerOf(v, 4) {
			t.Fatalf("ownerOf not deterministic")
		}
		counts[o]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("shard %d owns %d of 4000 sequential IDs: unbalanced %v", i, c, counts)
		}
	}
}

func matchEvent(q string, de graph.EdgeID, ts graph.Timestamp) core.MatchEvent {
	m := match.New()
	m.BindEdge(0, de, ts)
	return core.MatchEvent{Query: q, Match: m, DetectedAt: ts}
}

func TestDedupSuppressesReplicatedMatches(t *testing.T) {
	d := newDedup(time.Minute, 0)
	ev := matchEvent("q", 1, 100)
	if !d.admit(ev) {
		t.Fatalf("first occurrence rejected")
	}
	if d.admit(ev) {
		t.Fatalf("duplicate admitted")
	}
	// Same edge binding under a different query is a different match.
	if !d.admit(matchEvent("other", 1, 100)) {
		t.Fatalf("distinct query deduplicated")
	}
	unique, dups, perQuery := d.stats()
	if unique != 2 || dups != 1 {
		t.Fatalf("stats = %d unique, %d dups", unique, dups)
	}
	if perQuery["q"] != 1 || perQuery["other"] != 1 {
		t.Fatalf("per-query stats = %v", perQuery)
	}
}

func TestDedupSweepEvictsExpiredKeys(t *testing.T) {
	d := newDedup(100*time.Nanosecond, 0)
	d.sweepAt = 8
	for i := 0; i < 64; i++ {
		d.admit(matchEvent("q", graph.EdgeID(i+1), graph.Timestamp(i*100)))
	}
	// Every shard is at watermark 5000: matches ending before the horizon
	// 5000-100=4900 can no longer be rediscovered and are evicted; the 15
	// matches ending at 4900..6300 survive.
	d.maybeSweep(5000)
	if len(d.seen) != 15 {
		t.Fatalf("sweep left %d keys, want 15", len(d.seen))
	}
	recent := matchEvent("q", 64, 6300)
	if _, ok := d.seen[matchKey{query: recent.Query, hash: recent.Match.EdgeSetHash()}]; !ok {
		t.Fatalf("recent key evicted")
	}
	// A shard watermark far in the past must hold everything back.
	e := newDedup(100*time.Nanosecond, 0)
	e.sweepAt = 8
	for i := 0; i < 64; i++ {
		e.admit(matchEvent("q", graph.EdgeID(i+1), graph.Timestamp(i*100)))
	}
	e.maybeSweep(0)
	if len(e.seen) != 64 {
		t.Fatalf("sweep evicted keys still rediscoverable by a lagging shard: %d of 64 left", len(e.seen))
	}
	// Unbounded retention must never evict (matches can always recur).
	u := newDedup(0, 0)
	u.sweepAt = 8
	for i := 0; i < 64; i++ {
		u.admit(matchEvent("q", graph.EdgeID(i+1), graph.Timestamp(i*100)))
	}
	u.maybeSweep(1 << 40)
	if len(u.seen) != 64 {
		t.Fatalf("unbounded dedup evicted keys: %d of 64 left", len(u.seen))
	}
}
