package shard_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/shard"
)

func flowEdge(id int, src, dst graph.VertexID, ts graph.Timestamp) graph.StreamEdge {
	return graph.StreamEdge{
		Edge:       graph.Edge{ID: graph.EdgeID(id), Source: src, Target: dst, Type: gen.EdgeFlow, Timestamp: ts},
		SourceType: gen.TypeHost, TargetType: gen.TypeHost,
	}
}

// TestCloseIdempotentAndLateProcess is the regression test for engine
// shutdown misuse: Close twice (and concurrently with nothing running) must
// be a no-op, and Process/RegisterQuery after Close must fail with the
// ErrClosed sentinel instead of risking a send on a stopped mailbox.
func TestCloseIdempotentAndLateProcess(t *testing.T) {
	cfg := shard.DefaultConfig()
	cfg.Shards = 2
	s := shard.New(&cfg)
	if err := s.RegisterQuery(gen.SmurfQuery(time.Minute)); err != nil {
		t.Fatal(err)
	}
	s.Start()
	base := graph.TimestampFromTime(time.Unix(5000, 0))
	for i := 0; i < 16; i++ {
		if err := s.Process(flowEdge(i+1, graph.VertexID(i), graph.VertexID(i+100), base.Add(time.Duration(i)*time.Millisecond))); err != nil {
			t.Fatalf("Process(%d): %v", i, err)
		}
	}

	s.Close()
	s.Close() // double-Close: must return immediately, no panic, no hang

	if err := s.Process(flowEdge(99, 1, 2, base.Add(time.Second))); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("Process after Close: %v, want ErrClosed", err)
	}
	if err := s.ProcessContext(context.Background(), flowEdge(100, 1, 2, base.Add(time.Second))); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("ProcessContext after Close: %v, want ErrClosed", err)
	}
	if err := s.RegisterQuery(gen.WormQuery(time.Minute)); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("RegisterQuery after Close: %v, want ErrClosed", err)
	}
	if err := s.UnregisterQuery("smurf-ddos"); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("UnregisterQuery after Close: %v, want ErrClosed", err)
	}
	// Start after Close is a no-op: the engine stays closed.
	s.Start()
	if err := s.Process(flowEdge(101, 1, 2, base.Add(time.Second))); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("Process after Close+Start: %v, want ErrClosed", err)
	}
	// Metrics remain readable on a closed engine.
	if m := s.Metrics(); m.EdgesProcessed == 0 {
		t.Fatal("metrics lost after Close")
	}
}

// TestCloseBeforeStartFinishesSubscriptions checks Close on a never-started
// engine: idempotent, and every subscription's Done closes so waiters are
// released.
func TestCloseBeforeStartFinishesSubscriptions(t *testing.T) {
	s := shard.New(nil)
	sub := s.Subscribe("", core.MatchSinkFunc(func(core.MatchEvent) {}))
	s.Close()
	select {
	case <-sub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("subscription not finished by Close on an unstarted engine")
	}
	s.Close()
	// A subscription opened on a closed engine is born finished.
	late := s.Subscribe("", core.MatchSinkFunc(func(core.MatchEvent) {}))
	select {
	case <-late.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("late subscription not born finished")
	}
	// The Events adapter on a closed engine is a closed channel.
	if _, open := <-s.Events(); open {
		t.Fatal("Events on a closed engine delivered a value")
	}
}

// TestSubscriptionFiltersAndCancel checks the shard-level push subscription
// surface directly: per-query filtering and mid-stream cancellation.
func TestSubscriptionFiltersAndCancel(t *testing.T) {
	w := smallNetflow(time.Minute, 37)
	cfg := shard.DefaultConfig()
	cfg.Engine = w.Engine
	s := shard.New(&cfg)
	for _, q := range w.Queries {
		if err := s.RegisterQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	smurf := make(gen.MatchSet)
	smurfSub := s.Subscribe("smurf-ddos", core.MatchSinkFunc(func(ev core.MatchEvent) {
		if ev.Query != "smurf-ddos" {
			t.Errorf("filtered subscription delivered %q", ev.Query)
		}
		smurf.Add(ev)
	}))
	all := make(gen.MatchSet)
	allSub := s.Subscribe("", core.MatchSinkFunc(func(ev core.MatchEvent) { all.Add(ev) }))
	canceled := s.Subscribe("", core.MatchSinkFunc(func(core.MatchEvent) {}))
	canceled.Close()
	<-canceled.Done()
	canceled.Close() // idempotent

	for _, se := range w.Edges {
		if err := s.Process(se); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	<-smurfSub.Done()
	<-allSub.Done()

	if len(all) == 0 || len(smurf) == 0 {
		t.Fatalf("degenerate workload: %d all / %d smurf matches", len(all), len(smurf))
	}
	want := make(gen.MatchSet)
	for k := range all {
		if strings.HasPrefix(k, "smurf-ddos\x1f") {
			want[k] = struct{}{}
		}
	}
	if !smurf.Equal(want) {
		t.Fatalf("filtered subscription saw %d matches, full stream holds %d for the query", len(smurf), len(want))
	}
}
