package isomorphism

import (
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/query"
)

// buildDataGraph constructs a small multi-relational graph:
//
//	article1 -mentions-> kw "politics"
//	article1 -located-> loc "NYC"
//	article2 -mentions-> kw "politics"
//	article2 -located-> loc "NYC"
//	article3 -mentions-> kw "sports"
//	host1 -icmp_echo_req-> host2, host2 -icmp_echo_reply-> host3
func buildDataGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(graph.WithAutoVertices())
	add := func(v graph.Vertex) { g.AddVertex(v) }
	add(graph.Vertex{ID: 1, Type: "Article"})
	add(graph.Vertex{ID: 2, Type: "Article"})
	add(graph.Vertex{ID: 3, Type: "Article"})
	add(graph.Vertex{ID: 10, Type: "Keyword", Attrs: graph.Attributes{"label": graph.String("politics")}})
	add(graph.Vertex{ID: 11, Type: "Keyword", Attrs: graph.Attributes{"label": graph.String("sports")}})
	add(graph.Vertex{ID: 20, Type: "Location", Attrs: graph.Attributes{"name": graph.String("NYC")}})
	add(graph.Vertex{ID: 30, Type: "Host"})
	add(graph.Vertex{ID: 31, Type: "Host"})
	add(graph.Vertex{ID: 32, Type: "Host"})
	edges := []graph.Edge{
		{ID: 100, Source: 1, Target: 10, Type: "mentions", Timestamp: 10},
		{ID: 101, Source: 1, Target: 20, Type: "located", Timestamp: 11},
		{ID: 102, Source: 2, Target: 10, Type: "mentions", Timestamp: 12},
		{ID: 103, Source: 2, Target: 20, Type: "located", Timestamp: 13},
		{ID: 104, Source: 3, Target: 11, Type: "mentions", Timestamp: 14},
		{ID: 200, Source: 30, Target: 31, Type: "icmp_echo_req", Timestamp: 20},
		{ID: 201, Source: 31, Target: 32, Type: "icmp_echo_reply", Timestamp: 21},
	}
	for _, e := range edges {
		if _, err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func articlePairQuery(t *testing.T) *query.Graph {
	t.Helper()
	return query.NewBuilder("pair").
		Vertex("a1", "Article").
		Vertex("a2", "Article").
		Vertex("k", "Keyword").
		Edge("a1", "k", "mentions").
		Edge("a2", "k", "mentions").
		MustBuild()
}

func TestFindAllSingleEdge(t *testing.T) {
	g := buildDataGraph(t)
	q := query.NewBuilder("m").
		Vertex("a", "Article").Vertex("k", "Keyword").
		Edge("a", "k", "mentions").
		MustBuild()
	ms := New(q).FindAll(g, q.EdgeIDs(), 0)
	if len(ms) != 3 {
		t.Fatalf("expected 3 mentions matches, got %d", len(ms))
	}
	for _, m := range ms {
		if !m.Complete(q) {
			t.Fatalf("incomplete match returned: %v", m)
		}
	}
}

func TestFindAllTwoArticlesSameKeyword(t *testing.T) {
	g := buildDataGraph(t)
	q := articlePairQuery(t)
	ms := New(q).FindAll(g, q.EdgeIDs(), 0)
	// Articles 1 and 2 both mention keyword 10; the two orderings (a1=1,a2=2)
	// and (a1=2,a2=1) are distinct isomorphisms.
	if len(ms) != 2 {
		t.Fatalf("expected 2 matches, got %d: %v", len(ms), ms)
	}
	for _, m := range ms {
		v1, _ := m.Vertex(0)
		v2, _ := m.Vertex(1)
		if v1 == v2 {
			t.Fatalf("injectivity violated: %v", m)
		}
	}
}

func TestFindAllRespectsVertexPredicates(t *testing.T) {
	g := buildDataGraph(t)
	q := query.NewBuilder("sports").
		Vertex("a", "Article").
		Vertex("k", "Keyword", query.Eq("label", graph.String("sports"))).
		Edge("a", "k", "mentions").
		MustBuild()
	ms := New(q).FindAll(g, q.EdgeIDs(), 0)
	if len(ms) != 1 {
		t.Fatalf("expected 1 sports mention, got %d", len(ms))
	}
	k, _ := ms[0].Vertex(1)
	if k != 11 {
		t.Fatalf("wrong keyword bound: %v", ms[0])
	}
}

func TestFindAllRespectsEdgeTypeAndLimit(t *testing.T) {
	g := buildDataGraph(t)
	q := query.NewBuilder("any").
		Vertex("x", "").Vertex("y", "").
		Edge("x", "y", "").
		MustBuild()
	all := New(q).FindAll(g, q.EdgeIDs(), 0)
	if len(all) != 7 {
		t.Fatalf("untyped single-edge query should match all 7 edges, got %d", len(all))
	}
	limited := New(q).FindAll(g, q.EdgeIDs(), 3)
	if len(limited) != 3 {
		t.Fatalf("limit not respected: %d", len(limited))
	}
}

func TestFindAllPathQuery(t *testing.T) {
	g := buildDataGraph(t)
	q := query.NewBuilder("smurfish").
		Vertex("a", "Host").Vertex("b", "Host").Vertex("c", "Host").
		Edge("a", "b", "icmp_echo_req").
		Edge("b", "c", "icmp_echo_reply").
		MustBuild()
	ms := New(q).FindAll(g, q.EdgeIDs(), 0)
	if len(ms) != 1 {
		t.Fatalf("expected exactly one request/reply path, got %d", len(ms))
	}
	a, _ := ms[0].Vertex(0)
	b, _ := ms[0].Vertex(1)
	c, _ := ms[0].Vertex(2)
	if a != 30 || b != 31 || c != 32 {
		t.Fatalf("wrong binding: %v", ms[0])
	}
	if ms[0].Span.Start != 20 || ms[0].Span.End != 21 {
		t.Fatalf("span wrong: %v", ms[0].Span)
	}
}

func TestFindAllUndirectedEdge(t *testing.T) {
	g := buildDataGraph(t)
	q := query.NewBuilder("undirected").
		Vertex("k", "Keyword").Vertex("a", "Article").
		UndirectedEdge("k", "a", "mentions").
		MustBuild()
	ms := New(q).FindAll(g, q.EdgeIDs(), 0)
	if len(ms) != 3 {
		t.Fatalf("undirected single-edge query should match 3 edges, got %d", len(ms))
	}
	for _, m := range ms {
		k, _ := m.Vertex(0)
		if kv, _ := g.Vertex(k); kv.Type != "Keyword" {
			t.Fatalf("keyword variable bound to %v", kv)
		}
	}
}

func TestFindAllNoMatchesWrongTypes(t *testing.T) {
	g := buildDataGraph(t)
	q := query.NewBuilder("none").
		Vertex("a", "Person").Vertex("b", "Person").
		Edge("a", "b", "knows").
		MustBuild()
	if ms := New(q).FindAll(g, q.EdgeIDs(), 0); len(ms) != 0 {
		t.Fatalf("expected no matches, got %d", len(ms))
	}
}

func TestFindAllEmptyInputs(t *testing.T) {
	q := articlePairQuery(t)
	m := New(q)
	if got := m.FindAll(nil, q.EdgeIDs(), 0); got != nil {
		t.Fatalf("nil graph should produce nil")
	}
	if got := m.FindAll(graph.New(), nil, 0); got != nil {
		t.Fatalf("empty edge set should produce nil")
	}
	if m.Query() != q {
		t.Fatalf("Query() accessor broken")
	}
}

func TestLocalSearchSeededByNewEdge(t *testing.T) {
	g := buildDataGraph(t)
	q := articlePairQuery(t)
	m := New(q)
	// Seed with the data edge article2-mentions->politics matched to pattern
	// edge 0 (a1 -mentions-> k): expect exactly one completion with a2=1.
	seed, _ := g.Edge(102)
	ms := m.LocalSearch(g, q.EdgeIDs(), 0, seed)
	if len(ms) != 1 {
		t.Fatalf("expected 1 local match, got %d: %v", len(ms), ms)
	}
	a1, _ := ms[0].Vertex(0)
	a2, _ := ms[0].Vertex(1)
	if a1 != 2 || a2 != 1 {
		t.Fatalf("wrong local binding: %v", ms[0])
	}
	if !ms[0].UsesDataEdge(102) {
		t.Fatalf("seed edge not part of the match")
	}
}

func TestLocalSearchSubsetOnly(t *testing.T) {
	g := buildDataGraph(t)
	q := query.NewBuilder("newsFull").
		Vertex("a1", "Article").
		Vertex("a2", "Article").
		Vertex("k", "Keyword").
		Vertex("l", "Location").
		Edge("a1", "k", "mentions").
		Edge("a2", "k", "mentions").
		Edge("a1", "l", "located").
		Edge("a2", "l", "located").
		MustBuild()
	m := New(q)
	// Search only the primitive {edge0} seeded by data edge 100.
	seed, _ := g.Edge(100)
	ms := m.LocalSearch(g, []query.EdgeID{0}, 0, seed)
	if len(ms) != 1 {
		t.Fatalf("expected 1 primitive match, got %d", len(ms))
	}
	if ms[0].NumEdges() != 1 || ms[0].NumVertices() != 2 {
		t.Fatalf("primitive match has wrong shape: %v", ms[0])
	}
}

func TestLocalSearchSeedMismatch(t *testing.T) {
	g := buildDataGraph(t)
	q := articlePairQuery(t)
	m := New(q)
	// Seeding pattern edge 0 (mentions) with a "located" data edge must fail.
	seed, _ := g.Edge(101)
	if ms := m.LocalSearch(g, q.EdgeIDs(), 0, seed); len(ms) != 0 {
		t.Fatalf("mismatched seed should produce no matches, got %d", len(ms))
	}
	// Seeding an edge outside the requested subset must fail.
	if ms := m.LocalSearch(g, []query.EdgeID{1}, 0, seed); ms != nil {
		t.Fatalf("seed edge outside subset should return nil")
	}
	if ms := m.LocalSearch(g, q.EdgeIDs(), 0, nil); ms != nil {
		t.Fatalf("nil seed edge should return nil")
	}
}

func TestLocalSearchUndirectedSeedBothOrientations(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	g.AddVertex(graph.Vertex{ID: 1, Type: "Host"})
	g.AddVertex(graph.Vertex{ID: 2, Type: "Host"})
	if _, err := g.AddEdge(graph.Edge{ID: 1, Source: 1, Target: 2, Type: "peer", Timestamp: 1}); err != nil {
		t.Fatal(err)
	}
	q := query.NewBuilder("p").
		Vertex("x", "Host").Vertex("y", "Host").
		UndirectedEdge("x", "y", "peer").
		MustBuild()
	seed, _ := g.Edge(1)
	ms := New(q).LocalSearch(g, q.EdgeIDs(), 0, seed)
	if len(ms) != 2 {
		t.Fatalf("undirected seed should match in both orientations, got %d", len(ms))
	}
}

func TestSelfLoopHandling(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	g.AddVertex(graph.Vertex{ID: 1, Type: "Host"})
	g.AddVertex(graph.Vertex{ID: 2, Type: "Host"})
	if _, err := g.AddEdge(graph.Edge{ID: 1, Source: 1, Target: 1, Type: "beacon", Timestamp: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(graph.Edge{ID: 2, Source: 1, Target: 2, Type: "beacon", Timestamp: 2}); err != nil {
		t.Fatal(err)
	}
	// Self-loop pattern: only the self-loop data edge matches.
	loop := query.NewBuilder("loop").
		Vertex("x", "Host").
		Edge("x", "x", "beacon").
		MustBuild()
	ms := New(loop).FindAll(g, loop.EdgeIDs(), 0)
	if len(ms) != 1 {
		t.Fatalf("self-loop pattern matched %d edges, want 1", len(ms))
	}
	// Non-loop pattern must not match the self-loop edge.
	pair := query.NewBuilder("pair").
		Vertex("x", "Host").Vertex("y", "Host").
		Edge("x", "y", "beacon").
		MustBuild()
	ms = New(pair).FindAll(g, pair.EdgeIDs(), 0)
	if len(ms) != 1 {
		t.Fatalf("two-vertex pattern matched %d edges, want 1 (the non-loop)", len(ms))
	}
}

func TestMultigraphParallelEdges(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	g.AddVertex(graph.Vertex{ID: 1, Type: "Host"})
	g.AddVertex(graph.Vertex{ID: 2, Type: "Host"})
	for i := 0; i < 3; i++ {
		if _, err := g.AddEdge(graph.Edge{ID: graph.EdgeID(i), Source: 1, Target: 2, Type: "flow", Timestamp: graph.Timestamp(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Pattern with two parallel flow edges between the same pair: each match
	// must use two distinct data edges (ordered pairs of distinct edges: 3*2).
	q := query.NewBuilder("double").
		Vertex("x", "Host").Vertex("y", "Host").
		Edge("x", "y", "flow").
		Edge("x", "y", "flow").
		MustBuild()
	ms := New(q).FindAll(g, q.EdgeIDs(), 0)
	if len(ms) != 6 {
		t.Fatalf("expected 6 ordered pairs of distinct parallel edges, got %d", len(ms))
	}
	for _, m := range ms {
		e0, _ := m.Edge(0)
		e1, _ := m.Edge(1)
		if e0 == e1 {
			t.Fatalf("data edge reused for two pattern edges: %v", m)
		}
	}
}

func TestFindAllEdgePredicates(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	g.AddVertex(graph.Vertex{ID: 1, Type: "Host"})
	g.AddVertex(graph.Vertex{ID: 2, Type: "Host"})
	g.AddEdge(graph.Edge{ID: 1, Source: 1, Target: 2, Type: "flow", Timestamp: 1,
		Attrs: graph.Attributes{"bytes": graph.Int(100)}})
	g.AddEdge(graph.Edge{ID: 2, Source: 1, Target: 2, Type: "flow", Timestamp: 2,
		Attrs: graph.Attributes{"bytes": graph.Int(9000)}})
	q := query.NewBuilder("big").
		Vertex("x", "Host").Vertex("y", "Host").
		Edge("x", "y", "flow", query.Gt("bytes", graph.Int(1000))).
		MustBuild()
	ms := New(q).FindAll(g, q.EdgeIDs(), 0)
	if len(ms) != 1 {
		t.Fatalf("edge predicate not applied: %d matches", len(ms))
	}
	e, _ := ms[0].Edge(0)
	if e != 2 {
		t.Fatalf("wrong edge selected: %v", ms[0])
	}
}

// Incremental-vs-offline sanity check on a triangle query: the union of
// local searches seeded by each edge (restricted to matches whose latest
// edge is the seed) equals the offline result set.
func TestLocalSearchCoversOfflineResults(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	for i := 1; i <= 5; i++ {
		g.AddVertex(graph.Vertex{ID: graph.VertexID(i), Type: "Host"})
	}
	edges := []graph.Edge{
		{ID: 1, Source: 1, Target: 2, Type: "flow", Timestamp: 1},
		{ID: 2, Source: 2, Target: 3, Type: "flow", Timestamp: 2},
		{ID: 3, Source: 3, Target: 1, Type: "flow", Timestamp: 3},
		{ID: 4, Source: 3, Target: 4, Type: "flow", Timestamp: 4},
		{ID: 5, Source: 4, Target: 2, Type: "flow", Timestamp: 5},
		{ID: 6, Source: 2, Target: 5, Type: "flow", Timestamp: 6},
	}
	for _, e := range edges {
		if _, err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	q := query.NewBuilder("tri").
		Vertex("a", "Host").Vertex("b", "Host").Vertex("c", "Host").
		Edge("a", "b", "flow").Edge("b", "c", "flow").Edge("c", "a", "flow").
		MustBuild()
	m := New(q)
	offline := m.FindAll(g, q.EdgeIDs(), 0)

	found := make(map[string]bool)
	for _, e := range edges {
		de, _ := g.Edge(e.ID)
		for qe := 0; qe < q.NumEdges(); qe++ {
			for _, lm := range m.LocalSearch(g, q.EdgeIDs(), query.EdgeID(qe), de) {
				found[lm.Signature()] = true
			}
		}
	}
	for _, om := range offline {
		if !found[om.Signature()] {
			t.Fatalf("offline match %v not discoverable by any local search", om)
		}
	}
}

func TestMatchWithinWindowIntegration(t *testing.T) {
	g := buildDataGraph(t)
	q := query.NewBuilder("smurfish").
		Vertex("a", "Host").Vertex("b", "Host").Vertex("c", "Host").
		Edge("a", "b", "icmp_echo_req").
		Edge("b", "c", "icmp_echo_reply").
		MustBuild()
	ms := New(q).FindAll(g, q.EdgeIDs(), 0)
	if len(ms) != 1 {
		t.Fatalf("setup failed")
	}
	var m0 *match.Match = ms[0]
	if !m0.WithinWindow(2 * time.Nanosecond) {
		t.Fatalf("span of 1ns should fit a 2ns window")
	}
	if m0.WithinWindow(1 * time.Nanosecond) {
		t.Fatalf("span of 1ns should not fit a 1ns window (strict)")
	}
}
