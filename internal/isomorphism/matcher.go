// Package isomorphism implements subgraph-isomorphism search over the
// multi-relational property graph.
//
// Two entry points are provided:
//
//   - FindAll performs an offline, exhaustive search of a (sub)pattern in a
//     static graph. The continuous engine uses it for ground truth and the
//     recompute baseline re-runs it for every arriving batch.
//   - LocalSearch is the paper's "local search" primitive (§4.1): given a new
//     data edge that matches one pattern edge of a small search primitive, it
//     enumerates all matches of that primitive containing the new edge, never
//     looking further than the primitive's own radius from the seed edge.
//
// The matcher is a VF2-style backtracking search over a connected ordering
// of the pattern edges: each step binds one pattern edge to a data edge
// incident to the already-matched region, checking vertex/edge type and
// attribute constraints plus injectivity of the vertex binding. Candidate
// bindings are validated in place against the current partial match before
// anything is allocated — the only allocations on the search path are the
// matches that actually extend, so the per-edge hot path stays off the
// garbage collector. The matcher itself is stateless apart from the query
// and can be shared across goroutines that hold read-only access to the
// data graph.
package isomorphism

import (
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/query"
)

// Matcher runs subgraph isomorphism searches for one query graph.
type Matcher struct {
	q *query.Graph
}

// New returns a matcher for the given query graph.
func New(q *query.Graph) *Matcher { return &Matcher{q: q} }

// Query returns the query graph the matcher was built for.
func (m *Matcher) Query() *query.Graph { return m.q }

// FindAll enumerates matches of the pattern edge subset `edges` (use
// q.EdgeIDs() for the whole query) in g. limit bounds the number of matches
// returned; limit <= 0 means unlimited. Matches are complete with respect to
// the edge subset: every listed pattern edge and every endpoint is bound.
func (m *Matcher) FindAll(g *graph.Graph, edges []query.EdgeID, limit int) []*match.Match {
	if len(edges) == 0 || g == nil {
		return nil
	}
	order := m.ConnectedOrder(edges, edges[0])
	if order == nil {
		return nil
	}
	first := m.q.Edge(order[0])
	var results []*match.Match
	g.Edges(func(de *graph.Edge) bool {
		results = m.seedAndExtend(g, first, de, order, results, limit)
		return limit <= 0 || len(results) < limit
	})
	return results
}

// LocalSearch enumerates matches of the pattern edge subset `edges` that
// bind the pattern edge seedQE to the concrete data edge seedDE. It is the
// per-arriving-edge primitive search of the paper: the traversal only visits
// data edges reachable from the seed within the primitive, so its cost is
// bounded by local neighbourhood size, not graph size.
func (m *Matcher) LocalSearch(g *graph.Graph, edges []query.EdgeID, seedQE query.EdgeID, seedDE *graph.Edge) []*match.Match {
	if m.q.Edge(seedQE) == nil || !containsEdge(edges, seedQE) {
		return nil
	}
	order := m.ConnectedOrder(edges, seedQE)
	return m.LocalSearchInto(nil, g, order, seedDE)
}

// LocalSearchInto is LocalSearch with a precomputed connected order (whose
// first entry is the seed pattern edge — see ConnectedOrder) and an
// append-destination, letting per-registration callers hoist the ordering
// computation out of the per-edge path and reuse one result buffer across
// calls. The matches appended to dst are freshly allocated; only the dst
// backing array is reused.
func (m *Matcher) LocalSearchInto(dst []*match.Match, g *graph.Graph, order []query.EdgeID, seedDE *graph.Edge) []*match.Match {
	if g == nil || seedDE == nil || len(order) == 0 {
		return dst
	}
	qe := m.q.Edge(order[0])
	if qe == nil {
		return dst
	}
	return m.seedAndExtend(g, qe, seedDE, order, dst, 0)
}

// seedAndExtend tries both admissible orientations of binding pattern edge
// qe to data edge de as a fresh single-edge match and extends each seed
// through the rest of the order.
func (m *Matcher) seedAndExtend(g *graph.Graph, qe *query.Edge, de *graph.Edge, order []query.EdgeID, acc []*match.Match, limit int) []*match.Match {
	if !qe.MatchesEdge(de) {
		return acc
	}
	if seed := m.trySeed(g, qe, de, false); seed != nil {
		acc = m.extend(g, seed, order, 1, acc, limit)
	}
	if qe.AnyDirection && de.Source != de.Target {
		if limit > 0 && len(acc) >= limit {
			return acc
		}
		if seed := m.trySeed(g, qe, de, true); seed != nil {
			acc = m.extend(g, seed, order, 1, acc, limit)
		}
	}
	return acc
}

// checkEndpoints validates the vertex-level constraints of binding qe to the
// data endpoints (srcID, dstID): endpoint existence, type/attribute
// predicates and self-loop consistency. It allocates nothing.
func (m *Matcher) checkEndpoints(g *graph.Graph, qe *query.Edge, srcID, dstID graph.VertexID) bool {
	// A pattern edge whose endpoints are the same pattern vertex (self
	// loop) requires the data edge to also be a self loop, and vice versa.
	if (qe.Source == qe.Target) != (srcID == dstID) {
		return false
	}
	dsrc, okS := g.Vertex(srcID)
	ddst, okD := g.Vertex(dstID)
	if !okS || !okD {
		return false
	}
	return m.q.Vertex(qe.Source).Matches(dsrc) && m.q.Vertex(qe.Target).Matches(ddst)
}

// trySeed builds the single-edge match binding qe to de in the given
// orientation, or returns nil when the endpoint constraints fail. The
// edge-level constraints (qe.MatchesEdge) are the caller's responsibility.
func (m *Matcher) trySeed(g *graph.Graph, qe *query.Edge, de *graph.Edge, reversed bool) *match.Match {
	srcID, dstID := de.Source, de.Target
	if reversed {
		srcID, dstID = dstID, srcID
	}
	if !m.checkEndpoints(g, qe, srcID, dstID) {
		return nil
	}
	seed := match.NewForQuery(m.q)
	seed.BindVertex(qe.Source, srcID)
	seed.BindVertex(qe.Target, dstID)
	seed.BindEdge(qe.ID, de.ID, de.Timestamp)
	return seed
}

// tryExtend returns a copy of cur extended by binding qe to de in the given
// orientation, or nil when the binding is inconsistent with cur. All checks
// run against cur before the copy is made, so rejected candidates cost no
// allocation.
func (m *Matcher) tryExtend(g *graph.Graph, cur *match.Match, qe *query.Edge, de *graph.Edge, reversed bool) *match.Match {
	srcID, dstID := de.Source, de.Target
	if reversed {
		srcID, dstID = dstID, srcID
	}
	if existing, bound := cur.Edge(qe.ID); bound && existing != de.ID {
		return nil
	}
	if !cur.CanBindVertex(qe.Source, srcID) || !cur.CanBindVertex(qe.Target, dstID) {
		return nil
	}
	if !m.checkEndpoints(g, qe, srcID, dstID) {
		return nil
	}
	next := cur.Clone()
	next.BindVertex(qe.Source, srcID)
	next.BindVertex(qe.Target, dstID)
	next.BindEdge(qe.ID, de.ID, de.Timestamp)
	return next
}

// extend recursively binds order[idx:] given the partial match so far.
func (m *Matcher) extend(g *graph.Graph, cur *match.Match, order []query.EdgeID, idx int, acc []*match.Match, limit int) []*match.Match {
	if limit > 0 && len(acc) >= limit {
		return acc
	}
	if idx == len(order) {
		return append(acc, cur)
	}
	qe := m.q.Edge(order[idx])
	srcBound, haveSrc := cur.Vertex(qe.Source)
	dstBound, haveDst := cur.Vertex(qe.Target)

	consider := func(de *graph.Edge) bool {
		if cur.UsesDataEdge(de.ID) || !qe.MatchesEdge(de) {
			return limit <= 0 || len(acc) < limit
		}
		if next := m.tryExtend(g, cur, qe, de, false); next != nil {
			acc = m.extend(g, next, order, idx+1, acc, limit)
		}
		if qe.AnyDirection && de.Source != de.Target {
			if next := m.tryExtend(g, cur, qe, de, true); next != nil {
				acc = m.extend(g, next, order, idx+1, acc, limit)
			}
		}
		return limit <= 0 || len(acc) < limit
	}

	switch {
	case haveSrc && haveDst:
		for _, de := range g.EdgesBetween(srcBound, dstBound) {
			if !consider(de) {
				return acc
			}
		}
		if qe.AnyDirection {
			for _, de := range g.EdgesBetween(dstBound, srcBound) {
				if !consider(de) {
					return acc
				}
			}
		}
	case haveSrc:
		for _, de := range g.OutEdges(srcBound) {
			if !consider(de) {
				return acc
			}
		}
		if qe.AnyDirection {
			for _, de := range g.InEdges(srcBound) {
				if !consider(de) {
					return acc
				}
			}
		}
	case haveDst:
		for _, de := range g.InEdges(dstBound) {
			if !consider(de) {
				return acc
			}
		}
		if qe.AnyDirection {
			for _, de := range g.OutEdges(dstBound) {
				if !consider(de) {
					return acc
				}
			}
		}
	default:
		// Disconnected ordering; should not happen because ConnectedOrder
		// rejects such subsets.
		g.Edges(func(de *graph.Edge) bool {
			return consider(de)
		})
	}
	return acc
}

// ConnectedOrder returns the pattern edges of the subset in an order where
// every edge after the first shares a pattern vertex with an earlier edge,
// starting at `start`. It returns nil when the subset is not connected or
// start is not part of it. Orders depend only on the pattern, so callers on
// the per-edge path precompute them at registration time and reuse them with
// LocalSearchInto.
func (m *Matcher) ConnectedOrder(edges []query.EdgeID, start query.EdgeID) []query.EdgeID {
	if !containsEdge(edges, start) {
		return nil
	}
	remaining := make(map[query.EdgeID]struct{}, len(edges))
	for _, e := range edges {
		remaining[e] = struct{}{}
	}
	covered := make(map[query.VertexID]struct{})
	order := make([]query.EdgeID, 0, len(edges))

	take := func(id query.EdgeID) {
		e := m.q.Edge(id)
		covered[e.Source] = struct{}{}
		covered[e.Target] = struct{}{}
		order = append(order, id)
		delete(remaining, id)
	}
	take(start)
	for len(remaining) > 0 {
		next := query.EdgeID(-1)
		// Scan the caller's slice order so the expansion order (and hence
		// backtracking behaviour) is deterministic across runs.
		for _, id := range edges {
			if _, pending := remaining[id]; !pending {
				continue
			}
			e := m.q.Edge(id)
			_, srcCovered := covered[e.Source]
			_, dstCovered := covered[e.Target]
			if srcCovered || dstCovered {
				next = id
				break
			}
		}
		if next == -1 {
			return nil // disconnected subset
		}
		take(next)
	}
	return order
}

func containsEdge(edges []query.EdgeID, id query.EdgeID) bool {
	for _, e := range edges {
		if e == id {
			return true
		}
	}
	return false
}
