// Package isomorphism implements subgraph-isomorphism search over the
// multi-relational property graph.
//
// Two entry points are provided:
//
//   - FindAll performs an offline, exhaustive search of a (sub)pattern in a
//     static graph. The continuous engine uses it for ground truth and the
//     recompute baseline re-runs it for every arriving batch.
//   - LocalSearch is the paper's "local search" primitive (§4.1): given a new
//     data edge that matches one pattern edge of a small search primitive, it
//     enumerates all matches of that primitive containing the new edge, never
//     looking further than the primitive's own radius from the seed edge.
//
// The matcher is a VF2-style backtracking search over a connected ordering
// of the pattern edges: each step binds one pattern edge to a data edge
// incident to the already-matched region, checking vertex/edge type and
// attribute constraints plus injectivity of the vertex binding.
package isomorphism

import (
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/query"
)

// Matcher runs subgraph isomorphism searches for one query graph. It is
// stateless apart from the query and can be shared across goroutines that
// hold read-only access to the data graph.
type Matcher struct {
	q *query.Graph
}

// New returns a matcher for the given query graph.
func New(q *query.Graph) *Matcher { return &Matcher{q: q} }

// Query returns the query graph the matcher was built for.
func (m *Matcher) Query() *query.Graph { return m.q }

// FindAll enumerates matches of the pattern edge subset `edges` (use
// q.EdgeIDs() for the whole query) in g. limit bounds the number of matches
// returned; limit <= 0 means unlimited. Matches are complete with respect to
// the edge subset: every listed pattern edge and every endpoint is bound.
func (m *Matcher) FindAll(g *graph.Graph, edges []query.EdgeID, limit int) []*match.Match {
	if len(edges) == 0 || g == nil {
		return nil
	}
	order := m.connectedOrder(edges, edges[0])
	if order == nil {
		return nil
	}
	first := m.q.Edge(order[0])
	var results []*match.Match
	g.Edges(func(de *graph.Edge) bool {
		for _, seed := range m.seedMatches(g, first, de) {
			results = m.extend(g, seed, order, 1, results, limit)
			if limit > 0 && len(results) >= limit {
				return false
			}
		}
		return true
	})
	return results
}

// LocalSearch enumerates matches of the pattern edge subset `edges` that
// bind the pattern edge seedQE to the concrete data edge seedDE. It is the
// per-arriving-edge primitive search of the paper: the traversal only visits
// data edges reachable from the seed within the primitive, so its cost is
// bounded by local neighbourhood size, not graph size.
func (m *Matcher) LocalSearch(g *graph.Graph, edges []query.EdgeID, seedQE query.EdgeID, seedDE *graph.Edge) []*match.Match {
	if g == nil || seedDE == nil {
		return nil
	}
	qe := m.q.Edge(seedQE)
	if qe == nil || !containsEdge(edges, seedQE) {
		return nil
	}
	order := m.connectedOrder(edges, seedQE)
	if order == nil {
		return nil
	}
	var results []*match.Match
	for _, seed := range m.seedMatches(g, qe, seedDE) {
		results = m.extend(g, seed, order, 1, results, 0)
	}
	return results
}

// seedMatches returns the 0, 1 or 2 single-edge matches binding pattern edge
// qe to data edge de (two when the pattern edge is undirected and both
// orientations satisfy the endpoint constraints).
func (m *Matcher) seedMatches(g *graph.Graph, qe *query.Edge, de *graph.Edge) []*match.Match {
	if !qe.MatchesEdge(de) {
		return nil
	}
	var out []*match.Match
	trial := func(reversed bool) {
		srcID, dstID := de.Source, de.Target
		if reversed {
			srcID, dstID = dstID, srcID
		}
		qsrc, qdst := m.q.Vertex(qe.Source), m.q.Vertex(qe.Target)
		dsrc, okS := g.Vertex(srcID)
		ddst, okD := g.Vertex(dstID)
		if !okS || !okD {
			return
		}
		if !qsrc.Matches(dsrc) || !qdst.Matches(ddst) {
			return
		}
		// A pattern edge whose endpoints are the same pattern vertex (self
		// loop) requires the data edge to also be a self loop.
		if qe.Source == qe.Target && srcID != dstID {
			return
		}
		if qe.Source != qe.Target && srcID == dstID {
			return
		}
		out = append(out, match.NewFromEdge(qe.ID, qe.Source, qe.Target, de, reversed))
	}
	trial(false)
	if qe.AnyDirection && de.Source != de.Target {
		trial(true)
	}
	return out
}

// extend recursively binds order[idx:] given the partial match so far.
func (m *Matcher) extend(g *graph.Graph, cur *match.Match, order []query.EdgeID, idx int, acc []*match.Match, limit int) []*match.Match {
	if limit > 0 && len(acc) >= limit {
		return acc
	}
	if idx == len(order) {
		return append(acc, cur)
	}
	qe := m.q.Edge(order[idx])
	for _, cand := range m.candidateBindings(g, cur, qe) {
		next := cur.Join(cand)
		if next == nil {
			continue
		}
		acc = m.extend(g, next, order, idx+1, acc, limit)
		if limit > 0 && len(acc) >= limit {
			return acc
		}
	}
	return acc
}

// candidateBindings enumerates single-edge matches for pattern edge qe that
// are anchored at a data vertex already bound by cur. The connected edge
// ordering guarantees at least one endpoint of qe is bound.
func (m *Matcher) candidateBindings(g *graph.Graph, cur *match.Match, qe *query.Edge) []*match.Match {
	srcBound, haveSrc := cur.Vertex(qe.Source)
	dstBound, haveDst := cur.Vertex(qe.Target)

	var out []*match.Match
	consider := func(de *graph.Edge) {
		if cur.UsesDataEdge(de.ID) {
			return
		}
		for _, seed := range m.seedMatches(g, qe, de) {
			// The seed must agree with the existing endpoint bindings.
			if haveSrc {
				if v, _ := seed.Vertex(qe.Source); v != srcBound {
					continue
				}
			}
			if haveDst {
				if v, _ := seed.Vertex(qe.Target); v != dstBound {
					continue
				}
			}
			out = append(out, seed)
		}
	}

	switch {
	case haveSrc && haveDst:
		for _, de := range g.EdgesBetween(srcBound, dstBound) {
			consider(de)
		}
		if qe.AnyDirection {
			for _, de := range g.EdgesBetween(dstBound, srcBound) {
				consider(de)
			}
		}
	case haveSrc:
		for _, de := range g.OutEdges(srcBound) {
			consider(de)
		}
		if qe.AnyDirection {
			for _, de := range g.InEdges(srcBound) {
				consider(de)
			}
		}
	case haveDst:
		for _, de := range g.InEdges(dstBound) {
			consider(de)
		}
		if qe.AnyDirection {
			for _, de := range g.OutEdges(dstBound) {
				consider(de)
			}
		}
	default:
		// Disconnected ordering; should not happen because connectedOrder
		// rejects such subsets.
		g.Edges(func(de *graph.Edge) bool {
			consider(de)
			return true
		})
	}
	return out
}

// connectedOrder returns the pattern edges of the subset in an order where
// every edge after the first shares a pattern vertex with an earlier edge,
// starting at `start`. It returns nil when the subset is not connected or
// start is not part of it.
func (m *Matcher) connectedOrder(edges []query.EdgeID, start query.EdgeID) []query.EdgeID {
	if !containsEdge(edges, start) {
		return nil
	}
	remaining := make(map[query.EdgeID]struct{}, len(edges))
	for _, e := range edges {
		remaining[e] = struct{}{}
	}
	covered := make(map[query.VertexID]struct{})
	order := make([]query.EdgeID, 0, len(edges))

	take := func(id query.EdgeID) {
		e := m.q.Edge(id)
		covered[e.Source] = struct{}{}
		covered[e.Target] = struct{}{}
		order = append(order, id)
		delete(remaining, id)
	}
	take(start)
	for len(remaining) > 0 {
		next := query.EdgeID(-1)
		// Scan the caller's slice order so the expansion order (and hence
		// backtracking behaviour) is deterministic across runs.
		for _, id := range edges {
			if _, pending := remaining[id]; !pending {
				continue
			}
			e := m.q.Edge(id)
			_, srcCovered := covered[e.Source]
			_, dstCovered := covered[e.Target]
			if srcCovered || dstCovered {
				next = id
				break
			}
		}
		if next == -1 {
			return nil // disconnected subset
		}
		take(next)
	}
	return order
}

func containsEdge(edges []query.EdgeID, id query.EdgeID) bool {
	for _, e := range edges {
		if e == id {
			return true
		}
	}
	return false
}
