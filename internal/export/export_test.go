package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/query"
)

func fixture(t *testing.T) (*graph.Graph, *query.Graph, []core.MatchEvent) {
	t.Helper()
	q := query.NewBuilder("smurf").
		Window(time.Minute).
		Vertex("attacker", "Host").
		Vertex("amplifier", "Host").
		Vertex("victim", "Host").
		Edge("attacker", "amplifier", "icmp_echo_req").
		Edge("amplifier", "victim", "icmp_echo_rep").
		MustBuild()
	e := core.New(nil)
	if _, err := e.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	mk := func(id graph.EdgeID, src, dst graph.VertexID, typ string, ts graph.Timestamp) graph.StreamEdge {
		return graph.StreamEdge{
			Edge:        graph.Edge{ID: id, Source: src, Target: dst, Type: typ, Timestamp: ts},
			SourceType:  "Host",
			TargetType:  "Host",
			SourceAttrs: graph.Attributes{"site": graph.String("hq")},
		}
	}
	var events []core.MatchEvent
	events = append(events, e.ProcessEdge(mk(1, 1, 2, "icmp_echo_req", 100))...)
	events = append(events, e.ProcessEdge(mk(2, 2, 3, "icmp_echo_rep", 200))...)
	if len(events) != 1 {
		t.Fatalf("fixture expected one match, got %d", len(events))
	}
	return e.Graph().Graph(), q, events
}

func TestWriteGraphDOTHighlights(t *testing.T) {
	g, _, events := fixture(t)
	var buf bytes.Buffer
	highlight := []*match.Match{events[0].Match}
	if err := WriteGraphDOT(&buf, g, DOTOptions{Name: "snapshot", Highlight: highlight}); err != nil {
		t.Fatalf("WriteGraphDOT: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph \"snapshot\"") {
		t.Fatalf("missing digraph header:\n%s", out)
	}
	for _, frag := range []string{"v1 ", "v2 ", "v3 ", "icmp_echo_req", "fillcolor=salmon", "color=red"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("DOT output missing %q:\n%s", frag, out)
		}
	}
}

func TestWriteGraphDOTTruncation(t *testing.T) {
	g := graph.New(graph.WithAutoVertices())
	for i := 0; i < 20; i++ {
		if _, err := g.AddEdge(graph.Edge{ID: graph.EdgeID(i + 1), Source: graph.VertexID(i), Target: graph.VertexID(i + 1), Type: "flow"}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteGraphDOT(&buf, g, DOTOptions{MaxVertices: 5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "truncated to 5 vertices") {
		t.Fatalf("truncation comment missing:\n%s", out)
	}
	if strings.Contains(out, "v19 ") {
		t.Fatalf("truncation did not drop high-ID vertices")
	}
	// Default graph name applies when none is supplied.
	if !strings.Contains(out, "digraph \"streamworks\"") {
		t.Fatalf("default name missing")
	}
}

func TestWriteQueryDOT(t *testing.T) {
	_, q, _ := fixture(t)
	var buf bytes.Buffer
	if err := WriteQueryDOT(&buf, q); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"attacker:Host", "amplifier:Host", "icmp_echo_rep"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("query DOT missing %q:\n%s", frag, out)
		}
	}
	// Undirected edges render with dir=none.
	undirected := query.NewBuilder("u").
		Vertex("a", "").Vertex("b", "").
		UndirectedEdge("a", "b", "peer").
		MustBuild()
	buf.Reset()
	if err := WriteQueryDOT(&buf, undirected); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dir=none") {
		t.Fatalf("undirected edge not marked")
	}
}

func TestWritePlanDOT(t *testing.T) {
	_, q, _ := fixture(t)
	plan, err := decompose.NewPlanner(nil).Plan(q, decompose.StrategyEager)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlanDOT(&buf, plan); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "peripheries=2") {
		t.Fatalf("leaves not marked:\n%s", out)
	}
	if !strings.Contains(out, "n0 -> n1") {
		t.Fatalf("tree edges missing:\n%s", out)
	}
}

func TestBuildReportResolvesBindings(t *testing.T) {
	g, q, events := fixture(t)
	r := BuildReport(events[0], q, g)
	if r.Query != "smurf" {
		t.Fatalf("query name missing")
	}
	if len(r.Bindings) != 3 {
		t.Fatalf("bindings = %d", len(r.Bindings))
	}
	if r.Bindings[0].Variable != "attacker" || r.Bindings[0].VertexID != 1 {
		t.Fatalf("attacker binding wrong: %+v", r.Bindings[0])
	}
	if r.Bindings[0].VertexType != "Host" {
		t.Fatalf("vertex type not resolved")
	}
	if r.Bindings[0].Attrs["site"] != "hq" {
		t.Fatalf("vertex attrs not resolved: %+v", r.Bindings[0].Attrs)
	}
	if r.SpanStart != 100 || r.SpanEnd != 200 {
		t.Fatalf("span wrong: %+v", r)
	}
	if len(r.EdgeIDs) != 2 || r.EdgeIDs[0] != 1 || r.EdgeIDs[1] != 2 {
		t.Fatalf("edge ids wrong: %v", r.EdgeIDs)
	}
	// Without a data graph, only IDs are reported.
	bare := BuildReport(events[0], nil, nil)
	if bare.Bindings[0].Variable != "q0" || bare.Bindings[0].VertexType != "" {
		t.Fatalf("bare report wrong: %+v", bare.Bindings[0])
	}
}

func TestWriteJSONReports(t *testing.T) {
	g, q, events := fixture(t)
	var buf bytes.Buffer
	if err := WriteJSONReports(&buf, events, q, g); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("expected 1 report line, got %d", len(lines))
	}
	var r MatchReport
	if err := json.Unmarshal([]byte(lines[0]), &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if r.Query != "smurf" || len(r.Bindings) != 3 {
		t.Fatalf("decoded report wrong: %+v", r)
	}
}

func TestWriteTable(t *testing.T) {
	g, q, events := fixture(t)
	var buf bytes.Buffer
	if err := WriteTable(&buf, events, q, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "QUERY") || !strings.Contains(out, "smurf") {
		t.Fatalf("table missing content:\n%s", out)
	}
	if !strings.Contains(out, "attacker=Host#1") {
		t.Fatalf("table missing binding:\n%s", out)
	}
	// Table for a match with no resolvable graph still renders.
	buf.Reset()
	if err := WriteTable(&buf, events, q, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "attacker=#1") {
		t.Fatalf("bare table missing binding:\n%s", buf.String())
	}
}
