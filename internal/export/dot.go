// Package export renders graphs, query plans and match results in formats a
// person (or an external tool) can inspect: Graphviz DOT for graph snapshots
// and SJ-Trees (the library-level substitute for the paper's Gephi-based
// visualization), JSON for programmatic consumers, and fixed-width tables
// for terminals (the substitute for the demo's tabular event view).
package export

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/query"
)

// DOTOptions control graph rendering.
type DOTOptions struct {
	// Name is the digraph name.
	Name string
	// Highlight marks the data vertices/edges bound by the given matches;
	// they are drawn filled red, partial context in black.
	Highlight []*match.Match
	// MaxVertices bounds output size; 0 means unlimited. Vertices beyond the
	// bound (in ID order) and their edges are omitted with a trailing
	// comment.
	MaxVertices int
}

// WriteGraphDOT renders a snapshot of the data graph in DOT format.
func WriteGraphDOT(w io.Writer, g *graph.Graph, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "streamworks"
	}
	highlightV := make(map[graph.VertexID]bool)
	highlightE := make(map[graph.EdgeID]bool)
	for _, m := range opts.Highlight {
		if m == nil {
			continue
		}
		m.ForEachVertex(func(_ query.VertexID, dv graph.VertexID) bool {
			highlightV[dv] = true
			return true
		})
		m.ForEachEdge(func(_ query.EdgeID, de graph.EdgeID) bool {
			highlightE[de] = true
			return true
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n", name)
	ids := g.VertexIDs()
	truncated := false
	if opts.MaxVertices > 0 && len(ids) > opts.MaxVertices {
		ids = ids[:opts.MaxVertices]
		truncated = true
	}
	include := make(map[graph.VertexID]bool, len(ids))
	for _, id := range ids {
		include[id] = true
	}
	for _, id := range ids {
		v, _ := g.Vertex(id)
		style := ""
		if highlightV[id] {
			style = ", style=filled, fillcolor=salmon"
		}
		fmt.Fprintf(&b, "  v%d [label=%q%s];\n", id, fmt.Sprintf("%s #%d", v.Type, id), style)
	}
	g.Edges(func(e *graph.Edge) bool {
		if !include[e.Source] || !include[e.Target] {
			return true
		}
		attrs := fmt.Sprintf("label=%q", e.Type)
		if highlightE[e.ID] {
			attrs += ", color=red, penwidth=2"
		}
		fmt.Fprintf(&b, "  v%d -> v%d [%s];\n", e.Source, e.Target, attrs)
		return true
	})
	if truncated {
		fmt.Fprintf(&b, "  // truncated to %d vertices\n", opts.MaxVertices)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteQueryDOT renders a query graph in DOT format.
func WriteQueryDOT(w io.Writer, q *query.Graph) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n", "query_"+q.Name())
	for _, v := range q.Vertices() {
		label := v.Name
		if v.Type != "" {
			label += ":" + v.Type
		}
		fmt.Fprintf(&b, "  q%d [label=%q];\n", v.ID, label)
	}
	for _, e := range q.Edges() {
		label := e.Type
		if label == "" {
			label = "*"
		}
		dir := ""
		if e.AnyDirection {
			dir = ", dir=none"
		}
		fmt.Fprintf(&b, "  q%d -> q%d [label=%q%s];\n", e.Source, e.Target, label, dir)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePlanDOT renders a decomposition plan (SJ-Tree shape) in DOT format:
// one box per node labelled with its pattern edges, leaves double-bordered.
func WritePlanDOT(w io.Writer, p *decompose.Plan) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  node [shape=box, fontsize=10];\n", "plan_"+p.Query.Name())
	counter := 0
	var walk func(n *decompose.Node) int
	walk = func(n *decompose.Node) int {
		id := counter
		counter++
		label := describePlanEdges(p.Query, n.Edges)
		shape := ""
		if n.IsLeaf() {
			shape = ", peripheries=2"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", id, label, shape)
		if n.Left != nil {
			child := walk(n.Left)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id, child)
		}
		if n.Right != nil {
			child := walk(n.Right)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id, child)
		}
		return id
	}
	walk(p.Root)
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func describePlanEdges(q *query.Graph, edges []query.EdgeID) string {
	parts := make([]string, 0, len(edges))
	for _, eid := range edges {
		e := q.Edge(eid)
		label := e.Type
		if label == "" {
			label = "*"
		}
		parts = append(parts, fmt.Sprintf("%s-%s->%s", q.Vertex(e.Source).Name, label, q.Vertex(e.Target).Name))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\\n")
}
