package export

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strings"
	"text/tabwriter"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

// Binding is the resolved binding of one query variable in a match report.
type Binding struct {
	Variable   string            `json:"variable"`
	VertexID   uint64            `json:"vertex_id"`
	VertexType string            `json:"vertex_type,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// MatchReport is the JSON-friendly form of one match event, with query
// variables resolved against the data graph.
type MatchReport struct {
	Query      string    `json:"query"`
	DetectedAt int64     `json:"detected_at"`
	SpanStart  int64     `json:"span_start"`
	SpanEnd    int64     `json:"span_end"`
	Bindings   []Binding `json:"bindings"`
	EdgeIDs    []uint64  `json:"edge_ids"`
	// Signature is the match's canonical identity (the sorted pattern-edge →
	// data-edge binding, match.Match.Signature). Together with Query it lets
	// remote consumers deduplicate redelivered reports and compare match sets
	// across runs without access to the Match value itself.
	Signature string `json:"signature"`
	// DeliveredWallNS is the wall-clock nanosecond timestamp at which the
	// engine handed this report to subscriber sinks. Process-local
	// observability plumbing (the serving tier measures its flush segment
	// from it), never serialized: remote consumers always see zero.
	DeliveredWallNS int64 `json:"-"`
	// ArrivedWallNS is the serving-tier arrival time of the edge that
	// completed this match (core.MatchEvent.ArrivedWallNS). Like
	// DeliveredWallNS it is process-local observability plumbing — the flush
	// point subtracts it to record the per-match journey — and never
	// serialized.
	ArrivedWallNS int64 `json:"-"`
}

// BuildReport resolves a match event into a MatchReport using the query
// graph for variable names and (optionally) the data graph for vertex types
// and attributes. g may be nil, in which case only IDs are reported.
func BuildReport(ev core.MatchEvent, q *query.Graph, g *graph.Graph) MatchReport {
	r := MatchReport{
		Query:         ev.Query,
		DetectedAt:    int64(ev.DetectedAt),
		SpanStart:     int64(ev.Match.Span.Start),
		SpanEnd:       int64(ev.Match.Span.End),
		Signature:     ev.Match.Signature(),
		ArrivedWallNS: ev.ArrivedWallNS,
	}
	// ForEachVertex iterates in ascending pattern-ID order, matching the
	// sorted order the map-based representation had to construct.
	r.Bindings = make([]Binding, 0, ev.Match.NumVertices())
	ev.Match.ForEachVertex(func(qv query.VertexID, dv graph.VertexID) bool {
		b := Binding{VertexID: uint64(dv)}
		if q != nil {
			if v := q.Vertex(qv); v != nil {
				b.Variable = v.Name
			}
		}
		if b.Variable == "" {
			b.Variable = fmt.Sprintf("q%d", qv)
		}
		if g != nil {
			if v, ok := g.Vertex(dv); ok {
				b.VertexType = v.Type
				if len(v.Attrs) > 0 {
					b.Attrs = make(map[string]string, len(v.Attrs))
					for k, val := range v.Attrs {
						b.Attrs[k] = val.String()
					}
				}
			}
		}
		r.Bindings = append(r.Bindings, b)
		return true
	})
	deIDs := make([]uint64, 0, ev.Match.NumEdges())
	ev.Match.ForEachEdge(func(_ query.EdgeID, de graph.EdgeID) bool {
		deIDs = append(deIDs, uint64(de))
		return true
	})
	slices.Sort(deIDs)
	r.EdgeIDs = deIDs
	return r
}

// WriteJSONReports writes one JSON object per line for every match event.
func WriteJSONReports(w io.Writer, events []core.MatchEvent, q *query.Graph, g *graph.Graph) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(BuildReport(ev, q, g)); err != nil {
			return fmt.Errorf("export: encoding report: %w", err)
		}
	}
	return nil
}

// WriteTable writes match events as a fixed-width table: one row per event
// with the query name, detection time, span and the resolved bindings. It is
// the terminal substitute for the demo's tabular event view (Fig. 6).
func WriteTable(w io.Writer, events []core.MatchEvent, q *query.Graph, g *graph.Graph) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "QUERY\tDETECTED\tSPAN(ns)\tBINDINGS")
	for _, ev := range events {
		r := BuildReport(ev, q, g)
		parts := make([]string, 0, len(r.Bindings))
		for _, b := range r.Bindings {
			if b.VertexType != "" {
				parts = append(parts, fmt.Sprintf("%s=%s#%d", b.Variable, b.VertexType, b.VertexID))
			} else {
				parts = append(parts, fmt.Sprintf("%s=#%d", b.Variable, b.VertexID))
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", r.Query, r.DetectedAt, r.SpanEnd-r.SpanStart, strings.Join(parts, " "))
	}
	return tw.Flush()
}
