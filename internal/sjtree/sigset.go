package sjtree

import (
	"github.com/streamworks/streamworks/internal/match"
)

// sigSet deduplicates matches by their exact pattern-edge → data-edge
// binding. It is keyed on the match's cached 64-bit EdgeSetHash with
// equality-checked buckets (match.SameEdges), so it never builds the legacy
// Signature string and a hash collision can never drop a genuine match.
// Bucket slices are almost always length 1.
type sigSet struct {
	buckets map[uint64][]*match.Match
}

func newSigSet() sigSet {
	return sigSet{buckets: make(map[uint64][]*match.Match)}
}

// add records m's edge set. It returns false (and leaves the set unchanged)
// when an equal edge set is already present.
func (s *sigSet) add(m *match.Match) bool {
	h := m.EdgeSetHash()
	bucket := s.buckets[h]
	for _, other := range bucket {
		if other.SameEdges(m) {
			return false
		}
	}
	s.buckets[h] = append(bucket, m)
	return true
}

// completeSet deduplicates emitted complete matches by edge binding. Unlike
// sigSet — whose entries are the very matches the node stores and removes —
// this set lives for the tree's lifetime, so it keeps compact EdgeSet
// copies instead of pinning every emitted Match (bindings, span, caches)
// forever.
type completeSet struct {
	buckets map[uint64][]match.EdgeSet
}

func newCompleteSet() completeSet {
	return completeSet{buckets: make(map[uint64][]match.EdgeSet)}
}

// add records m's edge set, returning false when already present.
func (s *completeSet) add(m *match.Match) bool {
	h := m.EdgeSetHash()
	bucket := s.buckets[h]
	for _, es := range bucket {
		if m.SameEdgeSet(es) {
			return false
		}
	}
	s.buckets[h] = append(bucket, m.EdgeSet())
	return true
}

// remove forgets the previously added match (by pointer identity, falling
// back to edge-set equality for safety). Removing an absent match is a
// no-op.
func (s *sigSet) remove(m *match.Match) {
	h := m.EdgeSetHash()
	bucket := s.buckets[h]
	for i, other := range bucket {
		if other == m || other.SameEdges(m) {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			bucket[last] = nil
			if last == 0 {
				delete(s.buckets, h)
			} else {
				s.buckets[h] = bucket[:last]
			}
			return
		}
	}
}
