// Package sjtree implements the Subgraph Join Tree (SJ-Tree), the central
// data structure of StreamWorks (paper §3.2).
//
// An SJ-Tree is a binary tree instantiated from a decomposition plan:
//
//   - every node corresponds to a subgraph of the query graph;
//   - the root's subgraph is the query graph itself (Property 1);
//   - every internal node's subgraph is the join of its children's
//     subgraphs (Property 2);
//   - every node maintains the collection of data subgraphs matching its
//     query subgraph (Property 3);
//   - every internal node keeps the cut subgraph — the intersection of its
//     children's subgraphs — and its children's match collections are
//     hash-partitioned on their projection onto the cut vertices so that a
//     sibling join is a hash lookup instead of a scan (Property 4).
//
// As leaf matches are produced by the per-edge local search, Insert pushes
// them into the tree; whenever a match and a sibling match agree on the cut
// projection they are joined and the larger match is inserted one level up,
// until complete matches emerge at the root within the query's time window.
package sjtree

import (
	"fmt"
	"strings"
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/query"
)

// Node is a runtime SJ-Tree node. It mirrors one decomposition plan node and
// owns the collection of (partial) matches of that node's query subgraph.
type Node struct {
	plan   *decompose.Node
	parent *Node
	left   *Node
	right  *Node

	// matches stores this node's match collection, hash-partitioned by the
	// projection of each match onto the parent's cut vertices (Property 4),
	// keyed on the comparable integer projection key rather than a string.
	// The root does not store matches; complete matches are emitted.
	matches map[match.ProjectionKey][]*match.Match
	// signatures deduplicates stored matches by their bound data-edge set,
	// keyed on the match's cached 64-bit edge-set hash.
	signatures sigSet
	stored     int
	inserted   uint64

	// Live per-node join statistics (paper §3.2's sibling hash-joins), the
	// observed side of the estimator-validation loop: joinAttempts counts
	// sibling matches probed in the cut-projection partition, joinHits the
	// probes that produced a joined match one level up, and pruned the
	// stored matches this node has discarded. Plain ints — nodes are owned
	// by the engine's driver goroutine like the rest of the tree.
	joinAttempts uint64
	joinHits     uint64
	pruned       uint64
}

// Edges returns the pattern edges covered by this node.
func (n *Node) Edges() []query.EdgeID { return n.plan.Edges }

// IsLeaf reports whether the node is a search primitive.
func (n *Node) IsLeaf() bool { return n.left == nil && n.right == nil }

// IsRoot reports whether the node is the root of its tree.
func (n *Node) IsRoot() bool { return n.parent == nil }

// Stored returns the number of matches currently held by the node.
func (n *Node) Stored() int { return n.stored }

// InsertedTotal returns the cumulative number of matches ever inserted into
// the node (including ones that have since been pruned).
func (n *Node) InsertedTotal() uint64 { return n.inserted }

// Partitions returns the number of live cut-projection hash partitions of
// the node's match collection — the fan-out of a sibling join probe.
func (n *Node) Partitions() int { return len(n.matches) }

// JoinAttempts returns the cumulative number of sibling matches probed when
// inserting into this node.
func (n *Node) JoinAttempts() uint64 { return n.joinAttempts }

// JoinHits returns how many of those probes joined successfully.
func (n *Node) JoinHits() uint64 { return n.joinHits }

// PrunedTotal returns the cumulative number of stored matches pruned from
// this node.
func (n *Node) PrunedTotal() uint64 { return n.pruned }

// CutVertices returns the cut vertices of the node (internal nodes only).
func (n *Node) CutVertices() []query.VertexID { return n.plan.CutVertices }

func (n *Node) sibling() *Node {
	if n.parent == nil {
		return nil
	}
	if n.parent.left == n {
		return n.parent.right
	}
	return n.parent.left
}

// projectionVertices returns the vertices on which this node's matches are
// keyed: the parent's cut vertices. Root children share the root's cut.
func (n *Node) projectionVertices() []query.VertexID {
	if n.parent == nil {
		return nil
	}
	return n.parent.plan.CutVertices
}

// Tree is a runtime SJ-Tree for a single registered query.
type Tree struct {
	q      *query.Graph
	plan   *decompose.Plan
	root   *Node
	nodes  []*Node
	leaves []*Node
	window time.Duration

	onMatch func(*match.Match)

	completeSignatures completeSet
	completeTotal      uint64
	duplicateDrops     uint64
	windowDrops        uint64
	prunedTotal        uint64
}

// Option configures a Tree.
type Option func(*Tree)

// WithMatchCallback registers fn to be invoked for every complete match the
// tree produces. The engine uses this to forward results to subscribers.
func WithMatchCallback(fn func(*match.Match)) Option {
	return func(t *Tree) { t.onMatch = fn }
}

// New instantiates a runtime SJ-Tree from a decomposition plan. The query's
// time window bounds the temporal span of reported matches; partial matches
// that can no longer satisfy it are dropped during joins and pruning.
func New(plan *decompose.Plan, opts ...Option) (*Tree, error) {
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("sjtree: invalid plan: %w", err)
	}
	t := &Tree{
		q:                  plan.Query,
		plan:               plan,
		window:             plan.Query.Window(),
		completeSignatures: newCompleteSet(),
	}
	for _, o := range opts {
		o(t)
	}
	t.root = t.build(plan.Root, nil)
	return t, nil
}

func (t *Tree) build(pn *decompose.Node, parent *Node) *Node {
	n := &Node{
		plan:       pn,
		parent:     parent,
		matches:    make(map[match.ProjectionKey][]*match.Match),
		signatures: newSigSet(),
	}
	t.nodes = append(t.nodes, n)
	if pn.Left != nil {
		n.left = t.build(pn.Left, n)
	}
	if pn.Right != nil {
		n.right = t.build(pn.Right, n)
	}
	if n.IsLeaf() {
		t.leaves = append(t.leaves, n)
	}
	return n
}

// Query returns the query graph the tree answers.
func (t *Tree) Query() *query.Graph { return t.q }

// Plan returns the decomposition plan the tree was built from.
func (t *Tree) Plan() *decompose.Plan { return t.plan }

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Leaves returns the leaf nodes (search primitives) in plan order.
func (t *Tree) Leaves() []*Node { return t.leaves }

// SetMatchCallback replaces the complete-match callback.
func (t *Tree) SetMatchCallback(fn func(*match.Match)) { t.onMatch = fn }

// InheritEmitted transfers old's emitted-match identity across a plan swap:
// the new tree adopts the old tree's complete-match dedup set (and its
// cumulative emission counters), so that re-deriving an already-reported
// match while the engine rebuilds state from the retained window is dropped
// as a duplicate rather than emitted twice. The old tree is expected to be
// discarded after the call — the set is moved, not copied.
func (t *Tree) InheritEmitted(old *Tree) {
	if old == nil {
		return
	}
	t.completeSignatures = old.completeSignatures
	t.completeTotal = old.completeTotal
	t.duplicateDrops = old.duplicateDrops
	t.windowDrops = old.windowDrops
	t.prunedTotal = old.prunedTotal
}

// Insert adds a match of node n's query subgraph to the tree and propagates
// joins upward. It returns the complete matches (if any) that the insertion
// produced at the root. Matches whose temporal span already exceeds the
// query window are dropped immediately.
func (t *Tree) Insert(n *Node, m *match.Match) []*match.Match {
	if n == nil || m == nil {
		return nil
	}
	if !m.WithinWindow(t.window) {
		t.windowDrops++
		return nil
	}
	if n.IsRoot() {
		return t.acceptComplete(m)
	}
	if !n.signatures.add(m) {
		t.duplicateDrops++
		return nil
	}
	key := m.Projection(n.projectionVertices())
	n.matches[key] = append(n.matches[key], m)
	n.stored++
	n.inserted++

	sib := n.sibling()
	if sib == nil {
		return nil
	}
	var completed []*match.Match
	for _, sm := range sib.matches[key] {
		n.joinAttempts++
		joined := m.Join(sm)
		if joined == nil {
			continue
		}
		n.joinHits++
		completed = append(completed, t.Insert(n.parent, joined)...)
	}
	return completed
}

// acceptComplete validates, deduplicates and emits a complete match.
func (t *Tree) acceptComplete(m *match.Match) []*match.Match {
	if !m.Complete(t.q) {
		// A root insertion that does not cover the query indicates a plan
		// bug; drop it rather than report a wrong result.
		return nil
	}
	if !t.completeSignatures.add(m) {
		t.duplicateDrops++
		return nil
	}
	t.completeTotal++
	if t.onMatch != nil {
		t.onMatch(m)
	}
	return []*match.Match{m}
}

// pruneWhere removes every stored partial match for which drop returns
// true, in one scan over all non-root nodes. Removal uses the match's
// cached edge-set hash — no signature strings are rebuilt.
func (t *Tree) pruneWhere(drop func(*match.Match) bool) int {
	removed := 0
	for _, n := range t.nodes {
		if n.IsRoot() {
			continue
		}
		//swvet:unordered drop is a pure predicate: each match is kept or removed independently of visit order
		for key, list := range n.matches {
			kept := list[:0]
			for _, m := range list {
				if drop(m) {
					n.signatures.remove(m)
					n.pruned++
					removed++
					continue
				}
				kept = append(kept, m)
			}
			if len(kept) == 0 {
				delete(n.matches, key)
			} else {
				n.matches[key] = kept
			}
			n.stored -= len(list) - len(kept)
		}
	}
	t.prunedTotal += uint64(removed)
	return removed
}

// Prune removes partial matches whose earliest edge is older than cutoff.
// Such matches can never participate in a future complete match within the
// window, because any future edge has a timestamp at or beyond the current
// watermark. It returns the number of matches removed. The engine calls this
// as the dynamic graph's window slides.
func (t *Tree) Prune(cutoff graph.Timestamp) int {
	return t.pruneWhere(func(m *match.Match) bool {
		return m.HasSpan() && m.Span.Start < cutoff
	})
}

// PruneExpiredEdge removes partial matches that bind the given data edge.
// The engine wires the dynamic graph's expiry callback (batched through
// PruneExpiredEdges) so stored state never references edges outside the
// sliding window.
func (t *Tree) PruneExpiredEdge(id graph.EdgeID) int {
	return t.pruneWhere(func(m *match.Match) bool {
		return m.UsesDataEdge(id)
	})
}

// PruneExpiredEdges removes partial matches binding any of the given data
// edges in a single scan — the batch form the engine uses when draining the
// expiry callback, so a burst of expiries costs one pass over the stored
// matches instead of one per edge.
func (t *Tree) PruneExpiredEdges(ids map[graph.EdgeID]struct{}) int {
	if len(ids) == 0 {
		return 0
	}
	return t.pruneWhere(func(m *match.Match) bool {
		found := false
		m.ForEachEdge(func(_ query.EdgeID, de graph.EdgeID) bool {
			if _, ok := ids[de]; ok {
				found = true
				return false
			}
			return true
		})
		return found
	})
}

// PartialMatchCount returns the total number of matches stored across all
// non-root nodes: the memory-pressure metric of the plan-quality experiments.
func (t *Tree) PartialMatchCount() int {
	total := 0
	for _, n := range t.nodes {
		if !n.IsRoot() {
			total += n.stored
		}
	}
	return total
}

// CompleteCount returns the number of distinct complete matches emitted.
func (t *Tree) CompleteCount() uint64 { return t.completeTotal }

// Stats summarizes the tree's runtime counters.
type Stats struct {
	Strategy       decompose.Strategy
	NodeCount      int
	LeafCount      int
	PartialMatches int
	CompleteCount  uint64
	DuplicateDrops uint64
	WindowDrops    uint64
	PrunedTotal    uint64
	PerNodeStored  []NodeStats
}

// NodeStats reports one node's stored and cumulative match counts together
// with its live join statistics.
type NodeStats struct {
	Edges    []query.EdgeID
	IsLeaf   bool
	Stored   int
	Inserted uint64
	// Partitions is the current number of cut-projection hash partitions;
	// JoinAttempts/JoinHits count sibling probes and successful joins, and
	// Pruned counts matches discarded from this node.
	Partitions   int
	JoinAttempts uint64
	JoinHits     uint64
	Pruned       uint64
}

// Stats returns a snapshot of the tree's counters, with per-node detail in
// plan (pre-order) order.
func (t *Tree) Stats() Stats {
	s := Stats{
		Strategy:       t.plan.Strategy,
		NodeCount:      len(t.nodes),
		LeafCount:      len(t.leaves),
		PartialMatches: t.PartialMatchCount(),
		CompleteCount:  t.completeTotal,
		DuplicateDrops: t.duplicateDrops,
		WindowDrops:    t.windowDrops,
		PrunedTotal:    t.prunedTotal,
	}
	for _, n := range t.nodes {
		s.PerNodeStored = append(s.PerNodeStored, NodeStats{
			Edges:        n.Edges(),
			IsLeaf:       n.IsLeaf(),
			Stored:       n.stored,
			Inserted:     n.inserted,
			Partitions:   n.Partitions(),
			JoinAttempts: n.joinAttempts,
			JoinHits:     n.joinHits,
			Pruned:       n.pruned,
		})
	}
	return s
}

// String renders the tree with per-node stored counts, in the spirit of the
// paper's Fig. 7 where each SJ-Tree is shown next to its tracked matches.
func (t *Tree) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SJ-Tree(%s, strategy=%s, window=%s, partials=%d, complete=%d)\n",
		t.q.Name(), t.plan.Strategy, t.window, t.PartialMatchCount(), t.completeTotal)
	var walk func(n *Node, indent int)
	walk = func(n *Node, indent int) {
		if n == nil {
			return
		}
		kind := "join"
		if n.IsLeaf() {
			kind = "leaf"
		}
		if n.IsRoot() {
			kind = "root"
		}
		fmt.Fprintf(&sb, "%s%s edges=%v stored=%d inserted=%d\n",
			strings.Repeat("  ", indent), kind, n.Edges(), n.stored, n.inserted)
		walk(n.left, indent+1)
		walk(n.right, indent+1)
	}
	walk(t.root, 1)
	return sb.String()
}
