package sjtree

import (
	"github.com/streamworks/streamworks/internal/match"
)

// This file exports the SJ-Tree's match-storage machinery in a form the
// shared-plan evaluation DAG (internal/mqo) can use for nodes owned by
// multiple parents. A private Tree wires collection, partition and emitted
// set to exactly one parent each; a shared DAG node keeps one Collection
// (its canonical match set) plus one Partition per parent link, and each
// consuming query keeps its own EmittedSet — so per-query dedup semantics
// are byte-identical to a private tree while the underlying matches are
// computed once.

// Collection is a deduplicated set of matches of one subpattern: the
// Property-3 match collection of a DAG node, without a fixed parent. It
// dedups on the cached 64-bit edge-set hash with equality-checked buckets,
// the same identity a private tree node uses.
type Collection struct {
	stored   []*match.Match
	sigs     sigSet
	inserted uint64
	pruned   uint64
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{sigs: newSigSet()}
}

// Add records m, returning false (set unchanged) when an equal edge set is
// already stored.
func (c *Collection) Add(m *match.Match) bool {
	if !c.sigs.add(m) {
		return false
	}
	c.stored = append(c.stored, m)
	c.inserted++
	return true
}

// Stored returns the live matches. The slice is owned by the collection —
// callers iterate it, they do not retain or mutate it.
func (c *Collection) Stored() []*match.Match { return c.stored }

// Len returns the number of live matches.
func (c *Collection) Len() int { return len(c.stored) }

// InsertedTotal returns the cumulative number of distinct matches ever added.
func (c *Collection) InsertedTotal() uint64 { return c.inserted }

// PrunedTotal returns the cumulative number of matches pruned.
func (c *Collection) PrunedTotal() uint64 { return c.pruned }

// PruneWhere removes every stored match for which drop returns true and
// returns how many were removed.
func (c *Collection) PruneWhere(drop func(*match.Match) bool) int {
	kept := c.stored[:0]
	for _, m := range c.stored {
		if drop(m) {
			c.sigs.remove(m)
			continue
		}
		kept = append(kept, m)
	}
	removed := len(c.stored) - len(kept)
	for i := len(kept); i < len(c.stored); i++ {
		c.stored[i] = nil
	}
	c.stored = kept
	c.pruned += uint64(removed)
	return removed
}

// Partition hash-partitions matches by their projection onto a fixed cut
// vertex set (Property 4), so a sibling join is a map lookup. A shared DAG
// node owns one Partition per parent link, each keyed on that parent's cut;
// unlike a Collection it does not deduplicate — its entries are remapped
// views of an already-deduplicated collection.
type Partition struct {
	buckets map[match.ProjectionKey][]*match.Match
	stored  int
}

// NewPartition returns an empty partition.
func NewPartition() *Partition {
	return &Partition{buckets: make(map[match.ProjectionKey][]*match.Match)}
}

// Add stores m under key.
func (p *Partition) Add(key match.ProjectionKey, m *match.Match) {
	p.buckets[key] = append(p.buckets[key], m)
	p.stored++
}

// Probe returns the matches stored under key. The slice is owned by the
// partition — iterate, do not retain.
func (p *Partition) Probe(key match.ProjectionKey) []*match.Match {
	return p.buckets[key]
}

// Len returns the number of stored matches.
func (p *Partition) Len() int { return p.stored }

// Partitions returns the number of live projection buckets — the fan-out of
// a sibling join probe.
func (p *Partition) Partitions() int { return len(p.buckets) }

// PruneWhere removes every stored match for which drop returns true and
// returns how many were removed.
func (p *Partition) PruneWhere(drop func(*match.Match) bool) int {
	removed := 0
	//swvet:unordered drop is a pure predicate: each match is kept or removed independently of visit order
	for key, list := range p.buckets {
		kept := list[:0]
		for _, m := range list {
			if drop(m) {
				removed++
				continue
			}
			kept = append(kept, m)
		}
		if len(kept) == 0 {
			delete(p.buckets, key)
		} else {
			p.buckets[key] = kept
		}
	}
	p.stored -= removed
	return removed
}

// EmittedSet deduplicates one query's emitted complete matches by edge
// binding — the per-consumer half of acceptComplete, split out so a shared
// DAG root can fan a complete match out to many queries, each with its own
// exactly-once emission set. Entries are compact EdgeSet copies, like a
// tree's complete-signature set.
type EmittedSet struct {
	set   completeSet
	total uint64
	dups  uint64
}

// NewEmittedSet returns an empty set.
func NewEmittedSet() *EmittedSet {
	return &EmittedSet{set: newCompleteSet()}
}

// Add records m's edge set, returning false when it was already emitted.
func (s *EmittedSet) Add(m *match.Match) bool {
	if !s.set.add(m) {
		s.dups++
		return false
	}
	s.total++
	return true
}

// Total returns the number of distinct matches recorded.
func (s *EmittedSet) Total() uint64 { return s.total }

// DuplicateDrops returns how many Add calls were rejected as duplicates.
func (s *EmittedSet) DuplicateDrops() uint64 { return s.dups }
