package sjtree

import (
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/isomorphism"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/query"
)

func smurfQuery(window time.Duration) *query.Graph {
	return query.NewBuilder("smurf").
		Window(window).
		Vertex("attacker", "Host").
		Vertex("amp", "Host").
		Vertex("victim", "Host").
		Edge("attacker", "amp", "icmp_echo_req").
		Edge("amp", "victim", "icmp_echo_reply").
		MustBuild()
}

func mustPlan(t *testing.T, q *query.Graph, s decompose.Strategy) *decompose.Plan {
	t.Helper()
	p, err := decompose.NewPlanner(nil).Plan(q, s)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	return p
}

func mustTree(t *testing.T, q *query.Graph, s decompose.Strategy, opts ...Option) *Tree {
	t.Helper()
	tr, err := New(mustPlan(t, q, s), opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

// reqMatch and replyMatch build primitive matches for the smurf query's two
// pattern edges using the given data vertex ids and timestamp.
func reqMatch(attacker, amp graph.VertexID, edge graph.EdgeID, ts graph.Timestamp) *match.Match {
	de := &graph.Edge{ID: edge, Source: attacker, Target: amp, Type: "icmp_echo_req", Timestamp: ts}
	return match.NewFromEdge(0, 0, 1, de, false)
}

func replyMatch(amp, victim graph.VertexID, edge graph.EdgeID, ts graph.Timestamp) *match.Match {
	de := &graph.Edge{ID: edge, Source: amp, Target: victim, Type: "icmp_echo_reply", Timestamp: ts}
	return match.NewFromEdge(1, 1, 2, de, false)
}

func TestTreeStructureMirrorsPlan(t *testing.T) {
	q := smurfQuery(0)
	tr := mustTree(t, q, decompose.StrategyEager)
	if tr.Query() != q {
		t.Fatalf("Query() wrong")
	}
	if tr.Plan().Strategy != decompose.StrategyEager {
		t.Fatalf("Plan() wrong")
	}
	if len(tr.Leaves()) != 2 {
		t.Fatalf("expected 2 leaves, got %d", len(tr.Leaves()))
	}
	if tr.Root().IsLeaf() {
		t.Fatalf("root should be a join node")
	}
	if !tr.Root().IsRoot() || tr.Leaves()[0].IsRoot() {
		t.Fatalf("IsRoot flags wrong")
	}
	if len(tr.Root().CutVertices()) != 1 {
		t.Fatalf("root cut vertices = %v", tr.Root().CutVertices())
	}
	for _, l := range tr.Leaves() {
		if len(l.Edges()) != 1 {
			t.Fatalf("eager leaf should cover one edge")
		}
	}
}

func TestInsertJoinProducesCompleteMatch(t *testing.T) {
	q := smurfQuery(0)
	var emitted []*match.Match
	tr := mustTree(t, q, decompose.StrategyEager, WithMatchCallback(func(m *match.Match) {
		emitted = append(emitted, m)
	}))
	reqLeaf, replyLeaf := tr.Leaves()[0], tr.Leaves()[1]

	// Insert the request half: no completion yet.
	out := tr.Insert(reqLeaf, reqMatch(1, 2, 100, 10))
	if len(out) != 0 {
		t.Fatalf("premature completion: %v", out)
	}
	if tr.PartialMatchCount() != 1 {
		t.Fatalf("PartialMatchCount = %d", tr.PartialMatchCount())
	}
	// Insert a reply through a different amplifier: still nothing.
	out = tr.Insert(replyLeaf, replyMatch(9, 3, 101, 11))
	if len(out) != 0 {
		t.Fatalf("non-joining match completed: %v", out)
	}
	// Insert the matching reply through amplifier 2: completes.
	out = tr.Insert(replyLeaf, replyMatch(2, 3, 102, 12))
	if len(out) != 1 {
		t.Fatalf("expected 1 complete match, got %d", len(out))
	}
	if len(emitted) != 1 {
		t.Fatalf("callback not invoked")
	}
	m := out[0]
	if !m.Complete(q) {
		t.Fatalf("emitted match is not complete: %v", m)
	}
	if v, _ := m.Vertex(1); v != 2 {
		t.Fatalf("amplifier binding wrong: %v", m)
	}
	if tr.CompleteCount() != 1 {
		t.Fatalf("CompleteCount = %d", tr.CompleteCount())
	}
}

func TestInsertRespectsWindow(t *testing.T) {
	q := smurfQuery(5 * time.Nanosecond)
	tr := mustTree(t, q, decompose.StrategyEager)
	reqLeaf, replyLeaf := tr.Leaves()[0], tr.Leaves()[1]
	tr.Insert(reqLeaf, reqMatch(1, 2, 100, 10))
	// Reply 100ns later: joined span exceeds the 5ns window.
	out := tr.Insert(replyLeaf, replyMatch(2, 3, 101, 110))
	if len(out) != 0 {
		t.Fatalf("out-of-window match reported")
	}
	st := tr.Stats()
	if st.WindowDrops == 0 {
		t.Fatalf("window drop not counted")
	}
	// A timely reply still works.
	out = tr.Insert(replyLeaf, replyMatch(2, 3, 102, 13))
	if len(out) != 1 {
		t.Fatalf("in-window match not reported")
	}
}

func TestInsertDeduplicates(t *testing.T) {
	q := smurfQuery(0)
	tr := mustTree(t, q, decompose.StrategyEager)
	reqLeaf := tr.Leaves()[0]
	m := reqMatch(1, 2, 100, 10)
	tr.Insert(reqLeaf, m)
	tr.Insert(reqLeaf, m.Clone())
	if tr.PartialMatchCount() != 1 {
		t.Fatalf("duplicate stored: %d", tr.PartialMatchCount())
	}
	st := tr.Stats()
	if st.DuplicateDrops != 1 {
		t.Fatalf("duplicate drop not counted: %+v", st)
	}
}

func TestCompleteMatchDeduplicated(t *testing.T) {
	q := smurfQuery(0)
	tr := mustTree(t, q, decompose.StrategyEager)
	reqLeaf, replyLeaf := tr.Leaves()[0], tr.Leaves()[1]
	tr.Insert(reqLeaf, reqMatch(1, 2, 100, 10))
	first := tr.Insert(replyLeaf, replyMatch(2, 3, 101, 11))
	if len(first) != 1 {
		t.Fatalf("setup failed")
	}
	// Re-inserting the same reply primitive is dropped at the leaf, so no
	// duplicate completion can occur.
	second := tr.Insert(replyLeaf, replyMatch(2, 3, 101, 11))
	if len(second) != 0 {
		t.Fatalf("duplicate completion emitted")
	}
	if tr.CompleteCount() != 1 {
		t.Fatalf("CompleteCount = %d", tr.CompleteCount())
	}
}

func TestInsertNilArguments(t *testing.T) {
	q := smurfQuery(0)
	tr := mustTree(t, q, decompose.StrategyEager)
	if out := tr.Insert(nil, reqMatch(1, 2, 1, 1)); out != nil {
		t.Fatalf("nil node should be ignored")
	}
	if out := tr.Insert(tr.Leaves()[0], nil); out != nil {
		t.Fatalf("nil match should be ignored")
	}
}

func TestPruneByCutoff(t *testing.T) {
	q := smurfQuery(0)
	tr := mustTree(t, q, decompose.StrategyEager)
	reqLeaf := tr.Leaves()[0]
	tr.Insert(reqLeaf, reqMatch(1, 2, 100, 10))
	tr.Insert(reqLeaf, reqMatch(4, 5, 101, 200))
	if tr.PartialMatchCount() != 2 {
		t.Fatalf("setup failed")
	}
	removed := tr.Prune(150)
	if removed != 1 {
		t.Fatalf("Prune removed %d, want 1", removed)
	}
	if tr.PartialMatchCount() != 1 {
		t.Fatalf("PartialMatchCount = %d after prune", tr.PartialMatchCount())
	}
	// The pruned match's signature must be forgotten so a re-arrival can be
	// stored again (e.g. after an out-of-order replay).
	tr.Insert(reqLeaf, reqMatch(1, 2, 100, 10))
	if tr.PartialMatchCount() != 2 {
		t.Fatalf("pruned signature still blocks re-insertion")
	}
	if tr.Stats().PrunedTotal != 1 {
		t.Fatalf("PrunedTotal = %d", tr.Stats().PrunedTotal)
	}
}

func TestPruneExpiredEdge(t *testing.T) {
	q := smurfQuery(0)
	tr := mustTree(t, q, decompose.StrategyEager)
	reqLeaf := tr.Leaves()[0]
	tr.Insert(reqLeaf, reqMatch(1, 2, 100, 10))
	tr.Insert(reqLeaf, reqMatch(4, 5, 101, 20))
	removed := tr.PruneExpiredEdge(100)
	if removed != 1 {
		t.Fatalf("PruneExpiredEdge removed %d, want 1", removed)
	}
	if tr.PartialMatchCount() != 1 {
		t.Fatalf("PartialMatchCount = %d", tr.PartialMatchCount())
	}
	if tr.PruneExpiredEdge(99999) != 0 {
		t.Fatalf("pruning an unknown edge should remove nothing")
	}
}

func TestLazyPlanSingleLeafIsRoot(t *testing.T) {
	q := smurfQuery(0)
	// Lazy pairs both edges into one primitive, so the tree is a single
	// root/leaf node and every primitive match is already complete.
	tr := mustTree(t, q, decompose.StrategyLazy)
	if len(tr.Leaves()) != 1 || !tr.Root().IsLeaf() {
		t.Fatalf("lazy smurf plan should be a single node")
	}
	full := match.New()
	full.BindVertex(0, 1)
	full.BindVertex(1, 2)
	full.BindVertex(2, 3)
	full.BindEdge(0, 100, 10)
	full.BindEdge(1, 101, 11)
	out := tr.Insert(tr.Root(), full)
	if len(out) != 1 || tr.CompleteCount() != 1 {
		t.Fatalf("complete primitive not emitted: %v", out)
	}
	// An incomplete match inserted at the root must be rejected.
	partial := match.New()
	partial.BindVertex(0, 1)
	partial.BindEdge(0, 200, 10)
	if out := tr.Insert(tr.Root(), partial); len(out) != 0 {
		t.Fatalf("incomplete root insertion accepted")
	}
}

func TestTreeInvalidPlanRejected(t *testing.T) {
	q := smurfQuery(0)
	bad := &decompose.Plan{Query: q, Strategy: decompose.StrategyEager}
	if _, err := New(bad); err == nil {
		t.Fatalf("invalid plan accepted")
	}
}

func TestStatsAndString(t *testing.T) {
	q := smurfQuery(0)
	tr := mustTree(t, q, decompose.StrategyEager)
	tr.Insert(tr.Leaves()[0], reqMatch(1, 2, 100, 10))
	st := tr.Stats()
	if st.NodeCount != 3 || st.LeafCount != 2 {
		t.Fatalf("Stats counts wrong: %+v", st)
	}
	if st.PartialMatches != 1 {
		t.Fatalf("Stats partials wrong: %+v", st)
	}
	if len(st.PerNodeStored) != 3 {
		t.Fatalf("per-node stats missing: %+v", st)
	}
	s := tr.String()
	if !strings.Contains(s, "SJ-Tree") || !strings.Contains(s, "leaf") {
		t.Fatalf("String() = %q", s)
	}
}

// TestIncrementalMatchesOfflineGroundTruth replays a small stream through
// leaf-local searches + SJ-Tree insertion (the engine's inner loop) and
// checks the set of complete matches equals the offline matcher's results,
// for every decomposition strategy.
func TestIncrementalMatchesOfflineGroundTruth(t *testing.T) {
	q := query.NewBuilder("wedge4").
		Vertex("a1", "Article").
		Vertex("a2", "Article").
		Vertex("k", "Keyword").
		Vertex("l", "Location").
		Edge("a1", "k", "mentions").
		Edge("a2", "k", "mentions").
		Edge("a1", "l", "located").
		Edge("a2", "l", "located").
		MustBuild()

	// Data: 3 articles sharing keyword 100; articles 1,2 share location 200,
	// article 3 uses location 201.
	vertices := []graph.Vertex{
		{ID: 1, Type: "Article"}, {ID: 2, Type: "Article"}, {ID: 3, Type: "Article"},
		{ID: 100, Type: "Keyword"}, {ID: 200, Type: "Location"}, {ID: 201, Type: "Location"},
	}
	edges := []graph.Edge{
		{ID: 1, Source: 1, Target: 100, Type: "mentions", Timestamp: 1},
		{ID: 2, Source: 1, Target: 200, Type: "located", Timestamp: 2},
		{ID: 3, Source: 2, Target: 100, Type: "mentions", Timestamp: 3},
		{ID: 4, Source: 2, Target: 200, Type: "located", Timestamp: 4},
		{ID: 5, Source: 3, Target: 100, Type: "mentions", Timestamp: 5},
		{ID: 6, Source: 3, Target: 201, Type: "located", Timestamp: 6},
	}

	for _, strategy := range decompose.Strategies() {
		t.Run(string(strategy), func(t *testing.T) {
			g := graph.New(graph.WithAutoVertices())
			for _, v := range vertices {
				g.AddVertex(v)
			}
			tr := mustTree(t, q, strategy)
			matcher := isomorphism.New(q)

			incremental := make(map[string]bool)
			for _, e := range edges {
				de, err := g.AddEdge(e)
				if err != nil {
					t.Fatal(err)
				}
				// Engine inner loop: every leaf primitive, every pattern edge
				// in the primitive, local search seeded by the new edge.
				for _, leaf := range tr.Leaves() {
					for _, qe := range leaf.Edges() {
						for _, pm := range matcher.LocalSearch(g, leaf.Edges(), qe, de) {
							for _, cm := range tr.Insert(leaf, pm) {
								incremental[cm.Signature()] = true
							}
						}
					}
				}
			}

			offline := matcher.FindAll(g, q.EdgeIDs(), 0)
			offlineSigs := make(map[string]bool)
			for _, m := range offline {
				offlineSigs[m.Signature()] = true
			}
			if len(offlineSigs) == 0 {
				t.Fatalf("offline ground truth is empty; bad fixture")
			}
			if len(incremental) != len(offlineSigs) {
				t.Fatalf("incremental found %d matches, offline %d (strategy %s)\ntree: %s",
					len(incremental), len(offlineSigs), strategy, tr.String())
			}
			for sig := range offlineSigs {
				if !incremental[sig] {
					t.Fatalf("offline match %q missed by incremental search (strategy %s)", sig, strategy)
				}
			}
		})
	}
}
