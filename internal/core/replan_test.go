package core

import (
	"errors"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/replan"
)

// replanTestConfig checks for drift aggressively so short tests exercise
// the tick.
func replanTestConfig() replan.Config {
	return replan.Config{CheckEvery: 8, MinEdges: 1, Cooldown: -1}
}

// burstQuery is a 3-edge query whose selective plan has two leaves — enough
// structure for a partial match to live across a plan swap.
func burstQuery(window time.Duration) *query.Graph {
	return query.NewBuilder("burst").
		Window(window).
		Vertex("a", "Host").
		Vertex("b", "Host").
		Vertex("c", "Host").
		Edge("a", "b", "scan").
		Edge("a", "c", "infect").
		Edge("a", "c", "flow").
		MustBuild()
}

// TestReplanBoundaryMatchStraddlingSwapEmitsOnce is the core swap-safety
// regression: a match whose edges straddle the plan swap — some edges
// ingested under the old tree, the rest under the new — is emitted exactly
// once. The swap replays the retained window to rebuild the partial state
// the new tree needs.
func TestReplanBoundaryMatchStraddlingSwapEmitsOnce(t *testing.T) {
	e := New(&Config{Retention: time.Minute})
	reg, err := e.RegisterQuery(burstQuery(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	var emitted []MatchEvent
	e.Subscribe("", MatchSinkFunc(func(ev MatchEvent) { emitted = append(emitted, ev) }))

	ts := graph.Timestamp(0)
	// Two of the three edges arrive under the registration-time plan.
	e.ProcessEdge(hostEdge(1, 1, 2, "scan", ts.Add(time.Second)))
	e.ProcessEdge(hostEdge(2, 1, 3, "infect", ts.Add(2*time.Second)))
	if len(emitted) != 0 {
		t.Fatalf("no complete match yet, emitted %d", len(emitted))
	}
	if reg.Tree().PartialMatchCount() == 0 {
		t.Fatalf("expected stored partials before the swap")
	}

	// Hot-swap onto a structurally different plan.
	oldGen := reg.PlanGeneration()
	if err := e.ReplanNow("burst", decompose.StrategyEager); err != nil {
		t.Fatalf("ReplanNow: %v", err)
	}
	if reg.PlanGeneration() != oldGen+1 || reg.Replans() != 1 {
		t.Fatalf("plan generation not bumped: gen=%d replans=%d", reg.PlanGeneration(), reg.Replans())
	}
	if reg.Plan().Strategy != decompose.StrategyEager {
		t.Fatalf("strategy not swapped: %s", reg.Plan().Strategy)
	}
	if reg.Tree().PartialMatchCount() == 0 {
		t.Fatalf("replay did not rebuild partial state on the new tree")
	}

	// The final edge arrives under the new plan: the straddling match must
	// complete exactly once.
	e.ProcessEdge(hostEdge(3, 1, 3, "flow", ts.Add(3*time.Second)))
	if len(emitted) != 1 {
		t.Fatalf("straddling match emitted %d times, want 1", len(emitted))
	}
	if m := e.Metrics(); m.Replans != 1 || m.ReplanEdgesReplayed == 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestReplanAfterEmissionDoesNotDuplicate: a match fully emitted before the
// swap must not be re-emitted when the replay re-derives it on the new
// tree (the emitted-set is inherited across the boundary), and it must
// still deduplicate against post-swap re-arrivals.
func TestReplanAfterEmissionDoesNotDuplicate(t *testing.T) {
	e := New(&Config{Retention: time.Minute})
	reg, err := e.RegisterQuery(burstQuery(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	e.Subscribe("", MatchSinkFunc(func(MatchEvent) { emitted++ }))

	ts := graph.Timestamp(0)
	e.ProcessEdge(hostEdge(1, 1, 2, "scan", ts.Add(time.Second)))
	e.ProcessEdge(hostEdge(2, 1, 3, "infect", ts.Add(2*time.Second)))
	e.ProcessEdge(hostEdge(3, 1, 3, "flow", ts.Add(3*time.Second)))
	if emitted != 1 {
		t.Fatalf("expected the complete match before the swap, got %d", emitted)
	}

	for _, strat := range []decompose.Strategy{decompose.StrategyEager, decompose.StrategySelective, decompose.StrategyBalanced} {
		if err := e.ReplanNow("burst", strat); err != nil {
			t.Fatalf("ReplanNow(%s): %v", strat, err)
		}
		if emitted != 1 {
			t.Fatalf("replay under %s re-emitted the match: %d", strat, emitted)
		}
	}
	if reg.Replans() != 3 {
		t.Fatalf("replans = %d", reg.Replans())
	}
	if got := reg.Tree().CompleteCount(); got != 1 {
		t.Fatalf("emitted-count continuity lost across swaps: %d", got)
	}
	// Matches() (the registration counter) must not have drifted either.
	if reg.Matches() != 1 {
		t.Fatalf("registration match counter drifted: %d", reg.Matches())
	}
}

// TestReplanNowErrors covers the operational edges: unknown queries and
// unknown strategies fail without touching state.
func TestReplanNowErrors(t *testing.T) {
	e := New(nil)
	if err := e.ReplanNow("nope", ""); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("err = %v, want ErrUnknownQuery", err)
	}
	if _, err := e.RegisterQuery(burstQuery(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.ReplanNow("burst", decompose.Strategy("bogus")); !errors.Is(err, decompose.ErrUnknownStrategy) {
		t.Fatalf("err = %v, want ErrUnknownStrategy", err)
	}
	reg, _ := e.Registration("burst")
	if reg.PlanGeneration() != 1 || reg.Replans() != 0 {
		t.Fatalf("failed replans mutated state: gen=%d replans=%d", reg.PlanGeneration(), reg.Replans())
	}
}

// TestAdaptiveRegistrationLifecycle: the adaptive registration count that
// gates the drift tick follows register/unregister.
func TestAdaptiveRegistrationLifecycle(t *testing.T) {
	e := New(&Config{EnableSummaries: true, Replan: replanTestConfig()})
	if _, err := e.RegisterQuery(burstQuery(0), WithAdaptive(true)); err != nil {
		t.Fatal(err)
	}
	if e.adaptiveCount != 1 {
		t.Fatalf("adaptiveCount = %d", e.adaptiveCount)
	}
	if err := e.UnregisterQuery("burst"); err != nil {
		t.Fatal(err)
	}
	if e.adaptiveCount != 0 {
		t.Fatalf("adaptiveCount after unregister = %d", e.adaptiveCount)
	}
	// With no adaptive registrations the tick must stay silent.
	ts := graph.Timestamp(0)
	for i := 0; i < 100; i++ {
		ts = ts.Add(time.Millisecond)
		e.ProcessEdge(hostEdge(graph.EdgeID(i+1), 1, 2, "scan", ts))
	}
	if m := e.Metrics(); m.ReplanChecks != 0 {
		t.Fatalf("drift checks ran without adaptive registrations: %d", m.ReplanChecks)
	}
}
