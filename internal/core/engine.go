// Package core implements the StreamWorks continuous query engine: the
// component that ties the dynamic graph, the summarization layer, the query
// planner and the per-query SJ-Trees together (paper §4).
//
// Users register graph queries; the engine then consumes a stream of
// timestamped edges and, for every arriving edge, runs a local search for
// each registered query's leaf primitives that the edge can participate in,
// inserts the resulting primitive matches into the query's SJ-Tree and
// reports every complete match that emerges within the query's time window.
package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/mqo"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/replan"
	"github.com/streamworks/streamworks/internal/stats"
	"github.com/streamworks/streamworks/internal/stream"
)

// MatchEvent is one complete match reported by the engine.
type MatchEvent struct {
	// Query is the name of the registered query that matched.
	Query string
	// Match is the complete binding of the query graph in the data graph.
	Match *match.Match
	// DetectedAt is the stream watermark at the moment of detection; the
	// detection latency of an event is DetectedAt minus the event's last
	// edge timestamp (zero for in-order streams).
	DetectedAt graph.Timestamp
	// EmittedWallNS is the wall-clock nanosecond timestamp of emission,
	// stamped through the obs.Clock seam only when observability is enabled
	// (zero otherwise). Serving tiers subtract it from their own clock to
	// measure dispatch latency; it never influences matching.
	EmittedWallNS int64
	// ArrivedWallNS is the serving-tier arrival time of the edge whose
	// processing completed this match, copied from the StreamEdge envelope
	// when observability is enabled (zero otherwise, and zero for edges that
	// never crossed a serving tier). The flush point subtracts it to record
	// the match's full arrival-to-delivery journey.
	ArrivedWallNS int64
}

// String renders the event compactly.
func (e MatchEvent) String() string {
	return fmt.Sprintf("[%s] %s (detected at %d)", e.Query, e.Match, e.DetectedAt)
}

// MatchSink receives complete matches at the moment of emission, the push
// half of the engine API: front-ends register sinks once and the engine
// drives them, instead of every caller polling ProcessEdge's scratch-backed
// return slice. OnMatch is invoked synchronously on the goroutine driving
// the engine, so implementations must be fast and must not call back into
// the engine. The MatchEvent value is safe to retain.
type MatchSink interface {
	OnMatch(MatchEvent)
}

// MatchSinkFunc adapts a plain function to the MatchSink interface.
type MatchSinkFunc func(MatchEvent)

// OnMatch implements MatchSink.
func (f MatchSinkFunc) OnMatch(ev MatchEvent) { f(ev) }

// engineSink is one registered sink with its query filter.
type engineSink struct {
	id    int
	query string // "" subscribes to every query
	sink  MatchSink
}

// Config controls engine-wide behaviour.
type Config struct {
	// Retention is the width of the dynamic graph's sliding window. Zero
	// retains every edge; registrations with time windows extend it
	// automatically so no query can miss a match because data expired early.
	Retention time.Duration
	// Slack is the tolerated out-of-order arrival lag.
	Slack time.Duration
	// EnableSummaries turns on continuous statistics collection (degree,
	// type and triad distributions) used by the selective planner.
	EnableSummaries bool
	// TriadSampling is the 1-in-n sampling rate for triad statistics
	// (0 disables triads, 1 counts every edge). Only used when summaries
	// are enabled.
	TriadSampling int
	// PruneInterval is the number of processed edges between partial-match
	// pruning sweeps. Zero uses the default of 1024.
	PruneInterval int
	// Replan tunes adaptive re-planning for registrations created with
	// WithAdaptive: how often selectivity drift is checked, the hysteresis
	// threshold, and the per-query swap cooldown. Zero fields take the
	// replan package defaults. Adaptive planning needs live statistics, so
	// it is inert when EnableSummaries is false.
	Replan replan.Config
	// Obs configures hot-path observability: per-segment latency
	// histograms, the stream-time detection-lag histogram and sampled edge
	// tracing. Disabled by default; when enabled the engine reads wall time
	// exclusively through the configured obs.Clock (never a concrete clock
	// — swvet's walltime pass enforces the seam).
	Obs obs.Config
	// SharedPlans switches registration onto the multi-query shared-plan
	// path: instead of one SJ-Tree per query, all registered queries fold
	// into a single evaluation DAG (internal/mqo) in which structurally
	// identical subpatterns are computed once per edge and fanned out to
	// every query containing them. Emission semantics are unchanged —
	// shared-DAG mode produces byte-identical canonical match sets to the
	// per-query mode for queries registered before ingestion begins.
	SharedPlans bool
}

// DefaultConfig returns the configuration used by New when nil is passed.
func DefaultConfig() Config {
	return Config{
		EnableSummaries: true,
		TriadSampling:   10,
		PruneInterval:   1024,
	}
}

// Engine is the continuous query processor. It is not safe for concurrent
// use; callers stream edges from a single goroutine (shard streams across
// engines for parallelism).
type Engine struct {
	cfg     Config
	dyn     *graph.Dynamic
	summary *stats.Summary
	planner *decompose.Planner
	// est is the live estimator behind the planner: plans scored through it
	// reflect whatever the summary has learned so far, which is what lets
	// the replan tick notice selectivity drift.
	est *stats.Estimator

	// replanCfg is the normalized adaptive-planning policy; adaptiveCount
	// tracks how many registrations opted in (the tick is free when zero);
	// sinceReplanCheck counts edges towards the next drift check, and
	// lastReplanTotal is the summary edge count at the previous check so
	// idle heartbeats (Advance with no new statistics) skip the planner.
	replanCfg        replan.Config
	adaptiveCount    int
	sinceReplanCheck int
	lastReplanTotal  uint64

	registrations map[string]*Registration
	order         []string // registration order, for deterministic iteration

	// dag is the shared evaluation DAG, non-nil only under
	// Config.SharedPlans; dagEvents is where Registration.emitShared appends
	// MatchEvents during a DAG ProcessEdge or plan-swap replay (the DAG
	// emits through per-attachment callbacks rather than returning slices).
	dag       *mqo.DAG
	dagEvents []MatchEvent

	// evScratch is the per-edge match-event buffer reused across
	// ProcessEdge calls; see the ProcessEdge doc for the aliasing contract.
	evScratch []MatchEvent
	// expiredPending collects the IDs of edges evicted from the sliding
	// window since the last prune sweep; the sweep drains it through each
	// registration's SJ-Tree so stored partial matches never outlive the
	// data edges they bind (the window-less-query leak the expiry callback
	// exists to plug).
	expiredPending map[graph.EdgeID]struct{}

	// sinks are the registered per-query match subscriptions, dispatched at
	// the emission point (Registration.processCandidates). Like the rest of
	// the engine they are driver-goroutine state: Subscribe and the returned
	// cancel functions must be called from the goroutine streaming edges.
	sinks      []engineSink
	nextSinkID int

	metrics Metrics
	obs     engineObs
}

// New constructs an engine. cfg may be nil to use DefaultConfig.
func New(cfg *Config) *Engine {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	if c.PruneInterval <= 0 {
		c.PruneInterval = 1024
	}
	e := &Engine{
		cfg:            c,
		dyn:            graph.NewDynamic(c.Retention, graph.WithSlack(c.Slack)),
		registrations:  make(map[string]*Registration),
		expiredPending: make(map[graph.EdgeID]struct{}),
	}
	e.dyn.SetExpiryCallback(e.noteExpired)
	if c.EnableSummaries {
		e.summary = stats.NewSummary(stats.WithTriadSampling(c.TriadSampling))
	}
	e.est = stats.NewEstimator(e.summary)
	e.planner = decompose.NewPlanner(e.est)
	e.replanCfg = c.Replan.WithDefaults()
	e.obs = newEngineObs(c.Obs)
	if c.SharedPlans {
		e.dag = mqo.New(e.dyn, mqo.WithObs(c.Obs))
	}
	return e
}

// SharedPlans reports whether the engine runs the shared-plan DAG path.
func (e *Engine) SharedPlans() bool { return e.dag != nil }

// Graph exposes the engine's dynamic data graph (read-only use).
func (e *Engine) Graph() *graph.Dynamic { return e.dyn }

// Summary returns the engine's stream summary, or nil when summaries are
// disabled.
func (e *Engine) Summary() *stats.Summary { return e.summary }

// Registrations returns the names of all registered queries in registration
// order.
func (e *Engine) Registrations() []string {
	out := make([]string, len(e.order))
	copy(out, e.order)
	return out
}

// Registration returns the named registration.
func (e *Engine) Registration(name string) (*Registration, bool) {
	r, ok := e.registrations[name]
	return r, ok
}

// Registration errors.
var (
	// ErrDuplicateQuery is returned when a query with the same name is
	// already registered.
	ErrDuplicateQuery = errors.New("core: query already registered")
	// ErrUnknownQuery is returned by Unregister for unknown names.
	ErrUnknownQuery = errors.New("core: unknown query")
	// ErrNilQuery is returned when RegisterQuery is called with nil.
	ErrNilQuery = errors.New("core: nil query")
	// ErrRetentionTooSmall is returned when a query is registered mid-stream
	// with a time window wider than the retention already in force. Widening
	// retention after edges have been ingested cannot recover the edges that
	// were already expired, so such a registration could silently miss
	// matches; callers must either register wide queries up front or
	// configure a sufficiently large Retention.
	ErrRetentionTooSmall = errors.New("core: retention window too small for query window")
)

// RegisterQuery registers a continuous query. The query is decomposed with
// the configured strategy (selective by default, using whatever summary
// statistics have been collected so far) and an SJ-Tree is instantiated for
// it. Matches are reported both from ProcessEdge return values and through
// the registration's callback, if any.
func (e *Engine) RegisterQuery(q *query.Graph, opts ...RegistrationOption) (*Registration, error) {
	if q == nil {
		return nil, ErrNilQuery
	}
	name := q.Name()
	if name == "" {
		name = fmt.Sprintf("query-%d", len(e.registrations)+1)
	}
	if _, dup := e.registrations[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateQuery, name)
	}
	reg, err := newRegistration(e, name, q, opts...)
	if err != nil {
		return nil, err
	}
	if err := e.extendRetention(q.Window()); err != nil {
		return nil, fmt.Errorf("registering %q: %w", name, err)
	}
	if e.dag != nil {
		// extendRetention may have rebuilt the dynamic graph (pre-ingest
		// only); point the DAG at the live instance before attaching.
		e.dag.SetGraph(e.dyn)
		att, err := e.dag.Attach(name, q, reg.plan, mqo.AttachOptions{Emit: reg.emitShared})
		if err != nil {
			return nil, fmt.Errorf("registering %q: %w", name, err)
		}
		reg.att = att
	}
	e.registrations[name] = reg
	e.order = append(e.order, name)
	if reg.adaptive {
		e.adaptiveCount++
	}
	return reg, nil
}

// UnregisterQuery removes a registered query and discards its partial state.
func (e *Engine) UnregisterQuery(name string) error {
	reg, ok := e.registrations[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownQuery, name)
	}
	if reg.adaptive {
		e.adaptiveCount--
	}
	if e.dag != nil {
		if err := e.dag.Detach(name); err != nil {
			return err
		}
	}
	delete(e.registrations, name)
	for i, n := range e.order {
		if n == name {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	return nil
}

// extendRetention grows the dynamic graph's window so it is never smaller
// than the largest registered query window. A zero (unbounded) window always
// suffices. Growth is only possible before the first edge is ingested;
// afterwards edges outside the old window may already have expired, so a
// mid-stream registration needing more retention fails with
// ErrRetentionTooSmall rather than silently risking missed matches.
func (e *Engine) extendRetention(w time.Duration) error {
	if w <= 0 || e.dyn.Window() == 0 || w <= e.dyn.Window() {
		return nil
	}
	if e.dyn.AddedTotal() > 0 {
		return fmt.Errorf("%w: query window %s exceeds retention %s after %d edges",
			ErrRetentionTooSmall, w, e.dyn.Window(), e.dyn.AddedTotal())
	}
	e.dyn = graph.NewDynamic(w, graph.WithSlack(e.cfg.Slack), graph.WithExpiryCallback(e.noteExpired))
	return nil
}

// Subscribe registers a push subscription: sink receives every complete
// match of the query named by queryFilter ("" subscribes to all queries) as
// it is emitted, before ProcessEdge returns it. The filter may name a query
// that is not registered yet; matches flow once it is. The returned cancel
// function removes the subscription; both Subscribe and cancel must be
// called from the goroutine driving the engine.
func (e *Engine) Subscribe(queryFilter string, sink MatchSink) (cancel func()) {
	id := e.nextSinkID
	e.nextSinkID++
	e.sinks = append(e.sinks, engineSink{id: id, query: queryFilter, sink: sink})
	return func() {
		for i, s := range e.sinks {
			if s.id == id {
				e.sinks = append(e.sinks[:i], e.sinks[i+1:]...)
				return
			}
		}
	}
}

// dispatch pushes one emitted match to every subscribed sink whose filter
// admits it.
func (e *Engine) dispatch(ev MatchEvent) {
	for _, s := range e.sinks {
		if s.query == "" || s.query == ev.Query {
			s.sink.OnMatch(ev)
		}
	}
}

// noteExpired is the dynamic graph's expiry callback: it records the evicted
// edge for the next prune sweep, which forwards the batch to every
// registration's tree in one scan (Tree.PruneExpiredEdges) instead of
// scanning per expired edge.
func (e *Engine) noteExpired(de *graph.Edge) {
	e.expiredPending[de.ID] = struct{}{}
}

// ProcessEdge ingests one stream edge and returns the complete matches it
// produced across all registered queries. Out-of-order edges beyond the
// configured slack and duplicate edge IDs are counted and skipped rather
// than aborting the stream.
//
// The returned slice aliases an internal scratch buffer and is only valid
// until the next ProcessEdge call; callers that retain events across calls
// must copy the slice (the MatchEvent values themselves are safe to keep).
// swvet's scratchalias pass enforces that contract at every call site.
//
//swvet:scratch
func (e *Engine) ProcessEdge(se graph.StreamEdge) []MatchEvent {
	stored, err := e.dyn.Apply(se)
	if err != nil {
		e.metrics.EdgesDropped++
		return nil
	}
	e.metrics.EdgesProcessed++
	if e.summary != nil {
		e.summary.Observe(se, e.dyn.Graph())
	}
	if e.obs.enabled {
		e.obs.curArrival = se.ArrivedWallNS
	}

	// Sampled edge tracing: the gate is a nil check plus one modulo, and no
	// event is constructed unless this edge is sampled.
	var procStart int64
	traced := false
	if e.obs.enabled && e.obs.tracer.SampleEdge(uint64(stored.ID)) {
		traced = true
		procStart = e.obs.clock.Now()
	}

	events := e.evScratch[:0]
	if e.dag != nil {
		if e.obs.enabled {
			e.obs.curEdge = uint64(stored.ID)
		}
		// Shared path: one DAG pass covers every registration; emissions
		// arrive through Registration.emitShared, which appends to
		// e.dagEvents (pointed at the scratch slice for this call).
		e.dagEvents = events
		e.dag.ProcessEdge(stored)
		events = e.dagEvents
		e.dagEvents = nil
	} else {
		for _, name := range e.order {
			reg := e.registrations[name]
			events = reg.processEdge(stored, events)
		}
	}
	e.evScratch = events
	e.metrics.MatchesEmitted += uint64(len(events))

	if traced {
		now := e.obs.clock.Now()
		e.obs.tracer.Record(obs.TraceEvent{
			Stage:    obs.StageProcess,
			Shard:    e.obs.shard,
			EdgeID:   uint64(stored.ID),
			StreamTS: int64(stored.Timestamp),
			WallNS:   now,
			DurNS:    now - procStart,
		})
	}

	if e.metrics.EdgesProcessed%uint64(e.cfg.PruneInterval) == 0 {
		e.pruneAll()
	}
	if e.adaptiveCount > 0 {
		if e.sinceReplanCheck++; e.sinceReplanCheck >= e.replanCfg.CheckEvery {
			e.sinceReplanCheck = 0
			e.maybeReplanAll()
		}
	}
	return events
}

// ProcessBatch ingests a batch of edges (one time step) and returns the
// incremental matches produced by the batch, i.e. the paper's
// f(Gd, Gq, E(k+1)).
func (e *Engine) ProcessBatch(b stream.Batch) []MatchEvent {
	var events []MatchEvent
	for _, se := range b.Edges {
		events = append(events, e.ProcessEdge(se)...)
	}
	return events
}

// Run drains a stream source through the engine. fn, when non-nil, is
// invoked for every match event as it is produced. Run returns the total
// number of match events.
func (e *Engine) Run(src stream.Source, fn func(MatchEvent)) (int, error) {
	total := 0
	_, err := stream.Replay(src, func(se graph.StreamEdge) bool {
		for _, ev := range e.ProcessEdge(se) {
			total++
			if fn != nil {
				fn(ev)
			}
		}
		return true
	})
	return total, err
}

// Advance signals the passage of stream time to ts in the absence of edges:
// the dynamic graph's watermark moves forward (trailing ts by the configured
// slack, exactly as edge ingestion would), expiring out-of-window edges, and
// partial matches that can no longer complete are pruned. Sharded front-ends
// broadcast watermarks through this hook so that idle shards keep expiring
// and pruning at the same pace as the shards receiving edges.
func (e *Engine) Advance(ts graph.Timestamp) {
	before := e.dyn.Watermark()
	e.dyn.AdvanceTo(ts)
	if e.dyn.Watermark() != before {
		e.pruneAll()
		if e.adaptiveCount > 0 {
			// Stream time moved without edges: give drift detection a
			// chance too. maybeReplanAll short-circuits when the summary
			// has not changed, so idle-shard heartbeats stay cheap.
			e.maybeReplanAll()
		}
	}
}

// pruneAll removes partial matches that can no longer complete: for
// windowed queries, matches whose span start has aged past the window (this
// also covers every match referencing an expired edge, since retention is
// never narrower than the widest window); for window-less queries, matches
// referencing edges that have expired from the sliding window — without the
// expiry batch those partials would accumulate forever.
func (e *Engine) pruneAll() {
	e.metrics.PruneRuns++
	wm := e.dyn.Watermark()
	if e.dag != nil {
		e.metrics.PartialsPruned += uint64(e.dag.Prune(wm, e.expiredPending))
		clear(e.expiredPending)
		return
	}
	for _, name := range e.order {
		reg := e.registrations[name]
		if w := reg.query.Window(); w > 0 {
			cutoff := wm - graph.Timestamp(w)
			e.metrics.PartialsPruned += uint64(reg.tree.Prune(cutoff))
		} else {
			e.metrics.PartialsPruned += uint64(reg.tree.PruneExpiredEdges(e.expiredPending))
		}
	}
	clear(e.expiredPending)
}

// Metrics returns a snapshot of engine counters, including per-query detail.
func (e *Engine) Metrics() Metrics {
	m := e.metrics
	m.Registrations = uint64(len(e.registrations))
	m.LiveEdges = e.dyn.NumEdges()
	m.LiveVertices = e.dyn.NumVertices()
	m.ExpiredEdges = e.dyn.ExpiredTotal()
	if e.dag != nil {
		ds := e.dag.Stats()
		m.MQO = &ds
		m.PartialMatches = ds.PartialMatches
		m.LocalSearches = ds.LocalSearches
	}
	for _, name := range e.order {
		reg := e.registrations[name]
		qm := QueryMetrics{
			Name:           name,
			Strategy:       reg.plan.Strategy,
			Matches:        reg.matches,
			Adaptive:       reg.adaptive,
			PlanGeneration: reg.planGen,
			Replans:        reg.replans,
			PlanNodes:      reg.plan.NumNodes(),
			PlanDepth:      reg.plan.Depth(),
		}
		if reg.tree != nil {
			m.PartialMatches += reg.tree.PartialMatchCount()
			m.LocalSearches += reg.localSearches
			qm.PartialMatches = reg.tree.PartialMatchCount()
			qm.LocalSearches = reg.localSearches
			qm.Nodes = reg.nodeMetrics()
		} else {
			// Shared mode: the per-query view of the DAG. LocalSearches
			// reports the query's coverage (a shared leaf's searches count
			// for every query viewing it); the DAG-level totals above report
			// actual cost, and the gap between the two is the sharing win.
			qm.PartialMatches = reg.att.PartialMatches()
			qm.LocalSearches = reg.att.LeafSearches()
		}
		if n := len(reg.audits); n > 0 {
			audit := reg.audits[n-1]
			qm.LastReplanAudit = &audit
		}
		m.Queries = append(m.Queries, qm)
	}
	return m
}
