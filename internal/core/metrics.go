package core

import (
	"fmt"
	"strings"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/mqo"
	"github.com/streamworks/streamworks/internal/query"
)

// Metrics is a snapshot of engine counters. Obtain one with Engine.Metrics.
type Metrics struct {
	// EdgesProcessed is the number of stream edges admitted into the graph.
	EdgesProcessed uint64
	// EdgesDropped counts edges rejected for timestamp regression beyond the
	// slack or duplicate IDs.
	EdgesDropped uint64
	// MatchesEmitted is the total number of complete matches across queries.
	MatchesEmitted uint64
	// LocalSearches is the total number of primitive local searches run.
	LocalSearches uint64
	// PartialMatches is the number of partial matches currently stored
	// across all SJ-Trees (memory pressure proxy).
	PartialMatches int
	// PartialsPruned is the cumulative number of partial matches discarded
	// because they could no longer complete within their query windows.
	PartialsPruned uint64
	// PruneRuns is the number of pruning sweeps executed.
	PruneRuns uint64
	// Registrations is the number of currently registered (active) queries;
	// unregistering a query decreases it, keeping the snapshot truthful for
	// long-lived multi-tenant servers.
	Registrations uint64
	// Replans is the cumulative number of adaptive plan hot-swaps across all
	// registrations; ReplanChecks counts drift evaluations (a check costs a
	// trial decomposition per adaptive query, a replan additionally replays
	// the retained window), and ReplanEdgesReplayed is the total volume of
	// that replay work.
	Replans             uint64
	ReplanChecks        uint64
	ReplanEdgesReplayed uint64
	// LiveEdges / LiveVertices describe the current dynamic graph size.
	LiveEdges    int
	LiveVertices int
	// ExpiredEdges is the number of edges evicted from the sliding window.
	ExpiredEdges uint64
	// Queries holds per-registration detail.
	Queries []QueryMetrics
	// MQO is the shared-plan DAG snapshot, nil unless the engine runs with
	// Config.SharedPlans. Per-node stats are keyed by canonical signature,
	// so sharded front-ends aggregate them with mqo.MergeStats.
	MQO *mqo.Stats
}

// QueryMetrics is the per-registration portion of a metrics snapshot.
type QueryMetrics struct {
	Name           string
	Strategy       decompose.Strategy
	Matches        uint64
	PartialMatches int
	LocalSearches  uint64
	// Plan detail: Adaptive reports whether the registration opted into
	// re-planning, PlanGeneration is the running plan's generation (1 = the
	// registration-time plan; sharded engines report the maximum across
	// shards), Replans counts completed hot-swaps (summed across shards),
	// and PlanNodes/PlanDepth describe the current SJ-Tree shape.
	Adaptive       bool
	PlanGeneration uint64
	Replans        uint64
	PlanNodes      int
	PlanDepth      int
	// Nodes holds live per-SJ-tree-node statistics in plan (pre-order)
	// order: the observed side of the selectivity estimates the plan was
	// built from. Sharded engines report the node detail of the shard with
	// the newest plan generation (summing across shards would mix plans).
	Nodes []NodeMetrics
	// LastReplanAudit is the most recent adaptive drift-check record
	// (fired or declined), nil until the first check runs.
	LastReplanAudit *ReplanAudit
}

// NodeMetrics is one SJ-tree node's slice of a metrics snapshot.
type NodeMetrics struct {
	// Edges lists the query pattern edges the node's subgraph covers.
	Edges  []query.EdgeID
	IsLeaf bool
	// Stored/Inserted are the live and cumulative match counts;
	// Partitions is the current number of cut-projection hash partitions.
	Stored     int
	Inserted   uint64
	Partitions int
	// JoinAttempts/JoinHits count sibling-join probes and successes;
	// Pruned counts matches discarded from the node.
	JoinAttempts uint64
	JoinHits     uint64
	Pruned       uint64
	// EstCardinality is the planner's estimate for the node's subgraph at
	// plan-install time; ObservedRatio is Inserted / EstCardinality (zero
	// when the estimate is zero) — above 1 the estimator undershot, below
	// 1 it overshot.
	EstCardinality float64
	ObservedRatio  float64
}

// String renders the snapshot as a small fixed-width report.
func (m Metrics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "edges=%d dropped=%d matches=%d partials=%d localSearches=%d liveEdges=%d liveVertices=%d expired=%d replans=%d\n",
		m.EdgesProcessed, m.EdgesDropped, m.MatchesEmitted, m.PartialMatches,
		m.LocalSearches, m.LiveEdges, m.LiveVertices, m.ExpiredEdges, m.Replans)
	if m.MQO != nil {
		fmt.Fprintf(&sb, "  mqo: nodes=%d shared=%d sharedHits=%d attachments=%d\n",
			m.MQO.Nodes, m.MQO.SharedNodes, m.MQO.SharedHits, m.MQO.Attachments)
	}
	for _, q := range m.Queries {
		fmt.Fprintf(&sb, "  %-24s strategy=%-10s matches=%-8d partials=%-8d searches=%-8d plan=gen%d/replans%d\n",
			q.Name, q.Strategy, q.Matches, q.PartialMatches, q.LocalSearches, q.PlanGeneration, q.Replans)
	}
	return sb.String()
}
