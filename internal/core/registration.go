package core

import (
	"fmt"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/isomorphism"
	"github.com/streamworks/streamworks/internal/match"
	"github.com/streamworks/streamworks/internal/mqo"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/replan"
	"github.com/streamworks/streamworks/internal/sjtree"
)

// RegistrationOption configures how a query is registered.
type RegistrationOption func(*registrationConfig)

type registrationConfig struct {
	strategy decompose.Strategy
	plan     *decompose.Plan
	callback func(MatchEvent)
	adaptive bool
}

// WithStrategy selects the decomposition strategy for the query (default:
// the paper's selectivity-ordered decomposition).
func WithStrategy(s decompose.Strategy) RegistrationOption {
	return func(c *registrationConfig) { c.strategy = s }
}

// WithPlan supplies a pre-built decomposition plan, bypassing the planner.
// Used by the plan-comparison experiments and by callers that persist plans.
func WithPlan(p *decompose.Plan) RegistrationOption {
	return func(c *registrationConfig) { c.plan = p }
}

// WithCallback registers fn to be invoked synchronously for every complete
// match of this query.
func WithCallback(fn func(MatchEvent)) RegistrationOption {
	return func(c *registrationConfig) { c.callback = fn }
}

// WithAdaptive opts the registration into adaptive re-planning: the engine
// periodically re-costs the running decomposition against the live stream
// statistics (Config.Replan tunes the cadence and hysteresis) and hot-swaps
// the SJ-Tree when the frozen plan has drifted far enough from what current
// selectivities would produce. The swap preserves the match stream exactly:
// state is rebuilt from the retained window and emissions are deduplicated
// across the boundary. Requires Config.EnableSummaries; without statistics
// the drift check never fires.
func WithAdaptive(enabled bool) RegistrationOption {
	return func(c *registrationConfig) { c.adaptive = enabled }
}

// leafCandidate identifies one (leaf node, pattern edge) pair whose local
// search an arriving data edge may seed, together with the precomputed
// connected ordering of the leaf's pattern edges starting at that seed —
// orders depend only on the pattern, so computing them per arriving edge
// would be pure hot-path waste.
type leafCandidate struct {
	leaf  *sjtree.Node
	qe    query.EdgeID
	order []query.EdgeID
}

// Registration is the runtime state of one registered continuous query.
type Registration struct {
	engine  *Engine
	name    string
	query   *query.Graph
	plan    *decompose.Plan
	tree    *sjtree.Tree
	matcher *isomorphism.Matcher
	// att is the query's attachment to the shared evaluation DAG; it is
	// non-nil exactly when tree is nil (Config.SharedPlans).
	att *mqo.Attachment

	// candidatesByType indexes leaf pattern edges by their required edge
	// type; the empty key holds wildcard pattern edges that every arriving
	// edge must be tested against.
	candidatesByType map[string][]leafCandidate

	callback      func(MatchEvent)
	matches       uint64
	localSearches uint64

	// Adaptive re-planning state: strategy is what the planner re-runs on a
	// drift check (the strategy the registration was created with, or the
	// supplied plan's), det applies the hysteresis policy, planGen counts
	// plan generations (1 = the registration-time plan) and replans counts
	// completed hot-swaps.
	adaptive bool
	strategy decompose.Strategy
	det      replan.Detector
	planGen  uint64
	replans  uint64

	// nodeEst freezes the planner's per-node cardinality estimates for the
	// running plan, in the tree's pre-order, so per-node metrics can report
	// observed-vs-estimated ratios against the numbers the plan was chosen
	// with. audits is a ring of the most recent drift-check audit records
	// (fires and declines alike); see ReplanAudit.
	nodeEst []float64
	audits  []ReplanAudit

	// prims is the scratch buffer reused by processEdge for the primitive
	// matches of each local search; only the backing array is reused, the
	// matches themselves are owned by the SJ-Tree once inserted.
	prims []*match.Match

	// opts is the option list the registration was created with, retained so
	// front-ends (e.g. the sharded engine) can replicate the registration
	// onto other engines with identical semantics.
	opts []RegistrationOption
}

func newRegistration(e *Engine, name string, q *query.Graph, opts ...RegistrationOption) (*Registration, error) {
	cfg := registrationConfig{strategy: decompose.StrategySelective}
	for _, o := range opts {
		o(&cfg)
	}
	plan := cfg.plan
	if plan == nil {
		var err error
		plan, err = e.planner.Plan(q, cfg.strategy)
		if err != nil {
			return nil, fmt.Errorf("core: planning %q: %w", name, err)
		}
	} else if plan.Query != q {
		return nil, fmt.Errorf("core: supplied plan is for a different query")
	}
	var tree *sjtree.Tree
	if e.dag == nil {
		// Shared-plan engines realize the plan as DAG nodes instead
		// (Engine.RegisterQuery attaches after retention is settled).
		var err error
		tree, err = sjtree.New(plan)
		if err != nil {
			return nil, fmt.Errorf("core: building SJ-Tree for %q: %w", name, err)
		}
	}
	r := &Registration{
		engine:   e,
		name:     name,
		query:    q,
		plan:     plan,
		tree:     tree,
		matcher:  isomorphism.New(q),
		callback: cfg.callback,
		adaptive: cfg.adaptive,
		strategy: plan.Strategy,
		det:      replan.NewDetector(e.replanCfg),
		planGen:  1,
		opts:     opts,
	}
	r.nodeEst = nodeEstimates(e.est, plan)
	if r.tree != nil {
		r.rebuildCandidates()
	}
	return r, nil
}

// rebuildCandidates (re)derives the per-edge-type index of (leaf, seed
// edge) pairs with their precomputed connected orders from the current
// tree. It runs at registration and again after every plan swap — the new
// tree's leaves are a different partition of the pattern edges.
func (r *Registration) rebuildCandidates() {
	r.candidatesByType = make(map[string][]leafCandidate)
	for _, leaf := range r.tree.Leaves() {
		for _, qe := range leaf.Edges() {
			order := r.matcher.ConnectedOrder(leaf.Edges(), qe)
			if order == nil {
				// Disconnected primitives are rejected by plan validation;
				// skip defensively rather than register a dead candidate.
				continue
			}
			t := r.query.Edge(qe).Type
			r.candidatesByType[t] = append(r.candidatesByType[t], leafCandidate{leaf: leaf, qe: qe, order: order})
		}
	}
}

// Name returns the registration name.
func (r *Registration) Name() string { return r.name }

// Query returns the registered query graph.
func (r *Registration) Query() *query.Graph { return r.query }

// Plan returns the decomposition plan in use.
func (r *Registration) Plan() *decompose.Plan { return r.plan }

// Tree returns the registration's SJ-Tree (read-only use: stats, display).
// It is nil when the engine runs with Config.SharedPlans — the query's state
// then lives in the shared DAG; see Attachment.
func (r *Registration) Tree() *sjtree.Tree { return r.tree }

// Attachment returns the query's shared-DAG attachment, or nil when the
// engine runs per-query SJ-Trees.
func (r *Registration) Attachment() *mqo.Attachment { return r.att }

// Options returns the option list the registration was created with,
// allowing a front-end to clone the registration onto another engine.
func (r *Registration) Options() []RegistrationOption { return r.opts }

// Adaptive reports whether the registration opted into adaptive
// re-planning.
func (r *Registration) Adaptive() bool { return r.adaptive }

// PlanGeneration returns the current plan generation: 1 for the
// registration-time plan, incremented by every hot-swap.
func (r *Registration) PlanGeneration() uint64 { return r.planGen }

// Replans returns how many plan hot-swaps this registration has undergone.
func (r *Registration) Replans() uint64 { return r.replans }

// Matches returns the number of complete matches reported so far.
func (r *Registration) Matches() uint64 { return r.matches }

// NodeMetrics returns live per-SJ-tree-node statistics in plan (pre-order)
// order, pairing each node's observed counters with the cardinality
// estimate the running plan was installed with.
func (r *Registration) NodeMetrics() []NodeMetrics { return r.nodeMetrics() }

func (r *Registration) nodeMetrics() []NodeMetrics {
	if r.tree == nil {
		return nil
	}
	perNode := r.tree.Stats().PerNodeStored
	out := make([]NodeMetrics, len(perNode))
	for i, ns := range perNode {
		nm := NodeMetrics{
			Edges:        ns.Edges,
			IsLeaf:       ns.IsLeaf,
			Stored:       ns.Stored,
			Inserted:     ns.Inserted,
			Partitions:   ns.Partitions,
			JoinAttempts: ns.JoinAttempts,
			JoinHits:     ns.JoinHits,
			Pruned:       ns.Pruned,
		}
		if i < len(r.nodeEst) {
			nm.EstCardinality = r.nodeEst[i]
			if nm.EstCardinality > 0 {
				nm.ObservedRatio = float64(nm.Inserted) / nm.EstCardinality
			}
		}
		out[i] = nm
	}
	return out
}

// LocalSearches returns the number of primitive local searches executed.
func (r *Registration) LocalSearches() uint64 { return r.localSearches }

// processEdge runs the per-edge incremental step for this query: for every
// leaf pattern edge the new data edge could match, perform a local search of
// the leaf's primitive seeded by the edge and push the resulting primitive
// matches into the SJ-Tree. Match events are appended to events, which is
// returned.
func (r *Registration) processEdge(de *graph.Edge, events []MatchEvent) []MatchEvent {
	events = r.processCandidates(r.candidatesByType[de.Type], de, events)
	if de.Type != "" {
		events = r.processCandidates(r.candidatesByType[""], de, events)
	}
	return events
}

func (r *Registration) processCandidates(cands []leafCandidate, de *graph.Edge, events []MatchEvent) []MatchEvent {
	o := &r.engine.obs
	for i := range cands {
		c := &cands[i]
		if !r.query.Edge(c.qe).MatchesEdge(de) {
			continue
		}
		r.localSearches++
		if o.enabled {
			// Segment timing through the obs.Clock seam: the search and the
			// join+emission halves of the candidate are measured separately
			// so loadgen's breakdown can tell isomorphism cost from
			// hash-join cost.
			t0 := o.clock.Now()
			r.prims = r.matcher.LocalSearchInto(r.prims[:0], r.engine.dyn.Graph(), c.order, de)
			t1 := o.clock.Now()
			o.localSearch.Observe(t1 - t0)
			events = r.insertPrims(c.leaf, de, events)
			o.join.Observe(o.clock.Now() - t1)
		} else {
			r.prims = r.matcher.LocalSearchInto(r.prims[:0], r.engine.dyn.Graph(), c.order, de)
			events = r.insertPrims(c.leaf, de, events)
		}
	}
	return events
}

// emitShared is the shared-DAG emission point, mirroring insertPrims' tail:
// the DAG invokes it (via the attachment's Emit callback) for every complete
// match of this query, already remapped into the query's own pattern space
// and deduplicated. Events accumulate on engine.dagEvents, which ProcessEdge
// (and the plan-swap replay) points at the appropriate buffer.
func (r *Registration) emitShared(qm *match.Match) {
	e := r.engine
	o := &e.obs
	ev := MatchEvent{
		Query:      r.name,
		Match:      qm,
		DetectedAt: e.dyn.Watermark(),
	}
	if o.enabled {
		ev.EmittedWallNS = o.clock.Now()
		ev.ArrivedWallNS = o.curArrival
		if qm.HasSpan() {
			o.detectLag.Observe(int64(ev.DetectedAt - qm.Span.End))
		}
		if o.tracer.SampleEdge(o.curEdge) {
			o.tracer.Record(obs.TraceEvent{
				Stage:    obs.StageMatch,
				Shard:    o.shard,
				EdgeID:   o.curEdge,
				StreamTS: int64(ev.DetectedAt),
				WallNS:   ev.EmittedWallNS,
				Query:    r.name,
			})
		}
	}
	r.matches++
	if r.callback != nil {
		r.callback(ev)
	}
	e.dispatch(ev)
	e.dagEvents = append(e.dagEvents, ev)
}

// insertPrims pushes the scratch primitive matches into the SJ-Tree and
// emits every complete match that results: callback, engine sinks, event
// slice, and — when observability is on — the detection-lag histogram and a
// sampled match trace event.
func (r *Registration) insertPrims(leaf *sjtree.Node, de *graph.Edge, events []MatchEvent) []MatchEvent {
	o := &r.engine.obs
	for _, pm := range r.prims {
		for _, cm := range r.tree.Insert(leaf, pm) {
			ev := MatchEvent{
				Query:      r.name,
				Match:      cm,
				DetectedAt: r.engine.dyn.Watermark(),
			}
			if o.enabled {
				ev.EmittedWallNS = o.clock.Now()
				ev.ArrivedWallNS = o.curArrival
				if cm.HasSpan() {
					o.detectLag.Observe(int64(ev.DetectedAt - cm.Span.End))
				}
				if o.tracer.SampleEdge(uint64(de.ID)) {
					o.tracer.Record(obs.TraceEvent{
						Stage:    obs.StageMatch,
						Shard:    o.shard,
						EdgeID:   uint64(de.ID),
						StreamTS: int64(ev.DetectedAt),
						WallNS:   ev.EmittedWallNS,
						Query:    r.name,
					})
				}
			}
			r.matches++
			if r.callback != nil {
				r.callback(ev)
			}
			r.engine.dispatch(ev)
			events = append(events, ev)
		}
	}
	return events
}
