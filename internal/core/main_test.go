package core

import (
	"testing"

	"github.com/streamworks/streamworks/internal/testutil/leakcheck"
)

// TestMain gates the package on goroutine hygiene: the core engine promises
// that Close stops delivery and drains subscriptions, so any goroutine
// outliving the tests is a shutdown bug, not noise.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
