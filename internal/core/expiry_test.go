package core

import (
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

// pathQuery is a two-hop pattern with no time window: its partial matches
// never age out by span, so only the dynamic graph's expiry callback can
// reclaim them.
func pathQuery() *query.Graph {
	return query.NewBuilder("path").
		Vertex("a", "Host").
		Vertex("b", "Host").
		Vertex("c", "Host").
		Edge("a", "b", "hop1").
		Edge("b", "c", "hop2").
		MustBuild()
}

// TestEngineExpiryPrunesUnwindowedPartials proves the dynamic graph's expiry
// callback is wired into the SJ-Trees: half-matches of a window-less query
// are dropped once the edges they bind fall out of the retention window,
// instead of accumulating forever.
func TestEngineExpiryPrunesUnwindowedPartials(t *testing.T) {
	e := New(&Config{Retention: 10 * time.Second, PruneInterval: 4, EnableSummaries: false})
	// The eager strategy stores each lone hop1 edge as a partial match;
	// the selective plan would fold the two-hop query into one primitive
	// and store nothing for unmatched halves.
	reg, err := e.RegisterQuery(pathQuery(), WithStrategy(decompose.StrategyEager))
	if err != nil {
		t.Fatalf("RegisterQuery: %v", err)
	}
	base := graph.TimestampFromTime(time.Unix(1000, 0))
	// Half-matches only: hop1 edges with no completing hop2.
	for i := 0; i < 8; i++ {
		se := hostEdge(graph.EdgeID(i+1), graph.VertexID(2*i+1), graph.VertexID(2*i+2), "hop1", base)
		if got := e.ProcessEdge(se); len(got) != 0 {
			t.Fatalf("unexpected complete match: %v", got)
		}
	}
	if got := reg.Tree().PartialMatchCount(); got != 8 {
		t.Fatalf("PartialMatchCount = %d, want 8", got)
	}
	// Jump stream time far past retention: all hop1 edges expire, and the
	// prune triggered by the watermark move must drain them from the tree.
	e.Advance(base.Add(time.Minute))
	if live := e.Graph().NumEdges(); live != 0 {
		t.Fatalf("%d edges still live after advance", live)
	}
	if got := reg.Tree().PartialMatchCount(); got != 0 {
		t.Fatalf("PartialMatchCount = %d after expiry, want 0", got)
	}
	if m := e.Metrics(); m.PartialsPruned != 8 {
		t.Fatalf("PartialsPruned = %d, want 8", m.PartialsPruned)
	}
}

// TestEngineExpiryCallbackSurvivesRetentionRebuild registers a windowed
// query wide enough to force extendRetention to rebuild the dynamic graph,
// then checks the rebuilt graph still reports expiries into the engine (the
// window-less query's partials are pruned as before).
func TestEngineExpiryCallbackSurvivesRetentionRebuild(t *testing.T) {
	e := New(&Config{Retention: 5 * time.Second, PruneInterval: 4, EnableSummaries: false})
	// Wider window than retention, registered before any edge: retention is
	// rebuilt to 30s.
	widened := query.NewBuilder("windowed").
		Window(30*time.Second).
		Vertex("a", "Host").
		Vertex("b", "Host").
		Edge("a", "b", "other").
		MustBuild()
	if _, err := e.RegisterQuery(widened); err != nil {
		t.Fatalf("RegisterQuery(windowed): %v", err)
	}
	if got := e.Graph().Window(); got != 30*time.Second {
		t.Fatalf("retention not widened: %s", got)
	}
	reg, err := e.RegisterQuery(pathQuery(), WithStrategy(decompose.StrategyEager))
	if err != nil {
		t.Fatalf("RegisterQuery(path): %v", err)
	}
	base := graph.TimestampFromTime(time.Unix(1000, 0))
	for i := 0; i < 4; i++ {
		e.ProcessEdge(hostEdge(graph.EdgeID(i+1), graph.VertexID(2*i+1), graph.VertexID(2*i+2), "hop1", base))
	}
	if got := reg.Tree().PartialMatchCount(); got != 4 {
		t.Fatalf("PartialMatchCount = %d, want 4", got)
	}
	e.Advance(base.Add(2 * time.Minute))
	if got := reg.Tree().PartialMatchCount(); got != 0 {
		t.Fatalf("PartialMatchCount = %d after expiry on rebuilt graph, want 0 (expiry callback lost in extendRetention?)", got)
	}
}
