package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

// probeQuery shares its icmp_echo_req edge with smurfQuery.
func probeQuery(window time.Duration) *query.Graph {
	return query.NewBuilder("probe").
		Window(window).
		Vertex("scanner", "Host").
		Vertex("target", "Host").
		Vertex("resolver", "Host").
		Edge("scanner", "target", "icmp_echo_req").
		Edge("target", "resolver", "dns").
		MustBuild()
}

// exfilQuery is a 3-edge chain overlapping both of the above.
func exfilQuery(window time.Duration) *query.Graph {
	return query.NewBuilder("exfil").
		Window(window).
		Vertex("a", "Host").
		Vertex("b", "Host").
		Vertex("c", "Host").
		Vertex("d", "Host").
		Edge("a", "b", "icmp_echo_req").
		Edge("b", "c", "dns").
		Edge("c", "d", "ftp").
		MustBuild()
}

// randomHostStream generates a deterministic pseudo-random edge stream over a
// small vertex universe so overlapping patterns complete often.
func randomHostStream(seed int64, n int) []graph.StreamEdge {
	rng := rand.New(rand.NewSource(seed))
	types := []string{"icmp_echo_req", "icmp_echo_reply", "dns", "ftp", "http"}
	base := graph.TimestampFromTime(time.Unix(5000, 0))
	edges := make([]graph.StreamEdge, n)
	for i := range edges {
		src := graph.VertexID(rng.Intn(24) + 1)
		dst := graph.VertexID(rng.Intn(24) + 1)
		if dst == src {
			dst = src%24 + 1
		}
		edges[i] = hostEdge(
			graph.EdgeID(i+1), src, dst,
			types[rng.Intn(len(types))],
			base.Add(time.Duration(i)*200*time.Millisecond),
		)
	}
	return edges
}

// matchSets runs edges through e and returns, per query, the sorted set of
// canonical match signatures.
func matchSets(t *testing.T, e *Engine, edges []graph.StreamEdge) map[string][]string {
	t.Helper()
	sets := map[string][]string{}
	for _, se := range edges {
		for _, ev := range e.ProcessEdge(se) {
			sets[ev.Query] = append(sets[ev.Query], ev.Match.Signature())
		}
	}
	for q := range sets {
		sort.Strings(sets[q])
	}
	return sets
}

// TestSharedPlansParity: the shared-DAG engine must emit byte-identical
// per-query match sets to the per-query engine, across strategies, on a
// stream dense enough to exercise joins, windows and pruning.
func TestSharedPlansParity(t *testing.T) {
	for _, strat := range decompose.Strategies() {
		t.Run(string(strat), func(t *testing.T) {
			mk := func(sharedPlans bool) *Engine {
				cfg := DefaultConfig()
				cfg.SharedPlans = sharedPlans
				cfg.PruneInterval = 64
				e := New(&cfg)
				for _, q := range []*query.Graph{
					smurfQuery(30 * time.Second),
					probeQuery(time.Minute),
					exfilQuery(2 * time.Minute),
				} {
					if _, err := e.RegisterQuery(q, WithStrategy(strat)); err != nil {
						t.Fatalf("register %s: %v", q.Name(), err)
					}
				}
				return e
			}
			edges := randomHostStream(42, 4000)
			perQuery := matchSets(t, mk(false), edges)
			shared := matchSets(t, mk(true), edges)
			total := 0
			for q, want := range perQuery {
				got := shared[q]
				if len(got) != len(want) {
					t.Fatalf("%s: shared emitted %d matches, per-query %d", q, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: match set diverges at %d:\n  shared    %s\n  per-query %s", q, i, got[i], want[i])
					}
				}
				total += len(want)
			}
			for q := range shared {
				if _, ok := perQuery[q]; !ok {
					t.Fatalf("shared mode emitted for %s, per-query mode did not", q)
				}
			}
			if total == 0 {
				t.Fatalf("parity check vacuous: no matches at all")
			}
		})
	}
}

// TestSharedPlansSharingVisible: overlapping queries must actually share —
// DAG nodes fewer than the sum of plan nodes, shared hits accumulating, and
// the mqo_shared_hits metric surfaced through Metrics.
func TestSharedPlansSharingVisible(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SharedPlans = true
	e := New(&cfg)
	planNodes := 0
	for _, q := range []*query.Graph{smurfQuery(time.Minute), probeQuery(time.Minute), exfilQuery(time.Minute)} {
		reg, err := e.RegisterQuery(q, WithStrategy(decompose.StrategyEager))
		if err != nil {
			t.Fatal(err)
		}
		planNodes += reg.Plan().NumNodes()
	}
	m := e.Metrics()
	if m.MQO == nil {
		t.Fatalf("Metrics.MQO nil on a shared-plans engine")
	}
	if m.MQO.Nodes >= planNodes {
		t.Fatalf("no structural sharing: %d DAG nodes for %d plan nodes", m.MQO.Nodes, planNodes)
	}
	if m.MQO.SharedNodes == 0 {
		t.Fatalf("no node marked shared")
	}
	for _, se := range randomHostStream(7, 1000) {
		e.ProcessEdge(se)
	}
	m = e.Metrics()
	if m.MQO.SharedHits == 0 {
		t.Fatalf("no shared hits after 1000 edges over overlapping queries")
	}
	if m.MQO.LocalSearches == 0 || m.LocalSearches != m.MQO.LocalSearches {
		t.Fatalf("DAG local searches not surfaced: engine=%d dag=%d", m.LocalSearches, m.MQO.LocalSearches)
	}
}

// TestSharedPlansChurn: register/unregister cycles interleaved with ingest
// must drop exactly the refcount-zero DAG nodes and leave survivors matching.
func TestSharedPlansChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SharedPlans = true
	cfg.PruneInterval = 32
	e := New(&cfg)
	if _, err := e.RegisterQuery(smurfQuery(0), WithStrategy(decompose.StrategyEager)); err != nil {
		t.Fatal(err)
	}
	baseNodes := e.Metrics().MQO.Nodes
	edges := randomHostStream(99, 2400)
	smurfMatches := uint64(0)
	for i, se := range edges {
		switch i % 400 {
		case 100:
			if _, err := e.RegisterQuery(probeQuery(0), WithStrategy(decompose.StrategyEager)); err != nil {
				t.Fatalf("edge %d: register probe: %v", i, err)
			}
			if got := e.Metrics().MQO.Nodes; got != baseNodes+2 {
				t.Fatalf("edge %d: nodes after probe attach = %d, want %d", i, got, baseNodes+2)
			}
		case 300:
			if err := e.UnregisterQuery("probe"); err != nil {
				t.Fatalf("edge %d: unregister probe: %v", i, err)
			}
			// Probe's dns leaf and join must be collected; the shared
			// icmp_echo_req leaf and the rest of smurf's nodes must stay.
			if got := e.Metrics().MQO.Nodes; got != baseNodes {
				t.Fatalf("edge %d: nodes after probe detach = %d, want %d", i, got, baseNodes)
			}
		}
		e.ProcessEdge(se)
	}
	reg, _ := e.Registration("smurf")
	smurfMatches = reg.Matches()
	if smurfMatches == 0 {
		t.Fatalf("smurf never matched across churn")
	}
	// The surviving query's match stream must equal a churn-free engine's.
	cfg2 := DefaultConfig()
	cfg2.SharedPlans = true
	cfg2.PruneInterval = 32
	ref := New(&cfg2)
	if _, err := ref.RegisterQuery(smurfQuery(0), WithStrategy(decompose.StrategyEager)); err != nil {
		t.Fatal(err)
	}
	refSets := matchSets(t, ref, edges)
	if got := uint64(len(refSets["smurf"])); got != smurfMatches {
		t.Fatalf("churn changed smurf's match count: %d with churn, %d without", smurfMatches, got)
	}
	if err := e.UnregisterQuery("smurf"); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().MQO.Nodes; got != 0 {
		t.Fatalf("nodes after last unregister = %d, want 0", got)
	}
}

// TestSharedPlansReplan: ReplanNow on a shared-plans engine swaps the
// query's attachment without losing or duplicating matches, and keeps
// sharing intact for the untouched queries.
func TestSharedPlansReplan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SharedPlans = true
	e := New(&cfg)
	var got []string
	if _, err := e.RegisterQuery(smurfQuery(time.Minute),
		WithStrategy(decompose.StrategySelective),
		WithCallback(func(ev MatchEvent) { got = append(got, ev.Match.Signature()) }),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterQuery(probeQuery(time.Minute), WithStrategy(decompose.StrategyEager)); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(6000, 0))
	e.ProcessEdge(hostEdge(1, 1, 2, "icmp_echo_req", base))
	e.ProcessEdge(hostEdge(2, 2, 3, "icmp_echo_reply", base.Add(time.Second)))
	e.ProcessEdge(hostEdge(3, 5, 6, "icmp_echo_req", base.Add(2*time.Second)))
	if len(got) != 1 {
		t.Fatalf("pre-replan matches: %v", got)
	}
	if err := e.ReplanNow("smurf", decompose.StrategyEager); err != nil {
		t.Fatalf("ReplanNow: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("replan replay duplicated emissions: %d", len(got))
	}
	reg, _ := e.Registration("smurf")
	if reg.PlanGeneration() != 2 || reg.Replans() != 1 {
		t.Fatalf("plan generation/replans = %d/%d", reg.PlanGeneration(), reg.Replans())
	}
	if reg.Tree() != nil {
		t.Fatalf("shared-mode registration grew a tree after replan")
	}
	if reg.Attachment() == nil || reg.Attachment().Plan().Strategy != decompose.StrategyEager {
		t.Fatalf("attachment not swapped onto the eager plan")
	}
	// The dangling request must complete post-swap (state carried over).
	e.ProcessEdge(hostEdge(4, 6, 7, "icmp_echo_reply", base.Add(3*time.Second)))
	if len(got) != 2 {
		t.Fatalf("post-swap completion lost: %v", got)
	}
	// Replan metrics flow like the per-query path's.
	m := e.Metrics()
	if m.Replans != 1 {
		t.Fatalf("Metrics.Replans = %d", m.Replans)
	}
	// smurf (eager) and probe (eager) now share the echo_req leaf.
	if m.MQO.SharedNodes == 0 {
		t.Fatalf("no sharing between smurf and probe after swap onto eager")
	}
}

// TestSharedPlansWindowParityAfterPrune: pruning in shared mode must not
// change emissions relative to per-query mode (windowed and window-less
// queries together, with expiry-driven pruning in play).
func TestSharedPlansWindowParityAfterPrune(t *testing.T) {
	mk := func(sharedPlans bool) *Engine {
		cfg := DefaultConfig()
		cfg.SharedPlans = sharedPlans
		cfg.Retention = 90 * time.Second
		cfg.PruneInterval = 16
		e := New(&cfg)
		for _, q := range []*query.Graph{smurfQuery(10 * time.Second), probeQuery(0)} {
			if _, err := e.RegisterQuery(q, WithStrategy(decompose.StrategyEager)); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	edges := randomHostStream(1234, 3000)
	want := matchSets(t, mk(false), edges)
	got := matchSets(t, mk(true), edges)
	for q, w := range want {
		g := got[q]
		if fmt.Sprint(g) != fmt.Sprint(w) {
			t.Fatalf("%s diverged: shared %d matches, per-query %d", q, len(g), len(w))
		}
	}
	if len(want["smurf"]) == 0 && len(want["probe"]) == 0 {
		t.Fatalf("vacuous: no matches")
	}
}
