package core

import (
	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/stats"
)

// engineObs is the engine's resolved observability state. Handles are
// resolved once at construction so the per-edge cost is one branch when
// disabled and plain atomic adds when enabled; the wall clock only ever
// arrives through the obs.Clock seam (swvet's walltime pass keeps concrete
// clocks out of this package).
type engineObs struct {
	enabled  bool
	clock    obs.Clock
	registry *obs.Registry
	tracer   *obs.Tracer
	shard    int32

	// Pre-resolved segment histograms: wall time spent in leaf-primitive
	// local searches and in SJ-tree join propagation, per processed edge.
	localSearch *obs.Histogram
	join        *obs.Histogram
	// detectLag is the stream-time detection lag per emitted match
	// (DetectedAt − match span end) — pure timestamp arithmetic, no clock.
	detectLag *obs.Histogram

	// curArrival is the serving-tier arrival stamp of the edge currently
	// inside ProcessEdge (StreamEdge.ArrivedWallNS, zero when the edge never
	// crossed a serving tier). The engine is single-threaded, so one field
	// suffices; insertPrims copies it onto every match the edge completes.
	curArrival int64
	// curEdge is the stored ID of that same edge, kept for the shared-DAG
	// emission path: emitShared has no *graph.Edge in hand (the DAG emits
	// through callbacks), so trace sampling reads the ID from here.
	curEdge uint64
}

func newEngineObs(c obs.Config) engineObs {
	c = c.Normalized()
	if !c.Enabled {
		return engineObs{}
	}
	return engineObs{
		enabled:     true,
		clock:       c.Clock,
		registry:    c.Registry,
		tracer:      c.Tracer,
		shard:       c.Shard,
		localSearch: c.Registry.Segment(obs.SegLocalSearch),
		join:        c.Registry.Segment(obs.SegSJTreeJoin),
		detectLag:   c.Registry.Histogram(obs.DetectLagHistogramName, "", ""),
	}
}

// ObsEnabled reports whether the engine was built with observability on.
func (e *Engine) ObsEnabled() bool { return e.obs.enabled }

// ObsRegistry returns the engine's metric registry, or nil when
// observability is disabled. Snapshots are safe from any goroutine.
func (e *Engine) ObsRegistry() *obs.Registry { return e.obs.registry }

// nodeEstimates walks a plan in the same pre-order as sjtree.Tree builds its
// node list and returns the estimator's cardinality estimate for every
// node's subgraph. The engine freezes these alongside each installed plan so
// per-node metrics can report observed-vs-estimated ratios against the
// estimates the plan was actually chosen with.
func nodeEstimates(est *stats.Estimator, p *decompose.Plan) []float64 {
	var out []float64
	var walk func(n *decompose.Node)
	walk = func(n *decompose.Node) {
		if n == nil {
			return
		}
		out = append(out, est.SubgraphCardinality(p.Query, n.Edges))
		walk(n.Left)
		walk(n.Right)
	}
	walk(p.Root)
	return out
}
