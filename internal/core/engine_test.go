package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/isomorphism"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/stream"
)

func smurfQuery(window time.Duration) *query.Graph {
	return query.NewBuilder("smurf").
		Window(window).
		Vertex("attacker", "Host").
		Vertex("amplifier", "Host").
		Vertex("victim", "Host").
		Edge("attacker", "amplifier", "icmp_echo_req").
		Edge("amplifier", "victim", "icmp_echo_reply").
		MustBuild()
}

func hostEdge(id graph.EdgeID, src, dst graph.VertexID, typ string, ts graph.Timestamp) graph.StreamEdge {
	return graph.StreamEdge{
		Edge:       graph.Edge{ID: id, Source: src, Target: dst, Type: typ, Timestamp: ts},
		SourceType: "Host",
		TargetType: "Host",
	}
}

func TestEngineDetectsSmurfPattern(t *testing.T) {
	e := New(nil)
	var fromCallback []MatchEvent
	reg, err := e.RegisterQuery(smurfQuery(time.Minute), WithCallback(func(ev MatchEvent) {
		fromCallback = append(fromCallback, ev)
	}))
	if err != nil {
		t.Fatalf("RegisterQuery: %v", err)
	}
	base := graph.TimestampFromTime(time.Unix(1000, 0))
	edges := []graph.StreamEdge{
		hostEdge(1, 1, 2, "icmp_echo_req", base),
		hostEdge(2, 5, 6, "dns", base.Add(time.Second)),
		hostEdge(3, 2, 3, "icmp_echo_reply", base.Add(2*time.Second)),
	}
	var events []MatchEvent
	for _, se := range edges {
		events = append(events, e.ProcessEdge(se)...)
	}
	if len(events) != 1 {
		t.Fatalf("expected 1 match event, got %d", len(events))
	}
	if len(fromCallback) != 1 {
		t.Fatalf("callback not invoked")
	}
	ev := events[0]
	if ev.Query != "smurf" {
		t.Fatalf("event query = %q", ev.Query)
	}
	amp, _ := ev.Match.Vertex(1)
	if amp != 2 {
		t.Fatalf("amplifier binding = %v", amp)
	}
	if reg.Matches() != 1 {
		t.Fatalf("registration match counter = %d", reg.Matches())
	}
	if ev.String() == "" {
		t.Fatalf("event String() empty")
	}
}

func TestEngineWindowPreventsStaleMatch(t *testing.T) {
	e := New(nil)
	if _, err := e.RegisterQuery(smurfQuery(time.Second)); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(2000, 0))
	var events []MatchEvent
	events = append(events, e.ProcessEdge(hostEdge(1, 1, 2, "icmp_echo_req", base))...)
	// The reply arrives 10s later: outside the 1s query window.
	events = append(events, e.ProcessEdge(hostEdge(2, 2, 3, "icmp_echo_reply", base.Add(10*time.Second)))...)
	if len(events) != 0 {
		t.Fatalf("stale match reported: %v", events)
	}
	// A fresh request followed quickly by a reply still matches.
	events = append(events, e.ProcessEdge(hostEdge(3, 7, 8, "icmp_echo_req", base.Add(20*time.Second)))...)
	events = append(events, e.ProcessEdge(hostEdge(4, 8, 9, "icmp_echo_reply", base.Add(20*time.Second+500*time.Millisecond)))...)
	if len(events) != 1 {
		t.Fatalf("fresh match not reported: %v", events)
	}
}

func TestEngineRegistrationErrors(t *testing.T) {
	e := New(nil)
	if _, err := e.RegisterQuery(nil); !errors.Is(err, ErrNilQuery) {
		t.Fatalf("nil query: %v", err)
	}
	q := smurfQuery(0)
	if _, err := e.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterQuery(q); !errors.Is(err, ErrDuplicateQuery) {
		t.Fatalf("duplicate not rejected: %v", err)
	}
	if err := e.UnregisterQuery("smurf"); err != nil {
		t.Fatalf("UnregisterQuery: %v", err)
	}
	if err := e.UnregisterQuery("smurf"); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("double unregister: %v", err)
	}
	if _, err := e.RegisterQuery(q); err != nil {
		t.Fatalf("re-register after unregister: %v", err)
	}
	if _, err := e.RegisterQuery(smurfQuery(0), WithStrategy(decompose.Strategy("bogus"))); err == nil {
		t.Fatalf("bogus strategy accepted")
	}
}

func TestEngineAnonymousQueryGetsName(t *testing.T) {
	e := New(nil)
	q := query.NewBuilder("").
		Vertex("a", "Host").Vertex("b", "Host").
		Edge("a", "b", "flow").
		MustBuild()
	reg, err := e.RegisterQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Name() == "" {
		t.Fatalf("anonymous query not assigned a name")
	}
	if got := e.Registrations(); len(got) != 1 || got[0] != reg.Name() {
		t.Fatalf("Registrations() = %v", got)
	}
	if _, ok := e.Registration(reg.Name()); !ok {
		t.Fatalf("Registration lookup failed")
	}
}

func TestEngineWithExplicitPlan(t *testing.T) {
	e := New(nil)
	q := smurfQuery(0)
	plan, err := decompose.NewPlanner(nil).Plan(q, decompose.StrategyEager)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := e.RegisterQuery(q, WithPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Plan() != plan {
		t.Fatalf("explicit plan not used")
	}
	// A plan for a different query object must be rejected.
	other := smurfQuery(0)
	e2 := New(nil)
	if _, err := e2.RegisterQuery(other, WithPlan(plan)); err == nil {
		t.Fatalf("foreign plan accepted")
	}
}

func TestEngineDropsBadEdges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retention = time.Minute
	e := New(&cfg)
	if _, err := e.RegisterQuery(smurfQuery(time.Minute)); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(3000, 0))
	e.ProcessEdge(hostEdge(1, 1, 2, "icmp_echo_req", base))
	// Duplicate ID.
	e.ProcessEdge(hostEdge(1, 1, 2, "icmp_echo_req", base.Add(time.Second)))
	// Very late edge, far beyond slack.
	e.ProcessEdge(hostEdge(2, 3, 4, "icmp_echo_req", base.Add(-time.Hour)))
	m := e.Metrics()
	if m.EdgesProcessed != 1 {
		t.Fatalf("EdgesProcessed = %d", m.EdgesProcessed)
	}
	if m.EdgesDropped != 2 {
		t.Fatalf("EdgesDropped = %d", m.EdgesDropped)
	}
}

func TestEngineMetricsAndString(t *testing.T) {
	e := New(nil)
	if _, err := e.RegisterQuery(smurfQuery(time.Minute)); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(4000, 0))
	e.ProcessEdge(hostEdge(1, 1, 2, "icmp_echo_req", base))
	e.ProcessEdge(hostEdge(2, 2, 3, "icmp_echo_reply", base.Add(time.Second)))
	m := e.Metrics()
	if m.EdgesProcessed != 2 || m.MatchesEmitted != 1 {
		t.Fatalf("metrics wrong: %+v", m)
	}
	if len(m.Queries) != 1 || m.Queries[0].Name != "smurf" || m.Queries[0].Matches != 1 {
		t.Fatalf("per-query metrics wrong: %+v", m.Queries)
	}
	if m.LocalSearches == 0 {
		t.Fatalf("local searches not counted")
	}
	if !strings.Contains(m.String(), "smurf") {
		t.Fatalf("Metrics.String() missing query name")
	}
	if e.Summary() == nil {
		t.Fatalf("summaries enabled by default")
	}
	if e.Graph().NumEdges() != 2 {
		t.Fatalf("dynamic graph size wrong")
	}
}

func TestEngineSummariesDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableSummaries = false
	e := New(&cfg)
	if e.Summary() != nil {
		t.Fatalf("summary should be nil when disabled")
	}
	if _, err := e.RegisterQuery(smurfQuery(0)); err != nil {
		t.Fatalf("registration without summaries failed: %v", err)
	}
	base := graph.TimestampFromTime(time.Unix(5000, 0))
	e.ProcessEdge(hostEdge(1, 1, 2, "icmp_echo_req", base))
	e.ProcessEdge(hostEdge(2, 2, 3, "icmp_echo_reply", base.Add(time.Second)))
	if e.Metrics().MatchesEmitted != 1 {
		t.Fatalf("engine without summaries missed the match")
	}
}

func TestEngineProcessBatchAndRun(t *testing.T) {
	base := graph.TimestampFromTime(time.Unix(6000, 0))
	edges := []graph.StreamEdge{
		hostEdge(1, 1, 2, "icmp_echo_req", base),
		hostEdge(2, 2, 3, "icmp_echo_reply", base.Add(time.Second)),
		hostEdge(3, 10, 11, "icmp_echo_req", base.Add(2*time.Second)),
		hostEdge(4, 11, 12, "icmp_echo_reply", base.Add(3*time.Second)),
	}
	e := New(nil)
	if _, err := e.RegisterQuery(smurfQuery(time.Minute)); err != nil {
		t.Fatal(err)
	}
	events := e.ProcessBatch(stream.Batch{Seq: 0, Edges: edges})
	if len(events) != 2 {
		t.Fatalf("ProcessBatch found %d matches, want 2", len(events))
	}

	e2 := New(nil)
	if _, err := e2.RegisterQuery(smurfQuery(time.Minute)); err != nil {
		t.Fatal(err)
	}
	var streamed int
	total, err := e2.Run(stream.NewSliceSource(edges), func(MatchEvent) { streamed++ })
	if err != nil || total != 2 || streamed != 2 {
		t.Fatalf("Run = %d, %d, %v", total, streamed, err)
	}
}

func TestEnginePruningBoundsPartialState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retention = 10 * time.Second
	cfg.PruneInterval = 50
	e := New(&cfg)
	// Use the eager strategy so each lone request edge becomes a stored
	// partial match (the selective plan folds this two-edge query into a
	// single primitive and would store nothing for unmatched requests).
	if _, err := e.RegisterQuery(smurfQuery(5*time.Second), WithStrategy(decompose.StrategyEager)); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(7000, 0))
	// A long stream of only requests: partial matches accumulate but must be
	// pruned as the window slides.
	for i := 0; i < 500; i++ {
		ts := base.Add(time.Duration(i) * time.Second)
		e.ProcessEdge(hostEdge(graph.EdgeID(i+1), graph.VertexID(i), graph.VertexID(i+10000), "icmp_echo_req", ts))
	}
	m := e.Metrics()
	if m.PartialsPruned == 0 {
		t.Fatalf("no partial matches pruned: %+v", m)
	}
	if m.PartialMatches > 100 {
		t.Fatalf("partial state unbounded: %d live partials", m.PartialMatches)
	}
	if m.ExpiredEdges == 0 {
		t.Fatalf("window never expired edges")
	}
}

func TestEngineMultipleQueriesShareStream(t *testing.T) {
	e := New(nil)
	if _, err := e.RegisterQuery(smurfQuery(time.Minute)); err != nil {
		t.Fatal(err)
	}
	scan := query.NewBuilder("fanout").
		Window(time.Minute).
		Vertex("src", "Host").
		Vertex("d1", "Host").
		Vertex("d2", "Host").
		Edge("src", "d1", "icmp_echo_req").
		Edge("src", "d2", "icmp_echo_req").
		MustBuild()
	if _, err := e.RegisterQuery(scan); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(8000, 0))
	var perQuery = map[string]int{}
	edges := []graph.StreamEdge{
		hostEdge(1, 1, 2, "icmp_echo_req", base),
		hostEdge(2, 1, 3, "icmp_echo_req", base.Add(time.Second)),
		hostEdge(3, 2, 9, "icmp_echo_reply", base.Add(2*time.Second)),
	}
	for _, se := range edges {
		for _, ev := range e.ProcessEdge(se) {
			perQuery[ev.Query]++
		}
	}
	if perQuery["smurf"] != 1 {
		t.Fatalf("smurf matches = %d, want 1", perQuery["smurf"])
	}
	// Fan-out of two requests from host 1: orderings (d1=2,d2=3) and (d1=3,d2=2).
	if perQuery["fanout"] != 2 {
		t.Fatalf("fanout matches = %d, want 2", perQuery["fanout"])
	}
}

func TestEngineMidStreamRegistrationRetentionTooSmall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retention = 10 * time.Second
	e := New(&cfg)
	base := graph.TimestampFromTime(time.Unix(9000, 0))
	e.ProcessEdge(hostEdge(1, 1, 2, "icmp_echo_req", base))
	// A query whose window exceeds the in-force retention, registered after
	// edges were ingested, must be rejected: edges it would need may already
	// have expired, so accepting it could silently miss matches.
	if _, err := e.RegisterQuery(smurfQuery(time.Minute)); !errors.Is(err, ErrRetentionTooSmall) {
		t.Fatalf("mid-stream wide registration: got %v, want ErrRetentionTooSmall", err)
	}
	// The failed registration must leave no trace.
	if got := e.Registrations(); len(got) != 0 {
		t.Fatalf("failed registration left state: %v", got)
	}
	if e.Metrics().Registrations != 0 {
		t.Fatalf("failed registration counted: %+v", e.Metrics())
	}
	// Queries fitting the current retention still register fine mid-stream.
	if _, err := e.RegisterQuery(smurfQuery(5 * time.Second)); err != nil {
		t.Fatalf("narrow mid-stream registration rejected: %v", err)
	}
	// Before any edge, wide registrations widen retention instead.
	e2 := New(&cfg)
	if _, err := e2.RegisterQuery(smurfQuery(time.Minute)); err != nil {
		t.Fatalf("pre-stream wide registration rejected: %v", err)
	}
	if got := e2.Graph().Window(); got != time.Minute {
		t.Fatalf("retention not widened pre-stream: %s", got)
	}
}

func TestEngineUnregisterQueryMidStream(t *testing.T) {
	e := New(nil)
	if _, err := e.RegisterQuery(smurfQuery(time.Minute)); err != nil {
		t.Fatal(err)
	}
	fanout := query.NewBuilder("fanout").
		Window(time.Minute).
		Vertex("src", "Host").
		Vertex("d1", "Host").
		Vertex("d2", "Host").
		Edge("src", "d1", "icmp_echo_req").
		Edge("src", "d2", "icmp_echo_req").
		MustBuild()
	if _, err := e.RegisterQuery(fanout); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(9500, 0))
	// Seed both queries with a half-complete pattern: one echo request.
	e.ProcessEdge(hostEdge(1, 1, 2, "icmp_echo_req", base))
	if err := e.UnregisterQuery("smurf"); err != nil {
		t.Fatalf("UnregisterQuery mid-stream: %v", err)
	}
	// The reply would have completed the smurf match; no event may be
	// emitted for the unregistered query, while fanout keeps matching.
	events := e.ProcessEdge(hostEdge(2, 2, 3, "icmp_echo_reply", base.Add(time.Second)))
	events = append(events, e.ProcessEdge(hostEdge(3, 1, 4, "icmp_echo_req", base.Add(2*time.Second)))...)
	for _, ev := range events {
		if ev.Query == "smurf" {
			t.Fatalf("unregistered query still emitting: %v", ev)
		}
	}
	m := e.Metrics()
	if len(m.Queries) != 1 || m.Queries[0].Name != "fanout" {
		t.Fatalf("metrics still reporting unregistered query: %+v", m.Queries)
	}
	if m.Queries[0].Matches != 2 {
		t.Fatalf("surviving registration disturbed: %+v", m.Queries[0])
	}
	// The unregistered query's partial state is gone: no lingering partials
	// beyond the surviving registration's own.
	reg, _ := e.Registration("fanout")
	if m.PartialMatches != reg.Tree().PartialMatchCount() {
		t.Fatalf("dropped registration's partials still counted: %d vs %d",
			m.PartialMatches, reg.Tree().PartialMatchCount())
	}
	// Pruning sweeps must not trip over the removed registration.
	for i := 0; i < 2100; i++ {
		ts := base.Add(time.Duration(i+3) * time.Second)
		e.ProcessEdge(hostEdge(graph.EdgeID(i+10), graph.VertexID(i+100), graph.VertexID(i+5000), "icmp_echo_req", ts))
	}
}

// TestEngineMatchesOfflineGroundTruth streams a random multi-relational
// graph through the engine (all strategies) and compares the reported
// matches with an offline exhaustive search over the final graph, with the
// query window disabled so the two result sets must coincide exactly.
func TestEngineMatchesOfflineGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	types := []string{"flow", "dns", "login"}
	const nVertices = 40
	const nEdges = 300
	edges := make([]graph.StreamEdge, 0, nEdges)
	for i := 0; i < nEdges; i++ {
		src := graph.VertexID(rng.Intn(nVertices))
		dst := graph.VertexID(rng.Intn(nVertices))
		for dst == src {
			dst = graph.VertexID(rng.Intn(nVertices))
		}
		edges = append(edges, hostEdge(graph.EdgeID(i+1), src, dst, types[rng.Intn(len(types))], graph.Timestamp(i)))
	}
	q := query.NewBuilder("wedge").
		Vertex("a", "Host").
		Vertex("b", "Host").
		Vertex("c", "Host").
		Edge("a", "b", "flow").
		Edge("b", "c", "dns").
		MustBuild()

	// Offline ground truth.
	g := graph.New(graph.WithAutoVertices())
	for _, se := range edges {
		if _, err := g.AddStreamEdge(se); err != nil {
			t.Fatal(err)
		}
	}
	offline := isomorphism.New(q).FindAll(g, q.EdgeIDs(), 0)
	truth := make(map[string]bool, len(offline))
	for _, m := range offline {
		truth[m.Signature()] = true
	}
	if len(truth) == 0 {
		t.Fatalf("degenerate fixture: no offline matches")
	}

	for _, strategy := range decompose.Strategies() {
		t.Run(string(strategy), func(t *testing.T) {
			e := New(nil)
			if _, err := e.RegisterQuery(q, WithStrategy(strategy)); err != nil {
				t.Fatal(err)
			}
			found := make(map[string]bool)
			for _, se := range edges {
				for _, ev := range e.ProcessEdge(se) {
					found[ev.Match.Signature()] = true
				}
			}
			if len(found) != len(truth) {
				t.Fatalf("strategy %s: incremental %d vs offline %d matches", strategy, len(found), len(truth))
			}
			for sig := range truth {
				if !found[sig] {
					t.Fatalf("strategy %s: missing match %s", strategy, sig)
				}
			}
		})
	}
}
