package core

import (
	"fmt"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/replan"
	"github.com/streamworks/streamworks/internal/sjtree"
	"github.com/streamworks/streamworks/internal/stats"
)

// This file is the mechanism half of adaptive re-planning (the policy lives
// in internal/replan): detecting that a registration's frozen SJ-Tree
// decomposition has drifted away from what the live statistics would
// produce, and hot-swapping the registration onto a fresh plan without
// losing or duplicating a single match.
//
// The swap works because two invariants already hold:
//
//  1. The dynamic graph retains every edge that can still participate in a
//     match (retention is never narrower than the widest query window), so
//     replaying the retained window through a freshly built tree rebuilds
//     exactly the partial-match state the new plan needs.
//  2. Complete-match identity is the bound data-edge set (EdgeSetHash), and
//     the new tree inherits the old tree's emitted-set, so a match
//     re-derived during replay is recognized and suppressed as a duplicate
//     while a match that only completes across the swap boundary is
//     emitted exactly once.

// replanAuditRing bounds how many drift-check audit records a registration
// retains.
const replanAuditRing = 8

// ReplanNodeAudit is the per-SJ-tree-node slice of a drift-check audit: the
// node's cardinality estimate under the window estimator the check used,
// next to what the node has actually seen. Nodes appear in the tree's
// pre-order, matching QueryMetrics.Nodes.
type ReplanNodeAudit struct {
	Edges          []query.EdgeID `json:"edges"`
	IsLeaf         bool           `json:"is_leaf"`
	EstCardinality float64        `json:"est_cardinality"`
	Inserted       uint64         `json:"inserted"`
	Stored         int            `json:"stored"`
}

// ReplanAudit records one adaptive drift-check decision — fired or declined
// — with the evidence it was made on: the frozen and fresh plan costs under
// the window estimator, the detector's ratio, and the frozen plan's per-node
// estimated-vs-observed cardinalities at the moment of the check. The last
// replanAuditRing records are retained per registration and surfaced through
// Registration.ReplanAudits and QueryMetrics.LastReplanAudit, giving
// estimator validation something to chew on even when the detector never
// fires.
type ReplanAudit struct {
	Query      string          `json:"query"`
	CheckedAt  graph.Timestamp `json:"checked_at"`
	FrozenCost float64         `json:"frozen_cost"`
	FreshCost  float64         `json:"fresh_cost"`
	Ratio      float64         `json:"ratio"`
	Swapped    bool            `json:"swapped"`
	// PlanGeneration is the generation in force after the decision (a swap
	// increments it).
	PlanGeneration uint64            `json:"plan_generation"`
	Nodes          []ReplanNodeAudit `json:"nodes,omitempty"`
}

// recordAudit appends a to the registration's audit ring.
func (r *Registration) recordAudit(a ReplanAudit) {
	if len(r.audits) >= replanAuditRing {
		copy(r.audits, r.audits[1:])
		r.audits = r.audits[:len(r.audits)-1]
	}
	r.audits = append(r.audits, a)
}

// ReplanAudits returns the retained drift-check audit records, oldest first.
// The slice is a copy; the per-record Nodes slices are shared snapshots.
func (r *Registration) ReplanAudits() []ReplanAudit {
	out := make([]ReplanAudit, len(r.audits))
	copy(out, r.audits)
	return out
}

// nodeAudit captures the frozen plan's per-node estimated-vs-observed state
// under est.
func nodeAudit(est *stats.Estimator, reg *Registration) []ReplanNodeAudit {
	if reg.tree == nil {
		// Shared-plan mode: per-node observations live in the DAG, keyed by
		// canonical signature rather than this query's plan shape; the audit
		// keeps its cost evidence and omits the per-node breakdown.
		return nil
	}
	perNode := reg.tree.Stats().PerNodeStored
	ests := nodeEstimates(est, reg.plan)
	out := make([]ReplanNodeAudit, len(perNode))
	for i, ns := range perNode {
		a := ReplanNodeAudit{
			Edges:    ns.Edges,
			IsLeaf:   ns.IsLeaf,
			Inserted: ns.Inserted,
			Stored:   ns.Stored,
		}
		if i < len(ests) {
			a.EstCardinality = ests[i]
		}
		out[i] = a
	}
	return out
}

// maybeReplanAll runs one drift check across all adaptive registrations.
// Both the trial plan and the cost comparison use a *window* estimator over
// the retained graph rather than the cumulative summary: cumulative counts
// dampen a mid-stream mix rotation roughly linearly in stream length, while
// the retention window forgets the old regime as fast as its edges expire —
// it is the current selectivity landscape the running plan must answer to.
// Each adaptive registration is swapped when the detector's hysteresis
// fires. Checks are skipped entirely while the summary has not observed new
// edges since the previous check (idle-shard watermark heartbeats).
func (e *Engine) maybeReplanAll() {
	if e.adaptiveCount == 0 || e.summary == nil {
		return
	}
	total := e.summary.TotalEdges()
	if total == e.lastReplanTotal {
		return
	}
	e.lastReplanTotal = total
	now := e.dyn.Watermark()
	wEst := stats.NewEstimatorFrom(stats.GraphSource{G: e.dyn.Graph()})
	wPlanner := decompose.NewPlanner(wEst)
	for _, name := range e.order {
		reg := e.registrations[name]
		if !reg.adaptive {
			continue
		}
		e.metrics.ReplanChecks++
		fresh, err := wPlanner.Plan(reg.query, reg.strategy)
		if err != nil {
			// Planning against the current statistics failed; keep the
			// running plan — it is valid, just possibly stale.
			continue
		}
		if fresh.EqualStructure(reg.plan) {
			continue
		}
		frozenCost := replan.PlanCost(wEst, reg.plan)
		freshCost := replan.PlanCost(wEst, fresh)
		ratio, swap := reg.det.Should(frozenCost, freshCost, total, now)
		// The audit's per-node evidence must be captured before a swap
		// replaces the tree it describes.
		audit := ReplanAudit{
			Query:          name,
			CheckedAt:      now,
			FrozenCost:     frozenCost,
			FreshCost:      freshCost,
			Ratio:          ratio,
			Swapped:        swap,
			PlanGeneration: reg.planGen,
			Nodes:          nodeAudit(wEst, reg),
		}
		if swap {
			if err := e.installPlan(reg, fresh, wEst); err != nil {
				audit.Swapped = false
			} else {
				reg.det.NoteSwap(now)
				audit.PlanGeneration = reg.planGen
			}
		}
		reg.recordAudit(audit)
	}
}

// ReplanNow forces an immediate plan swap for the named registration: a
// fresh decomposition is computed against the current statistics with the
// given strategy ("" keeps the registration's own) and installed
// unconditionally, bypassing the drift detector. Regression tests and
// operational tooling use it; the periodic tick goes through the detector.
// Like every engine method it must be called from the driving goroutine.
func (e *Engine) ReplanNow(name string, strategy decompose.Strategy) error {
	reg, ok := e.registrations[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownQuery, name)
	}
	s := strategy
	if s == "" {
		s = reg.strategy
	}
	wEst := stats.NewEstimatorFrom(stats.GraphSource{G: e.dyn.Graph()})
	fresh, err := decompose.NewPlanner(wEst).Plan(reg.query, s)
	if err != nil {
		return fmt.Errorf("core: re-planning %q: %w", name, err)
	}
	if err := e.installPlan(reg, fresh, wEst); err != nil {
		return err
	}
	reg.det.NoteSwap(e.dyn.Watermark())
	return nil
}

// installPlan dispatches a plan swap to the mode-appropriate mechanism.
func (e *Engine) installPlan(reg *Registration, plan *decompose.Plan, est *stats.Estimator) error {
	if e.dag != nil {
		return e.swapPlanShared(reg, plan, est)
	}
	return e.swapPlan(reg, plan, est)
}

// swapPlan installs plan as reg's live decomposition: a new SJ-Tree is
// built, it inherits the old tree's emitted-match identity (the cross-swap
// dedup), the per-edge-type candidate index is rebuilt for the new leaves,
// and the retained window is replayed through the new tree to reconstruct
// every partial match that could still complete. Matches that emerge during
// replay flow through the normal emission path (callback, sinks, counters);
// in the expected case they are all already-emitted duplicates and the
// inherited dedup silences them.
func (e *Engine) swapPlan(reg *Registration, plan *decompose.Plan, est *stats.Estimator) error {
	tree, err := sjtree.New(plan)
	if err != nil {
		return fmt.Errorf("core: building SJ-Tree for %q: %w", reg.name, err)
	}
	tree.InheritEmitted(reg.tree)
	reg.plan = plan
	reg.tree = tree
	reg.nodeEst = nodeEstimates(est, plan)
	reg.rebuildCandidates()
	reg.planGen++
	reg.replans++
	e.metrics.Replans++

	replayed := 0
	e.dyn.ForEachLiveEdge(func(de *graph.Edge) bool {
		events := reg.processEdge(de, nil)
		// Replay emissions bypass ProcessEdge's event accounting; fold any
		// genuinely new completions (a match the old plan had not surfaced
		// yet) into the emitted counter here so metrics stay truthful.
		e.metrics.MatchesEmitted += uint64(len(events))
		replayed++
		return true
	})
	e.metrics.ReplanEdgesReplayed += uint64(replayed)
	return nil
}

// swapPlanShared is swapPlan's shared-DAG counterpart: the DAG re-attaches
// the registration under the new plan while the old plan's nodes are still
// live, so subtrees common to both plans — and anything shared with other
// queries — keep their state instead of being replayed. Only genuinely new
// DAG nodes are backfilled from the retained window (mqo.DAG.Swap); the
// inherited emitted-set keeps the match stream exactly-once across the
// boundary, and emissions produced during backfill flow through emitShared
// like any other.
func (e *Engine) swapPlanShared(reg *Registration, plan *decompose.Plan, est *stats.Estimator) error {
	// emitShared appends to e.dagEvents; stash whatever buffer an enclosing
	// ProcessEdge call is accumulating into and give the swap its own, so
	// replay emissions are counted here without leaking into the caller's
	// per-edge slice.
	saved := e.dagEvents
	e.dagEvents = nil
	att, err := e.dag.Swap(reg.name, plan, reg.emitShared)
	if err != nil {
		e.dagEvents = saved
		return fmt.Errorf("core: shared-plan swap for %q: %w", reg.name, err)
	}
	e.metrics.MatchesEmitted += uint64(len(e.dagEvents))
	e.dagEvents = saved
	reg.att = att
	reg.plan = plan
	reg.nodeEst = nodeEstimates(est, plan)
	reg.planGen++
	reg.replans++
	e.metrics.Replans++
	e.metrics.ReplanEdgesReplayed += att.ReplayedEdges()
	return nil
}
