// Package faultfs is the fault-injection side of the durability harness:
// a wal.FS that writes through to a real directory but fails on cue.
// Tests use it to produce exactly the disk pathologies the WAL must
// survive — short writes, fsync errors, disk-full, torn final frames —
// and to simulate a crash point (CrashNow) after which the old manager
// can no longer touch the directory and a fresh engine may recover it.
package faultfs

import (
	"errors"
	"io"
	"sync"

	"github.com/streamworks/streamworks/internal/wal"
)

var (
	// ErrInjected is returned by writes that hit an armed write budget.
	ErrInjected = errors.New("faultfs: injected write error")
	// ErrDiskFull is returned by writes while disk-full mode is armed.
	ErrDiskFull = errors.New("faultfs: no space left on device")
	// ErrCrashed is returned by every operation after CrashNow.
	ErrCrashed = errors.New("faultfs: crashed")
)

// FS wraps the real filesystem with injectable failures. The zero value is
// not usable; call New.
type FS struct {
	real wal.FS

	mu       sync.Mutex
	crashed  bool
	fsyncErr error
	diskFull bool
	// writeBudget is the number of bytes writes may still persist before
	// failing; -1 means unlimited. A write that crosses the boundary
	// persists only the remaining budget — a short write leaving a torn
	// frame on disk.
	writeBudget int64
}

// New returns a write-through FS over the real filesystem with no faults
// armed.
func New() *FS {
	return &FS{real: wal.OSFS{}, writeBudget: -1}
}

// CrashNow freezes the filesystem: every subsequent operation through it
// fails with ErrCrashed. The files already on disk are untouched, exactly
// like the page cache surviving a SIGKILL, so the directory can be
// reopened with the real filesystem to simulate a post-crash restart while
// the "dead" writer can no longer interleave writes with the recovering
// one.
func (f *FS) CrashNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// FailFsync arms (or with nil disarms) an error for every Sync call.
func (f *FS) FailFsync(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fsyncErr = err
}

// SetDiskFull arms or disarms disk-full mode: writes fail with ErrDiskFull
// without persisting anything.
func (f *FS) SetDiskFull(full bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.diskFull = full
}

// SetWriteBudget allows n more bytes to persist; the write that crosses
// the boundary is short (its prefix reaches disk) and returns ErrInjected.
// Negative disarms.
func (f *FS) SetWriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

func (f *FS) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FS) MkdirAll(path string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.real.MkdirAll(path)
}

func (f *FS) Create(path string) (wal.File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.real.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FS) OpenAppend(path string) (wal.File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.real.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FS) Open(path string) (io.ReadCloser, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.real.Open(path)
}

func (f *FS) ReadDir(path string) ([]string, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.real.ReadDir(path)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *FS) Remove(path string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.real.Remove(path)
}

func (f *FS) Truncate(path string, size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.real.Truncate(path, size)
}

func (f *FS) Size(path string) (int64, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	return f.real.Size(path)
}

type faultFile struct {
	fs *FS
	f  wal.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	if ff.fs.diskFull {
		ff.fs.mu.Unlock()
		return 0, ErrDiskFull
	}
	budget := ff.fs.writeBudget
	if budget >= 0 {
		if int64(len(p)) > budget {
			ff.fs.writeBudget = 0
			ff.fs.mu.Unlock()
			n, _ := ff.f.Write(p[:budget])
			return n, ErrInjected
		}
		ff.fs.writeBudget -= int64(len(p))
	}
	ff.fs.mu.Unlock()
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	crashed, fsyncErr := ff.fs.crashed, ff.fs.fsyncErr
	ff.fs.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	if fsyncErr != nil {
		return fsyncErr
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
