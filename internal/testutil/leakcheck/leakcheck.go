// Package leakcheck is an offline stand-in for go.uber.org/goleak (this
// build environment cannot fetch modules): a TestMain hook that fails the
// package when goroutines outlive the tests. StreamWorks is a system of
// worker, merger, hub and delivery goroutines whose lifecycles are part of
// the public contract ("Close drains and stops everything"); a test that
// passes while leaking a worker is a test that hides a shutdown bug, so the
// three goroutine-heavy packages (core, shard, server) gate on this check.
//
// Usage, in one file per test package:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Known-benign runtime, testing and os/signal goroutines are filtered; the
// checker retries for a grace period so goroutines that are mid-exit when
// the last test returns do not flake the build. Extra expected stacks (for
// a package that intentionally parks a daemon) can be allowed by substring
// with Ignore.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// benign are stack substrings of goroutines the Go runtime and the testing
// framework keep alive by design.
var benign = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.tRunner(",
	"runtime.gcBgMarkWorker",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.ensureSigM",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"created by runtime",
	"leakcheck.check",
	// The HTTP transport parks idle connections with keep-alive; tests
	// that exercise the client/server stack close them explicitly, but a
	// connection already unwinding when the test ends is indistinguishable
	// from one mid-read, so both readLoop and writeLoop get the grace
	// treatment below and are only reported if they survive the full
	// retry window AND the caller did not opt out.
}

// Option adjusts the checker.
type Option func(*config)

type config struct {
	ignores []string
	grace   time.Duration
}

// Ignore allows goroutines whose stack contains sub (use for daemons a
// package parks on purpose; say why at the call site).
func Ignore(sub string) Option {
	return func(c *config) { c.ignores = append(c.ignores, sub) }
}

// Grace overrides the retry window (default 5s) the checker gives
// goroutines to finish unwinding.
func Grace(d time.Duration) Option {
	return func(c *config) { c.grace = d }
}

// Main runs the package's tests and then fails the binary (exit 1) if
// non-benign goroutines are still alive after the grace window.
func Main(m *testing.M, opts ...Option) {
	code := m.Run()
	if code != 0 {
		os.Exit(code)
	}
	cfg := config{grace: 5 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	if leaked := check(cfg); len(leaked) > 0 {
		fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked by this test package:\n\n%s\n",
			len(leaked), strings.Join(leaked, "\n\n"))
		os.Exit(1)
	}
	os.Exit(0)
}

// Check is the non-TestMain form: it fails t if goroutines leak. Intended
// for use as t.Cleanup(func() { leakcheck.Check(t) }) around an individual
// leak-prone test.
func Check(t *testing.T, opts ...Option) {
	t.Helper()
	cfg := config{grace: 5 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	if leaked := check(cfg); len(leaked) > 0 {
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// check snapshots the stacks repeatedly until the leak set is empty or the
// grace window ends, backing off between snapshots: goroutines that are
// merely slow to unwind (deferred closes, channel teardown, HTTP transport
// loops noticing a closed connection) disappear across retries, real leaks
// do not.
func check(cfg config) []string {
	deadline := time.Now().Add(cfg.grace)
	wait := time.Millisecond
	for {
		leaked := snapshot(cfg.ignores)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(wait)
		if wait < 200*time.Millisecond {
			wait *= 2
		}
	}
}

// snapshot returns the stacks of currently-live non-benign goroutines.
func snapshot(ignores []string) []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || isBenign(g, ignores) {
			continue
		}
		leaked = append(leaked, strings.TrimSpace(g))
	}
	return leaked
}

func isBenign(stack string, ignores []string) bool {
	// The snapshotting goroutine itself.
	if strings.Contains(stack, "runtime.Stack(") {
		return true
	}
	for _, b := range benign {
		if strings.Contains(stack, b) {
			return true
		}
	}
	for _, ig := range ignores {
		if strings.Contains(stack, ig) {
			return true
		}
	}
	return false
}
