package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestSnapshotSeesLeak parks a goroutine and verifies the snapshot reports
// it — guarding against an over-broad benign filter that would blind the
// whole checker (every stack matching some substring).
func TestSnapshotSeesLeak(t *testing.T) {
	block := make(chan struct{})
	go parkForLeakTest(block)
	time.Sleep(10 * time.Millisecond)

	leaked := snapshot(nil)
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "parkForLeakTest") {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot did not report the parked goroutine; got %d stacks:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}

	close(block)
	if got := check(config{grace: 5 * time.Second}); len(got) != 0 {
		t.Fatalf("leak persisted after release: %v", got)
	}
}

//go:noinline
func parkForLeakTest(block chan struct{}) { <-block }

// TestIgnore verifies the caller-supplied allowlist.
func TestIgnore(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	go parkForLeakTest(block)
	time.Sleep(10 * time.Millisecond)

	if got := snapshot([]string{"parkForLeakTest"}); len(got) != 0 {
		t.Fatalf("ignored goroutine still reported:\n%s", strings.Join(got, "\n\n"))
	}
}
