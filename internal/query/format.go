package query

import (
	"fmt"
	"strings"

	"github.com/streamworks/streamworks/internal/graph"
)

// Format renders q in the text DSL accepted by Parse, one directive per
// line. Vertices and edges are emitted in ID order, so re-parsing the output
// assigns the same vertex and edge IDs and match signatures stay comparable
// across the round trip: Parse(Format(q)) is structurally identical to q.
//
// The rendering assumes DSL-representable names and values: vertex names,
// type labels and attribute names must not contain whitespace or start a
// quote, and string values must not contain double quotes. Everything
// produced by Builder-based query constructors in this repository satisfies
// that; queries that came from Parse trivially do.
func Format(q *Graph) string {
	var sb strings.Builder
	if q.Name() != "" {
		fmt.Fprintf(&sb, "query %s\n", q.Name())
	}
	if q.Window() > 0 {
		fmt.Fprintf(&sb, "window %s\n", q.Window())
	}
	for _, v := range q.Vertices() {
		sb.WriteString("vertex ")
		sb.WriteString(v.Name)
		if v.Type != "" {
			sb.WriteString(" : ")
			sb.WriteString(v.Type)
		}
		writePreds(&sb, v.Preds)
		sb.WriteByte('\n')
	}
	for _, e := range q.Edges() {
		fmt.Fprintf(&sb, "edge %s %s %s",
			q.Vertex(e.Source).Name, formatArrow(e), q.Vertex(e.Target).Name)
		writePreds(&sb, e.Preds)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// formatArrow renders the four arrow shapes understood by parseArrow.
func formatArrow(e Edge) string {
	switch {
	case e.Type == "" && e.AnyDirection:
		return "--"
	case e.Type == "":
		return "-->"
	case e.AnyDirection:
		return fmt.Sprintf("-[%s]-", e.Type)
	default:
		return fmt.Sprintf("-[%s]->", e.Type)
	}
}

func writePreds(sb *strings.Builder, preds []Predicate) {
	for i, p := range preds {
		if i == 0 {
			sb.WriteString(" where ")
		} else {
			sb.WriteString(" and ")
		}
		if p.Op == OpExists {
			fmt.Fprintf(sb, "%s exists", p.Attr)
			continue
		}
		fmt.Fprintf(sb, "%s %s %s", p.Attr, p.Op, formatValue(p.Value))
	}
}

// formatValue renders a predicate value so parseDSLValue reconstructs the
// same kind: strings are quoted (protecting embedded spaces and keeping
// numeric-looking text a string); numbers and booleans round-trip through
// graph.ParseValue's inference.
func formatValue(v graph.Value) string {
	if v.Kind() == graph.KindString {
		return `"` + v.Str() + `"`
	}
	return v.String()
}
