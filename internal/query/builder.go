package query

import (
	"errors"
	"fmt"
	"time"
)

// Validation errors returned by Builder.Build and Parse.
var (
	// ErrEmptyQuery is returned when a query has no edges.
	ErrEmptyQuery = errors.New("query: query graph has no edges")
	// ErrDisconnected is returned when the query pattern is not connected.
	ErrDisconnected = errors.New("query: query graph is not connected")
	// ErrUnknownVertex is returned when an edge references an undeclared vertex.
	ErrUnknownVertex = errors.New("query: edge references unknown vertex")
	// ErrDuplicateVertex is returned when the same variable name is declared twice.
	ErrDuplicateVertex = errors.New("query: duplicate vertex name")
	// ErrNegativeWindow is returned when the window duration is negative.
	ErrNegativeWindow = errors.New("query: negative time window")
)

// Builder assembles a query Graph programmatically:
//
//	q, err := query.NewBuilder("smurf").
//		Window(10*time.Minute).
//		Vertex("attacker", "Host").
//		Vertex("amp", "Host").
//		Vertex("victim", "Host").
//		Edge("attacker", "amp", "icmp_echo_req").
//		Edge("amp", "victim", "icmp_echo_reply").
//		Build()
//
// Builder methods record the first error encountered and Build returns it.
type Builder struct {
	name     string
	window   time.Duration
	vertices []Vertex
	edges    []Edge
	byName   map[string]VertexID
	err      error
}

// NewBuilder starts a new query with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]VertexID)}
}

// Window sets the query time window tW. Zero (the default) means unbounded.
func (b *Builder) Window(w time.Duration) *Builder {
	if b.err != nil {
		return b
	}
	if w < 0 {
		b.err = ErrNegativeWindow
		return b
	}
	b.window = w
	return b
}

// Vertex declares a pattern vertex with a variable name, a required data
// vertex type (empty matches any type) and optional attribute predicates.
func (b *Builder) Vertex(name, typ string, preds ...Predicate) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.byName[name]; dup {
		b.err = fmt.Errorf("%w: %q", ErrDuplicateVertex, name)
		return b
	}
	id := VertexID(len(b.vertices))
	b.vertices = append(b.vertices, Vertex{ID: id, Name: name, Type: typ, Preds: preds})
	b.byName[name] = id
	return b
}

// Edge declares a directed pattern edge from the vertex named src to the
// vertex named dst with the given edge type (empty matches any type) and
// optional attribute predicates. Both vertices must have been declared.
func (b *Builder) Edge(src, dst, typ string, preds ...Predicate) *Builder {
	return b.edge(src, dst, typ, false, preds)
}

// UndirectedEdge declares a pattern edge that matches a data edge in either
// direction between the two vertices.
func (b *Builder) UndirectedEdge(src, dst, typ string, preds ...Predicate) *Builder {
	return b.edge(src, dst, typ, true, preds)
}

func (b *Builder) edge(src, dst, typ string, anyDir bool, preds []Predicate) *Builder {
	if b.err != nil {
		return b
	}
	sid, ok := b.byName[src]
	if !ok {
		b.err = fmt.Errorf("%w: %q", ErrUnknownVertex, src)
		return b
	}
	did, ok := b.byName[dst]
	if !ok {
		b.err = fmt.Errorf("%w: %q", ErrUnknownVertex, dst)
		return b
	}
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{
		ID: id, Source: sid, Target: did, Type: typ, AnyDirection: anyDir, Preds: preds,
	})
	return b
}

// Build validates the accumulated pattern and returns the immutable query
// graph. The pattern must contain at least one edge, every declared vertex
// must be used by at least one edge, and the pattern must be connected.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.edges) == 0 {
		return nil, ErrEmptyQuery
	}
	q := &Graph{
		name:     b.name,
		window:   b.window,
		vertices: append([]Vertex(nil), b.vertices...),
		edges:    append([]Edge(nil), b.edges...),
		out:      make(map[VertexID][]EdgeID),
		in:       make(map[VertexID][]EdgeID),
	}
	for i := range q.edges {
		e := &q.edges[i]
		q.out[e.Source] = append(q.out[e.Source], e.ID)
		q.in[e.Target] = append(q.in[e.Target], e.ID)
	}
	if !q.IsConnected() {
		return nil, ErrDisconnected
	}
	return q, nil
}

// MustBuild is like Build but panics on error. Intended for tests and
// example programs with statically known-good patterns.
func (b *Builder) MustBuild() *Graph {
	q, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("query: MustBuild: %v", err))
	}
	return q
}
