package query

import (
	"errors"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

func smurfQuery(t *testing.T) *Graph {
	t.Helper()
	q, err := NewBuilder("smurf").
		Window(10*time.Minute).
		Vertex("attacker", "Host").
		Vertex("amplifier", "Host").
		Vertex("victim", "Host").
		Edge("attacker", "amplifier", "icmp_echo_req").
		Edge("amplifier", "victim", "icmp_echo_reply").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return q
}

func TestBuilderBasic(t *testing.T) {
	q := smurfQuery(t)
	if q.Name() != "smurf" {
		t.Fatalf("Name = %q", q.Name())
	}
	if q.Window() != 10*time.Minute {
		t.Fatalf("Window = %v", q.Window())
	}
	if q.NumVertices() != 3 || q.NumEdges() != 2 {
		t.Fatalf("size = %d vertices, %d edges", q.NumVertices(), q.NumEdges())
	}
	v, ok := q.VertexByName("amplifier")
	if !ok || v.Type != "Host" {
		t.Fatalf("VertexByName failed: %v %v", v, ok)
	}
	if _, ok := q.VertexByName("nope"); ok {
		t.Fatalf("VertexByName found a ghost")
	}
	e := q.Edge(0)
	if e.Type != "icmp_echo_req" || q.Vertex(e.Source).Name != "attacker" {
		t.Fatalf("edge 0 wrong: %v", e)
	}
	if q.Vertex(VertexID(99)) != nil || q.Edge(EdgeID(99)) != nil {
		t.Fatalf("out-of-range lookups must return nil")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x").Vertex("a", "T").Build(); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("expected ErrEmptyQuery, got %v", err)
	}
	_, err := NewBuilder("x").Vertex("a", "T").Vertex("a", "T").Build()
	if !errors.Is(err, ErrDuplicateVertex) {
		t.Fatalf("expected ErrDuplicateVertex, got %v", err)
	}
	_, err = NewBuilder("x").Vertex("a", "T").Edge("a", "ghost", "e").Build()
	if !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("expected ErrUnknownVertex, got %v", err)
	}
	_, err = NewBuilder("x").Window(-1 * time.Second).Build()
	if !errors.Is(err, ErrNegativeWindow) {
		t.Fatalf("expected ErrNegativeWindow, got %v", err)
	}
	// Disconnected: two independent edges.
	_, err = NewBuilder("x").
		Vertex("a", "").Vertex("b", "").Vertex("c", "").Vertex("d", "").
		Edge("a", "b", "e").Edge("c", "d", "e").Build()
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("expected ErrDisconnected, got %v", err)
	}
	// Isolated declared vertex also makes the query disconnected.
	_, err = NewBuilder("x").
		Vertex("a", "").Vertex("b", "").Vertex("lonely", "").
		Edge("a", "b", "e").Build()
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("expected ErrDisconnected for isolated vertex, got %v", err)
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder("x").Vertex("a", "T").Vertex("a", "T")
	// Subsequent calls should not panic or clear the error.
	b.Vertex("b", "T").Edge("a", "b", "e").Window(time.Minute)
	if _, err := b.Build(); !errors.Is(err, ErrDuplicateVertex) {
		t.Fatalf("sticky error lost: %v", err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustBuild should panic on invalid query")
		}
	}()
	NewBuilder("bad").MustBuild()
}

func TestGraphTopologyHelpers(t *testing.T) {
	q := smurfQuery(t)
	amp, _ := q.VertexByName("amplifier")
	inc := q.IncidentEdges(amp.ID)
	if len(inc) != 2 {
		t.Fatalf("IncidentEdges(amplifier) = %v", inc)
	}
	if q.Degree(amp.ID) != 2 {
		t.Fatalf("Degree(amplifier) = %d", q.Degree(amp.ID))
	}
	atk, _ := q.VertexByName("attacker")
	if q.Degree(atk.ID) != 1 {
		t.Fatalf("Degree(attacker) = %d", q.Degree(atk.ID))
	}
	eps := q.EndpointsOf([]EdgeID{0})
	if len(eps) != 2 {
		t.Fatalf("EndpointsOf([0]) = %v", eps)
	}
	if !q.SubsetConnected([]EdgeID{0, 1}) {
		t.Fatalf("edges 0,1 share the amplifier and must be connected")
	}
	if q.SubsetConnected(nil) {
		t.Fatalf("empty subset must not be connected")
	}
	if !q.IsConnected() {
		t.Fatalf("smurf query must be connected")
	}
}

func TestSubsetConnectedDisjoint(t *testing.T) {
	q := NewBuilder("path4").
		Vertex("a", "").Vertex("b", "").Vertex("c", "").Vertex("d", "").
		Edge("a", "b", "e").Edge("b", "c", "e").Edge("c", "d", "e").
		MustBuild()
	if q.SubsetConnected([]EdgeID{0, 2}) {
		t.Fatalf("edges 0 and 2 do not touch and must not be connected")
	}
	if !q.SubsetConnected([]EdgeID{0, 1}) || !q.SubsetConnected([]EdgeID{1, 2}) {
		t.Fatalf("adjacent edge pairs must be connected")
	}
}

func TestVertexMatches(t *testing.T) {
	qv := &Vertex{Name: "a", Type: "Host", Preds: []Predicate{Gt("risk", graph.Int(5))}}
	ok := &graph.Vertex{ID: 1, Type: "Host", Attrs: graph.Attributes{"risk": graph.Int(9)}}
	if !qv.Matches(ok) {
		t.Fatalf("matching vertex rejected")
	}
	wrongType := &graph.Vertex{ID: 2, Type: "Router", Attrs: graph.Attributes{"risk": graph.Int(9)}}
	if qv.Matches(wrongType) {
		t.Fatalf("wrong type accepted")
	}
	failPred := &graph.Vertex{ID: 3, Type: "Host", Attrs: graph.Attributes{"risk": graph.Int(1)}}
	if qv.Matches(failPred) {
		t.Fatalf("failing predicate accepted")
	}
	anyType := &Vertex{Name: "b"}
	if !anyType.Matches(wrongType) {
		t.Fatalf("untyped pattern vertex should match any type")
	}
	if qv.Matches(nil) {
		t.Fatalf("nil data vertex accepted")
	}
}

func TestEdgeMatchesEdge(t *testing.T) {
	qe := &Edge{Type: "flow", Preds: []Predicate{Gt("bytes", graph.Int(100))}}
	ok := &graph.Edge{ID: 1, Type: "flow", Attrs: graph.Attributes{"bytes": graph.Int(500)}}
	if !qe.MatchesEdge(ok) {
		t.Fatalf("matching edge rejected")
	}
	if qe.MatchesEdge(&graph.Edge{ID: 2, Type: "dns"}) {
		t.Fatalf("wrong edge type accepted")
	}
	if qe.MatchesEdge(&graph.Edge{ID: 3, Type: "flow", Attrs: graph.Attributes{"bytes": graph.Int(10)}}) {
		t.Fatalf("failing predicate accepted")
	}
	anyType := &Edge{}
	if !anyType.MatchesEdge(ok) {
		t.Fatalf("untyped pattern edge should match any type")
	}
	if qe.MatchesEdge(nil) {
		t.Fatalf("nil data edge accepted")
	}
}

func TestGraphStringAndAccessorsCopy(t *testing.T) {
	q := smurfQuery(t)
	if q.String() == "" {
		t.Fatalf("String() empty")
	}
	vs := q.Vertices()
	vs[0].Name = "mutated"
	if q.Vertex(0).Name == "mutated" {
		t.Fatalf("Vertices() must return a copy")
	}
	es := q.Edges()
	es[0].Type = "mutated"
	if q.Edge(0).Type == "mutated" {
		t.Fatalf("Edges() must return a copy")
	}
}
