package query

import (
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

// requireRoundTrip formats q, re-parses the text, and asserts the rebuilt
// query graph is structurally identical: same name, window, vertex list
// (names, types, predicates) and edge list (endpoints, types, direction,
// predicates) in the same ID order.
func requireRoundTrip(t *testing.T, q *Graph) {
	t.Helper()
	text := Format(q)
	got, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parsing Format output failed: %v\n%s", err, text)
	}
	if got.Name() != q.Name() {
		t.Fatalf("name: got %q, want %q", got.Name(), q.Name())
	}
	if got.Window() != q.Window() {
		t.Fatalf("window: got %s, want %s", got.Window(), q.Window())
	}
	if got.NumVertices() != q.NumVertices() || got.NumEdges() != q.NumEdges() {
		t.Fatalf("shape: got %dv/%de, want %dv/%de\n%s",
			got.NumVertices(), got.NumEdges(), q.NumVertices(), q.NumEdges(), text)
	}
	for i := 0; i < q.NumVertices(); i++ {
		a, b := q.Vertex(VertexID(i)), got.Vertex(VertexID(i))
		if a.String() != b.String() {
			t.Fatalf("vertex %d: got %q, want %q", i, b.String(), a.String())
		}
	}
	for i := 0; i < q.NumEdges(); i++ {
		a, b := q.Edge(EdgeID(i)), got.Edge(EdgeID(i))
		if a.Source != b.Source || a.Target != b.Target ||
			a.Type != b.Type || a.AnyDirection != b.AnyDirection {
			t.Fatalf("edge %d: got %+v, want %+v", i, b, a)
		}
		if len(a.Preds) != len(b.Preds) {
			t.Fatalf("edge %d predicates: got %d, want %d", i, len(b.Preds), len(a.Preds))
		}
		for j := range a.Preds {
			if a.Preds[j].String() != b.Preds[j].String() {
				t.Fatalf("edge %d pred %d: got %q, want %q",
					i, j, b.Preds[j].String(), a.Preds[j].String())
			}
		}
	}
}

func TestFormatRoundTripAllFeatures(t *testing.T) {
	q := NewBuilder("kitchen-sink").
		Window(10*time.Minute).
		Vertex("a", "Host", Eq("role", graph.String("server farm")), Gt("load", graph.Float(1.5))).
		Vertex("b", "Host", Exists("patched"), Ne("zone", graph.Int(3))).
		Vertex("c", "", Contains("name", "corp")).
		Edge("a", "b", "flow", Gt("bytes", graph.Int(1_000_000)), Eq("tcp", graph.Bool(true))).
		UndirectedEdge("b", "c", "peer").
		Edge("a", "c", "").
		UndirectedEdge("a", "b", "").
		MustBuild()
	requireRoundTrip(t, q)
}

func TestFormatRoundTripUnnamedUnbounded(t *testing.T) {
	q := NewBuilder("").
		Vertex("x", "T").
		Vertex("y", "").
		Edge("x", "y", "t").
		MustBuild()
	requireRoundTrip(t, q)
	if text := Format(q); text[:6] == "query" {
		t.Fatalf("unnamed query must not emit a query directive:\n%s", text)
	}
}

func TestFormatRoundTripParsedDSL(t *testing.T) {
	src := `# exfiltration-like pattern
query exfil
window 30m0s
vertex compromised : Host
vertex fileserver : Host where role = "files"
vertex drop : Host
edge compromised -[login]-> fileserver
edge compromised -[file_read]-> fileserver where bytes > 1000000
edge compromised -[flow]-> drop where bytes > 10000000
`
	q, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	requireRoundTrip(t, q)
}
