package query_test

import (
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/query"
)

// corpus returns the generator query suite — every query shipped with the
// repo's workloads — rendered as DSL text, the seed corpus for both fuzz
// targets. (This lives in an external test package so it can import gen,
// which itself imports query.)
func corpus() []string {
	qs := []*query.Graph{
		gen.SmurfQuery(30 * time.Second),
		gen.WormQuery(time.Minute),
		gen.WormChainQuery(5 * time.Minute),
		gen.ExfiltrationQuery(30 * time.Minute),
		gen.NewsEventQuery(15*time.Minute, 2, ""),
		gen.NewsEventQuery(time.Hour, 3, "budget"),
	}
	out := make([]string, 0, len(qs)+4)
	for _, q := range qs {
		out = append(out, query.Format(q))
	}
	// Hand-written seeds covering DSL shapes the generators do not emit.
	out = append(out,
		"vertex a\nvertex b\nedge a --> b\n",
		"query undirected\nvertex a : T\nvertex b : T\nedge a -[peer]- b\nedge a -- b\n",
		"query preds\nwindow 90s\nvertex a : Host where role = \"server farm\" and load > 1.5\nvertex b where patched exists\nedge a -[flow]-> b where bytes > 1000000 and tcp = true\n",
		"# comment\n\nquery sparse\nvertex x:T\nvertex y\nedge x -[t]-> y\n",
	)
	return out
}

// FuzzParse asserts the DSL parser never panics: arbitrary input either
// parses or returns an error.
func FuzzParse(f *testing.F) {
	for _, seed := range corpus() {
		f.Add(seed)
	}
	f.Add("")
	f.Add("query\n")
	f.Add("edge a -[x> b\n")
	f.Add("vertex \" : \"\n")
	f.Add("window 1h30m\nwindow 2h\n")
	f.Fuzz(func(t *testing.T, input string) {
		q, err := query.ParseString(input)
		if err == nil && q == nil {
			t.Fatal("Parse returned nil query and nil error")
		}
	})
}

// FuzzFormatRoundTrip asserts the Parse/Format pair is a stable round trip:
// for any input the parser accepts, Format renders DSL that re-parses into
// an ID-identical query — same name, window, and vertex/edge lists in the
// same ID order, so match signatures stay comparable across the trip. This
// is the property the HTTP API depends on (queries travel as DSL text).
func FuzzFormatRoundTrip(f *testing.F) {
	for _, seed := range corpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := query.ParseString(input)
		if err != nil {
			return // not a query; nothing to round-trip
		}
		text := query.Format(q)
		got, err := query.ParseString(text)
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\n%s", err, text)
		}
		requireIdentical(t, q, got, text)
		// A second trip must be byte-stable (Format is canonical).
		if text2 := query.Format(got); text2 != text {
			t.Fatalf("Format not canonical:\nfirst:\n%s\nsecond:\n%s", text, text2)
		}
	})
}

// requireIdentical asserts got is ID-identical to want: every vertex and
// edge under the same ID with the same name, type, direction and predicates.
func requireIdentical(t *testing.T, want, got *query.Graph, text string) {
	t.Helper()
	if got.Name() != want.Name() {
		t.Fatalf("name: got %q, want %q\n%s", got.Name(), want.Name(), text)
	}
	if got.Window() != want.Window() {
		t.Fatalf("window: got %s, want %s\n%s", got.Window(), want.Window(), text)
	}
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape: got %dv/%de, want %dv/%de\n%s",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges(), text)
	}
	for i := 0; i < want.NumVertices(); i++ {
		a, b := want.Vertex(query.VertexID(i)), got.Vertex(query.VertexID(i))
		if a.String() != b.String() {
			t.Fatalf("vertex %d: got %q, want %q\n%s", i, b.String(), a.String(), text)
		}
	}
	for i := 0; i < want.NumEdges(); i++ {
		a, b := want.Edge(query.EdgeID(i)), got.Edge(query.EdgeID(i))
		if a.Source != b.Source || a.Target != b.Target ||
			a.Type != b.Type || a.AnyDirection != b.AnyDirection {
			t.Fatalf("edge %d: got %+v, want %+v\n%s", i, b, a, text)
		}
		if len(a.Preds) != len(b.Preds) {
			t.Fatalf("edge %d predicates: got %d, want %d\n%s", i, len(b.Preds), len(a.Preds), text)
		}
		for j := range a.Preds {
			if a.Preds[j].String() != b.Preds[j].String() {
				t.Fatalf("edge %d pred %d: got %q, want %q\n%s",
					i, j, b.Preds[j].String(), a.Preds[j].String(), text)
			}
		}
	}
}
