package query

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

// ParseError describes a syntax or semantic error in the query DSL, with the
// 1-based line number at which it occurred.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("query: line %d: %s", e.Line, e.Msg) }

// Parse reads a query description in the StreamWorks text DSL and returns
// the query graph. The DSL is line oriented:
//
//	# Smurf DDoS: an attacker triggers many amplifiers to flood a victim.
//	query smurf
//	window 10m
//	vertex attacker : Host
//	vertex amplifier : Host
//	vertex victim : Host where role = "server"
//	edge attacker -[icmp_echo_req]-> amplifier
//	edge amplifier -[icmp_echo_reply]-> victim where bytes > 500
//
// Lines starting with '#' and blank lines are ignored. The `query` line is
// optional (an empty name is used when absent); `window` is optional and
// defaults to unbounded. Vertex type is optional (`vertex x` matches any
// type). An edge written with `-[type]-` (no arrow head) matches either
// direction; `-[]->` or `-->` matches any edge type.
func Parse(r io.Reader) (*Graph, error) {
	p := &parser{b: NewBuilder("")}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if err := p.parseLine(line, sc.Text()); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("query: reading input: %w", err)
	}
	q, err := p.b.Build()
	if err != nil {
		return nil, &ParseError{Line: line, Msg: err.Error()}
	}
	return q, nil
}

// ParseString is a convenience wrapper around Parse for in-memory queries.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }

// MustParse parses a statically known-good query and panics on error.
func MustParse(s string) *Graph {
	q, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	b *Builder
}

func (p *parser) parseLine(line int, raw string) error {
	text := strings.TrimSpace(raw)
	if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "//") {
		return nil
	}
	fields := tokenize(text)
	if len(fields) == 0 {
		return nil
	}
	switch strings.ToLower(fields[0]) {
	case "query":
		if len(fields) != 2 {
			return &ParseError{Line: line, Msg: "expected: query <name>"}
		}
		p.b.name = fields[1]
		return nil
	case "window":
		if len(fields) != 2 {
			return &ParseError{Line: line, Msg: "expected: window <duration>"}
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return &ParseError{Line: line, Msg: fmt.Sprintf("bad window duration %q: %v", fields[1], err)}
		}
		p.b.Window(d)
		if p.b.err != nil {
			return &ParseError{Line: line, Msg: p.b.err.Error()}
		}
		return nil
	case "vertex":
		return p.parseVertex(line, fields[1:])
	case "edge":
		return p.parseEdge(line, fields[1:])
	default:
		return &ParseError{Line: line, Msg: fmt.Sprintf("unknown directive %q", fields[0])}
	}
}

// parseVertex handles: <name> [: <Type>] [where <predicates>]
func (p *parser) parseVertex(line int, fields []string) error {
	if len(fields) == 0 {
		return &ParseError{Line: line, Msg: "expected: vertex <name> [: <type>] [where ...]"}
	}
	name := fields[0]
	rest := fields[1:]
	typ := ""
	if len(rest) > 0 && rest[0] == ":" {
		if len(rest) < 2 {
			return &ParseError{Line: line, Msg: "expected a type after ':'"}
		}
		typ = rest[1]
		rest = rest[2:]
	} else if strings.Contains(name, ":") {
		parts := strings.SplitN(name, ":", 2)
		name, typ = parts[0], parts[1]
	}
	preds, err := parsePredicates(line, rest)
	if err != nil {
		return err
	}
	p.b.Vertex(name, typ, preds...)
	if p.b.err != nil {
		return &ParseError{Line: line, Msg: p.b.err.Error()}
	}
	return nil
}

// parseEdge handles: <src> -[<type>]-> <dst> [where ...] plus the
// arrow-only forms "-->" (any type, directed) and "-[t]-" (undirected).
func (p *parser) parseEdge(line int, fields []string) error {
	if len(fields) < 3 {
		return &ParseError{Line: line, Msg: "expected: edge <src> -[type]-> <dst> [where ...]"}
	}
	src, arrow, dst := fields[0], fields[1], fields[2]
	typ, anyDir, err := parseArrow(arrow)
	if err != nil {
		return &ParseError{Line: line, Msg: err.Error()}
	}
	preds, perr := parsePredicates(line, fields[3:])
	if perr != nil {
		return perr
	}
	if anyDir {
		p.b.UndirectedEdge(src, dst, typ, preds...)
	} else {
		p.b.Edge(src, dst, typ, preds...)
	}
	if p.b.err != nil {
		return &ParseError{Line: line, Msg: p.b.err.Error()}
	}
	return nil
}

// parseArrow decodes "-[type]->", "-[type]-", "-->" and "--".
func parseArrow(s string) (typ string, anyDir bool, err error) {
	switch s {
	case "-->", "->":
		return "", false, nil
	case "--":
		return "", true, nil
	}
	if strings.HasPrefix(s, "-[") {
		body := s[2:]
		switch {
		case strings.HasSuffix(body, "]->"):
			return body[:len(body)-3], false, nil
		case strings.HasSuffix(body, "]-"):
			return body[:len(body)-2], true, nil
		}
	}
	return "", false, fmt.Errorf("bad edge arrow %q (want -[type]-> or -[type]- or -->)", s)
}

// parsePredicates handles: where <attr> <op> <value> [and <attr> <op> <value>]...
// and the unary form: where <attr> exists.
func parsePredicates(line int, fields []string) ([]Predicate, error) {
	if len(fields) == 0 {
		return nil, nil
	}
	if strings.ToLower(fields[0]) != "where" {
		return nil, &ParseError{Line: line, Msg: fmt.Sprintf("unexpected token %q (want 'where')", fields[0])}
	}
	rest := fields[1:]
	var preds []Predicate
	for len(rest) > 0 {
		if strings.ToLower(rest[0]) == "and" {
			rest = rest[1:]
			continue
		}
		if len(rest) >= 2 && strings.ToLower(rest[1]) == "exists" {
			preds = append(preds, Exists(rest[0]))
			rest = rest[2:]
			continue
		}
		if len(rest) < 3 {
			return nil, &ParseError{Line: line, Msg: "incomplete predicate (want <attr> <op> <value>)"}
		}
		op, err := ParseOp(rest[1])
		if err != nil {
			return nil, &ParseError{Line: line, Msg: err.Error()}
		}
		preds = append(preds, Predicate{Attr: rest[0], Op: op, Value: parseDSLValue(rest[2])})
		rest = rest[3:]
	}
	return preds, nil
}

// parseDSLValue strips optional quotes; quoted literals are always strings,
// unquoted literals go through graph.ParseValue type inference.
func parseDSLValue(tok string) graph.Value {
	if len(tok) >= 2 && tok[0] == '"' && tok[len(tok)-1] == '"' {
		return graph.String(tok[1 : len(tok)-1])
	}
	return graph.ParseValue(tok)
}

// tokenize splits a line on whitespace while keeping double-quoted strings
// (which may contain spaces) as single tokens, quotes included.
func tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case !inQuote && (r == ' ' || r == '\t'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}
