package query

import (
	"fmt"
	"strings"

	"github.com/streamworks/streamworks/internal/graph"
)

// Op enumerates the comparison operators available in attribute predicates.
type Op uint8

const (
	// OpEq tests attribute == value.
	OpEq Op = iota
	// OpNe tests attribute != value.
	OpNe
	// OpLt tests attribute < value (numeric or lexicographic).
	OpLt
	// OpLe tests attribute <= value.
	OpLe
	// OpGt tests attribute > value.
	OpGt
	// OpGe tests attribute >= value.
	OpGe
	// OpContains tests that the attribute (as a string) contains the value
	// as a substring.
	OpContains
	// OpExists tests that the attribute is present, regardless of value.
	OpExists
)

// String returns the DSL spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "~"
	case OpExists:
		return "exists"
	default:
		return "?"
	}
}

// ParseOp converts a DSL operator token to an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	case "~", "contains":
		return OpContains, nil
	case "exists":
		return OpExists, nil
	default:
		return 0, fmt.Errorf("query: unknown operator %q", s)
	}
}

// Predicate is a single attribute constraint on a pattern vertex or edge.
type Predicate struct {
	Attr  string
	Op    Op
	Value graph.Value
}

// Eval reports whether the attribute set satisfies the predicate. A missing
// attribute fails every operator except OpNe (absent != value is true).
func (p Predicate) Eval(attrs graph.Attributes) bool {
	v, ok := attrs.Get(p.Attr)
	if p.Op == OpExists {
		return ok
	}
	if !ok {
		return p.Op == OpNe
	}
	switch p.Op {
	case OpEq:
		return v.Equal(p.Value)
	case OpNe:
		return !v.Equal(p.Value)
	case OpLt:
		return v.Compare(p.Value) < 0
	case OpLe:
		return v.Compare(p.Value) <= 0
	case OpGt:
		return v.Compare(p.Value) > 0
	case OpGe:
		return v.Compare(p.Value) >= 0
	case OpContains:
		return strings.Contains(v.String(), p.Value.String())
	default:
		return false
	}
}

// String renders the predicate in DSL form.
func (p Predicate) String() string {
	if p.Op == OpExists {
		return fmt.Sprintf("%s exists", p.Attr)
	}
	return fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Value)
}

// Eq builds an equality predicate.
func Eq(attr string, v graph.Value) Predicate { return Predicate{Attr: attr, Op: OpEq, Value: v} }

// Ne builds an inequality predicate.
func Ne(attr string, v graph.Value) Predicate { return Predicate{Attr: attr, Op: OpNe, Value: v} }

// Lt builds a less-than predicate.
func Lt(attr string, v graph.Value) Predicate { return Predicate{Attr: attr, Op: OpLt, Value: v} }

// Le builds a less-than-or-equal predicate.
func Le(attr string, v graph.Value) Predicate { return Predicate{Attr: attr, Op: OpLe, Value: v} }

// Gt builds a greater-than predicate.
func Gt(attr string, v graph.Value) Predicate { return Predicate{Attr: attr, Op: OpGt, Value: v} }

// Ge builds a greater-than-or-equal predicate.
func Ge(attr string, v graph.Value) Predicate { return Predicate{Attr: attr, Op: OpGe, Value: v} }

// Contains builds a substring predicate.
func Contains(attr, substr string) Predicate {
	return Predicate{Attr: attr, Op: OpContains, Value: graph.String(substr)}
}

// Exists builds an attribute-presence predicate.
func Exists(attr string) Predicate { return Predicate{Attr: attr, Op: OpExists} }
