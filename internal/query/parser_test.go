package query

import (
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

const smurfDSL = `
# Smurf DDoS detection query
query smurf
window 10m
vertex attacker : Host
vertex amplifier : Host
vertex victim : Host where role = "server"
edge attacker -[icmp_echo_req]-> amplifier
edge amplifier -[icmp_echo_reply]-> victim where bytes > 500
`

func TestParseSmurf(t *testing.T) {
	q, err := ParseString(smurfDSL)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if q.Name() != "smurf" {
		t.Fatalf("Name = %q", q.Name())
	}
	if q.Window() != 10*time.Minute {
		t.Fatalf("Window = %v", q.Window())
	}
	if q.NumVertices() != 3 || q.NumEdges() != 2 {
		t.Fatalf("sizes: %d vertices %d edges", q.NumVertices(), q.NumEdges())
	}
	victim, ok := q.VertexByName("victim")
	if !ok || len(victim.Preds) != 1 {
		t.Fatalf("victim predicates missing: %+v", victim)
	}
	if victim.Preds[0].Attr != "role" || victim.Preds[0].Op != OpEq || victim.Preds[0].Value.Str() != "server" {
		t.Fatalf("victim predicate wrong: %v", victim.Preds[0])
	}
	e := q.Edge(1)
	if e.Type != "icmp_echo_reply" || len(e.Preds) != 1 || e.Preds[0].Value.Int64() != 500 {
		t.Fatalf("edge 1 wrong: %+v", e)
	}
}

func TestParseCompactVertexType(t *testing.T) {
	q, err := ParseString(`
vertex a:Article
vertex k:Keyword
edge a -[mentions]-> k
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	a, _ := q.VertexByName("a")
	if a.Type != "Article" {
		t.Fatalf("compact type not parsed: %+v", a)
	}
}

func TestParseUndirectedAndUntypedEdges(t *testing.T) {
	q, err := ParseString(`
vertex a
vertex b
vertex c
edge a --> b
edge b -[peer]- c
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	e0 := q.Edge(0)
	if e0.Type != "" || e0.AnyDirection {
		t.Fatalf("edge 0 should be directed any-type: %+v", e0)
	}
	e1 := q.Edge(1)
	if e1.Type != "peer" || !e1.AnyDirection {
		t.Fatalf("edge 1 should be undirected peer: %+v", e1)
	}
}

func TestParsePredicateConjunctionAndQuotes(t *testing.T) {
	q, err := ParseString(`
vertex m : Machine where os = "Windows 7" and patched = false
vertex u : User
edge u -[login]-> m where failures >= 3
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	m, _ := q.VertexByName("m")
	if len(m.Preds) != 2 {
		t.Fatalf("expected 2 predicates, got %v", m.Preds)
	}
	if m.Preds[0].Value.Str() != "Windows 7" {
		t.Fatalf("quoted string with space mangled: %q", m.Preds[0].Value.Str())
	}
	if m.Preds[1].Value.Kind() != graph.KindBool {
		t.Fatalf("boolean literal not typed: %v", m.Preds[1].Value)
	}
	e := q.Edge(0)
	if e.Preds[0].Op != OpGe {
		t.Fatalf(">= not parsed: %v", e.Preds[0])
	}
}

func TestParseExistsPredicate(t *testing.T) {
	q, err := ParseString(`
vertex a : Article where location exists
vertex k : Keyword
edge a -[mentions]-> k
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	a, _ := q.VertexByName("a")
	if len(a.Preds) != 1 || a.Preds[0].Op != OpExists {
		t.Fatalf("exists predicate not parsed: %+v", a.Preds)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		dsl  string
		frag string
	}{
		{"unknown directive", "frobnicate x", "unknown directive"},
		{"bad window", "window banana", "bad window duration"},
		{"window missing arg", "window", "expected: window"},
		{"query missing arg", "query", "expected: query"},
		{"vertex missing name", "vertex", "expected: vertex"},
		{"edge too short", "edge a ->", "expected: edge"},
		{"bad arrow", "vertex a\nvertex b\nedge a =[x]=> b", "bad edge arrow"},
		{"bad predicate op", "vertex a\nvertex b\nedge a --> b where x << 3", "unknown operator"},
		{"incomplete predicate", "vertex a\nvertex b\nedge a --> b where x >", "incomplete predicate"},
		{"unexpected token", "vertex a : T bogus", "unexpected token"},
		{"edge unknown vertex", "vertex a\nedge a --> ghost", "unknown vertex"},
		{"empty query", "# nothing here", "no edges"},
		{"disconnected", "vertex a\nvertex b\nvertex c\nvertex d\nedge a --> b\nedge c --> d", "not connected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.dsl)
			if err == nil {
				t.Fatalf("expected an error")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestParseErrorReportsLine(t *testing.T) {
	_, err := ParseString("query ok\nwindow 5m\nbogus line here")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("expected *ParseError, got %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("Line = %d, want 3", pe.Line)
	}
}

func TestMustParsePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustParse should panic")
		}
	}()
	MustParse("garbage")
}

func TestParseRoundTripThroughString(t *testing.T) {
	q := MustParse(smurfDSL)
	// Graph.String is DSL-like but not exactly the DSL; just ensure it
	// mentions every vertex name and edge type.
	s := q.String()
	for _, want := range []string{"attacker", "amplifier", "victim", "icmp_echo_req", "icmp_echo_reply"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTokenize(t *testing.T) {
	toks := tokenize(`edge a -[x]-> b where name = "two words" and n > 3`)
	want := []string{"edge", "a", "-[x]->", "b", "where", "name", "=", `"two words"`, "and", "n", ">", "3"}
	if len(toks) != len(want) {
		t.Fatalf("tokenize = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}
