package query

import (
	"testing"

	"github.com/streamworks/streamworks/internal/graph"
)

func TestPredicateEval(t *testing.T) {
	attrs := graph.Attributes{
		"port":  graph.Int(443),
		"proto": graph.String("tcp"),
		"score": graph.Float(0.75),
	}
	cases := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"eq int true", Eq("port", graph.Int(443)), true},
		{"eq int false", Eq("port", graph.Int(80)), false},
		{"eq cross numeric", Eq("port", graph.Float(443)), true},
		{"ne true", Ne("proto", graph.String("udp")), true},
		{"ne false", Ne("proto", graph.String("tcp")), false},
		{"lt true", Lt("score", graph.Float(1.0)), true},
		{"lt false", Lt("score", graph.Float(0.5)), false},
		{"le equal", Le("port", graph.Int(443)), true},
		{"gt true", Gt("port", graph.Int(80)), true},
		{"ge equal", Ge("score", graph.Float(0.75)), true},
		{"contains true", Contains("proto", "tc"), true},
		{"contains false", Contains("proto", "udp"), false},
		{"exists true", Exists("port"), true},
		{"exists false", Exists("missing"), false},
		{"missing attr eq", Eq("missing", graph.Int(1)), false},
		{"missing attr ne", Ne("missing", graph.Int(1)), true},
		{"missing attr lt", Lt("missing", graph.Int(1)), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Eval(attrs); got != tc.want {
				t.Fatalf("%v.Eval = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

func TestPredicateEvalNilAttrs(t *testing.T) {
	if Eq("x", graph.Int(1)).Eval(nil) {
		t.Fatalf("eq on nil attrs should be false")
	}
	if !Ne("x", graph.Int(1)).Eval(nil) {
		t.Fatalf("ne on nil attrs should be true")
	}
	if Exists("x").Eval(nil) {
		t.Fatalf("exists on nil attrs should be false")
	}
}

func TestParseOp(t *testing.T) {
	valid := map[string]Op{
		"=": OpEq, "==": OpEq, "!=": OpNe, "<>": OpNe,
		"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
		"~": OpContains, "contains": OpContains, "exists": OpExists,
	}
	for s, want := range valid {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseOp("<<"); err == nil {
		t.Fatalf("ParseOp should reject unknown operator")
	}
}

func TestOpString(t *testing.T) {
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpContains, OpExists}
	for _, o := range ops {
		if o.String() == "?" {
			t.Fatalf("operator %d has no string form", o)
		}
	}
	if Op(200).String() != "?" {
		t.Fatalf("unknown op should render as ?")
	}
}

func TestPredicateString(t *testing.T) {
	if got := Gt("bytes", graph.Int(500)).String(); got != "bytes > 500" {
		t.Fatalf("String() = %q", got)
	}
	if got := Exists("port").String(); got != "port exists" {
		t.Fatalf("String() = %q", got)
	}
}
