// Package query defines the query-graph model of StreamWorks: a small typed
// pattern graph whose vertices and edges carry type labels and attribute
// predicates, plus the time window tW within which a match must fall.
//
// Query graphs are built either programmatically with Builder or parsed from
// the text DSL understood by Parse (see parser.go). The planner decomposes a
// query graph into search primitives (sub-patterns) and the engine matches
// those primitives incrementally against the dynamic data graph.
package query

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

// VertexID identifies a vertex of a query graph. IDs are dense and assigned
// in insertion order by Builder/Parse, starting at 0.
type VertexID int

// EdgeID identifies an edge of a query graph. IDs are dense and assigned in
// insertion order, starting at 0.
type EdgeID int

// Vertex is a pattern vertex: it matches data vertices whose type equals
// Type (when Type is non-empty) and which satisfy all predicates.
type Vertex struct {
	ID    VertexID
	Name  string // variable name used in the DSL and in match output
	Type  string // required data-vertex type; empty matches any type
	Preds []Predicate
}

// Matches reports whether the data vertex satisfies this pattern vertex.
func (qv *Vertex) Matches(dv *graph.Vertex) bool {
	if dv == nil {
		return false
	}
	if qv.Type != "" && qv.Type != dv.Type {
		return false
	}
	for _, p := range qv.Preds {
		if !p.Eval(dv.Attrs) {
			return false
		}
	}
	return true
}

// String renders the pattern vertex.
func (qv *Vertex) String() string {
	var sb strings.Builder
	sb.WriteString(qv.Name)
	if qv.Type != "" {
		sb.WriteString(":")
		sb.WriteString(qv.Type)
	}
	for _, p := range qv.Preds {
		sb.WriteString(" ")
		sb.WriteString(p.String())
	}
	return sb.String()
}

// Edge is a pattern edge between two pattern vertices. It matches data edges
// whose type equals Type (when non-empty), whose direction agrees (unless
// AnyDirection is set) and which satisfy all predicates.
type Edge struct {
	ID           EdgeID
	Source       VertexID
	Target       VertexID
	Type         string
	AnyDirection bool
	Preds        []Predicate
}

// MatchesEdge reports whether the data edge satisfies the label and
// attribute constraints of this pattern edge (direction is checked by the
// matcher, which knows the candidate vertex bindings).
func (qe *Edge) MatchesEdge(de *graph.Edge) bool {
	if de == nil {
		return false
	}
	if qe.Type != "" && qe.Type != de.Type {
		return false
	}
	for _, p := range qe.Preds {
		if !p.Eval(de.Attrs) {
			return false
		}
	}
	return true
}

// String renders the pattern edge.
func (qe *Edge) String() string {
	arrow := "->"
	if qe.AnyDirection {
		arrow = "--"
	}
	label := qe.Type
	if label == "" {
		label = "*"
	}
	return fmt.Sprintf("(%d) -[%s]%s (%d)", qe.Source, label, arrow, qe.Target)
}

// Graph is an immutable query pattern: a small connected multigraph of
// pattern vertices and edges plus the time window within which a match's
// temporal span must fall. Construct with Builder or Parse.
type Graph struct {
	name     string
	window   time.Duration
	vertices []Vertex
	edges    []Edge

	out map[VertexID][]EdgeID
	in  map[VertexID][]EdgeID
}

// Name returns the query name (may be empty for ad-hoc queries).
func (q *Graph) Name() string { return q.name }

// Window returns the query time window tW. Zero means unbounded.
func (q *Graph) Window() time.Duration { return q.window }

// NumVertices returns the number of pattern vertices.
func (q *Graph) NumVertices() int { return len(q.vertices) }

// NumEdges returns the number of pattern edges.
func (q *Graph) NumEdges() int { return len(q.edges) }

// Vertex returns the pattern vertex with the given ID.
func (q *Graph) Vertex(id VertexID) *Vertex {
	if int(id) < 0 || int(id) >= len(q.vertices) {
		return nil
	}
	return &q.vertices[id]
}

// VertexByName returns the pattern vertex with the given variable name.
func (q *Graph) VertexByName(name string) (*Vertex, bool) {
	for i := range q.vertices {
		if q.vertices[i].Name == name {
			return &q.vertices[i], true
		}
	}
	return nil, false
}

// Edge returns the pattern edge with the given ID.
func (q *Graph) Edge(id EdgeID) *Edge {
	if int(id) < 0 || int(id) >= len(q.edges) {
		return nil
	}
	return &q.edges[id]
}

// Vertices returns a copy of the pattern vertex slice.
func (q *Graph) Vertices() []Vertex {
	out := make([]Vertex, len(q.vertices))
	copy(out, q.vertices)
	return out
}

// Edges returns a copy of the pattern edge slice.
func (q *Graph) Edges() []Edge {
	out := make([]Edge, len(q.edges))
	copy(out, q.edges)
	return out
}

// EdgeIDs returns every pattern edge ID in ascending order.
func (q *Graph) EdgeIDs() []EdgeID {
	out := make([]EdgeID, len(q.edges))
	for i := range q.edges {
		out[i] = EdgeID(i)
	}
	return out
}

// IncidentEdges returns the IDs of pattern edges touching v.
func (q *Graph) IncidentEdges(v VertexID) []EdgeID {
	out := append([]EdgeID(nil), q.out[v]...)
	out = append(out, q.in[v]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of pattern edges incident to v.
func (q *Graph) Degree(v VertexID) int { return len(q.out[v]) + len(q.in[v]) }

// EndpointsOf returns the endpoint vertex IDs of the given edges (dedup'd,
// ascending). It is used by the decomposer to compute cut vertices.
func (q *Graph) EndpointsOf(edges []EdgeID) []VertexID {
	set := make(map[VertexID]struct{})
	for _, eid := range edges {
		e := q.Edge(eid)
		if e == nil {
			continue
		}
		set[e.Source] = struct{}{}
		set[e.Target] = struct{}{}
	}
	out := make([]VertexID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsConnected reports whether the pattern (ignoring direction) is connected.
// The engine requires connected query graphs.
func (q *Graph) IsConnected() bool {
	if len(q.vertices) == 0 {
		return false
	}
	if len(q.vertices) == 1 {
		return true
	}
	return q.SubsetConnected(q.EdgeIDs()) && len(q.EndpointsOf(q.EdgeIDs())) == len(q.vertices)
}

// SubsetConnected reports whether the subgraph induced by the given pattern
// edges is connected (ignoring direction). Decomposition primitives must be
// connected so that local search stays local.
func (q *Graph) SubsetConnected(edges []EdgeID) bool {
	if len(edges) == 0 {
		return false
	}
	adj := make(map[VertexID][]VertexID)
	verts := make(map[VertexID]struct{})
	for _, eid := range edges {
		e := q.Edge(eid)
		if e == nil {
			return false
		}
		adj[e.Source] = append(adj[e.Source], e.Target)
		adj[e.Target] = append(adj[e.Target], e.Source)
		verts[e.Source] = struct{}{}
		verts[e.Target] = struct{}{}
	}
	var start VertexID
	//swvet:unordered connectivity is independent of which vertex the walk starts from
	for v := range verts {
		start = v
		break
	}
	seen := map[VertexID]struct{}{start: {}}
	stack := []VertexID{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[v] {
			if _, ok := seen[n]; !ok {
				seen[n] = struct{}{}
				stack = append(stack, n)
			}
		}
	}
	return len(seen) == len(verts)
}

// String renders the query graph in a DSL-like form.
func (q *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query %s (window %s)\n", q.name, q.window)
	for i := range q.vertices {
		fmt.Fprintf(&sb, "  vertex %s\n", q.vertices[i].String())
	}
	for i := range q.edges {
		e := &q.edges[i]
		arrow := "->"
		if e.AnyDirection {
			arrow = "--"
		}
		label := e.Type
		if label == "" {
			label = "*"
		}
		fmt.Fprintf(&sb, "  edge %s -[%s]%s %s\n",
			q.vertices[e.Source].Name, label, arrow, q.vertices[e.Target].Name)
	}
	return sb.String()
}
