package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

// randomEdgeSet binds a random set of pattern edges to data edges drawn from
// a deliberately tiny ID space so that distinct random matches frequently
// collide on equal bindings — exercising both sides of the equivalence.
func randomEdgeSet(rng *rand.Rand, sized bool) *Match {
	var m *Match
	if sized {
		m = NewSized(6, 6)
	} else {
		m = New() // grown on demand: a different slice shape, same identity
	}
	n := rng.Intn(4) + 1
	for i := 0; i < n; i++ {
		qe := query.EdgeID(rng.Intn(5))
		de := graph.EdgeID(rng.Intn(6))
		m.BindEdge(qe, de, graph.Timestamp(rng.Intn(100)))
	}
	return m
}

// TestEdgeSetKeyAgreesWithSignatureEquality is the key-equivalence property
// behind the flat-match refactor: for arbitrary matches, the legacy string
// signatures are equal exactly when SameEdges reports equality, and equal
// edge sets always share the cached 64-bit EdgeSetHash. Together these make
// the (hash, SameEdges-bucket) pair a faithful replacement for string-keyed
// dedup everywhere in the engine.
func TestEdgeSetKeyAgreesWithSignatureEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(1357))
	for i := 0; i < 50_000; i++ {
		a := randomEdgeSet(rng, rng.Intn(2) == 0)
		b := randomEdgeSet(rng, rng.Intn(2) == 0)
		sigEq := a.Signature() == b.Signature()
		if same := a.SameEdges(b); same != sigEq {
			t.Fatalf("SameEdges = %v but signature equality = %v\na = %q\nb = %q", same, sigEq, a.Signature(), b.Signature())
		}
		if got := a.SameEdgeSet(b.EdgeSet()); got != sigEq {
			t.Fatalf("SameEdgeSet = %v but signature equality = %v\na = %q\nb = %q", got, sigEq, a.Signature(), b.Signature())
		}
		if sigEq && a.EdgeSetHash() != b.EdgeSetHash() {
			t.Fatalf("equal signatures %q hash differently: %x vs %x", a.Signature(), a.EdgeSetHash(), b.EdgeSetHash())
		}
		if !a.SameEdges(a) || !b.SameEdges(b) {
			t.Fatalf("SameEdges not reflexive")
		}
	}
}

// TestEdgeSetHashInsensitiveToBindOrder mirrors the canonical-signature
// property: binding the same edges in any order yields the same hash and
// the same equality class.
func TestEdgeSetHashInsensitiveToBindOrder(t *testing.T) {
	f := func(ids [4]uint8, perm uint8) bool {
		a, b := New(), New()
		order := []int{0, 1, 2, 3}
		// A cheap permutation derived from perm.
		for i := range order {
			j := int(perm) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for i := 0; i < 4; i++ {
			a.BindEdge(query.EdgeID(i), graph.EdgeID(ids[i]), graph.Timestamp(i))
		}
		for _, i := range order {
			b.BindEdge(query.EdgeID(i), graph.EdgeID(ids[i]), graph.Timestamp(i))
		}
		return a.SameEdges(b) && a.EdgeSetHash() == b.EdgeSetHash() && a.Signature() == b.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeSetHashCachedAcrossCloneAndInvalidatedByBind checks the cache
// discipline: clones carry the cached hash, and binding a new edge
// invalidates it.
func TestEdgeSetHashCachedAcrossCloneAndInvalidatedByBind(t *testing.T) {
	m := NewSized(4, 4)
	m.BindEdge(0, 10, 1)
	h1 := m.EdgeSetHash()
	c := m.Clone()
	if c.EdgeSetHash() != h1 {
		t.Fatalf("clone hash differs")
	}
	c.BindEdge(1, 11, 2)
	if c.EdgeSetHash() == h1 {
		t.Fatalf("hash not invalidated by new binding")
	}
	if m.EdgeSetHash() != h1 {
		t.Fatalf("original perturbed by clone's binding")
	}
}

// TestProjectionKeyMatchesProjectKeyEquality checks the partition-key
// replacement: two matches agree on the integer Projection key whenever
// their legacy ProjectKey strings agree (over cuts both narrower and wider
// than the inline array).
func TestProjectionKeyMatchesProjectKeyEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(2468))
	cuts := [][]query.VertexID{
		{0},
		{1, 3},
		{0, 1, 2, 3},
		{0, 1, 2, 3, 4, 5}, // wider than the inline array: hash spillover
	}
	for i := 0; i < 20_000; i++ {
		a, b := NewSized(6, 0), NewSized(6, 0)
		for qv := 0; qv < 6; qv++ {
			if rng.Intn(3) > 0 {
				a.BindVertex(query.VertexID(qv), graph.VertexID(rng.Intn(4)+1))
			}
			if rng.Intn(3) > 0 {
				b.BindVertex(query.VertexID(qv), graph.VertexID(rng.Intn(4)+1))
			}
		}
		for _, cut := range cuts {
			strEq := a.ProjectKey(cut) == b.ProjectKey(cut)
			keyEq := a.Projection(cut) == b.Projection(cut)
			if strEq && !keyEq {
				t.Fatalf("equal string keys %q disagree on Projection", a.ProjectKey(cut))
			}
			// The converse (keyEq && !strEq) is possible only past the
			// inline width by hash collision, which is harmless for
			// correctness (joins re-check compatibility); within the inline
			// width the keys must be exact.
			if len(cut) <= 4 && keyEq && !strEq {
				t.Fatalf("inline Projection collides: %q vs %q", a.ProjectKey(cut), b.ProjectKey(cut))
			}
		}
	}
}
