// Package match defines the partial-match representation shared by the
// isomorphism matcher, the SJ-Tree and the continuous engine.
//
// A Match binds a subset of a query graph's vertices and edges to concrete
// data-graph vertices and edges, together with the temporal interval spanned
// by the bound data edges. Matches are joined pairwise as they climb the
// SJ-Tree (paper §4.2); Join enforces the subgraph-isomorphism requirement
// that the combined vertex binding remain one-to-one.
//
// The representation is deliberately flat: pattern vertex and edge IDs are
// dense (assigned from 0 in registration order by the query builder), so the
// bindings are plain slices indexed by pattern ID rather than maps. That
// makes Clone a pair of copies, Compatible/Join linear scans and the
// canonical match identity a cached 64-bit hash — the per-edge hot path
// allocates no map buckets and builds no strings. String-valued identities
// (Signature, ProjectKey) survive only at the export/report boundary.
package match

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

// unbound is the "no binding" sentinel of the dense binding slices. The
// all-ones data IDs are reserved — graph.AddEdge rejects them at the ingest
// boundary (graph.ErrReservedID) — so the sentinel can never collide with a
// real binding. Both binding slices store raw uint64 IDs (vertex and edge
// IDs are uint64 underneath) so a single backing array can serve both.
const unbound = ^uint64(0)

// Match is a (possibly partial) homomorphic image of a query subgraph in the
// data graph under the one-to-one vertex correspondence required by subgraph
// isomorphism. The zero value is an empty match ready for extension.
type Match struct {
	// vertices[qv] is the data vertex bound to pattern vertex qv, or
	// unbound. The slice grows on demand; NewForQuery sizes it up front,
	// sharing one backing array with edges (capacity-clipped so growth can
	// never clobber the neighbour).
	vertices []uint64
	// edges[qe] is the data edge bound to pattern edge qe, or unbound.
	edges []uint64
	// nv and ne count the bound entries so NumVertices/NumEdges stay O(1).
	nv, ne int

	// Span is the closed interval covering the timestamps of all bound data
	// edges; it is the τ(g) of the paper.
	Span graph.Interval
	// spanSet records whether Span has been initialized by at least one edge.
	spanSet bool

	// hash caches EdgeSetHash; hashOK is cleared whenever an edge binding
	// changes.
	hash   uint64
	hashOK bool
}

// New returns an empty match.
func New() *Match { return &Match{} }

// NewSized returns an empty match with binding storage for nv pattern
// vertices and ne pattern edges, avoiding any later growth. Both binding
// slices share one allocation.
func NewSized(nv, ne int) *Match {
	m := &Match{}
	if nv+ne > 0 {
		buf := make([]uint64, nv+ne)
		for i := range buf {
			buf[i] = unbound
		}
		m.vertices = buf[:nv:nv]
		m.edges = buf[nv : nv+ne : nv+ne]
	}
	return m
}

// NewForQuery returns an empty match sized for the query graph q.
func NewForQuery(q *query.Graph) *Match {
	return NewSized(q.NumVertices(), q.NumEdges())
}

// NewFromEdge builds a single-edge match binding pattern edge qe (with
// pattern endpoints qsrc->qdst) to data edge de.
func NewFromEdge(qe query.EdgeID, qsrc, qdst query.VertexID, de *graph.Edge, reversed bool) *Match {
	m := New()
	if reversed {
		m.BindVertex(qsrc, de.Target)
		m.BindVertex(qdst, de.Source)
	} else {
		m.BindVertex(qsrc, de.Source)
		m.BindVertex(qdst, de.Target)
	}
	m.BindEdge(qe, de.ID, de.Timestamp)
	return m
}

// growVertices extends the vertex slice to hold at least n entries.
func (m *Match) growVertices(n int) {
	for len(m.vertices) < n {
		m.vertices = append(m.vertices, unbound)
	}
}

// growEdges extends the edge slice to hold at least n entries.
func (m *Match) growEdges(n int) {
	for len(m.edges) < n {
		m.edges = append(m.edges, unbound)
	}
}

// NumVertices returns the number of bound pattern vertices.
func (m *Match) NumVertices() int { return m.nv }

// NumEdges returns the number of bound pattern edges.
func (m *Match) NumEdges() int { return m.ne }

// HasSpan reports whether at least one edge has contributed to the temporal
// span.
func (m *Match) HasSpan() bool { return m.spanSet }

// Vertex returns the data vertex bound to the pattern vertex, if any.
func (m *Match) Vertex(q query.VertexID) (graph.VertexID, bool) {
	if int(q) < 0 || int(q) >= len(m.vertices) || m.vertices[q] == unbound {
		return 0, false
	}
	return graph.VertexID(m.vertices[q]), true
}

// Edge returns the data edge bound to the pattern edge, if any.
func (m *Match) Edge(q query.EdgeID) (graph.EdgeID, bool) {
	if int(q) < 0 || int(q) >= len(m.edges) || m.edges[q] == unbound {
		return 0, false
	}
	return graph.EdgeID(m.edges[q]), true
}

// ForEachVertex invokes fn for every bound pattern vertex in ascending
// pattern-ID order, stopping early when fn returns false.
func (m *Match) ForEachVertex(fn func(qv query.VertexID, dv graph.VertexID) bool) {
	for qv, dv := range m.vertices {
		if dv == unbound {
			continue
		}
		if !fn(query.VertexID(qv), graph.VertexID(dv)) {
			return
		}
	}
}

// ForEachEdge invokes fn for every bound pattern edge in ascending
// pattern-ID order, stopping early when fn returns false.
func (m *Match) ForEachEdge(fn func(qe query.EdgeID, de graph.EdgeID) bool) {
	for qe, de := range m.edges {
		if de == unbound {
			continue
		}
		if !fn(query.EdgeID(qe), graph.EdgeID(de)) {
			return
		}
	}
}

// CanBindVertex reports whether BindVertex(q, d) would succeed, without
// mutating the match: q must be unbound or already bound to d, and d must
// not be bound to any other pattern vertex (injectivity).
func (m *Match) CanBindVertex(q query.VertexID, d graph.VertexID) bool {
	if int(q) < len(m.vertices) && m.vertices[q] != unbound {
		return m.vertices[q] == uint64(d)
	}
	for _, bound := range m.vertices {
		if bound == uint64(d) {
			return false
		}
	}
	return true
}

// BindVertex records that pattern vertex q is matched by data vertex d.
// It returns false (and leaves the match unchanged) when the binding would
// conflict with an existing binding of q or violate injectivity.
func (m *Match) BindVertex(q query.VertexID, d graph.VertexID) bool {
	if !m.CanBindVertex(q, d) {
		return false
	}
	if int(q) < len(m.vertices) && m.vertices[q] == uint64(d) {
		return true
	}
	m.growVertices(int(q) + 1)
	m.vertices[q] = uint64(d)
	m.nv++
	return true
}

// BindEdge records that pattern edge q is matched by data edge d with the
// given timestamp, extending the temporal span. It returns false when q is
// already bound to a different data edge.
func (m *Match) BindEdge(q query.EdgeID, d graph.EdgeID, ts graph.Timestamp) bool {
	if int(q) < len(m.edges) && m.edges[q] != unbound {
		return m.edges[q] == uint64(d)
	}
	m.growEdges(int(q) + 1)
	m.edges[q] = uint64(d)
	m.ne++
	m.hashOK = false
	if m.spanSet {
		m.Span = m.Span.Extend(ts)
	} else {
		m.Span = graph.NewInterval(ts)
		m.spanSet = true
	}
	return true
}

// UsesDataVertex reports whether any pattern vertex is bound to d.
func (m *Match) UsesDataVertex(d graph.VertexID) bool {
	for _, bound := range m.vertices {
		if bound == uint64(d) {
			return true
		}
	}
	return false
}

// UsesDataEdge reports whether any pattern edge is bound to d.
func (m *Match) UsesDataEdge(d graph.EdgeID) bool {
	for _, bound := range m.edges {
		if bound == uint64(d) {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the match.
func (m *Match) Clone() *Match {
	c := &Match{
		nv:      m.nv,
		ne:      m.ne,
		Span:    m.Span,
		spanSet: m.spanSet,
		hash:    m.hash,
		hashOK:  m.hashOK,
	}
	if nv, ne := len(m.vertices), len(m.edges); nv+ne > 0 {
		buf := make([]uint64, nv+ne)
		copy(buf, m.vertices)
		copy(buf[nv:], m.edges)
		c.vertices = buf[:nv:nv]
		c.edges = buf[nv : nv+ne : nv+ne]
	}
	return c
}

// Compatible reports whether m and o can be joined into a single consistent
// match: pattern vertices bound by both must map to the same data vertex,
// pattern edges bound by both must map to the same data edge, and the union
// of the vertex bindings must remain injective (no two distinct pattern
// vertices sharing a data vertex).
func (m *Match) Compatible(o *Match) bool {
	shared := len(m.vertices)
	if len(o.vertices) < shared {
		shared = len(o.vertices)
	}
	for qv := 0; qv < shared; qv++ {
		mv, ov := m.vertices[qv], o.vertices[qv]
		if mv != unbound && ov != unbound && mv != ov {
			return false
		}
	}
	// Injectivity across the union: a data vertex bound by o at qv must not
	// be bound by m at a different pattern vertex. Pattern graphs are tiny
	// (a handful of vertices), so the nested scan beats building a reverse
	// map.
	for qv, ov := range o.vertices {
		if ov == unbound {
			continue
		}
		for qv2, mv := range m.vertices {
			if mv == ov && qv2 != qv {
				return false
			}
		}
	}
	shared = len(m.edges)
	if len(o.edges) < shared {
		shared = len(o.edges)
	}
	for qe := 0; qe < shared; qe++ {
		me, oe := m.edges[qe], o.edges[qe]
		if me != unbound && oe != unbound && me != oe {
			return false
		}
	}
	return true
}

// Join returns a new match combining the bindings of m and o, or nil when
// they are not Compatible. The temporal span of the result is the union of
// the two spans, matching the paper's join semantics (the joined subgraph's
// τ is the interval between its earliest and latest edge).
func (m *Match) Join(o *Match) *Match {
	if !m.Compatible(o) {
		return nil
	}
	j := m.Clone()
	j.growVertices(len(o.vertices))
	for qv, ov := range o.vertices {
		if ov != unbound && j.vertices[qv] == unbound {
			j.vertices[qv] = ov
			j.nv++
		}
	}
	j.growEdges(len(o.edges))
	for qe, oe := range o.edges {
		if oe != unbound && j.edges[qe] == unbound {
			j.edges[qe] = oe
			j.ne++
			j.hashOK = false
		}
	}
	if o.spanSet {
		if j.spanSet {
			j.Span = j.Span.Union(o.Span)
		} else {
			j.Span = o.Span
			j.spanSet = true
		}
	}
	return j
}

// Remap returns a copy of the match re-expressed in another pattern-ID
// space: every binding of source pattern vertex qv moves to vmap[qv] and
// every binding of source pattern edge qe moves to emap[qe]. The temporal
// span is copied verbatim — the data edges are unchanged, only the pattern
// side of the binding is renamed. nv and ne size the destination space.
//
// The shared-plan evaluation DAG (internal/mqo) lives on this operation:
// matches are computed once in a canonical fragment's ID space and remapped
// — two array permutes, no graph search — into each parent fragment's or
// consumer query's space. Both maps must cover every bound source ID; IDs
// mapped to out-of-range slots panic, as that is a canonicalization bug, not
// a data condition.
func (m *Match) Remap(nv, ne int, vmap []query.VertexID, emap []query.EdgeID) *Match {
	r := NewSized(nv, ne)
	for qv, dv := range m.vertices {
		if dv == unbound {
			continue
		}
		r.vertices[vmap[qv]] = dv
		r.nv++
	}
	for qe, de := range m.edges {
		if de == unbound {
			continue
		}
		r.edges[emap[qe]] = de
		r.ne++
	}
	r.Span = m.Span
	r.spanSet = m.spanSet
	return r
}

// mix64 is the splitmix64 finalizer, a fast 64-bit bijective mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// edgeSetSeed is the hash of the empty edge set.
const edgeSetSeed = 0x9e3779b97f4a7c15

// EdgeSetHash returns a 64-bit hash of the exact pattern-edge → data-edge
// binding, the integer replacement for the legacy Signature string on the
// hot path. Two matches with equal bindings always hash equally; hash-keyed
// consumers (the SJ-Tree dedup sets, the shard merge dedup) resolve the
// astronomically unlikely collisions with SameEdges equality buckets. The
// hash is cached and only recomputed after an edge binding changes.
func (m *Match) EdgeSetHash() uint64 {
	if m.hashOK {
		return m.hash
	}
	h := uint64(edgeSetSeed)
	for qe, de := range m.edges {
		if de == unbound {
			continue
		}
		// XOR-accumulating per-pair mixes keeps the hash independent of
		// iteration details while (qe, de) stay bound together.
		h ^= mix64(de ^ mix64(uint64(qe)+edgeSetSeed))
	}
	m.hash, m.hashOK = h, true
	return h
}

// SameEdges reports whether m and o bind exactly the same pattern edges to
// the same data edges — the equality behind Signature() identity, without
// building the string.
func (m *Match) SameEdges(o *Match) bool {
	if m.ne != o.ne {
		return false
	}
	long, short := m.edges, o.edges
	if len(long) < len(short) {
		long, short = short, long
	}
	for qe, de := range short {
		if de != long[qe] {
			return false
		}
	}
	for _, de := range long[len(short):] {
		if de != unbound {
			return false
		}
	}
	return true
}

// EdgeSet is a compact, immutable copy of a match's pattern-edge →
// data-edge binding: the identity of the match and nothing else. Long-lived
// dedup sets (e.g. the SJ-Tree's emitted-match set) store EdgeSets so they
// never pin whole Match values — vertex bindings, spans and cache fields —
// for the lifetime of the stream.
type EdgeSet struct {
	edges []uint64 // dense binding, trailing unbound slots trimmed
}

// EdgeSet returns a compact copy of the match's edge binding.
func (m *Match) EdgeSet() EdgeSet {
	e := m.edges
	for len(e) > 0 && e[len(e)-1] == unbound {
		e = e[:len(e)-1]
	}
	out := make([]uint64, len(e))
	copy(out, e)
	return EdgeSet{edges: out}
}

// SameEdgeSet reports whether the match's edge binding equals s — the
// EdgeSet counterpart of SameEdges.
func (m *Match) SameEdgeSet(s EdgeSet) bool {
	if len(m.edges) < len(s.edges) {
		// s binds a pattern edge beyond m's slice (its last entry is always
		// bound, trailing unbound slots being trimmed).
		return false
	}
	for qe, de := range s.edges {
		if m.edges[qe] != de {
			return false
		}
	}
	for _, de := range m.edges[len(s.edges):] {
		if de != unbound {
			return false
		}
	}
	return true
}

// projectionInline is how many cut vertices a ProjectionKey stores exactly;
// wider cuts fold the remainder into the hash word. Collisions there only
// cost failed join attempts (Join re-checks compatibility), never
// correctness.
const projectionInline = 4

// ProjectionKey is the comparable hash-partition key of a match's projection
// onto a cut-vertex list. It replaces the legacy "v1|v2" ProjectKey strings
// inside the SJ-Tree.
type ProjectionKey struct {
	n      uint8
	inline [projectionInline]uint64
	hash   uint64
}

// Projection computes the match's projection key onto the given pattern
// vertices, in the order given. Unbound vertices project to a reserved
// sentinel, mirroring the "_" of the legacy string key.
func (m *Match) Projection(vertices []query.VertexID) ProjectionKey {
	k := ProjectionKey{n: uint8(len(vertices))}
	for i, qv := range vertices {
		dv := uint64(unbound)
		if int(qv) >= 0 && int(qv) < len(m.vertices) {
			dv = m.vertices[qv]
		}
		if i < projectionInline {
			k.inline[i] = dv
		} else {
			k.hash ^= mix64(dv ^ mix64(uint64(i)))
		}
	}
	return k
}

// ProjectKey computes a deterministic string key for the match restricted to
// the given pattern vertices, in the order given. Missing bindings render as
// "_". The SJ-Tree now partitions on the integer Projection key; this string
// form remains for debugging and reports.
func (m *Match) ProjectKey(vertices []query.VertexID) string {
	var sb strings.Builder
	for i, qv := range vertices {
		if i > 0 {
			sb.WriteByte('|')
		}
		if dv, ok := m.Vertex(qv); ok {
			sb.WriteString(strconv.FormatUint(uint64(dv), 10))
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// Signature returns a canonical string identifying the exact set of data
// edges bound by the match. Two matches with the same signature describe the
// same data subgraph assignment. The engine's hot path deduplicates on
// EdgeSetHash/SameEdges instead; the string form survives at the
// export/report boundary (export.MatchReport, remote match-set comparison)
// and is byte-identical to the pre-refactor format.
func (m *Match) Signature() string {
	parts := make([]string, 0, m.ne)
	for qe, de := range m.edges {
		if de == unbound {
			continue
		}
		parts = append(parts, strconv.Itoa(qe)+":"+strconv.FormatUint(de, 10))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Complete reports whether the match covers every vertex and edge of q.
func (m *Match) Complete(q *query.Graph) bool {
	return m.nv == q.NumVertices() && m.ne == q.NumEdges()
}

// WithinWindow reports whether the temporal span of the match is strictly
// inside the window w (τ(g) < tW). Matches with no bound edges are trivially
// within any window; a zero window means unbounded.
func (m *Match) WithinWindow(w time.Duration) bool {
	if w <= 0 || !m.spanSet {
		return true
	}
	return m.Span.Within(w)
}

// String renders the match for debugging: pattern-vertex bindings in
// pattern order and the temporal span.
func (m *Match) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	m.ForEachVertex(func(qv query.VertexID, dv graph.VertexID) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "q%d->v%d", qv, dv)
		return true
	})
	fmt.Fprintf(&sb, "} edges=%d span=%s", m.ne, m.Span)
	return sb.String()
}
