// Package match defines the partial-match representation shared by the
// isomorphism matcher, the SJ-Tree and the continuous engine.
//
// A Match binds a subset of a query graph's vertices and edges to concrete
// data-graph vertices and edges, together with the temporal interval spanned
// by the bound data edges. Matches are joined pairwise as they climb the
// SJ-Tree (paper §4.2); Join enforces the subgraph-isomorphism requirement
// that the combined vertex binding remain one-to-one.
package match

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

// Match is a (possibly partial) homomorphic image of a query subgraph in the
// data graph under the one-to-one vertex correspondence required by subgraph
// isomorphism. The zero value is an empty match ready for extension.
type Match struct {
	// Vertices maps pattern vertices to data vertices.
	Vertices map[query.VertexID]graph.VertexID
	// Edges maps pattern edges to data edges.
	Edges map[query.EdgeID]graph.EdgeID
	// Span is the closed interval covering the timestamps of all bound data
	// edges; it is the τ(g) of the paper.
	Span graph.Interval
	// spanSet records whether Span has been initialized by at least one edge.
	spanSet bool
}

// New returns an empty match.
func New() *Match {
	return &Match{
		Vertices: make(map[query.VertexID]graph.VertexID),
		Edges:    make(map[query.EdgeID]graph.EdgeID),
	}
}

// NewFromEdge builds a single-edge match binding pattern edge qe (with
// pattern endpoints qsrc->qdst) to data edge de.
func NewFromEdge(qe query.EdgeID, qsrc, qdst query.VertexID, de *graph.Edge, reversed bool) *Match {
	m := New()
	if reversed {
		m.Vertices[qsrc] = de.Target
		m.Vertices[qdst] = de.Source
	} else {
		m.Vertices[qsrc] = de.Source
		m.Vertices[qdst] = de.Target
	}
	m.Edges[qe] = de.ID
	m.Span = graph.NewInterval(de.Timestamp)
	m.spanSet = true
	return m
}

// NumVertices returns the number of bound pattern vertices.
func (m *Match) NumVertices() int { return len(m.Vertices) }

// NumEdges returns the number of bound pattern edges.
func (m *Match) NumEdges() int { return len(m.Edges) }

// HasSpan reports whether at least one edge has contributed to the temporal
// span.
func (m *Match) HasSpan() bool { return m.spanSet }

// Vertex returns the data vertex bound to the pattern vertex, if any.
func (m *Match) Vertex(q query.VertexID) (graph.VertexID, bool) {
	v, ok := m.Vertices[q]
	return v, ok
}

// Edge returns the data edge bound to the pattern edge, if any.
func (m *Match) Edge(q query.EdgeID) (graph.EdgeID, bool) {
	e, ok := m.Edges[q]
	return e, ok
}

// BindVertex records that pattern vertex q is matched by data vertex d.
// It returns false (and leaves the match unchanged) when the binding would
// conflict with an existing binding of q or violate injectivity.
func (m *Match) BindVertex(q query.VertexID, d graph.VertexID) bool {
	if existing, ok := m.Vertices[q]; ok {
		return existing == d
	}
	for _, bound := range m.Vertices {
		if bound == d {
			return false
		}
	}
	m.Vertices[q] = d
	return true
}

// BindEdge records that pattern edge q is matched by data edge d with the
// given timestamp, extending the temporal span. It returns false when q is
// already bound to a different data edge.
func (m *Match) BindEdge(q query.EdgeID, d graph.EdgeID, ts graph.Timestamp) bool {
	if existing, ok := m.Edges[q]; ok {
		return existing == d
	}
	m.Edges[q] = d
	if m.spanSet {
		m.Span = m.Span.Extend(ts)
	} else {
		m.Span = graph.NewInterval(ts)
		m.spanSet = true
	}
	return true
}

// UsesDataVertex reports whether any pattern vertex is bound to d.
func (m *Match) UsesDataVertex(d graph.VertexID) bool {
	for _, bound := range m.Vertices {
		if bound == d {
			return true
		}
	}
	return false
}

// UsesDataEdge reports whether any pattern edge is bound to d.
func (m *Match) UsesDataEdge(d graph.EdgeID) bool {
	for _, bound := range m.Edges {
		if bound == d {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the match.
func (m *Match) Clone() *Match {
	c := &Match{
		Vertices: make(map[query.VertexID]graph.VertexID, len(m.Vertices)),
		Edges:    make(map[query.EdgeID]graph.EdgeID, len(m.Edges)),
		Span:     m.Span,
		spanSet:  m.spanSet,
	}
	for k, v := range m.Vertices {
		c.Vertices[k] = v
	}
	for k, v := range m.Edges {
		c.Edges[k] = v
	}
	return c
}

// Compatible reports whether m and o can be joined into a single consistent
// match: pattern vertices bound by both must map to the same data vertex,
// pattern edges bound by both must map to the same data edge, and the union
// of the vertex bindings must remain injective (no two distinct pattern
// vertices sharing a data vertex).
func (m *Match) Compatible(o *Match) bool {
	// Shared pattern vertices must agree; disjoint ones must not collide.
	// Build the reverse map of m lazily sized.
	reverse := make(map[graph.VertexID]query.VertexID, len(m.Vertices))
	for qv, dv := range m.Vertices {
		reverse[dv] = qv
	}
	for qv, dv := range o.Vertices {
		if mdv, ok := m.Vertices[qv]; ok {
			if mdv != dv {
				return false
			}
			continue
		}
		if prior, used := reverse[dv]; used && prior != qv {
			return false
		}
	}
	for qe, de := range o.Edges {
		if mde, ok := m.Edges[qe]; ok && mde != de {
			return false
		}
	}
	return true
}

// Join returns a new match combining the bindings of m and o, or nil when
// they are not Compatible. The temporal span of the result is the union of
// the two spans, matching the paper's join semantics (the joined subgraph's
// τ is the interval between its earliest and latest edge).
func (m *Match) Join(o *Match) *Match {
	if !m.Compatible(o) {
		return nil
	}
	j := m.Clone()
	for qv, dv := range o.Vertices {
		j.Vertices[qv] = dv
	}
	for qe, de := range o.Edges {
		j.Edges[qe] = de
	}
	if o.spanSet {
		if j.spanSet {
			j.Span = j.Span.Union(o.Span)
		} else {
			j.Span = o.Span
			j.spanSet = true
		}
	}
	return j
}

// ProjectKey computes a deterministic string key for the match restricted to
// the given pattern vertices, in the order given. The SJ-Tree uses these
// keys to hash-partition sibling match collections by their cut-subgraph
// projection so joins become hash lookups. Missing bindings render as "_",
// which only occurs for malformed projections and never collides with real
// vertex IDs.
func (m *Match) ProjectKey(vertices []query.VertexID) string {
	var sb strings.Builder
	for i, qv := range vertices {
		if i > 0 {
			sb.WriteByte('|')
		}
		if dv, ok := m.Vertices[qv]; ok {
			sb.WriteString(strconv.FormatUint(uint64(dv), 10))
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// Signature returns a canonical string identifying the exact set of data
// edges bound by the match. Two matches with the same signature describe the
// same data subgraph assignment; the engine uses signatures to deduplicate
// results discovered through different join orders.
func (m *Match) Signature() string {
	parts := make([]string, 0, len(m.Edges))
	for qe, de := range m.Edges {
		parts = append(parts, strconv.Itoa(int(qe))+":"+strconv.FormatUint(uint64(de), 10))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Complete reports whether the match covers every vertex and edge of q.
func (m *Match) Complete(q *query.Graph) bool {
	return len(m.Vertices) == q.NumVertices() && len(m.Edges) == q.NumEdges()
}

// WithinWindow reports whether the temporal span of the match is strictly
// inside the window w (τ(g) < tW). Matches with no bound edges are trivially
// within any window; a zero window means unbounded.
func (m *Match) WithinWindow(w time.Duration) bool {
	if w <= 0 || !m.spanSet {
		return true
	}
	return m.Span.Within(w)
}

// String renders the match for debugging: sorted pattern-vertex bindings and
// the temporal span.
func (m *Match) String() string {
	qvs := make([]int, 0, len(m.Vertices))
	for qv := range m.Vertices {
		qvs = append(qvs, int(qv))
	}
	sort.Ints(qvs)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, qv := range qvs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "q%d->v%d", qv, m.Vertices[query.VertexID(qv)])
	}
	fmt.Fprintf(&sb, "} edges=%d span=%s", len(m.Edges), m.Span)
	return sb.String()
}
