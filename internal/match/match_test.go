package match

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

func TestNewFromEdge(t *testing.T) {
	de := &graph.Edge{ID: 100, Source: 7, Target: 9, Type: "flow", Timestamp: 500}
	m := NewFromEdge(3, 0, 1, de, false)
	if v, _ := m.Vertex(0); v != 7 {
		t.Fatalf("source binding wrong: %v", m)
	}
	if v, _ := m.Vertex(1); v != 9 {
		t.Fatalf("target binding wrong: %v", m)
	}
	if e, _ := m.Edge(3); e != 100 {
		t.Fatalf("edge binding wrong: %v", m)
	}
	if m.Span.Start != 500 || m.Span.End != 500 {
		t.Fatalf("span wrong: %v", m.Span)
	}
	rev := NewFromEdge(3, 0, 1, de, true)
	if v, _ := rev.Vertex(0); v != 9 {
		t.Fatalf("reversed source binding wrong: %v", rev)
	}
	if v, _ := rev.Vertex(1); v != 7 {
		t.Fatalf("reversed target binding wrong: %v", rev)
	}
}

func TestBindVertexInjectivity(t *testing.T) {
	m := New()
	if !m.BindVertex(0, 10) {
		t.Fatalf("first binding rejected")
	}
	if !m.BindVertex(0, 10) {
		t.Fatalf("re-binding to same data vertex rejected")
	}
	if m.BindVertex(0, 11) {
		t.Fatalf("conflicting re-binding accepted")
	}
	if m.BindVertex(1, 10) {
		t.Fatalf("injectivity violation accepted")
	}
	if !m.BindVertex(1, 11) {
		t.Fatalf("valid second binding rejected")
	}
	if m.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d", m.NumVertices())
	}
}

func TestBindEdgeAndSpan(t *testing.T) {
	m := New()
	if m.HasSpan() {
		t.Fatalf("empty match should have no span")
	}
	if !m.BindEdge(0, 100, 50) {
		t.Fatalf("bind edge failed")
	}
	if !m.BindEdge(1, 101, 90) {
		t.Fatalf("bind edge failed")
	}
	if !m.BindEdge(1, 101, 90) {
		t.Fatalf("idempotent rebind failed")
	}
	if m.BindEdge(1, 999, 90) {
		t.Fatalf("conflicting edge rebind accepted")
	}
	if m.Span.Start != 50 || m.Span.End != 90 {
		t.Fatalf("span = %v", m.Span)
	}
	if !m.UsesDataEdge(100) || m.UsesDataEdge(12345) {
		t.Fatalf("UsesDataEdge wrong")
	}
}

func TestUsesDataVertex(t *testing.T) {
	m := New()
	m.BindVertex(0, 10)
	if !m.UsesDataVertex(10) || m.UsesDataVertex(11) {
		t.Fatalf("UsesDataVertex wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New()
	m.BindVertex(0, 1)
	m.BindEdge(0, 10, 5)
	c := m.Clone()
	c.BindVertex(1, 2)
	c.BindEdge(1, 11, 50)
	if m.NumVertices() != 1 || m.NumEdges() != 1 {
		t.Fatalf("clone mutated original")
	}
	if m.Span.End != 5 {
		t.Fatalf("clone mutated original span")
	}
}

func TestCompatibleSharedVertexAgreement(t *testing.T) {
	a := New()
	a.BindVertex(0, 10)
	a.BindVertex(1, 11)
	b := New()
	b.BindVertex(1, 11)
	b.BindVertex(2, 12)
	if !a.Compatible(b) {
		t.Fatalf("agreeing matches reported incompatible")
	}
	c := New()
	c.BindVertex(1, 99)
	if a.Compatible(c) {
		t.Fatalf("disagreeing shared vertex reported compatible")
	}
}

func TestCompatibleInjectivityAcrossJoin(t *testing.T) {
	a := New()
	a.BindVertex(0, 10)
	b := New()
	b.BindVertex(1, 10) // different pattern vertex, same data vertex
	if a.Compatible(b) {
		t.Fatalf("injectivity violation across join not detected")
	}
}

func TestCompatibleEdgeConflict(t *testing.T) {
	a := New()
	a.BindEdge(0, 100, 1)
	b := New()
	b.BindEdge(0, 200, 2)
	if a.Compatible(b) {
		t.Fatalf("conflicting edge bindings reported compatible")
	}
	c := New()
	c.BindEdge(0, 100, 1)
	if !a.Compatible(c) {
		t.Fatalf("identical edge bindings reported incompatible")
	}
}

func TestJoinMergesBindingsAndSpan(t *testing.T) {
	a := New()
	a.BindVertex(0, 10)
	a.BindVertex(1, 11)
	a.BindEdge(0, 100, 50)
	b := New()
	b.BindVertex(1, 11)
	b.BindVertex(2, 12)
	b.BindEdge(1, 101, 200)
	j := a.Join(b)
	if j == nil {
		t.Fatalf("join of compatible matches returned nil")
	}
	if j.NumVertices() != 3 || j.NumEdges() != 2 {
		t.Fatalf("join sizes wrong: %v", j)
	}
	if j.Span.Start != 50 || j.Span.End != 200 {
		t.Fatalf("join span wrong: %v", j.Span)
	}
	// Join must not mutate operands.
	if a.NumVertices() != 2 || b.NumVertices() != 2 {
		t.Fatalf("join mutated operands")
	}
	bad := New()
	bad.BindVertex(0, 999)
	if a.Join(bad) != nil {
		t.Fatalf("join of incompatible matches should be nil")
	}
}

func TestJoinWithSpanlessOperand(t *testing.T) {
	a := New()
	a.BindVertex(0, 1)
	b := New()
	b.BindVertex(1, 2)
	b.BindEdge(0, 10, 77)
	j := a.Join(b)
	if !j.HasSpan() || j.Span.Start != 77 {
		t.Fatalf("span not inherited from right operand: %v", j)
	}
	j2 := b.Join(a)
	if !j2.HasSpan() || j2.Span.Start != 77 {
		t.Fatalf("span not preserved in left operand: %v", j2)
	}
}

// Property: Join is commutative with respect to the resulting bindings and
// span whenever the operands are compatible.
func TestJoinCommutativityProperty(t *testing.T) {
	f := func(av, bv [4]uint8, at, bt uint16) bool {
		a, b := New(), New()
		for i, v := range av {
			a.BindVertex(query.VertexID(i), graph.VertexID(v))
		}
		for i, v := range bv {
			b.BindVertex(query.VertexID(i+2), graph.VertexID(v)) // overlap on 2,3
		}
		a.BindEdge(0, 1000, graph.Timestamp(at))
		b.BindEdge(1, 1001, graph.Timestamp(bt))
		ab, ba := a.Join(b), b.Join(a)
		if (ab == nil) != (ba == nil) {
			return false
		}
		if ab == nil {
			return true
		}
		if ab.Signature() != ba.Signature() || ab.Span != ba.Span {
			return false
		}
		return ab.ProjectKey([]query.VertexID{0, 1, 2, 3, 4, 5}) == ba.ProjectKey([]query.VertexID{0, 1, 2, 3, 4, 5})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectKey(t *testing.T) {
	m := New()
	m.BindVertex(0, 10)
	m.BindVertex(1, 20)
	if k := m.ProjectKey([]query.VertexID{0, 1}); k != "10|20" {
		t.Fatalf("ProjectKey = %q", k)
	}
	if k := m.ProjectKey([]query.VertexID{1, 0}); k != "20|10" {
		t.Fatalf("ProjectKey order must follow the argument order: %q", k)
	}
	if k := m.ProjectKey([]query.VertexID{5}); k != "_" {
		t.Fatalf("missing binding should render as _: %q", k)
	}
}

func TestSignatureCanonical(t *testing.T) {
	a := New()
	a.BindEdge(1, 200, 5)
	a.BindEdge(0, 100, 3)
	b := New()
	b.BindEdge(0, 100, 3)
	b.BindEdge(1, 200, 5)
	if a.Signature() != b.Signature() {
		t.Fatalf("signatures differ for identical edge sets: %q vs %q", a.Signature(), b.Signature())
	}
	c := New()
	c.BindEdge(0, 100, 3)
	if a.Signature() == c.Signature() {
		t.Fatalf("different edge sets share a signature")
	}
}

func TestCompleteAgainstQuery(t *testing.T) {
	q := query.NewBuilder("tri").
		Vertex("a", "").Vertex("b", "").Vertex("c", "").
		Edge("a", "b", "e").Edge("b", "c", "e").Edge("c", "a", "e").
		MustBuild()
	m := New()
	m.BindVertex(0, 1)
	m.BindVertex(1, 2)
	m.BindVertex(2, 3)
	m.BindEdge(0, 10, 1)
	m.BindEdge(1, 11, 2)
	if m.Complete(q) {
		t.Fatalf("incomplete match reported complete")
	}
	m.BindEdge(2, 12, 3)
	if !m.Complete(q) {
		t.Fatalf("complete match reported incomplete")
	}
}

func TestWithinWindow(t *testing.T) {
	m := New()
	if !m.WithinWindow(time.Second) {
		t.Fatalf("spanless match should be within any window")
	}
	m.BindEdge(0, 1, 0)
	m.BindEdge(1, 2, graph.Timestamp(5*time.Minute))
	if !m.WithinWindow(0) {
		t.Fatalf("zero window means unbounded")
	}
	if !m.WithinWindow(6 * time.Minute) {
		t.Fatalf("span 5m should be within 6m")
	}
	if m.WithinWindow(5 * time.Minute) {
		t.Fatalf("window test must be strict: 5m span not < 5m window")
	}
	if m.WithinWindow(time.Minute) {
		t.Fatalf("span 5m should not fit in 1m window")
	}
}

func TestMatchString(t *testing.T) {
	m := New()
	m.BindVertex(1, 20)
	m.BindVertex(0, 10)
	m.BindEdge(0, 5, 7)
	s := m.String()
	if s == "" || s[0] != '{' {
		t.Fatalf("String() = %q", s)
	}
}
