package loader

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"

	"github.com/streamworks/streamworks/internal/graph"
)

// This file is the hand-rolled fast path behind WriteJSONL. The JSONL wire
// format is the repo's hottest encode path — every ingest request, WAL frame
// and snapshot passes through it — and reflection-based encoding/json was
// measured at ~2.7µs/edge, dominating WAL overhead. The appenders below
// encode straight from graph.StreamEdge (no intermediate jsonEdge maps) and
// produce byte-identical output to encoding/json for the jsonEdge shape:
// same field order, omitempty behavior, sorted map keys, HTML escaping and
// float format. That keeps the wire format, golden files and the WAL's
// byte-determinism invariant unchanged; a differential test pins the
// equivalence. Anything the fast path cannot reproduce exactly (NaN/Inf
// floats) falls back to encoding/json for that edge.

// appendJSONString appends s as a JSON string. The fast path covers plain
// ASCII without characters encoding/json escapes (quotes, backslash,
// controls, and <, >, & under its default HTML escaping); everything else
// defers to json.Marshal for guaranteed byte equivalence.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, _ := json.Marshal(s)
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONFloat mirrors encoding/json's float encoding: shortest
// round-trip form, 'f' format except very small/large magnitudes, with the
// exponent's leading zero trimmed. ok=false for NaN/Inf, which
// encoding/json rejects.
func appendJSONFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// appendValueWire appends one attribute value in the jsonValue wire shape:
// a kind tag plus the matching omitempty payload field.
func appendValueWire(b []byte, v graph.Value) ([]byte, bool) {
	switch v.Kind() {
	case graph.KindString:
		b = append(b, `{"kind":"string"`...)
		if s := v.Str(); s != "" {
			b = append(b, `,"s":`...)
			b = appendJSONString(b, s)
		}
	case graph.KindInt:
		b = append(b, `{"kind":"int"`...)
		if n := v.Int64(); n != 0 {
			b = append(b, `,"i":`...)
			b = strconv.AppendInt(b, n, 10)
		}
	case graph.KindFloat:
		b = append(b, `{"kind":"float"`...)
		if f := v.Float64(); f != 0 {
			b = append(b, `,"f":`...)
			var ok bool
			if b, ok = appendJSONFloat(b, f); !ok {
				return b, false
			}
		}
	case graph.KindBool:
		b = append(b, `{"kind":"bool"`...)
		if v.BoolVal() {
			b = append(b, `,"b":true`...)
		}
	default:
		b = append(b, `{"kind":"invalid"`...)
	}
	return append(b, '}'), true
}

// appendAttrsWire appends an attribute map with keys in sorted order
// (encoding/json's map behavior). keys is a reusable scratch slice.
func appendAttrsWire(b []byte, keys []string, a graph.Attributes) ([]byte, []string, bool) {
	keys = keys[:0]
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = append(b, '{')
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, k)
		b = append(b, ':')
		var ok bool
		if b, ok = appendValueWire(b, a[k]); !ok {
			return b, keys, false
		}
	}
	return append(b, '}'), keys, true
}

// appendEdgeWire appends se as one JSON object (no trailing newline),
// byte-identical to encoding/json encoding the equivalent jsonEdge.
// ok=false means the edge needs the encoding/json fallback; the caller must
// discard the partial output.
func appendEdgeWire(b []byte, keys []string, se graph.StreamEdge) ([]byte, []string, bool) {
	b = append(b, `{"id":`...)
	b = strconv.AppendUint(b, uint64(se.Edge.ID), 10)
	b = append(b, `,"source":`...)
	b = strconv.AppendUint(b, uint64(se.Edge.Source), 10)
	b = append(b, `,"target":`...)
	b = strconv.AppendUint(b, uint64(se.Edge.Target), 10)
	b = append(b, `,"type":`...)
	b = appendJSONString(b, se.Edge.Type)
	b = append(b, `,"ts":`...)
	b = strconv.AppendInt(b, int64(se.Edge.Timestamp), 10)
	if se.SourceType != "" {
		b = append(b, `,"source_type":`...)
		b = appendJSONString(b, se.SourceType)
	}
	if se.TargetType != "" {
		b = append(b, `,"target_type":`...)
		b = appendJSONString(b, se.TargetType)
	}
	var ok bool
	if len(se.Edge.Attrs) > 0 {
		b = append(b, `,"attrs":`...)
		if b, keys, ok = appendAttrsWire(b, keys, se.Edge.Attrs); !ok {
			return b, keys, false
		}
	}
	if len(se.SourceAttrs) > 0 {
		b = append(b, `,"source_attrs":`...)
		if b, keys, ok = appendAttrsWire(b, keys, se.SourceAttrs); !ok {
			return b, keys, false
		}
	}
	if len(se.TargetAttrs) > 0 {
		b = append(b, `,"target_attrs":`...)
		if b, keys, ok = appendAttrsWire(b, keys, se.TargetAttrs); !ok {
			return b, keys, false
		}
	}
	return append(b, '}'), keys, true
}
