package loader_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/loader"
)

// FuzzNDJSONDecode fuzzes the NDJSON wire decoder with generator-produced
// streams as seeds. The decoder guards a trust boundary (swload and the
// daemon both ingest operator-supplied files), so the bar is: arbitrary
// bytes either fail cleanly or decode into edges that round-trip — a
// re-encode of the decoded edges must itself decode to the same edges, and
// two encodes of the same edges must be byte-identical (the determinism
// invariant the maporder analyzer enforces statically).
//
// This test lives in package loader_test because the seed corpus comes from
// internal/gen, which itself imports loader.
func FuzzNDJSONDecode(f *testing.F) {
	// Seed 1-2: real generator output, the format as actually written.
	nfCfg := gen.DefaultNetFlowConfig()
	nfCfg.Hosts, nfCfg.Servers, nfCfg.Edges = 20, 4, 40
	var nf bytes.Buffer
	if err := gen.NetFlowWorkload(nfCfg, time.Minute).NDJSON(&nf); err != nil {
		f.Fatal(err)
	}
	f.Add(nf.Bytes())

	newsCfg := gen.DefaultNewsConfig()
	newsCfg.Articles = 12
	var news bytes.Buffer
	if err := gen.NewsWorkload(newsCfg, time.Minute, 2).NDJSON(&news); err != nil {
		f.Fatal(err)
	}
	f.Add(news.Bytes())

	// Hand-written edge cases: empty input, blank lines, truncated JSON,
	// unknown fields, every attribute kind, extreme numbers, and a
	// negative timestamp.
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"id":1,"source":2,"target":3,"type":"flow","ts":10}`))
	f.Add([]byte(`{"id":1,"source":2,"target":3,"type":"flow","ts":10,"bogus":[1,2]}`))
	f.Add([]byte(`{"id":1,"source":2,"target":3,"type":"x","ts":-5,"attrs":{"s":{"s":"v"},"i":{"i":-9},"f":{"f":0.5},"b":{"b":true}}}`))
	f.Add([]byte(`{"id":18446744073709551615,"source":0,"target":0,"type":"","ts":9223372036854775807}`))
	f.Add([]byte(`{"id":1,"source":2,`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		edges, err := loader.ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input cleanly is a pass
		}

		var enc1 bytes.Buffer
		if err := loader.WriteJSONL(&enc1, edges); err != nil {
			t.Fatalf("decoded edges failed to re-encode: %v", err)
		}
		again, err := loader.ReadJSONL(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if !reflect.DeepEqual(edges, again) {
			t.Fatalf("round-trip changed the edges:\nfirst:  %#v\nsecond: %#v", edges, again)
		}

		var enc2 bytes.Buffer
		if err := loader.WriteJSONL(&enc2, again); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("encoding is not deterministic:\nfirst:  %q\nsecond: %q", enc1.Bytes(), enc2.Bytes())
		}
	})
}
