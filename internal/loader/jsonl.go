package loader

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/stream"
)

// jsonEdge is the JSON Lines wire representation of one stream edge.
// Attribute values carry an explicit kind so round-trips preserve types
// exactly (CSV round-trips rely on re-inference instead).
type jsonEdge struct {
	ID          uint64               `json:"id"`
	Source      uint64               `json:"source"`
	Target      uint64               `json:"target"`
	Type        string               `json:"type"`
	Timestamp   int64                `json:"ts"`
	SourceType  string               `json:"source_type,omitempty"`
	TargetType  string               `json:"target_type,omitempty"`
	Attrs       map[string]jsonValue `json:"attrs,omitempty"`
	SourceAttrs map[string]jsonValue `json:"source_attrs,omitempty"`
	TargetAttrs map[string]jsonValue `json:"target_attrs,omitempty"`
}

type jsonValue struct {
	Kind  string  `json:"kind"`
	Str   string  `json:"s,omitempty"`
	Int   int64   `json:"i,omitempty"`
	Float float64 `json:"f,omitempty"`
	Bool  bool    `json:"b,omitempty"`
}

func toJSONValue(v graph.Value) jsonValue {
	switch v.Kind() {
	case graph.KindString:
		return jsonValue{Kind: "string", Str: v.Str()}
	case graph.KindInt:
		return jsonValue{Kind: "int", Int: v.Int64()}
	case graph.KindFloat:
		return jsonValue{Kind: "float", Float: v.Float64()}
	case graph.KindBool:
		return jsonValue{Kind: "bool", Bool: v.BoolVal()}
	default:
		return jsonValue{Kind: "invalid"}
	}
}

func fromJSONValue(v jsonValue) graph.Value {
	switch v.Kind {
	case "string":
		return graph.String(v.Str)
	case "int":
		return graph.Int(v.Int)
	case "float":
		return graph.Float(v.Float)
	case "bool":
		return graph.Bool(v.Bool)
	default:
		return graph.Value{}
	}
}

func toJSONAttrs(a graph.Attributes) map[string]jsonValue {
	if len(a) == 0 {
		return nil
	}
	out := make(map[string]jsonValue, len(a))
	for k, v := range a {
		out[k] = toJSONValue(v)
	}
	return out
}

func fromJSONAttrs(m map[string]jsonValue) graph.Attributes {
	if len(m) == 0 {
		return nil
	}
	var attrs graph.Attributes
	//swvet:unordered map-to-map copy: Set inserts by key, so the result is identical in any visit order
	for k, v := range m {
		attrs = attrs.Set(k, fromJSONValue(v))
	}
	return attrs
}

func toJSONEdge(se graph.StreamEdge) jsonEdge {
	return jsonEdge{
		ID:          uint64(se.Edge.ID),
		Source:      uint64(se.Edge.Source),
		Target:      uint64(se.Edge.Target),
		Type:        se.Edge.Type,
		Timestamp:   int64(se.Edge.Timestamp),
		SourceType:  se.SourceType,
		TargetType:  se.TargetType,
		Attrs:       toJSONAttrs(se.Edge.Attrs),
		SourceAttrs: toJSONAttrs(se.SourceAttrs),
		TargetAttrs: toJSONAttrs(se.TargetAttrs),
	}
}

func fromJSONEdge(je jsonEdge) graph.StreamEdge {
	return graph.StreamEdge{
		Edge: graph.Edge{
			ID:        graph.EdgeID(je.ID),
			Source:    graph.VertexID(je.Source),
			Target:    graph.VertexID(je.Target),
			Type:      je.Type,
			Timestamp: graph.Timestamp(je.Timestamp),
			Attrs:     fromJSONAttrs(je.Attrs),
		},
		SourceType:  je.SourceType,
		TargetType:  je.TargetType,
		SourceAttrs: fromJSONAttrs(je.SourceAttrs),
		TargetAttrs: fromJSONAttrs(je.TargetAttrs),
	}
}

// WriteJSONL writes one JSON object per line for every edge. Encoding goes
// through the hand-rolled appenders in jsonl_append.go (byte-identical to
// encoding/json for this shape); edges the fast path cannot represent
// exactly fall back to encoding/json.
func WriteJSONL(w io.Writer, edges []graph.StreamEdge) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	var keys []string
	var enc *json.Encoder
	for _, se := range edges {
		out, k, ok := appendEdgeWire(buf[:0], keys, se)
		keys = k
		if ok {
			buf = append(out, '\n')
			if _, err := bw.Write(buf); err != nil {
				return fmt.Errorf("loader: encoding edge %d: %w", se.Edge.ID, err)
			}
			continue
		}
		if enc == nil {
			enc = json.NewEncoder(bw)
		}
		if err := enc.Encode(toJSONEdge(se)); err != nil {
			return fmt.Errorf("loader: encoding edge %d: %w", se.Edge.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads every edge from a JSON Lines document.
func ReadJSONL(r io.Reader) ([]graph.StreamEdge, error) {
	var out []graph.StreamEdge
	src := JSONLSource(r)
	_, err := stream.Replay(src, func(se graph.StreamEdge) bool {
		out = append(out, se)
		return true
	})
	return out, err
}

// JSONLSource returns a streaming source over a JSON Lines document.
func JSONLSource(r io.Reader) stream.Source {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	return stream.FuncSource(func() (graph.StreamEdge, error) {
		for sc.Scan() {
			line++
			text := sc.Bytes()
			if len(text) == 0 {
				continue
			}
			var je jsonEdge
			if err := json.Unmarshal(text, &je); err != nil {
				return graph.StreamEdge{}, fmt.Errorf("loader: line %d: %w", line, err)
			}
			return fromJSONEdge(je), nil
		}
		if err := sc.Err(); err != nil {
			return graph.StreamEdge{}, err
		}
		return graph.StreamEdge{}, io.EOF
	})
}
