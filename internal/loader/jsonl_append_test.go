package loader

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/streamworks/streamworks/internal/graph"
)

// referenceJSONL is the pre-fast-path implementation of WriteJSONL: pure
// encoding/json. The fast path's contract is byte equivalence with this.
func referenceJSONL(t *testing.T, edges []graph.StreamEdge) ([]byte, error) {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	enc := json.NewEncoder(bw)
	for _, se := range edges {
		if err := enc.Encode(toJSONEdge(se)); err != nil {
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func attrEdge(id int, attrs graph.Attributes) graph.StreamEdge {
	return graph.StreamEdge{
		Edge: graph.Edge{
			ID: graph.EdgeID(id), Source: 10, Target: 20,
			Type: "flow", Timestamp: 1000, Attrs: attrs,
		},
		SourceType: "Host",
		TargetType: "Host",
	}
}

func TestWriteJSONLMatchesEncodingJSON(t *testing.T) {
	edges := []graph.StreamEdge{
		// Plain identifiers: the all-fast-path shape.
		attrEdge(1, nil),
		// Every attribute kind, including zero values that omitempty drops.
		attrEdge(2, graph.Attributes{}.
			Set("s", graph.String("value")).
			Set("i", graph.Int(-42)).
			Set("f", graph.Float(0.5)).
			Set("b", graph.Bool(true))),
		attrEdge(3, graph.Attributes{}.
			Set("zero_i", graph.Int(0)).
			Set("zero_f", graph.Float(0)).
			Set("neg_zero", graph.Float(math.Copysign(0, -1))).
			Set("false_b", graph.Bool(false)).
			Set("empty_s", graph.String(""))),
		// Strings that force encoding/json's escaping: HTML characters,
		// quotes, backslashes, control characters, unicode, invalid UTF-8.
		{Edge: graph.Edge{ID: 4, Source: 1, Target: 2, Type: `a<b>&c"d\e`, Timestamp: -5}},
		{Edge: graph.Edge{ID: 5, Source: 1, Target: 2, Type: "tab\tnewline\nnull\x00", Timestamp: 0}},
		{Edge: graph.Edge{ID: 6, Source: 1, Target: 2, Type: "héllo-wörld-日本", Timestamp: 7}},
		{Edge: graph.Edge{ID: 7, Source: 1, Target: 2, Type: "bad\xffutf8", Timestamp: 7}},
		// Numeric extremes.
		{Edge: graph.Edge{
			ID: graph.EdgeID(math.MaxUint64), Source: graph.VertexID(math.MaxUint64),
			Target: 0, Type: "x", Timestamp: math.MaxInt64,
		}},
		{Edge: graph.Edge{ID: 8, Source: 1, Target: 2, Type: "x", Timestamp: math.MinInt64}},
		// Floats across encoding/json's format switch ('f' vs 'e' with a
		// trimmed exponent) and precision edges.
		attrEdge(9, graph.Attributes{}.
			Set("tiny", graph.Float(1e-7)).
			Set("neg_tiny", graph.Float(-9.999e-7)).
			Set("boundary_lo", graph.Float(1e-6)).
			Set("huge", graph.Float(1e21)).
			Set("boundary_hi", graph.Float(9.999999e20)).
			Set("max", graph.Float(math.MaxFloat64)).
			Set("denorm", graph.Float(math.SmallestNonzeroFloat64)).
			Set("third", graph.Float(1.0/3.0)).
			Set("neg", graph.Float(-123456.789))),
		// Vertex metadata maps with keys that need sorting and escaping.
		{
			Edge:       graph.Edge{ID: 10, Source: 1, Target: 2, Type: "x", Timestamp: 1},
			SourceType: "Host", TargetType: "Server",
			SourceAttrs: graph.Attributes{}.
				Set("zz", graph.Int(1)).Set("aa", graph.Int(2)).Set("m<m", graph.String("v&v")),
			TargetAttrs: graph.Attributes{}.Set("k", graph.Bool(true)),
		},
	}

	want, err := referenceJSONL(t, edges)
	if err != nil {
		t.Fatalf("reference encode: %v", err)
	}
	var got bytes.Buffer
	if err := WriteJSONL(&got, edges); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		gl, wl := strings.Split(got.String(), "\n"), strings.Split(string(want), "\n")
		for i := range wl {
			if i >= len(gl) || gl[i] != wl[i] {
				t.Fatalf("line %d diverges from encoding/json:\nfast: %q\nref:  %q", i+1, gl[i], wl[i])
			}
		}
		t.Fatal("output diverges from encoding/json (length mismatch)")
	}
}

func TestWriteJSONLRejectsNaNLikeEncodingJSON(t *testing.T) {
	edges := []graph.StreamEdge{
		attrEdge(1, graph.Attributes{}.Set("bad", graph.Float(math.NaN()))),
	}
	var buf bytes.Buffer
	err := WriteJSONL(&buf, edges)
	if err == nil {
		t.Fatal("WriteJSONL accepted a NaN attribute; encoding/json rejects it")
	}
	if !strings.Contains(err.Error(), "unsupported value") {
		t.Fatalf("err = %v, want encoding/json's unsupported-value error via the fallback", err)
	}

	inf := []graph.StreamEdge{
		attrEdge(2, graph.Attributes{}.Set("bad", graph.Float(math.Inf(1)))),
	}
	if err := WriteJSONL(&buf, inf); err == nil {
		t.Fatal("WriteJSONL accepted an Inf attribute")
	}
}

func BenchmarkWriteJSONL(b *testing.B) {
	edges := make([]graph.StreamEdge, 0, 1024)
	for i := 0; i < 1024; i++ {
		edges = append(edges, attrEdge(i+1, graph.Attributes{}.
			Set("bytes", graph.Int(int64(i)*37)).
			Set("proto", graph.String("tcp"))))
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteJSONL(&buf, edges); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
