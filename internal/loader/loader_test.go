package loader

import (
	"bytes"
	"strings"
	"testing"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/stream"
)

func sampleEdges() []graph.StreamEdge {
	return []graph.StreamEdge{
		{
			Edge: graph.Edge{
				ID: 1, Source: 10, Target: 20, Type: "flow", Timestamp: 1000,
				Attrs: graph.Attributes{"bytes": graph.Int(512), "proto": graph.String("tcp")},
			},
			SourceType:  "Host",
			TargetType:  "Server",
			SourceAttrs: graph.Attributes{"os": graph.String("linux")},
		},
		{
			Edge: graph.Edge{
				ID: 2, Source: 20, Target: 30, Type: "dns_query", Timestamp: 2000,
				Attrs: graph.Attributes{"qname": graph.String("a.example.com"), "score": graph.Float(0.5), "cached": graph.Bool(true)},
			},
			SourceType: "Server",
			TargetType: "Server",
		},
		{
			Edge:       graph.Edge{ID: 3, Source: 30, Target: 10, Type: "login", Timestamp: 3000},
			SourceType: "Server",
			TargetType: "Host",
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	edges := sampleEdges()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, edges); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(edges) {
		t.Fatalf("round trip lost edges: %d vs %d", len(got), len(edges))
	}
	for i := range edges {
		want, have := edges[i], got[i]
		if want.Edge.ID != have.Edge.ID || want.Edge.Source != have.Edge.Source ||
			want.Edge.Target != have.Edge.Target || want.Edge.Type != have.Edge.Type ||
			want.Edge.Timestamp != have.Edge.Timestamp {
			t.Fatalf("edge %d core fields differ: %+v vs %+v", i, want.Edge, have.Edge)
		}
		if want.SourceType != have.SourceType || want.TargetType != have.TargetType {
			t.Fatalf("edge %d endpoint types differ", i)
		}
		for k, v := range want.Edge.Attrs {
			gv, ok := have.Edge.Attrs.Get(k)
			if !ok || !gv.Equal(v) {
				t.Fatalf("edge %d attr %q lost: %v vs %v", i, k, v, gv)
			}
		}
	}
}

func TestCSVSourceStreams(t *testing.T) {
	edges := sampleEdges()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, edges); err != nil {
		t.Fatal(err)
	}
	src, err := CSVSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].Edge.ID != 3 {
		t.Fatalf("CSVSource produced %v", got)
	}
}

func TestCSVRejectsBadInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("not,a,valid,header\n")); err == nil {
		t.Fatalf("bad header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatalf("empty file accepted")
	}
	header := "id,source,target,type,timestamp,source_type,target_type,edge_attrs,source_attrs,target_attrs\n"
	if _, err := ReadCSV(strings.NewReader(header + "x,1,2,flow,3,Host,Host,,,\n")); err == nil {
		t.Fatalf("bad edge id accepted")
	}
	if _, err := ReadCSV(strings.NewReader(header + "1,x,2,flow,3,Host,Host,,,\n")); err == nil {
		t.Fatalf("bad source accepted")
	}
	if _, err := ReadCSV(strings.NewReader(header + "1,2,3,flow,x,Host,Host,,,\n")); err == nil {
		t.Fatalf("bad timestamp accepted")
	}
	if _, err := CSVSource(strings.NewReader("bogus\n")); err == nil {
		t.Fatalf("CSVSource accepted bad header")
	}
}

func TestAttrEscaping(t *testing.T) {
	edges := []graph.StreamEdge{{
		Edge: graph.Edge{
			ID: 1, Source: 1, Target: 2, Type: "flow", Timestamp: 1,
			Attrs: graph.Attributes{"note": graph.String("a=b;c%d")},
		},
		SourceType: "Host", TargetType: "Host",
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := got[0].Edge.Attrs.Get("note")
	if !ok || v.Str() != "a=b;c%d" {
		t.Fatalf("escaping failed: %q", v.Str())
	}
}

func TestJSONLRoundTripPreservesKinds(t *testing.T) {
	edges := sampleEdges()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, edges); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(edges) {
		t.Fatalf("round trip lost edges")
	}
	// Kind preservation: float stays float, bool stays bool.
	score, _ := got[1].Edge.Attrs.Get("score")
	if score.Kind() != graph.KindFloat || score.Float64() != 0.5 {
		t.Fatalf("float attr mangled: %v", score)
	}
	cached, _ := got[1].Edge.Attrs.Get("cached")
	if cached.Kind() != graph.KindBool || !cached.BoolVal() {
		t.Fatalf("bool attr mangled: %v", cached)
	}
	os, _ := got[0].SourceAttrs.Get("os")
	if os.Str() != "linux" {
		t.Fatalf("source attrs mangled")
	}
}

func TestJSONLSourceSkipsBlankLinesAndReportsErrors(t *testing.T) {
	doc := `{"id":1,"source":1,"target":2,"type":"flow","ts":5}

{"id":2,"source":2,"target":3,"type":"dns_query","ts":6}
`
	got, err := ReadJSONL(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("blank line handling wrong: %d edges", len(got))
	}
	if _, err := ReadJSONL(strings.NewReader("{broken json\n")); err == nil {
		t.Fatalf("broken JSON accepted")
	}
}

func TestCSVJSONLAgree(t *testing.T) {
	edges := sampleEdges()
	var cbuf, jbuf bytes.Buffer
	if err := WriteCSV(&cbuf, edges); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jbuf, edges); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(&cbuf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSONL(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != len(fromJSON) {
		t.Fatalf("codecs disagree on edge count")
	}
	for i := range fromCSV {
		if fromCSV[i].Edge.ID != fromJSON[i].Edge.ID || fromCSV[i].Edge.Type != fromJSON[i].Edge.Type {
			t.Fatalf("codecs disagree at %d", i)
		}
	}
}
