package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/loader"
	"github.com/streamworks/streamworks/internal/stream"
	"github.com/streamworks/streamworks/internal/wire"
)

// Streaming ingest: the handler hands decoded chunks to the runner as the
// body decodes, instead of queue-then-drain. A match completed by an edge
// early in a large upload is detected (and flushed to subscribers) while
// the rest of the body is still on the wire. Chunk sizing adapts to queue
// depth — an idle queue favors small chunks so shards start immediately, a
// backed-up queue favors large ones so the per-chunk routing and WAL-frame
// overhead amortizes.
const (
	minIngestChunk = 256
	maxIngestChunk = 8192
	// streamFlushProbe is the buffered-byte threshold below which the
	// persistent stream handler flushes its partial chunk before blocking
	// on the connection: a trickling feeder gets per-edge dispatch, a
	// saturating one gets full chunks.
	streamFlushProbe = 16
)

// adaptiveChunk picks the next enqueue size from the current queue depth.
func (s *Server) adaptiveChunk() int {
	fill, depth := len(s.run.batches), cap(s.run.batches)
	c := minIngestChunk << uint(5*fill/max(depth, 1)) // 256 … 8192
	if c > maxIngestChunk {
		c = maxIngestChunk
	}
	if c > s.cfg.MaxBatchEdges {
		c = s.cfg.MaxBatchEdges
	}
	return c
}

// chunkPool recycles ingest chunk slices. The runner returns a chunk after
// ProcessBatch (the WAL append has joined and every downstream tier holds
// copies, never the slice), so reuse is alias-free.
var chunkPool = sync.Pool{New: func() any { return new([]graph.StreamEdge) }}

func getChunk() []graph.StreamEdge {
	return (*(chunkPool.Get().(*[]graph.StreamEdge)))[:0]
}

func putChunk(c []graph.StreamEdge) {
	c = c[:0]
	chunkPool.Put(&c)
}

var errQueueFull = errors.New("server: ingest queue full")

// enqueue hands one chunk to the runner. Blocking sends are safe under the
// read lock: Close flips draining under the write lock (so no new sends
// start) and only closes the queue after every read lock is released, while
// the runner keeps draining until then.
func (s *Server) enqueue(b ingestBatch, blocking bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	if blocking {
		s.run.batches <- b
		return nil
	}
	select {
	case s.run.batches <- b:
		return nil
	default:
		return errQueueFull
	}
}

// ingester is the per-request streaming decode state shared by the NDJSON
// and binary paths of POST /v1/edges and by POST /v1/stream.
type ingester struct {
	s       *Server
	arrived int64      // obs arrival stamp (0 when observability is off)
	job     *ingestJob // accumulates processed/err across chunks (wait mode)
	chunk   []graph.StreamEdge
	target  int // current adaptive chunk size
	total   int // edges accepted (enqueued) so far
	chunks  int // chunks enqueued so far
	capped  bool
	err     error // first enqueue failure (errQueueFull or ErrDraining)
}

// push buffers one decoded edge, flushing the chunk when it reaches the
// adaptive target. Returns false to stop the decode loop.
func (g *ingester) push(se graph.StreamEdge) bool {
	if g.total >= g.s.cfg.MaxBatchEdges {
		g.capped = true
		return false
	}
	if g.chunk == nil {
		g.chunk = getChunk()
		g.target = g.s.adaptiveChunk()
	}
	g.chunk = append(g.chunk, se)
	g.total++
	if len(g.chunk) >= g.target {
		return g.flush()
	}
	return true
}

// flush enqueues the buffered chunk. The first chunk of a request is
// non-blocking — admission control stays a fast 429 — while later chunks
// block: the request is already partially accepted, so backpressure
// switches from shedding to pacing the decoder (and, transitively, the
// client's TCP stream) against the runner.
func (g *ingester) flush() bool {
	if len(g.chunk) == 0 {
		return true
	}
	b := ingestBatch{edges: g.chunk, job: g.job, enqNS: g.arrived, pooled: true}
	if err := g.s.enqueue(b, g.chunks > 0); err != nil {
		g.total -= len(g.chunk)
		putChunk(g.chunk)
		g.chunk = nil
		g.err = err
		return false
	}
	g.chunks++
	g.chunk = nil
	return true
}

// consumeNDJSON streams an NDJSON body through push.
func (g *ingester) consumeNDJSON(body io.Reader) error {
	src := loader.JSONLSource(body)
	_, err := stream.Replay(src, g.push)
	if errors.Is(err, stream.ErrStopped) {
		return nil // capped or enqueue failure; both recorded on g
	}
	return err
}

// consumeBinary streams a binary frame body (magic + edge frames) through
// push. Match frames in an ingest body are corrupt input.
func (g *ingester) consumeBinary(body io.Reader) error {
	rd := wire.NewReader(body)
	for {
		typ, payload, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if typ != wire.FrameEdge {
			return wire.ErrCorrupt
		}
		se, err := wire.DecodeEdge(payload)
		if err != nil {
			return err
		}
		if !g.push(se) {
			return nil
		}
	}
}

// shedIngest applies the admission checks shared by both ingest endpoints:
// drain state, durability policy and the fast queue-full probe. It writes
// the refusal response and reports whether the request was shed.
func (s *Server) shedIngest(w http.ResponseWriter) bool {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return true
	}
	if s.cfg.RequireDurability && s.eng.Durability().Mode == "degraded" {
		// The operator asked for durable ingest or nothing: refuse rather
		// than silently accept edges that would not survive a restart.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, IngestResponse{Error: "durability degraded"})
		return true
	}
	if len(s.run.batches) == cap(s.run.batches) {
		// Fast path only — the authoritative check is the first chunk's
		// non-blocking enqueue.
		s.batchesRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, IngestResponse{Error: "ingest queue full"})
		return true
	}
	return false
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// The ingest segment starts at request arrival, not at enqueue: body
	// decode is a real part of the edge's journey, and stamping here is what
	// lets the per-segment means account for detect-and-deliver latency.
	var arrivedNS int64
	if s.obsClock != nil {
		arrivedNS = s.obsClock.Now()
	}
	if s.shedIngest(w) {
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	g := &ingester{s: s, arrived: arrivedNS}
	if wait {
		g.job = &ingestJob{}
	}
	var decodeErr error
	if strings.Contains(r.Header.Get("Content-Type"), wire.ContentTypeBinary) {
		decodeErr = g.consumeBinary(r.Body)
	} else {
		decodeErr = g.consumeNDJSON(r.Body)
	}
	if g.err == nil {
		// Trailing partial chunk — flushed even after a decode error or the
		// cap, so Accepted reports exactly what was enqueued.
		g.flush()
	}

	switch {
	case errors.Is(g.err, ErrDraining):
		if g.total == 0 {
			writeError(w, http.StatusServiceUnavailable, "draining")
		} else {
			writeJSON(w, http.StatusServiceUnavailable,
				IngestResponse{Accepted: g.total, Queued: true, Error: "draining"})
		}
		return
	case errors.Is(g.err, errQueueFull):
		s.batchesRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, IngestResponse{Error: "ingest queue full"})
		return
	case decodeErr != nil:
		// Chunks already enqueued cannot be recalled; Accepted tells the
		// client how far the stream got before the damage.
		writeJSON(w, http.StatusBadRequest,
			IngestResponse{Accepted: g.total, Queued: g.total > 0, Error: "decoding edges: " + decodeErr.Error()})
		return
	case g.capped:
		// Streaming cannot un-accept the edges that fit under the cap, so —
		// unlike the old decode-then-reject path — the response reports them.
		writeJSON(w, http.StatusRequestEntityTooLarge, IngestResponse{
			Accepted: g.total, Queued: g.total > 0,
			Error: fmt.Sprintf("batch exceeds %d edges; split the upload", s.cfg.MaxBatchEdges),
		})
		return
	}
	if !wait || g.chunks == 0 {
		writeJSON(w, http.StatusAccepted, IngestResponse{Accepted: g.total, Queued: g.chunks > 0})
		return
	}
	s.waitIngest(w, g)
}

// waitIngest enqueues the sentinel chunk that carries the wait=1 reply
// channel (FIFO ordering means it completes only after every data chunk)
// and answers with the authoritative result.
func (s *Server) waitIngest(w http.ResponseWriter, g *ingester) {
	done := make(chan ingestResult, 1)
	if err := s.enqueue(ingestBatch{job: g.job, done: done}, true); err != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			IngestResponse{Accepted: g.total, Queued: true, Error: "draining"})
		return
	}
	var res ingestResult
	if s.cfg.IngestTimeout > 0 {
		// Bound the wait so a stalled disk (WAL fsync hanging under the
		// runner) cannot wedge HTTP workers. The chunks are queued and will
		// still be processed; done is buffered, so the runner's send never
		// blocks on an abandoned waiter.
		t := time.NewTimer(s.cfg.IngestTimeout)
		defer t.Stop()
		select {
		case res = <-done:
		case <-t.C:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, IngestResponse{
				Accepted: g.total, Queued: true,
				Error: "ingest wait timed out; batch still queued",
			})
			return
		}
	} else {
		res = <-done
	}
	resp := IngestResponse{Accepted: res.processed}
	if res.err != nil {
		resp.Error = res.err.Error()
		writeJSON(w, http.StatusInternalServerError, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStream is the persistent-connection ingest session: one long-lived
// POST whose body is a binary frame stream (magic + edge frames), decoded
// and handed to the shards as frames arrive. Backpressure is the TCP
// window — a full queue blocks the decoder, which stops reading the socket.
// MaxBatchEdges does not apply (a session is a stream, not a batch); the
// JSON summary answers at EOF.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var arrivedNS int64
	if s.obsClock != nil {
		arrivedNS = s.obsClock.Now()
	}
	if !strings.Contains(r.Header.Get("Content-Type"), wire.ContentTypeBinary) {
		writeError(w, http.StatusUnsupportedMediaType,
			"stream sessions are binary only; set Content-Type: %s", wire.ContentTypeBinary)
		return
	}
	if s.shedIngest(w) {
		return
	}
	g := &ingester{s: s, arrived: arrivedNS, job: &ingestJob{}}
	rd := wire.NewReader(r.Body)
	var decodeErr error
	// A session that keeps filling chunks to their target is saturating:
	// double the next target (up to the cap) so the per-chunk routing
	// overhead amortizes. A drain-triggered partial flush means the feeder
	// is trickling — fall back to queue-depth-adaptive sizing.
	grown := 0
	for {
		if len(g.chunk) > 0 && rd.Buffered() < streamFlushProbe {
			// About to block on the socket: dispatch what we have so a
			// trickling feeder still gets immediate detection.
			if !g.flush() {
				break
			}
			grown = 0
		}
		typ, payload, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			decodeErr = err
			break
		}
		if typ != wire.FrameEdge {
			decodeErr = wire.ErrCorrupt
			break
		}
		se, err := wire.DecodeEdge(payload)
		if err != nil {
			decodeErr = err
			break
		}
		g.total++ // sessions are uncapped; bypass push's MaxBatchEdges check
		if g.chunk == nil {
			g.chunk = getChunk()
			g.target = max(s.adaptiveChunk(), grown)
		}
		g.chunk = append(g.chunk, se)
		if len(g.chunk) >= g.target {
			if !g.flush() {
				break
			}
			grown = min(2*g.target, maxIngestChunk)
		}
	}
	if g.err == nil {
		g.flush()
	}
	switch {
	case errors.Is(g.err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable,
			IngestResponse{Accepted: g.total, Queued: true, Error: "draining"})
		return
	case g.err != nil: // first-chunk queue full: the session never started
		s.batchesRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, IngestResponse{Error: "ingest queue full"})
		return
	case decodeErr != nil:
		writeJSON(w, http.StatusBadRequest,
			IngestResponse{Accepted: g.total, Queued: g.total > 0, Error: "decoding stream: " + decodeErr.Error()})
		return
	}
	if g.chunks == 0 {
		writeJSON(w, http.StatusOK, IngestResponse{})
		return
	}
	s.waitIngest(w, g)
}
