package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/api"
	"github.com/streamworks/streamworks/internal/client"
	"github.com/streamworks/streamworks/internal/gen"
)

// TestRegisterWithStrategyAndAdaptive exercises the planning options on
// POST /v1/queries end to end: the strategy and adaptive parameters are
// honored, reflected in the registration response, and visible per query on
// /v1/metrics.
func TestRegisterWithStrategyAndAdaptive(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := client.New(hs.URL)
	ctx := context.Background()

	resp, err := c.RegisterQueryWith(ctx, gen.SmurfQuery(30*time.Second),
		api.RegisterOptions{Strategy: "lazy", Adaptive: "on"})
	if err != nil {
		t.Fatalf("register with options: %v", err)
	}
	if resp.Strategy != "lazy" || !resp.Adaptive {
		t.Fatalf("response does not reflect options: strategy=%q adaptive=%v", resp.Strategy, resp.Adaptive)
	}

	// Default registration on a non-adaptive daemon: selective, frozen.
	resp2, err := c.RegisterQuery(ctx, gen.WormQuery(30*time.Second))
	if err != nil {
		t.Fatalf("register default: %v", err)
	}
	if resp2.Strategy != "selective" || resp2.Adaptive {
		t.Fatalf("default registration: strategy=%q adaptive=%v", resp2.Strategy, resp2.Adaptive)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	byName := map[string]bool{}
	for _, q := range m.Engine.Queries {
		byName[q.Name] = q.Adaptive
		if q.PlanGeneration < 1 || q.PlanNodes == 0 {
			t.Fatalf("metrics missing plan info for %s: %+v", q.Name, q)
		}
	}
	if !byName["smurf-ddos"] || byName["worm-hop"] {
		t.Fatalf("per-query adaptive flags wrong on /v1/metrics: %+v", byName)
	}

	// Unknown strategy and malformed adaptive values are client errors.
	if _, err := c.RegisterQueryDSLWith(ctx, "query q3\nvertex a : Host\nvertex b : Host\nedge a -[flow]-> b\n",
		api.RegisterOptions{Strategy: "bogus"}); err == nil || !strings.Contains(err.Error(), "422") && !strings.Contains(err.Error(), "strategy") {
		t.Fatalf("bogus strategy accepted: %v", err)
	}
	if _, err := c.RegisterQueryDSLWith(ctx, "query q4\nvertex a : Host\nvertex b : Host\nedge a -[flow]-> b\n",
		api.RegisterOptions{Adaptive: "maybe"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bogus adaptive value accepted: %v", err)
	}
}

// TestDaemonDefaultAdaptive: a server configured with AdaptivePlanning
// applies it to registrations by default, with ?adaptive=off as the
// per-query escape hatch.
func TestDaemonDefaultAdaptive(t *testing.T) {
	srv := New(Config{AdaptivePlanning: true, DefaultStrategy: "selective"})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := client.New(hs.URL)
	ctx := context.Background()

	resp, err := c.RegisterQuery(ctx, gen.SmurfQuery(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Adaptive {
		t.Fatalf("daemon default adaptive not applied")
	}
	resp2, err := c.RegisterQueryWith(ctx, gen.WormQuery(30*time.Second), api.RegisterOptions{Adaptive: "off"})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Adaptive {
		t.Fatalf("?adaptive=off did not override the daemon default")
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range m.Engine.Queries {
		want := q.Name == "smurf-ddos"
		if q.Adaptive != want {
			t.Fatalf("query %s adaptive=%v, want %v", q.Name, q.Adaptive, want)
		}
	}
}
