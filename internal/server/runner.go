package server

import (
	"context"
	"sync/atomic"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/obs"
)

// runner owns ingestion into the engine. The public engine is safe for
// concurrent use, but the serving layer still funnels all edge processing
// through this one goroutine: ingest handlers enqueue edge batches onto a
// bounded queue (returning 429 upstream when it is full — backpressure by
// admission control rather than by blocking request goroutines), and control
// handlers post closures that the runner executes between batches,
// serialized with edge processing.
type runner struct {
	eng *streamworks.Sharded

	// batches is the bounded ingest queue. Closing it (after the draining
	// flag stops producers) asks the loop to finish the queued work and exit.
	batches chan ingestBatch
	// ctrl carries control closures (register, unregister, advance, metrics).
	ctrl chan func()
	// stopped is closed when the loop has exited; receiving from it
	// establishes happens-before for direct engine access during shutdown.
	stopped chan struct{}

	edgesIngested   atomic.Uint64
	batchesIngested atomic.Uint64

	// Observability handles (all nil when disabled): the batch's queue wait
	// is measured once on dequeue and recorded per edge with ObserveN, so
	// per-edge segment means stay composable with the per-edge measurements
	// of the tiers below.
	obsClock  obs.Clock
	obsWait   *obs.Histogram
	obsTracer *obs.Tracer
}

// ingestBatch is one chunk of a streaming ingest request (the handler
// enqueues chunks as the body decodes; a request usually spans several).
// done is non-nil only on the final sentinel chunk of a wait=true request;
// the runner sends the accumulated result exactly once. enqNS is the
// wall-clock arrival time of the ingest request, stamped only when
// observability is enabled — the ingest segment spans body decode plus
// queue wait, everything between the daemon seeing the edge and the engine
// starting on it.
type ingestBatch struct {
	edges []graph.StreamEdge
	job   *ingestJob
	done  chan ingestResult
	enqNS int64
	// pooled marks chunks the runner returns to chunkPool after processing:
	// ProcessBatch has joined the WAL append and every downstream tier holds
	// copies by then, so the slice is free to reuse.
	pooled bool
}

// ingestJob accumulates the outcome of one multi-chunk ingest request.
// Only the runner goroutine touches it between the first enqueue and the
// done send on the final chunk — chunk order is FIFO — so no lock is
// needed; the done send publishes the totals to the waiting handler.
type ingestJob struct {
	processed int
	err       error
}

type ingestResult struct {
	processed int
	err       error
}

func newRunner(eng *streamworks.Sharded, queueDepth int) *runner {
	if queueDepth <= 0 {
		queueDepth = 64
	}
	return &runner{
		eng:     eng,
		batches: make(chan ingestBatch, queueDepth),
		ctrl:    make(chan func()),
		stopped: make(chan struct{}),
	}
}

// loop is the engine driver. It exits once the batch queue is closed and
// drained; control closures that were accepted before the drain began are
// guaranteed to run because their posters hold the server's read lock until
// the reply arrives, and the drain only closes the queue under the write
// lock.
func (r *runner) loop() {
	defer close(r.stopped)
	for {
		select {
		case b, ok := <-r.batches:
			if !ok {
				return
			}
			r.process(b)
		case fn := <-r.ctrl:
			fn()
		}
	}
}

func (r *runner) process(b ingestBatch) {
	if b.enqNS != 0 && r.obsWait != nil {
		wait := r.obsClock.Now() - b.enqNS
		r.obsWait.ObserveN(wait, len(b.edges))
		if r.obsTracer.Enabled() {
			for _, se := range b.edges {
				if id := uint64(se.Edge.ID); r.obsTracer.SampleEdge(id) {
					r.obsTracer.Record(obs.TraceEvent{
						Stage:    obs.StageIngest,
						Shard:    -1,
						EdgeID:   id,
						StreamTS: int64(se.Edge.Timestamp),
						DurNS:    wait,
					})
				}
			}
		}
	}
	var processed int
	var err error
	if len(b.edges) > 0 {
		// The arrival stamp rides the edge envelope down through routing and
		// the shard mailbox so the engine can stamp it onto any match this
		// edge completes — the per-match journey measurement.
		for i := range b.edges {
			b.edges[i].ArrivedWallNS = b.enqNS
		}
		// One ProcessBatch per chunk: one WAL frame and one pass through the
		// shard router, instead of a per-edge append.
		if err = r.eng.ProcessBatch(context.Background(), b.edges); err == nil {
			processed = len(b.edges)
		}
		r.edgesIngested.Add(uint64(processed))
		r.batchesIngested.Add(1)
	}
	if b.job != nil {
		b.job.processed += processed
		if err != nil && b.job.err == nil {
			b.job.err = err
		}
	}
	if b.done != nil {
		res := ingestResult{processed: processed, err: err}
		if b.job != nil {
			res = ingestResult{processed: b.job.processed, err: b.job.err}
		}
		b.done <- res
	}
	if b.pooled {
		putChunk(b.edges)
	}
}
