package server

import (
	"context"
	"sync/atomic"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/graph"
)

// runner owns ingestion into the engine. The public engine is safe for
// concurrent use, but the serving layer still funnels all edge processing
// through this one goroutine: ingest handlers enqueue edge batches onto a
// bounded queue (returning 429 upstream when it is full — backpressure by
// admission control rather than by blocking request goroutines), and control
// handlers post closures that the runner executes between batches,
// serialized with edge processing.
type runner struct {
	eng *streamworks.Sharded

	// batches is the bounded ingest queue. Closing it (after the draining
	// flag stops producers) asks the loop to finish the queued work and exit.
	batches chan ingestBatch
	// ctrl carries control closures (register, unregister, advance, metrics).
	ctrl chan func()
	// stopped is closed when the loop has exited; receiving from it
	// establishes happens-before for direct engine access during shutdown.
	stopped chan struct{}

	edgesIngested   atomic.Uint64
	batchesIngested atomic.Uint64
}

// ingestBatch is one decoded /v1/edges request body. done is non-nil for
// wait=true requests; the runner sends the result exactly once.
type ingestBatch struct {
	edges []graph.StreamEdge
	done  chan ingestResult
}

type ingestResult struct {
	processed int
	err       error
}

func newRunner(eng *streamworks.Sharded, queueDepth int) *runner {
	if queueDepth <= 0 {
		queueDepth = 64
	}
	return &runner{
		eng:     eng,
		batches: make(chan ingestBatch, queueDepth),
		ctrl:    make(chan func()),
		stopped: make(chan struct{}),
	}
}

// loop is the engine driver. It exits once the batch queue is closed and
// drained; control closures that were accepted before the drain began are
// guaranteed to run because their posters hold the server's read lock until
// the reply arrives, and the drain only closes the queue under the write
// lock.
func (r *runner) loop() {
	defer close(r.stopped)
	for {
		select {
		case b, ok := <-r.batches:
			if !ok {
				return
			}
			r.process(b)
		case fn := <-r.ctrl:
			fn()
		}
	}
}

func (r *runner) process(b ingestBatch) {
	var res ingestResult
	for _, se := range b.edges {
		if err := r.eng.Process(context.Background(), se); err != nil {
			res.err = err
			break
		}
		res.processed++
	}
	r.edgesIngested.Add(uint64(res.processed))
	r.batchesIngested.Add(1)
	if b.done != nil {
		b.done <- res
	}
}
