package server_test

// End-to-end coverage for the observability layer through the serving tier:
// the daemon self-describes its build and obs state on /healthz, the
// per-segment latency histograms fill in as a real workload flows through,
// the Prometheus exposition parses and carries the expected families, and
// the trace ring stitches edge journeys across every tier. The workload and
// client plumbing mirror TestEndToEndNetflow so the only new variable is
// observability being switched on.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/api"
	"github.com/streamworks/streamworks/internal/client"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/server"
	"github.com/streamworks/streamworks/internal/shard"
)

func obsWorkload() gen.Workload {
	cfg := gen.NetFlowConfig{
		Hosts:       250,
		Servers:     25,
		Edges:       3000,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        23,
	}
	return gen.NetFlowWorkload(cfg, time.Minute)
}

func TestEndToEndObservability(t *testing.T) {
	w := obsWorkload()
	expected, _, err := gen.RunSingle(w)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(expected) == 0 {
		t.Fatal("degenerate workload: no matches")
	}

	// Sample every edge with an effectively unlimited per-second cap so the
	// stage-coverage assertions below cannot race the rate limiter.
	w.Engine.Obs = obs.Config{
		Enabled: true,
		Tracer:  obs.NewTracer(1<<14, 1, 1<<30, obs.SystemClock),
	}
	srv := server.New(server.Config{
		Shard:            shard.Config{Shards: 2, Engine: w.Engine},
		SubscriberBuffer: 8192,
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := client.New(hs.URL)
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.GoVersion != runtime.Version() {
		t.Fatalf("health go_version = %q, want %q", h.GoVersion, runtime.Version())
	}
	if !h.ObsEnabled {
		t.Fatalf("health obs_enabled = false with observability on: %+v", h)
	}

	for _, q := range w.Queries {
		if _, err := c.RegisterQuery(ctx, q); err != nil {
			t.Fatalf("registering %q: %v", q.Name(), err)
		}
	}
	sub, err := c.SubscribeMatches(ctx, "")
	if err != nil {
		t.Fatalf("subscribing: %v", err)
	}
	defer sub.Close()
	got := make(gen.MatchSet)
	received := make(chan struct{}, 1)
	recvDone := make(chan error, 1)
	go func() {
		for {
			rep, err := sub.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				recvDone <- err
				return
			}
			got.AddKey(rep.Query, rep.Signature)
			if len(got) == len(expected) {
				select {
				case received <- struct{}{}:
				default:
				}
			}
		}
	}()

	if _, err := c.IngestBatch(ctx, w.Edges, true); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	// Wait for the full match set so the dispatch and http_flush segments
	// have definitely been observed before the snapshots are read.
	select {
	case <-received:
	case <-time.After(30 * time.Second):
		t.Fatalf("received %d of %d matches before timeout", len(got), len(expected))
	}

	// /v1/metrics carries the merged histogram snapshot; every wall-time
	// journey segment must have observations for this workload.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Obs == nil {
		t.Fatal("metrics response has no obs snapshot with observability on")
	}
	for _, seg := range []string{
		obs.SegIngestQueueWait, obs.SegShardMailbox, obs.SegLocalSearch,
		obs.SegSJTreeJoin, obs.SegDispatch, obs.SegHTTPFlush,
	} {
		hsnap, ok := m.Obs.Find(obs.SegmentHistogramName, seg)
		if !ok || hsnap.Count == 0 {
			t.Errorf("segment %q has no observations (found=%v)", seg, ok)
		}
	}
	if lag, ok := m.Obs.Find(obs.DetectLagHistogramName, ""); !ok || lag.Count == 0 {
		t.Errorf("detect_stream_lag has no observations (found=%v)", ok)
	}
	// Every delivered match must have contributed an arrival→flush journey
	// observation: the arrival stamp survived routing, the shard mailbox, the
	// core engine, dedup and fan-out.
	if jh, ok := m.Obs.Find(obs.JourneyHistogramName, ""); !ok || jh.Count == 0 {
		t.Errorf("detect_wall_journey has no observations (found=%v)", ok)
	} else if jh.Count < uint64(len(expected)) {
		t.Errorf("detect_wall_journey has %d observations, want >= %d (one per delivered match)", jh.Count, len(expected))
	}

	// The Prometheus exposition must parse and carry the segment family.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	samples, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	series := make(map[string]bool, len(samples))
	for _, s := range samples {
		series[s.Name] = true
	}
	for _, want := range []string{
		"streamworks_up",
		"streamworks_server_edges_ingested_total",
		"streamworks_segment_latency_seconds_bucket",
		"streamworks_segment_latency_seconds_sum",
		"streamworks_segment_latency_seconds_count",
		"streamworks_trace_events_recorded_total",
	} {
		if !series[want] {
			t.Errorf("/metrics missing series %s", want)
		}
	}

	// The trace dump stitches journeys: with 1-in-1 sampling every stage
	// must appear, and every event references a real stage.
	tr, err := http.Get(hs.URL + "/debug/trace")
	if err != nil {
		t.Fatalf("GET /debug/trace: %v", err)
	}
	defer tr.Body.Close()
	var dump api.TraceResponse
	if err := json.NewDecoder(tr.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding trace dump: %v", err)
	}
	if dump.Recorded == 0 || len(dump.Events) == 0 {
		t.Fatalf("trace dump empty: recorded=%d events=%d", dump.Recorded, len(dump.Events))
	}
	stages := make(map[string]int)
	for _, ev := range dump.Events {
		stages[ev.Stage]++
	}
	for _, stage := range []string{
		obs.StageIngest, obs.StageMailbox, obs.StageProcess,
		obs.StageMatch, obs.StageDeliver,
	} {
		if stages[stage] == 0 {
			t.Errorf("trace dump has no %q events (got %v)", stage, stages)
		}
	}

	srv.Close()
	select {
	case err := <-recvDone:
		if err != nil {
			t.Fatalf("subscription: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("subscription did not end after drain")
	}
	if !got.Equal(expected) {
		t.Fatalf("match set diverges with observability on: got %d, want %d", len(got), len(expected))
	}
}

// TestHealthObsDisabled pins the negative self-description: a daemon built
// without observability reports obs_enabled=false (and still reports its Go
// version), and neither the prom endpoint's obs families nor the trace dump
// exist.
func TestHealthObsDisabled(t *testing.T) {
	srv := server.New(server.Config{Shard: shard.Config{Shards: 2}})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Close()
	c := client.New(hs.URL)
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.ObsEnabled {
		t.Fatalf("health obs_enabled = true without observability: %+v", h)
	}
	if h.GoVersion != runtime.Version() {
		t.Fatalf("health go_version = %q, want %q", h.GoVersion, runtime.Version())
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	for _, s := range samples {
		if strings.HasPrefix(s.Name, "streamworks_segment_latency") {
			t.Errorf("segment family exposed with obs off: %s", s.Series())
		}
	}
	tr, err := http.Get(hs.URL + "/debug/trace")
	if err != nil {
		t.Fatalf("GET /debug/trace: %v", err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/trace with obs off = %d, want 404", tr.StatusCode)
	}
}

// TestPromScrapeFile validates a scrape captured outside the test binary:
// CI's obs smoke job curls a live daemon's /metrics into a file and points
// PROM_SCRAPE_FILE here, reusing the in-repo parser as the exposition-format
// validator. Without the env var the test is a no-op skip.
func TestPromScrapeFile(t *testing.T) {
	path := os.Getenv("PROM_SCRAPE_FILE")
	if path == "" {
		t.Skip("PROM_SCRAPE_FILE not set; this test validates CI scrape artifacts")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening scrape: %v", err)
	}
	defer f.Close()
	samples, err := obs.ParseProm(f)
	if err != nil {
		t.Fatalf("scrape does not parse as Prometheus text format: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("scrape parsed but contains no samples")
	}
	series := make(map[string]bool, len(samples))
	for _, s := range samples {
		series[s.Name] = true
	}
	for _, want := range []string{"streamworks_up", "streamworks_server_edges_ingested_total"} {
		if !series[want] {
			t.Errorf("scrape missing series %s", want)
		}
	}
	t.Logf("scrape OK: %d samples, %d series", len(samples), len(series))
}
