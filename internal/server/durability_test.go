package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/shard"
)

func fetchHealth(t *testing.T, base string) HealthResponse {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decoding health: %v", err)
	}
	return h
}

// flowEdges builds n host→host flow edges with globally unique IDs starting
// at firstID, in timestamp order.
func flowEdges(firstID, n int) []graph.StreamEdge {
	edges := make([]graph.StreamEdge, 0, n)
	for i := 0; i < n; i++ {
		ts := testBase.Add(time.Duration(i) * time.Millisecond)
		edges = append(edges, hostEdge(firstID+i, graph.VertexID(1+i%7), graph.VertexID(50+i%5), "flow", ts))
	}
	return edges
}

func TestHealthReportsDurabilityMode(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no-data-dir", Config{Shard: shard.Config{Shards: 2}}, "off"},
		{"durable", Config{Shard: shard.Config{Shards: 2}, DataDir: t.TempDir(), FsyncPolicy: "off"}, "ok"},
		// An unopenable WAL (here: a bad fsync policy) degrades at birth
		// instead of refusing to serve.
		{"degraded", Config{Shard: shard.Config{Shards: 2}, DataDir: t.TempDir(), FsyncPolicy: "bogus"}, "degraded"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, ts := newTestServer(t, c.cfg)
			if h := fetchHealth(t, ts.URL); h.Durability != c.want {
				t.Errorf("durability = %q, want %q", h.Durability, c.want)
			}
		})
	}
}

func TestRequireDurabilityRefusesDegradedIngest(t *testing.T) {
	// Degraded from birth, and the operator asked for durable-or-nothing.
	_, ts := newTestServer(t, Config{
		Shard:             shard.Config{Shards: 2},
		DataDir:           t.TempDir(),
		FsyncPolicy:       "bogus",
		RequireDurability: true,
	})
	resp := postEdges(t, ts.URL, ndjsonBody(t, flowEdges(1, 8)), false)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without a Retry-After hint")
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatalf("decoding 503 body: %v", err)
	}
	if !strings.Contains(ir.Error, "durability") {
		t.Errorf("error = %q, want a durability refusal", ir.Error)
	}

	// Query registration is still allowed — only ingest is gated.
	reg := postDSL(t, ts.URL, query.Format(gen.SmurfQuery(10*time.Minute)))
	reg.Body.Close()
	if reg.StatusCode != http.StatusCreated {
		t.Errorf("register while degraded: HTTP %d, want 201", reg.StatusCode)
	}
}

func TestDegradedIngestContinuesByDefault(t *testing.T) {
	// Without RequireDurability, degraded durability is an operational signal
	// (healthz, metrics), not an outage: ingest keeps working in-memory.
	_, ts := newTestServer(t, Config{
		Shard:       shard.Config{Shards: 2},
		DataDir:     t.TempDir(),
		FsyncPolicy: "bogus",
	})
	resp := postEdges(t, ts.URL, ndjsonBody(t, flowEdges(1, 8)), true)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("degraded ingest: HTTP %d: %s, want 200", resp.StatusCode, body)
	}
	if h := fetchHealth(t, ts.URL); h.Durability != "degraded" {
		t.Errorf("durability = %q, want degraded", h.Durability)
	}
}

func TestIngestTimeoutLeavesBatchQueued(t *testing.T) {
	// A 1ns wait budget times out essentially every wait=1 request, but the
	// batches are already queued: the 503 says "still queued", and every edge
	// must land in the engine regardless.
	_, ts := newTestServer(t, Config{
		Shard:         shard.Config{Shards: 2},
		IngestTimeout: time.Nanosecond,
	})
	const batches, per = 8, 16
	timeouts := 0
	for b := 0; b < batches; b++ {
		resp := postEdges(t, ts.URL, ndjsonBody(t, flowEdges(1+b*per, per)), true)
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusServiceUnavailable:
			var ir IngestResponse
			if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
				t.Fatalf("decoding timeout body: %v", err)
			}
			if !ir.Queued || ir.Accepted != per {
				t.Fatalf("timeout response = %+v, want queued with %d accepted", ir, per)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("timeout 503 without a Retry-After hint")
			}
			timeouts++
		default:
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, body)
		}
		resp.Body.Close()
	}
	if timeouts == 0 {
		t.Fatal("no wait=1 request timed out under a 1ns budget")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := fetchMetrics(t, ts.URL); m.Server.EdgesIngested == batches*per {
			break
		}
		if time.Now().After(deadline) {
			m := fetchMetrics(t, ts.URL)
			t.Fatalf("edges ingested = %d, want %d (timed-out batches must still drain)",
				m.Server.EdgesIngested, batches*per)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMetricsExposeWALCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Shard:       shard.Config{Shards: 2},
		DataDir:     t.TempDir(),
		FsyncPolicy: "off",
	})
	postDSL(t, ts.URL, query.Format(gen.SmurfQuery(10*time.Minute))).Body.Close()
	postEdges(t, ts.URL, ndjsonBody(t, flowEdges(1, 32)), true).Body.Close()

	m := fetchMetrics(t, ts.URL)
	if m.WAL == nil {
		t.Fatal("/v1/metrics has no wal section on a durable daemon")
	}
	if m.WAL.Mode != "ok" {
		t.Errorf("wal mode = %q, want ok", m.WAL.Mode)
	}
	if m.WAL.Frames < 2 || m.WAL.Bytes == 0 {
		t.Errorf("wal counters = %d frames / %d bytes, want a registration and a batch logged", m.WAL.Frames, m.WAL.Bytes)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range []string{"wal_degraded 0", "wal_frames_appended", "wal_bytes_appended"} {
		if !strings.Contains(string(prom), line) {
			t.Errorf("prom exposition missing %q", line)
		}
	}

	// A non-durable daemon exposes neither.
	_, plain := newTestServer(t, Config{Shard: shard.Config{Shards: 2}})
	if m := fetchMetrics(t, plain.URL); m.WAL != nil {
		t.Error("/v1/metrics has a wal section without -data-dir")
	}
	resp, err = http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	prom, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(prom), "wal_") {
		t.Error("prom exposition has wal_ series without -data-dir")
	}
}

func TestRestartRecoversQueryRegistry(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shard: shard.Config{Shards: 2}, DataDir: dir, FsyncPolicy: "off"}

	srv1 := New(cfg)
	ts1 := httptest.NewServer(srv1)
	dsl := query.Format(gen.SmurfQuery(10 * time.Minute))
	reg := postDSL(t, ts1.URL, dsl)
	reg.Body.Close()
	if reg.StatusCode != http.StatusCreated {
		t.Fatalf("register: HTTP %d", reg.StatusCode)
	}
	postEdges(t, ts1.URL, ndjsonBody(t, flowEdges(1, 16)), true).Body.Close()
	srv1.Close()
	ts1.Close()

	// The restarted serving tier must see the WAL-recovered registration in
	// its HTTP views, not just inside the engine.
	_, ts2 := newTestServer(t, cfg)
	resp, err := http.Get(ts2.URL + "/v1/queries")
	if err != nil {
		t.Fatalf("GET /v1/queries: %v", err)
	}
	var qs []QueryInfo
	if err := json.NewDecoder(resp.Body).Decode(&qs); err != nil {
		t.Fatalf("decoding listing: %v", err)
	}
	resp.Body.Close()
	if len(qs) != 1 || qs[0].Name != "smurf-ddos" {
		t.Fatalf("recovered listing = %+v, want [smurf-ddos]", qs)
	}

	resp, err = http.Get(ts2.URL + "/v1/queries/smurf-ddos")
	if err != nil {
		t.Fatalf("GET /v1/queries/smurf-ddos: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "query smurf-ddos") {
		t.Fatalf("recovered query fetch: HTTP %d: %s", resp.StatusCode, body)
	}

	// Filtered match subscriptions pass the known-query pre-check.
	req, _ := http.NewRequest(http.MethodGet, ts2.URL+"/v1/matches?query=smurf-ddos", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /v1/matches: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filtered subscription to recovered query: HTTP %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Re-registering the recovered name conflicts, same as before the restart.
	dup := postDSL(t, ts2.URL, dsl)
	dup.Body.Close()
	if dup.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register after restart: HTTP %d, want 409", dup.StatusCode)
	}
}
