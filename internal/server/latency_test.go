package server_test

import (
	"context"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/client"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/server"
	"github.com/streamworks/streamworks/internal/shard"
)

// TestFlushOnMatchLatencyIndependentOfBatchSize is the serving-path latency
// regression test: a match completed by an edge at the FRONT of an ingest
// body must be delivered while the rest of the body is still decoding, so
// match latency is governed by the dispatch chunk, not the request size. The
// p50 over several rounds must stay flat (within generous CI slack) as the
// batch grows two orders of magnitude — the signature of queue-then-drain
// ingest is latency growing linearly with the batch.
func TestFlushOnMatchLatencyIndependentOfBatchSize(t *testing.T) {
	srv := server.New(server.Config{
		Shard:            shard.Config{Shards: 1},
		SubscriberBuffer: 1024,
		MaxBatchEdges:    1 << 20,
	})
	hs := httptest.NewServer(srv)
	defer func() {
		srv.Close()
		hs.Close()
	}()
	c := client.New(hs.URL)
	ctx := context.Background()

	if _, err := c.RegisterQuery(ctx, gen.SmurfQuery(10*time.Minute)); err != nil {
		t.Fatalf("registering query: %v", err)
	}
	sub, err := c.SubscribeMatches(ctx, "")
	if err != nil {
		t.Fatalf("subscribing: %v", err)
	}
	defer sub.Close()
	// matchSeen delivers one signal per received match report.
	matchSeen := make(chan struct{}, 64)
	go func() {
		for {
			if _, err := sub.Next(); err != nil {
				return
			}
			matchSeen <- struct{}{}
		}
	}()

	const rounds = 5
	sizes := []int{128, 1024, 8192}
	base := graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC))
	nextEdge, nextVertex := 1, graph.VertexID(1)
	p50 := make(map[int]time.Duration, len(sizes))

	for _, size := range sizes {
		lats := make([]time.Duration, 0, rounds)
		for r := 0; r < rounds; r++ {
			// One matching request/reply pair up front, noise for the rest.
			// Fresh vertices every round keep the match count at exactly one.
			edges := make([]graph.StreamEdge, 0, size)
			ts := base
			a, b, v := nextVertex, nextVertex+1, nextVertex+2
			nextVertex += 3
			edges = append(edges,
				hostEdgeAt(nextEdge, a, b, gen.EdgeICMPReq, ts),
				hostEdgeAt(nextEdge+1, b, v, gen.EdgeICMPReply, ts.Add(time.Millisecond)),
			)
			nextEdge += 2
			for len(edges) < size {
				ts = ts.Add(time.Millisecond)
				edges = append(edges, hostEdgeAt(nextEdge, nextVertex, nextVertex+1, "noise", ts))
				nextEdge++
				nextVertex += 2
			}
			base = ts.Add(time.Millisecond)

			start := time.Now()
			ingestDone := make(chan error, 1)
			go func() {
				_, err := c.IngestBatch(ctx, edges, true)
				ingestDone <- err
			}()
			select {
			case <-matchSeen:
				lats = append(lats, time.Since(start))
			case <-time.After(30 * time.Second):
				t.Fatalf("size %d round %d: match never delivered", size, r)
			}
			if err := <-ingestDone; err != nil {
				t.Fatalf("size %d round %d: ingest: %v", size, r, err)
			}
		}
		slices.Sort(lats)
		p50[size] = lats[len(lats)/2]
		t.Logf("batch size %5d: p50 match latency %v (all %v)", size, p50[size], lats)
	}

	// Generous absolute ceiling for a loaded 1-CPU CI runner: even there a
	// front-of-body match clears the first dispatch chunk in well under this.
	for _, size := range sizes {
		if p50[size] > 750*time.Millisecond {
			t.Errorf("batch size %d: p50 match latency %v exceeds 750ms", size, p50[size])
		}
	}
	// Independence: a 64× larger batch must not shift the p50 by more than
	// scheduler noise. Queue-then-drain ingest fails this by the decode+
	// process time of the extra ~8000 edges.
	small, large := p50[sizes[0]], p50[sizes[len(sizes)-1]]
	if large > 6*small+250*time.Millisecond {
		t.Errorf("p50 grew with batch size: %v at %d edges vs %v at %d edges",
			large, sizes[len(sizes)-1], small, sizes[0])
	}
}

// hostEdgeAt builds a fully-described stream edge (endpoint metadata on
// every edge, as sharded ingestion requires).
func hostEdgeAt(id int, src, dst graph.VertexID, typ string, ts graph.Timestamp) graph.StreamEdge {
	return graph.StreamEdge{
		Edge: graph.Edge{
			ID:        graph.EdgeID(id),
			Source:    src,
			Target:    dst,
			Type:      typ,
			Timestamp: ts,
		},
		SourceType: gen.TypeHost,
		TargetType: gen.TypeHost,
	}
}
