package server

import (
	"sync"
	"sync/atomic"

	"github.com/streamworks/streamworks/internal/core"
)

// hub fans the engine's deduplicated match stream out to HTTP subscribers.
// It is the sole consumer of ShardedEngine.Events, so the engine can never
// be stalled by a slow network peer: each subscriber gets a bounded buffer,
// and a subscriber whose buffer is full when a match arrives is evicted
// (its channel closed, ending its HTTP stream) rather than waited on. The
// paper's alerting loop demands exactly this priority — ingest keeps pace
// with the stream; a lagging dashboard reconnects and resubscribes.
type hub struct {
	buffer int

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool

	delivered atomic.Uint64
	evicted   atomic.Uint64
}

// subscriber is one live match stream. query filters by registered query
// name; empty subscribes to every query.
type subscriber struct {
	query string
	ch    chan core.MatchEvent
	// evicted is set when the hub dropped this subscriber for falling
	// behind, distinguishing eviction from a graceful server drain (both
	// close ch).
	evicted atomic.Bool
}

func newHub(buffer int) *hub {
	if buffer <= 0 {
		buffer = 256
	}
	return &hub{buffer: buffer, subs: make(map[*subscriber]struct{})}
}

// run consumes the engine's event stream until the engine closes it (on
// drain), then closes every remaining subscriber so their HTTP handlers
// finish with a clean end-of-stream.
func (h *hub) run(events <-chan core.MatchEvent) {
	for ev := range events {
		h.broadcast(ev)
	}
	h.mu.Lock()
	h.closed = true
	for sub := range h.subs {
		close(sub.ch)
		delete(h.subs, sub)
	}
	h.mu.Unlock()
}

func (h *hub) broadcast(ev core.MatchEvent) {
	h.mu.Lock()
	for sub := range h.subs {
		if sub.query != "" && sub.query != ev.Query {
			continue
		}
		select {
		case sub.ch <- ev:
			h.delivered.Add(1)
		default:
			sub.evicted.Store(true)
			close(sub.ch)
			delete(h.subs, sub)
			h.evicted.Add(1)
		}
	}
	h.mu.Unlock()
}

// subscribe registers a new match consumer; it reports false once the hub
// has shut down.
func (h *hub) subscribe(query string) (*subscriber, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, false
	}
	sub := &subscriber{query: query, ch: make(chan core.MatchEvent, h.buffer)}
	h.subs[sub] = struct{}{}
	return sub, true
}

// unsubscribe detaches sub (e.g. the HTTP peer hung up). Safe to call after
// the hub evicted or closed it.
func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		close(sub.ch)
	}
}

// count returns the number of live subscribers.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}
