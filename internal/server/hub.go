package server

import (
	"errors"
	"sync"
	"sync/atomic"

	"github.com/streamworks/streamworks"
)

// hub manages the server's HTTP match subscribers. Each subscriber is its
// own per-query push subscription on the engine — the engine filters and
// fans out; the hub only adds the bounded buffer between the engine's
// delivery goroutine and the subscriber's network writes. A subscriber whose
// buffer is full when a match arrives is evicted (its channel closed, ending
// its HTTP stream) rather than waited on: ingest keeps pace with the stream,
// a lagging dashboard reconnects and resubscribes.
type hub struct {
	buffer int
	// subscribe attaches a sink to the engine; injected so the delivery
	// mechanics are unit-testable without an engine.
	subscribe func(query string, sink streamworks.MatchSink) (streamworks.Subscription, error)

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool

	delivered atomic.Uint64
	evicted   atomic.Uint64
}

// subscriber is one live match stream: a bounded buffer fed by an engine
// subscription.
type subscriber struct {
	ch chan streamworks.Match
	// sub is the engine-side subscription; its Done closes when the engine
	// has drained and no further matches can arrive.
	sub streamworks.Subscription
	// evicted is set when the hub dropped this subscriber for falling
	// behind, distinguishing eviction from a graceful server drain.
	evicted atomic.Bool
}

// errHubClosed is reported for subscriptions arriving after drain began.
var errHubClosed = errors.New("server: hub closed")

func newHub(buffer int, subscribe func(string, streamworks.MatchSink) (streamworks.Subscription, error)) *hub {
	if buffer <= 0 {
		buffer = 256
	}
	return &hub{buffer: buffer, subscribe: subscribe, subs: make(map[*subscriber]struct{})}
}

// register attaches an engine subscription to a new subscriber for query
// ("" subscribes to every query).
func (h *hub) register(query string) (*subscriber, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errHubClosed
	}
	sub := &subscriber{ch: make(chan streamworks.Match, h.buffer)}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()

	engSub, err := h.subscribe(query, streamworks.SinkFunc(func(m streamworks.Match) {
		h.deliver(sub, m)
	}))
	if err != nil {
		h.unsubscribe(sub)
		return nil, err
	}
	h.mu.Lock()
	if _, live := h.subs[sub]; !live {
		// A match flood can evict the subscriber between the two critical
		// sections (its buffer overflowed before the engine subscription
		// handle was recorded, so eviction could not close it — do that
		// here). Hand the subscriber back anyway: its channel is already
		// closed, so the handler serves the normal evicted-subscriber
		// contract — a clean end-of-stream the client answers by
		// resubscribing — instead of a bogus 503 from a healthy server.
		sub.sub = engSub
		h.mu.Unlock()
		engSub.Close()
		return sub, nil
	}
	sub.sub = engSub
	h.mu.Unlock()
	return sub, nil
}

// deliver runs on the engine's delivery goroutine: non-blocking hand-off to
// the subscriber's buffer, eviction on overflow. Membership is checked under
// the lock so a concurrent unsubscribe can never race a send against the
// channel close.
func (h *hub) deliver(sub *subscriber, m streamworks.Match) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, live := h.subs[sub]; !live {
		return
	}
	select {
	case sub.ch <- m:
		h.delivered.Add(1)
	default:
		sub.evicted.Store(true)
		delete(h.subs, sub)
		close(sub.ch)
		h.evicted.Add(1)
		if sub.sub != nil {
			// Safe under h.mu: subscription teardown never waits behind
			// engine ingestion.
			sub.sub.Close()
		}
	}
}

// unsubscribe detaches sub (e.g. the HTTP peer hung up). Safe to call after
// the hub evicted it.
func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	_, live := h.subs[sub]
	if live {
		delete(h.subs, sub)
		close(sub.ch)
	}
	engSub := sub.sub
	h.mu.Unlock()
	if live && engSub != nil {
		engSub.Close()
	}
}

// close rejects new subscribers. Existing streams are ended by the engine
// drain (each subscription's Done closes), not forcibly here, so buffered
// matches still reach their subscribers.
func (h *hub) close() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
}

// count returns the number of live subscribers.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}
