package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/loader"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/shard"
)

var testBase = graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC))

// hostEdge builds a fully-described stream edge (endpoint metadata on every
// edge, as sharded ingestion requires).
func hostEdge(id int, src, dst graph.VertexID, typ string, ts graph.Timestamp) graph.StreamEdge {
	return graph.StreamEdge{
		Edge: graph.Edge{
			ID:        graph.EdgeID(id),
			Source:    src,
			Target:    dst,
			Type:      typ,
			Timestamp: ts,
		},
		SourceType: gen.TypeHost,
		TargetType: gen.TypeHost,
	}
}

// smurfPairs builds n request/reply pairs through one amplifier, each reply
// aimed at a distinct victim, in non-decreasing timestamp order. Every
// (request, reply) combination within the window completes the smurf
// pattern, so n pairs yield n² matches.
func smurfPairs(n int) []graph.StreamEdge {
	edges := make([]graph.StreamEdge, 0, 2*n)
	id := 1
	for i := 0; i < n; i++ {
		ts := testBase.Add(time.Duration(2*i) * time.Millisecond)
		edges = append(edges, hostEdge(id, 1, 2, gen.EdgeICMPReq, ts))
		id++
		edges = append(edges, hostEdge(id, 2, graph.VertexID(100+i), gen.EdgeICMPReply, ts.Add(time.Millisecond)))
		id++
	}
	return edges
}

func ndjsonBody(t *testing.T, edges []graph.StreamEdge) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := loader.WriteJSONL(&buf, edges); err != nil {
		t.Fatalf("encoding edges: %v", err)
	}
	return &buf
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return srv, ts
}

func postDSL(t *testing.T, base, dsl string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/queries", "text/plain", strings.NewReader(dsl))
	if err != nil {
		t.Fatalf("POST /v1/queries: %v", err)
	}
	return resp
}

func postEdges(t *testing.T, base string, body io.Reader, wait bool) *http.Response {
	t.Helper()
	url := base + "/v1/edges"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/x-ndjson", body)
	if err != nil {
		t.Fatalf("POST /v1/edges: %v", err)
	}
	return resp
}

func fetchMetrics(t *testing.T, base string) MetricsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: HTTP %d", resp.StatusCode)
	}
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	return m
}

func TestRegisterLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Shard: shard.Config{Shards: 2}})

	dsl := query.Format(gen.SmurfQuery(10 * time.Minute))
	resp := postDSL(t, ts.URL, dsl)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("register: HTTP %d: %s", resp.StatusCode, body)
	}
	var reg RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatalf("decoding register response: %v", err)
	}
	resp.Body.Close()
	if reg.Name != "smurf-ddos" || reg.Vertices != 3 || reg.Edges != 2 {
		t.Fatalf("register response = %+v", reg)
	}
	if reg.Strategy == "" || len(reg.Primitives) == 0 || reg.PlanNodes == 0 {
		t.Fatalf("missing plan summary: %+v", reg)
	}

	// Duplicate names conflict.
	resp = postDSL(t, ts.URL, dsl)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: HTTP %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Unnamed and malformed queries are rejected up front.
	for _, bad := range []string{"vertex a : Host\nvertex b : Host\nedge a -[x]-> b\n", "edge oops\n"} {
		resp = postDSL(t, ts.URL, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad query %q: HTTP %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The listing and the DSL echo both know the query.
	lresp, err := http.Get(ts.URL + "/v1/queries")
	if err != nil {
		t.Fatalf("GET /v1/queries: %v", err)
	}
	var infos []QueryInfo
	if err := json.NewDecoder(lresp.Body).Decode(&infos); err != nil {
		t.Fatalf("decoding listing: %v", err)
	}
	lresp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "smurf-ddos" {
		t.Fatalf("listing = %+v", infos)
	}
	dresp, err := http.Get(ts.URL + "/v1/queries/smurf-ddos")
	if err != nil {
		t.Fatalf("GET query DSL: %v", err)
	}
	echoed, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if _, perr := query.ParseString(string(echoed)); perr != nil {
		t.Fatalf("echoed DSL does not re-parse: %v\n%s", perr, echoed)
	}

	// Registrations metric is the active count: it drops on unregister.
	if m := fetchMetrics(t, ts.URL); m.Engine.Registrations != 1 {
		t.Fatalf("Registrations = %d, want 1", m.Engine.Registrations)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/queries/smurf-ddos", nil)
	uresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE query: %v", err)
	}
	uresp.Body.Close()
	if uresp.StatusCode != http.StatusNoContent {
		t.Fatalf("unregister: HTTP %d, want 204", uresp.StatusCode)
	}
	if m := fetchMetrics(t, ts.URL); m.Engine.Registrations != 0 {
		t.Fatalf("Registrations after unregister = %d, want 0", m.Engine.Registrations)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/queries/nope", nil)
	uresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE unknown query: %v", err)
	}
	uresp.Body.Close()
	if uresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregister unknown: HTTP %d, want 404", uresp.StatusCode)
	}
}

// TestIngestWorkloadNDJSON proves the gen → wire → server path shares one
// format: a Workload.NDJSON dump posts straight into /v1/edges.
func TestIngestWorkloadNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Shard: shard.Config{Shards: 2}})

	cfg := gen.NetFlowConfig{
		Hosts: 50, Servers: 5, Edges: 400,
		Start: testBase, MeanGap: time.Millisecond, ContactSkew: 1.4, Seed: 3,
	}
	w := gen.NetFlowWorkload(cfg, time.Minute)
	var buf bytes.Buffer
	if err := w.NDJSON(&buf); err != nil {
		t.Fatalf("workload NDJSON: %v", err)
	}
	resp := postEdges(t, ts.URL, &buf, true)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatalf("decoding ingest response: %v", err)
	}
	if ir.Accepted != len(w.Edges) {
		t.Fatalf("Accepted = %d, want %d", ir.Accepted, len(w.Edges))
	}
	if m := fetchMetrics(t, ts.URL); m.Server.EdgesIngested != uint64(len(w.Edges)) {
		t.Fatalf("EdgesIngested = %d, want %d", m.Server.EdgesIngested, len(w.Edges))
	}
}

// TestIngestBackpressure429 fills the bounded ingest queue while the runner
// is pinned and checks overload is shed with 429 instead of blocking the
// request.
func TestIngestBackpressure429(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shard: shard.Config{Shards: 1}, QueueDepth: 1})

	// Pin the runner inside a control closure so nothing drains the queue.
	pinned := make(chan struct{})
	release := make(chan struct{})
	srv.run.ctrl <- func() {
		close(pinned)
		<-release
	}
	<-pinned

	edges := smurfPairs(2)
	resp := postEdges(t, ts.URL, ndjsonBody(t, edges), false)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first batch: HTTP %d, want 202", resp.StatusCode)
	}
	resp = postEdges(t, ts.URL, ndjsonBody(t, edges), false)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second batch: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatalf("429 response missing Retry-After")
	}
	resp.Body.Close()
	close(release)

	// After the runner resumes, ingest flows again and the shed batch was
	// counted.
	resp = postEdges(t, ts.URL, ndjsonBody(t, edges), true)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release batch: HTTP %d, want 200", resp.StatusCode)
	}
	if m := fetchMetrics(t, ts.URL); m.Server.BatchesRejected != 1 {
		t.Fatalf("BatchesRejected = %d, want 1", m.Server.BatchesRejected)
	}
}

// stuckWriter is a streaming ResponseWriter whose Write blocks until
// released — a subscriber that stopped consuming entirely.
type stuckWriter struct {
	hdr     http.Header
	release chan struct{}
}

func (w *stuckWriter) Header() http.Header { return w.hdr }
func (w *stuckWriter) WriteHeader(int)     {}
func (w *stuckWriter) Flush()              {}
func (w *stuckWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

// TestSlowSubscriberEvictedNotBlocking is the acceptance scenario: a match
// subscriber that never consumes must be evicted while ingest keeps flowing.
func TestSlowSubscriberEvictedNotBlocking(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shard: shard.Config{Shards: 2}, SubscriberBuffer: 1})

	resp := postDSL(t, ts.URL, query.Format(gen.SmurfQuery(10*time.Minute)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: HTTP %d", resp.StatusCode)
	}

	// Attach a subscriber whose writes never complete.
	sw := &stuckWriter{hdr: make(http.Header), release: make(chan struct{})}
	req := httptest.NewRequest(http.MethodGet, "/v1/matches", nil)
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		srv.handleMatches(sw, req)
	}()
	waitFor(t, time.Second, func() bool { return srv.hub.count() == 1 })

	// Ingest enough pairs for dozens of matches; wait=1 proves the whole
	// batch routed through the shards while the subscriber was stuck.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postEdges(t, ts.URL, ndjsonBody(t, smurfPairs(8)), true)
		resp.Body.Close()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ingest stalled behind a stuck subscriber")
	}

	// The hub must have dropped the subscriber rather than waiting on it.
	waitFor(t, 5*time.Second, func() bool { return srv.hub.evicted.Load() >= 1 })
	close(sw.release)
	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("evicted subscriber's handler did not finish")
	}
	if n := srv.hub.count(); n != 0 {
		t.Fatalf("subscribers after eviction = %d, want 0", n)
	}
}

// fakeEngineSub is a stub streamworks.Subscription recording teardown.
type fakeEngineSub struct {
	done   chan struct{}
	closed atomic.Bool
}

func (f *fakeEngineSub) Done() <-chan struct{} { return f.done }
func (f *fakeEngineSub) Err() error            { return nil }
func (f *fakeEngineSub) Close() error          { f.closed.Store(true); return nil }

// TestHubEviction pins down the eviction mechanics at the hub level, with
// the engine stubbed out: the hub registers a per-query sink per subscriber
// and evicts a subscriber whose bounded buffer overflows, closing its
// engine-side subscription too.
func TestHubEviction(t *testing.T) {
	var (
		sinks   = map[string]streamworks.MatchSink{}
		engSubs = map[string]*fakeEngineSub{}
	)
	h := newHub(2, func(q string, sink streamworks.MatchSink) (streamworks.Subscription, error) {
		es := &fakeEngineSub{done: make(chan struct{})}
		sinks[q], engSubs[q] = sink, es
		return es, nil
	})
	sub, err := h.register("")
	if err != nil {
		t.Fatalf("register on fresh hub failed: %v", err)
	}
	if sub.sub != engSubs[""] {
		t.Fatal("subscriber not wired to its engine subscription")
	}
	for i := 0; i < 3; i++ {
		sinks[""].OnMatch(streamworks.Match{Query: "q"})
	}
	if got := h.evicted.Load(); got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
	if got := h.delivered.Load(); got != 2 {
		t.Fatalf("delivered = %d, want 2", got)
	}
	if !sub.evicted.Load() {
		t.Fatal("subscriber not flagged as evicted")
	}
	if !engSubs[""].closed.Load() {
		t.Fatal("eviction did not close the engine-side subscription")
	}
	// Buffered events drain, then the closed channel reports end of stream.
	for i := 0; i < 2; i++ {
		if _, open := <-sub.ch; !open {
			t.Fatalf("event %d: channel closed early", i)
		}
	}
	if _, open := <-sub.ch; open {
		t.Fatal("channel still open after eviction")
	}
	h.unsubscribe(sub) // idempotent after eviction
	// Deliveries racing an eviction are dropped, not sent on a closed
	// channel.
	sinks[""].OnMatch(streamworks.Match{Query: "q"})
	if got := h.delivered.Load(); got != 2 {
		t.Fatalf("delivered after eviction = %d, want 2", got)
	}
	// The hub passes the query filter through to the engine, which is the
	// component that filters; a second subscriber registers under its name.
	if _, err := h.register("other"); err != nil {
		t.Fatalf("filtered register: %v", err)
	}
	if _, ok := sinks["other"]; !ok {
		t.Fatal("query filter not passed to the engine subscription")
	}
	// After close, new registrations are refused.
	h.close()
	if _, err := h.register(""); err == nil {
		t.Fatal("register after close succeeded")
	}
}

// TestMatchStreamSSE checks the Accept-negotiated server-sent-events form.
func TestMatchStreamSSE(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shard: shard.Config{Shards: 2}})

	resp := postDSL(t, ts.URL, query.Format(gen.SmurfQuery(10*time.Minute)))
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/matches?query=smurf-ddos", nil)
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("subscribe SSE: %v", err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var (
		bodyMu sync.Mutex
		body   bytes.Buffer
	)
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		buf := make([]byte, 4096)
		for {
			n, err := sresp.Body.Read(buf)
			bodyMu.Lock()
			body.Write(buf[:n])
			bodyMu.Unlock()
			if err != nil {
				return
			}
		}
	}()

	postEdges(t, ts.URL, ndjsonBody(t, smurfPairs(2)), true).Body.Close()
	waitFor(t, 5*time.Second, func() bool { return srv.hub.delivered.Load() >= 1 })
	srv.Close() // drain ends the stream
	<-readDone
	bodyMu.Lock()
	text := body.String()
	bodyMu.Unlock()
	if !strings.Contains(text, "event: match") || !strings.Contains(text, `"query":"smurf-ddos"`) {
		t.Fatalf("SSE stream missing match events:\n%s", text)
	}
}

// TestAdvanceExpiresWindows drives stream time forward over HTTP and checks
// idle shards expire their windows.
func TestAdvanceExpiresWindows(t *testing.T) {
	cfg := Config{Shard: shard.Config{
		Shards: 2,
		Engine: core.Config{Retention: time.Minute},
	}}
	_, ts := newTestServer(t, cfg)

	postEdges(t, ts.URL, ndjsonBody(t, smurfPairs(4)), true).Body.Close()
	if m := fetchMetrics(t, ts.URL); m.Engine.LiveEdges == 0 {
		t.Fatal("no live edges after ingest")
	}
	body, _ := json.Marshal(AdvanceRequest{TS: int64(testBase.Add(10 * time.Minute))})
	aresp, err := http.Post(ts.URL+"/v1/advance", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/advance: %v", err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusNoContent {
		t.Fatalf("advance: HTTP %d, want 204", aresp.StatusCode)
	}
	if m := fetchMetrics(t, ts.URL); m.Engine.LiveEdges != 0 {
		t.Fatalf("LiveEdges after advance = %d, want 0", m.Engine.LiveEdges)
	}
}

// TestGracefulDrain checks Close refuses new work with 503 on every
// endpoint while in-flight subscribers end cleanly.
func TestGracefulDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shard: shard.Config{Shards: 2}})
	srv.Close()

	checks := []struct {
		method, path string
		body         io.Reader
	}{
		{http.MethodGet, "/healthz", nil},
		{http.MethodPost, "/v1/edges", strings.NewReader("")},
		{http.MethodPost, "/v1/queries", strings.NewReader(query.Format(gen.SmurfQuery(time.Minute)))},
		{http.MethodGet, "/v1/matches", nil},
		{http.MethodGet, "/v1/metrics", nil},
		{http.MethodPost, "/v1/advance", strings.NewReader(`{"ts":1}`)},
	}
	for _, c := range checks {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, c.body)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", c.method, c.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s after Close: HTTP %d, want 503", c.method, c.path, resp.StatusCode)
		}
	}
	// Close is idempotent.
	srv.Close()
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not met within %s", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
