package server

import (
	"testing"

	"github.com/streamworks/streamworks/internal/testutil/leakcheck"
)

// TestMain gates the package on goroutine hygiene. The server spawns hub,
// per-stream and HTTP goroutines; all of them must exit once the test's
// server and clients are closed. The HTTP transport's idle keep-alive
// connections are real goroutines too — tests must CloseIdleConnections
// (or close the client) rather than rely on an allowlist here.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
