package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/client"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/server"
	"github.com/streamworks/streamworks/internal/shard"
)

// matrixWorkload is the shared workload for the transport-equivalence
// matrix: small enough that twelve cells stay fast, busy enough that every
// query produces matches.
func matrixWorkload() gen.Workload {
	cfg := gen.NetFlowConfig{
		Hosts:       150,
		Servers:     15,
		Edges:       1200,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        23,
	}
	return gen.NetFlowWorkload(cfg, time.Minute)
}

// TestTransportEquivalenceMatrix is the serving-path acceptance matrix: the
// canonical match set — keyed by (query, signature), the identity both
// transports serialize byte-identically — must be the same for every
// combination of ingest transport (NDJSON batches, binary batches, the
// persistent binary stream), shard count, and shared-plan evaluation, and
// must equal the single-engine reference run.
func TestTransportEquivalenceMatrix(t *testing.T) {
	w := matrixWorkload()
	expected, _, err := gen.RunSingle(w)
	if err != nil {
		t.Fatalf("single-engine reference run: %v", err)
	}
	if len(expected) == 0 {
		t.Fatal("degenerate workload: reference run found no matches")
	}

	for _, transport := range []string{"ndjson", "binary", "stream"} {
		for _, shards := range []int{1, 2} {
			for _, sharedPlans := range []bool{false, true} {
				name := fmt.Sprintf("%s/shards=%d/shared=%v", transport, shards, sharedPlans)
				t.Run(name, func(t *testing.T) {
					got := runTransportCell(t, w, transport, shards, sharedPlans)
					if !got.Equal(expected) {
						t.Fatalf("match set diverges from reference: got %d matches, want %d",
							len(got), len(expected))
					}
				})
			}
		}
	}
}

// runTransportCell runs one matrix cell: a fresh server with the requested
// shard count and plan sharing, the workload ingested over the requested
// transport while a subscription (binary frames for the binary transports,
// NDJSON otherwise) collects the delivered match set.
func runTransportCell(t *testing.T, w gen.Workload, transport string, shards int, sharedPlans bool) gen.MatchSet {
	t.Helper()
	ecfg := w.Engine
	ecfg.SharedPlans = sharedPlans
	srv := server.New(server.Config{
		Shard:            shard.Config{Shards: shards, Engine: ecfg},
		SubscriberBuffer: 8192,
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	var copts []client.Option
	if transport != "ndjson" {
		copts = append(copts, client.WithTransport(client.TransportBinary))
	}
	c := client.New(hs.URL, copts...)
	ctx := context.Background()

	for _, q := range w.Queries {
		if _, err := c.RegisterQuery(ctx, q); err != nil {
			t.Fatalf("registering %q: %v", q.Name(), err)
		}
	}

	sub, err := c.SubscribeMatches(ctx, "")
	if err != nil {
		t.Fatalf("subscribing: %v", err)
	}
	defer sub.Close()
	got := make(gen.MatchSet)
	recvDone := make(chan error, 1)
	go func() {
		for {
			rep, err := sub.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				recvDone <- err
				return
			}
			got.AddKey(rep.Query, rep.Signature)
		}
	}()

	const chunk = 400
	switch transport {
	case "ndjson", "binary":
		for i := 0; i < len(w.Edges); i += chunk {
			j := min(i+chunk, len(w.Edges))
			res, err := c.IngestBatch(ctx, w.Edges[i:j], true)
			if err != nil {
				t.Fatalf("ingesting batch at %d: %v", i, err)
			}
			if res.Accepted != j-i {
				t.Fatalf("batch at %d: accepted %d of %d", i, res.Accepted, j-i)
			}
		}
	case "stream":
		es, err := c.OpenEdgeStream(ctx)
		if err != nil {
			t.Fatalf("opening edge stream: %v", err)
		}
		for i := 0; i < len(w.Edges); i += chunk {
			j := min(i+chunk, len(w.Edges))
			if err := es.Send(w.Edges[i:j]); err != nil {
				t.Fatalf("stream send at %d: %v", i, err)
			}
		}
		res, err := es.Close()
		if err != nil {
			t.Fatalf("closing edge stream: %v", err)
		}
		if res.Accepted != len(w.Edges) {
			t.Fatalf("stream accepted %d of %d edges", res.Accepted, len(w.Edges))
		}
	default:
		t.Fatalf("unknown transport %q", transport)
	}

	// Graceful drain flushes the shards and ends the subscription cleanly.
	srv.Close()
	select {
	case err := <-recvDone:
		if err != nil {
			t.Fatalf("subscription ended with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("subscription did not end after server drain")
	}
	return got
}
