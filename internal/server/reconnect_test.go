package server_test

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/client"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/server"
	"github.com/streamworks/streamworks/internal/shard"
)

// matchCollector accumulates (query, signature) keys from a RetryStream on
// its own goroutine, tracking duplicates and total count.
type matchCollector struct {
	mu    sync.Mutex
	seen  gen.MatchSet
	total int
	dups  int
}

func newMatchCollector() *matchCollector {
	return &matchCollector{seen: make(gen.MatchSet)}
}

func (mc *matchCollector) add(query, signature string) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	before := len(mc.seen)
	mc.seen.AddKey(query, signature)
	mc.total++
	if len(mc.seen) == before {
		mc.dups++
	}
}

func (mc *matchCollector) snapshot() (gen.MatchSet, int, int) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	out := make(gen.MatchSet, len(mc.seen))
	for k := range mc.seen {
		out[k] = struct{}{}
	}
	return out, mc.total, mc.dups
}

func (mc *matchCollector) size() int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return len(mc.seen)
}

// collectRetry drains rs into mc until the context ends.
func collectRetry(rs *client.RetryStream, mc *matchCollector) {
	for {
		rep, err := rs.Next()
		if err != nil {
			return
		}
		mc.add(rep.Query, rep.Signature)
	}
}

// smurfWave builds n request/reply pairs through one amplifier with distinct
// edge IDs and victims, timestamps advancing from base. Every (request,
// reply) combination in the window completes the smurf pattern.
func smurfWave(firstEdge int, firstVictim graph.VertexID, base graph.Timestamp, n int) []graph.StreamEdge {
	edges := make([]graph.StreamEdge, 0, 2*n)
	id := firstEdge
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(2*i) * time.Millisecond)
		edges = append(edges, hostEdgeAt(id, 1, 2, gen.EdgeICMPReq, ts))
		id++
		edges = append(edges, hostEdgeAt(id, 2, firstVictim+graph.VertexID(i), gen.EdgeICMPReply, ts.Add(time.Millisecond)))
		id++
	}
	return edges
}

// TestRetryStreamReconnectBinary: two binary-transport RetryStream
// subscribers survive a mid-stream connection break. After both transparently
// resubscribe, a second ingest wave must reach both exactly once — no lost
// and no duplicate post-reconnect deliveries — and their full match sets must
// agree. Runs under -race in CI (the transport-equivalence job).
func TestRetryStreamReconnectBinary(t *testing.T) {
	srv := server.New(server.Config{
		Shard:            shard.Config{Shards: 2},
		SubscriberBuffer: 8192,
	})
	hs := httptest.NewServer(srv)
	defer func() {
		srv.Close()
		hs.Close()
	}()
	c := client.New(hs.URL,
		client.WithTransport(client.TransportBinary),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond}),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if _, err := c.RegisterQuery(ctx, gen.SmurfQuery(10*time.Minute)); err != nil {
		t.Fatalf("registering query: %v", err)
	}

	streams := make([]*client.RetryStream, 2)
	collectors := make([]*matchCollector, 2)
	var wg sync.WaitGroup
	for i := range streams {
		streams[i] = c.SubscribeMatchesRetry(ctx, "")
		collectors[i] = newMatchCollector()
		wg.Add(1)
		go func(rs *client.RetryStream, mc *matchCollector) {
			defer wg.Done()
			collectRetry(rs, mc)
		}(streams[i], collectors[i])
	}
	// The lazy first dial happens inside Next; wait for both subscriptions
	// to be live before ingesting so no wave-1 match predates them.
	waitForCond(t, 5*time.Second, "both subscribers live", func() bool {
		m, err := c.Metrics(ctx)
		return err == nil && m.Server.Subscribers == 2
	})

	// Wave 1: 4 pairs → 16 matches (every request × every reply).
	base := graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC))
	const pairs = 4
	if _, err := c.IngestBatch(ctx, smurfWave(1, 100, base, pairs), true); err != nil {
		t.Fatalf("wave-1 ingest: %v", err)
	}
	wave1 := pairs * pairs
	waitForCond(t, 10*time.Second, "wave-1 delivered to both", func() bool {
		return collectors[0].size() == wave1 && collectors[1].size() == wave1
	})

	// Break every live connection mid-stream. Both RetryStreams must heal
	// under the retry policy.
	hs.CloseClientConnections()
	// Sustained, not momentary: a broken handler not yet torn down could
	// transiently hold the count at 2 while a resubscribe is still dialing.
	waitForStable(t, 10*time.Second, "both subscribers resubscribed", func() bool {
		m, err := c.Metrics(ctx)
		return err == nil && m.Server.Subscribers == 2
	})

	// Wave 2: 4 new pairs in the same window. Every (request, reply) pair
	// across both waves matches, so the full set is (2·pairs)² keys, all
	// distinct from wave 1 — the in-memory server redelivers nothing, so
	// each subscriber must now converge on the full set with zero
	// duplicates.
	if _, err := c.IngestBatch(ctx, smurfWave(100, 200, base.Add(time.Second), pairs), true); err != nil {
		t.Fatalf("wave-2 ingest: %v", err)
	}
	full := (2 * pairs) * (2 * pairs)
	waitForCond(t, 10*time.Second, "wave-2 delivered to both", func() bool {
		return collectors[0].size() == full && collectors[1].size() == full
	})

	// Cancelling the context ends each collector's in-flight Next; only
	// after the goroutines exit is it race-free to inspect the streams.
	cancel()
	wg.Wait()
	for _, rs := range streams {
		rs.Close()
	}

	set0, total0, dups0 := collectors[0].snapshot()
	set1, total1, dups1 := collectors[1].snapshot()
	if dups0 != 0 || dups1 != 0 {
		t.Fatalf("duplicate deliveries after reconnect: %d and %d", dups0, dups1)
	}
	if total0 != full || total1 != full {
		t.Fatalf("delivery counts %d and %d, want %d each", total0, total1, full)
	}
	if !set0.Equal(set1) {
		t.Fatalf("subscribers disagree: %d vs %d keys", len(set0), len(set1))
	}
	for i, rs := range streams {
		if rs.Reconnects() == 0 {
			t.Errorf("stream %d reports zero reconnects after the connection break", i)
		}
	}
}

// waitForCond polls cond until it holds or the deadline passes.
func waitForCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitForStable polls until cond has held continuously for ~100ms.
func waitForStable(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	streak := 0
	for time.Now().Before(deadline) {
		if cond() {
			streak++
			if streak >= 20 {
				return
			}
		} else {
			streak = 0
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (stable)", what)
}
