// Package server exposes the sharded StreamWorks engine over HTTP, turning
// the library into the paper's system: analysts register continuous queries
// in the text DSL, feeders push timestamped edge batches, and subscribers
// receive every complete match as it emerges, streamed as NDJSON or
// server-sent events.
//
// The serving layer fronts the public streamworks engine (a Sharded
// backend). A single runner goroutine funnels all edge processing; ingest
// requests stream decoded chunks onto a bounded queue as the body decodes
// (adaptive chunk sizing; HTTP 429 sheds overload at admission before the
// first chunk, TCP backpressure paces the rest), and control requests
// execute as closures on the runner, serialized with edge processing. On
// the output side every match subscriber is its own per-query push
// subscription on the engine, buffered by the hub; each match is flushed to
// the subscriber's socket the moment it surfaces (coalescing only what is
// already buffered), and a subscriber that cannot keep up is evicted, never
// waited on, so a stalled dashboard cannot stall detection.
//
// Both ingest and match delivery negotiate between NDJSON and the binary
// frame transport (internal/wire): Content-Type selects the ingest codec,
// Accept selects the delivery codec.
//
// Endpoints:
//
//	POST   /v1/queries        register a query (body: text DSL) → plan summary
//	GET    /v1/queries        list registered queries
//	GET    /v1/queries/{name} fetch one query, rendered back as DSL text
//	DELETE /v1/queries/{name} unregister
//	POST   /v1/edges          ingest an edge batch (NDJSON, or binary frames
//	                          with Content-Type: application/x-streamworks-frame;
//	                          ?wait=1 to block until routed; 429 on overload)
//	POST   /v1/stream         persistent binary ingest session: the body is a
//	                          long-lived frame stream, dispatched as it arrives
//	POST   /v1/advance        advance stream time (body: {"ts": ns})
//	GET    /v1/matches        stream matches (?query= filters; NDJSON, SSE when
//	                          Accept: text/event-stream, binary frames when
//	                          Accept: application/x-streamworks-frame)
//	GET    /v1/metrics        engine + per-shard + server counters
//	GET    /healthz           liveness
//
// Close drains gracefully: new work is refused with 503, queued batches are
// flushed through the shards, the deduplicated event stream is run dry, and
// every subscriber's stream ends cleanly.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/api"
	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/shard"
	"github.com/streamworks/streamworks/internal/stats"
	"github.com/streamworks/streamworks/internal/wire"
)

// Config sizes the serving layer around a sharded engine configuration.
type Config struct {
	// Shard configures the underlying ShardedEngine.
	Shard shard.Config
	// QueueDepth is the ingest queue bound in batches (default 64). When the
	// queue is full POST /v1/edges fails fast with 429.
	QueueDepth int
	// SubscriberBuffer is the per-subscriber match buffer (default 256). A
	// subscriber whose buffer overflows is evicted.
	SubscriberBuffer int
	// MaxBatchEdges caps the number of edges decoded from one ingest request
	// (default 65536); larger bodies get 413.
	MaxBatchEdges int
	// MaxQueryBytes caps a query registration body (default 1 MiB).
	MaxQueryBytes int64
	// DefaultStrategy is the decomposition strategy applied to
	// registrations that do not pass ?strategy= (empty = selective). An
	// unknown name is not rejected here — it surfaces as a 422 on every
	// registration — so embedders should validate against
	// streamworks.PlanStrategies up front (streamworksd does at boot).
	DefaultStrategy string
	// AdaptivePlanning makes registrations adapt their plans to the live
	// stream statistics by default; individual registrations override with
	// ?adaptive=on|off.
	AdaptivePlanning bool
	// DataDir enables durability: ingested batches, registrations and
	// watermark advances are write-ahead logged under this directory, and a
	// restart pointing at the same directory recovers the engine state,
	// redelivering only the matches that were never flushed to a subscriber.
	// Empty disables durability.
	DataDir string
	// FsyncPolicy is "always", "interval" (default) or "off"; see
	// streamworks.WithFsyncPolicy. Requires DataDir.
	FsyncPolicy string
	// FsyncInterval is the group-commit interval for the "interval" policy
	// (default 50ms). Requires DataDir.
	FsyncInterval time.Duration
	// SnapshotEvery compacts the WAL every n ingested batches (default
	// 4096; negative disables periodic snapshots). Requires DataDir.
	SnapshotEvery int
	// RequireDurability makes ingest refuse with 503 (plus Retry-After)
	// while durability is degraded, instead of silently continuing
	// in-memory. Requires DataDir.
	RequireDurability bool
	// IngestTimeout bounds how long a wait=1 ingest request blocks on the
	// engine before answering 503 (the batch stays queued and is still
	// processed). Zero means no bound. A stalled WAL disk therefore cannot
	// wedge HTTP workers indefinitely.
	IngestTimeout time.Duration
}

// DefaultConfig serves a DefaultConfig sharded engine with default bounds.
func DefaultConfig() Config {
	return Config{Shard: shard.DefaultConfig()}
}

// ErrDraining is reported (as HTTP 503) for work arriving after Close began.
var ErrDraining = errors.New("server: draining")

// Server is the HTTP front-end. It implements http.Handler; mount it on any
// listener (net/http, httptest). Create with New, stop with Close.
type Server struct {
	cfg Config
	eng *streamworks.Sharded
	run *runner
	hub *hub
	mux *http.ServeMux

	// planner renders the informational plan summary returned by query
	// registration. Each shard engine plans against its own statistics; this
	// planner sees none, so the summary reflects the frequency-blind plan.
	planner *decompose.Planner

	started   time.Time
	closeOnce sync.Once
	closed    chan struct{}

	// mu guards draining and queries. Handlers hold the read lock across
	// their engine hand-off (queue send or control round trip); Close takes
	// the write lock to flip draining, so once it holds the lock no handler
	// is mid-hand-off and the queues can be closed safely.
	mu       sync.RWMutex
	draining bool
	queries  map[string]*query.Graph

	batchesRejected atomic.Uint64

	// Observability (all nil when Config.Shard.Engine.Obs.Enabled is off):
	// the serving tier keeps its own registry for the segments it owns —
	// ingest-queue wait (recorded by the runner) and HTTP flush — and shares
	// the clock and tracer with the engine tiers below so segment
	// measurements and edge-journey samples line up. ObsSnapshot folds this
	// registry with the engine's.
	obsReg    *obs.Registry
	obsClock  obs.Clock
	obsTracer *obs.Tracer
	obsFlush  *obs.Histogram
	// obsJourney is the match-weighted arrival→flush journey histogram,
	// recorded once per delivered match from the arrival stamp the edge
	// carried through the tiers. Its mean is directly comparable to a
	// client's measured detect-and-deliver latency.
	obsJourney *obs.Histogram
}

// New builds and starts a server: the engine shards, the ingest-driving
// runner and the subscriber hub all spin up immediately. cfg may be
// zero-valued; defaults are applied.
func New(cfg Config) *Server {
	if cfg.Shard.Shards == 0 {
		// Default only the shard count: a caller that set Engine (retention,
		// slack, summaries) but left Shards zero keeps those settings.
		cfg.Shard.Shards = shard.DefaultConfig().Shards
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = 256
	}
	if cfg.MaxBatchEdges <= 0 {
		cfg.MaxBatchEdges = 65536
	}
	if cfg.MaxQueryBytes <= 0 {
		cfg.MaxQueryBytes = 1 << 20
	}
	// Normalize the obs seam once, up front, so the serving tier and every
	// engine tier below share one clock and one tracer; the engine config
	// carries the normalized form down through the shard front-end.
	obsCfg := cfg.Shard.Engine.Obs.Normalized()
	cfg.Shard.Engine.Obs = obsCfg
	engOpts := []streamworks.Option{
		streamworks.WithEngineConfig(cfg.Shard.Engine),
		streamworks.WithShards(cfg.Shard.Shards),
		streamworks.WithShardBuffer(cfg.Shard.Buffer),
		streamworks.WithAdvanceEvery(cfg.Shard.AdvanceEvery),
		streamworks.WithPlanStrategy(cfg.DefaultStrategy),
		streamworks.WithAdaptivePlanning(cfg.AdaptivePlanning),
	}
	if cfg.DataDir != "" {
		engOpts = append(engOpts,
			streamworks.WithDataDir(cfg.DataDir),
			streamworks.WithFsyncPolicy(cfg.FsyncPolicy),
			streamworks.WithFsyncInterval(cfg.FsyncInterval),
			streamworks.WithSnapshotEvery(cfg.SnapshotEvery),
			// Delivery here is asynchronous (hub buffer, HTTP flush), so a
			// sink return proves nothing; the match handler acks each match
			// after flushing it to the subscriber's socket.
			streamworks.WithManualDeliveryAck(true),
		)
	}
	eng := streamworks.NewSharded(engOpts...)
	s := &Server{
		cfg:     cfg,
		eng:     eng,
		planner: decompose.NewPlanner(stats.NewEstimator(nil)),
		started: time.Now(),
		closed:  make(chan struct{}),
		queries: make(map[string]*query.Graph),
	}
	// Re-seed the HTTP query registry from the engine: after a durable
	// restart the engine replays registrations from its WAL, and the
	// listing/filter view must reflect them without a re-POST.
	for _, q := range eng.RegisteredQueries() {
		s.queries[q.Name()] = q
	}
	s.hub = newHub(cfg.SubscriberBuffer, eng.Subscribe)
	s.run = newRunner(s.eng, cfg.QueueDepth)
	if obsCfg.Enabled {
		s.obsReg = obs.NewRegistry()
		s.obsClock = obsCfg.Clock
		s.obsTracer = obsCfg.Tracer
		s.obsFlush = s.obsReg.Segment(obs.SegHTTPFlush)
		s.obsJourney = s.obsReg.Histogram(obs.JourneyHistogramName, "", "")
		s.run.obsClock = obsCfg.Clock
		s.run.obsWait = s.obsReg.Segment(obs.SegIngestQueueWait)
		s.run.obsTracer = obsCfg.Tracer
	}
	go s.run.loop()

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics", s.handleProm)
	s.mux.HandleFunc("GET /debug/trace", s.handleTrace)
	s.mux.HandleFunc("POST /v1/queries", s.handleRegister)
	s.mux.HandleFunc("GET /v1/queries", s.handleListQueries)
	s.mux.HandleFunc("GET /v1/queries/{name}", s.handleGetQuery)
	s.mux.HandleFunc("DELETE /v1/queries/{name}", s.handleUnregister)
	s.mux.HandleFunc("POST /v1/edges", s.handleIngest)
	s.mux.HandleFunc("POST /v1/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	s.mux.HandleFunc("GET /v1/matches", s.handleMatches)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Engine exposes the underlying public engine for tests and embedders. It
// is safe for concurrent use, but mutating it directly bypasses the serving
// layer's queue accounting; prefer the HTTP surface.
func (s *Server) Engine() *streamworks.Sharded { return s.eng }

// Close drains the server: subsequent work is refused with 503, queued
// ingest batches are flushed through the shards, and the engine drain ends
// every subscriber's stream after its final buffered matches. It is
// idempotent and safe to call concurrently; all callers block until the
// drain completes.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		defer close(s.closed)
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		// No handler is past its draining check now, so the queue can close:
		// the runner finishes everything already accepted and exits.
		close(s.run.batches)
		<-s.run.stopped
		// New subscribers are refused from here on …
		s.hub.close()
		// … and the engine drain finishes every live subscription: each
		// handler sees Done after its final delivery and ends its stream.
		s.eng.Close()
	})
	<-s.closed
}

// do runs fn on the runner goroutine, serialized with edge processing, and
// waits for it to finish. The read lock is held until the reply so that
// Close cannot tear the runner down with fn still queued.
func (s *Server) do(fn func()) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	done := make(chan struct{})
	s.run.ctrl <- func() {
		fn()
		close(done)
	}
	<-done
	return nil
}

// ---- HTTP plumbing ----------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// HealthResponse is the GET /healthz payload (see api.HealthResponse).
type HealthResponse = api.HealthResponse

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	resp := HealthResponse{
		Status:        "ok",
		Version:       api.Version,
		Shards:        s.eng.Shards(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		GoVersion:     runtime.Version(),
		ObsEnabled:    s.obsReg != nil,
		Durability:    s.eng.Durability().Mode,
	}
	if draining {
		resp.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- queries ----------------------------------------------------------

// RegisterResponse summarizes a successful registration (see
// api.RegisterResponse).
type RegisterResponse = api.RegisterResponse

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxQueryBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading query body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxQueryBytes {
		// Reject rather than truncate: a prefix of a line-oriented DSL body
		// can parse cleanly as a different (smaller) query.
		writeError(w, http.StatusRequestEntityTooLarge,
			"query body exceeds %d bytes", s.cfg.MaxQueryBytes)
		return
	}
	q, err := query.Parse(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing query: %v", err)
		return
	}
	if q.Name() == "" {
		writeError(w, http.StatusBadRequest, "query must be named (add a 'query <name>' line)")
		return
	}
	opts, adaptive, err := s.parseRegisterOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var regErr error
	if err := s.do(func() { regErr = s.eng.RegisterQueryWith(context.Background(), q, opts) }); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if regErr != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(regErr, streamworks.ErrDuplicateQuery) {
			status = http.StatusConflict
		}
		writeError(w, status, "registering %q: %v", q.Name(), regErr)
		return
	}
	s.mu.Lock()
	s.queries[q.Name()] = q
	s.mu.Unlock()

	resp := RegisterResponse{
		Name:     q.Name(),
		Window:   q.Window().String(),
		Vertices: q.NumVertices(),
		Edges:    q.NumEdges(),
		Adaptive: adaptive,
	}
	strategy := decompose.StrategySelective
	if opts.Strategy != "" {
		strategy = decompose.Strategy(opts.Strategy)
	}
	if plan, perr := s.planner.Plan(q, strategy); perr == nil {
		resp.Strategy = string(plan.Strategy)
		resp.PlanNodes = plan.NumNodes()
		resp.PlanDepth = plan.Depth()
		resp.Primitives = primitiveStrings(plan)
		resp.Plan = plan.String()
	}
	writeJSON(w, http.StatusCreated, resp)
}

// parseRegisterOptions maps the optional ?strategy= and ?adaptive= query
// parameters of POST /v1/queries onto the public registration options,
// also resolving the effective adaptive mode for the response (the engine
// default applies when the parameter is absent).
func (s *Server) parseRegisterOptions(r *http.Request) (streamworks.RegisterOptions, bool, error) {
	opts := streamworks.RegisterOptions{Strategy: r.URL.Query().Get("strategy")}
	adaptive := s.cfg.AdaptivePlanning
	switch v := strings.ToLower(r.URL.Query().Get("adaptive")); v {
	case "":
	case "on", "1", "true":
		opts.Adaptive = streamworks.AdaptiveOn
		adaptive = true
	case "off", "0", "false":
		opts.Adaptive = streamworks.AdaptiveOff
		adaptive = false
	default:
		return opts, false, fmt.Errorf("invalid adaptive value %q (want on or off)", v)
	}
	if opts.Strategy == "" && s.cfg.DefaultStrategy != "" {
		opts.Strategy = s.cfg.DefaultStrategy
	}
	return opts, adaptive, nil
}

// primitiveStrings renders each plan leaf's pattern edges compactly.
func primitiveStrings(p *decompose.Plan) []string {
	out := make([]string, 0, len(p.Leaves()))
	for _, leaf := range p.Leaves() {
		parts := make([]string, 0, len(leaf.Edges))
		for _, eid := range leaf.Edges {
			e := p.Query.Edge(eid)
			label := e.Type
			if label == "" {
				label = "*"
			}
			arrow := "->"
			if e.AnyDirection {
				arrow = "--"
			}
			parts = append(parts, fmt.Sprintf("%s-[%s]%s%s",
				p.Query.Vertex(e.Source).Name, label, arrow, p.Query.Vertex(e.Target).Name))
		}
		out = append(out, "{"+strings.Join(parts, ", ")+"}")
	}
	return out
}

// QueryInfo is one entry of the GET /v1/queries listing (see api.QueryInfo).
type QueryInfo = api.QueryInfo

func (s *Server) handleListQueries(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	infos := make([]QueryInfo, 0, len(s.queries))
	for _, q := range s.queries {
		infos = append(infos, QueryInfo{
			Name:     q.Name(),
			Window:   q.Window().String(),
			Vertices: q.NumVertices(),
			Edges:    q.NumEdges(),
		})
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGetQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	q, ok := s.queries[name]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, query.Format(q))
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var unregErr error
	if err := s.do(func() { unregErr = s.eng.UnregisterQuery(context.Background(), name) }); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if unregErr != nil {
		writeError(w, http.StatusNotFound, "unregistering %q: %v", name, unregErr)
		return
	}
	s.mu.Lock()
	delete(s.queries, name)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// ---- ingest -----------------------------------------------------------

// IngestResponse reports how an edge batch was handled (see
// api.IngestResponse).
type IngestResponse = api.IngestResponse

// handleIngest and handleStream live in ingest.go: streaming decode with
// adaptive chunking, NDJSON or binary frames by content negotiation.

// AdvanceRequest is the body of POST /v1/advance (see api.AdvanceRequest).
type AdvanceRequest = api.AdvanceRequest

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req AdvanceRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding advance request: %v", err)
		return
	}
	if err := s.do(func() { _ = s.eng.Advance(context.Background(), graph.Timestamp(req.TS)) }); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- matches ----------------------------------------------------------

func (s *Server) handleMatches(w http.ResponseWriter, r *http.Request) {
	queryName := r.URL.Query().Get("query")
	if queryName != "" {
		s.mu.RLock()
		_, known := s.queries[queryName]
		s.mu.RUnlock()
		if !known {
			writeError(w, http.StatusNotFound, "unknown query %q", queryName)
			return
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	// The subscriber is a per-query push subscription on the engine — the
	// engine filters and delivers, the hub only buffers. Matches arrive
	// fully resolved (the public Match form), ready to encode.
	sub, err := s.hub.register(queryName)
	if errors.Is(err, streamworks.ErrUnknownQuery) {
		// The s.queries pre-check can race an unregister; report the truth
		// rather than a bogus "draining".
		writeError(w, http.StatusNotFound, "unknown query %q", queryName)
		return
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.hub.unsubscribe(sub)

	accept := r.Header.Get("Accept")
	binary := strings.Contains(accept, wire.ContentTypeBinary)
	sse := !binary && strings.Contains(accept, "text/event-stream")
	switch {
	case binary:
		w.Header().Set("Content-Type", wire.ContentTypeBinary)
	case sse:
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	if binary {
		if _, err := w.Write(wire.StreamMagic); err != nil {
			return
		}
	}
	flusher.Flush()

	// encode writes one match without flushing. The binary path reuses
	// per-connection frame and payload buffers across matches, so steady
	// delivery allocates nothing.
	enc := json.NewEncoder(w)
	var frameBuf, scratch []byte
	encode := func(rep streamworks.Match) bool {
		switch {
		case binary:
			frameBuf, scratch = wire.AppendMatchFrame(frameBuf[:0], scratch, rep)
			_, err := w.Write(frameBuf)
			return err == nil
		case sse:
			io.WriteString(w, "event: match\ndata: ")
			if err := enc.Encode(rep); err != nil {
				return false
			}
			io.WriteString(w, "\n")
			return true
		default:
			return enc.Encode(rep) == nil
		}
	}

	// Flush-on-match with coalescing: every group of matches is flushed the
	// moment it is encoded — a detected match never waits for a batch
	// boundary — but matches already buffered behind the first are written
	// in the same flush, so a burst costs one syscall, not one per match.
	pending := make([]streamworks.Match, 0, 16)
	flushPending := func() bool {
		if len(pending) == 0 {
			return true
		}
		var t0 int64
		if s.obsFlush != nil {
			t0 = s.obsClock.Now()
		}
		for _, rep := range pending {
			if !encode(rep) {
				return false
			}
		}
		flusher.Flush()
		if s.cfg.DataDir != "" {
			// Flushed to the subscriber's socket: the kernel delivers
			// buffered data even if we crash now, so each match counts as
			// delivered and is suppressed (not redelivered) after recovery.
			for _, rep := range pending {
				s.eng.AckDelivered(rep.Query, rep.Signature, rep.SpanStart)
			}
		}
		if s.obsFlush != nil {
			now := s.obsClock.Now()
			for _, rep := range pending {
				// Measure from the engine's delivery stamp when present: the
				// flush segment then covers the subscriber-buffer wait as
				// well as the encode+flush, picking up exactly where the
				// dispatch segment ends so the per-segment means account for
				// the whole detect-and-deliver journey.
				st := rep.DeliveredWallNS
				if st == 0 {
					st = t0
				}
				d := now - st
				s.obsFlush.Observe(d)
				if rep.ArrivedWallNS != 0 {
					// The match-weighted closure check: the whole journey of
					// this match, from its completing edge reaching the
					// daemon to the flush that just delivered it.
					s.obsJourney.Observe(now - rep.ArrivedWallNS)
				}
				// A deliver trace event is keyed to whichever of the match's
				// data edges the sampler selects — the same ID-deterministic
				// test every lower tier applies, so the journey stitches.
				for _, id := range rep.EdgeIDs {
					if s.obsTracer.SampleEdge(id) {
						s.obsTracer.Record(obs.TraceEvent{
							Stage:    obs.StageDeliver,
							Shard:    -1,
							EdgeID:   id,
							StreamTS: rep.DetectedAt,
							DurNS:    d,
							Query:    rep.Query,
						})
						break
					}
				}
			}
		}
		pending = pending[:0]
		return true
	}
	// collect drains matches already buffered behind first without
	// blocking, bounded so one flush never starves; reports whether the
	// subscriber channel is still open.
	collect := func(first streamworks.Match) bool {
		pending = append(pending, first)
		for len(pending) < 64 {
			select {
			case rep, open := <-sub.ch:
				if !open {
					return false
				}
				pending = append(pending, rep)
			default:
				return true
			}
		}
		return true
	}
	for {
		select {
		case rep, open := <-sub.ch:
			if !open {
				// Evicted for falling behind; the stream ends cleanly and
				// the client resubscribes.
				return
			}
			open = collect(rep)
			// Deliver what was collected even if the hub closed the channel
			// mid-drain — those matches were handed to this subscriber.
			if !flushPending() || !open {
				return
			}
		case <-sub.sub.Done():
			// Engine drained: no further deliveries can happen, so flush
			// whatever is still buffered and end the stream cleanly.
			for {
				select {
				case rep, open := <-sub.ch:
					if !open {
						return
					}
					open = collect(rep)
					if !flushPending() || !open {
						return
					}
				default:
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// ---- metrics ----------------------------------------------------------

// ServerMetrics counts serving-layer activity, complementing the engine
// counters (see api.ServerMetrics).
type ServerMetrics = api.ServerMetrics

// MetricsResponse is the GET /v1/metrics payload (see api.MetricsResponse).
type MetricsResponse = api.MetricsResponse

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var resp MetricsResponse
	err := s.do(func() {
		resp.Engine, _ = s.eng.Metrics(context.Background())
		resp.Shards = s.eng.PerShardMetrics()
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	resp.Server = ServerMetrics{
		Subscribers:        s.hub.count(),
		SubscribersEvicted: s.hub.evicted.Load(),
		MatchesDelivered:   s.hub.delivered.Load(),
		EdgesIngested:      s.run.edgesIngested.Load(),
		BatchesIngested:    s.run.batchesIngested.Load(),
		BatchesRejected:    s.batchesRejected.Load(),
		IngestQueueLen:     len(s.run.batches),
		IngestQueueCap:     cap(s.run.batches),
	}
	if s.obsReg != nil {
		snap := s.ObsSnapshot()
		resp.Obs = &snap
	}
	if s.cfg.DataDir != "" {
		d := s.eng.Durability()
		resp.WAL = &api.WALMetrics{
			Mode:                d.Mode,
			Frames:              d.Frames,
			Bytes:               d.Bytes,
			Fsyncs:              d.Fsyncs,
			Segments:            d.Segments,
			Snapshots:           d.Snapshots,
			TornTailTruncations: d.TornTailTruncations,
			AppendErrors:        d.AppendErrors,
			EmittedTracked:      d.EmittedTracked,
			RecoveryBacklog:     d.Backlog,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ObsEnabled reports whether the server runs with observability on.
func (s *Server) ObsEnabled() bool { return s.obsReg != nil }

// ObsSnapshot folds the serving tier's registry (ingest-queue wait, HTTP
// flush) with the engine's merged per-worker registries into one logical
// snapshot. Empty when observability is off. Registry cells are atomic, so
// this is safe from any goroutine, including during drain.
func (s *Server) ObsSnapshot() obs.Snapshot {
	if s.obsReg == nil {
		return obs.Snapshot{}
	}
	return obs.Merge(s.obsReg.Snapshot(), s.eng.ObsSnapshot())
}

// TraceDump returns the sampled edge-journey ring, oldest first; nil when
// tracing is off.
func (s *Server) TraceDump() []obs.TraceEvent { return s.obsTracer.Dump() }

// PromHandler returns the Prometheus exposition handler (the same one
// mounted at GET /metrics on the API mux), for embedders that serve it from
// a separate debug listener — streamworksd mounts it next to pprof.
func (s *Server) PromHandler() http.Handler { return http.HandlerFunc(s.handleProm) }

// TraceHandler returns the trace-dump handler (GET /debug/trace), for the
// same debug-listener use as PromHandler.
func (s *Server) TraceHandler() http.Handler { return http.HandlerFunc(s.handleTrace) }

// handleProm serves Prometheus text-format exposition: serving-layer
// counters and gauges always, plus the merged observability snapshot (per-
// segment latency histograms, detection lag) when observability is on. It
// deliberately avoids the runner round trip so scrapes keep working while
// the ingest queue is saturated or draining.
func (s *Server) handleProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	p.Gauge("up", "", "", 1)
	obsOn := 0.0
	if s.obsReg != nil {
		obsOn = 1
	}
	p.Gauge("obs_enabled", "", "", obsOn)
	p.Counter("server_edges_ingested", "", "", float64(s.run.edgesIngested.Load()))
	p.Counter("server_batches_ingested", "", "", float64(s.run.batchesIngested.Load()))
	p.Counter("server_batches_rejected", "", "", float64(s.batchesRejected.Load()))
	p.Counter("server_matches_delivered", "", "", float64(s.hub.delivered.Load()))
	p.Counter("server_subscribers_evicted", "", "", float64(s.hub.evicted.Load()))
	p.Gauge("server_subscribers", "", "", float64(s.hub.count()))
	p.Gauge("server_ingest_queue_len", "", "", float64(len(s.run.batches)))
	p.Gauge("server_ingest_queue_cap", "", "", float64(cap(s.run.batches)))
	if s.cfg.DataDir != "" {
		d := s.eng.Durability()
		degraded := 0.0
		if d.Mode == "degraded" {
			degraded = 1
		}
		p.Gauge("wal_degraded", "", "", degraded)
		p.Counter("wal_frames_appended", "", "", float64(d.Frames))
		p.Counter("wal_bytes_appended", "", "", float64(d.Bytes))
		p.Counter("wal_fsyncs", "", "", float64(d.Fsyncs))
		p.Counter("wal_segments_created", "", "", float64(d.Segments))
		p.Counter("wal_snapshots_written", "", "", float64(d.Snapshots))
		p.Counter("wal_torn_tail_truncations", "", "", float64(d.TornTailTruncations))
		p.Counter("wal_append_errors", "", "", float64(d.AppendErrors))
		p.Gauge("wal_emitted_tracked", "", "", float64(d.EmittedTracked))
		p.Gauge("wal_recovery_backlog", "", "", float64(d.Backlog))
	}
	if s.obsReg != nil {
		p.Snapshot(s.ObsSnapshot())
		recorded, dropped := s.obsTracer.Stats()
		p.Counter("trace_events_recorded", "", "", float64(recorded))
		p.Counter("trace_events_dropped", "", "", float64(dropped))
	}
	if err := p.Err(); err != nil {
		// The response is already partially written; nothing to do but log
		// through the error path the client sees (a truncated scrape).
		return
	}
}

// handleTrace dumps the sampled edge-journey ring as JSON.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.obsTracer == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (run with observability and trace sampling on)")
		return
	}
	recorded, dropped := s.obsTracer.Stats()
	resp := api.TraceResponse{Events: s.obsTracer.Dump(), Recorded: recorded, Dropped: dropped}
	if resp.Events == nil {
		resp.Events = []obs.TraceEvent{}
	}
	writeJSON(w, http.StatusOK, resp)
}
