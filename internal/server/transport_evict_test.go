package server

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/shard"
	"github.com/streamworks/streamworks/internal/wire"
)

// stuckCaptureWriter is a streaming ResponseWriter whose Write blocks until
// released, then records everything written — a subscriber that stopped
// consuming, whose pipe drains after the hub has already evicted it.
type stuckCaptureWriter struct {
	hdr     http.Header
	release chan struct{}

	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *stuckCaptureWriter) Header() http.Header { return w.hdr }
func (w *stuckCaptureWriter) WriteHeader(int)     {}
func (w *stuckCaptureWriter) Flush()              {}
func (w *stuckCaptureWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *stuckCaptureWriter) bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf.Bytes()...)
}

// TestSlowSubscriberEvictedBinaryStream is the binary-transport variant of
// the slow-subscriber acceptance scenario: a binary match stream that stops
// consuming is evicted without blocking ingest, and every byte it DID receive
// — including the frames flushed during teardown — forms a valid frame
// stream: magic, then whole decodable match frames, then a clean end.
func TestSlowSubscriberEvictedBinaryStream(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shard: shard.Config{Shards: 2}, SubscriberBuffer: 1})

	resp := postDSL(t, ts.URL, query.Format(gen.SmurfQuery(10*time.Minute)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: HTTP %d", resp.StatusCode)
	}

	sw := &stuckCaptureWriter{hdr: make(http.Header), release: make(chan struct{})}
	req := httptest.NewRequest(http.MethodGet, "/v1/matches", nil)
	req.Header.Set("Accept", wire.ContentTypeBinary)
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		srv.handleMatches(sw, req)
	}()
	waitFor(t, time.Second, func() bool { return srv.hub.count() == 1 })

	// Ingest enough pairs for dozens of matches; wait=1 proves the whole
	// batch routed through the shards while the subscriber was stuck.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postEdges(t, ts.URL, ndjsonBody(t, smurfPairs(8)), true)
		resp.Body.Close()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ingest stalled behind a stuck binary subscriber")
	}

	waitFor(t, 5*time.Second, func() bool { return srv.hub.evicted.Load() >= 1 })

	// Unstick the pipe: the handler finishes flushing what it had collected
	// and returns, because the hub closed the subscriber's channel.
	close(sw.release)
	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("evicted binary subscriber's handler did not finish")
	}
	if got := sw.Header().Get("Content-Type"); got != wire.ContentTypeBinary {
		t.Fatalf("Content-Type = %q, want %q", got, wire.ContentTypeBinary)
	}
	if n := srv.hub.count(); n != 0 {
		t.Fatalf("subscribers after eviction = %d, want 0", n)
	}

	// The truncated stream the evicted subscriber saw must still be valid
	// frame-by-frame — eviction may cut the stream short, never mid-frame.
	rd := wire.NewReader(bytes.NewReader(sw.bytes()))
	frames := 0
	for {
		typ, payload, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		if typ != wire.FrameMatch {
			t.Fatalf("frame %d: type %d, want match", frames, typ)
		}
		if _, err := wire.DecodeMatch(payload); err != nil {
			t.Fatalf("frame %d: decoding match: %v", frames, err)
		}
		frames++
	}
	if frames == 0 {
		t.Fatal("evicted subscriber received no complete match frames")
	}
}
