package server_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/api"
	"github.com/streamworks/streamworks/internal/client"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/server"
	"github.com/streamworks/streamworks/internal/shard"
)

// TestEndToEndNetflow is the acceptance test for the serving subsystem: the
// full remote path — queries registered over HTTP in the DSL (including the
// netflow DDoS query), the generated netflow stream ingested through the
// typed client as NDJSON batches, matches consumed from a live streaming
// subscription — must deliver exactly the match set a single in-process
// engine computes for the same workload.
func TestEndToEndNetflow(t *testing.T) {
	cfg := gen.NetFlowConfig{
		Hosts:       300,
		Servers:     30,
		Edges:       4000,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        7,
	}
	window := time.Minute
	w := gen.NetFlowWorkload(cfg, window)

	expected, _, err := gen.RunSingle(w)
	if err != nil {
		t.Fatalf("single-engine reference run: %v", err)
	}
	if len(expected) == 0 {
		t.Fatal("degenerate workload: reference run found no matches")
	}

	srv := server.New(server.Config{
		Shard:            shard.Config{Shards: 4, Engine: w.Engine},
		SubscriberBuffer: 8192,
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := client.New(hs.URL)
	ctx := context.Background()

	// The health endpoint self-describes the daemon: API version, shard
	// count, uptime.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Status != "ok" || h.Version != api.Version || h.Shards != 4 {
		t.Fatalf("health = %+v, want status=ok version=%s shards=4", h, api.Version)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("health uptime negative: %v", h.UptimeSeconds)
	}

	for _, q := range w.Queries {
		reg, err := c.RegisterQuery(ctx, q)
		if err != nil {
			t.Fatalf("registering %q over HTTP: %v", q.Name(), err)
		}
		if reg.Name != q.Name() {
			t.Fatalf("registered name %q, want %q", reg.Name, q.Name())
		}
	}
	// The server can echo each query back as equivalent DSL.
	dsl, err := c.QueryDSL(ctx, "smurf-ddos")
	if err != nil {
		t.Fatalf("fetching query DSL: %v", err)
	}
	if _, perr := query.ParseString(dsl); perr != nil {
		t.Fatalf("echoed DSL does not parse: %v", perr)
	}

	// Subscribe to every match, then stream the workload in while the
	// subscription is live (matches arrive concurrently with ingest).
	sub, err := c.SubscribeMatches(ctx, "")
	if err != nil {
		t.Fatalf("subscribing: %v", err)
	}
	defer sub.Close()
	got := make(gen.MatchSet)
	recvDone := make(chan error, 1)
	go func() {
		for {
			rep, err := sub.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				recvDone <- err
				return
			}
			got.AddKey(rep.Query, rep.Signature)
		}
	}()

	const batch = 1000
	sent := 0
	for i := 0; i < len(w.Edges); i += batch {
		j := min(i+batch, len(w.Edges))
		res, err := c.IngestBatch(ctx, w.Edges[i:j], true)
		if err != nil {
			t.Fatalf("ingesting batch at %d: %v", i, err)
		}
		if res.Accepted != j-i {
			t.Fatalf("batch at %d: accepted %d of %d", i, res.Accepted, j-i)
		}
		sent += res.Accepted
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Server.EdgesIngested != uint64(sent) {
		t.Fatalf("EdgesIngested = %d, want %d", m.Server.EdgesIngested, sent)
	}
	if len(m.Shards) != 4 {
		t.Fatalf("per-shard metrics = %d entries, want 4", len(m.Shards))
	}

	// Graceful drain flushes the shards and ends the subscription cleanly.
	srv.Close()
	select {
	case err := <-recvDone:
		if err != nil {
			t.Fatalf("subscription ended with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("subscription did not end after server drain")
	}

	if !got.Equal(expected) {
		t.Fatalf("streamed match set diverges from single-engine run: got %d matches, want %d",
			len(got), len(expected))
	}
}

// TestEndToEndFilteredSubscription checks a query-filtered subscription
// delivers exactly that query's single-engine match set.
func TestEndToEndFilteredSubscription(t *testing.T) {
	cfg := gen.NetFlowConfig{
		Hosts:       200,
		Servers:     20,
		Edges:       2500,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        11,
	}
	window := time.Minute
	w := gen.NetFlowWorkload(cfg, window)

	smurfOnly := w
	smurfOnly.Queries = []*query.Graph{gen.SmurfQuery(window)}
	expected, _, err := gen.RunSingle(smurfOnly)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(expected) == 0 {
		t.Fatal("degenerate workload: no smurf matches")
	}

	srv := server.New(server.Config{
		Shard:            shard.Config{Shards: 3, Engine: w.Engine},
		SubscriberBuffer: 8192,
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := client.New(hs.URL)
	ctx := context.Background()

	// All four queries registered; the subscription filters to one.
	for _, q := range w.Queries {
		if _, err := c.RegisterQuery(ctx, q); err != nil {
			t.Fatalf("registering %q: %v", q.Name(), err)
		}
	}
	// Subscribing to an unknown query fails fast.
	if _, err := c.SubscribeMatches(ctx, "no-such-query"); err == nil {
		t.Fatal("subscription to unknown query succeeded")
	}
	sub, err := c.SubscribeMatches(ctx, "smurf-ddos")
	if err != nil {
		t.Fatalf("subscribing: %v", err)
	}
	defer sub.Close()
	got := make(gen.MatchSet)
	recvDone := make(chan error, 1)
	go func() {
		for {
			rep, err := sub.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				recvDone <- err
				return
			}
			if rep.Query != "smurf-ddos" {
				recvDone <- errors.New("filtered subscription delivered " + rep.Query)
				return
			}
			got.AddKey(rep.Query, rep.Signature)
		}
	}()

	if _, err := c.IngestBatch(ctx, w.Edges, true); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	srv.Close()
	select {
	case err := <-recvDone:
		if err != nil {
			t.Fatalf("subscription: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("subscription did not end after drain")
	}
	if !got.Equal(expected) {
		t.Fatalf("filtered match set diverges: got %d, want %d", len(got), len(expected))
	}
}
