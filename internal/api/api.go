// Package api defines the wire types of the StreamWorks HTTP API, shared by
// the server (internal/server) and the typed client (internal/client) so the
// two sides can never drift, and by the public streamworks package, whose
// remote backend surfaces some of them directly. Everything here is a plain
// data type: no behaviour, no engine imports beyond the metrics snapshot.
package api

import (
	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/obs"
)

// Version identifies the HTTP API generation served under the /v1 prefix and
// reported by GET /healthz. Incompatible wire changes bump it.
const Version = "v1"

// HealthResponse is the GET /healthz payload.
type HealthResponse struct {
	// Status is "ok" while serving, "draining" once shutdown has begun.
	Status string `json:"status"`
	// Version is the API generation (Version).
	Version string `json:"version"`
	// Shards is the number of engine shards behind this daemon.
	Shards int `json:"shards"`
	// UptimeSeconds is the time since the serving layer started.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// GoVersion is the daemon's runtime.Version() — which toolchain built
	// the binary answering this probe.
	GoVersion string `json:"go_version"`
	// ObsEnabled reports whether the daemon runs with the observability
	// layer on (streamworksd -obs): /metrics exposition, /debug/trace and
	// the obs section of /v1/metrics are live when true.
	ObsEnabled bool `json:"obs_enabled"`
	// Durability is the engine's durability mode: "off" (no -data-dir),
	// "ok" (WAL live) or "degraded" (durability requested but the WAL could
	// not be opened or hit a write error; ingest continues in-memory only).
	Durability string `json:"durability,omitempty"`
}

// RegisterOptions are the optional query parameters of POST /v1/queries
// (the body stays pure DSL text): ?strategy= selects the decomposition
// strategy, ?adaptive= opts the query in to ("on"/"1"/"true") or out of
// ("off"/"0"/"false") adaptive re-planning, overriding the daemon default.
// Empty fields defer to the daemon's configuration.
type RegisterOptions struct {
	Strategy string
	Adaptive string
}

// RegisterResponse summarizes a successful query registration: the query
// shape, the strategy and adaptive-planning mode in force, and an
// informational decomposition summary (computed without stream statistics;
// each shard plans against its own evolving summary).
type RegisterResponse struct {
	Name       string   `json:"name"`
	Window     string   `json:"window"`
	Vertices   int      `json:"vertices"`
	Edges      int      `json:"edges"`
	Strategy   string   `json:"strategy"`
	Adaptive   bool     `json:"adaptive"`
	PlanNodes  int      `json:"plan_nodes"`
	PlanDepth  int      `json:"plan_depth"`
	Primitives []string `json:"primitives"`
	Plan       string   `json:"plan"`
}

// QueryInfo is one entry of the GET /v1/queries listing.
type QueryInfo struct {
	Name     string `json:"name"`
	Window   string `json:"window"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

// IngestResponse reports how an edge batch was handled.
type IngestResponse struct {
	// Accepted is the number of edges admitted: decoded and queued (async)
	// or routed to the shards (wait=1).
	Accepted int `json:"accepted"`
	// Queued is true when the batch was accepted asynchronously and is still
	// in (or being drained from) the ingest queue.
	Queued bool `json:"queued"`
	// Error carries a processing error for wait=1 batches that failed
	// part-way.
	Error string `json:"error,omitempty"`
}

// AdvanceRequest is the body of POST /v1/advance: an explicit stream-time
// signal (nanoseconds, same clock as edge timestamps) broadcast to every
// shard, driving window expiry and pruning between sparse batches.
type AdvanceRequest struct {
	TS int64 `json:"ts"`
}

// ServerMetrics counts serving-layer activity, complementing the engine
// counters.
type ServerMetrics struct {
	Subscribers        int    `json:"subscribers"`
	SubscribersEvicted uint64 `json:"subscribers_evicted"`
	MatchesDelivered   uint64 `json:"matches_delivered"`
	EdgesIngested      uint64 `json:"edges_ingested"`
	BatchesIngested    uint64 `json:"batches_ingested"`
	BatchesRejected    uint64 `json:"batches_rejected"`
	IngestQueueLen     int    `json:"ingest_queue_len"`
	IngestQueueCap     int    `json:"ingest_queue_cap"`
}

// WALMetrics is the wire form of the engine's durability counters
// (streamworks.DurabilityStats), present in MetricsResponse when the daemon
// runs with a data dir.
type WALMetrics struct {
	// Mode is "ok" while the WAL is live, "degraded" after an open or write
	// failure (the engine keeps serving, in-memory only).
	Mode                string `json:"mode"`
	Frames              uint64 `json:"frames_appended"`
	Bytes               uint64 `json:"bytes_appended"`
	Fsyncs              uint64 `json:"fsyncs"`
	Segments            uint64 `json:"segments_created"`
	Snapshots           uint64 `json:"snapshots_written"`
	TornTailTruncations uint64 `json:"torn_tail_truncations"`
	AppendErrors        uint64 `json:"append_errors"`
	EmittedTracked      uint64 `json:"emitted_tracked"`
	// RecoveryBacklog is the number of recovered matches still waiting for a
	// first subscriber to redeliver them to.
	RecoveryBacklog uint64 `json:"recovery_backlog"`
}

// MetricsResponse is the GET /v1/metrics payload: the aggregated engine
// view, each shard's raw counters (replicated edges, pre-dedup matches), and
// the serving-layer counters.
type MetricsResponse struct {
	Engine core.Metrics   `json:"engine"`
	Shards []core.Metrics `json:"shards"`
	Server ServerMetrics  `json:"server"`
	// Obs carries the merged observability snapshot — per-segment latency
	// histograms with precomputed summaries, across the server tier and all
	// shard workers — when the daemon runs with observability on; absent
	// otherwise.
	Obs *obs.Snapshot `json:"obs,omitempty"`
	// WAL carries the durability counters when the daemon runs with a data
	// dir (streamworksd -data-dir); absent otherwise.
	WAL *WALMetrics `json:"wal,omitempty"`
}

// TraceResponse is the GET /debug/trace payload: the sampled edge-journey
// ring, oldest first, plus the tracer's cumulative counts.
type TraceResponse struct {
	Events   []obs.TraceEvent `json:"events"`
	Recorded uint64           `json:"recorded"`
	Dropped  uint64           `json:"dropped"`
}
