// Package client is the typed Go client for the StreamWorks HTTP API
// (internal/server). It registers queries (serializing query.Graph values
// back into the text DSL), pushes NDJSON edge batches with the same wire
// encoder the server decodes with, streams match reports with incremental
// decoding, and fetches metrics. The end-to-end tests and cmd/loadgen drive
// live servers exclusively through it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"github.com/streamworks/streamworks/internal/api"
	"github.com/streamworks/streamworks/internal/export"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/loader"
	"github.com/streamworks/streamworks/internal/query"
)

// Client talks to one streamworksd instance.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for every request. The
// client must not enforce an overall request timeout if SubscribeMatches is
// used (match streams are long-lived); use per-call contexts instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the server at baseURL (e.g. "http://127.0.0.1:8090").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.Status)
}

// IsOverloaded reports whether err is the server shedding ingest load
// (HTTP 429); the caller should back off and retry.
func IsOverloaded(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusTooManyRequests
}

func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		msg = er.Error
	}
	return &APIError{Status: resp.StatusCode, Message: msg}
}

func (c *Client) roundTrip(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Health probes /healthz and returns the daemon's self-description: API
// version, shard count and uptime. A draining or unreachable daemon returns
// an error.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/healthz", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterQuery serializes q into the text DSL and registers it with the
// daemon's default planning options.
func (c *Client) RegisterQuery(ctx context.Context, q *query.Graph) (*api.RegisterResponse, error) {
	return c.RegisterQueryDSL(ctx, query.Format(q))
}

// RegisterQueryWith serializes q into the text DSL and registers it with
// explicit planning options (decomposition strategy, adaptive re-planning).
func (c *Client) RegisterQueryWith(ctx context.Context, q *query.Graph, opts api.RegisterOptions) (*api.RegisterResponse, error) {
	return c.RegisterQueryDSLWith(ctx, query.Format(q), opts)
}

// RegisterQueryDSL registers a query written in the text DSL.
func (c *Client) RegisterQueryDSL(ctx context.Context, dsl string) (*api.RegisterResponse, error) {
	return c.RegisterQueryDSLWith(ctx, dsl, api.RegisterOptions{})
}

// RegisterQueryDSLWith registers a DSL query with explicit planning
// options, carried as URL query parameters so the body stays pure DSL text.
func (c *Client) RegisterQueryDSLWith(ctx context.Context, dsl string, opts api.RegisterOptions) (*api.RegisterResponse, error) {
	path := "/v1/queries"
	params := url.Values{}
	if opts.Strategy != "" {
		params.Set("strategy", opts.Strategy)
	}
	if opts.Adaptive != "" {
		params.Set("adaptive", opts.Adaptive)
	}
	if len(params) > 0 {
		path += "?" + params.Encode()
	}
	var out api.RegisterResponse
	err := c.roundTrip(ctx, http.MethodPost, path, "text/plain; charset=utf-8",
		strings.NewReader(dsl), &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// UnregisterQuery removes a registered query by name.
func (c *Client) UnregisterQuery(ctx context.Context, name string) error {
	return c.roundTrip(ctx, http.MethodDelete, "/v1/queries/"+url.PathEscape(name), "", nil, nil)
}

// Queries lists the registered queries.
func (c *Client) Queries(ctx context.Context) ([]api.QueryInfo, error) {
	var out []api.QueryInfo
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/queries", "", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryDSL fetches one registered query rendered back as DSL text.
func (c *Client) QueryDSL(ctx context.Context, name string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/queries/"+url.PathEscape(name), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// IngestBatch encodes edges as NDJSON (the loader wire format) and posts
// them. wait=true blocks until the batch has been routed to the shards;
// wait=false returns as soon as the batch is queued. A full ingest queue
// surfaces as an *APIError with status 429 (check with IsOverloaded).
func (c *Client) IngestBatch(ctx context.Context, edges []graph.StreamEdge, wait bool) (*api.IngestResponse, error) {
	var buf bytes.Buffer
	if err := loader.WriteJSONL(&buf, edges); err != nil {
		return nil, err
	}
	return c.IngestReader(ctx, &buf, wait)
}

// IngestReader posts an NDJSON edge stream (e.g. a Workload.NDJSON dump or
// a file) without re-encoding.
func (c *Client) IngestReader(ctx context.Context, r io.Reader, wait bool) (*api.IngestResponse, error) {
	path := "/v1/edges"
	if wait {
		path += "?wait=1"
	}
	var out api.IngestResponse
	if err := c.roundTrip(ctx, http.MethodPost, path, "application/x-ndjson", r, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Advance broadcasts an explicit stream-time signal to every shard.
func (c *Client) Advance(ctx context.Context, ts graph.Timestamp) error {
	body, _ := json.Marshal(api.AdvanceRequest{TS: int64(ts)})
	return c.roundTrip(ctx, http.MethodPost, "/v1/advance", "application/json",
		bytes.NewReader(body), nil)
}

// Metrics fetches engine, per-shard and serving-layer counters.
func (c *Client) Metrics(ctx context.Context) (*api.MetricsResponse, error) {
	var out api.MetricsResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/metrics", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Subscription is a live match stream. Read reports with Next until it
// returns io.EOF: the server ended the stream, either because it drained
// gracefully or because this subscriber fell too far behind and was evicted
// (resubscribe in that case). Always Close a subscription when done.
type Subscription struct {
	body io.ReadCloser
	dec  *json.Decoder
}

// SubscribeMatches opens a streaming NDJSON subscription. queryName filters
// to one registered query; empty subscribes to all. Cancelling ctx tears the
// stream down (Next will return the context error).
func (c *Client) SubscribeMatches(ctx context.Context, queryName string) (*Subscription, error) {
	path := "/v1/matches"
	if queryName != "" {
		path += "?query=" + url.QueryEscape(queryName)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	return &Subscription{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}

// Next blocks for the next match report. io.EOF signals a clean end of
// stream (server drain or slow-consumer eviction).
func (s *Subscription) Next() (export.MatchReport, error) {
	var rep export.MatchReport
	err := s.dec.Decode(&rep)
	return rep, err
}

// Close releases the underlying connection.
func (s *Subscription) Close() error { return s.body.Close() }
