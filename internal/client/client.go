// Package client is the typed Go client for the StreamWorks HTTP API
// (internal/server). It registers queries (serializing query.Graph values
// back into the text DSL), pushes edge batches — NDJSON or binary frames,
// selected with WithTransport — with the same wire encoders the server
// decodes with, holds persistent binary ingest sessions open (EdgeStream),
// streams match reports with incremental decoding (including self-healing
// resubscription, SubscribeMatchesRetry), and fetches metrics. The
// end-to-end tests and cmd/loadgen drive live servers exclusively through
// it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/streamworks/streamworks/internal/api"
	"github.com/streamworks/streamworks/internal/export"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/loader"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/wire"
)

// Client talks to one streamworksd instance.
type Client struct {
	base      string
	hc        *http.Client
	retry     RetryPolicy
	transport Transport
	retries   atomic.Uint64
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for every request. The
// client must not enforce an overall request timeout if SubscribeMatches is
// used (match streams are long-lived); use per-call contexts instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry makes IngestBatch retry transient failures (429 overload, 503
// unavailability, transport errors) under the given policy instead of
// surfacing them. The zero policy disables retry (the default).
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// RetryPolicy is a capped exponential backoff with jitter for transient
// ingest failures. The zero value disables retry; DefaultRetryPolicy suits
// most feeders.
type RetryPolicy struct {
	// MaxAttempts bounds total tries including the first (0 or 1 disables
	// retry; negative retries until the context is cancelled).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5ms when
	// retry is enabled); it doubles every attempt up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s). A server-supplied Retry-After
	// longer than the computed backoff is honored up to 10×MaxDelay.
	MaxDelay time.Duration
}

// DefaultRetryPolicy retries for roughly ten seconds under sustained
// overload before giving up.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 12, BaseDelay: 5 * time.Millisecond, MaxDelay: time.Second}
}

// enabled reports whether the policy retries at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts < 0 || p.MaxAttempts > 1 }

// backoff computes the sleep before retry number attempt (1-based), or
// ok=false when the attempt budget is spent. The delay is the capped
// exponential with full jitter on its upper half, stretched to honor a
// server-supplied Retry-After.
func (p RetryPolicy) backoff(attempt int, retryAfter time.Duration) (time.Duration, bool) {
	if !p.enabled() || (p.MaxAttempts > 0 && attempt >= p.MaxAttempts) {
		return 0, false
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	d := base
	for i := 1; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	// Full jitter on the upper half de-synchronizes a fleet of feeders that
	// all saw the same 429.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		if cap := 10 * maxd; retryAfter > cap {
			retryAfter = cap
		}
		d = retryAfter
	}
	return d, true
}

// Retries returns how many ingest attempts this client has retried.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// New builds a client for the server at baseURL (e.g. "http://127.0.0.1:8090").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint, zero when absent.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.Status)
}

// IsOverloaded reports whether err is the server shedding ingest load
// (HTTP 429); the caller should back off and retry.
func IsOverloaded(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusTooManyRequests
}

// IsRetryable reports whether err is transient: server overload (429),
// unavailability (503 — draining, degraded durability, a restart in
// progress) or a transport-level failure (connection refused or reset while
// the daemon restarts). Permanent rejections (4xx validation errors) and
// context cancellation are not retryable.
func IsRetryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable
	}
	// Anything below the HTTP status layer — dial, reset, EOF mid-response —
	// is worth retrying against a daemon that may just be restarting.
	return true
}

func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		msg = er.Error
	}
	ae := &APIError{Status: resp.StatusCode, Message: msg}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		ae.RetryAfter = time.Duration(ra) * time.Second
	}
	return ae
}

func (c *Client) roundTrip(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Health probes /healthz and returns the daemon's self-description: API
// version, shard count and uptime. A draining or unreachable daemon returns
// an error.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/healthz", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterQuery serializes q into the text DSL and registers it with the
// daemon's default planning options.
func (c *Client) RegisterQuery(ctx context.Context, q *query.Graph) (*api.RegisterResponse, error) {
	return c.RegisterQueryDSL(ctx, query.Format(q))
}

// RegisterQueryWith serializes q into the text DSL and registers it with
// explicit planning options (decomposition strategy, adaptive re-planning).
func (c *Client) RegisterQueryWith(ctx context.Context, q *query.Graph, opts api.RegisterOptions) (*api.RegisterResponse, error) {
	return c.RegisterQueryDSLWith(ctx, query.Format(q), opts)
}

// RegisterQueryDSL registers a query written in the text DSL.
func (c *Client) RegisterQueryDSL(ctx context.Context, dsl string) (*api.RegisterResponse, error) {
	return c.RegisterQueryDSLWith(ctx, dsl, api.RegisterOptions{})
}

// RegisterQueryDSLWith registers a DSL query with explicit planning
// options, carried as URL query parameters so the body stays pure DSL text.
func (c *Client) RegisterQueryDSLWith(ctx context.Context, dsl string, opts api.RegisterOptions) (*api.RegisterResponse, error) {
	path := "/v1/queries"
	params := url.Values{}
	if opts.Strategy != "" {
		params.Set("strategy", opts.Strategy)
	}
	if opts.Adaptive != "" {
		params.Set("adaptive", opts.Adaptive)
	}
	if len(params) > 0 {
		path += "?" + params.Encode()
	}
	var out api.RegisterResponse
	err := c.roundTrip(ctx, http.MethodPost, path, "text/plain; charset=utf-8",
		strings.NewReader(dsl), &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// UnregisterQuery removes a registered query by name.
func (c *Client) UnregisterQuery(ctx context.Context, name string) error {
	return c.roundTrip(ctx, http.MethodDelete, "/v1/queries/"+url.PathEscape(name), "", nil, nil)
}

// Queries lists the registered queries.
func (c *Client) Queries(ctx context.Context) ([]api.QueryInfo, error) {
	var out []api.QueryInfo
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/queries", "", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryDSL fetches one registered query rendered back as DSL text.
func (c *Client) QueryDSL(ctx context.Context, name string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/queries/"+url.PathEscape(name), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// IngestBatch encodes edges as NDJSON (the loader wire format) and posts
// them. wait=true blocks until the batch has been routed to the shards;
// wait=false returns as soon as the batch is queued. Under WithRetry,
// transient failures (429 overload — honoring the server's Retry-After —
// 503, transport errors while the daemon restarts) are retried with capped
// exponential backoff and jitter, re-posting the same encoded body each
// attempt; retries stop as soon as ctx is cancelled. Without a policy a
// full ingest queue surfaces as an *APIError with status 429 (check with
// IsOverloaded).
func (c *Client) IngestBatch(ctx context.Context, edges []graph.StreamEdge, wait bool) (*api.IngestResponse, error) {
	var payload []byte
	contentType := "application/x-ndjson"
	if c.Transport() == TransportBinary {
		payload = encodeBinaryBatch(edges)
		contentType = wire.ContentTypeBinary
	} else {
		var buf bytes.Buffer
		if err := loader.WriteJSONL(&buf, edges); err != nil {
			return nil, err
		}
		payload = buf.Bytes()
	}
	path := "/v1/edges"
	if wait {
		path += "?wait=1"
	}
	if !c.retry.enabled() {
		var out api.IngestResponse
		if err := c.roundTrip(ctx, http.MethodPost, path, contentType, bytes.NewReader(payload), &out); err != nil {
			return nil, err
		}
		return &out, nil
	}
	for attempt := 1; ; attempt++ {
		var out api.IngestResponse
		err := c.roundTrip(ctx, http.MethodPost, path, contentType,
			bytes.NewReader(payload), &out)
		if err == nil {
			return &out, nil
		}
		if !IsRetryable(err) {
			return nil, err
		}
		var retryAfter time.Duration
		var ae *APIError
		if errors.As(err, &ae) {
			retryAfter = ae.RetryAfter
		}
		delay, ok := c.retry.backoff(attempt, retryAfter)
		if !ok {
			return nil, err
		}
		c.retries.Add(1)
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// IngestReader posts an NDJSON edge stream (e.g. a Workload.NDJSON dump or
// a file) without re-encoding.
func (c *Client) IngestReader(ctx context.Context, r io.Reader, wait bool) (*api.IngestResponse, error) {
	path := "/v1/edges"
	if wait {
		path += "?wait=1"
	}
	var out api.IngestResponse
	if err := c.roundTrip(ctx, http.MethodPost, path, "application/x-ndjson", r, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Advance broadcasts an explicit stream-time signal to every shard.
func (c *Client) Advance(ctx context.Context, ts graph.Timestamp) error {
	body, _ := json.Marshal(api.AdvanceRequest{TS: int64(ts)})
	return c.roundTrip(ctx, http.MethodPost, "/v1/advance", "application/json",
		bytes.NewReader(body), nil)
}

// Metrics fetches engine, per-shard and serving-layer counters.
func (c *Client) Metrics(ctx context.Context) (*api.MetricsResponse, error) {
	var out api.MetricsResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/metrics", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Subscription is a live match stream. Read reports with Next until it
// returns io.EOF: the server ended the stream, either because it drained
// gracefully or because this subscriber fell too far behind and was evicted
// (resubscribe in that case). Always Close a subscription when done.
type Subscription struct {
	body io.ReadCloser
	next func() (export.MatchReport, error)
}

// SubscribeMatches opens a streaming match subscription in the client's
// transport (NDJSON by default, binary frames under
// WithTransport(TransportBinary)). queryName filters to one registered
// query; empty subscribes to all. Cancelling ctx tears the stream down
// (Next will return the context error).
func (c *Client) SubscribeMatches(ctx context.Context, queryName string) (*Subscription, error) {
	path := "/v1/matches"
	if queryName != "" {
		path += "?query=" + url.QueryEscape(queryName)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	binary := c.Transport() == TransportBinary
	if binary {
		req.Header.Set("Accept", wire.ContentTypeBinary)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	sub := &Subscription{body: resp.Body}
	if binary {
		rd := wire.NewReader(resp.Body)
		sub.next = func() (export.MatchReport, error) {
			typ, payload, err := rd.Next()
			if err != nil {
				return export.MatchReport{}, err
			}
			if typ != wire.FrameMatch {
				return export.MatchReport{}, wire.ErrCorrupt
			}
			return wire.DecodeMatch(payload)
		}
	} else {
		dec := json.NewDecoder(resp.Body)
		sub.next = func() (export.MatchReport, error) {
			var rep export.MatchReport
			err := dec.Decode(&rep)
			return rep, err
		}
	}
	return sub, nil
}

// Next blocks for the next match report. io.EOF signals a clean end of
// stream (server drain or slow-consumer eviction).
func (s *Subscription) Next() (export.MatchReport, error) { return s.next() }

// Close releases the underlying connection.
func (s *Subscription) Close() error { return s.body.Close() }
