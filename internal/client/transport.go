package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"github.com/streamworks/streamworks/internal/api"
	"github.com/streamworks/streamworks/internal/export"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/wire"
)

// Transport selects the wire encoding for ingest bodies and match streams.
type Transport string

const (
	// TransportNDJSON is the default text transport: one JSON object per
	// line, human-readable, curl-able.
	TransportNDJSON Transport = "ndjson"
	// TransportBinary is the length-prefixed binary frame transport
	// (internal/wire): smaller bodies, no per-edge JSON encode/decode, and
	// the only encoding the persistent /v1/stream session speaks.
	TransportBinary Transport = "binary"
)

// WithTransport selects the wire encoding for IngestBatch and
// SubscribeMatches. The default is TransportNDJSON.
func WithTransport(t Transport) Option {
	return func(c *Client) { c.transport = t }
}

// Transport reports the client's configured wire encoding.
func (c *Client) Transport() Transport {
	if c.transport == "" {
		return TransportNDJSON
	}
	return c.transport
}

// encodeBinaryBatch renders edges as a complete binary ingest body:
// stream magic followed by one edge frame per edge.
func encodeBinaryBatch(edges []graph.StreamEdge) []byte {
	buf := append([]byte(nil), wire.StreamMagic...)
	var scratch []byte
	for _, se := range edges {
		buf, scratch = wire.AppendEdgeFrame(buf, scratch, se)
	}
	return buf
}

// EdgeStream is a persistent ingest session: one long-lived POST /v1/stream
// request whose body is written incrementally, edge frames dispatched by the
// server as they arrive. Backpressure is the TCP window — Send blocks when
// the server's ingest queue is full. Close ends the session and returns the
// server's summary (total edges routed to the shards).
type EdgeStream struct {
	pw      *io.PipeWriter
	done    chan edgeStreamResult
	buf     []byte
	scratch []byte
	started bool
	sent    int
}

type edgeStreamResult struct {
	resp *api.IngestResponse
	err  error
}

// OpenEdgeStream starts a persistent binary ingest session. The transport
// setting does not apply: sessions are always binary. Cancelling ctx tears
// the session down (Send fails, Close reports the error).
func (c *Client) OpenEdgeStream(ctx context.Context) (*EdgeStream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/stream", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	es := &EdgeStream{pw: pw, done: make(chan edgeStreamResult, 1)}
	go func() {
		resp, err := c.hc.Do(req)
		if err != nil {
			// Unblock any in-flight Send: the transport abandoned the body.
			pr.CloseWithError(err)
			es.done <- edgeStreamResult{err: err}
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			err := apiError(resp)
			pr.CloseWithError(err)
			es.done <- edgeStreamResult{err: err}
			return
		}
		var out api.IngestResponse
		if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil {
			es.done <- edgeStreamResult{err: derr}
			return
		}
		es.done <- edgeStreamResult{resp: &out}
	}()
	return es, nil
}

// Send encodes edges as binary frames and writes them to the session,
// blocking while the server's queue exerts backpressure. A write error
// usually means the server refused or ended the session; call Close for the
// authoritative result.
func (es *EdgeStream) Send(edges []graph.StreamEdge) error {
	es.buf = es.buf[:0]
	if !es.started {
		es.buf = append(es.buf, wire.StreamMagic...)
		es.started = true
	}
	for _, se := range edges {
		es.buf, es.scratch = wire.AppendEdgeFrame(es.buf, es.scratch, se)
	}
	if _, err := es.pw.Write(es.buf); err != nil {
		return err
	}
	es.sent += len(edges)
	return nil
}

// Sent reports how many edges have been written to the session so far.
func (es *EdgeStream) Sent() int { return es.sent }

// Close ends the session body and waits for the server's summary. The
// response's Accepted is the authoritative count of edges routed to the
// shards.
func (es *EdgeStream) Close() (*api.IngestResponse, error) {
	es.pw.Close()
	r := <-es.done
	return r.resp, r.err
}

// RetryStream is a self-healing match subscription: when the server evicts
// this subscriber for falling behind, or the connection drops mid-stream,
// it transparently resubscribes under the client's RetryPolicy and keeps
// delivering. Matches buffered server-side but never flushed before the
// break are redelivered on durable servers and lost on in-memory ones;
// duplicates are possible either way — consumers that need exactly-once
// deduplicate on (Query, Signature), the canonical match identity.
type RetryStream struct {
	c     *Client
	ctx   context.Context
	query string
	sub   *Subscription

	reconnects int
}

// SubscribeMatchesRetry opens a RetryStream for queryName ("" = all
// queries). The initial subscribe also retries under the policy, so it can
// be called while the daemon is still coming up.
func (c *Client) SubscribeMatchesRetry(ctx context.Context, queryName string) *RetryStream {
	return &RetryStream{c: c, ctx: ctx, query: queryName}
}

// Reconnects reports how many times the stream re-subscribed.
func (rs *RetryStream) Reconnects() int { return rs.reconnects }

// Next blocks for the next match report, resubscribing as needed. It
// returns the context error when ctx ends, or the last subscribe error once
// the retry budget is exhausted (a drained server answers every resubscribe
// with 503, so a graceful daemon shutdown surfaces here as that 503).
func (rs *RetryStream) Next() (export.MatchReport, error) {
	for {
		if rs.sub == nil {
			if err := rs.dial(); err != nil {
				return export.MatchReport{}, err
			}
		}
		rep, err := rs.sub.Next()
		if err == nil {
			return rep, nil
		}
		rs.sub.Close()
		rs.sub = nil
		if rs.ctx.Err() != nil {
			return export.MatchReport{}, rs.ctx.Err()
		}
		// io.EOF: evicted (or the server is draining — the resubscribe's
		// 503 settles which). Anything else: a broken connection. Both are
		// answered by resubscribing.
		rs.reconnects++
	}
}

// dial subscribes under the retry policy.
func (rs *RetryStream) dial() error {
	for attempt := 1; ; attempt++ {
		sub, err := rs.c.SubscribeMatches(rs.ctx, rs.query)
		if err == nil {
			rs.sub = sub
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
		var retryAfter time.Duration
		var ae *APIError
		if errors.As(err, &ae) {
			retryAfter = ae.RetryAfter
		}
		delay, ok := rs.c.retry.backoff(attempt, retryAfter)
		if !ok {
			return err
		}
		rs.c.retries.Add(1)
		t := time.NewTimer(delay)
		select {
		case <-rs.ctx.Done():
			t.Stop()
			return rs.ctx.Err()
		case <-t.C:
		}
	}
}

// Close releases the live subscription, if any.
func (rs *RetryStream) Close() error {
	if rs.sub != nil {
		err := rs.sub.Close()
		rs.sub = nil
		return err
	}
	return nil
}
