package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

func TestRetryPolicyEnabled(t *testing.T) {
	cases := []struct {
		attempts int
		want     bool
	}{
		{0, false}, // zero policy: retry off
		{1, false}, // one attempt total: no retries
		{2, true},
		{-1, true}, // unlimited
	}
	for _, c := range cases {
		if got := (RetryPolicy{MaxAttempts: c.attempts}).enabled(); got != c.want {
			t.Errorf("MaxAttempts=%d: enabled()=%v, want %v", c.attempts, got, c.want)
		}
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	// The uncapped exponential is base<<(attempt-1); jitter keeps the result
	// in [d/2, d]. Past the cap every attempt draws from [max/2, max].
	for attempt := 1; attempt < p.MaxAttempts; attempt++ {
		d, ok := p.backoff(attempt, 0)
		if !ok {
			t.Fatalf("attempt %d: budget exhausted early", attempt)
		}
		want := p.BaseDelay << (attempt - 1)
		if want > p.MaxDelay {
			want = p.MaxDelay
		}
		if d < want/2 || d > want {
			t.Errorf("attempt %d: delay %v outside jitter window [%v, %v]", attempt, d, want/2, want)
		}
	}
	if _, ok := p.backoff(p.MaxAttempts, 0); ok {
		t.Error("attempt == MaxAttempts should exhaust the budget")
	}

	unlimited := RetryPolicy{MaxAttempts: -1, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	if _, ok := unlimited.backoff(10_000, 0); !ok {
		t.Error("negative MaxAttempts should never exhaust the budget")
	}
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond}
	// A server hint longer than the computed backoff stretches the delay...
	d, ok := p.backoff(1, 500*time.Millisecond)
	if !ok || d != 500*time.Millisecond {
		t.Errorf("backoff(1, 500ms) = %v, %v; want 500ms, true", d, ok)
	}
	// ...but only up to 10×MaxDelay, so a hostile header cannot stall the
	// feeder for minutes.
	d, ok = p.backoff(1, time.Hour)
	if !ok || d != 10*p.MaxDelay {
		t.Errorf("backoff(1, 1h) = %v, %v; want %v, true", d, ok, 10*p.MaxDelay)
	}
	// A hint shorter than the computed backoff is ignored.
	d, ok = p.backoff(4, time.Nanosecond)
	if !ok || d < 4*time.Millisecond {
		t.Errorf("backoff(4, 1ns) = %v, %v; want the computed exponential (≥4ms)", d, ok)
	}
}

func TestIsRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"overload-429", &APIError{Status: http.StatusTooManyRequests}, true},
		{"unavailable-503", &APIError{Status: http.StatusServiceUnavailable}, true},
		{"validation-400", &APIError{Status: http.StatusBadRequest}, false},
		{"conflict-409", &APIError{Status: http.StatusConflict}, false},
		{"transport", errors.New("connection refused"), true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
	}
	for _, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("%s: IsRetryable=%v, want %v", c.name, got, c.want)
		}
	}
}

func testEdges() []graph.StreamEdge {
	return []graph.StreamEdge{{
		Edge: graph.Edge{ID: 1, Source: 10, Target: 20, Type: "flow", Timestamp: 1000},
	}}
}

func TestIngestBatchRetriesTransientFailures(t *testing.T) {
	var (
		mu     sync.Mutex
		bodies []string
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(body))
		n := len(bodies)
		mu.Unlock()
		switch n {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"ingest queue full"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{"accepted":1}`))
		}
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	resp, err := c.IngestBatch(context.Background(), testEdges(), true)
	if err != nil {
		t.Fatalf("IngestBatch: %v", err)
	}
	if resp.Accepted != 1 {
		t.Errorf("accepted = %d, want 1", resp.Accepted)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(bodies))
	}
	if bodies[0] == "" {
		t.Fatal("first attempt posted an empty body")
	}
	// Every retry must re-post the identical encoded batch — the edge payload
	// cannot be consumed by a failed attempt.
	for i, b := range bodies[1:] {
		if b != bodies[0] {
			t.Errorf("attempt %d re-posted a different body", i+2)
		}
	}
	if got := c.Retries(); got != 2 {
		t.Errorf("Retries() = %d, want 2", got)
	}
}

func TestIngestBatchPermanentErrorFailsFast(t *testing.T) {
	var attempts int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, `{"error":"bad edge json"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	_, err := c.IngestBatch(context.Background(), testEdges(), false)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *APIError with status 400", err)
	}
	if attempts != 1 {
		t.Errorf("server saw %d attempts, want 1 (400 is not retryable)", attempts)
	}
}

func TestIngestBatchBudgetExhausted(t *testing.T) {
	var attempts int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	_, err := c.IngestBatch(context.Background(), testEdges(), false)
	if !IsOverloaded(err) {
		t.Fatalf("err = %v, want the final 429 surfaced", err)
	}
	if attempts != 3 {
		t.Errorf("server saw %d attempts, want MaxAttempts=3", attempts)
	}
}

func TestIngestBatchStopsOnContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"still down"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: -1, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond}))
	start := time.Now()
	_, err := c.IngestBatch(ctx, testEdges(), false)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("unlimited retry ignored cancellation for %v", elapsed)
	}
}

func TestAPIErrorParsesRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"degraded durability"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL) // no retry: the error surfaces with the parsed hint
	_, err := c.IngestBatch(context.Background(), testEdges(), false)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", ae.RetryAfter)
	}
	if ae.Message != "degraded durability" {
		t.Errorf("Message = %q, want the decoded error envelope", ae.Message)
	}
}
