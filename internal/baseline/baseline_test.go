package baseline

import (
	"math/rand"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/stream"
)

func wedgeQuery(window time.Duration) *query.Graph {
	return query.NewBuilder("wedge").
		Window(window).
		Vertex("a", "Host").
		Vertex("b", "Host").
		Vertex("c", "Host").
		Edge("a", "b", "flow").
		Edge("b", "c", "dns").
		MustBuild()
}

func hostEdge(id graph.EdgeID, src, dst graph.VertexID, typ string, ts graph.Timestamp) graph.StreamEdge {
	return graph.StreamEdge{
		Edge:       graph.Edge{ID: id, Source: src, Target: dst, Type: typ, Timestamp: ts},
		SourceType: "Host",
		TargetType: "Host",
	}
}

func randomStream(n, vertices int, seed int64) []graph.StreamEdge {
	rng := rand.New(rand.NewSource(seed))
	types := []string{"flow", "dns", "login"}
	out := make([]graph.StreamEdge, 0, n)
	for i := 0; i < n; i++ {
		src := graph.VertexID(rng.Intn(vertices))
		dst := graph.VertexID(rng.Intn(vertices))
		for dst == src {
			dst = graph.VertexID(rng.Intn(vertices))
		}
		out = append(out, hostEdge(graph.EdgeID(i+1), src, dst, types[rng.Intn(len(types))], graph.Timestamp(i)))
	}
	return out
}

func signatures(events []core.MatchEvent) map[string]bool {
	out := make(map[string]bool, len(events))
	for _, ev := range events {
		out[ev.Match.Signature()] = true
	}
	return out
}

func TestRecomputeFindsSameMatchesAsEngine(t *testing.T) {
	edges := randomStream(250, 30, 7)
	q := wedgeQuery(0)

	e := core.New(nil)
	if _, err := e.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	var engineEvents []core.MatchEvent
	for _, se := range edges {
		engineEvents = append(engineEvents, e.ProcessEdge(se)...)
	}

	r := NewRecompute(0, 0)
	if err := r.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	baselineEvents, err := r.Run(stream.NewSliceSource(edges), 25)
	if err != nil {
		t.Fatal(err)
	}

	es, bs := signatures(engineEvents), signatures(baselineEvents)
	if len(es) == 0 {
		t.Fatalf("degenerate fixture: engine found no matches")
	}
	if len(es) != len(bs) {
		t.Fatalf("engine found %d matches, recompute baseline %d", len(es), len(bs))
	}
	for sig := range es {
		if !bs[sig] {
			t.Fatalf("recompute baseline missed %s", sig)
		}
	}
	if r.EdgesProcessed() != uint64(len(edges)) {
		t.Fatalf("EdgesProcessed = %d", r.EdgesProcessed())
	}
	if r.SearchesRun() != 10 { // 250 edges / 25 per batch
		t.Fatalf("SearchesRun = %d, want 10", r.SearchesRun())
	}
}

func TestRecomputeDeduplicatesAcrossBatches(t *testing.T) {
	q := wedgeQuery(0)
	r := NewRecompute(0, 0)
	if err := r.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	// Batch 1 completes a wedge; batch 2 adds an unrelated edge. The wedge
	// must be reported exactly once.
	b1 := stream.Batch{Seq: 0, Edges: []graph.StreamEdge{
		hostEdge(1, 1, 2, "flow", 1),
		hostEdge(2, 2, 3, "dns", 2),
	}}
	b2 := stream.Batch{Seq: 1, Edges: []graph.StreamEdge{
		hostEdge(3, 7, 8, "login", 3),
	}}
	ev1 := r.ProcessBatch(b1)
	ev2 := r.ProcessBatch(b2)
	if len(ev1) != 1 {
		t.Fatalf("batch 1 events = %d", len(ev1))
	}
	if len(ev2) != 0 {
		t.Fatalf("match re-reported in batch 2: %v", ev2)
	}
}

func TestRecomputeHonoursWindow(t *testing.T) {
	q := wedgeQuery(time.Second)
	r := NewRecompute(time.Minute, 0)
	if err := r.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(100, 0))
	events := r.ProcessBatch(stream.Batch{Edges: []graph.StreamEdge{
		hostEdge(1, 1, 2, "flow", base),
		hostEdge(2, 2, 3, "dns", base.Add(10*time.Second)),
	}})
	if len(events) != 0 {
		t.Fatalf("out-of-window match reported: %v", events)
	}
}

func TestNaiveExpandFindsSameMatchesAsEngine(t *testing.T) {
	edges := randomStream(250, 30, 11)
	q := wedgeQuery(0)

	e := core.New(nil)
	if _, err := e.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	var engineEvents []core.MatchEvent
	for _, se := range edges {
		engineEvents = append(engineEvents, e.ProcessEdge(se)...)
	}

	n := NewNaiveExpand(0, 0)
	if err := n.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	naiveEvents, err := n.Run(stream.NewSliceSource(edges))
	if err != nil {
		t.Fatal(err)
	}
	es, ns := signatures(engineEvents), signatures(naiveEvents)
	if len(es) != len(ns) {
		t.Fatalf("engine %d matches, naive %d", len(es), len(ns))
	}
	for sig := range es {
		if !ns[sig] {
			t.Fatalf("naive baseline missed %s", sig)
		}
	}
	if n.EdgesProcessed() != uint64(len(edges)) {
		t.Fatalf("EdgesProcessed = %d", n.EdgesProcessed())
	}
	if n.ExpansionsRun() == 0 {
		t.Fatalf("expansions not counted")
	}
}

func TestNaiveExpandWindow(t *testing.T) {
	q := wedgeQuery(time.Second)
	n := NewNaiveExpand(time.Minute, 0)
	if err := n.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	base := graph.TimestampFromTime(time.Unix(100, 0))
	n.ProcessEdge(hostEdge(1, 1, 2, "flow", base))
	events := n.ProcessEdge(hostEdge(2, 2, 3, "dns", base.Add(10*time.Second)))
	if len(events) != 0 {
		t.Fatalf("out-of-window match reported")
	}
	// A fresh flow/dns pair arriving close together still matches.
	n.ProcessEdge(hostEdge(3, 5, 6, "flow", base.Add(20*time.Second)))
	events = n.ProcessEdge(hostEdge(4, 6, 7, "dns", base.Add(20*time.Second+500*time.Millisecond)))
	if len(events) != 1 {
		t.Fatalf("in-window match missed")
	}
}

func TestBaselinesRejectNilQuery(t *testing.T) {
	if err := NewRecompute(0, 0).RegisterQuery(nil); err == nil {
		t.Fatalf("recompute accepted nil query")
	}
	if err := NewNaiveExpand(0, 0).RegisterQuery(nil); err == nil {
		t.Fatalf("naive accepted nil query")
	}
}

func TestBaselineGraphAccessors(t *testing.T) {
	r := NewRecompute(time.Minute, 0)
	n := NewNaiveExpand(time.Minute, 0)
	if r.Graph() == nil || n.Graph() == nil {
		t.Fatalf("graph accessors returned nil")
	}
	if r.Graph().Window() != time.Minute || n.Graph().Window() != time.Minute {
		t.Fatalf("retention not applied")
	}
}
