// Package baseline implements the two comparison systems the StreamWorks
// paper positions itself against (§2.2, §3.1):
//
//   - Recompute re-runs a full subgraph-isomorphism search over the current
//     window for every arriving batch of edges (the "repeated search
//     strategy" of Fan et al.), reporting matches it has not reported
//     before. It is correct but its cost grows with the size of the live
//     graph rather than with the size of the update.
//
//   - NaiveExpand is the paper's "simplistic approach": for every arriving
//     edge it immediately tries every combination the edge could participate
//     in by expanding the full query pattern around the edge, with no
//     decomposition and no partial-match memoisation. It is incremental but
//     repeats neighbourhood exploration the SJ-Tree would have remembered.
//
// Both produce core.MatchEvent values so benchmarks can compare them
// directly against the engine.
package baseline

import (
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/isomorphism"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/stream"
)

// Recompute is the repeated-search baseline.
type Recompute struct {
	dyn     *graph.Dynamic
	queries []*recomputeQuery

	edgesProcessed uint64
	searchesRun    uint64
}

type recomputeQuery struct {
	q       *query.Graph
	matcher *isomorphism.Matcher
	seen    map[string]struct{}
}

// NewRecompute constructs the baseline with the given retention window and
// out-of-order slack (mirroring core.Config).
func NewRecompute(retention, slack time.Duration) *Recompute {
	return &Recompute{dyn: graph.NewDynamic(retention, graph.WithSlack(slack))}
}

// RegisterQuery adds a continuous query to the baseline.
func (r *Recompute) RegisterQuery(q *query.Graph) error {
	if q == nil {
		return core.ErrNilQuery
	}
	r.queries = append(r.queries, &recomputeQuery{
		q:       q,
		matcher: isomorphism.New(q),
		seen:    make(map[string]struct{}),
	})
	return nil
}

// Graph exposes the baseline's dynamic graph.
func (r *Recompute) Graph() *graph.Dynamic { return r.dyn }

// EdgesProcessed returns the number of edges admitted.
func (r *Recompute) EdgesProcessed() uint64 { return r.edgesProcessed }

// SearchesRun returns the number of full pattern searches executed.
func (r *Recompute) SearchesRun() uint64 { return r.searchesRun }

// ProcessBatch applies the batch to the dynamic graph and then re-runs the
// full search for every registered query, returning only matches not
// reported in earlier batches and whose span fits the query window.
func (r *Recompute) ProcessBatch(b stream.Batch) []core.MatchEvent {
	for _, se := range b.Edges {
		if _, err := r.dyn.Apply(se); err == nil {
			r.edgesProcessed++
		}
	}
	var events []core.MatchEvent
	for _, rq := range r.queries {
		r.searchesRun++
		for _, m := range rq.matcher.FindAll(r.dyn.Graph(), rq.q.EdgeIDs(), 0) {
			if !m.WithinWindow(rq.q.Window()) {
				continue
			}
			sig := m.Signature()
			if _, dup := rq.seen[sig]; dup {
				continue
			}
			rq.seen[sig] = struct{}{}
			events = append(events, core.MatchEvent{
				Query:      rq.q.Name(),
				Match:      m,
				DetectedAt: r.dyn.Watermark(),
			})
		}
	}
	return events
}

// Run drains a source through the baseline using batches of batchSize edges
// and returns every match event.
func (r *Recompute) Run(src stream.Source, batchSize int) ([]core.MatchEvent, error) {
	var events []core.MatchEvent
	b := stream.NewCountBatcher(src, batchSize)
	_, err := stream.ReplayBatches(b, func(batch stream.Batch) bool {
		events = append(events, r.ProcessBatch(batch)...)
		return true
	})
	return events, err
}

// NaiveExpand is the no-decomposition incremental baseline.
type NaiveExpand struct {
	dyn     *graph.Dynamic
	queries []*naiveQuery

	edgesProcessed uint64
	expansionsRun  uint64
}

type naiveQuery struct {
	q       *query.Graph
	matcher *isomorphism.Matcher
	seen    map[string]struct{}
}

// NewNaiveExpand constructs the baseline with the given retention window and
// out-of-order slack.
func NewNaiveExpand(retention, slack time.Duration) *NaiveExpand {
	return &NaiveExpand{dyn: graph.NewDynamic(retention, graph.WithSlack(slack))}
}

// RegisterQuery adds a continuous query to the baseline.
func (n *NaiveExpand) RegisterQuery(q *query.Graph) error {
	if q == nil {
		return core.ErrNilQuery
	}
	n.queries = append(n.queries, &naiveQuery{
		q:       q,
		matcher: isomorphism.New(q),
		seen:    make(map[string]struct{}),
	})
	return nil
}

// Graph exposes the baseline's dynamic graph.
func (n *NaiveExpand) Graph() *graph.Dynamic { return n.dyn }

// EdgesProcessed returns the number of edges admitted.
func (n *NaiveExpand) EdgesProcessed() uint64 { return n.edgesProcessed }

// ExpansionsRun returns the number of full-pattern local expansions executed.
func (n *NaiveExpand) ExpansionsRun() uint64 { return n.expansionsRun }

// ProcessEdge applies one edge and expands the complete query pattern around
// it for every pattern edge the new edge could match, reporting every
// in-window completion not seen before.
func (n *NaiveExpand) ProcessEdge(se graph.StreamEdge) []core.MatchEvent {
	stored, err := n.dyn.Apply(se)
	if err != nil {
		return nil
	}
	n.edgesProcessed++
	var events []core.MatchEvent
	for _, nq := range n.queries {
		for _, qe := range nq.q.EdgeIDs() {
			if !nq.q.Edge(qe).MatchesEdge(stored) {
				continue
			}
			n.expansionsRun++
			for _, m := range nq.matcher.LocalSearch(n.dyn.Graph(), nq.q.EdgeIDs(), qe, stored) {
				if !m.WithinWindow(nq.q.Window()) {
					continue
				}
				sig := m.Signature()
				if _, dup := nq.seen[sig]; dup {
					continue
				}
				nq.seen[sig] = struct{}{}
				events = append(events, core.MatchEvent{
					Query:      nq.q.Name(),
					Match:      m,
					DetectedAt: n.dyn.Watermark(),
				})
			}
		}
	}
	return events
}

// Run drains a source through the baseline and returns every match event.
func (n *NaiveExpand) Run(src stream.Source) ([]core.MatchEvent, error) {
	var events []core.MatchEvent
	_, err := stream.Replay(src, func(se graph.StreamEdge) bool {
		events = append(events, n.ProcessEdge(se)...)
		return true
	})
	return events, err
}
