// Package replan implements the policy half of StreamWorks' adaptive
// runtime re-planning: deciding *when* a registered query's SJ-Tree
// decomposition has drifted far enough from what the live stream statistics
// would produce that it is worth hot-swapping the plan.
//
// StreamWorks freezes each query's decomposition at registration time, but
// the stream summary (internal/stats) keeps learning: on workloads whose
// edge-type mix drifts — a netflow stream that turns scan-heavy, a news
// stream whose topics rotate — the frozen plan anchors the SJ-Tree on
// primitives that were rare at registration and are common now, inflating
// the stored partial-match volume and the per-edge join work. The companion
// work on dynamic-graph query optimization (arXiv:1407.3745, 1306.2459)
// makes the same observation: decomposition must track the evolving
// distribution.
//
// The package is deliberately mechanism-free: it scores plans against a
// live estimator (PlanCost) and applies hysteresis (Detector) so the engine
// only swaps when the estimated win is large and sustained. The swap
// mechanics — rebuilding SJ-Tree state from the retained window without
// losing or duplicating matches — live in internal/core, which owns the
// runtime state.
package replan

import (
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/stats"
)

// Defaults applied by Config.WithDefaults for zero fields.
const (
	// DefaultCheckEvery is the number of processed edges between drift
	// checks. Checks are cheap (one trial plan per adaptive query) but not
	// free, so they are amortized over a few thousand edges.
	DefaultCheckEvery = 2048
	// DefaultThreshold is the hysteresis ratio: the frozen plan's estimated
	// cost must exceed the fresh plan's by at least this factor before a
	// swap fires. A swap replays the retained window, so marginal wins are
	// not worth the churn; 2x is comfortably past estimator noise.
	DefaultThreshold = 2.0
	// DefaultCooldown is the minimum stream time between swaps of one
	// query, bounding replay churn under oscillating workloads.
	DefaultCooldown = 10 * time.Second
	// DefaultMinEdges is the number of edges the summary must have observed
	// before the first check: plans compared against a cold summary reflect
	// initialization noise, not drift.
	DefaultMinEdges = 1024
)

// Config tunes the drift detector. The zero value means "all defaults";
// normalize with WithDefaults before use.
type Config struct {
	// CheckEvery is the number of processed edges between drift checks
	// (engine-wide). <= 0 selects DefaultCheckEvery.
	CheckEvery int
	// Threshold is the minimum frozen/fresh estimated cost ratio that
	// triggers a swap. Values <= 1 select DefaultThreshold: a threshold at
	// or below parity would make the engine thrash on estimator noise.
	Threshold float64
	// Cooldown is the minimum stream time between swaps of one query.
	// Zero selects DefaultCooldown; negative disables the cooldown
	// (normalized to -1, so re-normalizing an already-normalized config
	// cannot resurrect the default).
	Cooldown time.Duration
	// MinEdges is the minimum number of summary-observed edges before the
	// first check. <= 0 selects DefaultMinEdges.
	MinEdges uint64
}

// WithDefaults returns cfg with zero fields replaced by the defaults.
func (c Config) WithDefaults() Config {
	if c.CheckEvery <= 0 {
		c.CheckEvery = DefaultCheckEvery
	}
	if c.Threshold <= 1 {
		c.Threshold = DefaultThreshold
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultCooldown
	} else if c.Cooldown < 0 {
		c.Cooldown = -1
	}
	if c.MinEdges == 0 {
		c.MinEdges = DefaultMinEdges
	}
	return c
}

// PlanCost scores a decomposition plan against the current stream
// statistics: the sum of the estimated match cardinalities of every
// non-root node's query subgraph. Leaf cardinalities approximate the
// primitive-match volume stored (and locally searched) at the bottom of the
// SJ-Tree; internal-node cardinalities approximate the intermediate join
// results tracked while matches climb. The root is excluded because it is
// the whole query for every plan of the same query — it cancels out of any
// comparison between candidate plans.
//
// The absolute value is meaningless (the estimator's independence
// assumptions see to that); only ratios between plans for the same query
// under the same estimator are.
func PlanCost(est *stats.Estimator, p *decompose.Plan) float64 {
	if est == nil || p == nil || p.Root == nil {
		return 0
	}
	var cost float64
	var walk func(n *decompose.Node)
	walk = func(n *decompose.Node) {
		if n == nil {
			return
		}
		if n != p.Root {
			cost += est.SubgraphCardinality(p.Query, n.Edges)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(p.Root)
	return cost
}

// Detector applies the hysteresis policy for one registered query. It is
// plain single-goroutine state, owned by whatever drives the engine — it
// performs no synchronization of its own.
type Detector struct {
	cfg      Config
	lastSwap graph.Timestamp
	swapped  bool
}

// NewDetector builds a detector with cfg normalized via WithDefaults.
func NewDetector(cfg Config) Detector {
	return Detector{cfg: cfg.WithDefaults()}
}

// Config returns the normalized configuration in force.
func (d *Detector) Config() Config { return d.cfg }

// Should reports whether the engine should swap the frozen plan for the
// fresh one: the summary must be warm (seenEdges >= MinEdges), the cooldown
// since the previous swap must have elapsed at now, and the frozen plan's
// estimated cost must exceed the fresh plan's by at least the threshold
// factor. The returned ratio (frozen/fresh; 0 when fresh has no cost) is
// reported regardless of the verdict so callers can expose it in metrics.
func (d *Detector) Should(frozenCost, freshCost float64, seenEdges uint64, now graph.Timestamp) (ratio float64, swap bool) {
	if freshCost > 0 {
		ratio = frozenCost / freshCost
	}
	if seenEdges < d.cfg.MinEdges {
		return ratio, false
	}
	if d.swapped && d.cfg.Cooldown > 0 && now.Sub(d.lastSwap) < d.cfg.Cooldown {
		return ratio, false
	}
	if freshCost <= 0 {
		// A fresh plan with no estimated cost means the estimator has no
		// signal (cold or disabled summary); never swap on that.
		return ratio, false
	}
	return ratio, ratio >= d.cfg.Threshold
}

// NoteSwap records that a swap fired at stream time now, arming the
// cooldown.
func (d *Detector) NoteSwap(now graph.Timestamp) {
	d.swapped = true
	d.lastSwap = now
}
