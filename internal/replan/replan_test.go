package replan

import (
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/stats"
)

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.CheckEvery != DefaultCheckEvery || c.Threshold != DefaultThreshold ||
		c.Cooldown != DefaultCooldown || c.MinEdges != DefaultMinEdges {
		t.Fatalf("zero config not defaulted: %+v", c)
	}
	// Negative cooldown disables it, sub-parity thresholds are rejected.
	c = Config{Cooldown: -30 * time.Second, Threshold: 0.5}.WithDefaults()
	if c.Cooldown >= 0 {
		t.Fatalf("negative cooldown should stay disabled, got %s", c.Cooldown)
	}
	if c.Threshold != DefaultThreshold {
		t.Fatalf("threshold <= 1 should default, got %v", c.Threshold)
	}
	c = Config{CheckEvery: 7, Threshold: 3, Cooldown: time.Minute, MinEdges: 5}.WithDefaults()
	if c.CheckEvery != 7 || c.Threshold != 3 || c.Cooldown != time.Minute || c.MinEdges != 5 {
		t.Fatalf("explicit config clobbered: %+v", c)
	}
	// WithDefaults must be idempotent: configs are normalized once by the
	// engine and again by each registration's detector, and a second pass
	// must never resurrect a default the first pass disabled.
	for _, in := range []Config{{}, {Cooldown: -1}, {Cooldown: time.Minute}, {CheckEvery: 7, Threshold: 3, MinEdges: 5}} {
		once := in.WithDefaults()
		if twice := once.WithDefaults(); twice != once {
			t.Fatalf("WithDefaults not idempotent: %+v -> %+v -> %+v", in, once, twice)
		}
	}
}

func TestDetectorHysteresis(t *testing.T) {
	d := NewDetector(Config{Threshold: 2, Cooldown: 10 * time.Second, MinEdges: 100})
	now := graph.Timestamp(0)

	// Cold summary: no swap even with a huge ratio.
	if _, swap := d.Should(100, 1, 50, now); swap {
		t.Fatalf("swapped below MinEdges")
	}
	// Warm, below threshold: hold.
	if ratio, swap := d.Should(15, 10, 1000, now); swap || ratio != 1.5 {
		t.Fatalf("ratio=%v swap=%v, want 1.5/false", ratio, swap)
	}
	// Warm, past threshold: swap.
	ratio, swap := d.Should(30, 10, 1000, now)
	if !swap || ratio != 3 {
		t.Fatalf("ratio=%v swap=%v, want 3/true", ratio, swap)
	}
	d.NoteSwap(now)
	// Inside the cooldown: hold regardless of ratio.
	if _, swap := d.Should(1000, 1, 2000, now.Add(5*time.Second)); swap {
		t.Fatalf("swapped inside cooldown")
	}
	// Cooldown elapsed: swap again.
	if _, swap := d.Should(1000, 1, 2000, now.Add(11*time.Second)); !swap {
		t.Fatalf("did not swap after cooldown")
	}
	// A costless fresh plan (no estimator signal) never triggers.
	if _, swap := d.Should(1000, 0, 2000, now.Add(30*time.Second)); swap {
		t.Fatalf("swapped on zero fresh cost")
	}
}

// planFor builds a plan for a 3-edge path query with the given strategy,
// using an estimator over the (possibly nil) summary.
func planFor(t *testing.T, s *stats.Summary, strat decompose.Strategy) (*decompose.Plan, *stats.Estimator) {
	t.Helper()
	q := query.NewBuilder("path").
		Vertex("a", "Host").
		Vertex("b", "Host").
		Vertex("c", "Host").
		Vertex("d", "Host").
		Edge("a", "b", "rare").
		Edge("b", "c", "common").
		Edge("c", "d", "common").
		MustBuild()
	est := stats.NewEstimator(s)
	p, err := decompose.NewPlanner(est).Plan(q, strat)
	if err != nil {
		t.Fatalf("planning: %v", err)
	}
	return p, est
}

func TestPlanCostOrdersPlansBySelectivity(t *testing.T) {
	s := stats.NewSummary()
	// Feed a skewed stream: "common" dominates, "rare" is rare.
	seq := graph.EdgeID(1)
	ts := graph.Timestamp(0)
	emit := func(typ string, n int) {
		for i := 0; i < n; i++ {
			se := graph.StreamEdge{
				SourceType: "Host", TargetType: "Host",
				Edge: graph.Edge{ID: seq, Source: graph.VertexID(uint64(seq) % 50), Target: graph.VertexID(uint64(seq)%50 + 50), Type: typ, Timestamp: ts},
			}
			s.Observe(se, nil)
			seq++
			ts = ts.Add(time.Millisecond)
		}
	}
	emit("common", 5000)
	emit("rare", 5)

	selective, est := planFor(t, s, decompose.StrategySelective)
	eager, _ := planFor(t, s, decompose.StrategyEager)

	cs, ce := PlanCost(est, selective), PlanCost(est, eager)
	if cs <= 0 || ce <= 0 {
		t.Fatalf("costs not positive: selective=%v eager=%v", cs, ce)
	}
	// The selectivity-ordered plan must not score worse than the eager
	// strawman under the statistics it was built from.
	if cs > ce {
		t.Fatalf("selective plan (%v) scored worse than eager (%v)", cs, ce)
	}
	if PlanCost(nil, selective) != 0 || PlanCost(est, nil) != 0 {
		t.Fatalf("nil estimator/plan should cost 0")
	}
}
