package gen

import (
	"testing"
	"time"
)

// TestBenchObsOverheadParity exercises the obs-overhead bench lane end to
// end on a small workload: all three modes run, report throughput, and —
// the part that must never regress — detect the identical match set. The
// overhead numbers themselves are hardware-dependent and land in
// BENCH_core.json, not in an assertion.
func TestBenchObsOverheadParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark three times")
	}
	w := BenchNetFlowWorkload(4000, 200, 10*time.Second)
	for _, shards := range []int{0, 2} {
		results, err := BenchObsOverhead(w, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(results) != 3 {
			t.Fatalf("shards=%d: %d results, want 3 modes", shards, len(results))
		}
		wantModes := []string{"disabled", "enabled", "traced"}
		for i, res := range results {
			if res.Mode != wantModes[i] {
				t.Errorf("shards=%d result %d mode = %q, want %q", shards, i, res.Mode, wantModes[i])
			}
			if res.EdgesPerSec <= 0 {
				t.Errorf("shards=%d mode %s: EdgesPerSec = %v", shards, res.Mode, res.EdgesPerSec)
			}
			if res.Matches == 0 {
				t.Errorf("shards=%d mode %s: no matches; the workload proves nothing", shards, res.Mode)
			}
			if res.Matches != results[0].Matches {
				t.Errorf("shards=%d mode %s: %d matches, disabled found %d",
					shards, res.Mode, res.Matches, results[0].Matches)
			}
		}
		if results[0].OverheadPct != 0 {
			t.Errorf("shards=%d: disabled mode overhead = %v, want 0", shards, results[0].OverheadPct)
		}
	}
}
