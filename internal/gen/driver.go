package gen

import (
	"context"
	"io"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/loader"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/replan"
	"github.com/streamworks/streamworks/internal/stream"
)

// Workload bundles a named, time-ordered edge stream with the continuous
// queries evaluated over it and an engine configuration sized for it. It is
// the unit the sharded driver replays when comparing single-engine and
// N-shard runs.
type Workload struct {
	Name    string
	Edges   []graph.StreamEdge
	Queries []*query.Graph
	Engine  core.Config
	// SplitAt, when non-zero, is the index of the first edge of the
	// workload's second regime (the drift point of DriftWorkload). The
	// drift benchmark times the post-split segment separately.
	SplitAt int
}

// Source returns a replayable source over the workload's edges.
func (w Workload) Source() stream.Source { return stream.NewSliceSource(w.Edges) }

// NDJSON writes the workload's edge stream in the JSON Lines wire format
// shared by the loader and the HTTP ingest endpoint (POST /v1/edges): one
// edge object per line, attribute kinds preserved. The load driver, server
// tests and curl-based ingestion all serialize edges through this single
// encoder so there is exactly one wire format.
func (w Workload) NDJSON(out io.Writer) error { return loader.WriteJSONL(out, w.Edges) }

// NetFlowWorkload builds the internet-traffic evaluation workload: the
// background stream of cfg with smurf, worm and exfiltration attacks woven
// in, queried by the paper's Fig. 3 suite at the given window. The attack
// streams are combined with the background on the k-way merge fan-in path.
func NetFlowWorkload(cfg NetFlowConfig, window time.Duration) Workload {
	flow := NewNetFlow(cfg, nil)
	bg := flow.Generate()
	start := cfg.Start
	end := start
	if len(bg) > 0 {
		end = bg[len(bg)-1].Edge.Timestamp
	}
	inj := NewInjector(DefaultInjectorConfig(), flow.Hosts(), flow.Sequence())
	smurf, _ := inj.Inject(AttackSmurf, 3, start, end)
	worm, _ := inj.Inject(AttackWorm, 3, start, end)
	exfil, _ := inj.Inject(AttackExfiltration, 3, start, end)
	return Workload{
		Name:  "netflow",
		Edges: stream.Merge(bg, smurf, worm, exfil),
		Queries: []*query.Graph{
			SmurfQuery(window),
			WormQuery(window),
			WormChainQuery(window),
			ExfiltrationQuery(window),
		},
		Engine: core.Config{
			Retention:       window,
			EnableSummaries: true,
			TriadSampling:   10,
		},
	}
}

// NewsWorkload builds the news-stream evaluation workload: the article/
// entity stream of cfg queried by the paper's Fig. 2 co-mention event
// pattern (articles joined through a shared keyword and location — a
// hub-free query that exercises the sharded engine's broadcast fallback).
func NewsWorkload(cfg NewsConfig, window time.Duration, articles int) Workload {
	news := NewNews(cfg, nil)
	edges, _ := news.Generate()
	return Workload{
		Name:    "news",
		Edges:   edges,
		Queries: []*query.Graph{NewsEventQuery(window, articles, "")},
		Engine: core.Config{
			Retention:       window,
			EnableSummaries: true,
			TriadSampling:   10,
		},
	}
}

// DriftWorkload builds the selectivity-drift evaluation workload: the
// netflow background stream runs the benign DefaultTrafficMix for its first
// half and then rotates to ScanHeavyTrafficMix — reconnaissance and
// infection traffic, rare enough at plan time that the selective planner
// anchors SJ-Trees on them, floods the second half and inverts every
// selectivity ranking. The usual attacks are woven through both halves so
// the Fig. 3 queries have real matches throughout. A plan frozen at
// registration degrades after the rotation; adaptive re-planning is
// expected to swap plans at least once. SplitAt marks the first post-drift
// edge. The engine config uses a tighter replan cadence than the defaults
// so that laptop-scale replays of the workload still exercise drift checks.
func DriftWorkload(cfg NetFlowConfig, window time.Duration) Workload {
	if len(cfg.Phases) == 0 {
		cfg.Phases = []MixPhase{
			{UpTo: 0.5, Mix: DefaultTrafficMix()},
			{UpTo: 1.0, Mix: ScanHeavyTrafficMix()},
		}
	}
	flow := NewNetFlow(cfg, nil)
	bg := flow.Generate()
	start := cfg.Start
	end := start
	if len(bg) > 0 {
		end = bg[len(bg)-1].Edge.Timestamp
	}
	// The drift instant is the timestamp at which the background leaves its
	// first phase.
	driftTS := end
	if len(cfg.Phases) > 1 {
		if idx := int(cfg.Phases[0].UpTo * float64(len(bg))); idx >= 0 && idx < len(bg) {
			driftTS = bg[idx].Edge.Timestamp
		}
	}
	inj := NewInjector(DefaultInjectorConfig(), flow.Hosts(), flow.Sequence())
	smurf, _ := inj.Inject(AttackSmurf, 3, start, end)
	worm, _ := inj.Inject(AttackWorm, 3, start, end)
	exfil, _ := inj.Inject(AttackExfiltration, 3, start, end)
	edges := stream.Merge(bg, smurf, worm, exfil)
	split := len(edges)
	for i, se := range edges {
		if se.Edge.Timestamp >= driftTS {
			split = i
			break
		}
	}
	engine := core.Config{
		Retention:       window,
		EnableSummaries: true,
		TriadSampling:   10,
		Replan: replan.Config{
			CheckEvery: 512,
			MinEdges:   256,
			Cooldown:   2 * time.Second,
		},
	}
	return Workload{
		Name:  "drift",
		Edges: edges,
		Queries: []*query.Graph{
			SmurfQuery(window),
			WormQuery(window),
			WormChainQuery(window),
			ExfiltrationQuery(window),
			ReconBurstQuery(window),
		},
		Engine:  engine,
		SplitAt: split,
	}
}

// MatchSet is the order-insensitive identity set of a run's complete
// matches: one canonical key (query name plus sorted edge binding) per
// deduplicated match. Two runs over the same workload are equivalent exactly
// when their MatchSets are equal.
type MatchSet map[string]struct{}

// Add records an event's canonical key.
func (s MatchSet) Add(ev core.MatchEvent) {
	s.AddKey(ev.Query, ev.Match.Signature())
}

// AddKey records a match identified by (query, signature) — the form a
// remote consumer sees in an export.MatchReport — under the same canonical
// key Add derives from an engine event, so HTTP-delivered match streams can
// be compared against in-process runs.
func (s MatchSet) AddKey(query, signature string) {
	s[query+"\x1f"+signature] = struct{}{}
}

// Equal reports set equality.
func (s MatchSet) Equal(o MatchSet) bool {
	if len(s) != len(o) {
		return false
	}
	//swvet:unordered membership test: the early return is the same constant false whichever missing key is visited first
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// RunEngine replays the workload through an in-process public
// streamworks.Engine (New or NewSharded): it registers the workload's
// queries, subscribes to every match, streams the edges and closes the
// engine, returning the canonical match set. Its drain protocol — Close,
// then wait for the subscription's Done — relies on Close being the drain,
// which holds for the in-process backends only; a Remote tears its streams
// down abortively on Close, so remote runs must instead drain the daemon
// (server Close) and wait for Done before closing the engine, as the
// cross-backend acceptance test does. The engine is always closed on
// return.
func RunEngine(eng streamworks.Engine, w Workload) (MatchSet, error) {
	defer eng.Close()
	ctx := context.Background()
	for _, q := range w.Queries {
		if err := eng.RegisterQuery(ctx, q); err != nil {
			return nil, err
		}
	}
	// The sink runs on the engine's delivery goroutine; the Done wait below
	// (after Close) orders every AddKey before the return.
	set := make(MatchSet)
	sub, err := eng.Subscribe("", streamworks.SinkFunc(func(m streamworks.Match) {
		set.AddKey(m.Query, m.Signature)
	}))
	if err != nil {
		return nil, err
	}
	defer sub.Close()
	if err := eng.ProcessBatch(ctx, w.Edges); err != nil {
		return nil, err
	}
	if err := eng.Close(); err != nil {
		return nil, err
	}
	<-sub.Done()
	return set, nil
}

// RunSingle replays the workload through the public single-engine backend
// (streamworks.New) and returns the canonical match set and final metrics.
// Extra options (e.g. streamworks.WithAdaptivePlanning,
// streamworks.WithPlanStrategy) are applied after the workload's engine
// config.
func RunSingle(w Workload, extra ...streamworks.Option) (MatchSet, core.Metrics, error) {
	opts := append([]streamworks.Option{streamworks.WithEngineConfig(w.Engine)}, extra...)
	eng := streamworks.New(opts...)
	set, err := RunEngine(eng, w)
	if err != nil {
		return nil, core.Metrics{}, err
	}
	m, err := eng.Metrics(context.Background())
	if err != nil {
		return nil, core.Metrics{}, err
	}
	return set, m, nil
}

// RunSharded replays the workload through the public sharded backend
// (streamworks.NewSharded) with the given shard count and returns the
// deduplicated canonical match set and the aggregated metrics. Extra
// options are applied after the workload's engine config and shard count.
func RunSharded(w Workload, shards int, extra ...streamworks.Option) (MatchSet, core.Metrics, error) {
	opts := append([]streamworks.Option{
		streamworks.WithEngineConfig(w.Engine),
		streamworks.WithShards(shards),
	}, extra...)
	eng := streamworks.NewSharded(opts...)
	set, err := RunEngine(eng, w)
	if err != nil {
		return nil, core.Metrics{}, err
	}
	m, err := eng.Metrics(context.Background())
	if err != nil {
		return nil, core.Metrics{}, err
	}
	return set, m, nil
}
