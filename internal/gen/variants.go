package gen

import (
	"fmt"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/stream"
)

// variantFamily builds one structural family of generated query variants.
// tier lets a family vary predicates (not just windows) across its variants,
// so a many-queries workload exercises both full structural sharing (same
// signature, different windows) and predicate-split non-sharing (distinct
// signatures within one family).
type variantFamily struct {
	base  string
	build func(name string, window time.Duration, tier int) *query.Graph
}

// queryVariantFamilies are the base patterns QueryVariants cycles through:
// the netflow Fig. 3 suite plus dns/news shapes. Structure within a family is
// constant except where tier splits predicates, so hundreds of variants
// collapse to a handful of canonical subpattern signatures — the sharing the
// MQO DAG exists to exploit.
var queryVariantFamilies = []variantFamily{
	{"smurf", func(name string, w time.Duration, _ int) *query.Graph {
		return query.NewBuilder(name).
			Window(w).
			Vertex("attacker", TypeHost).
			Vertex("amplifier", TypeHost).
			Vertex("victim", TypeHost).
			Edge("attacker", "amplifier", EdgeICMPReq).
			Edge("amplifier", "victim", EdgeICMPReply).
			MustBuild()
	}},
	{"worm", func(name string, w time.Duration, _ int) *query.Graph {
		return query.NewBuilder(name).
			Window(w).
			Vertex("src", TypeHost).
			Vertex("dst", TypeHost).
			Edge("src", "dst", EdgeScan).
			Edge("src", "dst", EdgeFlow).
			Edge("src", "dst", EdgeInfect).
			MustBuild()
	}},
	{"worm-chain", func(name string, w time.Duration, _ int) *query.Graph {
		return query.NewBuilder(name).
			Window(w).
			Vertex("patient0", TypeHost).
			Vertex("victim1", TypeHost).
			Vertex("victim2", TypeHost).
			Edge("patient0", "victim1", EdgeInfect).
			Edge("victim1", "victim2", EdgeScan).
			Edge("victim1", "victim2", EdgeInfect).
			MustBuild()
	}},
	{"exfil", func(name string, w time.Duration, tier int) *query.Graph {
		// Predicate tiers: byte thresholds double per tier, so variants of
		// this family split into distinct canonical signatures — the DAG must
		// NOT share across tiers (different predicates, different matches).
		mult := int64(1) << (tier % 3)
		return query.NewBuilder(name).
			Window(w).
			Vertex("compromised", TypeHost).
			Vertex("fileserver", TypeHost).
			Vertex("drop", TypeHost).
			Edge("compromised", "fileserver", EdgeLogin).
			Edge("compromised", "fileserver", EdgeFileRead, query.Gt("bytes", graph.Int(1_000_000*mult))).
			Edge("compromised", "drop", EdgeFlow, query.Gt("bytes", graph.Int(10_000_000*mult))).
			MustBuild()
	}},
	{"probe", func(name string, w time.Duration, _ int) *query.Graph {
		// Shares its icmp_echo_req leg with the smurf family under
		// single-edge-leaf plans.
		return query.NewBuilder(name).
			Window(w).
			Vertex("scanner", TypeHost).
			Vertex("target", TypeHost).
			Vertex("resolver", "").
			Edge("scanner", "target", EdgeICMPReq).
			Edge("target", "resolver", EdgeDNS).
			MustBuild()
	}},
	{"scan-stage", func(name string, w time.Duration, _ int) *query.Graph {
		return query.NewBuilder(name).
			Window(w).
			Vertex("recon", TypeHost).
			Vertex("probed", "").
			Vertex("staging", "").
			Edge("recon", "probed", EdgeScan).
			Edge("recon", "staging", EdgeInfect).
			Edge("recon", "staging", EdgeFlow).
			MustBuild()
	}},
	{"news2", func(name string, w time.Duration, _ int) *query.Graph {
		return newsVariant(name, w, 2)
	}},
	{"news3", func(name string, w time.Duration, _ int) *query.Graph {
		return newsVariant(name, w, 3)
	}},
}

// newsVariant is NewsEventQuery under a caller-chosen name: articles sharing
// a keyword and a location within the window (news windows run long relative
// to netflow ones, so callers pass a stretched window for these families).
func newsVariant(name string, window time.Duration, articles int) *query.Graph {
	b := query.NewBuilder(name).Window(window)
	b.Vertex("k", TypeKeyword)
	b.Vertex("l", TypeLocation)
	for i := 0; i < articles; i++ {
		n := articleVar(i)
		b.Vertex(n, TypeArticle)
		b.Edge(n, "k", EdgeMentions)
		b.Edge(n, "l", EdgeLocated)
	}
	return b.MustBuild()
}

// QueryVariants generates n standing queries by cycling the variant families
// round-robin, jittering windows within a family (same structure, different
// window — fully shareable) and stepping predicate tiers every full cycle
// (structurally identical but semantically distinct — never shared). Names
// are "<family>-v<index>", unique across the set. This is the many-queries
// registration load: a realistic monitoring deployment runs hundreds of
// near-duplicate detection rules differing only in thresholds and windows.
func QueryVariants(n int, window time.Duration) []*query.Graph {
	out := make([]*query.Graph, 0, n)
	for i := 0; i < n; i++ {
		fam := queryVariantFamilies[i%len(queryVariantFamilies)]
		tier := i / len(queryVariantFamilies)
		w := window + time.Duration(tier%4)*window/8
		if fam.base == "news2" || fam.base == "news3" {
			// Articles arrive on a minutes-scale gap; a seconds-scale window
			// would never hold two of them.
			w *= 20
		}
		name := fmt.Sprintf("%s-v%03d", fam.base, i)
		out = append(out, fam.build(name, w, tier))
	}
	return out
}

// ManyQueriesWorkload builds the multi-query-optimization evaluation
// workload: the netflow background (attacks woven in) merged with a news
// article stream over one shared ID space, standing under `queries` generated
// query variants. With hundreds of registered variants the per-query engine
// re-runs near-identical local searches per edge once per query; the shared
// evaluation DAG runs each distinct subpattern once — this workload is where
// that difference is measured.
func ManyQueriesWorkload(cfg NetFlowConfig, newsCfg NewsConfig, window time.Duration, queries int) Workload {
	flow := NewNetFlow(cfg, nil)
	bg := flow.Generate()
	start := cfg.Start
	end := start
	if len(bg) > 0 {
		end = bg[len(bg)-1].Edge.Timestamp
	}
	inj := NewInjector(DefaultInjectorConfig(), flow.Hosts(), flow.Sequence())
	smurf, _ := inj.Inject(AttackSmurf, 3, start, end)
	worm, _ := inj.Inject(AttackWorm, 3, start, end)
	exfil, _ := inj.Inject(AttackExfiltration, 3, start, end)
	// The news generator continues the netflow ID sequence so the merged
	// stream keeps globally unique vertex and edge IDs.
	news := NewNews(newsCfg, flow.Sequence())
	articles, _ := news.Generate()
	return Workload{
		Name:    "many-queries",
		Edges:   stream.Merge(bg, smurf, worm, exfil, articles),
		Queries: QueryVariants(queries, window),
		Engine: core.Config{
			Retention:       window,
			EnableSummaries: true,
			TriadSampling:   10,
		},
	}
}

// BenchManyQueriesWorkload builds the canonical many-queries benchmark
// workload at the requested scale: netflow background plus a news stream
// sized to roughly an eighth of the netflow edge count, under the given
// number of generated query variants.
func BenchManyQueriesWorkload(queries, edges, hosts int, window time.Duration) Workload {
	cfg := NetFlowConfig{
		Hosts:       hosts,
		Servers:     hosts/16 + 4,
		Edges:       edges,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        47,
	}
	// The news side runs with a wide vocabulary: standing detection rules
	// are supposed to be mostly idle (matches are the rare event), so the
	// benchmark must not degenerate into measuring match fan-out — which
	// both modes pay identically — instead of per-edge evaluation.
	newsCfg := DefaultNewsConfig()
	newsCfg.Articles = max(edges/64, 40)
	newsCfg.Keywords = newsCfg.Articles + 50
	newsCfg.Locations = newsCfg.Articles/8 + 10
	newsCfg.EventClusters = max(newsCfg.Articles/100, 1)
	newsCfg.Gap = 500 * time.Millisecond
	newsCfg.Seed = 48
	return ManyQueriesWorkload(cfg, newsCfg, window, queries)
}
