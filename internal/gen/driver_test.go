package gen

import (
	"sort"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

func tinyNetflowWorkload() Workload {
	cfg := NetFlowConfig{
		Hosts:       120,
		Servers:     12,
		Edges:       1500,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        51,
	}
	return NetFlowWorkload(cfg, 30*time.Second)
}

func TestNetFlowWorkloadComposition(t *testing.T) {
	w := tinyNetflowWorkload()
	if len(w.Queries) != 4 {
		t.Fatalf("netflow workload carries %d queries, want 4", len(w.Queries))
	}
	// The merged stream (background + three attack streams) must be
	// time-ordered and larger than the background alone.
	if len(w.Edges) <= 1500 {
		t.Fatalf("attack edges not merged in: %d edges", len(w.Edges))
	}
	if !sort.SliceIsSorted(w.Edges, func(i, j int) bool {
		return w.Edges[i].Edge.Timestamp < w.Edges[j].Edge.Timestamp
	}) {
		t.Fatalf("workload stream not time-ordered")
	}
	ids := make(map[graph.EdgeID]bool, len(w.Edges))
	for _, se := range w.Edges {
		if ids[se.Edge.ID] {
			t.Fatalf("duplicate edge ID %d in workload", se.Edge.ID)
		}
		ids[se.Edge.ID] = true
	}
	if w.Engine.Retention != 30*time.Second {
		t.Fatalf("engine retention = %s", w.Engine.Retention)
	}
}

func TestRunSingleAndShardedAgreeOnTinyWorkload(t *testing.T) {
	w := tinyNetflowWorkload()
	single, sm, err := RunSingle(w)
	if err != nil {
		t.Fatalf("RunSingle: %v", err)
	}
	if len(single) == 0 {
		t.Fatalf("tiny workload produced no matches")
	}
	if sm.EdgesProcessed == 0 {
		t.Fatalf("single metrics empty: %+v", sm)
	}
	sharded, _, err := RunSharded(w, 2)
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	if !single.Equal(sharded) {
		t.Fatalf("driver runs disagree: single %d vs sharded %d matches", len(single), len(sharded))
	}
}

func TestNewsWorkloadMatchesEvents(t *testing.T) {
	cfg := DefaultNewsConfig()
	cfg.Articles = 400
	cfg.Keywords = 120
	cfg.Locations = 20
	cfg.EventClusters = 2
	w := NewsWorkload(cfg, 5*time.Minute, 2)
	if len(w.Queries) != 1 {
		t.Fatalf("news workload carries %d queries", len(w.Queries))
	}
	set, _, err := RunSingle(w)
	if err != nil {
		t.Fatalf("RunSingle(news): %v", err)
	}
	if len(set) == 0 {
		t.Fatalf("news workload produced no co-mention matches")
	}
}
