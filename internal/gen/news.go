package gen

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/stream"
)

// Vertex and edge type labels used by the news/social-media workload; the
// Fig. 2 style queries reference these.
const (
	TypeArticle      = "Article"
	TypeKeyword      = "Keyword"
	TypeLocation     = "Location"
	TypePerson       = "Person"
	TypeOrganization = "Organization"

	EdgeMentions  = "mentions"
	EdgeLocated   = "located_in"
	EdgeQuotes    = "quotes"
	EdgeAbout     = "about_org"
	EdgePublished = "published_by"
)

// NewsConfig parameterizes the news-stream generator.
type NewsConfig struct {
	// Articles is the number of background articles to emit.
	Articles int
	// Keywords, Locations, People, Orgs size the entity vocabularies.
	Keywords  int
	Locations int
	People    int
	Orgs      int
	// KeywordsPerArticle and so on bound how many entities each article
	// links to (at least one keyword and one location are always emitted so
	// the Fig. 2 query is satisfiable).
	KeywordsPerArticle int
	PeoplePerArticle   int
	// Start is the publication time of the first article and Gap the mean
	// spacing between articles.
	Start graph.Timestamp
	Gap   time.Duration
	// KeywordSkew is the Zipf exponent of keyword popularity.
	KeywordSkew float64
	// Seed makes the stream reproducible.
	Seed int64
	// EventClusters injects ground-truth events: for each cluster,
	// EventArticles articles sharing one keyword and one location are
	// published within EventSpan.
	EventClusters int
	EventArticles int
	EventSpan     time.Duration
}

// DefaultNewsConfig returns a laptop-scale configuration.
func DefaultNewsConfig() NewsConfig {
	return NewsConfig{
		Articles:           20_000,
		Keywords:           2_000,
		Locations:          300,
		People:             1_000,
		Orgs:               400,
		KeywordsPerArticle: 3,
		PeoplePerArticle:   2,
		Start:              graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		Gap:                2 * time.Second,
		KeywordSkew:        1.3,
		Seed:               3,
		EventClusters:      5,
		EventArticles:      3,
		EventSpan:          10 * time.Minute,
	}
}

// NewsEvent records the ground truth of one injected event cluster.
type NewsEvent struct {
	Keyword  graph.VertexID
	Location graph.VertexID
	Articles []graph.VertexID
	Start    graph.Timestamp
	End      graph.Timestamp
}

// News generates an article/keyword/location/person stream.
type News struct {
	cfg NewsConfig
	rng *rand.Rand
	seq *Sequence
	kwz *zipf

	keywords  []graph.VertexID
	locations []graph.VertexID
	people    []graph.VertexID
	orgs      []graph.VertexID
}

// NewNews constructs a generator. seq may be nil for a fresh ID space.
func NewNews(cfg NewsConfig, seq *Sequence) *News {
	if cfg.Keywords < 1 {
		cfg.Keywords = 1
	}
	if cfg.Locations < 1 {
		cfg.Locations = 1
	}
	if cfg.KeywordsPerArticle < 1 {
		cfg.KeywordsPerArticle = 1
	}
	if cfg.Gap <= 0 {
		cfg.Gap = time.Second
	}
	if cfg.EventArticles < 2 {
		cfg.EventArticles = 2
	}
	if cfg.EventSpan <= 0 {
		cfg.EventSpan = time.Minute
	}
	if seq == nil {
		seq = &Sequence{}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &News{cfg: cfg, rng: rng, seq: seq, kwz: newZipf(rng, cfg.Keywords, cfg.KeywordSkew)}
	for i := 0; i < cfg.Keywords; i++ {
		n.keywords = append(n.keywords, seq.NextVertex())
	}
	for i := 0; i < cfg.Locations; i++ {
		n.locations = append(n.locations, seq.NextVertex())
	}
	for i := 0; i < cfg.People; i++ {
		n.people = append(n.people, seq.NextVertex())
	}
	for i := 0; i < cfg.Orgs; i++ {
		n.orgs = append(n.orgs, seq.NextVertex())
	}
	return n
}

// Keywords returns the keyword vertex IDs (rank order: most popular first).
func (n *News) Keywords() []graph.VertexID { return n.keywords }

// Locations returns the location vertex IDs.
func (n *News) Locations() []graph.VertexID { return n.locations }

// Sequence returns the shared ID sequence.
func (n *News) Sequence() *Sequence { return n.seq }

// KeywordLabel returns the label attribute the generator assigns to the
// i-th keyword; queries can pin an event topic with it.
func KeywordLabel(i int) string { return fmt.Sprintf("topic-%d", i) }

// LocationName returns the name attribute of the i-th location.
func LocationName(i int) string { return fmt.Sprintf("city-%d", i) }

// article emits the edges of a single article mentioning the given keyword
// and location (plus random extra keywords/people).
func (n *News) article(ts graph.Timestamp, kwIdx, locIdx int) []graph.StreamEdge {
	articleID := n.seq.NextVertex()
	var out []graph.StreamEdge
	addEdge := func(dst graph.VertexID, dstType, edgeType string, attrs graph.Attributes, dstAttrs graph.Attributes) {
		out = append(out, graph.StreamEdge{
			Edge: graph.Edge{
				ID:        n.seq.NextEdge(),
				Source:    articleID,
				Target:    dst,
				Type:      edgeType,
				Timestamp: ts,
				Attrs:     attrs,
			},
			SourceType:  TypeArticle,
			TargetType:  dstType,
			SourceAttrs: graph.Attributes{"published": graph.Int(int64(ts))},
			TargetAttrs: dstAttrs,
		})
	}
	addEdge(n.keywords[kwIdx], TypeKeyword, EdgeMentions, nil,
		graph.Attributes{"label": graph.String(KeywordLabel(kwIdx))})
	addEdge(n.locations[locIdx], TypeLocation, EdgeLocated, nil,
		graph.Attributes{"name": graph.String(LocationName(locIdx))})
	for k := 1; k < n.cfg.KeywordsPerArticle; k++ {
		extra := n.kwz.draw()
		addEdge(n.keywords[extra], TypeKeyword, EdgeMentions, nil,
			graph.Attributes{"label": graph.String(KeywordLabel(extra))})
	}
	for k := 0; k < n.cfg.PeoplePerArticle && len(n.people) > 0; k++ {
		p := n.people[n.rng.Intn(len(n.people))]
		addEdge(p, TypePerson, EdgeQuotes, nil, nil)
	}
	if len(n.orgs) > 0 && n.rng.Float64() < 0.5 {
		o := n.orgs[n.rng.Intn(len(n.orgs))]
		addEdge(o, TypeOrganization, EdgeAbout, nil, nil)
	}
	return out
}

// Generate produces the background article stream plus the configured event
// clusters, merged into timestamp order, and the ground-truth events.
func (n *News) Generate() ([]graph.StreamEdge, []NewsEvent) {
	var background []graph.StreamEdge
	ts := n.cfg.Start
	for i := 0; i < n.cfg.Articles; i++ {
		ts = ts.Add(n.cfg.Gap/2 + jitter(n.rng, n.cfg.Gap))
		background = append(background, n.article(ts, n.kwz.draw(), n.rng.Intn(len(n.locations)))...)
	}
	end := ts

	var events []NewsEvent
	var eventEdges []graph.StreamEdge
	for c := 0; c < n.cfg.EventClusters; c++ {
		kw := n.kwz.draw()
		loc := n.rng.Intn(len(n.locations))
		span := int64(end - n.cfg.Start)
		if span < 1 {
			span = 1
		}
		start := n.cfg.Start + graph.Timestamp(n.rng.Int63n(span))
		ev := NewsEvent{
			Keyword:  n.keywords[kw],
			Location: n.locations[loc],
			Start:    start,
		}
		at := start
		step := n.cfg.EventSpan / time.Duration(n.cfg.EventArticles)
		for a := 0; a < n.cfg.EventArticles; a++ {
			edges := n.article(at, kw, loc)
			eventEdges = append(eventEdges, edges...)
			ev.Articles = append(ev.Articles, edges[0].Edge.Source)
			ev.End = at
			at = at.Add(step/2 + jitter(n.rng, step))
		}
		events = append(events, ev)
	}
	// Clusters start at random times, so the concatenated event edges are
	// unsorted across clusters; Merge requires sorted inputs.
	stream.SortByTimestamp(eventEdges)
	return stream.Merge(background, eventEdges), events
}
