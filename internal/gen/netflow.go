package gen

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/stream"
)

// Vertex and edge type labels used by the netflow workload. The cyber
// queries in the paper (Fig. 3) and the example programs reference these.
const (
	TypeHost   = "Host"
	TypeServer = "Server"

	EdgeFlow      = "flow"          // generic TCP/UDP flow
	EdgeDNS       = "dns_query"     // host asks a server for a name
	EdgeICMPReq   = "icmp_echo_req" // ping request
	EdgeICMPReply = "icmp_echo_rep" // ping reply
	EdgeLogin     = "login"         // user/host logs into a server
	EdgeFileRead  = "file_read"     // host reads a sensitive file share
	EdgeScan      = "port_scan"     // reconnaissance probe
	EdgeInfect    = "infect"        // worm payload delivery
)

// TrafficMix weighs the relative frequency of each background edge type.
// Weights need not sum to 1 — they are normalized — and a zero weight
// disables the type entirely. The zero value is invalid; start from
// DefaultTrafficMix or ScanHeavyTrafficMix.
type TrafficMix struct {
	Flow      float64
	DNS       float64
	Login     float64
	ICMPReq   float64
	ICMPReply float64
	Scan      float64
	Infect    float64
}

// DefaultTrafficMix is the classic benign mix the generator has always
// produced: mostly flows, some DNS and logins, a trickle of ICMP, and no
// scan or infection traffic (those arrive only via attack injection).
func DefaultTrafficMix() TrafficMix {
	return TrafficMix{Flow: 0.70, DNS: 0.15, Login: 0.07, ICMPReq: 0.05, ICMPReply: 0.03}
}

// ScanHeavyTrafficMix models a compromised network segment: reconnaissance
// probes dominate, infection payloads are common, benign flows collapse to
// a fraction of the stream. Swapping to this mid-stream inverts the
// selectivity ranking a plan frozen on DefaultTrafficMix was built from —
// the drift workload's whole point.
func ScanHeavyTrafficMix() TrafficMix {
	return TrafficMix{Flow: 0.02, DNS: 0.03, Login: 0.01, ICMPReq: 0.12, ICMPReply: 0.08, Scan: 0.55, Infect: 0.19}
}

// total returns the weight mass of the mix.
func (m TrafficMix) total() float64 {
	return m.Flow + m.DNS + m.Login + m.ICMPReq + m.ICMPReply + m.Scan + m.Infect
}

// pick maps one uniform draw u in [0,1) onto an edge type.
func (m TrafficMix) pick(u float64) string {
	total := m.total()
	if total <= 0 {
		return EdgeFlow
	}
	u *= total
	for _, wk := range [...]struct {
		w float64
		k string
	}{
		{m.Flow, EdgeFlow},
		{m.DNS, EdgeDNS},
		{m.Login, EdgeLogin},
		{m.ICMPReq, EdgeICMPReq},
		{m.ICMPReply, EdgeICMPReply},
		{m.Scan, EdgeScan},
		{m.Infect, EdgeInfect},
	} {
		if u < wk.w {
			return wk.k
		}
		u -= wk.w
	}
	// Float residue lands on the last non-zero weight's neighbour; flows
	// are always a safe default.
	return EdgeFlow
}

// MixPhase is one segment of a phased traffic schedule: the mix in force
// until the generator has emitted UpTo (a fraction in (0,1]) of its
// configured edge count.
type MixPhase struct {
	UpTo float64
	Mix  TrafficMix
}

// NetFlowConfig parameterizes the internet-traffic generator.
type NetFlowConfig struct {
	// Hosts and Servers are the number of workstation and server vertices.
	Hosts   int
	Servers int
	// Edges is the number of background edges to generate.
	Edges int
	// Start is the timestamp of the first edge; MeanGap is the average
	// inter-arrival time between consecutive background edges.
	Start   graph.Timestamp
	MeanGap time.Duration
	// ContactSkew is the Zipf exponent controlling how concentrated traffic
	// is on popular destinations (higher = more skewed). Values near 1.1-2.0
	// are realistic.
	ContactSkew float64
	// Seed makes the stream reproducible.
	Seed int64
	// Phases, when non-empty, schedules a drifting traffic mix: each phase's
	// mix applies until the emitted-edge fraction reaches its UpTo bound (the
	// last phase covers any remainder). Empty keeps the classic
	// DefaultTrafficMix for the whole stream, byte-identical to what the
	// generator produced before phases existed.
	Phases []MixPhase
}

// DefaultNetFlowConfig returns a laptop-scale configuration: 2,000 hosts,
// 100 servers, 100k edges at one edge per simulated millisecond.
func DefaultNetFlowConfig() NetFlowConfig {
	return NetFlowConfig{
		Hosts:       2000,
		Servers:     100,
		Edges:       100_000,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        1,
	}
}

// NetFlow generates synthetic internet traffic.
type NetFlow struct {
	cfg     NetFlowConfig
	rng     *rand.Rand
	seq     *Sequence
	zip     *zipf
	now     graph.Timestamp
	host    []graph.VertexID
	srv     []graph.VertexID
	emitted int
}

// NewNetFlow constructs a generator. seq may be nil, in which case a fresh
// sequence starting at 0 is used.
func NewNetFlow(cfg NetFlowConfig, seq *Sequence) *NetFlow {
	if cfg.Hosts < 2 {
		cfg.Hosts = 2
	}
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = time.Millisecond
	}
	if seq == nil {
		seq = &Sequence{}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &NetFlow{
		cfg: cfg,
		rng: rng,
		seq: seq,
		zip: newZipf(rng, cfg.Hosts+cfg.Servers, cfg.ContactSkew),
		now: cfg.Start,
	}
	for i := 0; i < cfg.Hosts; i++ {
		g.host = append(g.host, seq.NextVertex())
	}
	for i := 0; i < cfg.Servers; i++ {
		g.srv = append(g.srv, seq.NextVertex())
	}
	return g
}

// Hosts returns the generated host vertex IDs.
func (g *NetFlow) Hosts() []graph.VertexID { return g.host }

// Servers returns the generated server vertex IDs.
func (g *NetFlow) Servers() []graph.VertexID { return g.srv }

// Sequence returns the ID sequence, so attack injectors can share it.
func (g *NetFlow) Sequence() *Sequence { return g.seq }

// vertexByRank maps a Zipf rank to a vertex, preferring servers for the most
// popular ranks (services receive most traffic).
func (g *NetFlow) vertexByRank(rank int) (graph.VertexID, string) {
	if rank < len(g.srv) {
		return g.srv[rank], TypeServer
	}
	return g.host[(rank-len(g.srv))%len(g.host)], TypeHost
}

// randomHost picks a uniformly random workstation.
func (g *NetFlow) randomHost() graph.VertexID {
	return g.host[g.rng.Intn(len(g.host))]
}

// Generate produces the configured number of background edges in timestamp
// order.
func (g *NetFlow) Generate() []graph.StreamEdge {
	out := make([]graph.StreamEdge, 0, g.cfg.Edges)
	for i := 0; i < g.cfg.Edges; i++ {
		out = append(out, g.nextEdge())
	}
	return out
}

// Source returns a streaming source that lazily generates the configured
// number of edges, avoiding large intermediate slices in benchmarks.
func (g *NetFlow) Source() stream.Source {
	remaining := g.cfg.Edges
	return stream.FuncSource(func() (graph.StreamEdge, error) {
		if remaining <= 0 {
			return graph.StreamEdge{}, io.EOF
		}
		remaining--
		return g.nextEdge(), nil
	})
}

// currentMix returns the scheduled mix for the next emitted edge, or
// ok=false when no phases are configured (the legacy fixed thresholds then
// apply, keeping historical streams byte-identical).
func (g *NetFlow) currentMix() (TrafficMix, bool) {
	if len(g.cfg.Phases) == 0 || g.cfg.Edges <= 0 {
		return TrafficMix{}, false
	}
	frac := float64(g.emitted) / float64(g.cfg.Edges)
	for _, p := range g.cfg.Phases {
		if frac < p.UpTo {
			return p.Mix, true
		}
	}
	return g.cfg.Phases[len(g.cfg.Phases)-1].Mix, true
}

func (g *NetFlow) nextEdge() graph.StreamEdge {
	g.now = g.now.Add(g.cfg.MeanGap/2 + jitter(g.rng, g.cfg.MeanGap))
	src := g.randomHost()
	dstID, dstType := g.vertexByRank(g.zip.draw())
	for dstID == src {
		dstID, dstType = g.vertexByRank(g.zip.draw())
	}
	kind := g.rng.Float64()
	var typ string
	if mix, ok := g.currentMix(); ok {
		typ = mix.pick(kind)
	} else {
		// The pre-phases thresholds, kept as literal comparisons so
		// historical streams (and the checked-in goldens derived from them)
		// reproduce exactly.
		switch {
		case kind < 0.70:
			typ = EdgeFlow
		case kind < 0.85:
			typ = EdgeDNS
		case kind < 0.92:
			typ = EdgeLogin
		case kind < 0.97:
			typ = EdgeICMPReq
		default:
			typ = EdgeICMPReply
		}
	}
	g.emitted++
	se := graph.StreamEdge{
		SourceType: TypeHost,
		TargetType: dstType,
	}
	e := graph.Edge{
		ID:        g.seq.NextEdge(),
		Source:    src,
		Target:    dstID,
		Timestamp: g.now,
		Type:      typ,
	}
	switch typ {
	case EdgeFlow:
		e.Attrs = graph.Attributes{
			"bytes": graph.Int(int64(64 + g.rng.Intn(65_000))),
			"port":  graph.Int(int64(wellKnownPorts[g.rng.Intn(len(wellKnownPorts))])),
			"proto": graph.String(protoFor(g.rng)),
		}
	case EdgeDNS:
		e.Attrs = graph.Attributes{
			"qname": graph.String(fmt.Sprintf("svc-%d.example.com", g.rng.Intn(500))),
		}
	case EdgeLogin:
		e.Attrs = graph.Attributes{
			"user":    graph.String(fmt.Sprintf("user%d", g.rng.Intn(300))),
			"success": graph.Bool(g.rng.Float64() < 0.9),
		}
	case EdgeICMPReq, EdgeICMPReply:
		e.Attrs = graph.Attributes{"bytes": graph.Int(64)}
	case EdgeScan:
		e.Attrs = graph.Attributes{
			"ports_probed": graph.Int(int64(1 + g.rng.Intn(200))),
		}
	case EdgeInfect:
		e.Attrs = graph.Attributes{
			"payload": graph.String(fmt.Sprintf("probe-%d.bin", g.rng.Intn(16))),
		}
	}
	se.Edge = e
	return se
}

var wellKnownPorts = []int{22, 25, 53, 80, 123, 443, 445, 3306, 5432, 8080}

func protoFor(rng *rand.Rand) string {
	if rng.Float64() < 0.8 {
		return "tcp"
	}
	return "udp"
}
