package gen

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/stream"
)

// Vertex and edge type labels used by the netflow workload. The cyber
// queries in the paper (Fig. 3) and the example programs reference these.
const (
	TypeHost   = "Host"
	TypeServer = "Server"

	EdgeFlow      = "flow"          // generic TCP/UDP flow
	EdgeDNS       = "dns_query"     // host asks a server for a name
	EdgeICMPReq   = "icmp_echo_req" // ping request
	EdgeICMPReply = "icmp_echo_rep" // ping reply
	EdgeLogin     = "login"         // user/host logs into a server
	EdgeFileRead  = "file_read"     // host reads a sensitive file share
	EdgeScan      = "port_scan"     // reconnaissance probe
	EdgeInfect    = "infect"        // worm payload delivery
)

// NetFlowConfig parameterizes the internet-traffic generator.
type NetFlowConfig struct {
	// Hosts and Servers are the number of workstation and server vertices.
	Hosts   int
	Servers int
	// Edges is the number of background edges to generate.
	Edges int
	// Start is the timestamp of the first edge; MeanGap is the average
	// inter-arrival time between consecutive background edges.
	Start   graph.Timestamp
	MeanGap time.Duration
	// ContactSkew is the Zipf exponent controlling how concentrated traffic
	// is on popular destinations (higher = more skewed). Values near 1.1-2.0
	// are realistic.
	ContactSkew float64
	// Seed makes the stream reproducible.
	Seed int64
}

// DefaultNetFlowConfig returns a laptop-scale configuration: 2,000 hosts,
// 100 servers, 100k edges at one edge per simulated millisecond.
func DefaultNetFlowConfig() NetFlowConfig {
	return NetFlowConfig{
		Hosts:       2000,
		Servers:     100,
		Edges:       100_000,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        1,
	}
}

// NetFlow generates synthetic internet traffic.
type NetFlow struct {
	cfg  NetFlowConfig
	rng  *rand.Rand
	seq  *Sequence
	zip  *zipf
	now  graph.Timestamp
	host []graph.VertexID
	srv  []graph.VertexID
}

// NewNetFlow constructs a generator. seq may be nil, in which case a fresh
// sequence starting at 0 is used.
func NewNetFlow(cfg NetFlowConfig, seq *Sequence) *NetFlow {
	if cfg.Hosts < 2 {
		cfg.Hosts = 2
	}
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = time.Millisecond
	}
	if seq == nil {
		seq = &Sequence{}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &NetFlow{
		cfg: cfg,
		rng: rng,
		seq: seq,
		zip: newZipf(rng, cfg.Hosts+cfg.Servers, cfg.ContactSkew),
		now: cfg.Start,
	}
	for i := 0; i < cfg.Hosts; i++ {
		g.host = append(g.host, seq.NextVertex())
	}
	for i := 0; i < cfg.Servers; i++ {
		g.srv = append(g.srv, seq.NextVertex())
	}
	return g
}

// Hosts returns the generated host vertex IDs.
func (g *NetFlow) Hosts() []graph.VertexID { return g.host }

// Servers returns the generated server vertex IDs.
func (g *NetFlow) Servers() []graph.VertexID { return g.srv }

// Sequence returns the ID sequence, so attack injectors can share it.
func (g *NetFlow) Sequence() *Sequence { return g.seq }

// vertexByRank maps a Zipf rank to a vertex, preferring servers for the most
// popular ranks (services receive most traffic).
func (g *NetFlow) vertexByRank(rank int) (graph.VertexID, string) {
	if rank < len(g.srv) {
		return g.srv[rank], TypeServer
	}
	return g.host[(rank-len(g.srv))%len(g.host)], TypeHost
}

// randomHost picks a uniformly random workstation.
func (g *NetFlow) randomHost() graph.VertexID {
	return g.host[g.rng.Intn(len(g.host))]
}

// Generate produces the configured number of background edges in timestamp
// order.
func (g *NetFlow) Generate() []graph.StreamEdge {
	out := make([]graph.StreamEdge, 0, g.cfg.Edges)
	for i := 0; i < g.cfg.Edges; i++ {
		out = append(out, g.nextEdge())
	}
	return out
}

// Source returns a streaming source that lazily generates the configured
// number of edges, avoiding large intermediate slices in benchmarks.
func (g *NetFlow) Source() stream.Source {
	remaining := g.cfg.Edges
	return stream.FuncSource(func() (graph.StreamEdge, error) {
		if remaining <= 0 {
			return graph.StreamEdge{}, io.EOF
		}
		remaining--
		return g.nextEdge(), nil
	})
}

func (g *NetFlow) nextEdge() graph.StreamEdge {
	g.now = g.now.Add(g.cfg.MeanGap/2 + jitter(g.rng, g.cfg.MeanGap))
	src := g.randomHost()
	dstID, dstType := g.vertexByRank(g.zip.draw())
	for dstID == src {
		dstID, dstType = g.vertexByRank(g.zip.draw())
	}
	kind := g.rng.Float64()
	se := graph.StreamEdge{
		SourceType: TypeHost,
		TargetType: dstType,
	}
	e := graph.Edge{
		ID:        g.seq.NextEdge(),
		Source:    src,
		Target:    dstID,
		Timestamp: g.now,
	}
	switch {
	case kind < 0.70:
		e.Type = EdgeFlow
		e.Attrs = graph.Attributes{
			"bytes": graph.Int(int64(64 + g.rng.Intn(65_000))),
			"port":  graph.Int(int64(wellKnownPorts[g.rng.Intn(len(wellKnownPorts))])),
			"proto": graph.String(protoFor(g.rng)),
		}
	case kind < 0.85:
		e.Type = EdgeDNS
		e.Attrs = graph.Attributes{
			"qname": graph.String(fmt.Sprintf("svc-%d.example.com", g.rng.Intn(500))),
		}
	case kind < 0.92:
		e.Type = EdgeLogin
		e.Attrs = graph.Attributes{
			"user":    graph.String(fmt.Sprintf("user%d", g.rng.Intn(300))),
			"success": graph.Bool(g.rng.Float64() < 0.9),
		}
	case kind < 0.97:
		e.Type = EdgeICMPReq
		e.Attrs = graph.Attributes{"bytes": graph.Int(64)}
	default:
		e.Type = EdgeICMPReply
		e.Attrs = graph.Attributes{"bytes": graph.Int(64)}
	}
	se.Edge = e
	return se
}

var wellKnownPorts = []int{22, 25, 53, 80, 123, 443, 445, 3306, 5432, 8080}

func protoFor(rng *rand.Rand) string {
	if rng.Float64() < 0.8 {
		return "tcp"
	}
	return "udp"
}
