// Package gen generates the synthetic workloads used to evaluate
// StreamWorks in place of the paper's proprietary data sources:
//
//   - NetFlow produces an internet-traffic-like stream (the CAIDA
//     substitute): typed hosts and servers exchanging flow/dns/icmp edges
//     with a heavy-tailed, preferential-attachment contact structure.
//   - Attack injectors weave the cyber-attack patterns of the paper's Fig. 3
//     (Smurf DDoS, worm propagation, data exfiltration, port scans) into a
//     background stream, recording ground truth for recall measurements.
//   - News produces a news/social-media-like stream (the NYT substitute):
//     articles mentioning Zipf-distributed keywords, locations, people and
//     organizations, with injected event clusters of co-located,
//     same-keyword articles matching the paper's Fig. 2 query.
//
// All generators are deterministic given a seed.
package gen

import (
	"math/rand"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

// Sequence hands out unique vertex and edge IDs to generators that compose
// into a single stream. The zero value starts at 1.
type Sequence struct {
	nextVertex graph.VertexID
	nextEdge   graph.EdgeID
}

// NewSequence returns a sequence starting at the given offsets (useful when
// composing independently generated streams).
func NewSequence(vertexStart graph.VertexID, edgeStart graph.EdgeID) *Sequence {
	return &Sequence{nextVertex: vertexStart, nextEdge: edgeStart}
}

// NextVertex returns a fresh vertex ID.
func (s *Sequence) NextVertex() graph.VertexID {
	s.nextVertex++
	return s.nextVertex
}

// NextEdge returns a fresh edge ID.
func (s *Sequence) NextEdge() graph.EdgeID {
	s.nextEdge++
	return s.nextEdge
}

// VertexHigh returns the highest vertex ID handed out so far.
func (s *Sequence) VertexHigh() graph.VertexID { return s.nextVertex }

// EdgeHigh returns the highest edge ID handed out so far.
func (s *Sequence) EdgeHigh() graph.EdgeID { return s.nextEdge }

// zipf draws ranks from a Zipf distribution over [0, n) with exponent s,
// used for keyword popularity and host contact skew.
type zipf struct {
	z *rand.Zipf
	n int
}

func newZipf(rng *rand.Rand, n int, s float64) *zipf {
	if n < 1 {
		n = 1
	}
	if s <= 1 {
		s = 1.1
	}
	return &zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1)), n: n}
}

func (z *zipf) draw() int {
	if z.n == 1 {
		return 0
	}
	return int(z.z.Uint64())
}

// jitter returns a non-negative random duration below max (zero when max<=0).
func jitter(rng *rand.Rand, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(max)))
}
