package gen

import (
	"testing"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/graph"
)

func tinyManyQueriesWorkload() Workload {
	cfg := NetFlowConfig{
		Hosts:       100,
		Servers:     10,
		Edges:       1200,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        53,
	}
	newsCfg := DefaultNewsConfig()
	newsCfg.Articles = 120
	newsCfg.Keywords = 40
	newsCfg.Locations = 10
	newsCfg.EventClusters = 2
	newsCfg.Gap = 200 * time.Millisecond
	newsCfg.Seed = 54
	return ManyQueriesWorkload(cfg, newsCfg, 10*time.Second, 16)
}

// TestQueryVariantsShape pins the generator contract: n uniquely named
// queries, every family represented, structural repeats present (the sharing
// fodder) and predicate tiers splitting the exfil family.
func TestQueryVariantsShape(t *testing.T) {
	const n = 40
	qs := QueryVariants(n, 10*time.Second)
	if len(qs) != n {
		t.Fatalf("QueryVariants(%d) returned %d queries", n, len(qs))
	}
	names := make(map[string]bool, n)
	for _, q := range qs {
		if names[q.Name()] {
			t.Fatalf("duplicate variant name %q", q.Name())
		}
		names[q.Name()] = true
	}
	for _, fam := range queryVariantFamilies {
		found := 0
		for _, q := range qs {
			if len(q.Name()) > len(fam.base) && q.Name()[:len(fam.base)+2] == fam.base+"-v" {
				found++
			}
		}
		if found == 0 {
			t.Fatalf("family %q has no variants among %d", fam.base, n)
		}
		if found < 2 {
			t.Fatalf("family %q has only %d variant; no structural repeats to share", fam.base, found)
		}
	}
}

// TestManyQueriesWorkloadShape: the merged netflow+news stream must be
// time-ordered with globally unique edge IDs (the two generators share one
// ID sequence), and both regimes must actually be present.
func TestManyQueriesWorkloadShape(t *testing.T) {
	w := tinyManyQueriesWorkload()
	if len(w.Queries) != 16 {
		t.Fatalf("workload carries %d queries, want 16", len(w.Queries))
	}
	ids := make(map[graph.EdgeID]bool, len(w.Edges))
	last := w.Edges[0].Edge.Timestamp
	sawNetflow, sawNews := false, false
	for _, se := range w.Edges {
		if se.Edge.Timestamp < last {
			t.Fatalf("stream not time-ordered")
		}
		last = se.Edge.Timestamp
		if ids[se.Edge.ID] {
			t.Fatalf("duplicate edge ID %d across the merged netflow+news stream", se.Edge.ID)
		}
		ids[se.Edge.ID] = true
		switch se.Edge.Type {
		case EdgeFlow, EdgeICMPReq, EdgeICMPReply, EdgeScan, EdgeInfect, EdgeLogin, EdgeDNS:
			sawNetflow = true
		case EdgeMentions, EdgeLocated:
			sawNews = true
		}
	}
	if !sawNetflow || !sawNews {
		t.Fatalf("merged stream missing a regime: netflow=%v news=%v", sawNetflow, sawNews)
	}
}

// TestManyQueriesSharedPlansWin is the tentpole's unit-scale proof: on the
// many-queries workload, shared-plan mode must (a) detect the identical
// match set, (b) actually share (DAG smaller than the sum of per-variant
// plans, shared hits accumulated) and (c) run materially fewer local
// searches than per-query mode — the mechanism behind the throughput win
// BENCH_mqo.json records at full scale.
func TestManyQueriesSharedPlansWin(t *testing.T) {
	w := tinyManyQueriesWorkload()
	ref, refM, err := RunSingle(w)
	if err != nil {
		t.Fatalf("per-query run: %v", err)
	}
	if len(ref) == 0 {
		t.Fatalf("per-query run found no matches; workload proves nothing")
	}
	set, m, err := RunSingle(w, streamworks.WithSharedPlans(true))
	if err != nil {
		t.Fatalf("shared run: %v", err)
	}
	if !set.Equal(ref) {
		t.Fatalf("shared-plan match set diverges: got %d matches, want %d", len(set), len(ref))
	}
	if m.MQO == nil {
		t.Fatalf("shared run reported no MQO stats")
	}
	if m.MQO.SharedNodes == 0 || m.MQO.SharedHits == 0 {
		t.Fatalf("no sharing on 16 cycled variants: sharedNodes=%d sharedHits=%d",
			m.MQO.SharedNodes, m.MQO.SharedHits)
	}
	if m.MQO.Attachments != len(w.Queries) {
		t.Fatalf("DAG attachments = %d, want %d", m.MQO.Attachments, len(w.Queries))
	}
	// 16 variants over 8 families: at least half the evaluation work must
	// deduplicate away.
	if m.LocalSearches*2 > refM.LocalSearches {
		t.Fatalf("shared mode did %d local searches vs %d per-query; expected at least a 2x reduction",
			m.LocalSearches, refM.LocalSearches)
	}
}
