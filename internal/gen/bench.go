package gen

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/graph"
)

// BenchResult is the measurement of one engine configuration replaying one
// workload, normalized so runs are comparable across machines and across
// PRs: one "op" is a full replay of the workload (register queries, stream
// every edge, collect every match).
type BenchResult struct {
	Workload      string  `json:"workload"`
	Engine        string  `json:"engine"` // "single" or "sharded-N"
	EdgesPerOp    int     `json:"edges_per_op"`
	Iterations    int     `json:"iterations"`
	NsPerOp       int64   `json:"ns_per_op"`
	EdgesPerSec   float64 `json:"edges_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerEdge float64 `json:"allocs_per_edge"`
	Matches       int     `json:"matches"`
}

// BenchWorkload replays w under testing.Benchmark with allocation reporting.
// shards == 0 measures the single-threaded core.Engine (the hot-path number
// tracked across PRs); shards >= 1 measures a shard.ShardedEngine of that
// width. The workload is replayed once before timing to validate it and
// record the match count.
func BenchWorkload(w Workload, shards int) (BenchResult, error) {
	run := func() (MatchSet, error) {
		if shards == 0 {
			set, _, err := RunSingle(w)
			return set, err
		}
		set, _, err := RunSharded(w, shards)
		return set, err
	}
	set, err := run()
	if err != nil {
		return BenchResult{}, fmt.Errorf("gen: bench validation run: %w", err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	engine := "single"
	if shards > 0 {
		engine = fmt.Sprintf("sharded-%d", shards)
	}
	out := BenchResult{
		Workload:    w.Name,
		Engine:      engine,
		EdgesPerOp:  len(w.Edges),
		Iterations:  res.N,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Matches:     len(set),
	}
	if res.T > 0 {
		out.EdgesPerSec = float64(len(w.Edges)) * float64(res.N) / res.T.Seconds()
	}
	if len(w.Edges) > 0 {
		out.AllocsPerEdge = float64(out.AllocsPerOp) / float64(len(w.Edges))
	}
	return out, nil
}

// BenchNetFlowWorkload builds the canonical netflow benchmark workload: the
// same shape as internal/shard's BenchmarkSingleEngine (all four Fig. 3
// cyber queries over a skewed background stream with attacks woven in),
// scaled to the requested edge count.
func BenchNetFlowWorkload(edges, hosts int, window time.Duration) Workload {
	cfg := NetFlowConfig{
		Hosts:       hosts,
		Servers:     hosts/16 + 4,
		Edges:       edges,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        41,
	}
	return NetFlowWorkload(cfg, window)
}

// BenchDriftWorkload builds the canonical selectivity-drift benchmark
// workload: the netflow query suite over a background stream whose traffic
// mix rotates from benign to scan-heavy halfway through, scaled to the
// requested edge count.
func BenchDriftWorkload(edges, hosts int, window time.Duration) Workload {
	// Stretch the stream to ~5 query windows so the retention window fully
	// rotates into the post-drift regime: drift detection reads selectivities
	// from the retained window, which must outlive the old mix for the new
	// one to dominate it.
	gap := 5 * window / time.Duration(max(edges, 1))
	if gap <= 0 {
		gap = time.Millisecond
	}
	cfg := NetFlowConfig{
		Hosts:       hosts,
		Servers:     hosts/16 + 4,
		Edges:       edges,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     gap,
		ContactSkew: 1.4,
		Seed:        43,
	}
	return DriftWorkload(cfg, window)
}

// DriftBenchResult measures one replay of a drift workload, separating the
// post-drift regime (where a frozen plan is maximally wrong) from the
// total. The acceptance number tracked across PRs is
// PostDriftEdgesPerSec(adaptive) vs PostDriftEdgesPerSec(frozen).
type DriftBenchResult struct {
	Workload             string  `json:"workload"`
	Engine               string  `json:"engine"` // "single" or "sharded-N"
	Mode                 string  `json:"mode"`   // "frozen" or "adaptive"
	Edges                int     `json:"edges"`
	PreDriftEdges        int     `json:"pre_drift_edges"`
	Replans              uint64  `json:"replans"`
	PartialMatches       int     `json:"partial_matches"`
	TotalEdgesPerSec     float64 `json:"total_edges_per_sec"`
	PostDriftEdgesPerSec float64 `json:"post_drift_edges_per_sec"`
	Matches              int     `json:"matches"`
}

// BenchDrift replays a drift workload (one with SplitAt set) runs times
// through the public API with adaptive planning on or off, timing the
// pre-drift and post-drift segments separately, and reports the best run
// by post-drift throughput (adaptive runs pay their plan-swap replay inside
// the timed segment — the win shown is net of swap cost). The returned
// match set lets callers assert frozen and adaptive runs detected the same
// matches.
func BenchDrift(w Workload, shards int, adaptive bool, runs int) (DriftBenchResult, MatchSet, error) {
	if runs < 1 {
		runs = 1
	}
	mode := "frozen"
	if adaptive {
		mode = "adaptive"
	}
	engine := "single"
	if shards > 0 {
		engine = fmt.Sprintf("sharded-%d", shards)
	}
	res := DriftBenchResult{
		Workload:      w.Name,
		Engine:        engine,
		Mode:          mode,
		Edges:         len(w.Edges),
		PreDriftEdges: w.SplitAt,
	}
	var bestSet MatchSet
	for i := 0; i < runs; i++ {
		set, m, preDur, postDur, err := runDriftOnce(w, shards, adaptive)
		if err != nil {
			return DriftBenchResult{}, nil, err
		}
		post := float64(len(w.Edges)-w.SplitAt) / postDur.Seconds()
		if post > res.PostDriftEdgesPerSec {
			res.PostDriftEdgesPerSec = post
			res.TotalEdgesPerSec = float64(len(w.Edges)) / (preDur + postDur).Seconds()
			res.Replans = m.Replans
			res.PartialMatches = m.PartialMatches
			res.Matches = len(set)
			bestSet = set
		}
	}
	return res, bestSet, nil
}

func runDriftOnce(w Workload, shards int, adaptive bool) (MatchSet, streamworks.Metrics, time.Duration, time.Duration, error) {
	opts := []streamworks.Option{streamworks.WithEngineConfig(w.Engine)}
	if adaptive {
		opts = append(opts, streamworks.WithAdaptivePlanning(true))
	}
	var eng streamworks.Engine
	if shards > 0 {
		eng = streamworks.NewSharded(append(opts, streamworks.WithShards(shards))...)
	} else {
		eng = streamworks.New(opts...)
	}
	defer eng.Close()
	ctx := context.Background()
	for _, q := range w.Queries {
		if err := eng.RegisterQuery(ctx, q); err != nil {
			return nil, streamworks.Metrics{}, 0, 0, err
		}
	}
	set := make(MatchSet)
	sub, err := eng.Subscribe("", streamworks.SinkFunc(func(m streamworks.Match) {
		set.AddKey(m.Query, m.Signature)
	}))
	if err != nil {
		return nil, streamworks.Metrics{}, 0, 0, err
	}
	defer sub.Close()
	split := w.SplitAt
	if split <= 0 || split > len(w.Edges) {
		split = len(w.Edges)
	}
	t0 := time.Now()
	if err := eng.ProcessBatch(ctx, w.Edges[:split]); err != nil {
		return nil, streamworks.Metrics{}, 0, 0, err
	}
	t1 := time.Now()
	if err := eng.ProcessBatch(ctx, w.Edges[split:]); err != nil {
		return nil, streamworks.Metrics{}, 0, 0, err
	}
	postDur := time.Since(t1)
	m, err := eng.Metrics(ctx)
	if err != nil {
		return nil, streamworks.Metrics{}, 0, 0, err
	}
	if err := eng.Close(); err != nil {
		return nil, streamworks.Metrics{}, 0, 0, err
	}
	<-sub.Done()
	return set, m, t1.Sub(t0), postDur, nil
}

// MQOBenchResult measures one replay of a many-queries workload with shared
// plans on or off. The acceptance number tracked across PRs is
// EdgesPerSec(shared) vs EdgesPerSec(per-query) at the same query count —
// the multi-query-optimization win — with the two modes' match sets required
// to be identical.
type MQOBenchResult struct {
	Workload       string  `json:"workload"`
	Engine         string  `json:"engine"` // "single" or "sharded-N"
	Mode           string  `json:"mode"`   // "per-query" or "shared"
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Queries        int     `json:"queries"`
	Edges          int     `json:"edges"`
	EdgesPerSec    float64 `json:"edges_per_sec"`
	LocalSearches  uint64  `json:"local_searches"`
	PartialMatches int     `json:"partial_matches"`
	DAGNodes       int     `json:"dag_nodes,omitempty"`
	DAGSharedNodes int     `json:"dag_shared_nodes,omitempty"`
	SharedHits     uint64  `json:"shared_hits,omitempty"`
	Matches        int     `json:"matches"`
}

// BenchManyQueries replays a many-queries workload runs times with shared
// plans on or off, timing only the edge stream (registration of hundreds of
// queries is a fixed setup cost both modes pay identically), and reports the
// best run by throughput plus the engine's evaluation counters from that
// run. The returned match set lets callers enforce that sharing changed HOW
// matches were computed, never WHICH.
func BenchManyQueries(w Workload, shards int, shared bool, runs int) (MQOBenchResult, MatchSet, error) {
	if runs < 1 {
		runs = 1
	}
	mode := "per-query"
	if shared {
		mode = "shared"
	}
	engine := "single"
	if shards > 0 {
		engine = fmt.Sprintf("sharded-%d", shards)
	}
	res := MQOBenchResult{
		Workload:   w.Name,
		Engine:     engine,
		Mode:       mode,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Queries:    len(w.Queries),
		Edges:      len(w.Edges),
	}
	var bestSet MatchSet
	for i := 0; i < runs; i++ {
		set, m, dur, err := runManyQueriesOnce(w, shards, shared)
		if err != nil {
			return MQOBenchResult{}, nil, err
		}
		eps := float64(len(w.Edges)) / dur.Seconds()
		if eps > res.EdgesPerSec {
			res.EdgesPerSec = eps
			res.LocalSearches = m.LocalSearches
			res.PartialMatches = m.PartialMatches
			res.Matches = len(set)
			if m.MQO != nil {
				res.DAGNodes = m.MQO.Nodes
				res.DAGSharedNodes = m.MQO.SharedNodes
				res.SharedHits = m.MQO.SharedHits
			}
			bestSet = set
		}
	}
	return res, bestSet, nil
}

func runManyQueriesOnce(w Workload, shards int, shared bool) (MatchSet, streamworks.Metrics, time.Duration, error) {
	opts := []streamworks.Option{
		streamworks.WithEngineConfig(w.Engine),
		streamworks.WithSharedPlans(shared),
	}
	var eng streamworks.Engine
	if shards > 0 {
		eng = streamworks.NewSharded(append(opts, streamworks.WithShards(shards))...)
	} else {
		eng = streamworks.New(opts...)
	}
	defer eng.Close()
	ctx := context.Background()
	for _, q := range w.Queries {
		if err := eng.RegisterQuery(ctx, q); err != nil {
			return nil, streamworks.Metrics{}, 0, err
		}
	}
	set := make(MatchSet)
	sub, err := eng.Subscribe("", streamworks.SinkFunc(func(m streamworks.Match) {
		set.AddKey(m.Query, m.Signature)
	}))
	if err != nil {
		return nil, streamworks.Metrics{}, 0, err
	}
	defer sub.Close()
	t0 := time.Now()
	if err := eng.ProcessBatch(ctx, w.Edges); err != nil {
		return nil, streamworks.Metrics{}, 0, err
	}
	dur := time.Since(t0)
	m, err := eng.Metrics(ctx)
	if err != nil {
		return nil, streamworks.Metrics{}, 0, err
	}
	if err := eng.Close(); err != nil {
		return nil, streamworks.Metrics{}, 0, err
	}
	<-sub.Done()
	return set, m, dur, nil
}

// BenchNewsWorkload builds the canonical news benchmark workload: the Fig. 2
// co-mention event query over an article/entity stream, scaled to roughly
// the requested edge count (articles emit several edges each).
func BenchNewsWorkload(edges int, window time.Duration) Workload {
	cfg := DefaultNewsConfig()
	cfg.Articles = edges / 8
	if cfg.Articles < 50 {
		cfg.Articles = 50
	}
	cfg.Keywords = cfg.Articles/4 + 50
	cfg.Locations = cfg.Articles/40 + 10
	cfg.EventClusters = cfg.Articles / 100
	return NewsWorkload(cfg, window, 2)
}
