package gen

import (
	"fmt"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

// BenchResult is the measurement of one engine configuration replaying one
// workload, normalized so runs are comparable across machines and across
// PRs: one "op" is a full replay of the workload (register queries, stream
// every edge, collect every match).
type BenchResult struct {
	Workload      string  `json:"workload"`
	Engine        string  `json:"engine"` // "single" or "sharded-N"
	EdgesPerOp    int     `json:"edges_per_op"`
	Iterations    int     `json:"iterations"`
	NsPerOp       int64   `json:"ns_per_op"`
	EdgesPerSec   float64 `json:"edges_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerEdge float64 `json:"allocs_per_edge"`
	Matches       int     `json:"matches"`
}

// BenchWorkload replays w under testing.Benchmark with allocation reporting.
// shards == 0 measures the single-threaded core.Engine (the hot-path number
// tracked across PRs); shards >= 1 measures a shard.ShardedEngine of that
// width. The workload is replayed once before timing to validate it and
// record the match count.
func BenchWorkload(w Workload, shards int) (BenchResult, error) {
	run := func() (MatchSet, error) {
		if shards == 0 {
			set, _, err := RunSingle(w)
			return set, err
		}
		set, _, err := RunSharded(w, shards)
		return set, err
	}
	set, err := run()
	if err != nil {
		return BenchResult{}, fmt.Errorf("gen: bench validation run: %w", err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	engine := "single"
	if shards > 0 {
		engine = fmt.Sprintf("sharded-%d", shards)
	}
	out := BenchResult{
		Workload:    w.Name,
		Engine:      engine,
		EdgesPerOp:  len(w.Edges),
		Iterations:  res.N,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Matches:     len(set),
	}
	if res.T > 0 {
		out.EdgesPerSec = float64(len(w.Edges)) * float64(res.N) / res.T.Seconds()
	}
	if len(w.Edges) > 0 {
		out.AllocsPerEdge = float64(out.AllocsPerOp) / float64(len(w.Edges))
	}
	return out, nil
}

// BenchNetFlowWorkload builds the canonical netflow benchmark workload: the
// same shape as internal/shard's BenchmarkSingleEngine (all four Fig. 3
// cyber queries over a skewed background stream with attacks woven in),
// scaled to the requested edge count.
func BenchNetFlowWorkload(edges, hosts int, window time.Duration) Workload {
	cfg := NetFlowConfig{
		Hosts:       hosts,
		Servers:     hosts/16 + 4,
		Edges:       edges,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        41,
	}
	return NetFlowWorkload(cfg, window)
}

// BenchNewsWorkload builds the canonical news benchmark workload: the Fig. 2
// co-mention event query over an article/entity stream, scaled to roughly
// the requested edge count (articles emit several edges each).
func BenchNewsWorkload(edges int, window time.Duration) Workload {
	cfg := DefaultNewsConfig()
	cfg.Articles = edges / 8
	if cfg.Articles < 50 {
		cfg.Articles = 50
	}
	cfg.Keywords = cfg.Articles/4 + 50
	cfg.Locations = cfg.Articles/40 + 10
	cfg.EventClusters = cfg.Articles / 100
	return NewsWorkload(cfg, window, 2)
}
