package gen

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/export"
	"github.com/streamworks/streamworks/internal/query"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the match-signature golden files from the current engine")

// TestMatchReportSignaturesGolden replays the canonical netflow and news
// benchmark workloads through a single engine and compares every exported
// match signature byte-for-byte against golden files captured before the
// flat-match refactor. This pins two things at once: the engine's match set
// (which matches are found) and the export-boundary signature format (how
// each match is named), so representation changes inside match/sjtree can
// never silently alter either.
func TestMatchReportSignaturesGolden(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
	}{
		{"netflow", BenchNetFlowWorkload(4000, 300, 30*time.Second)},
		{"news", BenchNewsWorkload(400, 15*time.Minute)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.w.Engine
			eng := core.New(&cfg)
			queries := make(map[string]*query.Graph, len(tc.w.Queries))
			for _, q := range tc.w.Queries {
				if _, err := eng.RegisterQuery(q); err != nil {
					t.Fatalf("RegisterQuery(%s): %v", q.Name(), err)
				}
				queries[q.Name()] = q
			}
			var lines []string
			if _, err := eng.Run(tc.w.Source(), func(ev core.MatchEvent) {
				r := export.BuildReport(ev, queries[ev.Query], eng.Graph().Graph())
				lines = append(lines, ev.Query+"\t"+r.Signature)
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(lines) == 0 {
				t.Fatalf("workload %s produced no matches; golden comparison would be vacuous", tc.name)
			}
			sort.Strings(lines)
			data := strings.Join(lines, "\n") + "\n"
			path := filepath.Join("testdata", "sigs_"+tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
					t.Fatalf("writing golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (run with -update-golden to create): %v", err)
			}
			if string(want) != data {
				t.Fatalf("%s: match signatures differ from the pre-refactor golden (%d lines now, %d expected)",
					tc.name, len(lines), strings.Count(string(want), "\n"))
			}
		})
	}
}
