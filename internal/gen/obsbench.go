package gen

import (
	"fmt"
	"testing"

	"github.com/streamworks/streamworks"
)

// ObsOverheadResult measures one observability mode replaying one workload.
// The acceptance numbers tracked across PRs: "enabled" must stay within a
// few percent of "disabled" edges/s (the instrumentation budget), and
// "disabled" is the compiled-in-but-off configuration every regular bench
// lane already runs, so its delta against the baseline report shows the
// cost of merely carrying the instrumentation branches.
type ObsOverheadResult struct {
	Workload    string  `json:"workload"`
	Engine      string  `json:"engine"` // "single" or "sharded-N"
	Mode        string  `json:"mode"`   // "disabled", "enabled" or "traced"
	EdgesPerSec float64 `json:"edges_per_sec"`
	// OverheadPct is the edges/s regression relative to the disabled mode
	// of the same run (zero for the disabled row itself).
	OverheadPct float64 `json:"overhead_pct"`
	Matches     int     `json:"matches"`
}

// obsModes are the three configurations the overhead lane compares:
// instrumentation off (one branch per site), histograms on, and histograms
// plus the sampled trace ring.
var obsModes = []struct {
	name string
	opts []streamworks.Option
}{
	{"disabled", nil},
	{"enabled", []streamworks.Option{streamworks.WithObservability(true)}},
	{"traced", []streamworks.Option{
		streamworks.WithObservability(true),
		streamworks.WithTraceSampling(4096, 64, 1_000_000),
	}},
}

// obsOverheadRounds is the number of interleaved measurement rounds per
// mode; the best round is reported (the drift bench's idiom: external noise
// only ever slows a run down, so the max is the least contaminated sample,
// and interleaving keeps slow machine phases from landing entirely on one
// mode and showing up as phantom overhead).
const obsOverheadRounds = 3

// BenchObsOverhead replays w under testing.Benchmark per observability mode
// and reports the throughput of each mode plus its regression against the
// disabled mode. Modes are measured in obsOverheadRounds interleaved rounds
// with the best round kept. All modes must detect the identical match set —
// instrumentation is not allowed to change semantics — and a divergence is
// returned as an error.
func BenchObsOverhead(w Workload, shards int) ([]ObsOverheadResult, error) {
	engine := "single"
	if shards > 0 {
		engine = fmt.Sprintf("sharded-%d", shards)
	}
	run := func(extra ...streamworks.Option) (MatchSet, error) {
		if shards == 0 {
			set, _, err := RunSingle(w, extra...)
			return set, err
		}
		set, _, err := RunSharded(w, shards, extra...)
		return set, err
	}
	var out []ObsOverheadResult
	var baseSet MatchSet
	for _, mode := range obsModes {
		set, err := run(mode.opts...)
		if err != nil {
			return nil, fmt.Errorf("gen: obs overhead %s validation run: %w", mode.name, err)
		}
		if baseSet == nil {
			baseSet = set
		} else if !baseSet.Equal(set) {
			return nil, fmt.Errorf("gen: obs overhead: %s match set diverges from disabled (%d vs %d)",
				mode.name, len(set), len(baseSet))
		}
		out = append(out, ObsOverheadResult{
			Workload: w.Name,
			Engine:   engine,
			Mode:     mode.name,
			Matches:  len(set),
		})
	}
	for round := 0; round < obsOverheadRounds; round++ {
		for i, mode := range obsModes {
			res := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if _, err := run(mode.opts...); err != nil {
						b.Fatal(err)
					}
				}
			})
			if res.T > 0 {
				if eps := float64(len(w.Edges)) * float64(res.N) / res.T.Seconds(); eps > out[i].EdgesPerSec {
					out[i].EdgesPerSec = eps
				}
			}
		}
	}
	base := out[0].EdgesPerSec
	if base > 0 {
		for i := range out {
			out[i].OverheadPct = 100 * (1 - out[i].EdgesPerSec/base)
		}
	}
	return out, nil
}
