package gen

import (
	"math/rand"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/stream"
)

// AttackKind enumerates the injectable cyber-attack patterns, mirroring the
// example queries of the paper's Fig. 3.
type AttackKind string

const (
	// AttackSmurf is a Smurf DDoS: the attacker sends spoofed echo requests
	// to many amplifier hosts, which all reply to the victim.
	AttackSmurf AttackKind = "smurf"
	// AttackWorm is a worm propagation chain: an infected host scans,
	// connects to and infects a neighbour, which repeats the pattern.
	AttackWorm AttackKind = "worm"
	// AttackExfiltration is a data exfiltration: a suspicious login is
	// followed by a sensitive file read and a large outbound flow.
	AttackExfiltration AttackKind = "exfiltration"
)

// AttackInstance records the ground truth for one injected attack: the edges
// that constitute it and the key actors, so experiments can measure recall
// and time-to-detection.
type AttackInstance struct {
	Kind AttackKind
	// Start and End bound the attack's edge timestamps.
	Start graph.Timestamp
	End   graph.Timestamp
	// Actors are the principal vertices: attacker/victim for smurf, the
	// infection chain for worm, the compromised host for exfiltration.
	Actors []graph.VertexID
	// EdgeIDs are the injected edges in emission order.
	EdgeIDs []graph.EdgeID
}

// InjectorConfig parameterizes attack injection into a background stream.
type InjectorConfig struct {
	// Seed controls actor selection and timing jitter.
	Seed int64
	// SmurfAmplifiers is the number of amplifier hosts per Smurf attack.
	SmurfAmplifiers int
	// WormChainLength is the number of hops in a worm propagation chain.
	WormChainLength int
	// Spread is the time over which one attack instance unfolds.
	Spread time.Duration
}

// DefaultInjectorConfig returns sensible laptop-scale defaults.
func DefaultInjectorConfig() InjectorConfig {
	return InjectorConfig{
		Seed:            7,
		SmurfAmplifiers: 8,
		WormChainLength: 4,
		Spread:          30 * time.Second,
	}
}

// Injector fabricates attack edges over the host population of a NetFlow
// generator, sharing its ID sequence so edge IDs never collide.
type Injector struct {
	cfg   InjectorConfig
	rng   *rand.Rand
	seq   *Sequence
	hosts []graph.VertexID
}

// NewInjector constructs an injector over the given host population.
func NewInjector(cfg InjectorConfig, hosts []graph.VertexID, seq *Sequence) *Injector {
	if cfg.SmurfAmplifiers < 2 {
		cfg.SmurfAmplifiers = 2
	}
	if cfg.WormChainLength < 2 {
		cfg.WormChainLength = 2
	}
	if cfg.Spread <= 0 {
		cfg.Spread = time.Second
	}
	if seq == nil {
		seq = &Sequence{}
	}
	return &Injector{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		seq:   seq,
		hosts: hosts,
	}
}

func (in *Injector) pickHosts(n int) []graph.VertexID {
	picked := make([]graph.VertexID, 0, n)
	seen := make(map[graph.VertexID]struct{}, n)
	for len(picked) < n && len(seen) < len(in.hosts) {
		h := in.hosts[in.rng.Intn(len(in.hosts))]
		if _, dup := seen[h]; dup {
			continue
		}
		seen[h] = struct{}{}
		picked = append(picked, h)
	}
	return picked
}

func (in *Injector) hostEdge(src, dst graph.VertexID, typ string, ts graph.Timestamp, attrs graph.Attributes) graph.StreamEdge {
	return graph.StreamEdge{
		Edge: graph.Edge{
			ID:        in.seq.NextEdge(),
			Source:    src,
			Target:    dst,
			Type:      typ,
			Timestamp: ts,
			Attrs:     attrs,
		},
		SourceType: TypeHost,
		TargetType: TypeHost,
	}
}

// Smurf fabricates one Smurf DDoS instance starting at the given time.
func (in *Injector) Smurf(start graph.Timestamp) ([]graph.StreamEdge, AttackInstance) {
	actors := in.pickHosts(in.cfg.SmurfAmplifiers + 2)
	attacker, victim := actors[0], actors[1]
	amplifiers := actors[2:]
	step := in.cfg.Spread / time.Duration(2*len(amplifiers)+1)
	var edges []graph.StreamEdge
	ts := start
	for _, amp := range amplifiers {
		ts = ts.Add(step/2 + jitter(in.rng, step))
		edges = append(edges, in.hostEdge(attacker, amp, EdgeICMPReq, ts,
			graph.Attributes{"bytes": graph.Int(1024), "spoofed": graph.Bool(true)}))
		ts = ts.Add(step / 4)
		edges = append(edges, in.hostEdge(amp, victim, EdgeICMPReply, ts,
			graph.Attributes{"bytes": graph.Int(1024)}))
	}
	inst := AttackInstance{
		Kind:   AttackSmurf,
		Start:  edges[0].Edge.Timestamp,
		End:    edges[len(edges)-1].Edge.Timestamp,
		Actors: append([]graph.VertexID{attacker, victim}, amplifiers...),
	}
	for _, e := range edges {
		inst.EdgeIDs = append(inst.EdgeIDs, e.Edge.ID)
	}
	return edges, inst
}

// Worm fabricates one worm propagation chain starting at the given time:
// each hop scans, opens a flow to, and infects the next host.
func (in *Injector) Worm(start graph.Timestamp) ([]graph.StreamEdge, AttackInstance) {
	chain := in.pickHosts(in.cfg.WormChainLength + 1)
	step := in.cfg.Spread / time.Duration(3*in.cfg.WormChainLength+1)
	var edges []graph.StreamEdge
	ts := start
	for i := 0; i < len(chain)-1; i++ {
		src, dst := chain[i], chain[i+1]
		ts = ts.Add(step/2 + jitter(in.rng, step))
		edges = append(edges, in.hostEdge(src, dst, EdgeScan, ts,
			graph.Attributes{"ports_probed": graph.Int(int64(100 + in.rng.Intn(900)))}))
		ts = ts.Add(step / 3)
		edges = append(edges, in.hostEdge(src, dst, EdgeFlow, ts,
			graph.Attributes{"bytes": graph.Int(int64(200_000 + in.rng.Intn(800_000))), "port": graph.Int(445), "proto": graph.String("tcp")}))
		ts = ts.Add(step / 3)
		edges = append(edges, in.hostEdge(src, dst, EdgeInfect, ts,
			graph.Attributes{"payload": graph.String("worm.bin")}))
	}
	inst := AttackInstance{
		Kind:   AttackWorm,
		Start:  edges[0].Edge.Timestamp,
		End:    edges[len(edges)-1].Edge.Timestamp,
		Actors: chain,
	}
	for _, e := range edges {
		inst.EdgeIDs = append(inst.EdgeIDs, e.Edge.ID)
	}
	return edges, inst
}

// Exfiltration fabricates one data-exfiltration instance: a failed-then-
// successful login, a sensitive file read, and a large outbound flow to an
// external drop host.
func (in *Injector) Exfiltration(start graph.Timestamp) ([]graph.StreamEdge, AttackInstance) {
	actors := in.pickHosts(3)
	compromised, fileServer, drop := actors[0], actors[1], actors[2]
	step := in.cfg.Spread / 4
	ts := start.Add(jitter(in.rng, step))
	edges := []graph.StreamEdge{
		in.hostEdge(compromised, fileServer, EdgeLogin, ts,
			graph.Attributes{"user": graph.String("svc_backup"), "success": graph.Bool(true)}),
	}
	ts = ts.Add(step/2 + jitter(in.rng, step))
	edges = append(edges, in.hostEdge(compromised, fileServer, EdgeFileRead, ts,
		graph.Attributes{"path": graph.String("/finance/payroll.db"), "bytes": graph.Int(50_000_000)}))
	ts = ts.Add(step/2 + jitter(in.rng, step))
	edges = append(edges, in.hostEdge(compromised, drop, EdgeFlow, ts,
		graph.Attributes{"bytes": graph.Int(52_000_000), "port": graph.Int(443), "proto": graph.String("tcp")}))
	inst := AttackInstance{
		Kind:   AttackExfiltration,
		Start:  edges[0].Edge.Timestamp,
		End:    edges[len(edges)-1].Edge.Timestamp,
		Actors: actors,
	}
	for _, e := range edges {
		inst.EdgeIDs = append(inst.EdgeIDs, e.Edge.ID)
	}
	return edges, inst
}

// Inject fabricates `count` instances of the given attack kind with start
// times drawn uniformly from [start, end-Spread] and returns the edges plus
// the ground-truth instances. The returned edges are not merged into any
// background stream; use stream.Merge for that.
func (in *Injector) Inject(kind AttackKind, count int, start, end graph.Timestamp) ([]graph.StreamEdge, []AttackInstance) {
	var edges []graph.StreamEdge
	var instances []AttackInstance
	span := int64(end - start - graph.Timestamp(in.cfg.Spread))
	if span < 1 {
		span = 1
	}
	for i := 0; i < count; i++ {
		at := start + graph.Timestamp(in.rng.Int63n(span))
		var es []graph.StreamEdge
		var inst AttackInstance
		switch kind {
		case AttackSmurf:
			es, inst = in.Smurf(at)
		case AttackWorm:
			es, inst = in.Worm(at)
		case AttackExfiltration:
			es, inst = in.Exfiltration(at)
		default:
			continue
		}
		edges = append(edges, es...)
		instances = append(instances, inst)
	}
	stream.SortByTimestamp(edges)
	return edges, instances
}
