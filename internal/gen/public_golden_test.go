package gen

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks"
)

// TestPublicAPISingleEngineMatchesGolden is the bench-continuity guard for
// the public API redesign: replaying the canonical benchmark workloads
// through streamworks.New — the exact path cmd/bench measures — must
// reproduce, signature for signature, the golden match sets captured before
// the redesign. Any silent semantic drift introduced by the sink-based
// emission path, the public wrappers, or future backends that reuse them
// fails this test byte-for-byte.
func TestPublicAPISingleEngineMatchesGolden(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
	}{
		{"netflow", BenchNetFlowWorkload(4000, 300, 30*time.Second)},
		{"news", BenchNewsWorkload(400, 15*time.Minute)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := streamworks.New(streamworks.WithEngineConfig(tc.w.Engine))
			defer eng.Close()
			ctx := context.Background()
			for _, q := range tc.w.Queries {
				if err := eng.RegisterQuery(ctx, q); err != nil {
					t.Fatalf("RegisterQuery(%s): %v", q.Name(), err)
				}
			}
			var lines []string
			sub, err := eng.Subscribe("", streamworks.SinkFunc(func(m streamworks.Match) {
				lines = append(lines, m.Query+"\t"+m.Signature)
			}))
			if err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
			if err := eng.ProcessBatch(ctx, tc.w.Edges); err != nil {
				t.Fatalf("ProcessBatch: %v", err)
			}
			if err := eng.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			<-sub.Done()

			if len(lines) == 0 {
				t.Fatalf("workload %s produced no matches; golden comparison would be vacuous", tc.name)
			}
			sort.Strings(lines)
			data := strings.Join(lines, "\n") + "\n"
			want, err := os.ReadFile(filepath.Join("testdata", "sigs_"+tc.name+".golden"))
			if err != nil {
				t.Fatalf("reading pre-redesign golden: %v", err)
			}
			if string(want) != data {
				t.Fatalf("%s: public-API match signatures differ from the pre-redesign golden (%d lines now, %d expected)",
					tc.name, len(lines), strings.Count(string(want), "\n"))
			}
		})
	}
}
