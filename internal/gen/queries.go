package gen

import (
	"strconv"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

// SmurfQuery returns the Smurf DDoS detection query of the paper's Fig. 3:
// an attacker host sends an echo request to an amplifier which echoes a
// reply towards the victim, all within the window. This two-edge core
// pattern detects every amplifier leg of the attack; counting distinct
// victims over legs yields the full DDoS picture.
func SmurfQuery(window time.Duration) *query.Graph {
	return query.NewBuilder("smurf-ddos").
		Window(window).
		Vertex("attacker", TypeHost).
		Vertex("amplifier", TypeHost).
		Vertex("victim", TypeHost).
		Edge("attacker", "amplifier", EdgeICMPReq).
		Edge("amplifier", "victim", EdgeICMPReply).
		MustBuild()
}

// WormQuery returns a worm-propagation detection query: one infection hop
// consists of a port scan, a flow and an infect edge from the same source to
// the same destination within the window.
func WormQuery(window time.Duration) *query.Graph {
	return query.NewBuilder("worm-hop").
		Window(window).
		Vertex("src", TypeHost).
		Vertex("dst", TypeHost).
		Edge("src", "dst", EdgeScan).
		Edge("src", "dst", EdgeFlow).
		Edge("src", "dst", EdgeInfect).
		MustBuild()
}

// WormChainQuery returns a two-hop worm propagation query: a host that was
// just infected starts infecting another host within the window.
func WormChainQuery(window time.Duration) *query.Graph {
	return query.NewBuilder("worm-chain").
		Window(window).
		Vertex("patient0", TypeHost).
		Vertex("victim1", TypeHost).
		Vertex("victim2", TypeHost).
		Edge("patient0", "victim1", EdgeInfect).
		Edge("victim1", "victim2", EdgeScan).
		Edge("victim1", "victim2", EdgeInfect).
		MustBuild()
}

// ExfiltrationQuery returns the data-exfiltration query: a login to a file
// server, a large sensitive read, and a large outbound transfer from the
// same compromised host, all within the window.
func ExfiltrationQuery(window time.Duration) *query.Graph {
	return query.NewBuilder("exfiltration").
		Window(window).
		Vertex("compromised", TypeHost).
		Vertex("fileserver", TypeHost).
		Vertex("drop", TypeHost).
		Edge("compromised", "fileserver", EdgeLogin).
		Edge("compromised", "fileserver", EdgeFileRead, query.Gt("bytes", graph.Int(1_000_000))).
		Edge("compromised", "drop", EdgeFlow, query.Gt("bytes", graph.Int(10_000_000))).
		MustBuild()
}

// ReconBurstQuery returns the drift workload's plan-sensitive query: a
// reconnaissance host probing one target while staging a payload (infect +
// flow) on another. Its SJ-Tree decomposition matters in a way the Fig. 3
// suite's mostly does not: the {scan, infect} wedge through the recon host
// is vanishingly rare under benign traffic — so a plan frozen then happily
// anchors on it — but floods once the mix turns scan-heavy (uniform scan and
// infect sources make the wedge count the product of the two rates), while
// the {scan, flow} pairing collapses after the drift. The right
// decomposition is different in each regime; only re-planning gets both.
func ReconBurstQuery(window time.Duration) *query.Graph {
	// probed and staging are deliberately untyped: reconnaissance hits
	// workstations and servers alike, and an untyped endpoint keeps every
	// scan edge a candidate — the flood the frozen plan must drown in.
	return query.NewBuilder("recon-burst").
		Window(window).
		Vertex("recon", TypeHost).
		Vertex("probed", "").
		Vertex("staging", "").
		Edge("recon", "probed", EdgeScan).
		Edge("recon", "staging", EdgeInfect).
		Edge("recon", "staging", EdgeFlow).
		MustBuild()
}

// NewsEventQuery returns the paper's Fig. 2 query: articles sharing a
// keyword and a location within the window; count controls how many
// articles the event must involve (the figure uses three).
func NewsEventQuery(window time.Duration, articles int, keywordLabel string) *query.Graph {
	if articles < 2 {
		articles = 2
	}
	b := query.NewBuilder("news-event").Window(window)
	var kwPreds []query.Predicate
	if keywordLabel != "" {
		kwPreds = append(kwPreds, query.Eq("label", graph.String(keywordLabel)))
	}
	b.Vertex("k", TypeKeyword, kwPreds...)
	b.Vertex("l", TypeLocation)
	names := make([]string, articles)
	for i := 0; i < articles; i++ {
		names[i] = articleVar(i)
		b.Vertex(names[i], TypeArticle)
	}
	for _, n := range names {
		b.Edge(n, "k", EdgeMentions)
		b.Edge(n, "l", EdgeLocated)
	}
	return b.MustBuild()
}

func articleVar(i int) string {
	return "a" + strconv.Itoa(i+1)
}
